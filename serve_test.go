package whatsup

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServingFacade drives the serving section of the façade end to end: a
// blank-workload fleet under NewLiveRunner, a fixture Source through
// NewGateway, and the NewAPIServer handler over real HTTP.
func TestServingFacade(t *testing.T) {
	const users = 8
	runner := NewLiveRunner(LiveRunnerConfig{
		Seed:         7,
		Cycles:       -1, // serve until cancelled
		CycleLength:  5 * time.Millisecond,
		FeedCapacity: 16,
		Opinions:     OpinionFunc(func(NodeID, ItemID) bool { return true }),
	}, BlankDataset(users), NewChannelNet(7, 0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		runner.RunContext(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	src := NewFileSource("internal/source/testdata/feed.xml")
	gw := NewGateway(GatewayConfig{Node: 0, Sources: []Source{src}}, runner)
	srv := httptest.NewServer(NewAPIServer(runner, gw.Catalog()))
	defer srv.Close()

	deadline := time.Now().Add(30 * time.Second)
	for gw.Published() < 6 {
		if time.Now().After(deadline) {
			t.Fatal("gateway could not ingest the fixture feed")
		}
		if _, err := gw.PollOnce(ctx); err != nil {
			t.Logf("poll: %v (will retry)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The runner's serving surface works through the façade aliases.
	var feed []FeedEntry
	for {
		var err error
		feed, err = runner.Feed(3)
		if err != nil {
			t.Fatal(err)
		}
		if len(feed) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 3 never received a feed entry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var snap NodeSnapshot
	snap, err := runner.Snapshot(3)
	if err != nil || snap.ID != 3 {
		t.Fatalf("snapshot: %+v, %v", snap, err)
	}
	var stats FleetStats = runner.Stats()
	if stats.Members != users {
		t.Fatalf("stats members %d, want %d", stats.Members, users)
	}
	var members []Member = runner.Members()
	if len(members) != users {
		t.Fatalf("members %d, want %d", len(members), users)
	}
	if _, err := runner.Feed(99); err != ErrUnknownNode {
		t.Fatalf("unknown node error: %v", err)
	}

	// And over HTTP via the façade-built handler.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Online  int  `json:"online"`
		Catalog *int `json:"catalog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Online != users || out.Catalog == nil || *out.Catalog != 6 {
		t.Fatalf("stats over HTTP: %+v", out)
	}
}

// TestServingFacadeSpecs pins the source-spec constructors.
func TestServingFacadeSpecs(t *testing.T) {
	if _, err := NewSource("bogus:x"); err == nil {
		t.Fatal("unknown source kind must error")
	}
	src, err := NewSource("file:internal/source/testdata/feed.xml")
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "file:internal/source/testdata/feed.xml" {
		t.Fatalf("source name %q", src.Name())
	}
	if NewFeedSource("https://example.org/feed.xml").Name() != "rss:https://example.org/feed.xml" {
		t.Fatal("feed source name mismatch")
	}
}
