package whatsup_test

import (
	"fmt"

	"whatsup"
)

// ExampleNewSimulation runs a miniature WhatsUp fleet on the survey workload
// and reports whether the dissemination produced sensible quality metrics.
func ExampleNewSimulation() {
	ds := whatsup.SurveyDataset(1, 0.05)
	sim := whatsup.NewSimulation(ds, whatsup.SimulationConfig{
		Node: whatsup.Config{FLike: 5},
		Seed: 1,
	})
	sim.Run()
	r := sim.Results()
	fmt.Println("delivered something:", r.Messages > 0)
	fmt.Println("quality in range:", r.F1 > 0 && r.F1 <= 1)
	// Output:
	// delivered something: true
	// quality in range: true
}

// ExampleNewItem shows that item identifiers derive from content, so
// receivers can recompute them instead of trusting the sender (paper II-A).
func ExampleNewItem() {
	a := whatsup.NewItem("Breaking", "short description", "https://example.org", 1, 7)
	b := whatsup.NewItem("Breaking", "short description", "https://example.org", 99, 3)
	fmt.Println("same content, same id:", a.ID == b.ID)
	// Output:
	// same content, same id: true
}

// ExampleOpinionFunc adapts an ordinary function as the like/dislike source
// for a node.
func ExampleOpinionFunc() {
	evenLover := whatsup.OpinionFunc(func(_ whatsup.NodeID, item whatsup.ItemID) bool {
		return item%2 == 0
	})
	node := whatsup.NewNode(1, whatsup.Config{}, evenLover, 42)
	fmt.Println("node id:", node.ID())
	fmt.Println("default fanout:", node.Config().FLike)
	// Output:
	// node id: 1
	// default fanout: 10
}
