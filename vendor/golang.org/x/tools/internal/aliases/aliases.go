// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package aliases

import (
	"go/token"
	"go/types"
)

// Package aliases defines backward compatible shims
// for the types.Alias type representation added in 1.22.
// This defines placeholders for x/tools until 1.26.

// NewAlias creates a new TypeName in Package pkg that
// is an alias for the type rhs.
//
// The enabled parameter determines whether the resulting [TypeName]'s
// type is an [types.Alias]. Its value must be the result of a call to
// [Enabled], which computes the effective value of
// GODEBUG=gotypesalias=... by invoking the type checker. The Enabled
// function is expensive and should be called once per task (e.g.
// package import), not once per call to NewAlias.
//
// Precondition: enabled || len(tparams)==0.
// If materialized aliases are disabled, there must not be any type parameters.
func NewAlias(enabled bool, pos token.Pos, pkg *types.Package, name string, rhs types.Type, tparams []*types.TypeParam) *types.TypeName {
	if enabled {
		tname := types.NewTypeName(pos, pkg, name, nil)
		SetTypeParams(types.NewAlias(tname, rhs), tparams)
		return tname
	}
	if len(tparams) > 0 {
		panic("cannot create an alias with type parameters when gotypesalias is not enabled")
	}
	return types.NewTypeName(pos, pkg, name, rhs)
}
