// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package aliases

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
)

// Rhs returns the type on the right-hand side of the alias declaration.
func Rhs(alias *types.Alias) types.Type {
	if alias, ok := any(alias).(interface{ Rhs() types.Type }); ok {
		return alias.Rhs() // go1.23+
	}

	// go1.22's Alias didn't have the Rhs method,
	// so Unalias is the best we can do.
	return types.Unalias(alias)
}

// TypeParams returns the type parameter list of the alias.
func TypeParams(alias *types.Alias) *types.TypeParamList {
	if alias, ok := any(alias).(interface{ TypeParams() *types.TypeParamList }); ok {
		return alias.TypeParams() // go1.23+
	}
	return nil
}

// SetTypeParams sets the type parameters of the alias type.
func SetTypeParams(alias *types.Alias, tparams []*types.TypeParam) {
	if alias, ok := any(alias).(interface {
		SetTypeParams(tparams []*types.TypeParam)
	}); ok {
		alias.SetTypeParams(tparams) // go1.23+
	} else if len(tparams) > 0 {
		panic("cannot set type parameters of an Alias type in go1.22")
	}
}

// TypeArgs returns the type arguments used to instantiate the Alias type.
func TypeArgs(alias *types.Alias) *types.TypeList {
	if alias, ok := any(alias).(interface{ TypeArgs() *types.TypeList }); ok {
		return alias.TypeArgs() // go1.23+
	}
	return nil // empty (go1.22)
}

// Origin returns the generic Alias type of which alias is an instance.
// If alias is not an instance of a generic alias, Origin returns alias.
func Origin(alias *types.Alias) *types.Alias {
	if alias, ok := any(alias).(interface{ Origin() *types.Alias }); ok {
		return alias.Origin() // go1.23+
	}
	return alias // not an instance of a generic alias (go1.22)
}

// Enabled reports whether [NewAlias] should create [types.Alias] types.
//
// This function is expensive! Call it sparingly.
func Enabled() bool {
	// The only reliable way to compute the answer is to invoke go/types.
	// We don't parse the GODEBUG environment variable, because
	// (a) it's tricky to do so in a manner that is consistent
	//     with the godebug package; in particular, a simple
	//     substring check is not good enough. The value is a
	//     rightmost-wins list of options. But more importantly:
	// (b) it is impossible to detect changes to the effective
	//     setting caused by os.Setenv("GODEBUG"), as happens in
	//     many tests. Therefore any attempt to cache the result
	//     is just incorrect.
	fset := token.NewFileSet()
	f, _ := parser.ParseFile(fset, "a.go", "package p; type A = int", parser.SkipObjectResolution)
	pkg, _ := new(types.Config).Check("p", fset, []*ast.File{f}, nil)
	_, enabled := pkg.Scope().Lookup("A").Type().(*types.Alias)
	return enabled
}
