// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package versions

// This file contains predicates for working with file versions to
// decide when a tool should consider a language feature enabled.

// GoVersions that features in x/tools can be gated to.
const (
	Go1_18 = "go1.18"
	Go1_19 = "go1.19"
	Go1_20 = "go1.20"
	Go1_21 = "go1.21"
	Go1_22 = "go1.22"
)

// Future is an invalid unknown Go version sometime in the future.
// Do not use directly with Compare.
const Future = ""

// AtLeast reports whether the file version v comes after a Go release.
//
// Use this predicate to enable a behavior once a certain Go release
// has happened (and stays enabled in the future).
func AtLeast(v, release string) bool {
	if v == Future {
		return true // an unknown future version is always after y.
	}
	return Compare(Lang(v), Lang(release)) >= 0
}

// Before reports whether the file version v is strictly before a Go release.
//
// Use this predicate to disable a behavior once a certain Go release
// has happened (and stays enabled in the future).
func Before(v, release string) bool {
	if v == Future {
		return false // an unknown future version happens after y.
	}
	return Compare(Lang(v), Lang(release)) < 0
}
