// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package versions

import (
	"go/ast"
	"go/types"
)

// FileVersion returns a file's Go version.
// The reported version is an unknown Future version if a
// version cannot be determined.
func FileVersion(info *types.Info, file *ast.File) string {
	// In tools built with Go >= 1.22, the Go version of a file
	// follow a cascades of sources:
	// 1) types.Info.FileVersion, which follows the cascade:
	//   1.a) file version (ast.File.GoVersion),
	//   1.b) the package version (types.Config.GoVersion), or
	// 2) is some unknown Future version.
	//
	// File versions require a valid package version to be provided to types
	// in Config.GoVersion. Config.GoVersion is either from the package's module
	// or the toolchain (go run). This value should be provided by go/packages
	// or unitchecker.Config.GoVersion.
	if v := info.FileVersions[file]; IsValid(v) {
		return v
	}
	// Note: we could instead return runtime.Version() [if valid].
	// This would act as a max version on what a tool can support.
	return Future
}
