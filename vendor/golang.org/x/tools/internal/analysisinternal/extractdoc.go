// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package analysisinternal

import (
	"fmt"
	"go/parser"
	"go/token"
	"strings"
)

// MustExtractDoc is like [ExtractDoc] but it panics on error.
//
// To use, define a doc.go file such as:
//
//	// Package halting defines an analyzer of program termination.
//	//
//	// # Analyzer halting
//	//
//	// halting: reports whether execution will halt.
//	//
//	// The halting analyzer reports a diagnostic for functions
//	// that run forever. To suppress the diagnostics, try inserting
//	// a 'break' statement into each loop.
//	package halting
//
//	import _ "embed"
//
//	//go:embed doc.go
//	var doc string
//
// And declare your analyzer as:
//
//	var Analyzer = &analysis.Analyzer{
//		Name:             "halting",
//		Doc:              analysisutil.MustExtractDoc(doc, "halting"),
//		...
//	}
func MustExtractDoc(content, name string) string {
	doc, err := ExtractDoc(content, name)
	if err != nil {
		panic(err)
	}
	return doc
}

// ExtractDoc extracts a section of a package doc comment from the
// provided contents of an analyzer package's doc.go file.
//
// A section is a portion of the comment between one heading and
// the next, using this form:
//
//	# Analyzer NAME
//
//	NAME: SUMMARY
//
//	Full description...
//
// where NAME matches the name argument, and SUMMARY is a brief
// verb-phrase that describes the analyzer. The following lines, up
// until the next heading or the end of the comment, contain the full
// description. ExtractDoc returns the portion following the colon,
// which is the form expected by Analyzer.Doc.
//
// Example:
//
//	# Analyzer printf
//
//	printf: checks consistency of calls to printf
//
//	The printf analyzer checks consistency of calls to printf.
//	Here is the complete description...
//
// This notation allows a single doc comment to provide documentation
// for multiple analyzers, each in its own section.
// The HTML anchors generated for each heading are predictable.
//
// It returns an error if the content was not a valid Go source file
// containing a package doc comment with a heading of the required
// form.
//
// This machinery enables the package documentation (typically
// accessible via the web at https://pkg.go.dev/) and the command
// documentation (typically printed to a terminal) to be derived from
// the same source and formatted appropriately.
func ExtractDoc(content, name string) (string, error) {
	if content == "" {
		return "", fmt.Errorf("empty Go source file")
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "", content, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return "", fmt.Errorf("not a Go source file")
	}
	if f.Doc == nil {
		return "", fmt.Errorf("Go source file has no package doc comment")
	}
	for _, section := range strings.Split(f.Doc.Text(), "\n# ") {
		if body := strings.TrimPrefix(section, "Analyzer "+name); body != section &&
			body != "" &&
			body[0] == '\r' || body[0] == '\n' {
			body = strings.TrimSpace(body)
			rest := strings.TrimPrefix(body, name+":")
			if rest == body {
				return "", fmt.Errorf("'Analyzer %s' heading not followed by '%s: summary...' line", name, name)
			}
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("package doc comment contains no 'Analyzer %s' heading", name)
}
