// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package facts defines a serializable set of analysis.Fact.
//
// It provides a partial implementation of the Fact-related parts of the
// analysis.Pass interface for use in analysis drivers such as "go vet"
// and other build systems.
//
// The serial format is unspecified and may change, so the same version
// of this package must be used for reading and writing serialized facts.
//
// The handling of facts in the analysis system parallels the handling
// of type information in the compiler: during compilation of package P,
// the compiler emits an export data file that describes the type of
// every object (named thing) defined in package P, plus every object
// indirectly reachable from one of those objects. Thus the downstream
// compiler of package Q need only load one export data file per direct
// import of Q, and it will learn everything about the API of package P
// and everything it needs to know about the API of P's dependencies.
//
// Similarly, analysis of package P emits a fact set containing facts
// about all objects exported from P, plus additional facts about only
// those objects of P's dependencies that are reachable from the API of
// package P; the downstream analysis of Q need only load one fact set
// per direct import of Q.
//
// The notion of "exportedness" that matters here is that of the
// compiler. According to the language spec, a method pkg.T.f is
// unexported simply because its name starts with lowercase. But the
// compiler must nonetheless export f so that downstream compilations can
// accurately ascertain whether pkg.T implements an interface pkg.I
// defined as interface{f()}. Exported thus means "described in export
// data".
package facts

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"io"
	"log"
	"reflect"
	"sort"
	"sync"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/objectpath"
)

const debug = false

// A Set is a set of analysis.Facts.
//
// Decode creates a Set of facts by reading from the imports of a given
// package, and Encode writes out the set. Between these operation,
// the Import and Export methods will query and update the set.
//
// All of Set's methods except String are safe to call concurrently.
type Set struct {
	pkg *types.Package
	mu  sync.Mutex
	m   map[key]analysis.Fact
}

type key struct {
	pkg *types.Package
	obj types.Object // (object facts only)
	t   reflect.Type
}

// ImportObjectFact implements analysis.Pass.ImportObjectFact.
func (s *Set) ImportObjectFact(obj types.Object, ptr analysis.Fact) bool {
	if obj == nil {
		panic("nil object")
	}
	key := key{pkg: obj.Pkg(), obj: obj, t: reflect.TypeOf(ptr)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(v).Elem())
		return true
	}
	return false
}

// ExportObjectFact implements analysis.Pass.ExportObjectFact.
func (s *Set) ExportObjectFact(obj types.Object, fact analysis.Fact) {
	if obj.Pkg() != s.pkg {
		log.Panicf("in package %s: ExportObjectFact(%s, %T): can't set fact on object belonging another package",
			s.pkg, obj, fact)
	}
	key := key{pkg: obj.Pkg(), obj: obj, t: reflect.TypeOf(fact)}
	s.mu.Lock()
	s.m[key] = fact // clobber any existing entry
	s.mu.Unlock()
}

func (s *Set) AllObjectFacts(filter map[reflect.Type]bool) []analysis.ObjectFact {
	var facts []analysis.ObjectFact
	s.mu.Lock()
	for k, v := range s.m {
		if k.obj != nil && filter[k.t] {
			facts = append(facts, analysis.ObjectFact{Object: k.obj, Fact: v})
		}
	}
	s.mu.Unlock()
	return facts
}

// ImportPackageFact implements analysis.Pass.ImportPackageFact.
func (s *Set) ImportPackageFact(pkg *types.Package, ptr analysis.Fact) bool {
	if pkg == nil {
		panic("nil package")
	}
	key := key{pkg: pkg, t: reflect.TypeOf(ptr)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(v).Elem())
		return true
	}
	return false
}

// ExportPackageFact implements analysis.Pass.ExportPackageFact.
func (s *Set) ExportPackageFact(fact analysis.Fact) {
	key := key{pkg: s.pkg, t: reflect.TypeOf(fact)}
	s.mu.Lock()
	s.m[key] = fact // clobber any existing entry
	s.mu.Unlock()
}

func (s *Set) AllPackageFacts(filter map[reflect.Type]bool) []analysis.PackageFact {
	var facts []analysis.PackageFact
	s.mu.Lock()
	for k, v := range s.m {
		if k.obj == nil && filter[k.t] {
			facts = append(facts, analysis.PackageFact{Package: k.pkg, Fact: v})
		}
	}
	s.mu.Unlock()
	return facts
}

// gobFact is the Gob declaration of a serialized fact.
type gobFact struct {
	PkgPath string          // path of package
	Object  objectpath.Path // optional path of object relative to package itself
	Fact    analysis.Fact   // type and value of user-defined Fact
}

// A Decoder decodes the facts from the direct imports of the package
// provided to NewEncoder. A single decoder may be used to decode
// multiple fact sets (e.g. each for a different set of fact types)
// for the same package. Each call to Decode returns an independent
// fact set.
type Decoder struct {
	pkg        *types.Package
	getPackage GetPackageFunc
}

// NewDecoder returns a fact decoder for the specified package.
//
// It uses a brute-force recursive approach to enumerate all objects
// defined by dependencies of pkg, so that it can learn the set of
// package paths that may be mentioned in the fact encoding. This does
// not scale well; use [NewDecoderFunc] where possible.
func NewDecoder(pkg *types.Package) *Decoder {
	// Compute the import map for this package.
	// See the package doc comment.
	m := importMap(pkg.Imports())
	getPackageFunc := func(path string) *types.Package { return m[path] }
	return NewDecoderFunc(pkg, getPackageFunc)
}

// NewDecoderFunc returns a fact decoder for the specified package.
//
// It calls the getPackage function for the package path string of
// each dependency (perhaps indirect) that it encounters in the
// encoding. If the function returns nil, the fact is discarded.
//
// This function is preferred over [NewDecoder] when the client is
// capable of efficient look-up of packages by package path.
func NewDecoderFunc(pkg *types.Package, getPackage GetPackageFunc) *Decoder {
	return &Decoder{
		pkg:        pkg,
		getPackage: getPackage,
	}
}

// A GetPackageFunc function returns the package denoted by a package path.
type GetPackageFunc = func(pkgPath string) *types.Package

// Decode decodes all the facts relevant to the analysis of package
// pkgPath. The read function reads serialized fact data from an external
// source for one of pkg's direct imports, identified by package path.
// The empty file is a valid encoding of an empty fact set.
//
// It is the caller's responsibility to call gob.Register on all
// necessary fact types.
//
// Concurrent calls to Decode are safe, so long as the
// [GetPackageFunc] (if any) is also concurrency-safe.
func (d *Decoder) Decode(read func(pkgPath string) ([]byte, error)) (*Set, error) {
	// Read facts from imported packages.
	// Facts may describe indirectly imported packages, or their objects.
	m := make(map[key]analysis.Fact) // one big bucket
	for _, imp := range d.pkg.Imports() {
		logf := func(format string, args ...interface{}) {
			if debug {
				prefix := fmt.Sprintf("in %s, importing %s: ",
					d.pkg.Path(), imp.Path())
				log.Print(prefix, fmt.Sprintf(format, args...))
			}
		}

		// Read the gob-encoded facts.
		data, err := read(imp.Path())
		if err != nil {
			return nil, fmt.Errorf("in %s, can't import facts for package %q: %v",
				d.pkg.Path(), imp.Path(), err)
		}
		if len(data) == 0 {
			continue // no facts
		}
		var gobFacts []gobFact
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gobFacts); err != nil {
			return nil, fmt.Errorf("decoding facts for %q: %v", imp.Path(), err)
		}
		logf("decoded %d facts: %v", len(gobFacts), gobFacts)

		// Parse each one into a key and a Fact.
		for _, f := range gobFacts {
			factPkg := d.getPackage(f.PkgPath) // possibly an indirect dependency
			if factPkg == nil {
				// Fact relates to a dependency that was
				// unused in this translation unit. Skip.
				logf("no package %q; discarding %v", f.PkgPath, f.Fact)
				continue
			}
			key := key{pkg: factPkg, t: reflect.TypeOf(f.Fact)}
			if f.Object != "" {
				// object fact
				obj, err := objectpath.Object(factPkg, f.Object)
				if err != nil {
					// (most likely due to unexported object)
					// TODO(adonovan): audit for other possibilities.
					logf("no object for path: %v; discarding %s", err, f.Fact)
					continue
				}
				key.obj = obj
				logf("read %T fact %s for %v", f.Fact, f.Fact, key.obj)
			} else {
				// package fact
				logf("read %T fact %s for %v", f.Fact, f.Fact, factPkg)
			}
			m[key] = f.Fact
		}
	}

	return &Set{pkg: d.pkg, m: m}, nil
}

// Encode encodes a set of facts to a memory buffer.
//
// It may fail if one of the Facts could not be gob-encoded, but this is
// a sign of a bug in an Analyzer.
func (s *Set) Encode() []byte {
	encoder := new(objectpath.Encoder)

	// TODO(adonovan): opt: use a more efficient encoding
	// that avoids repeating PkgPath for each fact.

	// Gather all facts, including those from imported packages.
	var gobFacts []gobFact

	s.mu.Lock()
	for k, fact := range s.m {
		if debug {
			log.Printf("%v => %s\n", k, fact)
		}

		// Don't export facts that we imported from another
		// package, unless they represent fields or methods,
		// or package-level types.
		// (Facts about packages, and other package-level
		// objects, are only obtained from direct imports so
		// they needn't be reexported.)
		//
		// This is analogous to the pruning done by "deep"
		// export data for types, but not as precise because
		// we aren't careful about which structs or methods
		// we rexport: it should be only those referenced
		// from the API of s.pkg.
		// TODO(adonovan): opt: be more precise. e.g.
		// intersect with the set of objects computed by
		// importMap(s.pkg.Imports()).
		// TODO(adonovan): opt: implement "shallow" facts.
		if k.pkg != s.pkg {
			if k.obj == nil {
				continue // imported package fact
			}
			if _, isType := k.obj.(*types.TypeName); !isType &&
				k.obj.Parent() == k.obj.Pkg().Scope() {
				continue // imported fact about package-level non-type object
			}
		}

		var object objectpath.Path
		if k.obj != nil {
			path, err := encoder.For(k.obj)
			if err != nil {
				if debug {
					log.Printf("discarding fact %s about %s\n", fact, k.obj)
				}
				continue // object not accessible from package API; discard fact
			}
			object = path
		}
		gobFacts = append(gobFacts, gobFact{
			PkgPath: k.pkg.Path(),
			Object:  object,
			Fact:    fact,
		})
	}
	s.mu.Unlock()

	// Sort facts by (package, object, type) for determinism.
	sort.Slice(gobFacts, func(i, j int) bool {
		x, y := gobFacts[i], gobFacts[j]
		if x.PkgPath != y.PkgPath {
			return x.PkgPath < y.PkgPath
		}
		if x.Object != y.Object {
			return x.Object < y.Object
		}
		tx := reflect.TypeOf(x.Fact)
		ty := reflect.TypeOf(y.Fact)
		if tx != ty {
			return tx.String() < ty.String()
		}
		return false // equal
	})

	var buf bytes.Buffer
	if len(gobFacts) > 0 {
		if err := gob.NewEncoder(&buf).Encode(gobFacts); err != nil {
			// Fact encoding should never fail. Identify the culprit.
			for _, gf := range gobFacts {
				if err := gob.NewEncoder(io.Discard).Encode(gf); err != nil {
					fact := gf.Fact
					pkgpath := reflect.TypeOf(fact).Elem().PkgPath()
					log.Panicf("internal error: gob encoding of analysis fact %s failed: %v; please report a bug against fact %T in package %q",
						fact, err, fact, pkgpath)
				}
			}
		}
	}

	if debug {
		log.Printf("package %q: encode %d facts, %d bytes\n",
			s.pkg.Path(), len(gobFacts), buf.Len())
	}

	return buf.Bytes()
}

// String is provided only for debugging, and must not be called
// concurrent with any Import/Export method.
func (s *Set) String() string {
	var buf bytes.Buffer
	buf.WriteString("{")
	for k, f := range s.m {
		if buf.Len() > 1 {
			buf.WriteString(", ")
		}
		if k.obj != nil {
			buf.WriteString(k.obj.String())
		} else {
			buf.WriteString(k.pkg.Path())
		}
		fmt.Fprintf(&buf, ": %v", f)
	}
	buf.WriteString("}")
	return buf.String()
}
