// Copyright 2022 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typeparams

import (
	"fmt"
	"go/types"
)

// CoreType returns the core type of T or nil if T does not have a core type.
//
// See https://go.dev/ref/spec#Core_types for the definition of a core type.
func CoreType(T types.Type) types.Type {
	U := T.Underlying()
	if _, ok := U.(*types.Interface); !ok {
		return U // for non-interface types,
	}

	terms, err := NormalTerms(U)
	if len(terms) == 0 || err != nil {
		// len(terms) -> empty type set of interface.
		// err != nil => U is invalid, exceeds complexity bounds, or has an empty type set.
		return nil // no core type.
	}

	U = terms[0].Type().Underlying()
	var identical int // i in [0,identical) => Identical(U, terms[i].Type().Underlying())
	for identical = 1; identical < len(terms); identical++ {
		if !types.Identical(U, terms[identical].Type().Underlying()) {
			break
		}
	}

	if identical == len(terms) {
		// https://go.dev/ref/spec#Core_types
		// "There is a single type U which is the underlying type of all types in the type set of T"
		return U
	}
	ch, ok := U.(*types.Chan)
	if !ok {
		return nil // no core type as identical < len(terms) and U is not a channel.
	}
	// https://go.dev/ref/spec#Core_types
	// "the type chan E if T contains only bidirectional channels, or the type chan<- E or
	// <-chan E depending on the direction of the directional channels present."
	for chans := identical; chans < len(terms); chans++ {
		curr, ok := terms[chans].Type().Underlying().(*types.Chan)
		if !ok {
			return nil
		}
		if !types.Identical(ch.Elem(), curr.Elem()) {
			return nil // channel elements are not identical.
		}
		if ch.Dir() == types.SendRecv {
			// ch is bidirectional. We can safely always use curr's direction.
			ch = curr
		} else if curr.Dir() != types.SendRecv && ch.Dir() != curr.Dir() {
			// ch and curr are not bidirectional and not the same direction.
			return nil
		}
	}
	return ch
}

// NormalTerms returns a slice of terms representing the normalized structural
// type restrictions of a type, if any.
//
// For all types other than *types.TypeParam, *types.Interface, and
// *types.Union, this is just a single term with Tilde() == false and
// Type() == typ. For *types.TypeParam, *types.Interface, and *types.Union, see
// below.
//
// Structural type restrictions of a type parameter are created via
// non-interface types embedded in its constraint interface (directly, or via a
// chain of interface embeddings). For example, in the declaration type
// T[P interface{~int; m()}] int the structural restriction of the type
// parameter P is ~int.
//
// With interface embedding and unions, the specification of structural type
// restrictions may be arbitrarily complex. For example, consider the
// following:
//
//	type A interface{ ~string|~[]byte }
//
//	type B interface{ int|string }
//
//	type C interface { ~string|~int }
//
//	type T[P interface{ A|B; C }] int
//
// In this example, the structural type restriction of P is ~string|int: A|B
// expands to ~string|~[]byte|int|string, which reduces to ~string|~[]byte|int,
// which when intersected with C (~string|~int) yields ~string|int.
//
// NormalTerms computes these expansions and reductions, producing a
// "normalized" form of the embeddings. A structural restriction is normalized
// if it is a single union containing no interface terms, and is minimal in the
// sense that removing any term changes the set of types satisfying the
// constraint. It is left as a proof for the reader that, modulo sorting, there
// is exactly one such normalized form.
//
// Because the minimal representation always takes this form, NormalTerms
// returns a slice of tilde terms corresponding to the terms of the union in
// the normalized structural restriction. An error is returned if the type is
// invalid, exceeds complexity bounds, or has an empty type set. In the latter
// case, NormalTerms returns ErrEmptyTypeSet.
//
// NormalTerms makes no guarantees about the order of terms, except that it
// is deterministic.
func NormalTerms(typ types.Type) ([]*types.Term, error) {
	switch typ := typ.Underlying().(type) {
	case *types.TypeParam:
		return StructuralTerms(typ)
	case *types.Union:
		return UnionTermSet(typ)
	case *types.Interface:
		return InterfaceTermSet(typ)
	default:
		return []*types.Term{types.NewTerm(false, typ)}, nil
	}
}

// Deref returns the type of the variable pointed to by t,
// if t's core type is a pointer; otherwise it returns t.
//
// Do not assume that Deref(T)==T implies T is not a pointer:
// consider "type T *T", for example.
//
// TODO(adonovan): ideally this would live in typesinternal, but that
// creates an import cycle. Move there when we melt this package down.
func Deref(t types.Type) types.Type {
	if ptr, ok := CoreType(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// MustDeref returns the type of the variable pointed to by t.
// It panics if t's core type is not a pointer.
//
// TODO(adonovan): ideally this would live in typesinternal, but that
// creates an import cycle. Move there when we melt this package down.
func MustDeref(t types.Type) types.Type {
	if ptr, ok := CoreType(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	panic(fmt.Sprintf("%v is not a pointer", t))
}
