// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typeparams

import (
	"go/types"

	"golang.org/x/tools/internal/aliases"
)

// Free is a memoization of the set of free type parameters within a
// type. It makes a sequence of calls to [Free.Has] for overlapping
// types more efficient. The zero value is ready for use.
//
// NOTE: Adapted from go/types/infer.go. If it is later exported, factor.
type Free struct {
	seen map[types.Type]bool
}

// Has reports whether the specified type has a free type parameter.
func (w *Free) Has(typ types.Type) (res bool) {
	// detect cycles
	if x, ok := w.seen[typ]; ok {
		return x
	}
	if w.seen == nil {
		w.seen = make(map[types.Type]bool)
	}
	w.seen[typ] = false
	defer func() {
		w.seen[typ] = res
	}()

	switch t := typ.(type) {
	case nil, *types.Basic: // TODO(gri) should nil be handled here?
		break

	case *types.Alias:
		if aliases.TypeParams(t).Len() > aliases.TypeArgs(t).Len() {
			return true // This is an uninstantiated Alias.
		}
		// The expansion of an alias can have free type parameters,
		// whether or not the alias itself has type parameters:
		//
		//   func _[K comparable]() {
		//     type Set      = map[K]bool // free(Set)      = {K}
		//     type MapTo[V] = map[K]V    // free(Map[foo]) = {V}
		//   }
		//
		// So, we must Unalias.
		return w.Has(types.Unalias(t))

	case *types.Array:
		return w.Has(t.Elem())

	case *types.Slice:
		return w.Has(t.Elem())

	case *types.Struct:
		for i, n := 0, t.NumFields(); i < n; i++ {
			if w.Has(t.Field(i).Type()) {
				return true
			}
		}

	case *types.Pointer:
		return w.Has(t.Elem())

	case *types.Tuple:
		n := t.Len()
		for i := 0; i < n; i++ {
			if w.Has(t.At(i).Type()) {
				return true
			}
		}

	case *types.Signature:
		// t.tparams may not be nil if we are looking at a signature
		// of a generic function type (or an interface method) that is
		// part of the type we're testing. We don't care about these type
		// parameters.
		// Similarly, the receiver of a method may declare (rather than
		// use) type parameters, we don't care about those either.
		// Thus, we only need to look at the input and result parameters.
		return w.Has(t.Params()) || w.Has(t.Results())

	case *types.Interface:
		for i, n := 0, t.NumMethods(); i < n; i++ {
			if w.Has(t.Method(i).Type()) {
				return true
			}
		}
		terms, err := InterfaceTermSet(t)
		if err != nil {
			return false // ill typed
		}
		for _, term := range terms {
			if w.Has(term.Type()) {
				return true
			}
		}

	case *types.Map:
		return w.Has(t.Key()) || w.Has(t.Elem())

	case *types.Chan:
		return w.Has(t.Elem())

	case *types.Named:
		args := t.TypeArgs()
		if params := t.TypeParams(); params.Len() > args.Len() {
			return true // this is an uninstantiated named type.
		}
		for i, n := 0, args.Len(); i < n; i++ {
			if w.Has(args.At(i)) {
				return true
			}
		}
		return w.Has(t.Underlying()) // recurse for types local to parameterized functions

	case *types.TypeParam:
		return true

	default:
		panic(t) // unreachable
	}

	return false
}
