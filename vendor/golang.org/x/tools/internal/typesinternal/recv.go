// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typesinternal

import (
	"go/types"
)

// ReceiverNamed returns the named type (if any) associated with the
// type of recv, which may be of the form N or *N, or aliases thereof.
// It also reports whether a Pointer was present.
func ReceiverNamed(recv *types.Var) (isPtr bool, named *types.Named) {
	t := recv.Type()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		isPtr = true
		t = ptr.Elem()
	}
	named, _ = types.Unalias(t).(*types.Named)
	return
}

// Unpointer returns T given *T or an alias thereof.
// For all other types it is the identity function.
// It does not look at underlying types.
// The result may be an alias.
//
// Use this function to strip off the optional pointer on a receiver
// in a field or method selection, without losing the named type
// (which is needed to compute the method set).
//
// See also [typeparams.MustDeref], which removes one level of
// indirection from the type, regardless of named types (analogous to
// a LOAD instruction).
func Unpointer(t types.Type) types.Type {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
