// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typesinternal

import (
	"fmt"
	"go/types"

	"golang.org/x/tools/go/types/typeutil"
)

// ForEachElement calls f for type T and each type reachable from its
// type through reflection. It does this by recursively stripping off
// type constructors; in addition, for each named type N, the type *N
// is added to the result as it may have additional methods.
//
// The caller must provide an initially empty set used to de-duplicate
// identical types, potentially across multiple calls to ForEachElement.
// (Its final value holds all the elements seen, matching the arguments
// passed to f.)
//
// TODO(adonovan): share/harmonize with go/callgraph/rta.
func ForEachElement(rtypes *typeutil.Map, msets *typeutil.MethodSetCache, T types.Type, f func(types.Type)) {
	var visit func(T types.Type, skip bool)
	visit = func(T types.Type, skip bool) {
		if !skip {
			if seen, _ := rtypes.Set(T, true).(bool); seen {
				return // de-dup
			}

			f(T) // notify caller of new element type
		}

		// Recursion over signatures of each method.
		tmset := msets.MethodSet(T)
		for i := 0; i < tmset.Len(); i++ {
			sig := tmset.At(i).Type().(*types.Signature)
			// It is tempting to call visit(sig, false)
			// but, as noted in golang.org/cl/65450043,
			// the Signature.Recv field is ignored by
			// types.Identical and typeutil.Map, which
			// is confusing at best.
			//
			// More importantly, the true signature rtype
			// reachable from a method using reflection
			// has no receiver but an extra ordinary parameter.
			// For the Read method of io.Reader we want:
			//   func(Reader, []byte) (int, error)
			// but here sig is:
			//   func([]byte) (int, error)
			// with .Recv = Reader (though it is hard to
			// notice because it doesn't affect Signature.String
			// or types.Identical).
			//
			// TODO(adonovan): construct and visit the correct
			// non-method signature with an extra parameter
			// (though since unnamed func types have no methods
			// there is essentially no actual demand for this).
			//
			// TODO(adonovan): document whether or not it is
			// safe to skip non-exported methods (as RTA does).
			visit(sig.Params(), true)  // skip the Tuple
			visit(sig.Results(), true) // skip the Tuple
		}

		switch T := T.(type) {
		case *types.Alias:
			visit(types.Unalias(T), skip) // emulates the pre-Alias behavior

		case *types.Basic:
			// nop

		case *types.Interface:
			// nop---handled by recursion over method set.

		case *types.Pointer:
			visit(T.Elem(), false)

		case *types.Slice:
			visit(T.Elem(), false)

		case *types.Chan:
			visit(T.Elem(), false)

		case *types.Map:
			visit(T.Key(), false)
			visit(T.Elem(), false)

		case *types.Signature:
			if T.Recv() != nil {
				panic(fmt.Sprintf("Signature %s has Recv %s", T, T.Recv()))
			}
			visit(T.Params(), true)  // skip the Tuple
			visit(T.Results(), true) // skip the Tuple

		case *types.Named:
			// A pointer-to-named type can be derived from a named
			// type via reflection.  It may have methods too.
			visit(types.NewPointer(T), false)

			// Consider 'type T struct{S}' where S has methods.
			// Reflection provides no way to get from T to struct{S},
			// only to S, so the method set of struct{S} is unwanted,
			// so set 'skip' flag during recursion.
			visit(T.Underlying(), true) // skip the unnamed type

		case *types.Array:
			visit(T.Elem(), false)

		case *types.Struct:
			for i, n := 0, T.NumFields(); i < n; i++ {
				// TODO(adonovan): document whether or not
				// it is safe to skip non-exported fields.
				visit(T.Field(i).Type(), false)
			}

		case *types.Tuple:
			for i, n := 0, T.Len(); i < n; i++ {
				visit(T.At(i).Type(), false)
			}

		case *types.TypeParam, *types.Union:
			// forEachReachable must not be called on parameterized types.
			panic(T)

		default:
			panic(T)
		}
	}
	visit(T, false)
}
