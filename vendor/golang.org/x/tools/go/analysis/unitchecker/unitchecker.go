// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// The unitchecker package defines the main function for an analysis
// driver that analyzes a single compilation unit during a build.
// It is invoked by a build system such as "go vet":
//
//	$ go vet -vettool=$(which vet)
//
// It supports the following command-line protocol:
//
//	-V=full         describe executable               (to the build tool)
//	-flags          describe flags                    (to the build tool)
//	foo.cfg         description of compilation unit (from the build tool)
//
// This package does not depend on go/packages.
// If you need a standalone tool, use multichecker,
// which supports this mode but can also load packages
// from source using go/packages.
package unitchecker

// TODO(adonovan):
// - with gccgo, go build does not build standard library,
//   so we will not get to analyze it. Yet we must in order
//   to create base facts for, say, the fmt package for the
//   printf checker.

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/internal/analysisflags"
	"golang.org/x/tools/internal/analysisinternal"
	"golang.org/x/tools/internal/facts"
)

// A Config describes a compilation unit to be analyzed.
// It is provided to the tool in a JSON-encoded file
// whose name ends with ".cfg".
type Config struct {
	ID                        string // e.g. "fmt [fmt.test]"
	Compiler                  string // gc or gccgo, provided to MakeImporter
	Dir                       string // (unused)
	ImportPath                string // package path
	GoVersion                 string // minimum required Go version, such as "go1.21.0"
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string            // module path
	ModuleVersion             string            // module version
	ImportMap                 map[string]string // maps import path to package path
	PackageFile               map[string]string // maps package path to file of type information
	Standard                  map[string]bool   // package belongs to standard library
	PackageVetx               map[string]string // maps package path to file of fact information
	VetxOnly                  bool              // run analysis only for facts, not diagnostics
	VetxOutput                string            // where to write file of fact information
	SucceedOnTypecheckFailure bool
}

// Main is the main function of a vet-like analysis tool that must be
// invoked by a build system to analyze a single package.
//
// The protocol required by 'go vet -vettool=...' is that the tool must support:
//
//	-flags          describe flags in JSON
//	-V=full         describe executable for build caching
//	foo.cfg         perform separate modular analyze on the single
//	                unit described by a JSON config file foo.cfg.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s is a tool for static analysis of Go programs.

Usage of %[1]s:
	%.16[1]s unit.cfg	# execute analysis specified by config file
	%.16[1]s help    	# general help, including listing analyzers and flags
	%.16[1]s help name	# help on specific analyzer and its flags
`, progname)
		os.Exit(1)
	}

	analyzers = analysisflags.Parse(analyzers, true)

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if args[0] == "help" {
		analysisflags.Help(progname, analyzers, args[1:])
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking "go tool vet" directly is unsupported; use "go vet"`)
	}
	Run(args[0], analyzers)
}

// Run reads the *.cfg file, runs the analysis,
// and calls os.Exit with an appropriate error code.
// It assumes flags have already been set.
func Run(configFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	fset := token.NewFileSet()
	results, err := run(fset, cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}

	// In VetxOnly mode, the analysis is run only for facts.
	if !cfg.VetxOnly {
		if analysisflags.JSON {
			// JSON output
			tree := make(analysisflags.JSONTree)
			for _, res := range results {
				tree.Add(fset, cfg.ID, res.a.Name, res.diagnostics, res.err)
			}
			tree.Print(os.Stdout)
		} else {
			// plain text
			exit := 0
			for _, res := range results {
				if res.err != nil {
					log.Println(res.err)
					exit = 1
				}
			}
			for _, res := range results {
				for _, diag := range res.diagnostics {
					analysisflags.PrintPlain(os.Stderr, fset, analysisflags.Context, diag)
					exit = 1
				}
			}
			os.Exit(exit)
		}
	}

	os.Exit(0)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		// The go command disallows packages with no files.
		// The only exception is unsafe, but the go command
		// doesn't call vet on it.
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

type factImporter = func(pkgPath string) ([]byte, error)

// These four hook variables are a proof of concept of a future
// parameterization of a unitchecker API that allows the client to
// determine how and where facts and types are produced and consumed.
// (Note that the eventual API will likely be quite different.)
//
// The defaults honor a Config in a manner compatible with 'go vet'.
var (
	makeTypesImporter = func(cfg *Config, fset *token.FileSet) types.Importer {
		compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
			// path is a resolved package path, not an import path.
			file, ok := cfg.PackageFile[path]
			if !ok {
				if cfg.Compiler == "gccgo" && cfg.Standard[path] {
					return nil, nil // fall back to default gccgo lookup
				}
				return nil, fmt.Errorf("no package file for %q", path)
			}
			return os.Open(file)
		})
		return importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", path)
			}
			return compilerImporter.Import(path)
		})
	}

	exportTypes = func(*Config, *token.FileSet, *types.Package) error {
		// By default this is a no-op, because "go vet"
		// makes the compiler produce type information.
		return nil
	}

	makeFactImporter = func(cfg *Config) factImporter {
		return func(pkgPath string) ([]byte, error) {
			if vetx, ok := cfg.PackageVetx[pkgPath]; ok {
				return os.ReadFile(vetx)
			}
			return nil, nil // no .vetx file, no facts
		}
	}

	exportFacts = func(cfg *Config, data []byte) error {
		return os.WriteFile(cfg.VetxOutput, data, 0666)
	}
)

func run(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]result, error) {
	// Load, parse, typecheck.
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				// Silently succeed; let the compiler
				// report parse errors.
				err = nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer:  makeTypesImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH), // TODO(adonovan): use cfg.Compiler
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}

	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// Silently succeed; let the compiler
			// report type errors.
			err = nil
		}
		return nil, err
	}

	// Register fact types with gob.
	// In VetxOnly mode, analyzers are only for their facts,
	// so we can skip any analysis that neither produces facts
	// nor depends on any analysis that produces facts.
	//
	// TODO(adonovan): fix: the command (and logic!) here are backwards.
	// It should say "...nor is required by any...". (Issue 443099)
	//
	// Also build a map to hold working state and result.
	type action struct {
		once        sync.Once
		result      interface{}
		err         error
		usesFacts   bool // (transitively uses)
		diagnostics []analysis.Diagnostic
	}
	actions := make(map[*analysis.Analyzer]*action)
	var registerFacts func(a *analysis.Analyzer) bool
	registerFacts = func(a *analysis.Analyzer) bool {
		act, ok := actions[a]
		if !ok {
			act = new(action)
			var usesFacts bool
			for _, f := range a.FactTypes {
				usesFacts = true
				gob.Register(f)
			}
			for _, req := range a.Requires {
				if registerFacts(req) {
					usesFacts = true
				}
			}
			act.usesFacts = usesFacts
			actions[a] = act
		}
		return act.usesFacts
	}
	var filtered []*analysis.Analyzer
	for _, a := range analyzers {
		if registerFacts(a) || !cfg.VetxOnly {
			filtered = append(filtered, a)
		}
	}
	analyzers = filtered

	// Read facts from imported packages.
	facts, err := facts.NewDecoder(pkg).Decode(makeFactImporter(cfg))
	if err != nil {
		return nil, err
	}

	// In parallel, execute the DAG of analyzers.
	var exec func(a *analysis.Analyzer) *action
	var execAll func(analyzers []*analysis.Analyzer)
	exec = func(a *analysis.Analyzer) *action {
		act := actions[a]
		act.once.Do(func() {
			execAll(a.Requires) // prefetch dependencies in parallel

			// The inputs to this analysis are the
			// results of its prerequisites.
			inputs := make(map[*analysis.Analyzer]interface{})
			var failed []string
			for _, req := range a.Requires {
				reqact := exec(req)
				if reqact.err != nil {
					failed = append(failed, req.String())
					continue
				}
				inputs[req] = reqact.result
			}

			// Report an error if any dependency failed.
			if failed != nil {
				sort.Strings(failed)
				act.err = fmt.Errorf("failed prerequisites: %s", strings.Join(failed, ", "))
				return
			}

			factFilter := make(map[reflect.Type]bool)
			for _, f := range a.FactTypes {
				factFilter[reflect.TypeOf(f)] = true
			}

			module := &analysis.Module{
				Path:      cfg.ModulePath,
				Version:   cfg.ModuleVersion,
				GoVersion: cfg.GoVersion,
			}

			pass := &analysis.Pass{
				Analyzer:          a,
				Fset:              fset,
				Files:             files,
				OtherFiles:        cfg.NonGoFiles,
				IgnoredFiles:      cfg.IgnoredFiles,
				Pkg:               pkg,
				TypesInfo:         info,
				TypesSizes:        tc.Sizes,
				TypeErrors:        nil, // unitchecker doesn't RunDespiteErrors
				ResultOf:          inputs,
				Report:            func(d analysis.Diagnostic) { act.diagnostics = append(act.diagnostics, d) },
				ImportObjectFact:  facts.ImportObjectFact,
				ExportObjectFact:  facts.ExportObjectFact,
				AllObjectFacts:    func() []analysis.ObjectFact { return facts.AllObjectFacts(factFilter) },
				ImportPackageFact: facts.ImportPackageFact,
				ExportPackageFact: facts.ExportPackageFact,
				AllPackageFacts:   func() []analysis.PackageFact { return facts.AllPackageFacts(factFilter) },
				Module:            module,
			}
			pass.ReadFile = analysisinternal.MakeReadFile(pass)

			t0 := time.Now()
			act.result, act.err = a.Run(pass)

			if act.err == nil { // resolve URLs on diagnostics.
				for i := range act.diagnostics {
					if url, uerr := analysisflags.ResolveURL(a, act.diagnostics[i]); uerr == nil {
						act.diagnostics[i].URL = url
					} else {
						act.err = uerr // keep the last error
					}
				}
			}
			if false {
				log.Printf("analysis %s = %s", pass, time.Since(t0))
			}
		})
		return act
	}
	execAll = func(analyzers []*analysis.Analyzer) {
		var wg sync.WaitGroup
		for _, a := range analyzers {
			wg.Add(1)
			go func(a *analysis.Analyzer) {
				_ = exec(a)
				wg.Done()
			}(a)
		}
		wg.Wait()
	}

	execAll(analyzers)

	// Return diagnostics and errors from root analyzers.
	results := make([]result, len(analyzers))
	for i, a := range analyzers {
		act := actions[a]
		results[i].a = a
		results[i].err = act.err
		results[i].diagnostics = act.diagnostics
	}

	data := facts.Encode()
	if err := exportFacts(cfg, data); err != nil {
		return nil, fmt.Errorf("failed to export analysis facts: %v", err)
	}
	if err := exportTypes(cfg, fset, pkg); err != nil {
		return nil, fmt.Errorf("failed to export type information: %v", err)
	}

	return results, nil
}

type result struct {
	a           *analysis.Analyzer
	diagnostics []analysis.Diagnostic
	err         error
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
