// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package analysisflags

import (
	"fmt"
	"net/url"

	"golang.org/x/tools/go/analysis"
)

// ResolveURL resolves the URL field for a Diagnostic from an Analyzer
// and returns the URL. See Diagnostic.URL for details.
func ResolveURL(a *analysis.Analyzer, d analysis.Diagnostic) (string, error) {
	if d.URL == "" && d.Category == "" && a.URL == "" {
		return "", nil // do nothing
	}
	raw := d.URL
	if d.URL == "" && d.Category != "" {
		raw = "#" + d.Category
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("invalid Diagnostic.URL %q: %s", raw, err)
	}
	base, err := url.Parse(a.URL)
	if err != nil {
		return "", fmt.Errorf("invalid Analyzer.URL %q: %s", a.URL, err)
	}
	return base.ResolveReference(u).String(), nil
}
