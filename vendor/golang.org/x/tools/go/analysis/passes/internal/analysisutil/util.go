// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package analysisutil defines various helper functions
// used by two or more packages beneath go/analysis.
package analysisutil

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"os"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/internal/analysisinternal"
)

// Format returns a string representation of the expression.
func Format(fset *token.FileSet, x ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, fset, x)
	return b.String()
}

// HasSideEffects reports whether evaluation of e has side effects.
func HasSideEffects(info *types.Info, e ast.Expr) bool {
	safe := true
	ast.Inspect(e, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			typVal := info.Types[n.Fun]
			switch {
			case typVal.IsType():
				// Type conversion, which is safe.
			case typVal.IsBuiltin():
				// Builtin func, conservatively assumed to not
				// be safe for now.
				safe = false
				return false
			default:
				// A non-builtin func or method call.
				// Conservatively assume that all of them have
				// side effects for now.
				safe = false
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				safe = false
				return false
			}
		}
		return true
	})
	return !safe
}

// ReadFile reads a file and adds it to the FileSet
// so that we can report errors against it using lineStart.
func ReadFile(pass *analysis.Pass, filename string) ([]byte, *token.File, error) {
	readFile := pass.ReadFile
	if readFile == nil {
		readFile = os.ReadFile
	}
	content, err := readFile(filename)
	if err != nil {
		return nil, nil, err
	}
	tf := pass.Fset.AddFile(filename, -1, len(content))
	tf.SetLinesForContent(content)
	return content, tf, nil
}

// LineStart returns the position of the start of the specified line
// within file f, or NoPos if there is no line of that number.
func LineStart(f *token.File, line int) token.Pos {
	// Use binary search to find the start offset of this line.
	//
	// TODO(adonovan): eventually replace this function with the
	// simpler and more efficient (*go/token.File).LineStart, added
	// in go1.12.

	min := 0        // inclusive
	max := f.Size() // exclusive
	for {
		offset := (min + max) / 2
		pos := f.Pos(offset)
		posn := f.Position(pos)
		if posn.Line == line {
			return pos - (token.Pos(posn.Column) - 1)
		}

		if min+1 >= max {
			return token.NoPos
		}

		if posn.Line < line {
			min = offset
		} else {
			max = offset
		}
	}
}

// Imports returns true if path is imported by pkg.
func Imports(pkg *types.Package, path string) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// IsNamedType reports whether t is the named type with the given package path
// and one of the given names.
// This function avoids allocating the concatenation of "pkg.Name",
// which is important for the performance of syntax matching.
func IsNamedType(t types.Type, pkgPath string, names ...string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	name := obj.Name()
	for _, n := range names {
		if name == n {
			return true
		}
	}
	return false
}

// IsFunctionNamed reports whether f is a top-level function defined in the
// given package and has one of the given names.
// It returns false if f is nil or a method.
func IsFunctionNamed(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil {
		return false
	}
	if f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

var MustExtractDoc = analysisinternal.MustExtractDoc
