// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package atomic defines an Analyzer that checks for common mistakes
// using the sync/atomic package.
//
// # Analyzer atomic
//
// atomic: check for common mistakes using the sync/atomic package
//
// The atomic checker looks for assignment statements of the form:
//
//	x = atomic.AddUint64(&x, 1)
//
// which are not atomic.
package atomic
