// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package atomic

import (
	_ "embed"
	"go/ast"
	"go/token"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:             "atomic",
	Doc:              analysisutil.MustExtractDoc(doc, "atomic"),
	URL:              "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/atomic",
	Requires:         []*analysis.Analyzer{inspect.Analyzer},
	RunDespiteErrors: true,
	Run:              run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysisutil.Imports(pass.Pkg, "sync/atomic") {
		return nil, nil // doesn't directly import sync/atomic
	}

	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.AssignStmt)(nil),
	}
	inspect.Preorder(nodeFilter, func(node ast.Node) {
		n := node.(*ast.AssignStmt)
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		if len(n.Lhs) == 1 && n.Tok == token.DEFINE {
			return
		}

		for i, right := range n.Rhs {
			call, ok := right.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, call)
			if analysisutil.IsFunctionNamed(fn, "sync/atomic", "AddInt32", "AddInt64", "AddUint32", "AddUint64", "AddUintptr") {
				checkAtomicAddAssignment(pass, n.Lhs[i], call)
			}
		}
	})
	return nil, nil
}

// checkAtomicAddAssignment walks the atomic.Add* method calls checking
// for assigning the return value to the same variable being used in the
// operation
func checkAtomicAddAssignment(pass *analysis.Pass, left ast.Expr, call *ast.CallExpr) {
	if len(call.Args) != 2 {
		return
	}
	arg := call.Args[0]
	broken := false

	gofmt := func(e ast.Expr) string { return analysisutil.Format(pass.Fset, e) }

	if uarg, ok := arg.(*ast.UnaryExpr); ok && uarg.Op == token.AND {
		broken = gofmt(left) == gofmt(uarg.X)
	} else if star, ok := left.(*ast.StarExpr); ok {
		broken = gofmt(star.X) == gofmt(arg)
	}

	if broken {
		pass.ReportRangef(left, "direct assignment to atomic value")
	}
}
