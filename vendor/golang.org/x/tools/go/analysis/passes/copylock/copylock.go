// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package copylock defines an Analyzer that checks for locks
// erroneously passed by value.
package copylock

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typeparams"
	"golang.org/x/tools/internal/versions"
)

const Doc = `check for locks erroneously passed by value

Inadvertently copying a value containing a lock, such as sync.Mutex or
sync.WaitGroup, may cause both copies to malfunction. Generally such
values should be referred to through a pointer.`

var Analyzer = &analysis.Analyzer{
	Name:             "copylocks",
	Doc:              Doc,
	URL:              "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/copylock",
	Requires:         []*analysis.Analyzer{inspect.Analyzer},
	RunDespiteErrors: true,
	Run:              run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var goversion string // effective file version ("" => unknown)
	nodeFilter := []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.CompositeLit)(nil),
		(*ast.File)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
		(*ast.GenDecl)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.ReturnStmt)(nil),
	}
	inspect.WithStack(nodeFilter, func(node ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		switch node := node.(type) {
		case *ast.File:
			goversion = versions.FileVersion(pass.TypesInfo, node)
		case *ast.RangeStmt:
			checkCopyLocksRange(pass, node)
		case *ast.FuncDecl:
			checkCopyLocksFunc(pass, node.Name.Name, node.Recv, node.Type)
		case *ast.FuncLit:
			checkCopyLocksFunc(pass, "func", nil, node.Type)
		case *ast.CallExpr:
			checkCopyLocksCallExpr(pass, node)
		case *ast.AssignStmt:
			checkCopyLocksAssign(pass, node, goversion, parent(stack))
		case *ast.GenDecl:
			checkCopyLocksGenDecl(pass, node)
		case *ast.CompositeLit:
			checkCopyLocksCompositeLit(pass, node)
		case *ast.ReturnStmt:
			checkCopyLocksReturnStmt(pass, node)
		}
		return true
	})
	return nil, nil
}

// checkCopyLocksAssign checks whether an assignment
// copies a lock.
func checkCopyLocksAssign(pass *analysis.Pass, assign *ast.AssignStmt, goversion string, parent ast.Node) {
	lhs := assign.Lhs
	for i, x := range assign.Rhs {
		if path := lockPathRhs(pass, x); path != nil {
			pass.ReportRangef(x, "assignment copies lock value to %v: %v", analysisutil.Format(pass.Fset, assign.Lhs[i]), path)
			lhs = nil // An lhs has been reported. We prefer the assignment warning and do not report twice.
		}
	}

	// After GoVersion 1.22, loop variables are implicitly copied on each iteration.
	// So a for statement may inadvertently copy a lock when any of the
	// iteration variables contain locks.
	if assign.Tok == token.DEFINE && versions.AtLeast(goversion, versions.Go1_22) {
		if parent, _ := parent.(*ast.ForStmt); parent != nil && parent.Init == assign {
			for _, l := range lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil && obj.Type() != nil {
						if path := lockPath(pass.Pkg, obj.Type(), nil); path != nil {
							pass.ReportRangef(l, "for loop iteration copies lock value to %v: %v", analysisutil.Format(pass.Fset, l), path)
						}
					}
				}
			}
		}
	}
}

// checkCopyLocksGenDecl checks whether lock is copied
// in variable declaration.
func checkCopyLocksGenDecl(pass *analysis.Pass, gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		valueSpec := spec.(*ast.ValueSpec)
		for i, x := range valueSpec.Values {
			if path := lockPathRhs(pass, x); path != nil {
				pass.ReportRangef(x, "variable declaration copies lock value to %v: %v", valueSpec.Names[i].Name, path)
			}
		}
	}
}

// checkCopyLocksCompositeLit detects lock copy inside a composite literal
func checkCopyLocksCompositeLit(pass *analysis.Pass, cl *ast.CompositeLit) {
	for _, x := range cl.Elts {
		if node, ok := x.(*ast.KeyValueExpr); ok {
			x = node.Value
		}
		if path := lockPathRhs(pass, x); path != nil {
			pass.ReportRangef(x, "literal copies lock value from %v: %v", analysisutil.Format(pass.Fset, x), path)
		}
	}
}

// checkCopyLocksReturnStmt detects lock copy in return statement
func checkCopyLocksReturnStmt(pass *analysis.Pass, rs *ast.ReturnStmt) {
	for _, x := range rs.Results {
		if path := lockPathRhs(pass, x); path != nil {
			pass.ReportRangef(x, "return copies lock value: %v", path)
		}
	}
}

// checkCopyLocksCallExpr detects lock copy in the arguments to a function call
func checkCopyLocksCallExpr(pass *analysis.Pass, ce *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ce.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if fun, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		switch fun.Name() {
		case "new", "len", "cap", "Sizeof", "Offsetof", "Alignof":
			return
		}
	}
	for _, x := range ce.Args {
		if path := lockPathRhs(pass, x); path != nil {
			pass.ReportRangef(x, "call of %s copies lock value: %v", analysisutil.Format(pass.Fset, ce.Fun), path)
		}
	}
}

// checkCopyLocksFunc checks whether a function might
// inadvertently copy a lock, by checking whether
// its receiver, parameters, or return values
// are locks.
func checkCopyLocksFunc(pass *analysis.Pass, name string, recv *ast.FieldList, typ *ast.FuncType) {
	if recv != nil && len(recv.List) > 0 {
		expr := recv.List[0].Type
		if path := lockPath(pass.Pkg, pass.TypesInfo.Types[expr].Type, nil); path != nil {
			pass.ReportRangef(expr, "%s passes lock by value: %v", name, path)
		}
	}

	if typ.Params != nil {
		for _, field := range typ.Params.List {
			expr := field.Type
			if path := lockPath(pass.Pkg, pass.TypesInfo.Types[expr].Type, nil); path != nil {
				pass.ReportRangef(expr, "%s passes lock by value: %v", name, path)
			}
		}
	}

	// Don't check typ.Results. If T has a Lock field it's OK to write
	//     return T{}
	// because that is returning the zero value. Leave result checking
	// to the return statement.
}

// checkCopyLocksRange checks whether a range statement
// might inadvertently copy a lock by checking whether
// any of the range variables are locks.
func checkCopyLocksRange(pass *analysis.Pass, r *ast.RangeStmt) {
	checkCopyLocksRangeVar(pass, r.Tok, r.Key)
	checkCopyLocksRangeVar(pass, r.Tok, r.Value)
}

func checkCopyLocksRangeVar(pass *analysis.Pass, rtok token.Token, e ast.Expr) {
	if e == nil {
		return
	}
	id, isId := e.(*ast.Ident)
	if isId && id.Name == "_" {
		return
	}

	var typ types.Type
	if rtok == token.DEFINE {
		if !isId {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		typ = obj.Type()
	} else {
		typ = pass.TypesInfo.Types[e].Type
	}

	if typ == nil {
		return
	}
	if path := lockPath(pass.Pkg, typ, nil); path != nil {
		pass.Reportf(e.Pos(), "range var %s copies lock: %v", analysisutil.Format(pass.Fset, e), path)
	}
}

type typePath []string

// String pretty-prints a typePath.
func (path typePath) String() string {
	n := len(path)
	var buf bytes.Buffer
	for i := range path {
		if i > 0 {
			fmt.Fprint(&buf, " contains ")
		}
		// The human-readable path is in reverse order, outermost to innermost.
		fmt.Fprint(&buf, path[n-i-1])
	}
	return buf.String()
}

func lockPathRhs(pass *analysis.Pass, x ast.Expr) typePath {
	x = ast.Unparen(x) // ignore parens on rhs

	if _, ok := x.(*ast.CompositeLit); ok {
		return nil
	}
	if _, ok := x.(*ast.CallExpr); ok {
		// A call may return a zero value.
		return nil
	}
	if star, ok := x.(*ast.StarExpr); ok {
		if _, ok := ast.Unparen(star.X).(*ast.CallExpr); ok {
			// A call may return a pointer to a zero value.
			return nil
		}
	}
	if tv, ok := pass.TypesInfo.Types[x]; ok && tv.IsValue() {
		return lockPath(pass.Pkg, tv.Type, nil)
	}
	return nil
}

// lockPath returns a typePath describing the location of a lock value
// contained in typ. If there is no contained lock, it returns nil.
//
// The seen map is used to short-circuit infinite recursion due to type cycles.
func lockPath(tpkg *types.Package, typ types.Type, seen map[types.Type]bool) typePath {
	if typ == nil || seen[typ] {
		return nil
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[typ] = true

	if tpar, ok := types.Unalias(typ).(*types.TypeParam); ok {
		terms, err := typeparams.StructuralTerms(tpar)
		if err != nil {
			return nil // invalid type
		}
		for _, term := range terms {
			subpath := lockPath(tpkg, term.Type(), seen)
			if len(subpath) > 0 {
				if term.Tilde() {
					// Prepend a tilde to our lock path entry to clarify the resulting
					// diagnostic message. Consider the following example:
					//
					//  func _[Mutex interface{ ~sync.Mutex; M() }](m Mutex) {}
					//
					// Here the naive error message will be something like "passes lock
					// by value: Mutex contains sync.Mutex". This is misleading because
					// the local type parameter doesn't actually contain sync.Mutex,
					// which lacks the M method.
					//
					// With tilde, it is clearer that the containment is via an
					// approximation element.
					subpath[len(subpath)-1] = "~" + subpath[len(subpath)-1]
				}
				return append(subpath, typ.String())
			}
		}
		return nil
	}

	for {
		atyp, ok := typ.Underlying().(*types.Array)
		if !ok {
			break
		}
		typ = atyp.Elem()
	}

	ttyp, ok := typ.Underlying().(*types.Tuple)
	if ok {
		for i := 0; i < ttyp.Len(); i++ {
			subpath := lockPath(tpkg, ttyp.At(i).Type(), seen)
			if subpath != nil {
				return append(subpath, typ.String())
			}
		}
		return nil
	}

	// We're only interested in the case in which the underlying
	// type is a struct. (Interfaces and pointers are safe to copy.)
	styp, ok := typ.Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	// We're looking for cases in which a pointer to this type
	// is a sync.Locker, but a value is not. This differentiates
	// embedded interfaces from embedded values.
	if types.Implements(types.NewPointer(typ), lockerType) && !types.Implements(typ, lockerType) {
		return []string{typ.String()}
	}

	// In go1.10, sync.noCopy did not implement Locker.
	// (The Unlock method was added only in CL 121876.)
	// TODO(adonovan): remove workaround when we drop go1.10.
	if analysisutil.IsNamedType(typ, "sync", "noCopy") {
		return []string{typ.String()}
	}

	nfields := styp.NumFields()
	for i := 0; i < nfields; i++ {
		ftyp := styp.Field(i).Type()
		subpath := lockPath(tpkg, ftyp, seen)
		if subpath != nil {
			return append(subpath, typ.String())
		}
	}

	return nil
}

// parent returns the second from the last node on stack if it exists.
func parent(stack []ast.Node) ast.Node {
	if len(stack) >= 2 {
		return stack[len(stack)-2]
	}
	return nil
}

var lockerType *types.Interface

// Construct a sync.Locker interface type.
func init() {
	nullary := types.NewSignature(nil, nil, nil, false) // func()
	methods := []*types.Func{
		types.NewFunc(token.NoPos, nil, "Lock", nullary),
		types.NewFunc(token.NoPos, nil, "Unlock", nullary),
	}
	lockerType = types.NewInterface(methods, nil).Complete()
}
