// Graveyard: the departure-notice tombstone set of the churn protocol.
//
// A graceful leaver piggybacks a departure notice on its final gossip
// exchanges. Receivers evict the leaver immediately instead of waiting out
// the DescriptorTTL horizon, remember the departure as a tombstone, forward
// it on their own gossip for one horizon so the notice floods the leaver's
// neighbourhood, and filter the leaver's stale descriptors out of every
// merge until the tombstone expires. The tombstone set is deliberately tiny
// and short-lived: it only has to outlive the stale descriptors still in
// flight, which the eviction horizon already bounds.
package overlay

import (
	"slices"

	"whatsup/internal/news"
	"whatsup/internal/wire"
)

// Tombstone records one graceful departure: the node that left and the cycle
// it announced the departure at.
type Tombstone struct {
	Node  news.NodeID
	Stamp int64
}

// WireSize returns the exact number of bytes AppendTombstone produces.
func (t Tombstone) WireSize() int {
	return wire.IntLen(int64(t.Node)) + wire.IntLen(t.Stamp)
}

// Graveyard is a bounded-lifetime set of departure tombstones owned by one
// node. It is not goroutine-safe. The zero value is ready to use; the map is
// allocated lazily on the first Note so churn-free nodes never pay for it.
type Graveyard struct {
	stamps map[news.NodeID]int64
	// Cached orderings of the active set, rebuilt lazily after a change:
	// every outgoing gossip message piggybacks the graveyard, so a gossip
	// round over an unchanged graveyard must pay one sort, not one per
	// message.
	byNode  []Tombstone // sorted by node id (the full-set piggyback order)
	byFresh []Tombstone // freshest stamp first (the capped-selection order)
	nodeOK  bool
	freshOK bool
}

// Len reports the number of active tombstones.
func (g *Graveyard) Len() int { return len(g.stamps) }

// Contains reports whether the node has an active tombstone. It is nil-map
// safe and O(1), so merge paths can call it per descriptor without cost when
// no departures are in flight.
func (g *Graveyard) Contains(id news.NodeID) bool {
	if len(g.stamps) == 0 {
		return false
	}
	_, ok := g.stamps[id]
	return ok
}

// Note records a departure, keeping the freshest stamp per node, and reports
// whether the tombstone was new information (new node or fresher stamp) —
// the signal to keep forwarding it.
func (g *Graveyard) Note(t Tombstone) bool {
	if old, ok := g.stamps[t.Node]; ok && old >= t.Stamp {
		return false
	}
	if g.stamps == nil {
		g.stamps = make(map[news.NodeID]int64, 4)
	}
	g.stamps[t.Node] = t.Stamp
	g.nodeOK, g.freshOK = false, false
	return true
}

// ExpireOlderThan drops every tombstone whose stamp is strictly older than
// minStamp — the same strictly-older-than boundary View.EvictOlderThan uses —
// and reports how many were dropped.
func (g *Graveyard) ExpireOlderThan(minStamp int64) int {
	dropped := 0
	for id, stamp := range g.stamps {
		if stamp < minStamp {
			delete(g.stamps, id)
			dropped++
		}
	}
	if dropped > 0 {
		g.nodeOK, g.freshOK = false, false
	}
	return dropped
}

// AppendActive appends the active tombstones to dst sorted by node id, so
// callers forwarding them on gossip emit a deterministic order regardless of
// map iteration.
func (g *Graveyard) AppendActive(dst []Tombstone) []Tombstone {
	if len(g.stamps) == 0 {
		return dst
	}
	if !g.nodeOK {
		g.byNode = g.rebuild(g.byNode)
		slices.SortFunc(g.byNode, func(a, b Tombstone) int {
			switch {
			case a.Node < b.Node:
				return -1
			case a.Node > b.Node:
				return 1
			default:
				return 0
			}
		})
		g.nodeOK = true
	}
	return append(dst, g.byNode...)
}

// AppendFreshest appends at most max active tombstones to dst. While the
// whole set fits (max <= 0, or max >= Len) this is AppendActive — the full
// set in node-id order, so a node under its cap piggybacks identically to an
// uncapped one. Only when the cap truncates does order pick what survives:
// the freshest stamps first (ties broken by node id), because their stale
// descriptors are the ones most likely still circulating, while the oldest
// are close to TTL-flushed anyway.
func (g *Graveyard) AppendFreshest(dst []Tombstone, max int) []Tombstone {
	if len(g.stamps) == 0 {
		return dst
	}
	if max <= 0 || max >= len(g.stamps) {
		return g.AppendActive(dst)
	}
	if !g.freshOK {
		g.byFresh = g.rebuild(g.byFresh)
		slices.SortFunc(g.byFresh, func(a, b Tombstone) int {
			switch {
			case a.Stamp > b.Stamp:
				return -1
			case a.Stamp < b.Stamp:
				return 1
			case a.Node < b.Node:
				return -1
			case a.Node > b.Node:
				return 1
			default:
				return 0
			}
		})
		g.freshOK = true
	}
	return append(dst, g.byFresh[:max]...)
}

// rebuild refills buf with the active set, unsorted. Both callers
// immediately sort with a total order (node id is unique), so the map
// iteration order cannot leak.
func (g *Graveyard) rebuild(buf []Tombstone) []Tombstone {
	buf = buf[:0]
	//whatsup:commutative both callers sort with a total order
	for id, stamp := range g.stamps {
		buf = append(buf, Tombstone{Node: id, Stamp: stamp})
	}
	return buf
}

// Clear drops every tombstone (crash semantics: tombstones are volatile
// state).
func (g *Graveyard) Clear() {
	clear(g.stamps)
	g.byNode, g.byFresh = g.byNode[:0], g.byFresh[:0]
	g.nodeOK, g.freshOK = false, false
}
