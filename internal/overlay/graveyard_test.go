package overlay

import (
	"errors"
	"slices"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/wire"
)

func TestGraveyardNoteFresherWins(t *testing.T) {
	var g Graveyard
	if g.Len() != 0 || g.Contains(3) {
		t.Fatal("zero-value graveyard must be empty")
	}
	if !g.Note(Tombstone{Node: 3, Stamp: 10}) {
		t.Fatal("first note must be new information")
	}
	if g.Note(Tombstone{Node: 3, Stamp: 10}) || g.Note(Tombstone{Node: 3, Stamp: 7}) {
		t.Fatal("same or older stamp must not be new information")
	}
	if !g.Note(Tombstone{Node: 3, Stamp: 12}) {
		t.Fatal("fresher stamp must be new information")
	}
	if !g.Contains(3) || g.Len() != 1 {
		t.Fatalf("graveyard state after notes: len=%d contains=%v", g.Len(), g.Contains(3))
	}
	if got := g.AppendActive(nil); len(got) != 1 || got[0] != (Tombstone{Node: 3, Stamp: 12}) {
		t.Fatalf("AppendActive = %v, want the freshest stamp", got)
	}
}

// TestGraveyardExpireBoundary pins the strictly-older-than boundary shared
// with View.EvictOlderThan: a tombstone stamped exactly at minStamp survives.
func TestGraveyardExpireBoundary(t *testing.T) {
	var g Graveyard
	g.Note(Tombstone{Node: 1, Stamp: 9})
	g.Note(Tombstone{Node: 2, Stamp: 10})
	g.Note(Tombstone{Node: 3, Stamp: 11})
	if dropped := g.ExpireOlderThan(10); dropped != 1 {
		t.Fatalf("ExpireOlderThan(10) dropped %d, want 1 (only stamp 9)", dropped)
	}
	if g.Contains(1) || !g.Contains(2) || !g.Contains(3) {
		t.Fatal("stamp == minStamp must survive, stamp < minStamp must not")
	}
}

func TestGraveyardAppendActiveSorted(t *testing.T) {
	var g Graveyard
	for _, id := range []news.NodeID{9, 2, 7, 4} {
		g.Note(Tombstone{Node: id, Stamp: int64(id)})
	}
	got := g.AppendActive([]Tombstone{{Node: 100, Stamp: 1}})
	if len(got) != 5 || got[0].Node != 100 {
		t.Fatalf("AppendActive must append after dst: %v", got)
	}
	for i := 2; i < len(got); i++ {
		if got[i-1].Node >= got[i].Node {
			t.Fatalf("appended tombstones not sorted by node id: %v", got[1:])
		}
	}
	g.Clear()
	if g.Len() != 0 {
		t.Fatal("Clear must drop all tombstones")
	}
}

// TestGraveyardAppendFreshest pins the capped piggyback path: a cap that
// does not truncate degrades to the full set in AppendActive's node-id
// order, a truncating cap keeps the freshest stamps (node-id tiebreak), and
// the cached orders are invalidated by Note/Expire/Clear.
func TestGraveyardAppendFreshest(t *testing.T) {
	var g Graveyard
	if got := g.AppendFreshest(nil, 4); len(got) != 0 {
		t.Fatalf("empty graveyard appended %v", got)
	}
	g.Note(Tombstone{Node: 4, Stamp: 7})
	g.Note(Tombstone{Node: 1, Stamp: 9})
	g.Note(Tombstone{Node: 6, Stamp: 9})
	g.Note(Tombstone{Node: 2, Stamp: 3})

	// Uncapped (and any cap >= Len): identical to AppendActive.
	byNode := []Tombstone{{Node: 1, Stamp: 9}, {Node: 2, Stamp: 3}, {Node: 4, Stamp: 7}, {Node: 6, Stamp: 9}}
	got := g.AppendFreshest([]Tombstone{{Node: 100, Stamp: 1}}, 0)
	if len(got) != 5 || got[0].Node != 100 {
		t.Fatalf("AppendFreshest must append after dst: %v", got)
	}
	for i, w := range byNode {
		if got[i+1] != w {
			t.Fatalf("uncapped order: got %v, want node-id order %v", got[1:], byNode)
		}
	}
	if wide := g.AppendFreshest(nil, 10); !slices.Equal(wide, byNode) {
		t.Fatalf("non-truncating cap must match the uncapped order: %v", wide)
	}
	// A truncating cap keeps the freshest, ties broken by node id.
	byFresh := []Tombstone{{Node: 1, Stamp: 9}, {Node: 6, Stamp: 9}, {Node: 4, Stamp: 7}}
	if capped := g.AppendFreshest(nil, 3); !slices.Equal(capped, byFresh) {
		t.Fatalf("cap of 3: got %v, want %v", capped, byFresh)
	}

	// A fresher note must displace the cached heads.
	g.Note(Tombstone{Node: 2, Stamp: 11})
	if head := g.AppendFreshest(nil, 1); len(head) != 1 || head[0] != (Tombstone{Node: 2, Stamp: 11}) {
		t.Fatalf("fresh cache not invalidated by Note: head %v", head)
	}
	if full := g.AppendFreshest(nil, 0); len(full) != 4 || full[1] != (Tombstone{Node: 2, Stamp: 11}) {
		t.Fatalf("node-id cache not invalidated by Note: %v", full)
	}
	// Expiry must drop from the cached order too.
	g.ExpireOlderThan(9)
	for _, tb := range g.AppendFreshest(nil, 0) {
		if tb.Stamp < 9 {
			t.Fatalf("expired tombstone still piggybacked: %v", tb)
		}
	}
	g.Clear()
	if got := g.AppendFreshest(nil, 0); len(got) != 0 {
		t.Fatalf("cleared graveyard appended %v", got)
	}
}

func TestTombstoneWireRoundTrip(t *testing.T) {
	cases := [][]Tombstone{
		nil,
		{{Node: 0, Stamp: 0}},
		{{Node: 5, Stamp: 42}, {Node: 70000, Stamp: -3}, {Node: 1, Stamp: 1 << 40}},
	}
	for _, tombs := range cases {
		buf := AppendTombstones(nil, tombs)
		if want := wire.UintLen(uint64(len(tombs))) + TombstonesWireSize(tombs); len(buf) != want {
			t.Fatalf("encoded %d bytes, want count prefix + TombstonesWireSize = %d", len(buf), want)
		}
		got, rest, err := DecodeTombstones(append(buf, 0xAA))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 1 || rest[0] != 0xAA {
			t.Fatalf("decode consumed wrong length, rest=%v", rest)
		}
		if len(got) != len(tombs) {
			t.Fatalf("round trip length %d, want %d", len(got), len(tombs))
		}
		for i := range tombs {
			if got[i] != tombs[i] {
				t.Fatalf("round trip[%d] = %v, want %v", i, got[i], tombs[i])
			}
		}
	}
}

func TestDecodeTombstonesRejectsTruncation(t *testing.T) {
	buf := AppendTombstones(nil, []Tombstone{{Node: 5, Stamp: 42}, {Node: 9, Stamp: 50}})
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeTombstones(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(buf))
		}
	}
	// A count prefix promising more tombstones than the payload can hold must
	// fail fast rather than over-allocate.
	huge := wire.AppendUint(nil, 1<<40)
	if _, _, err := DecodeTombstones(huge); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("oversized count: err=%v, want ErrTruncated", err)
	}
}

// TestInsertAllLiveFiltersTombstoned pins the merge filter: descriptors of
// tombstoned nodes (and the excluded self) never enter the view, while a nil
// or empty graveyard degrades to the plain InsertAll path.
func TestInsertAllLiveFiltersTombstoned(t *testing.T) {
	batch := []Descriptor{
		{Node: 1, Stamp: 5},
		{Node: 2, Stamp: 5},
		{Node: 3, Stamp: 5},
	}
	var g Graveyard
	g.Note(Tombstone{Node: 2, Stamp: 6})

	v := NewView(8)
	v.InsertAllLive(batch, 3, &g)
	if v.Contains(2) {
		t.Fatal("tombstoned node must be filtered out of the merge")
	}
	if v.Contains(3) {
		t.Fatal("excluded self must be filtered out of the merge")
	}
	if !v.Contains(1) {
		t.Fatal("live node must be inserted")
	}

	plain := NewView(8)
	plain.InsertAllLive(batch, 0, nil)
	empty := NewView(8)
	empty.InsertAllLive(batch, 0, &Graveyard{})
	if plain.Len() != 3 || empty.Len() != 3 {
		t.Fatalf("nil/empty graveyard must not filter: len %d, %d (want 3)", plain.Len(), empty.Len())
	}

	src := NewView(8)
	src.InsertAll(batch, 0)
	fromLive := NewView(8)
	fromLive.InsertAllFromLive(src, 1, &g)
	if fromLive.Contains(2) || fromLive.Contains(1) || !fromLive.Contains(3) {
		t.Fatal("InsertAllFromLive must apply the same tombstone + exclude filter")
	}
}
