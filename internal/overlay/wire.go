package overlay

import (
	"fmt"

	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/wire"
)

// Descriptor wire layout, used by the live gossip envelopes:
//
//	varint  node id (zigzag; NoNode = -1 is representable)
//	string  transport address (uvarint length + bytes)
//	varint  generation stamp (zigzag)
//	uint    profile presence (0 = nil, 1 = packed profile follows)
//	[profile] packed profile (profile.AppendWire layout)
//
// Descriptor lists are a uvarint count followed by that many descriptors.

// AppendDescriptor appends the wire encoding of d to buf.
func AppendDescriptor(buf []byte, d Descriptor) []byte {
	buf = wire.AppendInt(buf, int64(d.Node))
	buf = wire.AppendString(buf, d.Addr)
	buf = wire.AppendInt(buf, d.Stamp)
	if d.Profile == nil {
		return wire.AppendUint(buf, 0)
	}
	buf = wire.AppendUint(buf, 1)
	return d.Profile.AppendWire(buf)
}

// DecodeDescriptor decodes one descriptor from the front of data.
func DecodeDescriptor(data []byte) (Descriptor, []byte, error) {
	var d Descriptor
	node, rest, err := wire.Int(data)
	if err != nil {
		return d, data, fmt.Errorf("descriptor node: %w", err)
	}
	if !news.ValidNodeID(node) {
		return d, data, fmt.Errorf("%w: node id %d out of range", wire.ErrMalformed, node)
	}
	d.Node = news.NodeID(node)
	if d.Addr, rest, err = wire.String(rest); err != nil {
		return d, data, fmt.Errorf("descriptor addr: %w", err)
	}
	if d.Stamp, rest, err = wire.Int(rest); err != nil {
		return d, data, fmt.Errorf("descriptor stamp: %w", err)
	}
	present, rest, err := wire.Uint(rest)
	if err != nil {
		return d, data, fmt.Errorf("descriptor profile flag: %w", err)
	}
	switch present {
	case 0:
	case 1:
		if d.Profile, rest, err = profile.DecodeWire(rest); err != nil {
			return d, data, err
		}
	default:
		return d, data, fmt.Errorf("%w: profile presence flag %d", wire.ErrMalformed, present)
	}
	return d, rest, nil
}

// AppendDescriptors appends a uvarint-counted descriptor list.
func AppendDescriptors(buf []byte, descs []Descriptor) []byte {
	buf = wire.AppendUint(buf, uint64(len(descs)))
	for _, d := range descs {
		buf = AppendDescriptor(buf, d)
	}
	return buf
}

// Tombstone wire layout (departure notices piggybacked on live envelopes):
//
//	varint  node id (zigzag)
//	varint  departure stamp (zigzag)
//
// Tombstone lists are a uvarint count followed by that many tombstones.

// AppendTombstones appends a uvarint-counted tombstone list.
func AppendTombstones(buf []byte, tombs []Tombstone) []byte {
	buf = wire.AppendUint(buf, uint64(len(tombs)))
	for _, t := range tombs {
		buf = wire.AppendInt(buf, int64(t.Node))
		buf = wire.AppendInt(buf, t.Stamp)
	}
	return buf
}

// DecodeTombstones decodes a uvarint-counted tombstone list. A nil slice is
// returned for an empty list, matching what gossip senders produce.
func DecodeTombstones(data []byte) ([]Tombstone, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return nil, data, fmt.Errorf("tombstone count: %w", err)
	}
	// A tombstone is at least 2 bytes (node, stamp): bound the count by the
	// bytes on hand before allocating.
	if n > uint64(len(rest))/2 {
		return nil, data, fmt.Errorf("%w: %d tombstones declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	var tombs []Tombstone
	if n > 0 {
		tombs = make([]Tombstone, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		node, r, err := wire.Int(rest)
		if err != nil {
			return nil, data, fmt.Errorf("tombstone %d node: %w", i, err)
		}
		if !news.ValidNodeID(node) {
			return nil, data, fmt.Errorf("%w: tombstone node id %d out of range", wire.ErrMalformed, node)
		}
		stamp, r, err := wire.Int(r)
		if err != nil {
			return nil, data, fmt.Errorf("tombstone %d stamp: %w", i, err)
		}
		tombs = append(tombs, Tombstone{Node: news.NodeID(node), Stamp: stamp})
		rest = r
	}
	return tombs, rest, nil
}

// TombstonesWireSize sums the wire sizes of a tombstone list, excluding the
// count prefix (the simulator accounts the prefix as part of the envelope it
// rides on only when the list is non-empty).
func TombstonesWireSize(tombs []Tombstone) int {
	total := 0
	for _, t := range tombs {
		total += t.WireSize()
	}
	return total
}

// DecodeDescriptors decodes a uvarint-counted descriptor list. A nil slice
// is returned for an empty list, matching what gossip handlers produce.
func DecodeDescriptors(data []byte) ([]Descriptor, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return nil, data, fmt.Errorf("descriptor count: %w", err)
	}
	// A descriptor is at least 4 bytes (node, empty addr, stamp, flag):
	// bound the count by the bytes on hand before allocating.
	if n > uint64(len(rest))/4 {
		return nil, data, fmt.Errorf("%w: %d descriptors declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	var descs []Descriptor
	if n > 0 {
		descs = make([]Descriptor, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var d Descriptor
		if d, rest, err = DecodeDescriptor(rest); err != nil {
			return nil, data, fmt.Errorf("descriptor %d: %w", i, err)
		}
		descs = append(descs, d)
	}
	return descs, rest, nil
}
