package overlay

import (
	"fmt"

	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/wire"
)

// Descriptor wire layout, used by the live gossip envelopes:
//
//	varint  node id (zigzag; NoNode = -1 is representable)
//	string  transport address (uvarint length + bytes)
//	varint  generation stamp (zigzag)
//	uint    profile presence (0 = nil, 1 = packed profile follows)
//	[profile] packed profile (profile.AppendWire layout)
//
// Descriptor lists are a uvarint count followed by that many descriptors.

// AppendDescriptor appends the wire encoding of d to buf.
func AppendDescriptor(buf []byte, d Descriptor) []byte {
	buf = wire.AppendInt(buf, int64(d.Node))
	buf = wire.AppendString(buf, d.Addr)
	buf = wire.AppendInt(buf, d.Stamp)
	if d.Profile == nil {
		return wire.AppendUint(buf, 0)
	}
	buf = wire.AppendUint(buf, 1)
	return d.Profile.AppendWire(buf)
}

// DecodeDescriptor decodes one descriptor from the front of data.
func DecodeDescriptor(data []byte) (Descriptor, []byte, error) {
	var d Descriptor
	node, rest, err := wire.Int(data)
	if err != nil {
		return d, data, fmt.Errorf("descriptor node: %w", err)
	}
	if !news.ValidNodeID(node) {
		return d, data, fmt.Errorf("%w: node id %d out of range", wire.ErrMalformed, node)
	}
	d.Node = news.NodeID(node)
	if d.Addr, rest, err = wire.String(rest); err != nil {
		return d, data, fmt.Errorf("descriptor addr: %w", err)
	}
	if d.Stamp, rest, err = wire.Int(rest); err != nil {
		return d, data, fmt.Errorf("descriptor stamp: %w", err)
	}
	present, rest, err := wire.Uint(rest)
	if err != nil {
		return d, data, fmt.Errorf("descriptor profile flag: %w", err)
	}
	switch present {
	case 0:
	case 1:
		if d.Profile, rest, err = profile.DecodeWire(rest); err != nil {
			return d, data, err
		}
	default:
		return d, data, fmt.Errorf("%w: profile presence flag %d", wire.ErrMalformed, present)
	}
	return d, rest, nil
}

// AppendDescriptors appends a uvarint-counted descriptor list.
func AppendDescriptors(buf []byte, descs []Descriptor) []byte {
	buf = wire.AppendUint(buf, uint64(len(descs)))
	for _, d := range descs {
		buf = AppendDescriptor(buf, d)
	}
	return buf
}

// Tombstone wire layout (departure notices piggybacked on live envelopes):
//
//	varint  node id (zigzag)
//	varint  departure stamp (zigzag)
//
// Tombstone lists are a uvarint count followed by that many tombstones.

// AppendTombstones appends a uvarint-counted tombstone list.
func AppendTombstones(buf []byte, tombs []Tombstone) []byte {
	buf = wire.AppendUint(buf, uint64(len(tombs)))
	for _, t := range tombs {
		buf = wire.AppendInt(buf, int64(t.Node))
		buf = wire.AppendInt(buf, t.Stamp)
	}
	return buf
}

// DecodeTombstones decodes a uvarint-counted tombstone list. A nil slice is
// returned for an empty list, matching what gossip senders produce.
func DecodeTombstones(data []byte) ([]Tombstone, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return nil, data, fmt.Errorf("tombstone count: %w", err)
	}
	// A tombstone is at least 2 bytes (node, stamp): bound the count by the
	// bytes on hand before allocating.
	if n > uint64(len(rest))/2 {
		return nil, data, fmt.Errorf("%w: %d tombstones declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	var tombs []Tombstone
	if n > 0 {
		tombs = make([]Tombstone, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		node, r, err := wire.Int(rest)
		if err != nil {
			return nil, data, fmt.Errorf("tombstone %d node: %w", i, err)
		}
		if !news.ValidNodeID(node) {
			return nil, data, fmt.Errorf("%w: tombstone node id %d out of range", wire.ErrMalformed, node)
		}
		stamp, r, err := wire.Int(r)
		if err != nil {
			return nil, data, fmt.Errorf("tombstone %d stamp: %w", i, err)
		}
		tombs = append(tombs, Tombstone{Node: news.NodeID(node), Stamp: stamp})
		rest = r
	}
	return tombs, rest, nil
}

// AppendDecodeTombstones decodes a uvarint-counted tombstone list by
// appending onto dst — the arena-pooling counterpart of DecodeTombstones,
// with the same relocation caveat as AppendDecodeDescriptors.
func AppendDecodeTombstones(dst []Tombstone, data []byte) ([]Tombstone, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return dst, data, fmt.Errorf("tombstone count: %w", err)
	}
	if n > uint64(len(rest))/2 {
		return dst, data, fmt.Errorf("%w: %d tombstones declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	for i := uint64(0); i < n; i++ {
		node, r, err := wire.Int(rest)
		if err != nil {
			return dst, data, fmt.Errorf("tombstone %d node: %w", i, err)
		}
		if !news.ValidNodeID(node) {
			return dst, data, fmt.Errorf("%w: tombstone node id %d out of range", wire.ErrMalformed, node)
		}
		stamp, r, err := wire.Int(r)
		if err != nil {
			return dst, data, fmt.Errorf("tombstone %d stamp: %w", i, err)
		}
		dst = append(dst, Tombstone{Node: news.NodeID(node), Stamp: stamp})
		rest = r
	}
	return dst, rest, nil
}

// TombstonesWireSize sums the wire sizes of a tombstone list, excluding the
// count prefix (the simulator accounts the prefix as part of the envelope it
// rides on only when the list is non-empty).
func TombstonesWireSize(tombs []Tombstone) int {
	total := 0
	for _, t := range tombs {
		total += t.WireSize()
	}
	return total
}

// DecodeDescriptors decodes a uvarint-counted descriptor list. A nil slice
// is returned for an empty list, matching what gossip handlers produce.
func DecodeDescriptors(data []byte) ([]Descriptor, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return nil, data, fmt.Errorf("descriptor count: %w", err)
	}
	// A descriptor is at least 4 bytes (node, empty addr, stamp, flag):
	// bound the count by the bytes on hand before allocating.
	if n > uint64(len(rest))/4 {
		return nil, data, fmt.Errorf("%w: %d descriptors declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	var descs []Descriptor
	if n > 0 {
		descs = make([]Descriptor, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var d Descriptor
		if d, rest, err = DecodeDescriptor(rest); err != nil {
			return nil, data, fmt.Errorf("descriptor %d: %w", i, err)
		}
		descs = append(descs, d)
	}
	return descs, rest, nil
}

// AppendDecodeDescriptors decodes a uvarint-counted descriptor list by
// appending onto dst, so batch consumers can pool one arena across many
// lists instead of allocating a slice per list. It returns the extended
// arena and the remaining bytes; the caller slices the arena by the lengths
// before and after the call (the append may relocate the backing array, so
// subslices must be taken only once all appends into the arena are done).
func AppendDecodeDescriptors(dst []Descriptor, data []byte) ([]Descriptor, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return dst, data, fmt.Errorf("descriptor count: %w", err)
	}
	if n > uint64(len(rest))/4 {
		return dst, data, fmt.Errorf("%w: %d descriptors declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	for i := uint64(0); i < n; i++ {
		var d Descriptor
		if d, rest, err = DecodeDescriptor(rest); err != nil {
			return dst, data, fmt.Errorf("descriptor %d: %w", i, err)
		}
		dst = append(dst, d)
	}
	return dst, rest, nil
}

// Norm-accumulator sidecar: the packed profile codec recomputes Σ score²
// from the decoded entries, which is exact in value but not bit-identical to
// the sender's incrementally maintained accumulator (float addition is not
// associative). Engines that require decoded descriptors to score
// bit-identically to the originals (the sharded simulator's inter-shard
// batches) append this sidecar after a descriptor list: per profile-carrying
// descriptor, the score-packed Σ score² followed by the uvarint
// subtractive-edit counter.

// AppendNormAccumulators appends the norm-accumulator sidecar for a
// descriptor list: one (sumSq, dirty) pair per descriptor with a profile,
// in list order. Descriptors without a profile contribute nothing.
func AppendNormAccumulators(buf []byte, descs []Descriptor) []byte {
	for _, d := range descs {
		if d.Profile == nil {
			continue
		}
		sumSq, dirty := d.Profile.NormAccumulator()
		buf = wire.AppendScore(buf, sumSq)
		buf = wire.AppendUint(buf, uint64(dirty))
	}
	return buf
}

// DecodeNormAccumulators decodes the sidecar written by
// AppendNormAccumulators and restores each pair onto the corresponding
// decoded descriptor's profile, returning the remaining bytes.
func DecodeNormAccumulators(data []byte, descs []Descriptor) ([]byte, error) {
	rest := data
	for _, d := range descs {
		if d.Profile == nil {
			continue
		}
		sumSq, r, err := wire.Score(rest)
		if err != nil {
			return data, fmt.Errorf("norm accumulator sumSq: %w", err)
		}
		dirty, r, err := wire.Uint(r)
		if err != nil {
			return data, fmt.Errorf("norm accumulator dirty: %w", err)
		}
		d.Profile.SetNormAccumulator(sumSq, int(dirty))
		rest = r
	}
	return rest, nil
}
