package overlay

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/wire"
)

func wireDesc(node int, entries int) Descriptor {
	p := profile.New()
	for i := 0; i < entries; i++ {
		p.Set(news.ID(1000*node+i), int64(i), float64(i%2))
	}
	return Descriptor{Node: news.NodeID(node), Addr: "127.0.0.1:9000", Stamp: int64(node * 7), Profile: p}
}

func TestDescriptorWireRoundTrip(t *testing.T) {
	cases := map[string]Descriptor{
		"full":          wireDesc(3, 10),
		"empty-profile": {Node: 1, Addr: "", Stamp: 5, Profile: profile.New()},
		"nil-profile":   {Node: news.NoNode, Addr: "x", Stamp: -9},
		"long-addr":     {Node: 2, Addr: strings.Repeat("a", 300), Stamp: 0, Profile: profile.New()},
	}
	for name, d := range cases {
		enc := AppendDescriptor(nil, d)
		got, rest, err := DecodeDescriptor(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%s: decode err=%v rest=%d", name, err, len(rest))
		}
		if got.Node != d.Node || got.Addr != d.Addr || got.Stamp != d.Stamp {
			t.Fatalf("%s: scalar mismatch: %+v != %+v", name, got, d)
		}
		switch {
		case d.Profile == nil:
			if got.Profile != nil {
				t.Fatalf("%s: nil profile must stay nil", name)
			}
		case !got.Profile.Equal(d.Profile):
			t.Fatalf("%s: profile mismatch", name)
		}
	}
}

func TestDescriptorsWireRoundTrip(t *testing.T) {
	descs := []Descriptor{wireDesc(1, 3), wireDesc(2, 0), {Node: 7, Stamp: 1}}
	enc := AppendDescriptors(nil, descs)
	got, rest, err := DecodeDescriptors(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode err=%v rest=%d", err, len(rest))
	}
	if len(got) != len(descs) {
		t.Fatalf("len=%d want %d", len(got), len(descs))
	}
	// Empty list must decode to nil, as handlers produce.
	if got, _, err := DecodeDescriptors(AppendDescriptors(nil, nil)); err != nil || got != nil {
		t.Fatalf("empty list: got=%v err=%v", got, err)
	}
}

func TestDescriptorsWireTruncatedPrefixes(t *testing.T) {
	enc := AppendDescriptors(nil, []Descriptor{wireDesc(1, 4), wireDesc(2, 1)})
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeDescriptors(enc[:i]); err == nil {
			t.Fatalf("prefix %d/%d must not decode", i, len(enc))
		}
	}
}

func TestDecodeDescriptorsRejectsHugeCount(t *testing.T) {
	enc := wire.AppendUint(nil, 1<<50)
	if _, _, err := DecodeDescriptors(enc); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("err=%v want ErrTruncated", err)
	}
}

func TestDecodeDescriptorRejectsBadNode(t *testing.T) {
	enc := wire.AppendInt(nil, -2) // below NoNode
	enc = wire.AppendString(enc, "")
	enc = wire.AppendInt(enc, 0)
	enc = wire.AppendUint(enc, 0)
	if _, _, err := DecodeDescriptor(enc); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("err=%v want ErrMalformed", err)
	}
}

func TestDescriptorWireIsCompact(t *testing.T) {
	// WireSize reports exactly the packed encoding's length: simulation
	// accounting and the live codec share one source of truth.
	d := wireDesc(3, 10)
	if got, est := len(AppendDescriptor(nil, d)), d.WireSize(); got != est {
		t.Fatalf("packed descriptor %dB but WireSize reports %dB", got, est)
	}
	if !reflect.DeepEqual(AppendDescriptor(nil, d), AppendDescriptor(nil, d)) {
		t.Fatal("encoding must be deterministic")
	}
}
