package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func desc(node news.NodeID, stamp int64, likedItems ...news.ID) Descriptor {
	p := profile.New()
	for _, id := range likedItems {
		p.Set(id, stamp, 1)
	}
	return Descriptor{Node: node, Stamp: stamp, Profile: p}
}

func TestInsertDeduplicatesKeepingFreshest(t *testing.T) {
	v := NewView(10)
	v.Insert(desc(1, 5))
	v.Insert(desc(1, 9))
	v.Insert(desc(1, 2))
	if v.Len() != 1 {
		t.Fatalf("len=%d want 1", v.Len())
	}
	d, _ := v.Get(1)
	if d.Stamp != 9 {
		t.Fatalf("kept stamp %d, want freshest 9", d.Stamp)
	}
}

func TestInsertAllExcludesSelf(t *testing.T) {
	v := NewView(10)
	v.InsertAll([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1)}, 2)
	if v.Contains(2) {
		t.Fatal("InsertAll must skip the excluded node")
	}
	if v.Len() != 2 {
		t.Fatalf("len=%d want 2", v.Len())
	}
}

func TestRemoveKeepsIndexConsistent(t *testing.T) {
	v := NewView(10)
	for i := news.NodeID(0); i < 5; i++ {
		v.Insert(desc(i, int64(i)))
	}
	v.Remove(2)
	v.Remove(0)
	v.Remove(99) // absent: no-op
	if v.Len() != 3 {
		t.Fatalf("len=%d want 3", v.Len())
	}
	for _, id := range []news.NodeID{1, 3, 4} {
		d, ok := v.Get(id)
		if !ok || d.Node != id {
			t.Fatalf("index broken for node %d", id)
		}
	}
}

func TestOldest(t *testing.T) {
	v := NewView(10)
	if _, ok := v.Oldest(); ok {
		t.Fatal("empty view must have no oldest")
	}
	v.Insert(desc(1, 7))
	v.Insert(desc(2, 3))
	v.Insert(desc(3, 5))
	d, ok := v.Oldest()
	if !ok || d.Node != 2 {
		t.Fatalf("oldest=%v want node 2", d.Node)
	}
	// Tie: smaller node id wins deterministically.
	v.Insert(desc(0, 3))
	if d, _ := v.Oldest(); d.Node != 0 {
		t.Fatalf("tie-break wrong: %v", d.Node)
	}
}

func TestTrimRandomRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView(5)
	for i := news.NodeID(0); i < 20; i++ {
		v.Insert(desc(i, int64(i)))
	}
	v.TrimRandom(rng)
	if v.Len() != 5 {
		t.Fatalf("len=%d want 5", v.Len())
	}
}

func TestTrimBySimilarityKeepsClosest(t *testing.T) {
	v := NewView(2)
	self := profile.New()
	self.Set(1, 0, 1)
	self.Set(2, 0, 1)
	v.Insert(desc(10, 0, 1, 2)) // identical tastes
	v.Insert(desc(11, 0, 1))    // partial overlap
	v.Insert(desc(12, 0, 99))   // disjoint
	v.TrimBySimilarity(rand.New(rand.NewSource(9)), profile.WUP{}, self)
	if v.Len() != 2 {
		t.Fatalf("len=%d want 2", v.Len())
	}
	if !v.Contains(10) || !v.Contains(11) {
		t.Fatalf("similarity trim kept wrong nodes: %v", v.Nodes())
	}
}

func TestMostSimilar(t *testing.T) {
	v := NewView(5)
	if _, ok := v.MostSimilar(profile.WUP{}, profile.New()); ok {
		t.Fatal("empty view must report no most-similar node")
	}
	target := profile.New()
	target.Set(1, 0, 1)
	target.Set(2, 0, 1)
	v.Insert(desc(10, 0, 3)) // disjoint
	v.Insert(desc(11, 0, 1, 2))
	d12 := desc(12, 0, 1)
	d12.Profile.Set(2, 0, 0) // likes 1 but dislikes 2: penalized by ‖sub‖
	v.Insert(d12)
	d, ok := v.MostSimilar(profile.WUP{}, target)
	if !ok || d.Node != 11 {
		t.Fatalf("most similar = %v, want 11", d.Node)
	}
}

func TestMostSimilarAllZeroFallsBackDeterministically(t *testing.T) {
	v := NewView(5)
	v.Insert(desc(7, 0, 3))
	v.Insert(desc(4, 0, 5))
	target := profile.New()
	target.Set(99, 0, 1)
	d, ok := v.MostSimilar(profile.WUP{}, target)
	if !ok || d.Node != 4 {
		t.Fatalf("zero-similarity tie must pick smallest node id, got %v", d.Node)
	}
}

func TestRandomSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewView(20)
	for i := news.NodeID(0); i < 10; i++ {
		v.Insert(desc(i, 0))
	}
	s := v.RandomSample(rng, 4)
	if len(s) != 4 {
		t.Fatalf("sample size %d want 4", len(s))
	}
	seen := map[news.NodeID]bool{}
	for _, d := range s {
		if seen[d.Node] {
			t.Fatal("sample must be distinct")
		}
		seen[d.Node] = true
	}
	if got := v.RandomSample(rng, 50); len(got) != 10 {
		t.Fatalf("oversized sample must return all entries, got %d", len(got))
	}
}

func TestCloneIndependent(t *testing.T) {
	v := NewView(5)
	v.Insert(desc(1, 1))
	c := v.Clone()
	c.Insert(desc(2, 1))
	c.Remove(1)
	if !v.Contains(1) || v.Contains(2) {
		t.Fatal("clone mutations leaked into original")
	}
}

func TestViewPropertyInvariant(t *testing.T) {
	// After arbitrary insert/remove/trim sequences the index must exactly
	// mirror the entries and capacity must be respected post-trim.
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewView(6)
		for _, op := range ops {
			node := news.NodeID(op % 17)
			switch op % 4 {
			case 0, 1:
				v.Insert(desc(node, int64(op)))
			case 2:
				v.Remove(node)
			case 3:
				v.TrimRandom(rng)
			}
		}
		v.TrimRandom(rng)
		if v.Len() > 6 {
			return false
		}
		for _, d := range v.Entries() {
			got, ok := v.Get(d.Node)
			if !ok || got.Node != d.Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSize(t *testing.T) {
	d := desc(1, 1, 1, 2, 3)
	if d.WireSize() <= 20 {
		t.Fatalf("descriptor wire size too small: %d", d.WireSize())
	}
	v := NewView(5)
	v.Insert(d)
	v.Insert(desc(2, 1))
	if v.WireSize() != d.WireSize()+desc(2, 1).WireSize() {
		t.Fatal("view wire size must sum entries")
	}
}
