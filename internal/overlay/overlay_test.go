package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func desc(node news.NodeID, stamp int64, likedItems ...news.ID) Descriptor {
	p := profile.New()
	for _, id := range likedItems {
		p.Set(id, stamp, 1)
	}
	return Descriptor{Node: node, Stamp: stamp, Profile: p}
}

func TestInsertDeduplicatesKeepingFreshest(t *testing.T) {
	v := NewView(10)
	v.Insert(desc(1, 5))
	v.Insert(desc(1, 9))
	v.Insert(desc(1, 2))
	if v.Len() != 1 {
		t.Fatalf("len=%d want 1", v.Len())
	}
	d, _ := v.Get(1)
	if d.Stamp != 9 {
		t.Fatalf("kept stamp %d, want freshest 9", d.Stamp)
	}
}

func TestInsertAllExcludesSelf(t *testing.T) {
	v := NewView(10)
	v.InsertAll([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1)}, 2)
	if v.Contains(2) {
		t.Fatal("InsertAll must skip the excluded node")
	}
	if v.Len() != 2 {
		t.Fatalf("len=%d want 2", v.Len())
	}
}

func TestRemoveKeepsIndexConsistent(t *testing.T) {
	v := NewView(10)
	for i := news.NodeID(0); i < 5; i++ {
		v.Insert(desc(i, int64(i)))
	}
	v.Remove(2)
	v.Remove(0)
	v.Remove(99) // absent: no-op
	if v.Len() != 3 {
		t.Fatalf("len=%d want 3", v.Len())
	}
	for _, id := range []news.NodeID{1, 3, 4} {
		d, ok := v.Get(id)
		if !ok || d.Node != id {
			t.Fatalf("index broken for node %d", id)
		}
	}
}

func TestOldest(t *testing.T) {
	v := NewView(10)
	if _, ok := v.Oldest(); ok {
		t.Fatal("empty view must have no oldest")
	}
	v.Insert(desc(1, 7))
	v.Insert(desc(2, 3))
	v.Insert(desc(3, 5))
	d, ok := v.Oldest()
	if !ok || d.Node != 2 {
		t.Fatalf("oldest=%v want node 2", d.Node)
	}
	// Tie: smaller node id wins deterministically.
	v.Insert(desc(0, 3))
	if d, _ := v.Oldest(); d.Node != 0 {
		t.Fatalf("tie-break wrong: %v", d.Node)
	}
}

func TestTrimRandomRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView(5)
	for i := news.NodeID(0); i < 20; i++ {
		v.Insert(desc(i, int64(i)))
	}
	v.TrimRandom(rng)
	if v.Len() != 5 {
		t.Fatalf("len=%d want 5", v.Len())
	}
}

func TestTrimBySimilarityKeepsClosest(t *testing.T) {
	v := NewView(2)
	self := profile.New()
	self.Set(1, 0, 1)
	self.Set(2, 0, 1)
	v.Insert(desc(10, 0, 1, 2)) // identical tastes
	v.Insert(desc(11, 0, 1))    // partial overlap
	v.Insert(desc(12, 0, 99))   // disjoint
	v.TrimBySimilarity(rand.New(rand.NewSource(9)), profile.WUP{}, self)
	if v.Len() != 2 {
		t.Fatalf("len=%d want 2", v.Len())
	}
	if !v.Contains(10) || !v.Contains(11) {
		t.Fatalf("similarity trim kept wrong nodes: %v", v.Nodes())
	}
}

func TestMostSimilar(t *testing.T) {
	v := NewView(5)
	if _, ok := v.MostSimilar(profile.WUP{}, profile.New()); ok {
		t.Fatal("empty view must report no most-similar node")
	}
	target := profile.New()
	target.Set(1, 0, 1)
	target.Set(2, 0, 1)
	v.Insert(desc(10, 0, 3)) // disjoint
	v.Insert(desc(11, 0, 1, 2))
	d12 := desc(12, 0, 1)
	d12.Profile.Set(2, 0, 0) // likes 1 but dislikes 2: penalized by ‖sub‖
	v.Insert(d12)
	d, ok := v.MostSimilar(profile.WUP{}, target)
	if !ok || d.Node != 11 {
		t.Fatalf("most similar = %v, want 11", d.Node)
	}
}

func TestMostSimilarAllZeroFallsBackDeterministically(t *testing.T) {
	v := NewView(5)
	v.Insert(desc(7, 0, 3))
	v.Insert(desc(4, 0, 5))
	target := profile.New()
	target.Set(99, 0, 1)
	d, ok := v.MostSimilar(profile.WUP{}, target)
	if !ok || d.Node != 4 {
		t.Fatalf("zero-similarity tie must pick smallest node id, got %v", d.Node)
	}
}

func TestRandomSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewView(20)
	for i := news.NodeID(0); i < 10; i++ {
		v.Insert(desc(i, 0))
	}
	s := v.RandomSample(rng, 4)
	if len(s) != 4 {
		t.Fatalf("sample size %d want 4", len(s))
	}
	seen := map[news.NodeID]bool{}
	for _, d := range s {
		if seen[d.Node] {
			t.Fatal("sample must be distinct")
		}
		seen[d.Node] = true
	}
	if got := v.RandomSample(rng, 50); len(got) != 10 {
		t.Fatalf("oversized sample must return all entries, got %d", len(got))
	}
}

func TestCloneIndependent(t *testing.T) {
	v := NewView(5)
	v.Insert(desc(1, 1))
	c := v.Clone()
	c.Insert(desc(2, 1))
	c.Remove(1)
	if !v.Contains(1) || v.Contains(2) {
		t.Fatal("clone mutations leaked into original")
	}
}

func TestViewPropertyInvariant(t *testing.T) {
	// After arbitrary insert/remove/trim sequences the index must exactly
	// mirror the entries and capacity must be respected post-trim.
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewView(6)
		for _, op := range ops {
			node := news.NodeID(op % 17)
			switch op % 4 {
			case 0, 1:
				v.Insert(desc(node, int64(op)))
			case 2:
				v.Remove(node)
			case 3:
				v.TrimRandom(rng)
			}
		}
		v.TrimRandom(rng)
		if v.Len() > 6 {
			return false
		}
		for _, d := range v.Entries() {
			got, ok := v.Get(d.Node)
			if !ok || got.Node != d.Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// countingMetric wraps a metric and counts Similarity evaluations, to make
// cache hits and invalidations observable.
type countingMetric struct {
	inner profile.Metric
	calls int
}

func (c *countingMetric) Name() string { return c.inner.Name() }
func (c *countingMetric) Similarity(n, p *profile.Profile) float64 {
	c.calls++
	return c.inner.Similarity(n, p)
}

func TestSimilarityCacheSkipsRescoring(t *testing.T) {
	m := &countingMetric{inner: profile.WUP{}}
	self := profile.New()
	self.Set(1, 0, 1)
	self.Set(2, 0, 1)
	descs := make([]Descriptor, 0, 6)
	for i := news.NodeID(10); i < 16; i++ {
		descs = append(descs, desc(i, 0, 1, news.ID(i)))
	}
	v := NewView(3)
	v.InsertAll(descs, 0)
	rng := rand.New(rand.NewSource(4))
	v.TrimBySimilarity(rng, m, self)
	if m.calls == 0 {
		t.Fatal("first trim must score candidates")
	}
	// Same self version, same descriptor snapshots: every score must come
	// from the cache.
	v.InsertAll(descs, 0)
	m.calls = 0
	v.TrimBySimilarity(rng, m, self)
	if m.calls != 0 {
		t.Fatalf("unchanged (self, descriptor) pairs re-scored %d times", m.calls)
	}
	// MostSimilar against the cached self must hit the cache too.
	m.calls = 0
	if _, ok := v.MostSimilar(m, self); !ok {
		t.Fatal("view not empty")
	}
	if m.calls != 0 {
		t.Fatalf("MostSimilar re-scored %d cached pairs", m.calls)
	}
	// Mutating self bumps its version and must invalidate every score.
	self.Set(3, 1, 1)
	v.InsertAll(descs, 0)
	m.calls = 0
	v.TrimBySimilarity(rng, m, self)
	if m.calls == 0 {
		t.Fatal("self mutation must invalidate the cache")
	}
}

func TestSimilarityCacheTransientTargetsBypass(t *testing.T) {
	// Per-item profiles (BEEP dislike orientation) are transient targets:
	// they are computed directly and must not evict the cached self scores.
	m := &countingMetric{inner: profile.WUP{}}
	self := profile.New()
	self.Set(1, 0, 1)
	descs := make([]Descriptor, 0, 4)
	for i := news.NodeID(10); i < 14; i++ {
		descs = append(descs, desc(i, 0, 1))
	}
	v := NewView(2)
	v.InsertAll(descs, 0)
	rng := rand.New(rand.NewSource(5))
	v.TrimBySimilarity(rng, m, self) // scores and caches all 4 candidates
	itemProfile := profile.New()
	itemProfile.Set(1, 0, 1)
	v.MostSimilar(m, itemProfile) // transient target: direct compute
	v.InsertAll(descs, 0)
	m.calls = 0
	v.TrimBySimilarity(rng, m, self)
	if m.calls != 0 {
		t.Fatalf("transient target evicted cached self scores: %d rescores", m.calls)
	}
}

func TestSimilarityCacheBitIdenticalScores(t *testing.T) {
	// Every cached score must be the exact float a direct metric evaluation
	// produces — the invariant that makes the cache invisible to simulation
	// results. Exercised white-box over random views and targets.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		self := profile.New()
		for i := 0; i < 8; i++ {
			self.Set(news.ID(rng.Int63n(30)), 0, float64(rng.Intn(2)))
		}
		v := NewView(4)
		for i := 0; i < 12; i++ {
			p := profile.New()
			for j := 0; j < 6; j++ {
				p.Set(news.ID(rng.Int63n(30)), 0, float64(rng.Intn(2)))
			}
			v.Insert(Descriptor{Node: news.NodeID(i), Stamp: int64(i % 3), Profile: p})
		}
		v.TrimBySimilarity(rng, profile.WUP{}, self) // keys and fills the cache
		for _, d := range v.entries {
			cached := v.cache.lookup(profile.WUP{}, self, d)
			direct := profile.WUP{}.Similarity(self, d.Profile)
			if cached != direct {
				t.Fatalf("seed %d node %d: cached %v != direct %v", seed, d.Node, cached, direct)
			}
		}
		// The cached MostSimilar must agree with a cache-free clone.
		a, okA := v.MostSimilar(profile.WUP{}, self)
		b, okB := v.Clone().MostSimilar(profile.WUP{}, self)
		if okA != okB || a.Node != b.Node {
			t.Fatalf("seed %d: cached MostSimilar %v, direct %v", seed, a.Node, b.Node)
		}
	}
}

func TestAppendRandomSampleMatchesPermDraws(t *testing.T) {
	// AppendRandomSample must reproduce rng.Perm's draw sequence exactly:
	// same sample as the historical implementation, same rng state after.
	v := NewView(20)
	for i := news.NodeID(0); i < 10; i++ {
		v.Insert(desc(i, 0))
	}
	for seed := int64(0); seed < 30; seed++ {
		a := rand.New(rand.NewSource(seed))
		b := rand.New(rand.NewSource(seed))
		n := int(seed % 11)
		got := v.AppendRandomSample(nil, a, n)
		var want []Descriptor
		es := v.Entries()
		if n >= len(es) {
			want = es
		} else {
			for _, i := range b.Perm(len(es))[:n] {
				want = append(want, es[i])
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: len %d want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i].Node != want[i].Node {
				t.Fatalf("seed %d: sample[%d]=%d want %d", seed, i, got[i].Node, want[i].Node)
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("seed %d: rng consumption diverged from rand.Perm", seed)
		}
	}
}

func TestForEachAndAppendEntriesMatchEntries(t *testing.T) {
	v := NewView(10)
	for i := news.NodeID(0); i < 7; i++ {
		v.Insert(desc(i, int64(i)))
	}
	want := v.Entries()
	var got []Descriptor
	v.ForEach(func(d Descriptor) { got = append(got, d) })
	appended := v.AppendEntries([]Descriptor{desc(99, 0)})
	if len(got) != len(want) || len(appended) != len(want)+1 {
		t.Fatalf("iteration lengths wrong: %d/%d/%d", len(got), len(want), len(appended))
	}
	for i := range want {
		if got[i].Node != want[i].Node || appended[i+1].Node != want[i].Node {
			t.Fatal("iteration order must match Entries")
		}
	}
}

func TestWireSize(t *testing.T) {
	// WireSize is exact: it must equal the length of the live codec's
	// encoding, so simulation bandwidth accounting (Figure 8b) and the wire
	// share one source of truth.
	for _, d := range []Descriptor{
		desc(1, 1, 1, 2, 3),
		desc(2, 0),
		{Node: 7, Addr: "10.0.0.1:4000", Stamp: 123456789, Profile: desc(7, 3, 9, 1000000).Profile},
		{Node: 3, Stamp: -1},
	} {
		if got, want := d.WireSize(), len(AppendDescriptor(nil, d)); got != want {
			t.Fatalf("WireSize=%d but encoded length=%d for %+v", got, want, d)
		}
	}
	d := desc(1, 1, 1, 2, 3)
	v := NewView(5)
	v.Insert(d)
	v.Insert(desc(2, 1))
	if v.WireSize() != d.WireSize()+desc(2, 1).WireSize() {
		t.Fatal("view wire size must sum entries")
	}
}

func TestEvictOlderThanPreservesOrderAndIndex(t *testing.T) {
	v := NewView(10)
	for i := news.NodeID(1); i <= 6; i++ {
		v.Insert(desc(i, int64(i*10), news.ID(i)))
	}
	if evicted := v.EvictOlderThan(35); evicted != 3 {
		t.Fatalf("evicted %d entries, want 3 (stamps 10,20,30)", evicted)
	}
	want := []news.NodeID{4, 5, 6}
	got := make([]news.NodeID, 0, 3)
	v.ForEach(func(d Descriptor) { got = append(got, d.Node) })
	for i, id := range want {
		if got[i] != id {
			t.Fatalf("survivor order %v, want %v (insertion order must be preserved)", got, want)
		}
	}
	for _, id := range want {
		d, ok := v.Get(id)
		if !ok || d.Node != id {
			t.Fatalf("index broken for node %d after eviction", id)
		}
	}
	for _, id := range []news.NodeID{1, 2, 3} {
		if v.Contains(id) {
			t.Fatalf("node %d should have been evicted", id)
		}
	}
	if v.EvictOlderThan(35) != 0 {
		t.Fatal("second eviction at the same horizon must be a no-op")
	}
	// Survivors must still be removable/insertable through the index.
	v.Remove(5)
	if v.Len() != 2 || v.Contains(5) {
		t.Fatal("Remove after eviction broke the view")
	}
}

func TestEvictOlderThanBoundary(t *testing.T) {
	v := NewView(5)
	v.Insert(desc(1, 10))
	v.Insert(desc(2, 11))
	if v.EvictOlderThan(10) != 0 {
		t.Fatal("entries stamped exactly at the horizon must survive (strictly-older rule)")
	}
	if v.EvictOlderThan(11) != 1 || v.Contains(1) {
		t.Fatal("entry below the horizon must go")
	}
	empty := NewView(3)
	if empty.EvictOlderThan(100) != 0 {
		t.Fatal("evicting an empty view must be a no-op")
	}
}
