// Package core implements the WhatsUp node: the integration of the WUP
// implicit social network (paper Section II) with the BEEP biased epidemic
// dissemination protocol (Section III). This is the paper's primary
// contribution.
//
// A Node is engine-agnostic: message handlers receive a message and return
// the sends it triggers. The deterministic simulator (internal/sim) and the
// concurrent live runtimes (internal/live) both drive the same Node code.
package core

import "whatsup/internal/profile"

// Default parameter values from Table II of the paper.
const (
	DefaultRPSViewSize   = 30 // RPSvs: size of the random sample
	DefaultFLike         = 10 // fLIKE: amplification fanout (best survey trade-off, Table III)
	DefaultDislikeTTL    = 4  // BEEP TTL: dissemination TTL for disliked items
	DefaultProfileWindow = 13 // profile window in gossip cycles (1/5 of the experiment)

	// DefaultDescriptorTTL is the view eviction horizon the churn scenarios
	// use when none is configured. It is the single shared default for the
	// simulator and the live runtime — the two previously defaulted to 15 and
	// 8 cycles respectively, silently skewing sim-vs-live comparisons. Note
	// Config.WithDefaults deliberately does NOT apply it: a zero DescriptorTTL
	// means eviction disabled (the static-population default that keeps
	// churn-free runs bit-identical with historical results); churn drivers
	// opt in explicitly.
	DefaultDescriptorTTL = 15

	// LargeScalePopulation is the population at which ForPopulation starts
	// bounding scale-sensitive knobs. It matches the simulator's large-scale
	// threshold: everything the paper validated runs far below it.
	LargeScalePopulation = 100_000

	// LargeScaleNoticeCap is the NoticePiggybackCap ForPopulation applies
	// above LargeScalePopulation: 64 tombstones comfortably cover one
	// eviction horizon of departures in any neighbourhood while keeping the
	// piggyback O(1) per message instead of O(departures).
	LargeScaleNoticeCap = 64
)

// Config collects the per-node parameters of Table II.
type Config struct {
	// RPSViewSize is RPSvs, the size of the random peer sample (default 30).
	RPSViewSize int
	// WUPViewSize is WUPvs, the size of the social network view. Zero means
	// the paper's setting of 2·FLike, the best precision/recall trade-off
	// (Section IV-D).
	WUPViewSize int
	// FLike is BEEP's amplification fanout for liked items.
	FLike int
	// DislikeTTL bounds how many times a disliked item may be forwarded
	// along the dislike path. Zero means the default of 4; use a negative
	// value for an explicit TTL of zero (no dislike forwarding at all), as
	// in the Figure 5 sweep.
	DislikeTTL int
	// ProfileWindow is the sliding window, in cycles (simulation) or
	// milliseconds (live), beyond which profile entries are purged.
	ProfileWindow int64
	// Metric ranks clustering candidates and orients disliked items.
	// Nil means the WUP metric; the WhatsUp-Cos variant of the evaluation
	// sets profile.Cosine.
	Metric profile.Metric
	// ColdStartRatings is the number of popular items a joining node rates
	// to build its initial profile (3 in Section II-D).
	ColdStartRatings int
	// DescriptorTTL is the view eviction horizon, in the same unit as
	// ProfileWindow (cycles under simulation, milliseconds live): at the
	// start of each cycle the node drops every RPS and WUP view entry whose
	// descriptor stamp is older than now-DescriptorTTL. Live nodes refresh
	// their descriptors every exchange, so only descriptors of departed (or
	// long-partitioned) nodes age past the horizon — this is what lets views
	// self-heal under churn instead of gossiping ghosts forever. Zero or
	// negative disables eviction (the static-population default, which keeps
	// churn-free runs bit-identical with historical results).
	DescriptorTTL int64
	// NoticePiggybackCap bounds how many departure tombstones one outgoing
	// gossip message carries (freshest first). Zero or negative means all
	// active tombstones — the graveyard is already bounded by the departure
	// rate over one eviction horizon, and full flooding is what scrubs
	// ghosts fastest. Set a cap at very large scale, where horizon × rate
	// makes the piggyback the dominant message cost; anything the cap drops
	// still ages out through DescriptorTTL eviction.
	NoticePiggybackCap int
}

// WithDefaults returns a copy of c with unset fields replaced by the
// paper's defaults (Table II).
func (c Config) WithDefaults() Config {
	if c.RPSViewSize <= 0 {
		c.RPSViewSize = DefaultRPSViewSize
	}
	if c.FLike <= 0 {
		c.FLike = DefaultFLike
	}
	if c.WUPViewSize <= 0 {
		c.WUPViewSize = 2 * c.FLike
	}
	if c.DislikeTTL < 0 {
		c.DislikeTTL = 0
	} else if c.DislikeTTL == 0 {
		c.DislikeTTL = DefaultDislikeTTL
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = DefaultProfileWindow
	}
	if c.Metric == nil {
		c.Metric = profile.WUP{}
	}
	if c.ColdStartRatings <= 0 {
		c.ColdStartRatings = 3
	}
	return c
}

// ForPopulation returns a copy of c with scale-sensitive knobs bounded for a
// deployment of n peers. Today that is one knob: above LargeScalePopulation
// an unset NoticePiggybackCap defaults to LargeScaleNoticeCap, because
// uncapped tombstone piggyback grows with the departure volume of the whole
// horizon — negligible at the paper's 5k scale, the dominant gossip cost in
// a million-peer flash crowd. At or below the threshold (or with the cap
// already set) the config is returned unchanged, byte-identical, so every
// validated small-scale result is unaffected.
func (c Config) ForPopulation(n int) Config {
	if n >= LargeScalePopulation && c.NoticePiggybackCap == 0 {
		c.NoticePiggybackCap = LargeScaleNoticeCap
	}
	return c
}
