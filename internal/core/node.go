package core

import (
	"math/rand"

	"whatsup/internal/cluster"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/rps"
)

// Node is a WhatsUp peer: a user profile, the two WUP gossip layers and the
// BEEP dissemination logic. Node methods are not goroutine-safe; engines
// serialize access per node.
type Node struct {
	id       news.NodeID
	cfg      Config
	rng      *rand.Rand
	user     *profile.Profile // P̃, the user profile
	rps      *rps.Protocol
	wup      *cluster.Protocol
	grave    overlay.Graveyard // departure tombstones shared by both layers
	opinions Opinions
	seen     map[news.ID]struct{} // SIR "infected or removed" set
	behavior Behavior             // adversarial seam; nil = honest
}

// NewNode builds a WhatsUp node. addr is the transport address used by live
// runtimes (empty under simulation). opinions supplies the user's
// like/dislike reactions; rng drives all of the node's randomness.
func NewNode(id news.NodeID, addr string, cfg Config, opinions Opinions, rng *rand.Rand) *Node {
	cfg = cfg.WithDefaults()
	n := &Node{
		id:       id,
		cfg:      cfg,
		rng:      rng,
		user:     profile.New(),
		rps:      rps.New(id, addr, cfg.RPSViewSize, rng),
		wup:      cluster.New(id, addr, cfg.WUPViewSize, cfg.Metric, rng),
		opinions: opinions,
		seen:     make(map[news.ID]struct{}),
	}
	n.rps.SetGraveyard(&n.grave)
	n.wup.SetGraveyard(&n.grave)
	return n
}

// ID returns the node identifier.
func (n *Node) ID() news.NodeID { return n.id }

// Config returns the node's effective configuration (defaults applied).
func (n *Node) Config() Config { return n.cfg }

// UserProfile returns the node's user profile P̃. Callers must not mutate it
// concurrently with node handlers.
func (n *Node) UserProfile() *profile.Profile { return n.user }

// RPS returns the random-peer-sampling layer, driven by the engine.
func (n *Node) RPS() *rps.Protocol { return n.rps }

// WUP returns the clustering layer, driven by the engine.
func (n *Node) WUP() *cluster.Protocol { return n.wup }

// Seen reports whether the node has already received the item.
func (n *Node) Seen(id news.ID) bool {
	_, ok := n.seen[id]
	return ok
}

// SeedViews bootstraps both views (engine-provided initial random graph).
func (n *Node) SeedViews(descs []overlay.Descriptor) {
	n.rps.Seed(descs)
	n.wup.Seed(descs, n.user)
}

// BeginCycle runs the periodic maintenance that precedes gossiping: purging
// the user profile of entries older than the profile window (Section II-E)
// and, when a DescriptorTTL is configured, evicting view descriptors older
// than the horizon so departed nodes age out of both overlays.
func (n *Node) BeginCycle(now int64) {
	n.user.PurgeOlderThan(now - n.cfg.ProfileWindow)
	if n.cfg.DescriptorTTL > 0 {
		n.rps.EvictOlderThan(now - n.cfg.DescriptorTTL)
		n.wup.EvictOlderThan(now - n.cfg.DescriptorTTL)
	}
	if n.grave.Len() > 0 {
		n.grave.ExpireOlderThan(now - n.departureHorizon())
	}
}

// departureHorizon is how long a departure tombstone stays active: the view
// eviction horizon when one is configured (after which TTL eviction would
// have flushed the leaver anyway), the profile window otherwise.
func (n *Node) departureHorizon() int64 {
	if n.cfg.DescriptorTTL > 0 {
		return n.cfg.DescriptorTTL
	}
	return n.cfg.ProfileWindow
}

// NoteDeparture records a departure notice: the leaver is evicted from both
// views immediately and a tombstone keeps its stale descriptors from
// re-entering them (and keeps the notice propagating on this node's own
// gossip) for one horizon. Expired or self-referential notices are ignored.
func (n *Node) NoteDeparture(t overlay.Tombstone, now int64) {
	if t.Node == n.id || t.Stamp < now-n.departureHorizon() {
		return
	}
	n.grave.Note(t)
	n.rps.View().Remove(t.Node)
	n.wup.View().Remove(t.Node)
}

// AppendTombstones appends the node's active departure tombstones to dst in
// deterministic (node id) order — the piggyback payload its outgoing gossip
// carries so departure notices flood one neighbourhood horizon. When
// Config.NoticePiggybackCap is set and the set is larger, only that many of
// the freshest ride along (TTL eviction backstops the rest).
func (n *Node) AppendTombstones(dst []overlay.Tombstone) []overlay.Tombstone {
	return n.grave.AppendFreshest(dst, n.cfg.NoticePiggybackCap)
}

// InjectRPSCandidates feeds the current RPS view into the clustering layer,
// which is how randomly sampled nodes become social-network candidates
// (Section II: the clustering protocol "uses this overlay to provide nodes
// with the most similar candidates").
func (n *Node) InjectRPSCandidates() {
	n.wup.MergeFrom(n.rps.View(), n.user)
}

// ColdStart implements the joining procedure of Section II-D: the node
// inherits the RPS and WUP views of a random contact and builds a fresh
// profile by liking the most popular items found in the inherited RPS view.
func (n *Node) ColdStart(inheritedRPS, inheritedWUP []overlay.Descriptor, now int64) {
	n.rps.Seed(inheritedRPS)
	popular := profile.MostPopular(n.rps.View().Profiles(), n.cfg.ColdStartRatings)
	for _, id := range popular {
		n.user.Set(id, now, 1)
	}
	n.wup.Seed(inheritedWUP, n.user)
}

// Publish creates a news item at this node (generateNewsItem, Algorithm 1
// lines 12-17): the source likes its own item, initializes the item profile
// from its user profile, and hands the item to BEEP as a liked item.
func (n *Node) Publish(item news.Item, now int64) []Send {
	if _, dup := n.seen[item.ID]; dup {
		return nil
	}
	n.seen[item.ID] = struct{}{}
	n.user.Set(item.ID, item.Created, 1) // line 14: add <idI, tI, 1> to P̃
	// Lines 15-16: the fresh item profile is the user profile folded into an
	// empty one — a copy-on-write share, no per-entry work.
	itemProfile := profile.New()
	itemProfile.MergeAverage(n.user)
	msg := ItemMessage{Item: item, Profile: itemProfile, Dislikes: 0, Hops: 0}
	return n.forward(msg, true, now)
}

// Receive processes an incoming item (Algorithm 1 lines 1-11 followed by
// Algorithm 2). It returns the delivery record and the sends BEEP produces.
// Duplicate receipts are dropped per the SIR model (Section III).
//
//whatsup:hotpath
func (n *Node) Receive(msg ItemMessage, now int64) (Delivery, []Send) {
	d := Delivery{
		Node:       n.id,
		Item:       msg.Item.ID,
		Hops:       msg.Hops,
		Dislikes:   msg.Dislikes,
		ViaDislike: msg.ViaDislike,
	}
	if _, dup := n.seen[msg.Item.ID]; dup {
		d.Duplicate = true
		return d, nil
	}
	n.seen[msg.Item.ID] = struct{}{}

	liked := n.opinions.Likes(n.id, msg.Item.ID)
	if n.behavior != nil {
		liked = n.behavior.React(msg.Item, liked)
	}
	d.Liked = liked
	if liked {
		// Lines 3-4: aggregate the user profile as it was *before* rating
		// this item into the item profile (one sorted merge), then line 5:
		// record the like.
		msg.Profile.MergeAverage(n.user)
		n.user.Set(msg.Item.ID, msg.Item.Created, 1)
	} else {
		// Line 7: record the dislike; the item profile is left untouched.
		n.user.Set(msg.Item.ID, msg.Item.Created, 0)
	}
	// Lines 8-10: purge non-recent entries from the item profile before
	// handing it to BEEP.
	msg.Profile.PurgeOlderThan(now - n.cfg.ProfileWindow)

	return d, n.forward(msg, liked, now)
}

// forward implements BEEP (Algorithm 2). For a liked item it amplifies:
// fLIKE targets picked at random from the WUP view (orientation towards the
// social network, randomness against over-clustering). For a disliked item
// it forwards a single copy to the RPS neighbour whose profile is most
// similar to the *item profile*, while the dislike counter is below the TTL
// (orientation towards potential likers, serendipity with fanout 1).
//
//whatsup:hotpath
func (n *Node) forward(msg ItemMessage, liked bool, now int64) []Send {
	if n.behavior != nil {
		msg = n.behavior.OutgoingItem(msg)
	}
	var targets []overlay.Descriptor
	if !liked {
		if msg.Dislikes >= n.cfg.DislikeTTL {
			return nil // line 29: TTL reached, drop
		}
		msg.Dislikes++ // line 26
		if t, ok := n.rps.View().MostSimilar(n.cfg.Metric, msg.Profile); ok {
			targets = []overlay.Descriptor{t} // line 27 //whatsup:alloc single-element dislike target
		}
	} else {
		targets = n.wup.RandomTargets(n.cfg.FLike) // line 31
	}
	if len(targets) == 0 {
		return nil
	}
	sends := make([]Send, 0, len(targets)) //whatsup:alloc one sends slice per forward, exact capacity
	for i, t := range targets {
		p := msg.Profile
		if i < len(targets)-1 {
			p = msg.Profile.Clone() // each path carries its own copy (II-B)
		}
		sends = append(sends, Send{
			To: t.Node,
			Msg: ItemMessage{
				Item:       msg.Item,
				Profile:    p,
				Dislikes:   msg.Dislikes,
				Hops:       msg.Hops + 1,
				ViaDislike: !liked,
			},
		})
	}
	return sends
}

// Crash wipes the node's volatile overlay state (views), modelling an
// abrupt failure; the user profile survives as it is local durable state in
// the prototype. A crashed node may later Rejoin.
func (n *Node) Crash() {
	n.rps.Crash()
	n.wup.Crash()
	n.grave.Clear() // tombstones are volatile, like the views they guard
}

// Leave is the graceful departure: the node stops participating and drops
// its view state. Unlike Crash it is final — the membership layer marks the
// node departed and its descriptors age out of the remaining population's
// views within one eviction horizon (Config.DescriptorTTL).
func (n *Node) Leave() {
	n.Crash()
}

// Rejoin resumes a crashed node: its views were wiped with the crash, so it
// re-seeds both overlays from the supplied bootstrap descriptors (a sample
// of the currently online population). The user profile was retained across
// the downtime but is purged to the window at the resume time, so a node
// that stayed down longer than a profile window resumes with an empty
// profile exactly like the inactive-node scenario of Section II-E.
func (n *Node) Rejoin(bootstrap []overlay.Descriptor, now int64) {
	n.Crash()
	n.user.PurgeOlderThan(now - n.cfg.ProfileWindow)
	n.SeedViews(bootstrap)
}
