package core

// Hot-path regression test for the zero-allocation gossip work: the
// copy-on-write item-profile plumbing must be observationally identical to
// deep copies (paper II-B divergence). The companion allocation pin for the
// receive-liked path lives in internal/experiments/hotpath_test.go, next to
// the shared benchmark fixture it pins.

import (
	"math/rand"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

// steadyStateNode builds a node in a warmed-up steady state: a windowed user
// profile, seeded views and an advancing clock.
func steadyStateNode(fLike int) (*Node, *profile.Profile) {
	n := testNode(1, likeAll(), Config{FLike: fLike, ProfileWindow: 60})
	descs := make([]overlay.Descriptor, 0, 16)
	for i := news.NodeID(2); i < 18; i++ {
		descs = append(descs, descFor(i, 0, news.ID(i), news.ID(i+1)))
	}
	n.SeedViews(descs)
	for i := 0; i < 40; i++ {
		n.UserProfile().Set(news.ID(2000+i), int64(i), float64(i%2))
	}
	tmpl := profile.New()
	for i := 0; i < 25; i++ {
		tmpl.Set(news.ID(1990+i), int64(30+i%10), 1)
	}
	return n, tmpl
}

func TestForwardCOWCopiesDivergeLikeDeepCopies(t *testing.T) {
	// End-to-end COW divergence: deliver one item to a chain of nodes whose
	// per-path profile copies are mutated independently, and check each copy
	// against a deep-copied reference computed with the legacy semantics.
	rng := rand.New(rand.NewSource(3))
	n, tmpl := steadyStateNode(4)
	for trial := 0; trial < 50; trial++ {
		it := news.Item{ID: news.ID(5000 + trial), Title: "t", Created: 60}
		_, sends := n.Receive(ItemMessage{Item: it, Profile: tmpl.Clone(), Hops: 1}, 60)
		if len(sends) == 0 {
			t.Fatal("liked receive must forward")
		}
		// Reference: deep copies of each outgoing profile.
		refs := make([]*profile.Profile, len(sends))
		for i, s := range sends {
			r := profile.New()
			s.Msg.Profile.ForEach(func(e profile.Entry) { r.Set(e.Item, e.Stamp, e.Score) })
			refs[i] = r
		}
		// Mutate every copy differently, as downstream receivers would.
		for i, s := range sends {
			for k := 0; k < 5; k++ {
				id := news.ID(rng.Int63n(100))
				stamp := rng.Int63n(100)
				score := rng.Float64()
				s.Msg.Profile.AverageIn(id, stamp, score)
				refs[i].AverageIn(id, stamp, score)
				if rng.Intn(3) == 0 {
					cut := rng.Int63n(40)
					s.Msg.Profile.PurgeOlderThan(cut)
					refs[i].PurgeOlderThan(cut)
				}
			}
		}
		for i, s := range sends {
			if !s.Msg.Profile.Equal(refs[i]) {
				t.Fatalf("trial %d send %d: COW copy diverged from deep-copy semantics", trial, i)
			}
		}
	}
}
