package core

import (
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func wireItemMsg() ItemMessage {
	p := profile.New()
	p.Set(1, 3, 1)
	p.Set(9, 4, 0.5)
	return ItemMessage{
		Item:       news.New("headline", "a short description", "https://example.org/a", 42, 7),
		Profile:    p,
		Dislikes:   2,
		Hops:       5,
		ViaDislike: true,
	}
}

func TestItemMessageWireRoundTrip(t *testing.T) {
	cases := map[string]ItemMessage{
		"full":        wireItemMsg(),
		"nil-profile": {Item: news.New("t", "", "", -1, news.NoNode)},
		"empty-item":  {Item: news.New("", "", "", 0, 0), Profile: profile.New()},
	}
	for name, m := range cases {
		enc := m.AppendWire(nil)
		got, rest, err := DecodeItemMessage(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%s: decode err=%v rest=%d", name, err, len(rest))
		}
		if got.Item != m.Item {
			t.Fatalf("%s: item mismatch:\n got %+v\nwant %+v", name, got.Item, m.Item)
		}
		if got.Dislikes != m.Dislikes || got.Hops != m.Hops || got.ViaDislike != m.ViaDislike {
			t.Fatalf("%s: counter mismatch: %+v != %+v", name, got, m)
		}
		switch {
		case m.Profile == nil:
			if got.Profile != nil {
				t.Fatalf("%s: nil profile must stay nil", name)
			}
		case !got.Profile.Equal(m.Profile):
			t.Fatalf("%s: profile mismatch", name)
		}
	}
}

func TestItemMessageWireRecomputesID(t *testing.T) {
	// The identifier is not transmitted (II-A): receivers recompute the
	// content hash, so a sender-side ID override does not survive the wire.
	m := wireItemMsg()
	m.Item.ID = news.ID(0xDEAD)
	got, _, err := DecodeItemMessage(m.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if want := news.Hash(m.Item.Title, m.Item.Description, m.Item.Link); got.Item.ID != want {
		t.Fatalf("ID=%s want recomputed %s", got.Item.ID, want)
	}
}

func TestItemMessageWireDropsGroundTruthFields(t *testing.T) {
	m := wireItemMsg()
	m.Item.Topic, m.Item.Community = 3, 9
	got, _, err := DecodeItemMessage(m.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Item.Topic != 0 || got.Item.Community != 0 {
		t.Fatalf("ground-truth fields must not be gossiped: %+v", got.Item)
	}
}

func TestItemMessageWireRejectsOutOfRangeFields(t *testing.T) {
	// The protocols never produce negative counters or ids below NoNode, so
	// a frame carrying them is malformed and must not reach the receiver's
	// state or the hop/dislike histograms.
	for name, m := range map[string]ItemMessage{
		"dislikes": {Item: news.New("t", "", "", 0, 0), Dislikes: -1},
		"hops":     {Item: news.New("t", "", "", 0, 0), Hops: -5},
		"source":   {Item: news.New("t", "", "", 0, -100)}, // below NoNode
	} {
		if _, _, err := DecodeItemMessage(m.AppendWire(nil)); err == nil {
			t.Fatalf("%s: negative counter must be rejected", name)
		}
	}
}

func TestItemMessageWireTruncatedPrefixes(t *testing.T) {
	enc := wireItemMsg().AppendWire(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeItemMessage(enc[:i]); err == nil {
			t.Fatalf("prefix %d/%d must not decode", i, len(enc))
		}
	}
}

// TestWireSizeIsExactEncodedLength pins the accounting contract completed
// in this PR: ItemMessage.WireSize (and therefore news.Item.WireSize under
// it) is the exact encoded byte count, not an estimate — the simulator's
// Figure 8b bandwidth numbers and the live frames agree byte-for-byte.
func TestWireSizeIsExactEncodedLength(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	cases := map[string]ItemMessage{
		"full":        wireItemMsg(),
		"nil-profile": {Item: news.New("t", "", "", -1, news.NoNode)},
		"empty-item":  {Item: news.New("", "", "", 0, 0), Profile: profile.New()},
		"long-strings": {
			Item:     news.New(string(long), string(long[:200]), "l", 1<<40, 70000),
			Dislikes: 130, Hops: 1 << 20,
		},
	}
	for name, m := range cases {
		if got, want := m.WireSize(), len(m.AppendWire(nil)); got != want {
			t.Fatalf("%s: WireSize()=%d, encoded=%dB", name, got, want)
		}
	}
}
