package core

import (
	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/wire"
)

// ItemMessage is one BEEP dissemination message: the item, the item profile
// copy carried along this path, and the dislike counter d_I. Hops and
// ViaDislike are measurement fields used by the evaluation (Figure 6,
// Table IV); the protocols never read them.
type ItemMessage struct {
	Item     news.Item
	Profile  *profile.Profile // item profile P_I; owned by the receiver
	Dislikes int              // dislike counter d_I
	Hops     int              // hop distance from the source (instrumentation)
	// ViaDislike records whether the *sender* forwarded this copy because it
	// disliked the item (instrumentation for Figure 6).
	ViaDislike bool
}

// WireSize reports the exact on-wire size of the message for bandwidth
// accounting (Figure 8b): WireSize == len(AppendWire(nil)), computed
// without encoding. Every part shares the codec's own length helpers —
// news.Item.WireSize for the item fields, profile.WireSize for the packed
// item profile, internal/wire for the counters and flags — so the
// simulator's byte counts and the live frames cannot drift. The item id
// itself is not transmitted (II-A).
func (m ItemMessage) WireSize() int {
	size := m.Item.WireSize() +
		wire.IntLen(int64(m.Dislikes)) + wire.IntLen(int64(m.Hops)) +
		1 + // via-dislike flag, a 1-byte uvarint
		1 // profile presence flag
	if m.Profile != nil {
		size += m.Profile.WireSize()
	}
	return size
}

// Send is an outgoing BEEP message produced by a handler.
type Send struct {
	To  news.NodeID
	Msg ItemMessage
}

// Delivery reports the outcome of receiving an item at a node, consumed by
// the metrics collector.
type Delivery struct {
	Node       news.NodeID
	Item       news.ID
	Liked      bool // the receiving user's opinion
	Duplicate  bool // item already seen: dropped, nothing else recorded
	Hops       int  // hop distance from source at delivery
	Dislikes   int  // d_I when the item arrived (Table IV)
	ViaDislike bool // the copy was forwarded by a disliker (Figure 6)
}

// Opinions supplies user opinions: whether a node likes an item. Workloads
// implement it from their trace; it stands in for the like/dislike button of
// the WhatsUp user interface.
type Opinions interface {
	Likes(node news.NodeID, item news.ID) bool
}

// OpinionFunc adapts a function to the Opinions interface.
type OpinionFunc func(node news.NodeID, item news.ID) bool

// Likes implements Opinions.
func (f OpinionFunc) Likes(node news.NodeID, item news.ID) bool { return f(node, item) }
