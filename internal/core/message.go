package core

import (
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// ItemMessage is one BEEP dissemination message: the item, the item profile
// copy carried along this path, and the dislike counter d_I. Hops and
// ViaDislike are measurement fields used by the evaluation (Figure 6,
// Table IV); the protocols never read them.
type ItemMessage struct {
	Item     news.Item
	Profile  *profile.Profile // item profile P_I; owned by the receiver
	Dislikes int              // dislike counter d_I
	Hops     int              // hop distance from the source (instrumentation)
	// ViaDislike records whether the *sender* forwarded this copy because it
	// disliked the item (instrumentation for Figure 6).
	ViaDislike bool
}

// WireSize reports the on-wire size of the message for bandwidth
// accounting (Figure 8b). The item-profile part is the exact packed-codec
// byte count (profile.WireSize); the item part is news.Item.WireSize's
// content approximation, which slightly over-counts the fixed fields and
// omits the varint framing — the live codec (AppendWire) is the source of
// truth for exact frame lengths. The item id itself is not transmitted
// (II-A).
func (m ItemMessage) WireSize() int {
	size := m.Item.WireSize()
	if m.Profile != nil {
		size += m.Profile.WireSize()
	}
	return size
}

// Send is an outgoing BEEP message produced by a handler.
type Send struct {
	To  news.NodeID
	Msg ItemMessage
}

// Delivery reports the outcome of receiving an item at a node, consumed by
// the metrics collector.
type Delivery struct {
	Node       news.NodeID
	Item       news.ID
	Liked      bool // the receiving user's opinion
	Duplicate  bool // item already seen: dropped, nothing else recorded
	Hops       int  // hop distance from source at delivery
	Dislikes   int  // d_I when the item arrived (Table IV)
	ViaDislike bool // the copy was forwarded by a disliker (Figure 6)
}

// Opinions supplies user opinions: whether a node likes an item. Workloads
// implement it from their trace; it stands in for the like/dislike button of
// the WhatsUp user interface.
type Opinions interface {
	Likes(node news.NodeID, item news.ID) bool
}

// OpinionFunc adapts a function to the Opinions interface.
type OpinionFunc func(node news.NodeID, item news.ID) bool

// Likes implements Opinions.
func (f OpinionFunc) Likes(node news.NodeID, item news.ID) bool { return f(node, item) }
