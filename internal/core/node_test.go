package core

import (
	"math/rand"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

// likeAll / likeNone / likeSet build Opinions for tests.
func likeSet(liked map[news.ID]bool) Opinions {
	return OpinionFunc(func(_ news.NodeID, item news.ID) bool { return liked[item] })
}

func likeAll() Opinions {
	return OpinionFunc(func(news.NodeID, news.ID) bool { return true })
}

func likeNone() Opinions {
	return OpinionFunc(func(news.NodeID, news.ID) bool { return false })
}

func testNode(id news.NodeID, op Opinions, cfg Config) *Node {
	return NewNode(id, "", cfg, op, rand.New(rand.NewSource(int64(id)+1)))
}

func descFor(node news.NodeID, stamp int64, liked ...news.ID) overlay.Descriptor {
	p := profile.New()
	for _, id := range liked {
		p.Set(id, stamp, 1)
	}
	return overlay.Descriptor{Node: node, Stamp: stamp, Profile: p}
}

func item(id int, created int64) news.Item {
	it := news.New("t", "d", "l", created, 0)
	it.ID = news.ID(id) // fixed id for test readability
	return it
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.RPSViewSize != 30 || c.FLike != 10 || c.WUPViewSize != 20 ||
		c.DislikeTTL != 4 || c.ProfileWindow != 13 || c.ColdStartRatings != 3 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Metric == nil || c.Metric.Name() != "wup" {
		t.Fatal("default metric must be wup")
	}
	zero := Config{DislikeTTL: -1}.WithDefaults()
	if zero.DislikeTTL != 0 {
		t.Fatalf("negative TTL must mean explicit zero, got %d", zero.DislikeTTL)
	}
	keep := Config{FLike: 5}.WithDefaults()
	if keep.WUPViewSize != 10 {
		t.Fatalf("WUPvs must default to 2·fLIKE, got %d", keep.WUPViewSize)
	}
}

func TestPublishUpdatesProfileAndAmplifies(t *testing.T) {
	n := testNode(0, likeAll(), Config{FLike: 2})
	n.SeedViews([]overlay.Descriptor{
		descFor(1, 0, 5), descFor(2, 0, 5), descFor(3, 0, 5),
	})
	// Pre-existing interest so the item profile has something to aggregate.
	n.UserProfile().Set(5, 1, 1)

	it := item(100, 2)
	sends := n.Publish(it, 2)
	if len(sends) != 2 {
		t.Fatalf("publish must amplify to fLIKE targets, got %d", len(sends))
	}
	if e, ok := n.UserProfile().Get(100); !ok || e.Score != 1 {
		t.Fatal("source must like its own item")
	}
	for _, s := range sends {
		if !s.Msg.Profile.Has(100) || !s.Msg.Profile.Has(5) {
			t.Fatalf("item profile must aggregate the source profile incl. own item: %v", s.Msg.Profile)
		}
		if s.Msg.Hops != 1 {
			t.Fatalf("first-hop messages must carry Hops=1, got %d", s.Msg.Hops)
		}
		if s.Msg.Dislikes != 0 || s.Msg.ViaDislike {
			t.Fatal("publish sends must be like-forwards")
		}
	}
	if again := n.Publish(it, 3); again != nil {
		t.Fatal("re-publishing a seen item must be a no-op")
	}
}

func TestReceiveLikedAggregatesBeforeRating(t *testing.T) {
	// Algorithm 1 order: the receiver's profile is folded into the item
	// profile *before* the new item is added to the user profile, so the
	// item profile must NOT contain the item itself from this receiver.
	n := testNode(1, likeAll(), Config{FLike: 1})
	n.UserProfile().Set(7, 1, 1)
	msg := ItemMessage{Item: item(200, 2), Profile: profile.New(), Hops: 1}
	d, _ := n.Receive(msg, 2)
	if !d.Liked || d.Duplicate {
		t.Fatalf("delivery wrong: %+v", d)
	}
	if e, ok := n.UserProfile().Get(200); !ok || e.Score != 1 {
		t.Fatal("liked item must enter the user profile with score 1")
	}
	if !msg.Profile.Has(7) {
		t.Fatal("item profile must aggregate the receiver's prior interests")
	}
	if msg.Profile.Has(200) {
		t.Fatal("receiver must not add the item itself to the item profile (line order)")
	}
}

func TestReceiveLikedAveragesScores(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 1})
	n.UserProfile().Set(7, 1, 1)
	ip := profile.New()
	ip.Set(7, 1, 0) // a previous liker disliked item 7
	msg := ItemMessage{Item: item(300, 2), Profile: ip, Hops: 1}
	n.Receive(msg, 2)
	if e, _ := ip.Get(7); e.Score != 0.5 {
		t.Fatalf("item profile score must average: got %v want 0.5", e.Score)
	}
}

func TestReceiveDislikedRecordsAndOrients(t *testing.T) {
	liked := map[news.ID]bool{}
	n := testNode(1, likeSet(liked), Config{FLike: 3, DislikeTTL: 4})
	// RPS view: node 9's profile matches the item profile best.
	n.RPS().Seed([]overlay.Descriptor{
		descFor(8, 0, 50),
		descFor(9, 0, 60, 61),
	})
	ip := profile.New()
	ip.Set(60, 1, 1)
	ip.Set(61, 1, 1)
	msg := ItemMessage{Item: item(400, 2), Profile: ip, Dislikes: 1, Hops: 3}
	d, sends := n.Receive(msg, 2)
	if d.Liked {
		t.Fatal("opinion must be dislike")
	}
	if e, ok := n.UserProfile().Get(400); !ok || e.Score != 0 {
		t.Fatal("dislike must be recorded with score 0")
	}
	if len(sends) != 1 {
		t.Fatalf("dislike fanout must be 1, got %d", len(sends))
	}
	if sends[0].To != 9 {
		t.Fatalf("orientation must pick the most similar RPS node, got %d", sends[0].To)
	}
	if sends[0].Msg.Dislikes != 2 {
		t.Fatalf("dislike counter must increment, got %d", sends[0].Msg.Dislikes)
	}
	if !sends[0].Msg.ViaDislike {
		t.Fatal("send must be marked as dislike-forward")
	}
	if msg.Profile.Has(400) {
		t.Fatal("disliker must not aggregate into the item profile")
	}
}

func TestDislikeTTLDropsItem(t *testing.T) {
	n := testNode(1, likeNone(), Config{DislikeTTL: 2})
	n.RPS().Seed([]overlay.Descriptor{descFor(5, 0, 1)})
	msg := ItemMessage{Item: item(500, 1), Profile: profile.New(), Dislikes: 2}
	if _, sends := n.Receive(msg, 1); sends != nil {
		t.Fatalf("item at TTL must be dropped, got %d sends", len(sends))
	}
	// Explicit zero TTL: never forward dislikes.
	z := testNode(2, likeNone(), Config{DislikeTTL: -1})
	z.RPS().Seed([]overlay.Descriptor{descFor(5, 0, 1)})
	msg2 := ItemMessage{Item: item(501, 1), Profile: profile.New()}
	if _, sends := z.Receive(msg2, 1); sends != nil {
		t.Fatal("TTL 0 must never forward dislikes")
	}
}

func TestDuplicateDropped(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 1})
	n.SeedViews([]overlay.Descriptor{descFor(2, 0, 1)})
	msg := ItemMessage{Item: item(600, 1), Profile: profile.New(), Hops: 1}
	if d, _ := n.Receive(msg, 1); d.Duplicate {
		t.Fatal("first receipt must not be duplicate")
	}
	msg2 := ItemMessage{Item: item(600, 1), Profile: profile.New(), Hops: 2}
	d, sends := n.Receive(msg2, 1)
	if !d.Duplicate || sends != nil {
		t.Fatal("second receipt must be dropped with no sends")
	}
	if n.UserProfile().Len() != 1 {
		t.Fatal("duplicate must not touch the user profile")
	}
}

func TestForwardClonesProfilesPerPath(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 3})
	n.SeedViews([]overlay.Descriptor{
		descFor(2, 0, 1), descFor(3, 0, 1), descFor(4, 0, 1),
	})
	msg := ItemMessage{Item: item(700, 1), Profile: profile.New(), Hops: 1}
	_, sends := n.Receive(msg, 1)
	if len(sends) != 3 {
		t.Fatalf("want 3 sends, got %d", len(sends))
	}
	// Mutating one copy must not affect the others.
	sends[0].Msg.Profile.Set(999, 1, 1)
	if sends[1].Msg.Profile.Has(999) || sends[2].Msg.Profile.Has(999) {
		t.Fatal("item profile copies must be independent per path")
	}
}

func TestItemProfilePurgedBeforeForward(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 1, ProfileWindow: 5})
	n.SeedViews([]overlay.Descriptor{descFor(2, 0, 1)})
	ip := profile.New()
	ip.Set(10, 1, 1)  // stale at now=20 with window 5
	ip.Set(11, 18, 1) // fresh
	msg := ItemMessage{Item: item(800, 19), Profile: ip, Hops: 1}
	_, sends := n.Receive(msg, 20)
	if len(sends) != 1 {
		t.Fatalf("want 1 send, got %d", len(sends))
	}
	out := sends[0].Msg.Profile
	if out.Has(10) {
		t.Fatal("stale entries must be purged from the item profile before forwarding")
	}
	if !out.Has(11) {
		t.Fatal("fresh entries must survive the purge")
	}
}

func TestBeginCyclePurgesUserProfile(t *testing.T) {
	n := testNode(1, likeAll(), Config{ProfileWindow: 10})
	n.UserProfile().Set(1, 5, 1)
	n.UserProfile().Set(2, 50, 1)
	n.BeginCycle(60)
	if n.UserProfile().Has(1) || !n.UserProfile().Has(2) {
		t.Fatalf("window purge wrong: %v", n.UserProfile())
	}
}

func TestColdStartRatesPopularItems(t *testing.T) {
	n := testNode(42, likeAll(), Config{})
	inherited := []overlay.Descriptor{
		descFor(1, 0, 10, 11, 12),
		descFor(2, 0, 10, 11),
		descFor(3, 0, 10),
		descFor(4, 0, 99),
	}
	n.ColdStart(inherited, inherited, 7)
	up := n.UserProfile()
	if up.Len() != 3 {
		t.Fatalf("cold start must rate 3 items, got %d", up.Len())
	}
	for _, id := range []news.ID{10, 11, 12} {
		e, ok := up.Get(id)
		if !ok || e.Score != 1 || e.Stamp != 7 {
			t.Fatalf("popular item %d must be liked at join time, got %+v ok=%v", id, e, ok)
		}
	}
	if n.RPS().View().Len() == 0 || n.WUP().View().Len() == 0 {
		t.Fatal("cold start must inherit both views")
	}
}

func TestInjectRPSCandidates(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 2})
	n.UserProfile().Set(5, 1, 1)
	n.RPS().Seed([]overlay.Descriptor{descFor(7, 0, 5)})
	if n.WUP().View().Contains(7) {
		t.Fatal("precondition: WUP view empty")
	}
	n.InjectRPSCandidates()
	if !n.WUP().View().Contains(7) {
		t.Fatal("RPS candidates must flow into the WUP view")
	}
}

func TestLikedForwardTargetsComeFromWUPView(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 2})
	n.WUP().Seed([]overlay.Descriptor{
		descFor(2, 0, 1), descFor(3, 0, 1), descFor(4, 0, 1), descFor(5, 0, 1),
	}, n.UserProfile())
	n.RPS().Seed([]overlay.Descriptor{descFor(9, 0, 1)})
	msg := ItemMessage{Item: item(900, 1), Profile: profile.New(), Hops: 1}
	_, sends := n.Receive(msg, 1)
	if len(sends) != 2 {
		t.Fatalf("want fLIKE=2 sends, got %d", len(sends))
	}
	for _, s := range sends {
		if s.To == 9 {
			t.Fatal("liked forwards must target the WUP view, not RPS")
		}
		if !n.WUP().View().Contains(s.To) {
			t.Fatalf("target %d not in WUP view", s.To)
		}
	}
}

func TestCrashClearsViewsKeepsProfile(t *testing.T) {
	n := testNode(1, likeAll(), Config{})
	n.SeedViews([]overlay.Descriptor{descFor(2, 0, 1)})
	n.UserProfile().Set(1, 1, 1)
	n.Crash()
	if n.RPS().View().Len() != 0 || n.WUP().View().Len() != 0 {
		t.Fatal("crash must clear the views")
	}
	if n.UserProfile().Len() != 1 {
		t.Fatal("crash must keep the durable user profile")
	}
}

// TestLeaveAndRejoinLifecycle pins the node-side lifecycle next to Crash:
// Leave wipes views; Rejoin wipes views and re-seeds from the bootstrap
// sample while retaining the profile.
func TestLeaveAndRejoinLifecycle(t *testing.T) {
	n := NewNode(1, "", Config{FLike: 3}, likeAll(), rand.New(rand.NewSource(1)))
	seed := []overlay.Descriptor{
		{Node: 2, Stamp: 1, Profile: profile.New()},
		{Node: 3, Stamp: 1, Profile: profile.New()},
	}
	n.SeedViews(seed)
	n.UserProfile().Set(10, 5, 1)

	n.Leave()
	if n.RPS().View().Len() != 0 || n.WUP().View().Len() != 0 {
		t.Fatal("Leave must wipe both views")
	}
	if n.UserProfile().Len() != 1 {
		t.Fatal("Leave must not touch the durable profile")
	}

	n.SeedViews(seed)
	fresh := []overlay.Descriptor{{Node: 4, Stamp: 9, Profile: profile.New()}}
	n.Rejoin(fresh, 9)
	if n.RPS().View().Contains(2) || n.RPS().View().Contains(3) {
		t.Fatal("Rejoin must wipe the pre-crash views")
	}
	if !n.RPS().View().Contains(4) || !n.WUP().View().Contains(4) {
		t.Fatal("Rejoin must seed both views from the bootstrap sample")
	}
	if n.UserProfile().Len() != 1 {
		t.Fatal("Rejoin must retain the profile")
	}
}

// TestBeginCycleEvictsStaleDescriptors pins the DescriptorTTL wiring: with
// a TTL set, BeginCycle drops view entries older than the horizon from both
// layers; without one, views are untouched (the static-population default).
func TestBeginCycleEvictsStaleDescriptors(t *testing.T) {
	mk := func(ttl int64) *Node {
		n := NewNode(1, "", Config{FLike: 3, DescriptorTTL: ttl}, likeAll(), rand.New(rand.NewSource(2)))
		n.SeedViews([]overlay.Descriptor{
			{Node: 2, Stamp: 5, Profile: profile.New()},  // stale at now=30, ttl=20
			{Node: 3, Stamp: 25, Profile: profile.New()}, // fresh
		})
		return n
	}
	n := mk(20)
	n.BeginCycle(30)
	if n.RPS().View().Contains(2) || n.WUP().View().Contains(2) {
		t.Fatal("stale descriptor must be evicted from both views")
	}
	if !n.RPS().View().Contains(3) || !n.WUP().View().Contains(3) {
		t.Fatal("fresh descriptor must survive")
	}
	off := mk(0)
	off.BeginCycle(30)
	if !off.RPS().View().Contains(2) || !off.WUP().View().Contains(2) {
		t.Fatal("with DescriptorTTL disabled BeginCycle must not evict")
	}
}
