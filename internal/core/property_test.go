package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

// TestBEEPSendBounds: whatever the node state and message, BEEP never sends
// more than fLIKE copies of a liked item nor more than one copy of a
// disliked item, and the dislike counter never exceeds the TTL.
func TestBEEPSendBounds(t *testing.T) {
	f := func(seed int64, fanout uint8, ttl uint8, dislikes uint8, likedByte uint8) bool {
		fl := int(fanout%16) + 1
		ttlV := int(ttl % 6)
		cfgTTL := ttlV
		if cfgTTL == 0 {
			cfgTTL = -1
		}
		liked := likedByte%2 == 0
		op := OpinionFunc(func(news.NodeID, news.ID) bool { return liked })
		n := NewNode(0, "", Config{FLike: fl, DislikeTTL: cfgTTL}, op, rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(seed + 1))
		var descs []overlay.Descriptor
		for i := news.NodeID(1); i <= 25; i++ {
			p := profile.New()
			p.Set(news.ID(rng.Intn(10)), 0, 1)
			descs = append(descs, overlay.Descriptor{Node: i, Stamp: int64(i), Profile: p})
		}
		n.SeedViews(descs)
		msg := ItemMessage{
			Item:     news.New("t", "d", "l", 1, 99),
			Profile:  profile.New(),
			Dislikes: int(dislikes % 8),
			Hops:     1,
		}
		_, sends := n.Receive(msg, 1)
		if liked && len(sends) > fl {
			return false
		}
		if !liked && len(sends) > 1 {
			return false
		}
		for _, s := range sends {
			if s.Msg.Dislikes > maxInt(int(dislikes%8)+1, int(dislikes%8)) {
				return false
			}
			if !liked && s.Msg.Dislikes > ttlV {
				return false // a dislike forward beyond the TTL escaped
			}
			if s.Msg.Hops != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestUserProfileScoresAreBinary: whatever sequence of receipts, a user
// profile holds only 0/1 scores and at most one entry per item.
func TestUserProfileScoresAreBinary(t *testing.T) {
	f := func(seed int64, itemIDs []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		op := OpinionFunc(func(_ news.NodeID, id news.ID) bool { return id%2 == 0 })
		n := NewNode(0, "", Config{FLike: 3}, op, rng)
		for i, raw := range itemIDs {
			it := news.New("t", "d", "l", int64(i), 1)
			it.ID = news.ID(raw % 64) // force duplicates
			n.Receive(ItemMessage{Item: it, Profile: profile.New(), Hops: 1}, int64(i))
		}
		ok := true
		seen := map[news.ID]bool{}
		n.UserProfile().ForEach(func(e profile.Entry) {
			if e.Score != 0 && e.Score != 1 {
				ok = false
			}
			if seen[e.Item] {
				ok = false
			}
			seen[e.Item] = true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestItemProfileScoresBounded: aggregated item-profile scores stay in
// [0, 1] under arbitrary like sequences (averages of values in [0,1]).
func TestItemProfileScoresBounded(t *testing.T) {
	f := func(seed int64, hops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		op := OpinionFunc(func(news.NodeID, news.ID) bool { return true })
		ip := profile.New()
		// A chain of likers, each folding its profile into the item profile.
		for h := 0; h < int(hops%12)+1; h++ {
			n := NewNode(news.NodeID(h), "", Config{FLike: 2}, op, rng)
			for k := 0; k < 5; k++ {
				n.UserProfile().Set(news.ID(rng.Intn(8)), int64(h), float64(rng.Intn(2)))
			}
			it := news.New("t", "d", "l", int64(h), 0)
			it.ID = news.ID(1000 + h)
			n.Receive(ItemMessage{Item: it, Profile: ip, Hops: h}, int64(h))
		}
		ok := true
		ip.ForEach(func(e profile.Entry) {
			if e.Score < 0 || e.Score > 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
