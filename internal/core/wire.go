package core

import (
	"fmt"

	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/wire"
)

// ItemMessage wire layout, used by live BEEP envelopes:
//
//	string  title, description, link (uvarint length + bytes each)
//	varint  created stamp, source node (zigzag)
//	varint  dislike counter d_I, hop count (zigzag)
//	uint    via-dislike flag (0/1)
//	uint    profile presence (0 = nil, 1 = packed item profile P_I follows)
//
// The item identifier is NOT transmitted: receivers recompute the 8-byte
// content hash locally (paper II-A), which keeps the frame one hash shorter
// and prevents identifier spoofing. The dataset ground-truth fields Topic
// and Community are likewise never gossiped — they exist only for workload
// generators and metrics on the publishing side — so a decoded item carries
// their zero values.

// AppendWire appends the wire encoding of the message to buf.
func (m ItemMessage) AppendWire(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Item.Title)
	buf = wire.AppendString(buf, m.Item.Description)
	buf = wire.AppendString(buf, m.Item.Link)
	buf = wire.AppendInt(buf, m.Item.Created)
	buf = wire.AppendInt(buf, int64(m.Item.Source))
	buf = wire.AppendInt(buf, int64(m.Dislikes))
	buf = wire.AppendInt(buf, int64(m.Hops))
	if m.ViaDislike {
		buf = wire.AppendUint(buf, 1)
	} else {
		buf = wire.AppendUint(buf, 0)
	}
	if m.Profile == nil {
		return wire.AppendUint(buf, 0)
	}
	buf = wire.AppendUint(buf, 1)
	return m.Profile.AppendWire(buf)
}

// DecodeItemMessage decodes one message from the front of data, recomputing
// the item identifier from the received content.
func DecodeItemMessage(data []byte) (ItemMessage, []byte, error) {
	var m ItemMessage
	var err error
	rest := data
	if m.Item.Title, rest, err = wire.String(rest); err != nil {
		return m, data, fmt.Errorf("item title: %w", err)
	}
	if m.Item.Description, rest, err = wire.String(rest); err != nil {
		return m, data, fmt.Errorf("item description: %w", err)
	}
	if m.Item.Link, rest, err = wire.String(rest); err != nil {
		return m, data, fmt.Errorf("item link: %w", err)
	}
	if m.Item.Created, rest, err = wire.Int(rest); err != nil {
		return m, data, fmt.Errorf("item created: %w", err)
	}
	source, rest, err := wire.Int(rest)
	if err != nil {
		return m, data, fmt.Errorf("item source: %w", err)
	}
	if !news.ValidNodeID(source) {
		return m, data, fmt.Errorf("%w: source node %d out of range", wire.ErrMalformed, source)
	}
	m.Item.Source = news.NodeID(source)
	dislikes, rest, err := wire.Int(rest)
	if err != nil {
		return m, data, fmt.Errorf("item dislikes: %w", err)
	}
	hops, rest, err := wire.Int(rest)
	if err != nil {
		return m, data, fmt.Errorf("item hops: %w", err)
	}
	// The encoder can never produce negative counters; accepting them would
	// corrupt the hop/dislike histograms downstream.
	if dislikes < 0 || hops < 0 || dislikes > int64(maxIntValue) || hops > int64(maxIntValue) {
		return m, data, fmt.Errorf("%w: item counters (d_I=%d, hops=%d) out of range", wire.ErrMalformed, dislikes, hops)
	}
	m.Dislikes = int(dislikes)
	m.Hops = int(hops)
	via, rest, err := wire.Uint(rest)
	if err != nil || via > 1 {
		if err == nil {
			err = fmt.Errorf("%w: via-dislike flag %d", wire.ErrMalformed, via)
		}
		return m, data, fmt.Errorf("item via-dislike: %w", err)
	}
	m.ViaDislike = via == 1
	present, rest, err := wire.Uint(rest)
	if err != nil {
		return m, data, fmt.Errorf("item profile flag: %w", err)
	}
	switch present {
	case 0:
	case 1:
		if m.Profile, rest, err = profile.DecodeWire(rest); err != nil {
			return m, data, err
		}
	default:
		return m, data, fmt.Errorf("%w: profile presence flag %d", wire.ErrMalformed, present)
	}
	m.Item.ID = news.Hash(m.Item.Title, m.Item.Description, m.Item.Link)
	return m, rest, nil
}

const maxIntValue = int(^uint(0) >> 1)
