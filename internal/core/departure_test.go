package core

import (
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
)

// TestNoteDepartureEvictsAndFilters pins the node half of the departure
// notice protocol: a tombstone evicts the leaver from both views immediately
// and filters its stale descriptors out of later merges until it expires.
func TestNoteDepartureEvictsAndFilters(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 3, DescriptorTTL: 5})
	leaver := descFor(7, 10)
	other := descFor(8, 10)
	n.RPS().Seed([]overlay.Descriptor{leaver, other})
	n.WUP().Seed([]overlay.Descriptor{leaver, other}, n.UserProfile())
	if !n.RPS().View().Contains(7) || !n.WUP().View().Contains(7) {
		t.Fatal("setup: leaver descriptor must be in both views")
	}

	n.NoteDeparture(overlay.Tombstone{Node: 7, Stamp: 10}, 10)
	if n.RPS().View().Contains(7) || n.WUP().View().Contains(7) {
		t.Fatal("NoteDeparture must evict the leaver from both views")
	}
	if n.RPS().View().Contains(8) == false {
		t.Fatal("NoteDeparture must only evict the tombstoned node")
	}

	// A stale descriptor of the leaver still in flight must not re-enter.
	n.RPS().Seed([]overlay.Descriptor{leaver})
	n.WUP().Seed([]overlay.Descriptor{leaver}, n.UserProfile())
	if n.RPS().View().Contains(7) || n.WUP().View().Contains(7) {
		t.Fatal("active tombstone must filter the leaver out of merges")
	}

	if tombs := n.AppendTombstones(nil); len(tombs) != 1 || tombs[0].Node != 7 {
		t.Fatalf("AppendTombstones = %v, want the leaver's tombstone", tombs)
	}
}

// TestNoteDepartureIgnoresSelfAndExpired: a node never tombstones itself,
// and a notice older than the departure horizon is dropped on arrival.
func TestNoteDepartureIgnoresSelfAndExpired(t *testing.T) {
	n := testNode(1, likeAll(), Config{FLike: 3, DescriptorTTL: 5})
	n.NoteDeparture(overlay.Tombstone{Node: 1, Stamp: 100}, 100)
	if len(n.AppendTombstones(nil)) != 0 {
		t.Fatal("a node must ignore a tombstone bearing its own id")
	}
	n.NoteDeparture(overlay.Tombstone{Node: 9, Stamp: 4}, 10) // 4 < 10-5
	if len(n.AppendTombstones(nil)) != 0 {
		t.Fatal("a tombstone older than the horizon must be dropped on arrival")
	}
	n.NoteDeparture(overlay.Tombstone{Node: 9, Stamp: 5}, 10) // boundary: exactly now-horizon
	if len(n.AppendTombstones(nil)) != 1 {
		t.Fatal("a tombstone stamped exactly now-horizon must be accepted")
	}
}

// TestTombstoneExpiryOnBeginCycle pins the one-horizon lifetime: BeginCycle
// expires tombstones with the same strictly-older-than boundary as view
// eviction, and a crash wipes them with the rest of the volatile state.
func TestTombstoneExpiryOnBeginCycle(t *testing.T) {
	const ttl = 5
	n := testNode(1, likeAll(), Config{FLike: 3, DescriptorTTL: ttl})
	n.NoteDeparture(overlay.Tombstone{Node: 7, Stamp: 10}, 10)

	n.BeginCycle(10 + ttl) // 10 == (10+ttl)-ttl: boundary stamp survives
	if len(n.AppendTombstones(nil)) != 1 {
		t.Fatal("tombstone must survive exactly one horizon")
	}
	n.BeginCycle(10 + ttl + 1)
	if len(n.AppendTombstones(nil)) != 0 {
		t.Fatal("tombstone must expire one cycle past the horizon")
	}

	// Without a DescriptorTTL the horizon falls back to the profile window.
	win := testNode(2, likeAll(), Config{FLike: 3, ProfileWindow: 4})
	win.NoteDeparture(overlay.Tombstone{Node: 7, Stamp: 10}, 10)
	win.BeginCycle(15) // 10 < 15-4
	if len(win.AppendTombstones(nil)) != 0 {
		t.Fatal("without DescriptorTTL the tombstone horizon must be the profile window")
	}

	crashed := testNode(3, likeAll(), Config{FLike: 3, DescriptorTTL: ttl})
	crashed.NoteDeparture(overlay.Tombstone{Node: 7, Stamp: 10}, 10)
	crashed.Crash()
	if len(crashed.AppendTombstones(nil)) != 0 {
		t.Fatal("Crash must clear the tombstone set with the volatile state")
	}
}

// TestEvictionBoundaryAcrossLayers is the shared TTL-boundary regression for
// every EvictOlderThan caller (rps, cluster, and BeginCycle's wiring of
// both): a descriptor stamped exactly at now-TTL survives, one cycle older
// is evicted. The live runtime's ingestion-time eviction reuses the same
// EvictOlderThan, so this pins all call sites to one semantics.
func TestEvictionBoundaryAcrossLayers(t *testing.T) {
	const ttl, now = 7, 20
	boundary := descFor(5, now-ttl)
	stale := descFor(6, now-ttl-1)

	n := testNode(1, likeAll(), Config{FLike: 3, DescriptorTTL: ttl})
	n.RPS().Seed([]overlay.Descriptor{boundary, stale})
	n.WUP().Seed([]overlay.Descriptor{boundary, stale}, n.UserProfile())
	n.BeginCycle(now)
	for layer, v := range map[string]*overlay.View{"rps": n.RPS().View(), "wup": n.WUP().View()} {
		if !v.Contains(5) {
			t.Fatalf("%s: descriptor stamped exactly now-TTL must survive", layer)
		}
		if v.Contains(6) {
			t.Fatalf("%s: descriptor one cycle older than the horizon must be evicted", layer)
		}
	}

	direct := overlay.NewView(4)
	direct.InsertAll([]overlay.Descriptor{boundary, stale}, news.NodeID(99))
	if evicted := direct.EvictOlderThan(now - ttl); evicted != 1 {
		t.Fatalf("View.EvictOlderThan evicted %d, want 1 (strictly older than)", evicted)
	}
}

// TestNoticePiggybackCap: by default every active tombstone rides outgoing
// gossip freshest-first; with NoticePiggybackCap only that many of the
// freshest do.
func TestNoticePiggybackCap(t *testing.T) {
	notes := []overlay.Tombstone{
		{Node: 7, Stamp: 4},
		{Node: 8, Stamp: 9},
		{Node: 9, Stamp: 6},
	}

	full := testNode(1, likeAll(), Config{FLike: 3, DescriptorTTL: 20})
	for _, tb := range notes {
		full.NoteDeparture(tb, 10)
	}
	got := full.AppendTombstones(nil)
	byNode := []overlay.Tombstone{{Node: 7, Stamp: 4}, {Node: 8, Stamp: 9}, {Node: 9, Stamp: 6}}
	if len(got) != len(byNode) {
		t.Fatalf("uncapped piggyback carried %d tombstones, want all %d", len(got), len(byNode))
	}
	for i := range byNode {
		if got[i] != byNode[i] {
			t.Fatalf("piggyback order %v, want the full set in node-id order %v", got, byNode)
		}
	}

	capped := testNode(1, likeAll(), Config{FLike: 3, DescriptorTTL: 20, NoticePiggybackCap: 2})
	for _, tb := range notes {
		capped.NoteDeparture(tb, 10)
	}
	got = capped.AppendTombstones(nil)
	byFresh := []overlay.Tombstone{{Node: 8, Stamp: 9}, {Node: 9, Stamp: 6}}
	if len(got) != 2 || got[0] != byFresh[0] || got[1] != byFresh[1] {
		t.Fatalf("capped piggyback = %v, want the 2 freshest %v", got, byFresh)
	}
}
