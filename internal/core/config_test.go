package core

import "testing"

// TestForPopulationSmallScaleIdentity pins that ForPopulation is a strict
// no-op below the large-scale threshold: every config the paper-scale
// experiments build must come back byte-identical, so the sharded engine's
// large-scale defaults can never perturb validated small-scale results.
func TestForPopulationSmallScaleIdentity(t *testing.T) {
	cfgs := []Config{
		{},
		Config{}.WithDefaults(),
		{FLike: 4, RPSViewSize: 8, ProfileWindow: 25, DescriptorTTL: 10},
		{NoticePiggybackCap: 7},
	}
	for _, n := range []int{0, 1, 5000, LargeScalePopulation - 1} {
		for i, cfg := range cfgs {
			got := cfg.ForPopulation(n)
			if got != cfg {
				t.Errorf("n=%d cfg[%d]: ForPopulation changed config: %+v -> %+v", n, i, cfg, got)
			}
		}
	}
}

// TestForPopulationLargeScaleCap asserts the bounded piggyback default kicks
// in above the threshold — and only for an unset cap.
func TestForPopulationLargeScaleCap(t *testing.T) {
	got := Config{}.ForPopulation(LargeScalePopulation)
	if got.NoticePiggybackCap != LargeScaleNoticeCap {
		t.Errorf("unset cap at threshold: got %d, want %d", got.NoticePiggybackCap, LargeScaleNoticeCap)
	}
	if rest := (Config{NoticePiggybackCap: LargeScaleNoticeCap}); got != rest {
		t.Errorf("ForPopulation changed more than the cap: %+v", got)
	}
	explicit := Config{NoticePiggybackCap: 7}.ForPopulation(2 * LargeScalePopulation)
	if explicit.NoticePiggybackCap != 7 {
		t.Errorf("explicit cap overridden: got %d, want 7", explicit.NoticePiggybackCap)
	}
	uncapped := Config{NoticePiggybackCap: -1}.ForPopulation(2 * LargeScalePopulation)
	if uncapped.NoticePiggybackCap != -1 {
		t.Errorf("explicit uncapped (-1) overridden: got %d", uncapped.NoticePiggybackCap)
	}
}
