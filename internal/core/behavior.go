package core

import (
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// Behavior is the adversarial seam of a node: three hooks placed exactly
// where a node's actions reach the rest of the mesh, so hostile
// implementations (internal/adversary: spam publishers, profile poisoners,
// sybil cohorts) plug into the sim engine, the live runtime and the
// baselines without forking any of them. A node without a behavior (the
// default) is honest, and the hooks cost a single nil check on the hot
// path — zero allocations, pinned by TestReceiveLikedAllocsPinned.
//
// Behaviors are consulted from the node's own goroutine/worker only; they
// need no internal synchronization unless instances are shared across nodes
// (the sybil attack shares one, so shared state must be read-only).
type Behavior interface {
	// AdvertisedProfile returns the profile the node gossips in its overlay
	// descriptors in place of the honest user profile — the profile-poisoning
	// hook. user is the node's real profile; honest implementations return it
	// unchanged. Implementations must not mutate user.
	AdvertisedProfile(user *profile.Profile, now int64) *profile.Profile
	// React returns the node's reaction to an item it publishes or receives,
	// given the honest opinion from the trace. Spam amplifiers return true
	// for their cohort's items so BEEP fans them out at full fLIKE fanout.
	React(item news.Item, honest bool) bool
	// OutgoingItem rewrites an item message the moment before BEEP forwards
	// it — the item-profile-poisoning hook. Honest implementations return msg
	// unchanged.
	OutgoingItem(msg ItemMessage) ItemMessage
}

// SetBehavior attaches (or, with nil, detaches) the node's behavior. Call
// before the node starts participating; engines never synchronize this.
func (n *Node) SetBehavior(b Behavior) { n.behavior = b }

// Behavior returns the attached behavior (nil for an honest node).
func (n *Node) Behavior() Behavior { return n.behavior }

// AdvertisedProfile returns the profile this node advertises in gossip
// descriptors: the user profile for honest nodes, the behavior's fabrication
// otherwise. Engines build every outgoing descriptor from this instead of
// UserProfile, which is what makes profile poisoning possible without
// forking them.
func (n *Node) AdvertisedProfile(now int64) *profile.Profile {
	if n.behavior != nil {
		return n.behavior.AdvertisedProfile(n.user, now)
	}
	return n.user
}
