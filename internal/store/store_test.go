package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func sampleState(rng *rand.Rand, entries, seen int) State {
	p := profile.New()
	for i := 0; i < entries; i++ {
		p.Set(news.ID(rng.Int63()), rng.Int63n(1000), float64(rng.Intn(2)))
	}
	s := make(map[news.ID]struct{}, seen)
	for i := 0; i < seen; i++ {
		s[news.ID(rng.Int63())] = struct{}{}
	}
	return State{Profile: p, Seen: s}
}

func statesEqual(a, b State) bool {
	if !a.Profile.Equal(b.Profile) || len(a.Seen) != len(b.Seen) {
		return false
	}
	for id := range a.Seen {
		if _, ok := b.Seen[id]; !ok {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		st := sampleState(rng, rng.Intn(40), rng.Intn(40))
		var buf bytes.Buffer
		if err := Write(&buf, st); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !statesEqual(st, got) {
			t.Fatalf("round trip mismatch at trial %d", trial)
		}
	}
}

func TestNilProfileWritesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, State{Seen: map[news.ID]struct{}{1: {}}}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.Len() != 0 || len(got.Seen) != 1 {
		t.Fatalf("unexpected state: %+v", got)
	}
}

func TestCanonicalEncoding(t *testing.T) {
	// Same logical state → identical bytes regardless of map order.
	mk := func() State {
		p := profile.New()
		p.Set(3, 1, 1)
		p.Set(1, 2, 0)
		return State{Profile: p, Seen: map[news.ID]struct{}{9: {}, 2: {}, 5: {}}}
	}
	var a, b bytes.Buffer
	if err := Write(&a, mk()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding must be canonical")
	}
}

func TestBadInputsRejected(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
	}
	for i, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d: corrupt input accepted", i)
		}
	}
	// Truncated but valid prefix.
	var buf bytes.Buffer
	st := sampleState(rand.New(rand.NewSource(2)), 10, 10)
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:len(full)-4])); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.state")
	st := sampleState(rand.New(rand.NewSource(3)), 20, 20)
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(st, got) {
		t.Fatal("save/load mismatch")
	}
	// Overwrite with new state.
	st2 := sampleState(rand.New(rand.NewSource(4)), 5, 5)
	if err := Save(path, st2); err != nil {
		t.Fatal(err)
	}
	got2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(st2, got2) {
		t.Fatal("overwrite mismatch")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(ids []uint64, seenIDs []uint64) bool {
		p := profile.New()
		for i, id := range ids {
			p.Set(news.ID(id), int64(i), float64(i%2))
		}
		seen := make(map[news.ID]struct{})
		for _, id := range seenIDs {
			seen[news.ID(id)] = struct{}{}
		}
		st := State{Profile: p, Seen: seen}
		var buf bytes.Buffer
		if err := Write(&buf, st); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return statesEqual(st, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
