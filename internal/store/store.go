// Package store persists a node's durable state between restarts. The
// paper's prototype pairs the protocols with "a lightweight local database
// containing user-profile information" (Section V): the user profile is the
// durable part of a WhatsUp node — views are soft state that gossip rebuilds
// — so the store saves and restores profiles plus the seen-item set using
// the canonical binary profile codec.
//
// The file format is versioned and length-prefixed:
//
//	magic "WUPSTORE" | uint16 version | profile blob | uint32 nSeen | nSeen × uint64
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

var magic = [8]byte{'W', 'U', 'P', 'S', 'T', 'O', 'R', 'E'}

const version = 1

// ErrBadFormat reports a corrupt or foreign state file.
var ErrBadFormat = errors.New("store: bad state file")

// State is the durable part of a node.
type State struct {
	Profile *profile.Profile
	Seen    map[news.ID]struct{}
}

// Write serializes the state to w.
func Write(w io.Writer, st State) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint16(version)); err != nil {
		return err
	}
	prof := st.Profile
	if prof == nil {
		prof = profile.New()
	}
	blob, err := prof.MarshalBinary()
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(blob))); err != nil {
		return err
	}
	if _, err := bw.Write(blob); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(st.Seen))); err != nil {
		return err
	}
	// Canonical order so identical states serialize identically.
	ids := make([]uint64, 0, len(st.Seen))
	for id := range st.Seen {
		ids = append(ids, uint64(id))
	}
	slices.Sort(ids)
	for _, id := range ids {
		if err := binary.Write(bw, binary.BigEndian, id); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a state written by Write.
func Read(r io.Reader) (State, error) {
	br := bufio.NewReader(r)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if gotMagic != magic {
		return State{}, fmt.Errorf("%w: wrong magic", ErrBadFormat)
	}
	var ver uint16
	if err := binary.Read(br, binary.BigEndian, &ver); err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if ver != version {
		return State{}, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	var blobLen uint32
	if err := binary.Read(br, binary.BigEndian, &blobLen); err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	prof := profile.New()
	if err := prof.UnmarshalBinary(blob); err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var nSeen uint32
	if err := binary.Read(br, binary.BigEndian, &nSeen); err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	seen := make(map[news.ID]struct{}, nSeen)
	for i := uint32(0); i < nSeen; i++ {
		var id uint64
		if err := binary.Read(br, binary.BigEndian, &id); err != nil {
			return State{}, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		seen[news.ID(id)] = struct{}{}
	}
	return State{Profile: prof, Seen: seen}, nil
}

// Save atomically writes the state to path (write-temp-then-rename).
func Save(path string, st State) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wupstate-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads the state from path.
func Load(path string) (State, error) {
	f, err := os.Open(path)
	if err != nil {
		return State{}, err
	}
	defer f.Close()
	return Read(f)
}
