package analysis

// A minimal analysistest work-alike. The real
// golang.org/x/tools/go/analysis/analysistest is not part of the toolchain's
// vendored vet suite, and this module builds fully offline, so the fixture
// protocol is reimplemented here: every file under testdata/src/<pkg>/ is
// parsed and type-checked (stdlib imports resolved from source via GOROOT),
// the analyzer under test runs over the package, and its diagnostics are
// matched — by file, line and message regexp — against `// want "rx"`
// comments. Unmatched expectations and unexpected diagnostics both fail.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// wantRE extracts the expectation regexps from a want comment; patterns may
// be double- or backtick-quoted: // want "a" `b`
var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// runFixture type-checks testdata/src/<dir> and runs the analyzer over it,
// comparing diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pass, files := loadFixture(t, dir)

	var diags []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
	runWithRequires(t, a, pass, map[*analysis.Analyzer]interface{}{})

	expects := collectWants(t, pass.Fset, files)
	for _, d := range diags {
		p := pass.Fset.Position(d.Pos)
		found := false
		for _, e := range expects {
			if !e.matched && e.file == filepath.Base(p.Filename) && e.line == p.Line && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

// loadFixture parses and type-checks the fixture package in
// testdata/src/<dir>, returning a ready-to-run Pass (with Report unset).
func loadFixture(t *testing.T, dir string) (*analysis.Pass, []*ast.File) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(root, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		// Source importer: resolves stdlib imports from GOROOT source, so
		// fixtures can use time, sync and math/rand without export data.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(dir, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pass := &analysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		ReadFile:   os.ReadFile,
		// Fact stubs: none of the analyzers under test use facts, but the
		// fields must not be nil if one is ever added.
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	return pass, files
}

// runWithRequires runs a's prerequisite analyzers (memoized in results),
// then a itself, against pass.
func runWithRequires(t *testing.T, a *analysis.Analyzer, pass *analysis.Pass, results map[*analysis.Analyzer]interface{}) {
	t.Helper()
	for _, req := range a.Requires {
		if _, done := results[req]; done {
			continue
		}
		sub := *pass
		sub.Analyzer = req
		sub.Report = func(analysis.Diagnostic) {} // prerequisites run silenced
		sub.ResultOf = results
		runWithRequires(t, req, &sub, results)
	}
	pass.Analyzer = a
	pass.ResultOf = results
	res, err := a.Run(pass)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	results[a] = res
}

// collectWants parses the `// want "rx"` expectations out of the fixtures.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", p.Filename, p.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
					}
					out = append(out, &expectation{file: filepath.Base(p.Filename), line: p.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// diagString is a debugging helper kept for fixture authoring.
func diagString(fset *token.FileSet, d analysis.Diagnostic) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, d.Message)
}
