package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// HotAlloc statically guards the hot-path allocation budget (the runtime pin
// is 8 allocs/op on the receive-liked path). Functions opted in with a
// `//whatsup:hotpath` doc directive must acknowledge every
// statically-visible allocation site with an inline `//whatsup:alloc`
// comment; an unmarked site is a diagnostic. The acknowledged sites form an
// auditable, reviewable budget: a new allocation sneaking into the path
// fails lint until it is consciously marked (and the runtime pin re-checked).
//
// Flagged site kinds: make, new, growth-capable append, composite literals
// (including &T{...}), closures (func literals capture their environment on
// the heap), and []byte<->string conversions.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "in //whatsup:hotpath functions, flag allocation sites (make/new/append/" +
		"composite literal/closure/[]byte-string conversion) not acknowledged with //whatsup:alloc",
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	ann := collectAnnotations(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDocHas(fd, "whatsup:hotpath") {
				continue
			}
			checkHotFunc(pass, ann, fd)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, ann *annotations, fd *ast.FuncDecl) {
	acked := ackedBuffers(pass, ann, fd)
	report := func(n ast.Node, what string) {
		if ann.has(n.Pos(), "whatsup:alloc") || ann.allowed(n.Pos(), "hotalloc") {
			return
		}
		pass.Reportf(n.Pos(), "hotalloc: %s in hot-path function %s is an unacknowledged allocation site; mark it //whatsup:alloc (and re-check the allocs/op pin) or hoist it out", what, fd.Name.Name)
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure value itself allocates; its body still runs on the
			// hot path, so keep walking it.
			report(n, "closure (func literal)")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal")
					// Don't double-report the inner literal.
					for _, e := range n.X.(*ast.CompositeLit).Elts {
						ast.Inspect(e, walk)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "slice/map composite literal")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(n, "make")
						return true
					case "new":
						report(n, "new")
						return true
					case "append":
						// Growth into a buffer whose make/made capacity was
						// acknowledged is covered by that acknowledgement:
						// the capacity decision is the audit point.
						if len(n.Args) > 0 {
							if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
								if obj := pass.TypesInfo.Uses[id]; obj != nil && acked[obj] {
									return true
								}
							}
						}
						report(n, "append (growth-capable)")
						return true
					}
				}
			}
			// string([]byte) / []byte(string) conversions copy.
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				to := tv.Type.Underlying()
				from := pass.TypesInfo.TypeOf(n.Args[0])
				if from != nil && isByteStringConv(to, from.Underlying()) {
					report(n, "string/[]byte conversion")
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// ackedBuffers collects the variables whose backing allocation was
// explicitly acknowledged: a `x = make(...)` or `x := make(...)` assignment
// carrying //whatsup:alloc. Appends into such buffers are pre-approved — the
// marked make is where the growth budget was decided.
func ackedBuffers(pass *analysis.Pass, ann *annotations, fd *ast.FuncDecl) map[types.Object]bool {
	acked := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		if !ann.has(as.Pos(), "whatsup:alloc") {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			// Only plain local identifiers: acknowledging a field's make must
			// not blanket-approve every append rooted at the receiver.
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Uses[lhs]; obj != nil {
				acked[obj] = true
			} else if obj := pass.TypesInfo.Defs[lhs]; obj != nil {
				acked[obj] = true
			}
		}
		return true
	})
	return acked
}

// isByteStringConv reports whether the conversion between the two underlying
// types copies memory (string <-> []byte in either direction).
func isByteStringConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
