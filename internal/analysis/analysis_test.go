package analysis

import (
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Each fixture seeds real violations (matched by want comments), the
// analyzer's suppression annotation, and legal look-alikes that must stay
// silent.

func TestNonDetermFixture(t *testing.T) { runFixture(t, NonDeterm, "sim") }
func TestMapOrderFixture(t *testing.T)  { runFixture(t, MapOrder, "core") }
func TestHotAllocFixture(t *testing.T)  { runFixture(t, HotAlloc, "hotalloc") }
func TestLeakyGoFixture(t *testing.T)   { runFixture(t, LeakyGo, "live") }
func TestWireSizeFixture(t *testing.T)  { runFixture(t, WireSize, "wiresize") }
func TestNilnessFixture(t *testing.T)   { runFixture(t, Nilness, "nilness") }

// TestScopedAnalyzersSilentElsewhere runs the package-scoped analyzers over
// a package outside their scope: zero diagnostics expected (the fixture has
// no want comments, so any diagnostic fails the harness).
func TestScopedAnalyzersSilentElsewhere(t *testing.T) {
	for _, a := range []*analysis.Analyzer{NonDeterm, MapOrder, LeakyGo} {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a, "gateway") })
	}
}

// TestRegistry pins the whatsup-lint registry: every contract analyzer plus
// the vet passes the suite piggybacks (atomic, copylocks) and the nilness
// stand-in. A missing name means cmd/whatsup-lint silently stopped
// enforcing part of the contract.
func TestRegistry(t *testing.T) {
	want := []string{
		"nondeterm", "maporder", "hotalloc", "leakygo", "wiresize",
		"nilness", "atomic", "copylocks",
	}
	got := make(map[string]bool)
	for _, a := range Analyzers() {
		if got[a.Name] {
			t.Errorf("registry lists %q twice", a.Name)
		}
		got[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("registry is missing analyzer %q", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d analyzers, want %d: %v", len(got), len(want), names())
	}
}

func names() string {
	var ns []string
	for _, a := range Analyzers() {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
