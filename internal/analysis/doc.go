// Package analysis is whatsup-lint: a suite of golang.org/x/tools/go/analysis
// analyzers that statically enforce the engine's determinism contract and
// hot-path allocation budgets, so contract violations are caught at lint time
// instead of hours later by the runtime golden tests.
//
// Analyzers:
//
//   - nondeterm: no wall-clock (time.Now/Since/...) or globally-seeded
//     randomness (top-level math/rand funcs) in the deterministic packages
//     (sim, core, overlay, profile, rps, cluster, metrics, faultnet). Only
//     per-peer / per-link seeded *rand.Rand streams are allowed there.
//   - maporder: no map-iteration order leaking into results — flags
//     `for range m` over a map whose body appends to an outer slice,
//     accumulates floating point into an outer variable (the float-op-order
//     low-bit divergence the PR 9 norm sidecar exists to prevent), or sends
//     on a channel. Escape hatch: `//whatsup:commutative` on the range.
//   - hotalloc: in functions annotated `//whatsup:hotpath`, every
//     statically-visible allocation site (make, new, append growth, composite
//     literals, closures, []byte/string conversions) must carry an explicit
//     `//whatsup:alloc` acknowledgement; unmarked sites are flagged. This is
//     the static guard in front of the runtime 8-allocs/op receive-liked pin.
//   - leakygo: in internal/live, `go` statements must be visibly tracked by a
//     WaitGroup (Add before / deferred Done inside) or a done-channel close;
//     untracked launches are the class of bug the goroutine-leak pins keep
//     catching at runtime.
//   - wiresize: every exported AppendWire method must have a sibling WireSize
//     method on the same receiver type, preserving the exact wire-byte
//     accounting invariant behind the Fig-8b bandwidth figures.
//   - nilness: a deliberately small, AST-based reimplementation of the
//     x/tools nilness check (the SSA-based original is not vendored in
//     GOROOT, and this module builds offline): flags field accesses, derefs,
//     calls and slice indexing on a variable inside the `x == nil` branch
//     that guards it.
//
// Plus the vendored vet passes atomic and copylocks.
//
// Suppression: a finding from analyzer NAME is suppressed by a
// `//whatsup:allow:NAME` comment on the flagged line or the line above
// (maporder additionally honors `//whatsup:commutative`, hotalloc
// `//whatsup:alloc`). Annotations are directive-style comments (no space
// after `//`) so gofmt leaves them alone.
//
// The suite is driven by cmd/whatsup-lint, which runs standalone
// (`whatsup-lint ./...` re-execs itself under `go vet -vettool`) or as a
// unitchecker under an external `go vet -vettool=` invocation.
package analysis
