package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// MapOrder flags `for range` over maps whose body lets Go's randomized
// iteration order leak into results: appending to a slice that outlives the
// loop, accumulating floating point (float addition does not commute in the
// low bits — the divergence class PR 9's norm-accumulator sidecar exists to
// prevent), or sending on a channel. A loop whose body is genuinely
// order-insensitive is annotated `//whatsup:commutative` on the range
// statement.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid map-iteration order leaking into results in deterministic packages " +
		"(append to outer slice, float accumulation, channel send inside `for range m`); " +
		"annotate provably order-insensitive loops with //whatsup:commutative",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPackage(pass) {
		return nil, nil
	}
	ann := collectAnnotations(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if ann.has(rng.Pos(), "whatsup:commutative") || ann.allowed(rng.Pos(), "maporder") {
				return true
			}
			checkMapRangeBody(pass, ann, rng)
			return true
		})
	}
	return nil, nil
}

// checkMapRangeBody reports order-leaking operations in the body of a map
// range statement.
func checkMapRangeBody(pass *analysis.Pass, ann *annotations, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !ann.allowed(n.Pos(), "maporder") {
				pass.Reportf(n.Pos(), "maporder: channel send inside `for range` over a map; receivers observe Go's randomized iteration order")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if obj := rootObject(pass, n.Args[0]); obj != nil && declaredOutside(obj, rng) {
					if !ann.allowed(n.Pos(), "maporder") {
						pass.Reportf(n.Pos(), "maporder: append to %q inside `for range` over a map leaks iteration order into the slice; collect and sort, iterate a sorted key slice, or annotate the range //whatsup:commutative", obj.Name())
					}
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			for _, lhs := range n.Lhs {
				t := pass.TypesInfo.TypeOf(lhs)
				if t == nil {
					continue
				}
				b, ok := t.Underlying().(*types.Basic)
				if !ok || b.Info()&types.IsFloat == 0 {
					continue
				}
				obj := rootObject(pass, lhs)
				if obj == nil || !declaredOutside(obj, rng) {
					continue
				}
				if !ann.allowed(n.Pos(), "maporder") {
					pass.Reportf(n.Pos(), "maporder: floating-point accumulation into %q inside `for range` over a map; float ops do not commute in the low bits, so iteration order changes the result — accumulate over sorted keys or annotate the range //whatsup:commutative", obj.Name())
				}
			}
		}
		return true
	})
}

// rootObject resolves the variable at the base of an lvalue-ish expression:
// x, x.f, x[i], *x all root at x.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement's span — i.e. the variable outlives one iteration.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}
