package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// NonDeterm flags wall-clock reads and globally-seeded randomness inside the
// deterministic packages. The engine's headline guarantee — bit-identical
// collector fingerprints for any Workers×Shards combination — only holds if
// every draw comes from a per-peer or per-link seeded *rand.Rand stream and
// every timestamp from the simulated clock.
var NonDeterm = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "forbid time.Now and global math/rand in deterministic packages " +
		"(sim, core, overlay, profile, rps, cluster, metrics, faultnet); " +
		"only seeded per-peer streams are allowed there",
	Run: runNonDeterm,
}

// wallClockFuncs are the time package functions that read (or wait on) the
// wall clock. time.Unix / time.Date are pure constructors and stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

func runNonDeterm(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPackage(pass) {
		return nil, nil
	}
	ann := collectAnnotations(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).Intn on a seeded stream, or
				// (time.Time).Sub) are exactly the allowed form.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && !ann.allowed(call.Pos(), "nondeterm") {
					pass.Reportf(call.Pos(), "nondeterm: time.%s reads the wall clock in deterministic package %s; use the simulated clock (cycle/now) instead", fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				// Package-level funcs draw from the shared global source:
				// rand.Intn, rand.Perm, rand.Shuffle, rand.Seed, ... The
				// constructors New/NewSource/NewPCG build seeded streams and
				// remain legal.
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					return true
				}
				if !ann.allowed(call.Pos(), "nondeterm") {
					pass.Reportf(call.Pos(), "nondeterm: global rand.%s in deterministic package %s; draw from a seeded per-peer/per-link *rand.Rand stream instead", fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
