package analysis

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
)

// WireSize enforces the exact-byte-accounting invariant from the binary wire
// protocol work: every exported AppendWire method must have a sibling
// WireSize method on the same receiver type, so callers can pre-size buffers
// and the bandwidth figures (Fig 8b) can account for every byte without
// encoding twice.
var WireSize = &analysis.Analyzer{
	Name: "wiresize",
	Doc:  "every exported AppendWire method must have a sibling WireSize method on the same receiver type",
	Run:  runWireSize,
}

func runWireSize(pass *analysis.Pass) (interface{}, error) {
	ann := collectAnnotations(pass)
	appendDecls := make(map[string]*ast.FuncDecl) // receiver type name -> AppendWire decl
	hasWireSize := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			switch fd.Name.Name {
			case "AppendWire":
				if fd.Name.IsExported() {
					appendDecls[recv] = fd
				}
			case "WireSize":
				hasWireSize[recv] = true
			}
		}
	}
	for recv, fd := range appendDecls {
		if hasWireSize[recv] || ann.allowed(fd.Pos(), "wiresize") {
			continue
		}
		pass.Reportf(fd.Pos(), "wiresize: %s has AppendWire but no sibling WireSize method; exact byte accounting (the Fig-8b bandwidth invariant) needs both", recv)
	}
	return nil, nil
}

// receiverTypeName unwraps a method receiver type expression to its named
// type's name: T, *T, and generic T[P] / *T[P] all yield "T".
func receiverTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
