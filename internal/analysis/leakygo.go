package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// LeakyGo flags `go` statements in internal/live that are not visibly
// tracked by a shutdown mechanism. The live runtime's contract — enforced at
// runtime by the goroutine-leak pins around Network.Close and
// Runner.RunContext — is that every goroutine is joined on teardown. A
// launch is considered tracked when the goroutine's body defers a
// (*sync.WaitGroup).Done, closes a channel, or sends on a channel before
// returning; anything else (including `go named(...)`) must be suppressed
// with an explicit `//whatsup:allow:leakygo` and a reason.
var LeakyGo = &analysis.Analyzer{
	Name: "leakygo",
	Doc: "in internal/live, flag goroutine launches not visibly tracked by a " +
		"WaitGroup (deferred Done) or a done-channel close/send",
	Run: runLeakyGo,
}

func runLeakyGo(pass *analysis.Pass) (interface{}, error) {
	if !livePkgRE.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	ann := collectAnnotations(pass)
	// Same-package function declarations, so `go t.writeLoop(...)` can be
	// vetted through its callee's body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if ann.allowed(g.Pos(), "leakygo") {
				return true
			}
			var body *ast.BlockStmt
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				body = lit.Body
			} else if fn := calleeFunc(pass, g.Call); fn != nil {
				if fd, ok := decls[fn]; ok {
					body = fd.Body
				}
			}
			if body == nil {
				pass.Reportf(g.Pos(), "leakygo: goroutine launches a function declared outside this package; lifecycle is not verifiable at the launch site — wrap it in a func literal with a deferred WaitGroup.Done (or //whatsup:allow:leakygo with a reason)")
				return true
			}
			if !goroutineTracked(pass, body) {
				pass.Reportf(g.Pos(), "leakygo: goroutine is not tracked by a WaitGroup or done channel; it can outlive Close/Run teardown (the class of leak the runtime goroutine pins catch) — add wg.Add(1) before and defer wg.Done() inside, or //whatsup:allow:leakygo with a reason")
			}
			return true
		})
	}
	return nil, nil
}

// goroutineTracked reports whether the goroutine body visibly participates
// in a shutdown protocol: a deferred WaitGroup.Done, a close(ch), or a
// channel send.
func goroutineTracked(pass *analysis.Pass, body *ast.BlockStmt) bool {
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isWaitGroupDone(pass, n.Call) {
				tracked = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					tracked = true
					return false
				}
			}
		case *ast.SendStmt:
			tracked = true
			return false
		}
		return true
	})
	return tracked
}

// isWaitGroupDone reports whether the call is (*sync.WaitGroup).Done.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}
