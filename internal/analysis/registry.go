package analysis

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
)

// Analyzers returns the full whatsup-lint registry: the project-specific
// contract analyzers plus the vendored vet passes that guard the same
// failure classes (copylocks: the controller-owned serving path copies no
// mutexes; atomic: the fleet clock and cycle counters stay correct).
//
// nilness is the local AST-based reimplementation (see its doc): the
// SSA-based x/tools original is not part of GOROOT's vendored vet suite and
// this module builds without network access.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		// whatsup contract analyzers.
		NonDeterm,
		MapOrder,
		HotAlloc,
		LeakyGo,
		WireSize,
		Nilness,
		// Vendored vet passes.
		atomic.Analyzer,
		copylock.Analyzer,
	}
}
