package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// deterministicPkgRE matches the import paths of the packages covered by the
// determinism contract: every byte of their output must be a pure function
// of the seed and the config, for any Workers×Shards combination.
var deterministicPkgRE = regexp.MustCompile(`(^|/)(sim|core|overlay|profile|rps|cluster|metrics|faultnet)$`)

// deterministicPackage reports whether the package under analysis is bound
// by the determinism contract.
func deterministicPackage(pass *analysis.Pass) bool {
	return deterministicPkgRE.MatchString(pass.Pkg.Path())
}

// livePkgRE matches the live-runtime package, where leakygo applies.
var livePkgRE = regexp.MustCompile(`(^|/)live$`)

// annotations indexes every `//whatsup:...` directive comment in a package
// by file and line, so analyzers can answer "is this finding suppressed?"
// in O(1) per report.
type annotations struct {
	fset  *token.FileSet
	byPos map[string]map[int][]string // filename -> line -> directives
}

// directiveRE extracts whatsup directives from a comment. Directives are
// written comment-style like `//whatsup:allow:nondeterm reason...` — no
// space after the slashes, so gofmt treats them as pragmas.
var directiveRE = regexp.MustCompile(`whatsup:[a-z:]+`)

// collectAnnotations scans all comments of the pass's files.
func collectAnnotations(pass *analysis.Pass) *annotations {
	a := &annotations{fset: pass.Fset, byPos: make(map[string]map[int][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				matches := directiveRE.FindAllString(c.Text, -1)
				if len(matches) == 0 {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := a.byPos[p.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					a.byPos[p.Filename] = lines
				}
				lines[p.Line] = append(lines[p.Line], matches...)
			}
		}
	}
	return a
}

// has reports whether the given directive is attached to pos: on the same
// line (trailing comment) or on the line immediately above (own-line
// comment).
func (a *annotations) has(pos token.Pos, directive string) bool {
	p := a.fset.Position(pos)
	lines := a.byPos[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d == directive || strings.HasPrefix(d, directive+":") {
				return true
			}
		}
	}
	return false
}

// allowed reports whether a finding from the named analyzer is explicitly
// suppressed at pos via `//whatsup:allow:NAME`.
func (a *annotations) allowed(pos token.Pos, analyzer string) bool {
	return a.has(pos, "whatsup:allow:"+analyzer)
}

// funcDocHas reports whether a function declaration's doc comment carries
// the given whatsup directive (e.g. `//whatsup:hotpath`).
func funcDocHas(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		for _, d := range directiveRE.FindAllString(c.Text, -1) {
			if d == directive {
				return true
			}
		}
	}
	return false
}
