package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Nilness is a deliberately small, AST-based stand-in for the x/tools
// SSA-based nilness analyzer (which is not vendored in GOROOT, and this
// module builds fully offline). It catches the unambiguous subset: inside
// the then-branch of `if x == nil`, before any reassignment of x, a field
// access, dereference, slice index, or call of x must panic. Method calls
// are deliberately not flagged — nil-receiver methods are a supported idiom
// in this codebase (e.g. (*Profile).MergeAverage's nil guard).
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: "flag uses of a variable inside the `x == nil` branch that guards it " +
		"(field access, deref, slice index, call of a nil func)",
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) (interface{}, error) {
	ann := collectAnnotations(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id := nilComparedIdent(pass, ifs.Cond)
			if id == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			checkNilUses(pass, ann, ifs.Body, obj)
			return true
		})
	}
	return nil, nil
}

// nilComparedIdent returns the identifier x when cond is exactly `x == nil`
// or `nil == x`.
func nilComparedIdent(pass *analysis.Pass, cond ast.Expr) *ast.Ident {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
		return isNilConst
	}
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && isNil(be.Y) {
		return id
	}
	if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok && isNil(be.X) {
		return id
	}
	return nil
}

// checkNilUses walks the guarded block in statement order and reports
// panicking uses of obj until it is reassigned.
func checkNilUses(pass *analysis.Pass, ann *annotations, body *ast.BlockStmt, obj types.Object) {
	reassigned := false
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	report := func(n ast.Node, what string) {
		if !ann.allowed(n.Pos(), "nilness") {
			pass.Reportf(n.Pos(), "nilness: %s of %q inside its `== nil` guard must panic", what, obj.Name())
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isObj(lhs) {
					reassigned = true
				}
			}
			// The RHS is evaluated before the assignment takes effect, but
			// flagging `x = x.f` under an x==nil guard is still correct.
		case *ast.SelectorExpr:
			if !isObj(n.X) {
				return true
			}
			// Field access on a nil pointer panics; a method value/call may
			// be legal on a nil receiver, so only flag struct-pointer fields.
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
					report(n, "field access")
				}
			}
			return false
		case *ast.StarExpr:
			if isObj(n.X) {
				report(n, "dereference")
				return false
			}
		case *ast.IndexExpr:
			if isObj(n.X) {
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					report(n, "index")
					return false
				}
			}
		case *ast.CallExpr:
			if isObj(n.Fun) {
				if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
					report(n, "call")
				}
			}
		}
		return true
	})
}
