// Package wiresize is a wiresize fixture: AppendWire without a sibling
// WireSize breaks the exact-byte-accounting invariant.
package wiresize

type Unbalanced struct{ ID uint64 }

func (u Unbalanced) AppendWire(buf []byte) []byte { // want `wiresize: Unbalanced has AppendWire but no sibling WireSize`
	return append(buf, byte(u.ID))
}

type Balanced struct{ ID uint64 }

func (b *Balanced) AppendWire(buf []byte) []byte {
	return append(buf, byte(b.ID))
}

func (b *Balanced) WireSize() int { return 1 }

// Suppressed documents a conscious exception.
type Suppressed struct{}

//whatsup:allow:wiresize streaming encoder, size is unknowable upfront
func (s Suppressed) AppendWire(buf []byte) []byte { return buf }
