// Package sim is a nondeterm fixture: its import path ends in /sim, so the
// determinism contract applies.
package sim

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `nondeterm: time\.Now reads the wall clock`
	return t.UnixNano()
}

func wallClockSince() time.Duration {
	t := time.Unix(0, 0) // pure constructor: legal
	return time.Since(t) // want `nondeterm: time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `nondeterm: global rand\.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `nondeterm: global rand\.Shuffle`
}

// seededStream is the allowed form: a per-peer stream with an explicit seed.
func seededStream(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // method on a seeded stream: legal
}

// suppressed shows the escape hatch: an explicit allow annotation.
func suppressed() int64 {
	//whatsup:allow:nondeterm boot-time only, never inside a cycle
	return time.Now().UnixNano()
}
