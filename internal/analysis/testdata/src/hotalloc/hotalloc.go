// Package hotalloc is a hotalloc fixture. The analyzer applies to any
// package: only functions carrying the //whatsup:hotpath directive are
// audited.
package hotalloc

type item struct {
	id    int
	title string
}

// cold is not annotated: allocations are free to come and go.
func cold(n int) []item {
	out := make([]item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, item{id: i})
	}
	return out
}

//whatsup:hotpath
func hotUnacknowledged(n int) []item {
	out := make([]item, 0, n) // want `hotalloc: make in hot-path function hotUnacknowledged`
	for i := 0; i < n; i++ {
		out = append(out, item{id: i}) // want `hotalloc: append \(growth-capable\) in hot-path function hotUnacknowledged`
	}
	p := new(item) // want `hotalloc: new in hot-path function hotUnacknowledged`
	_ = p
	q := &item{id: 1} // want `hotalloc: &composite literal in hot-path function hotUnacknowledged`
	_ = q
	f := func() int { return n } // want `hotalloc: closure \(func literal\) in hot-path function hotUnacknowledged`
	_ = f
	b := []byte("x")                           // want `hotalloc: string/\[\]byte conversion in hot-path function hotUnacknowledged`
	return append(out, item{title: string(b)}) // want `hotalloc: append \(growth-capable\)` `hotalloc: string/\[\]byte conversion`
}

// hotAcknowledged carries an explicit budget: the make is acknowledged, and
// appends into the acknowledged buffer are covered by that acknowledgement.
//
//whatsup:hotpath
func hotAcknowledged(n int) []item {
	out := make([]item, 0, n) //whatsup:alloc one result slice per call, exact capacity
	for i := 0; i < n; i++ {
		out = append(out, item{id: i}) // covered by the acknowledged make
	}
	return out
}

// hotSuppressed uses the per-site escape hatch for a site the audit decided
// is fine (a non-escaping closure the compiler keeps on the stack).
//
//whatsup:hotpath
func hotSuppressed(xs []int) int {
	total := 0
	//whatsup:allow:hotalloc non-escaping closure
	walk := func(x int) { total += x }
	for _, x := range xs {
		walk(x)
	}
	return total
}
