// Package nilness is a fixture for the AST-based nilness lite analyzer.
package nilness

type node struct {
	next  *node
	value int
}

func fieldAccess(n *node) int {
	if n == nil {
		return n.value // want `nilness: field access of "n" inside its .== nil. guard`
	}
	return n.value
}

func deref(p *int) int {
	if nil == p {
		return *p // want `nilness: dereference of "p" inside its .== nil. guard`
	}
	return *p
}

func sliceIndex(xs []int) int {
	if xs == nil {
		return xs[0] // want `nilness: index of "xs" inside its .== nil. guard`
	}
	return xs[0]
}

func nilCall(f func() int) int {
	if f == nil {
		return f() // want `nilness: call of "f" inside its .== nil. guard`
	}
	return f()
}

// mapIndex is legal: reading a nil map yields the zero value.
func mapIndex(m map[int]int) int {
	if m == nil {
		return m[0]
	}
	return m[0]
}

// methodCall is legal here: nil-receiver methods are a supported idiom.
func (n *node) Value() int {
	if n == nil {
		return 0
	}
	return n.value
}

func methodOnNil(n *node) int {
	if n == nil {
		return n.Value()
	}
	return n.value
}

// reassigned is legal: x is replaced before the use.
func reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.value
	}
	return n.value
}

func suppressed(n *node) int {
	if n == nil {
		//whatsup:allow:nilness documenting a deliberate panic
		return n.value
	}
	return n.value
}
