// Package live is a leakygo fixture: its import path ends in /live, the
// live-runtime package where every goroutine must be joined on teardown.
package live

import (
	"fmt"
	"sync"
)

type runner struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (r *runner) untracked() {
	go func() { // want `leakygo: goroutine is not tracked`
		fmt.Println("orphan")
	}()
}

func (r *runner) tracked() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fmt.Println("joined")
	}()
}

func (r *runner) trackedByClose() {
	go func() {
		defer close(r.done)
		fmt.Println("signals teardown")
	}()
}

func (r *runner) trackedBySend(errs chan error) {
	go func() {
		errs <- nil
	}()
}

// loop defers Done itself, so launching it as a named function is fine: the
// analyzer follows same-package callees.
func (r *runner) loop() {
	defer r.wg.Done()
}

func (r *runner) namedTracked() {
	r.wg.Add(1)
	go r.loop()
}

func orphanWork() {}

func (r *runner) namedUntracked() {
	go orphanWork() // want `leakygo: goroutine is not tracked`
}

func (r *runner) external() {
	go fmt.Println("external") // want `leakygo: goroutine launches a function declared outside this package`
}

func (r *runner) suppressed() {
	//whatsup:allow:leakygo fire-and-forget metric flush, bounded by the process
	go orphanWork()
}
