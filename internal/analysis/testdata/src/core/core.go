// Package core is a maporder fixture: its import path ends in /core, so the
// determinism contract applies.
package core

func appendLeak(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `maporder: append to "out"`
	}
	return out
}

func floatLeak(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `maporder: floating-point accumulation into "sum"`
	}
	return sum
}

func sendLeak(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `maporder: channel send inside`
	}
}

// intAccumulate is exact and commutative: integer addition cannot observe
// iteration order.
func intAccumulate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// innerSlice appends only to a slice scoped to one iteration: no leak.
func innerSlice(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// sortedAfter is the canonical acknowledged pattern: keys collected in map
// order, then sorted with a total order before use.
func sortedAfter(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	//whatsup:commutative keys collected then sorted by the caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// fieldLeak shows the analyzer following selector roots: the accumulator
// lives on a struct.
type acc struct {
	total float64
}

func (a *acc) fold(m map[int]float64) {
	for _, v := range m {
		a.total += v // want `maporder: floating-point accumulation into "a"`
	}
}
