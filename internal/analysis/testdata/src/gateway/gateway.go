// Package gateway is a negative fixture: its import path matches neither the
// deterministic packages nor internal/live, so nondeterm, maporder and
// leakygo must all stay silent — wall-clock reads, map-order appends and
// untracked goroutines are that package's own business.
package gateway

import "time"

func Poll(feeds map[string]string) []string {
	var out []string
	for _, f := range feeds {
		out = append(out, f)
	}
	go func() { time.Sleep(time.Millisecond) }()
	_ = time.Now()
	return out
}
