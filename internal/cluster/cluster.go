// Package cluster implements the upper gossip layer of WUP (paper
// Section II): a clustering protocol in the style of Voulgaris & van Steen's
// Vicinity that keeps, for each node, the WUPvs neighbours whose profiles
// are most similar to its own according to a pluggable metric (the WUP
// metric in WhatsUp, cosine in the WhatsUp-Cos and CF-Cos baselines).
//
// Periodically a node selects the view entry with the oldest timestamp and
// sends it its profile together with its *entire* view (unlike the RPS,
// which sends half). The receiver keeps, from the union of its own and the
// received view, the entries whose profiles are closest to its own. The
// layer additionally pulls candidates from the RPS view each cycle, which is
// what lets interests discovered by random sampling enter the social
// network.
//
// Protocol state is not goroutine-safe; engines serialize access per node.
package cluster

import (
	"math/rand"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

// Protocol is the per-node clustering state machine.
type Protocol struct {
	self    news.NodeID
	addr    string
	metric  profile.Metric
	view    *overlay.View
	rng     *rand.Rand
	grave   *overlay.Graveyard   // optional departure-notice filter (may be nil)
	targets []overlay.Descriptor // scratch reused by RandomTargets
}

// SetGraveyard attaches the node's departure-tombstone set: merges then skip
// descriptors of gracefully departed peers until their tombstones expire.
func (p *Protocol) SetGraveyard(g *overlay.Graveyard) { p.grave = g }

// New returns a clustering instance for node self with the given view size
// (WUPvs, set to 2·fLIKE in the paper) and similarity metric.
func New(self news.NodeID, addr string, viewSize int, metric profile.Metric, rng *rand.Rand) *Protocol {
	return &Protocol{
		self:   self,
		addr:   addr,
		metric: metric,
		view:   overlay.NewView(viewSize),
		rng:    rng,
	}
}

// Self returns the node this protocol instance belongs to.
func (p *Protocol) Self() news.NodeID { return p.self }

// Metric returns the similarity metric in use.
func (p *Protocol) Metric() profile.Metric { return p.metric }

// View exposes the underlying view; descriptors are immutable.
func (p *Protocol) View() *overlay.View { return p.view }

// Seed bootstraps the view (initial random graph, or the inherited view of a
// cold-starting node, Section II-D). Entries are kept by similarity to own.
func (p *Protocol) Seed(descs []overlay.Descriptor, own *profile.Profile) {
	p.view.InsertAllLive(descs, p.self, p.grave)
	p.view.TrimBySimilarity(p.rng, p.metric, own)
}

// Descriptor builds the node's own fresh descriptor with a profile snapshot.
func (p *Protocol) Descriptor(now int64, prof *profile.Profile) overlay.Descriptor {
	return overlay.Descriptor{Node: p.self, Addr: p.addr, Stamp: now, Profile: prof.Clone()}
}

// SelectPeer returns the view entry with the oldest timestamp.
func (p *Protocol) SelectPeer() (overlay.Descriptor, bool) {
	return p.view.Oldest()
}

// MakePush assembles the request payload: the node's fresh descriptor plus
// its entire view (Section II: "its entire view for WUP").
func (p *Protocol) MakePush(self overlay.Descriptor) []overlay.Descriptor {
	push := make([]overlay.Descriptor, 0, p.view.Len()+1)
	push = append(push, self)
	return p.view.AppendEntries(push)
}

// AcceptPush handles an exchange request at the responder: it builds the
// symmetric reply (own descriptor + entire view, taken before merging) and
// merges the received entries, keeping the most similar ones.
func (p *Protocol) AcceptPush(push []overlay.Descriptor, self overlay.Descriptor, own *profile.Profile) (reply []overlay.Descriptor) {
	reply = p.MakePush(self)
	p.Merge(push, own)
	return reply
}

// AcceptReply merges the responder's entries at the initiator.
func (p *Protocol) AcceptReply(reply []overlay.Descriptor, own *profile.Profile) {
	p.Merge(reply, own)
}

// Merge folds candidate descriptors into the view, keeping the capacity
// entries most similar to the node's own profile. Used for gossip pushes
// and replies.
func (p *Protocol) Merge(candidates []overlay.Descriptor, own *profile.Profile) {
	p.view.InsertAllLive(candidates, p.self, p.grave)
	p.view.TrimBySimilarity(p.rng, p.metric, own)
}

// MergeFrom folds every entry of another view into this one — the per-cycle
// injection of RPS candidates — without copying the source entries first.
func (p *Protocol) MergeFrom(src *overlay.View, own *profile.Profile) {
	p.view.InsertAllFromLive(src, p.self, p.grave)
	p.view.TrimBySimilarity(p.rng, p.metric, own)
}

// RandomTargets returns up to fanout distinct random members of the view —
// BEEP's amplification step for liked items picks targets randomly from the
// WUP view rather than the closest ones, to avoid over-clustering
// (Algorithm 2 line 31). The returned slice is scratch owned by the
// protocol: it is only valid until the next RandomTargets call.
func (p *Protocol) RandomTargets(fanout int) []overlay.Descriptor {
	if fanout > p.view.Len() {
		fanout = p.view.Len()
	}
	p.targets = p.view.AppendRandomSample(p.targets[:0], p.rng, fanout)
	return p.targets
}

// AverageSimilarity reports the mean similarity between the given profile
// and the current view members, the convergence measure of Figure 7.
func (p *Protocol) AverageSimilarity(own *profile.Profile) float64 {
	if p.view.Len() == 0 {
		return 0
	}
	var sum float64
	p.view.ForEach(func(d overlay.Descriptor) {
		sum += p.metric.Similarity(own, d.Profile)
	})
	return sum / float64(p.view.Len())
}

// EvictOlderThan drops view entries whose descriptors are older than
// minStamp. The clustering view needs this even more than the RPS: its
// similarity-based trim would otherwise keep a well-matching ghost forever,
// because nothing in the merge rule ever demotes a high-similarity entry of
// a node that no longer exists. Reports how many entries were evicted.
func (p *Protocol) EvictOlderThan(minStamp int64) int {
	return p.view.EvictOlderThan(minStamp)
}

// Crash clears the view for failure-injection tests.
func (p *Protocol) Crash() {
	p.view = overlay.NewView(p.view.Capacity())
}
