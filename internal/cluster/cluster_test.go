package cluster

import (
	"math/rand"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

func descWithLikes(node news.NodeID, stamp int64, liked ...news.ID) overlay.Descriptor {
	p := profile.New()
	for _, id := range liked {
		p.Set(id, stamp, 1)
	}
	return overlay.Descriptor{Node: node, Stamp: stamp, Profile: p}
}

func ownProfile(liked ...news.ID) *profile.Profile {
	p := profile.New()
	for _, id := range liked {
		p.Set(id, 0, 1)
	}
	return p
}

func TestSeedKeepsMostSimilar(t *testing.T) {
	p := New(0, "", 2, profile.WUP{}, rand.New(rand.NewSource(1)))
	own := ownProfile(1, 2)
	p.Seed([]overlay.Descriptor{
		descWithLikes(1, 0, 1, 2),
		descWithLikes(2, 0, 1),
		descWithLikes(3, 0, 42),
	}, own)
	if p.View().Len() != 2 {
		t.Fatalf("len=%d want 2", p.View().Len())
	}
	if !p.View().Contains(1) || !p.View().Contains(2) {
		t.Fatalf("wrong survivors: %v", p.View().Nodes())
	}
}

func TestMakePushSendsEntireView(t *testing.T) {
	p := New(0, "", 4, profile.WUP{}, rand.New(rand.NewSource(2)))
	own := ownProfile(1)
	p.Seed([]overlay.Descriptor{
		descWithLikes(1, 0, 1), descWithLikes(2, 0, 1), descWithLikes(3, 0, 1),
	}, own)
	push := p.MakePush(p.Descriptor(9, own))
	if len(push) != 1+3 {
		t.Fatalf("WUP push must carry the entire view: len=%d want 4", len(push))
	}
	if push[0].Node != 0 {
		t.Fatal("push must start with own descriptor")
	}
}

func TestExchangeImprovesBothSides(t *testing.T) {
	// a and b share tastes but only know dissimilar nodes; after one
	// exchange each must hold the other.
	a := New(0, "", 2, profile.WUP{}, rand.New(rand.NewSource(3)))
	b := New(1, "", 3, profile.WUP{}, rand.New(rand.NewSource(4)))
	ownA := ownProfile(1, 2, 3)
	ownB := ownProfile(1, 2, 3)
	a.Seed([]overlay.Descriptor{descWithLikes(1, 1, 1, 2, 3), descWithLikes(5, 1, 99)}, ownA)
	// b also knows node 7, which shares a's tastes: after the exchange a can
	// fill its 2-slot view with {1, 7} and evict the dissimilar node 5.
	b.Seed([]overlay.Descriptor{
		descWithLikes(0, 1, 1, 2, 3),
		descWithLikes(7, 1, 1, 2, 3),
		descWithLikes(6, 1, 98),
	}, ownB)

	push := a.MakePush(a.Descriptor(10, ownA))
	reply := b.AcceptPush(push, b.Descriptor(10, ownB), ownB)
	a.AcceptReply(reply, ownA)

	if !b.View().Contains(0) {
		t.Fatal("responder must adopt similar initiator")
	}
	if !a.View().Contains(1) {
		t.Fatal("initiator must adopt similar responder")
	}
	if a.View().Contains(5) {
		t.Fatal("dissimilar node must have been evicted from a's view")
	}
}

func TestRandomTargetsAreFromView(t *testing.T) {
	p := New(0, "", 6, profile.WUP{}, rand.New(rand.NewSource(5)))
	own := ownProfile(1)
	var seed []overlay.Descriptor
	for i := news.NodeID(1); i <= 6; i++ {
		seed = append(seed, descWithLikes(i, 0, 1))
	}
	p.Seed(seed, own)
	targets := p.RandomTargets(3)
	if len(targets) != 3 {
		t.Fatalf("targets=%d want 3", len(targets))
	}
	for _, d := range targets {
		if !p.View().Contains(d.Node) {
			t.Fatalf("target %d not in view", d.Node)
		}
	}
	if got := p.RandomTargets(100); len(got) != 6 {
		t.Fatalf("oversized fanout must return whole view, got %d", len(got))
	}
}

func TestAverageSimilarity(t *testing.T) {
	p := New(0, "", 4, profile.WUP{}, rand.New(rand.NewSource(6)))
	own := ownProfile(1, 2)
	if p.AverageSimilarity(own) != 0 {
		t.Fatal("empty view must have average similarity 0")
	}
	p.Seed([]overlay.Descriptor{descWithLikes(1, 0, 1, 2), descWithLikes(2, 0, 1, 2)}, own)
	if got := p.AverageSimilarity(own); got < 0.99 {
		t.Fatalf("identical neighbours must give ~1, got %v", got)
	}
}

func TestClusteringConvergence(t *testing.T) {
	// 30 nodes in 3 interest communities of 10, seeded with a random graph.
	// After gossiping (with RPS-like candidate injection), most of each WUP
	// view must point inside the node's own community.
	const n, communities, vs, cycles = 30, 3, 4, 25
	rng := rand.New(rand.NewSource(7))
	owns := make([]*profile.Profile, n)
	nodes := make([]*Protocol, n)
	for i := 0; i < n; i++ {
		community := i % communities
		owns[i] = ownProfile() // fill below
		for item := 0; item < 6; item++ {
			owns[i].Set(news.ID(community*100+item), 0, 1)
		}
		nodes[i] = New(news.NodeID(i), "", vs, profile.WUP{}, rand.New(rand.NewSource(int64(10+i))))
	}
	descOf := func(i int, now int64) overlay.Descriptor {
		return nodes[i].Descriptor(now, owns[i])
	}
	for i := 0; i < n; i++ {
		var seed []overlay.Descriptor
		for _, j := range rng.Perm(n)[:vs+2] {
			if j != i {
				seed = append(seed, descOf(j, 0))
			}
		}
		nodes[i].Seed(seed, owns[i])
	}
	for c := 1; c <= cycles; c++ {
		for i := range nodes {
			// Random candidate injection stands in for the RPS feed.
			j := rng.Intn(n)
			if j != i {
				nodes[i].Merge([]overlay.Descriptor{descOf(j, int64(c))}, owns[i])
			}
			peer, ok := nodes[i].SelectPeer()
			if !ok {
				continue
			}
			push := nodes[i].MakePush(descOf(i, int64(c)))
			responder := nodes[peer.Node]
			reply := responder.AcceptPush(push, descOf(int(peer.Node), int64(c)), owns[peer.Node])
			nodes[i].AcceptReply(reply, owns[i])
		}
	}
	inCommunity, total := 0, 0
	for i, nd := range nodes {
		for _, d := range nd.View().Entries() {
			total++
			if int(d.Node)%communities == i%communities {
				inCommunity++
			}
		}
	}
	if frac := float64(inCommunity) / float64(total); frac < 0.9 {
		t.Fatalf("clustering did not converge: only %.2f of view links in-community", frac)
	}
}

// AcceptReply is exercised via the exchange tests; make sure it exists with
// the documented signature.
func TestAcceptReplySignature(t *testing.T) {
	p := New(0, "", 2, profile.Cosine{}, rand.New(rand.NewSource(8)))
	own := ownProfile(1)
	p.AcceptReply([]overlay.Descriptor{descWithLikes(1, 0, 1)}, own)
	if !p.View().Contains(1) {
		t.Fatal("AcceptReply must merge candidates")
	}
}
