package graph

import (
	"math/rand"
	"testing"
)

func TestSCCSingleCycle(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	comps := g.SCC()
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("cycle must be one SCC, got %v", comps)
	}
	if g.LargestSCCFraction() != 1 {
		t.Fatalf("LSCC fraction=%v want 1", g.LargestSCCFraction())
	}
}

func TestSCCChain(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	comps := g.SCC()
	if len(comps) != 3 {
		t.Fatalf("chain must be 3 singleton SCCs, got %v", comps)
	}
}

func TestSCCTwoCyclesBridged(t *testing.T) {
	g := NewDirected(6)
	// cycle {0,1,2}, cycle {3,4,5}, one-way bridge 2->3.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(2, 3)
	comps := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("want 2 SCCs, got %d: %v", len(comps), comps)
	}
	if g.LargestSCCFraction() != 0.5 {
		t.Fatalf("LSCC fraction=%v want 0.5", g.LargestSCCFraction())
	}
}

func TestSCCSelfLoopAndDuplicatesIgnored(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(-1, 1)
	g.AddEdge(0, 5)
	if g.Edges() != 1 {
		t.Fatalf("edges=%d want 1", g.Edges())
	}
}

func TestSCCLargeRandomAgreesWithReachability(t *testing.T) {
	// Property: u,v in the same SCC iff v reachable from u and u from v.
	rng := rand.New(rand.NewSource(1))
	const n = 60
	g := NewDirected(n)
	for i := 0; i < 150; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = make([]bool, n)
		stack := []int{u}
		reach[u][u] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Out(x) {
				if !reach[u][w] {
					reach[u][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	comp := make([]int, n)
	for ci, c := range g.SCC() {
		for _, v := range c {
			comp[v] = ci
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			same := comp[u] == comp[v]
			mutual := reach[u][v] && reach[v][u]
			if same != mutual {
				t.Fatalf("SCC disagreement at (%d,%d): same=%v mutual=%v", u, v, same, mutual)
			}
		}
	}
}

func TestWeakComponents(t *testing.T) {
	g := NewDirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // weakly joins {0,1,2}
	g.AddEdge(3, 4)
	if got := g.WeakComponents(); got != 3 { // {0,1,2} {3,4} {5}
		t.Fatalf("weak components=%d want 3", got)
	}
}

func TestClusteringCoefficientTriangleAndStar(t *testing.T) {
	tri := NewDirected(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if cc := tri.ClusteringCoefficient(); cc != 1 {
		t.Fatalf("triangle cc=%v want 1", cc)
	}
	star := NewDirected(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if cc := star.ClusteringCoefficient(); cc != 0 {
		t.Fatalf("star cc=%v want 0", cc)
	}
}

func TestClusteringCoefficientEmpty(t *testing.T) {
	if cc := NewDirected(0).ClusteringCoefficient(); cc != 0 {
		t.Fatalf("empty graph cc=%v", cc)
	}
	if cc := NewDirected(3).ClusteringCoefficient(); cc != 0 {
		t.Fatalf("edgeless graph cc=%v", cc)
	}
}

func TestCommunitiesTwoCliques(t *testing.T) {
	g := NewUndirected(8)
	clique := func(ids ...int) {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				g.AddEdge(ids[i], ids[j])
			}
		}
	}
	clique(0, 1, 2, 3)
	clique(4, 5, 6, 7)
	g.AddEdge(3, 4) // single bridge
	comms := g.Communities()
	if len(comms) != 2 {
		t.Fatalf("want 2 communities, got %d: %v", len(comms), comms)
	}
	if len(comms[0]) != 4 || len(comms[1]) != 4 {
		t.Fatalf("wrong community sizes: %v", comms)
	}
}

func TestCommunitiesPlantedPartition(t *testing.T) {
	// 3 groups of 20: dense inside (p=0.5), sparse across (p=0.02).
	rng := rand.New(rand.NewSource(2))
	const groups, size = 3, 20
	n := groups * size
	g := NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := 0.02
			if u/size == v/size {
				p = 0.5
			}
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	comms := g.Communities()
	if len(comms) < 2 || len(comms) > 6 {
		t.Fatalf("planted partition recovered %d communities", len(comms))
	}
	// The largest community must be dominated by one planted group.
	counts := map[int]int{}
	for _, v := range comms[0] {
		counts[v/size]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if float64(best)/float64(len(comms[0])) < 0.8 {
		t.Fatalf("largest community mixes groups: %v", counts)
	}
	// Modularity of the detected partition must beat the trivial one.
	assign := make([]int, n)
	for ci, c := range comms {
		for _, v := range c {
			assign[v] = ci
		}
	}
	if q := g.Modularity(assign); q < 0.3 {
		t.Fatalf("modularity too low: %v", q)
	}
}

func TestCommunitiesEdgeCases(t *testing.T) {
	if got := NewUndirected(0).Communities(); got != nil {
		t.Fatalf("empty graph: %v", got)
	}
	g := NewUndirected(3) // no edges: singletons
	comms := g.Communities()
	if len(comms) != 3 {
		t.Fatalf("edgeless graph must yield singletons, got %v", comms)
	}
}

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(1, 1) // self loop
	if g.M() != 1 {
		t.Fatalf("M=%d want 1", g.M())
	}
	if g.Degree(1) != 1 {
		t.Fatalf("degree=%d want 1", g.Degree(1))
	}
	if n := g.Neighbors(1); len(n) != 1 || n[0] != 0 {
		t.Fatalf("neighbors=%v", n)
	}
}

func TestModularityPerfectSplitBeatsMerged(t *testing.T) {
	g := NewUndirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	split := []int{0, 0, 0, 1, 1, 1}
	merged := []int{0, 0, 0, 0, 0, 0}
	if g.Modularity(split) <= g.Modularity(merged) {
		t.Fatalf("split=%v merged=%v", g.Modularity(split), g.Modularity(merged))
	}
}
