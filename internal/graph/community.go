package graph

import "sort"

// Undirected is a simple undirected graph used for community detection on
// collaboration networks (the synthetic Arxiv-style workload, Section IV-A).
type Undirected struct {
	adj []map[int]struct{}
	m   int // number of edges
}

// NewUndirected returns an empty undirected graph with n nodes.
func NewUndirected(n int) *Undirected {
	g := &Undirected{adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// N returns the number of nodes.
func (g *Undirected) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Undirected) M() int { return g.m }

// AddEdge inserts the undirected edge {u,v}; self-loops and duplicates are
// ignored.
func (g *Undirected) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return
	}
	if _, dup := g.adj[u][v]; dup {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
}

// Degree returns the degree of node u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbour list of u.
func (g *Undirected) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Communities detects communities with the greedy modularity algorithm of
// Newman ("Fast algorithm for detecting community structure in networks",
// Phys. Rev. E 2004), the algorithm the paper applies to the Arxiv
// collaboration graph. Starting from singleton communities it repeatedly
// merges the pair of connected communities with the largest modularity gain
// ΔQ = 2(e_ij − a_i·a_j) until no merge improves modularity. It returns the
// communities as sorted node-id slices, largest first.
func (g *Undirected) Communities() [][]int {
	n := len(g.adj)
	if n == 0 {
		return nil
	}
	if g.m == 0 {
		out := make([][]int, n)
		for i := range out {
			out[i] = []int{i}
		}
		return out
	}

	// e[i][j]: fraction of edge ends connecting communities i and j.
	// a[i]: fraction of edge ends attached to community i.
	m2 := float64(2 * g.m)
	comm := make([]int, n) // node -> community label
	for i := range comm {
		comm[i] = i
	}
	e := make([]map[int]float64, n)
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		e[i] = make(map[int]float64)
		for j := range g.adj[i] {
			e[i][j] += 1 / m2
		}
		a[i] = float64(len(g.adj[i])) / m2
	}
	alive := make([]bool, n)
	members := make([][]int, n)
	for i := 0; i < n; i++ {
		alive[i] = true
		members[i] = []int{i}
	}

	for {
		// Find the best merge among connected community pairs.
		bestI, bestJ, bestDQ := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j, eij := range e[i] {
				if j <= i || !alive[j] {
					continue
				}
				dq := 2 * (eij - a[i]*a[j])
				if dq > bestDQ {
					bestI, bestJ, bestDQ = i, j, dq
				}
			}
		}
		if bestI < 0 {
			break
		}
		// Merge bestJ into bestI.
		for k, ejk := range e[bestJ] {
			if k == bestI || k == bestJ {
				continue
			}
			e[bestI][k] += ejk
			e[k][bestI] += ejk
			delete(e[k], bestJ)
		}
		// Internal edges of the merged community.
		internal := e[bestI][bestJ]
		delete(e[bestI], bestJ)
		e[bestI][bestI] += e[bestJ][bestJ] + 2*internal
		a[bestI] += a[bestJ]
		alive[bestJ] = false
		e[bestJ] = nil
		members[bestI] = append(members[bestI], members[bestJ]...)
		members[bestJ] = nil
		for _, node := range members[bestI] {
			comm[node] = bestI
		}
	}

	var out [][]int
	for i := 0; i < n; i++ {
		if alive[i] {
			c := append([]int(nil), members[i]...)
			sort.Ints(c)
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// Modularity computes Newman's modularity Q of a partition, provided as a
// node→community assignment. Used to sanity-check detected communities.
func (g *Undirected) Modularity(assign []int) float64 {
	if g.m == 0 {
		return 0
	}
	m2 := float64(2 * g.m)
	inFrac := make(map[int]float64)
	degFrac := make(map[int]float64)
	for u := range g.adj {
		degFrac[assign[u]] += float64(len(g.adj[u])) / m2
		for v := range g.adj[u] {
			if assign[u] == assign[v] {
				inFrac[assign[u]] += 1 / m2
			}
		}
	}
	var q float64
	for c, in := range inFrac {
		q += in - degFrac[c]*degFrac[c]
	}
	for c, d := range degFrac {
		if _, ok := inFrac[c]; !ok {
			q -= d * d
		}
	}
	return q
}
