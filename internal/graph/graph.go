// Package graph provides the graph analytics used by the evaluation:
// strongly/weakly connected components and clustering coefficients of WUP
// overlay snapshots (paper Section V-A, Figure 4), and greedy-modularity
// community detection (Clauset-Newman-Moore / Newman 2004) used to derive
// interest communities for the synthetic Arxiv-style dataset (Section IV-A).
package graph

import "sort"

// Directed is a directed graph over nodes 0..N-1 with adjacency lists.
type Directed struct {
	out [][]int
}

// NewDirected returns an empty directed graph with n nodes.
func NewDirected(n int) *Directed {
	return &Directed{out: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Directed) N() int { return len(g.out) }

// AddEdge inserts the edge u→v. Self-loops and duplicates are ignored.
func (g *Directed) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= len(g.out) || v >= len(g.out) {
		return
	}
	for _, w := range g.out[u] {
		if w == v {
			return
		}
	}
	g.out[u] = append(g.out[u], v)
}

// Out returns the successors of u.
func (g *Directed) Out(u int) []int { return g.out[u] }

// Edges returns the total number of directed edges.
func (g *Directed) Edges() int {
	total := 0
	for _, adj := range g.out {
		total += len(adj)
	}
	return total
}

// SCC computes the strongly connected components with Tarjan's algorithm
// (iterative, so deep overlays cannot overflow the goroutine stack).
// It returns one slice of node ids per component.
func (g *Directed) SCC() [][]int {
	n := len(g.out)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int // Tarjan stack
		comps   [][]int
	)

	type frame struct {
		v, child int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call := []frame{{v: root}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.child == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.child < len(g.out[v]) {
				w := g.out[v][f.child]
				f.child++
				if index[w] == unvisited {
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop component if root, propagate lowlink.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

// LargestSCCFraction returns |largest SCC| / N, the Figure 4 measure.
func (g *Directed) LargestSCCFraction() float64 {
	if len(g.out) == 0 {
		return 0
	}
	best := 0
	for _, c := range g.SCC() {
		if len(c) > best {
			best = len(c)
		}
	}
	return float64(best) / float64(len(g.out))
}

// WeakComponents returns the number of weakly connected components,
// the fragmentation measure quoted in Section V-A (average number of
// components at small fanouts).
func (g *Directed) WeakComponents() int {
	n := len(g.out)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u, adj := range g.out {
		for _, v := range adj {
			union(u, v)
		}
	}
	roots := make(map[int]struct{}, n)
	for i := 0; i < n; i++ {
		roots[find(i)] = struct{}{}
	}
	return len(roots)
}

// ClusteringCoefficient returns the average local clustering coefficient of
// the undirected version of the graph: for each node, the fraction of pairs
// of neighbours that are themselves connected. The paper reports ~0.15 for
// WUP-metric topologies vs ~0.40 for cosine ones (Section V-A).
func (g *Directed) ClusteringCoefficient() float64 {
	n := len(g.out)
	if n == 0 {
		return 0
	}
	und := make([]map[int]struct{}, n)
	for i := range und {
		und[i] = make(map[int]struct{})
	}
	for u, adj := range g.out {
		for _, v := range adj {
			und[u][v] = struct{}{}
			und[v][u] = struct{}{}
		}
	}
	var total float64
	counted := 0
	for u := 0; u < n; u++ {
		deg := len(und[u])
		if deg < 2 {
			continue
		}
		neigh := make([]int, 0, deg)
		for v := range und[u] {
			neigh = append(neigh, v)
		}
		links := 0
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				if _, ok := und[neigh[i]][neigh[j]]; ok {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(deg*(deg-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
