// Package profile implements WhatsUp interest profiles and the similarity
// metrics that drive the WUP clustering overlay (paper Sections II-B to II-E).
//
// A profile is a set of <item id, timestamp, score> triplets with a single
// entry per item. User profiles hold binary scores (1 = like, 0 = dislike);
// item profiles hold real scores obtained by averaging the user profiles of
// the nodes that liked the item along its dissemination path.
//
// Profiles are stored as slices sorted by item id. This makes the two hot
// operations of the system cheap: cloning an item profile on every BEEP
// forward is a single allocation plus memcpy, and similarity computations
// are two-pointer merges over contiguous memory.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"whatsup/internal/news"
)

// Entry is one <id, timestamp, score> triplet (II-B).
type Entry struct {
	Item  news.ID
	Stamp int64   // when the opinion was expressed (gossip cycle / unix ms)
	Score float64 // 1 like, 0 dislike for user profiles; [0,1] for item profiles
}

// Profile is a set of entries with at most one entry per item identifier,
// kept sorted by item id. The zero value is not ready to use; call New.
type Profile struct {
	entries []Entry // sorted by Item
	sumSq   float64 // cached Σ score², so Norm is O(1)
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{}
}

// WithCapacity returns an empty profile sized for n entries.
func WithCapacity(n int) *Profile {
	return &Profile{entries: make([]Entry, 0, n)}
}

// Len reports the number of entries.
func (p *Profile) Len() int { return len(p.entries) }

// search returns the position of id in the sorted entries and whether it is
// present.
func (p *Profile) search(id news.ID) (int, bool) {
	i := sort.Search(len(p.entries), func(i int) bool { return p.entries[i].Item >= id })
	return i, i < len(p.entries) && p.entries[i].Item == id
}

// Get returns the entry for an item and whether it exists.
func (p *Profile) Get(id news.ID) (Entry, bool) {
	if i, ok := p.search(id); ok {
		return p.entries[i], true
	}
	return Entry{}, false
}

// Has reports whether the profile expresses an opinion on the item.
func (p *Profile) Has(id news.ID) bool {
	_, ok := p.search(id)
	return ok
}

// Set inserts or replaces the entry for an item (user-profile update,
// Algorithm 1 lines 5, 7 and 14).
func (p *Profile) Set(id news.ID, stamp int64, score float64) {
	i, ok := p.search(id)
	if ok {
		old := p.entries[i].Score
		p.sumSq += score*score - old*old
		p.entries[i] = Entry{Item: id, Stamp: stamp, Score: score}
		return
	}
	p.entries = append(p.entries, Entry{})
	copy(p.entries[i+1:], p.entries[i:])
	p.entries[i] = Entry{Item: id, Stamp: stamp, Score: score}
	p.sumSq += score * score
}

// AverageIn merges one tuple of a liker's user profile into an item profile:
// if the item profile already has a score s for the id, s becomes the average
// (s+score)/2, giving equal weight to both and personalising the item profile
// to the most recent liker; otherwise the tuple is inserted as is
// (addToNewsProfile, Algorithm 1 lines 18-22).
func (p *Profile) AverageIn(id news.ID, stamp int64, score float64) {
	i, ok := p.search(id)
	if ok {
		old := p.entries[i].Score
		avg := (old + score) / 2
		p.sumSq += avg*avg - old*old
		p.entries[i].Score = avg
		return
	}
	p.entries = append(p.entries, Entry{})
	copy(p.entries[i+1:], p.entries[i:])
	p.entries[i] = Entry{Item: id, Stamp: stamp, Score: score}
	p.sumSq += score * score
}

// Remove deletes the entry for an item, if present.
func (p *Profile) Remove(id news.ID) {
	if i, ok := p.search(id); ok {
		old := p.entries[i].Score
		p.sumSq -= old * old
		p.entries = append(p.entries[:i], p.entries[i+1:]...)
		if len(p.entries) == 0 {
			p.sumSq = 0
		}
	}
}

// PurgeOlderThan removes all entries whose timestamp is strictly older than
// minStamp and reports how many were dropped. This implements the profile
// window (II-E): the system only considers current interests, and inactive
// users decay back to empty profiles.
func (p *Profile) PurgeOlderThan(minStamp int64) int {
	kept := p.entries[:0]
	dropped := 0
	for _, e := range p.entries {
		if e.Stamp < minStamp {
			p.sumSq -= e.Score * e.Score
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	p.entries = kept
	if len(p.entries) == 0 {
		p.sumSq = 0 // reset accumulated float error on empty
	}
	return dropped
}

// Norm returns the Euclidean norm of the score vector, ‖P‖.
func (p *Profile) Norm() float64 {
	if p.sumSq <= 0 {
		return 0
	}
	return math.Sqrt(p.sumSq)
}

// Likes returns the number of entries with a strictly positive score.
func (p *Profile) Likes() int {
	n := 0
	for _, e := range p.entries {
		if e.Score > 0 {
			n++
		}
	}
	return n
}

// ForEach calls fn for every entry in ascending item-id order.
func (p *Profile) ForEach(fn func(Entry)) {
	for _, e := range p.entries {
		fn(e)
	}
}

// Entries returns a copy of the entries sorted by item id.
func (p *Profile) Entries() []Entry {
	out := make([]Entry, len(p.entries))
	copy(out, p.entries)
	return out
}

// Clone returns a deep copy. BEEP clones the item profile on every forward so
// that copies of the same item along different paths diverge (II-B).
func (p *Profile) Clone() *Profile {
	c := &Profile{entries: make([]Entry, len(p.entries)), sumSq: p.sumSq}
	copy(c.entries, p.entries)
	return c
}

// Equal reports whether two profiles contain exactly the same entries.
func (p *Profile) Equal(q *Profile) bool {
	if len(p.entries) != len(q.entries) {
		return false
	}
	for i, e := range p.entries {
		if q.entries[i] != e {
			return false
		}
	}
	return true
}

// WireSize approximates the serialized size in bytes: 8-byte id + 8-byte
// timestamp + 8-byte score per entry. Used for bandwidth accounting
// (Figure 8b).
func (p *Profile) WireSize() int {
	const entryBytes = 8 + 8 + 8
	return entryBytes * len(p.entries)
}

// String renders a short human-readable form, capped to a few entries.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile{%d:", len(p.entries))
	for i, e := range p.entries {
		if i == 4 {
			b.WriteString(" …")
			break
		}
		fmt.Fprintf(&b, " %s=%.2f", e.Item, e.Score)
	}
	b.WriteString("}")
	return b.String()
}

// MostPopular returns the n item ids that occur most frequently across the
// given profiles (ties broken by id for determinism). The cold-start
// procedure rates the 3 most popular items found in an inherited RPS view
// (II-D).
func MostPopular(profiles []*Profile, n int) []news.ID {
	counts := make(map[news.ID]int)
	for _, p := range profiles {
		if p == nil {
			continue
		}
		for _, e := range p.entries {
			counts[e.Item]++
		}
	}
	ids := make([]news.ID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}
