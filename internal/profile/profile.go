// Package profile implements WhatsUp interest profiles and the similarity
// metrics that drive the WUP clustering overlay (paper Sections II-B to II-E).
//
// A profile is a set of <item id, timestamp, score> triplets with a single
// entry per item. User profiles hold binary scores (1 = like, 0 = dislike);
// item profiles hold real scores obtained by averaging the user profiles of
// the nodes that liked the item along its dissemination path.
//
// Profiles are stored as slices sorted by item id and are copy-on-write:
// Clone shares the immutable entry slice and the first mutation of either
// side materializes a private copy. This makes the two hot operations of the
// system nearly free: cloning an item profile on every BEEP forward is a
// pointer-sized struct allocation, and folding a user profile into an item
// profile is a single-pass two-pointer merge (MergeAverage). Every mutation
// bumps a monotonic version counter, which the overlay layer uses to key its
// similarity cache.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"whatsup/internal/news"
)

// Entry is one <id, timestamp, score> triplet (II-B).
type Entry struct {
	Item  news.ID
	Stamp int64   // when the opinion was expressed (gossip cycle / unix ms)
	Score float64 // 1 like, 0 dislike for user profiles; [0,1] for item profiles
}

// Profile is a set of entries with at most one entry per item identifier,
// kept sorted by item id. The zero value is not ready to use; call New.
//
// Profiles are not goroutine-safe for mutation; engines serialize access per
// owner. Clone, however, may be called concurrently with other Clones and
// reads of the same profile (the shared flag is the only state it touches,
// atomically), which is what lets the parallel simulator snapshot profiles
// of idle peers during bootstrap.
type Profile struct {
	entries []Entry // sorted by Item
	sumSq   float64 // cached Σ score², so Norm is O(1)
	version uint64  // bumped on every content mutation (similarity-cache key)
	dirty   int     // subtractive float ops since the last exact sumSq recompute
	shared  atomic.Bool
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{}
}

// WithCapacity returns an empty profile sized for n entries.
func WithCapacity(n int) *Profile {
	return &Profile{entries: make([]Entry, 0, n)}
}

// Len reports the number of entries.
func (p *Profile) Len() int { return len(p.entries) }

// Version returns the profile's monotonic mutation counter. Two reads
// returning the same value bracket a span with identical content, which is
// what makes (profile pointer, version) a sound similarity-cache key.
func (p *Profile) Version() uint64 { return p.version }

// materialize gives the profile a private copy of its entries if the backing
// array is shared with copy-on-write clones. extra reserves room for inserts.
func (p *Profile) materialize(extra int) {
	if !p.shared.Load() {
		return
	}
	es := make([]Entry, len(p.entries), len(p.entries)+extra)
	copy(es, p.entries)
	p.entries = es
	p.shared.Store(false)
}

// search returns the position of id in the sorted entries and whether it is
// present.
func (p *Profile) search(id news.ID) (int, bool) {
	i := sort.Search(len(p.entries), func(i int) bool { return p.entries[i].Item >= id })
	return i, i < len(p.entries) && p.entries[i].Item == id
}

// Get returns the entry for an item and whether it exists.
func (p *Profile) Get(id news.ID) (Entry, bool) {
	if i, ok := p.search(id); ok {
		return p.entries[i], true
	}
	return Entry{}, false
}

// Has reports whether the profile expresses an opinion on the item.
func (p *Profile) Has(id news.ID) bool {
	_, ok := p.search(id)
	return ok
}

// Set inserts or replaces the entry for an item (user-profile update,
// Algorithm 1 lines 5, 7 and 14).
//
//whatsup:hotpath
func (p *Profile) Set(id news.ID, stamp int64, score float64) {
	p.version++
	i, ok := p.search(id)
	if ok {
		p.materialize(0)
		old := p.entries[i].Score
		p.sumSq += score*score - old*old
		p.entries[i] = Entry{Item: id, Stamp: stamp, Score: score}
		return
	}
	p.materialize(1)
	p.entries = append(p.entries, Entry{}) //whatsup:alloc amortized growth; materialize(1) reserves on COW copies
	copy(p.entries[i+1:], p.entries[i:])
	p.entries[i] = Entry{Item: id, Stamp: stamp, Score: score}
	p.sumSq += score * score
}

// AverageIn merges one tuple of a liker's user profile into an item profile:
// if the item profile already has a score s for the id, s becomes the average
// (s+score)/2, giving equal weight to both and personalising the item profile
// to the most recent liker; otherwise the tuple is inserted as is
// (addToNewsProfile, Algorithm 1 lines 18-22). The entry keeps the freshest
// of the two timestamps, so reinforcing an item never makes it look older to
// the profile window (II-E).
//
//whatsup:hotpath
func (p *Profile) AverageIn(id news.ID, stamp int64, score float64) {
	p.version++
	i, ok := p.search(id)
	if ok {
		p.materialize(0)
		old := p.entries[i].Score
		avg := (old + score) / 2
		p.sumSq += avg*avg - old*old
		p.entries[i].Score = avg
		if stamp > p.entries[i].Stamp {
			p.entries[i].Stamp = stamp
		}
		return
	}
	p.materialize(1)
	p.entries = append(p.entries, Entry{}) //whatsup:alloc amortized growth; materialize(1) reserves on COW copies
	copy(p.entries[i+1:], p.entries[i:])
	p.entries[i] = Entry{Item: id, Stamp: stamp, Score: score}
	p.sumSq += score * score
}

// MergeAverage folds every entry of other into p with AverageIn semantics —
// matching ids average their scores and keep the freshest stamp, missing ids
// are inserted verbatim — as a single O(|p|+|other|) sorted merge with at
// most one allocation. It replaces the entry-at-a-time loops on BEEP's
// publish and receive paths (Algorithm 1 lines 3-4 and 15-16).
//
// The incremental sumSq updates are applied in ascending id order of other's
// entries, the exact float-op sequence of the AverageIn loop it replaces, so
// the cached norm is bit-identical to the legacy path.
//
//whatsup:hotpath
func (p *Profile) MergeAverage(other *Profile) {
	if other == nil || len(other.entries) == 0 {
		return
	}
	p.version++
	if len(p.entries) == 0 {
		// Merging into an empty profile copies other verbatim: share its
		// entries copy-on-write and rebuild sumSq in ascending order (the
		// canonical insert sequence), touching no heap.
		other.shared.Store(true)
		p.shared.Store(true)
		p.entries = other.entries
		var sumSq float64
		for _, e := range other.entries {
			sumSq += e.Score * e.Score
		}
		p.sumSq = sumSq
		p.dirty = 0
		return
	}
	//whatsup:alloc the merge's single allocation; exact capacity, appends below never grow
	merged := make([]Entry, 0, len(p.entries)+len(other.entries))
	i, j := 0, 0
	for i < len(p.entries) && j < len(other.entries) {
		a, b := p.entries[i], other.entries[j]
		switch {
		case a.Item < b.Item:
			merged = append(merged, a)
			i++
		case a.Item > b.Item:
			p.sumSq += b.Score * b.Score
			merged = append(merged, b)
			j++
		default:
			avg := (a.Score + b.Score) / 2
			p.sumSq += avg*avg - a.Score*a.Score
			if b.Stamp > a.Stamp {
				a.Stamp = b.Stamp
			}
			a.Score = avg
			merged = append(merged, a)
			i++
			j++
		}
	}
	merged = append(merged, p.entries[i:]...)
	for ; j < len(other.entries); j++ {
		b := other.entries[j]
		p.sumSq += b.Score * b.Score
		merged = append(merged, b)
	}
	p.entries = merged
	p.shared.Store(false)
}

// Remove deletes the entry for an item, if present.
func (p *Profile) Remove(id news.ID) {
	i, ok := p.search(id)
	if !ok {
		return
	}
	p.version++
	p.materialize(0)
	old := p.entries[i].Score
	p.sumSq -= old * old
	p.entries = append(p.entries[:i], p.entries[i+1:]...)
	p.noteSubtraction(1)
}

// PurgeOlderThan removes all entries whose timestamp is strictly older than
// minStamp and reports how many were dropped. This implements the profile
// window (II-E): the system only considers current interests, and inactive
// users decay back to empty profiles. When nothing is stale the profile is
// left untouched without copying, so windowed-but-stable profiles stay
// shared across copy-on-write clones.
func (p *Profile) PurgeOlderThan(minStamp int64) int {
	first := -1
	for i, e := range p.entries {
		if e.Stamp < minStamp {
			first = i
			break
		}
	}
	if first < 0 {
		return 0
	}
	p.version++
	p.materialize(0)
	kept := p.entries[:first]
	dropped := 0
	for _, e := range p.entries[first:] {
		if e.Stamp < minStamp {
			p.sumSq -= e.Score * e.Score
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	p.entries = kept
	p.noteSubtraction(dropped)
	return dropped
}

// normRecomputeEvery bounds how much float error the cached sumSq can
// accumulate: after this many subtractive edits the norm is recomputed
// exactly from the entries. Additions only lose precision proportional to
// the running sum; subtractions can cancel catastrophically, so only they
// are counted.
const normRecomputeEvery = 32

// noteSubtraction records subtractive float edits against the cached sumSq
// and periodically recomputes it exactly (in ascending id order, the
// canonical sequence) so long-lived profiles cannot drift.
func (p *Profile) noteSubtraction(n int) {
	p.dirty += n
	if len(p.entries) == 0 {
		p.sumSq = 0
		p.dirty = 0
		return
	}
	if p.dirty < normRecomputeEvery {
		return
	}
	var sumSq float64
	for _, e := range p.entries {
		sumSq += e.Score * e.Score
	}
	p.sumSq = sumSq
	p.dirty = 0
}

// NormAccumulator exposes the cached Σ score² and the subtractive-edit
// counter behind Norm. The pair is the profile's float-accumulator state:
// two profiles with equal entries can carry different sumSq bits depending
// on the mutation history that produced them, and similarity metrics read
// the cached value, not a recomputation. Serialization boundaries that must
// preserve bit-identical similarity scores (the sharded engine's inter-shard
// batches) carry this pair alongside the entries and restore it with
// SetNormAccumulator.
func (p *Profile) NormAccumulator() (sumSq float64, dirty int) {
	return p.sumSq, p.dirty
}

// SetNormAccumulator overwrites the cached Σ score² and subtractive-edit
// counter, replacing the recomputed-from-entries values a decode produces
// with the sender's exact accumulator bits. Content is unchanged, so the
// version counter is not bumped. The caller owns the invariant that the pair
// actually belongs to the current entries.
func (p *Profile) SetNormAccumulator(sumSq float64, dirty int) {
	p.sumSq = sumSq
	p.dirty = dirty
}

// Norm returns the Euclidean norm of the score vector, ‖P‖.
func (p *Profile) Norm() float64 {
	if p.sumSq <= 0 {
		return 0
	}
	return math.Sqrt(p.sumSq)
}

// Likes returns the number of entries with a strictly positive score.
func (p *Profile) Likes() int {
	n := 0
	for _, e := range p.entries {
		if e.Score > 0 {
			n++
		}
	}
	return n
}

// ForEach calls fn for every entry in ascending item-id order.
func (p *Profile) ForEach(fn func(Entry)) {
	for _, e := range p.entries {
		fn(e)
	}
}

// Entries returns a copy of the entries sorted by item id.
func (p *Profile) Entries() []Entry {
	out := make([]Entry, len(p.entries))
	copy(out, p.entries)
	return out
}

// Clone returns a copy-on-write copy: the entry slice is shared until either
// side mutates, at which point the mutating side materializes a private
// copy. BEEP clones the item profile on every forward so that copies of the
// same item along different paths diverge (II-B); with copy-on-write the
// forward itself costs one struct allocation and the copy is deferred to the
// first receiver that actually diverges the profile.
func (p *Profile) Clone() *Profile {
	p.shared.Store(true)
	c := &Profile{entries: p.entries, sumSq: p.sumSq, version: p.version, dirty: p.dirty}
	c.shared.Store(true)
	return c
}

// Equal reports whether two profiles contain exactly the same entries.
func (p *Profile) Equal(q *Profile) bool {
	if len(p.entries) != len(q.entries) {
		return false
	}
	for i, e := range p.entries {
		if q.entries[i] != e {
			return false
		}
	}
	return true
}

// String renders a short human-readable form, capped to a few entries.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile{%d:", len(p.entries))
	for i, e := range p.entries {
		if i == 4 {
			b.WriteString(" …")
			break
		}
		fmt.Fprintf(&b, " %s=%.2f", e.Item, e.Score)
	}
	b.WriteString("}")
	return b.String()
}

// MostPopular returns the n item ids that occur most frequently across the
// given profiles (ties broken by id for determinism). The cold-start
// procedure rates the 3 most popular items found in an inherited RPS view
// (II-D).
func MostPopular(profiles []*Profile, n int) []news.ID {
	counts := make(map[news.ID]int)
	for _, p := range profiles {
		if p == nil {
			continue
		}
		for _, e := range p.entries {
			counts[e.Item]++
		}
	}
	ids := make([]news.ID, 0, len(counts))
	//whatsup:commutative keys collected then sorted below with a total order
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}
