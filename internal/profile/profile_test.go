package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatsup/internal/news"
)

func TestSetSingleEntryPerID(t *testing.T) {
	p := New()
	p.Set(1, 10, 1)
	p.Set(1, 20, 0)
	if p.Len() != 1 {
		t.Fatalf("profile must hold a single entry per id, got %d", p.Len())
	}
	e, ok := p.Get(1)
	if !ok || e.Score != 0 || e.Stamp != 20 {
		t.Fatalf("Set did not replace: %+v", e)
	}
}

func TestNormTracksMutations(t *testing.T) {
	p := New()
	p.Set(1, 0, 1)
	p.Set(2, 0, 1)
	p.Set(3, 0, 0)
	if got, want := p.Norm(), math.Sqrt(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm=%v want %v", got, want)
	}
	p.Remove(1)
	if got, want := p.Norm(), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm after Remove=%v want %v", got, want)
	}
	p.Set(2, 0, 0.5) // replace like with half-score
	if got, want := p.Norm(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm after replace=%v want %v", got, want)
	}
}

func TestAverageInMatchesAlgorithm1(t *testing.T) {
	// addToNewsProfile: existing score is replaced by the average of old and
	// new; missing ids are inserted verbatim.
	ip := New()
	ip.AverageIn(7, 3, 1)
	if e, _ := ip.Get(7); e.Score != 1 || e.Stamp != 3 {
		t.Fatalf("insert path wrong: %+v", e)
	}
	ip.AverageIn(7, 9, 0)
	e, _ := ip.Get(7)
	if e.Score != 0.5 {
		t.Fatalf("average path wrong: score=%v want 0.5", e.Score)
	}
	if e.Stamp != 3 {
		t.Fatalf("average path must keep original stamp, got %d", e.Stamp)
	}
	ip.AverageIn(7, 9, 1)
	if e, _ := ip.Get(7); e.Score != 0.75 {
		t.Fatalf("second average wrong: %v want 0.75", e.Score)
	}
}

func TestPurgeOlderThan(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Set(news.ID(i), int64(i), 1)
	}
	dropped := p.PurgeOlderThan(5)
	if dropped != 5 || p.Len() != 5 {
		t.Fatalf("dropped=%d len=%d want 5/5", dropped, p.Len())
	}
	for i := 5; i < 10; i++ {
		if !p.Has(news.ID(i)) {
			t.Fatalf("entry %d must survive the purge", i)
		}
	}
	if p.PurgeOlderThan(5) != 0 {
		t.Fatalf("second purge at same boundary must drop nothing")
	}
	if got, want := p.Norm(), math.Sqrt(5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm after purge=%v want %v", got, want)
	}
}

func TestPurgeAllResetsNorm(t *testing.T) {
	p := New()
	p.Set(1, 1, 0.3)
	p.Set(2, 2, 0.7)
	p.PurgeOlderThan(100)
	if p.Len() != 0 || p.Norm() != 0 {
		t.Fatalf("full purge must empty the profile: len=%d norm=%v", p.Len(), p.Norm())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New()
	p.Set(1, 1, 1)
	c := p.Clone()
	c.Set(2, 2, 1)
	c.Set(1, 3, 0)
	if p.Len() != 1 {
		t.Fatalf("mutating the clone changed the original")
	}
	if e, _ := p.Get(1); e.Score != 1 {
		t.Fatalf("original entry overwritten via clone")
	}
}

func TestEntriesSorted(t *testing.T) {
	p := New()
	for _, id := range []news.ID{9, 3, 7, 1} {
		p.Set(id, 0, 1)
	}
	es := p.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Item >= es[i].Item {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
}

func TestMostPopular(t *testing.T) {
	mk := func(ids ...news.ID) *Profile {
		p := New()
		for _, id := range ids {
			p.Set(id, 0, 1)
		}
		return p
	}
	profiles := []*Profile{mk(1, 2, 3), mk(2, 3), mk(3), nil, mk(4)}
	top := MostPopular(profiles, 3)
	want := []news.ID{3, 2, 1}
	if len(top) != 3 || top[0] != want[0] || top[1] != want[1] || top[2] != want[2] {
		t.Fatalf("MostPopular=%v want %v", top, want)
	}
	if got := MostPopular(profiles, 10); len(got) != 4 {
		t.Fatalf("MostPopular must cap at distinct ids, got %v", got)
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 2, 1)
	b.Set(1, 2, 1)
	if !a.Equal(b) {
		t.Fatal("identical profiles must be Equal")
	}
	b.Set(1, 2, 0)
	if a.Equal(b) {
		t.Fatal("different scores must not be Equal")
	}
}

// randomProfile builds a profile with n entries drawn from a universe of ids.
func randomProfile(rng *rand.Rand, n int, universe int64) *Profile {
	p := New()
	for i := 0; i < n; i++ {
		p.Set(news.ID(rng.Int63n(universe)), rng.Int63n(1000), float64(rng.Intn(2)))
	}
	return p
}

func TestNormPropertyMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng, rng.Intn(50), 40)
		// Random churn.
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0:
				p.Set(news.ID(rng.Int63n(40)), rng.Int63n(1000), rng.Float64())
			case 1:
				p.Remove(news.ID(rng.Int63n(40)))
			case 2:
				p.AverageIn(news.ID(rng.Int63n(40)), rng.Int63n(1000), rng.Float64())
			}
		}
		var sumSq float64
		p.ForEach(func(e Entry) { sumSq += e.Score * e.Score })
		if math.Abs(p.Norm()-math.Sqrt(sumSq)) > 1e-9 {
			t.Fatalf("cached norm drifted: %v vs %v", p.Norm(), math.Sqrt(sumSq))
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p := randomProfile(rng, rng.Intn(30), 1<<40)
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		q := New()
		if err := q.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip mismatch:\n%v\n%v", p, q)
		}
	}
}

func TestMarshalCanonical(t *testing.T) {
	a, b := New(), New()
	ids := []news.ID{5, 1, 9, 2}
	for _, id := range ids {
		a.Set(id, int64(id), 1)
	}
	for i := len(ids) - 1; i >= 0; i-- {
		b.Set(ids[i], int64(ids[i]), 1)
	}
	ba, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if string(ba) != string(bb) {
		t.Fatal("encoding must be canonical regardless of insertion order")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	p := New()
	p.Set(1, 1, 1)
	data, _ := p.MarshalBinary()
	q := New()
	if err := q.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated payload must fail")
	}
	if err := q.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
}

func TestMarshalPropertyQuick(t *testing.T) {
	f := func(ids []uint64, scores []float64) bool {
		p := New()
		for i, id := range ids {
			s := 0.0
			if i < len(scores) {
				s = math.Abs(math.Mod(scores[i], 1))
				if math.IsNaN(s) || math.IsInf(s, 0) {
					s = 0
				}
			}
			p.Set(news.ID(id), int64(i), s)
		}
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		q := New()
		if err := q.UnmarshalBinary(data); err != nil {
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
