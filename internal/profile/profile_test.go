package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatsup/internal/news"
)

func TestSetSingleEntryPerID(t *testing.T) {
	p := New()
	p.Set(1, 10, 1)
	p.Set(1, 20, 0)
	if p.Len() != 1 {
		t.Fatalf("profile must hold a single entry per id, got %d", p.Len())
	}
	e, ok := p.Get(1)
	if !ok || e.Score != 0 || e.Stamp != 20 {
		t.Fatalf("Set did not replace: %+v", e)
	}
}

func TestNormTracksMutations(t *testing.T) {
	p := New()
	p.Set(1, 0, 1)
	p.Set(2, 0, 1)
	p.Set(3, 0, 0)
	if got, want := p.Norm(), math.Sqrt(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm=%v want %v", got, want)
	}
	p.Remove(1)
	if got, want := p.Norm(), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm after Remove=%v want %v", got, want)
	}
	p.Set(2, 0, 0.5) // replace like with half-score
	if got, want := p.Norm(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm after replace=%v want %v", got, want)
	}
}

func TestAverageInMatchesAlgorithm1(t *testing.T) {
	// addToNewsProfile: existing score is replaced by the average of old and
	// new; missing ids are inserted verbatim.
	ip := New()
	ip.AverageIn(7, 3, 1)
	if e, _ := ip.Get(7); e.Score != 1 || e.Stamp != 3 {
		t.Fatalf("insert path wrong: %+v", e)
	}
	ip.AverageIn(7, 9, 0)
	e, _ := ip.Get(7)
	if e.Score != 0.5 {
		t.Fatalf("average path wrong: score=%v want 0.5", e.Score)
	}
	if e.Stamp != 9 {
		t.Fatalf("average path must keep the freshest stamp, got %d", e.Stamp)
	}
	ip.AverageIn(7, 9, 1)
	if e, _ := ip.Get(7); e.Score != 0.75 {
		t.Fatalf("second average wrong: %v want 0.75", e.Score)
	}
}

func TestAverageInStalenessRegression(t *testing.T) {
	// Regression for the profile-window staleness bug: an entry reinforced by
	// a recent liker used to keep its original stamp, so the next
	// PurgeOlderThan could drop an item-profile entry that had just been
	// re-expressed. The freshest stamp must win, in both merge directions.
	ip := New()
	ip.AverageIn(7, 3, 1) // first opinion at cycle 3
	ip.AverageIn(7, 9, 1) // reinforced at cycle 9
	if dropped := ip.PurgeOlderThan(5); dropped != 0 {
		t.Fatalf("reinforced entry purged: dropped=%d", dropped)
	}
	if !ip.Has(7) {
		t.Fatal("reinforced entry must survive a purge past its original stamp")
	}
	// An older opinion must never rejuvenate a fresher entry.
	ip.AverageIn(7, 1, 1)
	if e, _ := ip.Get(7); e.Stamp != 9 {
		t.Fatalf("older merge must not regress the stamp: got %d want 9", e.Stamp)
	}
	// MergeAverage takes the same freshest-stamp rule.
	a, b := New(), New()
	a.Set(1, 2, 1)
	b.Set(1, 8, 0)
	a.MergeAverage(b)
	if e, _ := a.Get(1); e.Stamp != 8 || e.Score != 0.5 {
		t.Fatalf("MergeAverage stamp/score wrong: %+v", e)
	}
}

func TestPurgeOlderThan(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Set(news.ID(i), int64(i), 1)
	}
	dropped := p.PurgeOlderThan(5)
	if dropped != 5 || p.Len() != 5 {
		t.Fatalf("dropped=%d len=%d want 5/5", dropped, p.Len())
	}
	for i := 5; i < 10; i++ {
		if !p.Has(news.ID(i)) {
			t.Fatalf("entry %d must survive the purge", i)
		}
	}
	if p.PurgeOlderThan(5) != 0 {
		t.Fatalf("second purge at same boundary must drop nothing")
	}
	if got, want := p.Norm(), math.Sqrt(5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm after purge=%v want %v", got, want)
	}
}

func TestPurgeAllResetsNorm(t *testing.T) {
	p := New()
	p.Set(1, 1, 0.3)
	p.Set(2, 2, 0.7)
	p.PurgeOlderThan(100)
	if p.Len() != 0 || p.Norm() != 0 {
		t.Fatalf("full purge must empty the profile: len=%d norm=%v", p.Len(), p.Norm())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New()
	p.Set(1, 1, 1)
	c := p.Clone()
	c.Set(2, 2, 1)
	c.Set(1, 3, 0)
	if p.Len() != 1 {
		t.Fatalf("mutating the clone changed the original")
	}
	if e, _ := p.Get(1); e.Score != 1 {
		t.Fatalf("original entry overwritten via clone")
	}
}

func TestEntriesSorted(t *testing.T) {
	p := New()
	for _, id := range []news.ID{9, 3, 7, 1} {
		p.Set(id, 0, 1)
	}
	es := p.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Item >= es[i].Item {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
}

func TestMostPopular(t *testing.T) {
	mk := func(ids ...news.ID) *Profile {
		p := New()
		for _, id := range ids {
			p.Set(id, 0, 1)
		}
		return p
	}
	profiles := []*Profile{mk(1, 2, 3), mk(2, 3), mk(3), nil, mk(4)}
	top := MostPopular(profiles, 3)
	want := []news.ID{3, 2, 1}
	if len(top) != 3 || top[0] != want[0] || top[1] != want[1] || top[2] != want[2] {
		t.Fatalf("MostPopular=%v want %v", top, want)
	}
	if got := MostPopular(profiles, 10); len(got) != 4 {
		t.Fatalf("MostPopular must cap at distinct ids, got %v", got)
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 2, 1)
	b.Set(1, 2, 1)
	if !a.Equal(b) {
		t.Fatal("identical profiles must be Equal")
	}
	b.Set(1, 2, 0)
	if a.Equal(b) {
		t.Fatal("different scores must not be Equal")
	}
}

// randomProfile builds a profile with n entries drawn from a universe of ids.
func randomProfile(rng *rand.Rand, n int, universe int64) *Profile {
	p := New()
	for i := 0; i < n; i++ {
		p.Set(news.ID(rng.Int63n(universe)), rng.Int63n(1000), float64(rng.Intn(2)))
	}
	return p
}

func TestNormPropertyMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng, rng.Intn(50), 40)
		// Random churn.
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0:
				p.Set(news.ID(rng.Int63n(40)), rng.Int63n(1000), rng.Float64())
			case 1:
				p.Remove(news.ID(rng.Int63n(40)))
			case 2:
				p.AverageIn(news.ID(rng.Int63n(40)), rng.Int63n(1000), rng.Float64())
			}
		}
		var sumSq float64
		p.ForEach(func(e Entry) { sumSq += e.Score * e.Score })
		if math.Abs(p.Norm()-math.Sqrt(sumSq)) > 1e-9 {
			t.Fatalf("cached norm drifted: %v vs %v", p.Norm(), math.Sqrt(sumSq))
		}
	}
}

// legacyClone is the pre-COW deep copy, kept as the reference semantics for
// the observational-equivalence property test.
func legacyClone(p *Profile) *Profile {
	c := WithCapacity(p.Len())
	p.ForEach(func(e Entry) { c.entries = append(c.entries, e) })
	c.sumSq = p.sumSq
	return c
}

// mutate applies one random mutation to a profile, driven by op.
func mutate(p *Profile, rng *rand.Rand) {
	switch rng.Intn(5) {
	case 0:
		p.Set(news.ID(rng.Int63n(60)), rng.Int63n(1000), float64(rng.Intn(2)))
	case 1:
		p.AverageIn(news.ID(rng.Int63n(60)), rng.Int63n(1000), rng.Float64())
	case 2:
		p.Remove(news.ID(rng.Int63n(60)))
	case 3:
		p.PurgeOlderThan(rng.Int63n(1000))
	case 4:
		other := randomProfile(rng, rng.Intn(20), 60)
		p.MergeAverage(other)
	}
}

func TestCloneCOWObservationallyEqualsDeepCopy(t *testing.T) {
	// BEEP divergence (paper II-B): a cloned item profile and its original
	// must evolve exactly as independent deep copies would, whatever
	// interleaving of mutations hits either side — including clones of
	// clones, the shape BEEP's multi-hop forwards produce.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		base := randomProfile(rng, rng.Intn(40), 60)
		cow := base.Clone()
		deep := legacyClone(base)
		refBase := legacyClone(base)
		for step := 0; step < 40; step++ {
			r := rng.Int63()
			mrng := rand.New(rand.NewSource(r))
			mrng2 := rand.New(rand.NewSource(r))
			if rng.Intn(2) == 0 {
				mutate(base, mrng)
				mutate(refBase, mrng2)
			} else {
				mutate(cow, mrng)
				mutate(deep, mrng2)
			}
		}
		if !cow.Equal(deep) {
			t.Fatalf("trial %d: COW clone diverged from deep copy:\n%v\n%v", trial, cow, deep)
		}
		if !base.Equal(refBase) {
			t.Fatalf("trial %d: original corrupted by clone mutations:\n%v\n%v", trial, base, refBase)
		}
		// Grandchild clones must be independent too.
		g1, g2 := cow.Clone(), cow.Clone()
		g1.Set(999, 1, 1)
		if g2.Has(999) || cow.Has(999) {
			t.Fatalf("trial %d: clone-of-clone mutation leaked", trial)
		}
	}
}

func TestMergeAverageMatchesAverageInLoop(t *testing.T) {
	// MergeAverage must be observationally identical to the entry-at-a-time
	// AverageIn loop it replaces, including the cached norm bit-for-bit.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		p := randomProfile(rng, rng.Intn(40), 50)
		other := randomProfile(rng, rng.Intn(40), 50)
		ref := legacyClone(p)
		other.ForEach(func(e Entry) { ref.AverageIn(e.Item, e.Stamp, e.Score) })
		p.MergeAverage(other)
		if !p.Equal(ref) {
			t.Fatalf("trial %d: merge mismatch:\n%v\n%v", trial, p, ref)
		}
		if p.Norm() != ref.Norm() {
			t.Fatalf("trial %d: norm not bit-identical: %v vs %v", trial, p.Norm(), ref.Norm())
		}
	}
	// nil and empty are no-ops.
	p := randomProfile(rng, 10, 50)
	ref := legacyClone(p)
	p.MergeAverage(nil)
	p.MergeAverage(New())
	if !p.Equal(ref) {
		t.Fatal("merging nil/empty must not change the profile")
	}
}

func TestMergeAverageIntoEmptySharesCOW(t *testing.T) {
	user := randomProfile(rand.New(rand.NewSource(13)), 30, 50)
	ip := New()
	ip.MergeAverage(user)
	if !ip.Equal(user) {
		t.Fatal("merge into empty must copy the source verbatim")
	}
	// Mutating either side afterwards must not leak into the other.
	before := legacyClone(user)
	ip.Set(999, 1, 1)
	ip.Remove(user.Entries()[0].Item)
	if !user.Equal(before) {
		t.Fatal("item-profile mutations leaked into the shared user profile")
	}
	user.Set(998, 1, 1)
	if ip.Has(998) {
		t.Fatal("user-profile mutations leaked into the item profile")
	}
}

func TestVersionBumpsOnEveryMutation(t *testing.T) {
	p := New()
	v := p.Version()
	step := func(name string, fn func()) {
		fn()
		if p.Version() <= v {
			t.Fatalf("%s must bump the version (still %d)", name, v)
		}
		v = p.Version()
	}
	step("Set", func() { p.Set(1, 1, 1) })
	step("AverageIn", func() { p.AverageIn(1, 2, 0) })
	step("MergeAverage", func() { q := New(); q.Set(2, 1, 1); p.MergeAverage(q) })
	step("Remove", func() { p.Remove(2) })
	step("PurgeOlderThan", func() { p.Set(3, 0, 1); v = p.Version(); p.PurgeOlderThan(1) })
	// Reads and no-op mutations must not bump.
	p.Set(9, 5, 1)
	v = p.Version()
	p.Remove(1234)
	p.PurgeOlderThan(0)
	_ = p.Clone()
	_, _ = p.Get(9)
	if p.Version() != v {
		t.Fatalf("no-op operations must not bump the version: %d -> %d", v, p.Version())
	}
}

func TestNormExactAfterLongEditSequences(t *testing.T) {
	// The drift guard: after arbitrarily long random edit sequences the
	// cached norm must track a from-scratch recomputation to fine precision
	// (subtractive edits trigger periodic exact recomputes).
	rng := rand.New(rand.NewSource(14))
	p := New()
	for i := 0; i < 20000; i++ {
		mutate(p, rng)
		if i%500 != 0 {
			continue
		}
		var sumSq float64
		p.ForEach(func(e Entry) { sumSq += e.Score * e.Score })
		want := math.Sqrt(sumSq)
		if diff := math.Abs(p.Norm() - want); diff > 1e-9*(1+want) {
			t.Fatalf("step %d: cached norm drifted: %v vs %v", i, p.Norm(), want)
		}
	}
}

func TestWireSizeMatchesEncodedLength(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng, rng.Intn(40), 1<<40)
		// Mix in non-binary scores (dyadic item-profile averages).
		for i := 0; i < 5; i++ {
			p.AverageIn(news.ID(rng.Int63n(1<<40)), rng.Int63n(1000), rng.Float64())
		}
		if got, want := p.WireSize(), len(p.AppendWire(nil)); got != want {
			t.Fatalf("WireSize=%d but encoded length=%d for %v", got, want, p)
		}
	}
	if got, want := New().WireSize(), len(New().AppendWire(nil)); got != want {
		t.Fatalf("empty profile WireSize=%d encoded=%d", got, want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p := randomProfile(rng, rng.Intn(30), 1<<40)
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		q := New()
		if err := q.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip mismatch:\n%v\n%v", p, q)
		}
	}
}

func TestMarshalCanonical(t *testing.T) {
	a, b := New(), New()
	ids := []news.ID{5, 1, 9, 2}
	for _, id := range ids {
		a.Set(id, int64(id), 1)
	}
	for i := len(ids) - 1; i >= 0; i-- {
		b.Set(ids[i], int64(ids[i]), 1)
	}
	ba, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if string(ba) != string(bb) {
		t.Fatal("encoding must be canonical regardless of insertion order")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	p := New()
	p.Set(1, 1, 1)
	data, _ := p.MarshalBinary()
	q := New()
	if err := q.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated payload must fail")
	}
	if err := q.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
}

func TestMarshalPropertyQuick(t *testing.T) {
	f := func(ids []uint64, scores []float64) bool {
		p := New()
		for i, id := range ids {
			s := 0.0
			if i < len(scores) {
				s = math.Abs(math.Mod(scores[i], 1))
				if math.IsNaN(s) || math.IsInf(s, 0) {
					s = 0
				}
			}
			p.Set(news.ID(id), int64(i), s)
		}
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		q := New()
		if err := q.UnmarshalBinary(data); err != nil {
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
