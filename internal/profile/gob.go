package profile

// GobEncode implements gob.GobEncoder via the canonical fixed binary
// encoding. The live transports no longer speak gob (they use the packed
// wire codec, AppendWire/DecodeWire); this bridge remains for external
// serializers and as the baseline the wire-codec benchmarks compare against.
func (p *Profile) GobEncode() ([]byte, error) {
	return p.MarshalBinary()
}

// GobDecode implements gob.GobDecoder.
func (p *Profile) GobDecode(data []byte) error {
	return p.UnmarshalBinary(data)
}
