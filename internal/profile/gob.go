package profile

// GobEncode implements gob.GobEncoder via the canonical binary encoding, so
// profiles embedded in live-runtime envelopes travel over TCP transports.
func (p *Profile) GobEncode() ([]byte, error) {
	return p.MarshalBinary()
}

// GobDecode implements gob.GobDecoder.
func (p *Profile) GobDecode(data []byte) error {
	return p.UnmarshalBinary(data)
}
