package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"whatsup/internal/news"
	"whatsup/internal/wire"
)

// Two binary layouts share the same structure — an entry count followed by
// the entries in sorted id order, each a {id, stamp, score} triplet — so
// both are canonical: Equal profiles encode to identical bytes.
//
// The *fixed* layout (MarshalBinary, used by the dataset dumper and the gob
// bridge) is uint32 count + count × {uint64 id, int64 stamp, float64 score},
// all big-endian.
//
// The *packed* layout (AppendWire, used by the live transports) keeps the
// same field order but varint-packs everything: item ids are delta-encoded
// (sorted order makes deltas small and strictly positive), stamps are zigzag
// varints (gossip-cycle stamps are tiny), and scores use the score packing
// of internal/wire (binary like/dislike scores are one byte, dyadic item
// averages a few, instead of 8).

const wireEntrySize = 8 + 8 + 8

// ErrTruncated reports a profile payload shorter than its declared length.
var ErrTruncated = errors.New("profile: truncated encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Profile) MarshalBinary() ([]byte, error) {
	es := p.Entries()
	buf := make([]byte, 4+wireEntrySize*len(es))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(es)))
	off := 4
	for _, e := range es {
		binary.BigEndian.PutUint64(buf[off:], uint64(e.Item))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(e.Stamp))
		binary.BigEndian.PutUint64(buf[off+16:], math.Float64bits(e.Score))
		off += wireEntrySize
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's contents.
func (p *Profile) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	if len(data) < 4+n*wireEntrySize {
		return fmt.Errorf("%w: want %d entries, have %d bytes", ErrTruncated, n, len(data)-4)
	}
	p.version++ // content replaced even when n == 0
	if p.shared.Load() {
		p.entries = nil // abandon the COW-shared array instead of copying it
		p.shared.Store(false)
	}
	p.entries = p.entries[:0]
	p.sumSq = 0
	p.dirty = 0
	off := 4
	for i := 0; i < n; i++ {
		id := news.ID(binary.BigEndian.Uint64(data[off:]))
		stamp := int64(binary.BigEndian.Uint64(data[off+8:]))
		score := math.Float64frombits(binary.BigEndian.Uint64(data[off+16:]))
		if math.IsNaN(score) || math.IsInf(score, 0) {
			return fmt.Errorf("profile: invalid score for item %s", id)
		}
		// Set keeps the slice sorted and deduplicated even if the sender
		// violated the canonical ordering.
		p.Set(id, stamp, score)
		off += wireEntrySize
	}
	return nil
}

// AppendWire appends the packed wire encoding of the profile to buf and
// returns the extended slice. The encoding is canonical: Equal profiles
// produce identical bytes.
//
//whatsup:hotpath
func (p *Profile) AppendWire(buf []byte) []byte {
	buf = wire.AppendUint(buf, uint64(len(p.entries)))
	prev := uint64(0)
	for i, e := range p.entries {
		id := uint64(e.Item)
		if i == 0 {
			buf = wire.AppendUint(buf, id)
		} else {
			buf = wire.AppendUint(buf, id-prev) // entries are sorted: delta ≥ 1
		}
		prev = id
		buf = wire.AppendInt(buf, e.Stamp)
		buf = wire.AppendScore(buf, e.Score)
	}
	return buf
}

// WireSize returns the exact number of bytes AppendWire produces for the
// profile — the Figure 8b bandwidth accounting and the live transports share
// the packed codec as their single source of truth. It walks the entries
// without encoding, so simulation hot paths pay no allocation for it.
//
//whatsup:hotpath
func (p *Profile) WireSize() int {
	size := wire.UintLen(uint64(len(p.entries)))
	prev := uint64(0)
	for i, e := range p.entries {
		id := uint64(e.Item)
		delta := id
		if i > 0 {
			delta = id - prev // entries are sorted: delta ≥ 1
		}
		prev = id
		size += wire.UintLen(delta) + wire.IntLen(e.Stamp) + wire.ScoreLen(e.Score)
	}
	return size
}

// DecodeWire decodes one packed profile from the front of data, returning
// the profile and the remaining bytes. The input is untrusted network data:
// non-monotonic ids, non-finite scores and truncation all produce errors,
// never panics, and the declared entry count is checked against the bytes
// actually available before any allocation.
func DecodeWire(data []byte) (*Profile, []byte, error) {
	n, rest, err := wire.Uint(data)
	if err != nil {
		return nil, data, fmt.Errorf("profile: entry count: %w", err)
	}
	// Each entry is at least 3 bytes (id delta, stamp, score — one byte
	// each), which bounds n before the allocation below.
	if n > uint64(len(rest))/3 {
		return nil, data, fmt.Errorf("%w: %d entries declared, %d bytes remain", wire.ErrTruncated, n, len(rest))
	}
	p := &Profile{entries: make([]Entry, 0, n)}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var delta uint64
		delta, rest, err = wire.Uint(rest)
		if err != nil {
			return nil, data, fmt.Errorf("profile: entry %d id: %w", i, err)
		}
		id := delta
		if i > 0 {
			if delta == 0 {
				return nil, data, fmt.Errorf("%w: duplicate or unsorted profile entry", wire.ErrMalformed)
			}
			id = prev + delta
			if id < prev {
				return nil, data, fmt.Errorf("%w: profile id overflow", wire.ErrMalformed)
			}
		}
		prev = id
		var stamp int64
		stamp, rest, err = wire.Int(rest)
		if err != nil {
			return nil, data, fmt.Errorf("profile: entry %d stamp: %w", i, err)
		}
		var score float64
		score, rest, err = wire.Score(rest)
		if err != nil {
			return nil, data, fmt.Errorf("profile: entry %d score: %w", i, err)
		}
		p.entries = append(p.entries, Entry{Item: news.ID(id), Stamp: stamp, Score: score})
		p.sumSq += score * score
	}
	return p, rest, nil
}
