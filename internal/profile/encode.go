package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"whatsup/internal/news"
)

// Binary wire format, used by the TCP transport and the dataset dumper:
//
//	uint32 count
//	count × { uint64 id, int64 stamp, float64 score }
//
// all big-endian. Entries are written in sorted id order so the encoding is
// canonical: Equal profiles encode to identical bytes.

const wireEntrySize = 8 + 8 + 8

// ErrTruncated reports a profile payload shorter than its declared length.
var ErrTruncated = errors.New("profile: truncated encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Profile) MarshalBinary() ([]byte, error) {
	es := p.Entries()
	buf := make([]byte, 4+wireEntrySize*len(es))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(es)))
	off := 4
	for _, e := range es {
		binary.BigEndian.PutUint64(buf[off:], uint64(e.Item))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(e.Stamp))
		binary.BigEndian.PutUint64(buf[off+16:], math.Float64bits(e.Score))
		off += wireEntrySize
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's contents.
func (p *Profile) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	if len(data) < 4+n*wireEntrySize {
		return fmt.Errorf("%w: want %d entries, have %d bytes", ErrTruncated, n, len(data)-4)
	}
	p.entries = p.entries[:0]
	p.sumSq = 0
	off := 4
	for i := 0; i < n; i++ {
		id := news.ID(binary.BigEndian.Uint64(data[off:]))
		stamp := int64(binary.BigEndian.Uint64(data[off+8:]))
		score := math.Float64frombits(binary.BigEndian.Uint64(data[off+16:]))
		if math.IsNaN(score) || math.IsInf(score, 0) {
			return fmt.Errorf("profile: invalid score for item %s", id)
		}
		// Set keeps the slice sorted and deduplicated even if the sender
		// violated the canonical ordering.
		p.Set(id, stamp, score)
		off += wireEntrySize
	}
	return nil
}
