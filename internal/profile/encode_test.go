package profile

import (
	"bytes"
	"errors"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/wire"
)

func wireSample() *Profile {
	p := New()
	p.Set(news.ID(0x1122334455667788), 10, 1)
	p.Set(news.ID(0x1122334455667789), 12, 0)
	p.Set(news.ID(0xFFEEDDCCBBAA0099), 13, 0.375)
	return p
}

func TestAppendWireRoundTrip(t *testing.T) {
	for name, p := range map[string]*Profile{
		"empty":  New(),
		"sample": wireSample(),
	} {
		enc := p.AppendWire(nil)
		got, rest, err := DecodeWire(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", name, len(rest))
		}
		if !got.Equal(p) {
			t.Fatalf("%s: round trip mismatch: %v != %v", name, got, p)
		}
		if got.Norm() != p.Norm() {
			t.Fatalf("%s: norm mismatch after decode", name)
		}
	}
}

func TestAppendWireCanonical(t *testing.T) {
	// Same entries inserted in different orders must encode identically.
	a, b := New(), New()
	a.Set(1, 1, 1)
	a.Set(2, 2, 0)
	b.Set(2, 2, 0)
	b.Set(1, 1, 1)
	if !bytes.Equal(a.AppendWire(nil), b.AppendWire(nil)) {
		t.Fatal("canonical encoding must not depend on insertion order")
	}
}

func TestAppendWirePacksTighterThanFixed(t *testing.T) {
	p := wireSample()
	fixed, _ := p.MarshalBinary()
	packed := p.AppendWire(nil)
	if len(packed) >= len(fixed) {
		t.Fatalf("packed=%dB must beat fixed=%dB", len(packed), len(fixed))
	}
}

func TestDecodeWireTruncatedPrefixes(t *testing.T) {
	enc := wireSample().AppendWire(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeWire(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes must not decode", i, len(enc))
		}
	}
}

func TestDecodeWireRejectsHugeCount(t *testing.T) {
	// A count far beyond the available bytes must fail before allocating.
	enc := wire.AppendUint(nil, 1<<40)
	if _, _, err := DecodeWire(enc); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("err=%v, want ErrTruncated", err)
	}
}

func TestDecodeWireRejectsUnsortedDuplicate(t *testing.T) {
	// Two entries with delta 0 — a duplicate id — must be rejected.
	enc := wire.AppendUint(nil, 2)
	enc = wire.AppendUint(enc, 7)
	enc = wire.AppendInt(enc, 1)
	enc = wire.AppendScore(enc, 1)
	enc = wire.AppendUint(enc, 0) // delta 0: same id again
	enc = wire.AppendInt(enc, 1)
	enc = wire.AppendScore(enc, 1)
	if _, _, err := DecodeWire(enc); !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("err=%v, want ErrMalformed", err)
	}
}
