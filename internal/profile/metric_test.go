package profile

import (
	"math"
	"math/rand"
	"testing"

	"whatsup/internal/news"
)

// like/dislike helpers for readable metric tests.
func likes(ids ...news.ID) *Profile {
	p := New()
	for _, id := range ids {
		p.Set(id, 0, 1)
	}
	return p
}

func withDislikes(p *Profile, ids ...news.ID) *Profile {
	for _, id := range ids {
		p.Set(id, 0, 0)
	}
	return p
}

func TestWUPEmptyProfiles(t *testing.T) {
	m := WUP{}
	if m.Similarity(New(), likes(1)) != 0 || m.Similarity(likes(1), New()) != 0 {
		t.Fatal("empty profiles must have similarity 0")
	}
	if m.Similarity(nil, likes(1)) != 0 {
		t.Fatal("nil profile must have similarity 0")
	}
}

func TestWUPIdenticalBinaryProfiles(t *testing.T) {
	m := WUP{}
	p := likes(1, 2, 3, 4)
	if got := m.Similarity(p, p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical profiles: got %v want 1", got)
	}
}

func TestWUPPenalizesDislikedOverlap(t *testing.T) {
	// c1 likes both of n's liked items; c2 likes one and dislikes the other.
	// The ‖sub‖ denominator must rank c1 above c2 (spam avoidance).
	m := WUP{}
	n := likes(1, 2)
	c1 := likes(1, 2)
	c2 := withDislikes(likes(1), 2)
	if s1, s2 := m.Similarity(n, c1), m.Similarity(n, c2); s1 <= s2 {
		t.Fatalf("dislike penalty missing: full=%v partial=%v", s1, s2)
	}
}

func TestWUPFavorsRestrictiveTastes(t *testing.T) {
	// Same overlap, but c2 likes many extra items: the ‖Pc‖ denominator must
	// favour the more selective c1. This is also the cold-start boost: small
	// profiles with popular items rank high.
	m := WUP{}
	n := likes(1, 2)
	c1 := likes(1, 2)
	c2 := likes(1, 2, 3, 4, 5, 6, 7, 8)
	if s1, s2 := m.Similarity(n, c1), m.Similarity(n, c2); s1 <= s2 {
		t.Fatalf("restrictive-taste preference missing: small=%v large=%v", s1, s2)
	}
}

func TestWUPAsymmetry(t *testing.T) {
	// The metric is asymmetric: sub() restricts to n's side.
	// a likes {1,2}; b likes {1,3} and dislikes {2}.
	// Sim(a,b) = 1/(√2·√2) = 0.5; Sim(b,a) = 1/(1·√2) ≈ 0.707.
	m := WUP{}
	a := likes(1, 2)
	b := withDislikes(likes(1, 3), 2)
	sab, sba := m.Similarity(a, b), m.Similarity(b, a)
	if math.Abs(sab-0.5) > 1e-12 || math.Abs(sba-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("asymmetry values wrong: sab=%v sba=%v", sab, sba)
	}
}

func TestWUPKnownValue(t *testing.T) {
	// n likes {1,2,3}; c rated {1:like, 2:dislike, 9:like}.
	// dot = 1 (item 1); sub = {1,2} → ‖sub‖=√2; ‖Pc‖=√2 (likes 1 and 9).
	// similarity = 1/(√2·√2) = 0.5.
	m := WUP{}
	n := likes(1, 2, 3)
	c := withDislikes(likes(1, 9), 2)
	if got := m.Similarity(n, c); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("known value: got %v want 0.5", got)
	}
}

func TestCosineKnownValue(t *testing.T) {
	// n likes {1,2}; c likes {1,3}. dot=1, norms=√2·√2 → 0.5.
	m := Cosine{}
	n := likes(1, 2)
	c := likes(1, 3)
	if got := m.Similarity(n, c); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cosine known value: got %v want 0.5", got)
	}
}

func TestCosineSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Cosine{}
	for trial := 0; trial < 100; trial++ {
		a := randomProfile(rng, 1+rng.Intn(20), 30)
		b := randomProfile(rng, 1+rng.Intn(20), 30)
		if sab, sba := m.Similarity(a, b), m.Similarity(b, a); math.Abs(sab-sba) > 1e-12 {
			t.Fatalf("cosine must be symmetric: %v vs %v", sab, sba)
		}
	}
}

func TestMetricsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range []Metric{WUP{}, Cosine{}} {
		for trial := 0; trial < 300; trial++ {
			a := randomProfile(rng, rng.Intn(25), 20)
			b := randomProfile(rng, rng.Intn(25), 20)
			s := m.Similarity(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s out of range: %v (a=%v b=%v)", m.Name(), s, a, b)
			}
		}
	}
}

func TestWUPColdStartBoost(t *testing.T) {
	// A joining node with a tiny profile of popular items must look *better*
	// to established nodes than a candidate with a diluted large profile
	// (Section II-D relies on this).
	m := WUP{}
	established := likes(1, 2, 3, 4, 5, 6)
	joiner := likes(1, 2, 3) // only popular items
	veteran := likes(1, 2, 3, 10, 11, 12, 13, 14, 15, 16, 17, 18)
	if sj, sv := m.Similarity(established, joiner), m.Similarity(established, veteran); sj <= sv {
		t.Fatalf("cold-start boost missing: joiner=%v veteran=%v", sj, sv)
	}
}

func TestWUPWithItemProfileScores(t *testing.T) {
	// Orientation compares an item profile (real scores) against user
	// profiles; the metric must handle non-binary scores.
	m := WUP{}
	item := New()
	item.Set(1, 0, 0.75)
	item.Set(2, 0, 0.25)
	user := likes(1, 2)
	s := m.Similarity(item, user)
	if s <= 0 || s > 1 {
		t.Fatalf("item-profile similarity out of range: %v", s)
	}
}

func TestByName(t *testing.T) {
	if ByName("cosine").Name() != "cosine" {
		t.Fatal("ByName(cosine)")
	}
	if ByName("wup").Name() != "wup" {
		t.Fatal("ByName(wup)")
	}
	if ByName("unknown").Name() != "wup" {
		t.Fatal("ByName must default to wup")
	}
}

func BenchmarkWUPSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randomProfile(rng, 200, 1000)
	c := randomProfile(rng, 200, 1000)
	m := WUP{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity(a, c)
	}
}

func BenchmarkCosineSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := randomProfile(rng, 200, 1000)
	c := randomProfile(rng, 200, 1000)
	m := Cosine{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity(a, c)
	}
}
