package profile

import "math"

// Metric computes the similarity between two profiles. The first argument is
// the profile of the node doing the selection (or the item profile during
// BEEP orientation), the second the candidate's profile. Implementations
// must return values in [0, 1] and be safe for concurrent use.
type Metric interface {
	// Similarity scores candidate c from the point of view of profile n.
	Similarity(n, c *Profile) float64
	// Name identifies the metric in experiment output ("wup", "cosine").
	Name() string
}

// intersect runs fn over the entries common to a and b using a two-pointer
// merge over the sorted entry slices.
func intersect(a, b *Profile, fn func(ea, eb Entry)) {
	i, j := 0, 0
	for i < len(a.entries) && j < len(b.entries) {
		ea, eb := a.entries[i], b.entries[j]
		switch {
		case ea.Item < eb.Item:
			i++
		case ea.Item > eb.Item:
			j++
		default:
			fn(ea, eb)
			i++
			j++
		}
	}
}

// WUP is the paper's asymmetric variation of cosine similarity (Section II):
//
//	Similarity(n, c) = sub(Pn,Pc)·Pc / (‖sub(Pn,Pc)‖ · ‖Pc‖)
//
// where sub(Pn,Pc) is the restriction of Pn to the items on which Pc
// expresses an opinion. The numerator counts items liked in both profiles;
// the ‖sub‖ denominator discourages selecting neighbours that dislike what n
// likes (spam avoidance); the ‖Pc‖ denominator favours candidates with more
// restrictive tastes and boosts cold-starting nodes with small profiles.
type WUP struct{}

// Name implements Metric.
func (WUP) Name() string { return "wup" }

// Similarity implements Metric.
func (WUP) Similarity(n, c *Profile) float64 {
	if n == nil || c == nil || n.Len() == 0 || c.Len() == 0 {
		return 0
	}
	var dot, subSq float64
	intersect(n, c, func(en, ec Entry) {
		dot += en.Score * ec.Score
		subSq += en.Score * en.Score
	})
	if dot <= 0 || subSq <= 0 {
		return 0
	}
	den := math.Sqrt(subSq) * c.Norm()
	if den == 0 {
		return 0
	}
	s := dot / den
	if s > 1 {
		s = 1 // guard float error; the metric is bounded by 1
	}
	return s
}

// Cosine is the classical cosine similarity over the score vectors
// (Tan, Steinbach & Kumar), the baseline metric the paper compares against:
//
//	cos(Pn, Pc) = Pn·Pc / (‖Pn‖ · ‖Pc‖)
//
// Absent items contribute zero to the dot product, so only the intersection
// needs to be scanned.
type Cosine struct{}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

// Similarity implements Metric.
func (Cosine) Similarity(n, c *Profile) float64 {
	if n == nil || c == nil || n.Len() == 0 || c.Len() == 0 {
		return 0
	}
	var dot float64
	intersect(n, c, func(en, ec Entry) {
		dot += en.Score * ec.Score
	})
	if dot <= 0 {
		return 0
	}
	den := n.Norm() * c.Norm()
	if den == 0 {
		return 0
	}
	s := dot / den
	if s > 1 {
		s = 1
	}
	return s
}

// ByName returns the metric with the given Name, defaulting to WUP.
func ByName(name string) Metric {
	if name == "cosine" {
		return Cosine{}
	}
	return WUP{}
}

var (
	_ Metric = WUP{}
	_ Metric = Cosine{}
)
