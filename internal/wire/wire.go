// Package wire provides the varint primitives shared by the binary wire
// codecs of the live runtime (profile entries, overlay descriptors, BEEP
// item messages and live envelopes). All integers are LEB128 varints —
// unsigned values directly, signed values zigzag-encoded — and profile
// scores are packed as byte-reversed IEEE 754 bits so that the values
// dominating WhatsUp traffic (0, 1, and the dyadic averages of item
// profiles) encode in one to three bytes instead of eight.
//
// Decoders never panic on malformed input: every helper returns the
// remaining bytes and an error wrapping ErrTruncated or ErrMalformed, so
// frames received from the network can be rejected cheaply.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrTruncated reports input that ends in the middle of a value.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed reports input that cannot be a valid encoding (overlong
// varints, length prefixes exceeding the payload, invalid floats).
var ErrMalformed = errors.New("wire: malformed input")

// AppendUint appends v as an unsigned varint.
func AppendUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendInt appends v as a zigzag-encoded varint.
func AppendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendString appends s length-prefixed (uvarint byte count + raw bytes).
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// UintLen returns the exact number of bytes AppendUint writes for v,
// without encoding. Used by the simulator's bandwidth accounting so the
// legacy WireSize estimates and the live codec agree on one source of truth.
func UintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// IntLen returns the exact number of bytes AppendInt writes for v.
func IntLen(v int64) int {
	return UintLen(uint64(v)<<1 ^ uint64(v>>63)) // zigzag, as binary.AppendVarint
}

// StringLen returns the exact number of bytes AppendString writes for s.
func StringLen(s string) int {
	return UintLen(uint64(len(s))) + len(s)
}

// ScoreLen returns the exact number of bytes AppendScore writes for f.
func ScoreLen(f float64) int {
	switch f {
	case 0, 1:
		return 1
	}
	if rev := bits.ReverseBytes64(math.Float64bits(f)); rev <= math.MaxUint64-3 {
		return UintLen(3 + rev)
	}
	return 1 + 8 // escape code + raw bits
}

// Uint decodes an unsigned varint, returning the value and remaining bytes.
func Uint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n > 0 {
		return v, data[n:], nil
	}
	if n == 0 {
		return 0, data, ErrTruncated
	}
	return 0, data, fmt.Errorf("%w: overlong uvarint", ErrMalformed)
}

// Int decodes a zigzag-encoded varint.
func Int(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n > 0 {
		return v, data[n:], nil
	}
	if n == 0 {
		return 0, data, ErrTruncated
	}
	return 0, data, fmt.Errorf("%w: overlong varint", ErrMalformed)
}

// AppendScore appends a profile score with the 0/1 values that dominate
// WhatsUp traffic (binary like/dislike opinions) packed into a single byte:
// code 0 is 0.0, code 1 is 1.0, and any other value v is normally encoded
// as 3 + reversed-bytes bits of v. The two reversed-bits values that would
// wrap that shift past the uint64 range (one of them a finite float, so it
// cannot simply be rejected) take the escape code 2 followed by the raw
// 8-byte representation, keeping the mapping total and unambiguous.
func AppendScore(b []byte, f float64) []byte {
	switch f {
	case 0:
		return append(b, 0)
	case 1:
		return append(b, 1)
	}
	v := math.Float64bits(f)
	if rev := bits.ReverseBytes64(v); rev <= math.MaxUint64-3 {
		return binary.AppendUvarint(b, 3+rev)
	}
	b = append(b, 2)
	return binary.BigEndian.AppendUint64(b, v)
}

// Score decodes a score written by AppendScore, rejecting non-finite values.
func Score(data []byte) (float64, []byte, error) {
	u, rest, err := Uint(data)
	if err != nil {
		return 0, data, err
	}
	var f float64
	switch u {
	case 0:
		return 0, rest, nil
	case 1:
		return 1, rest, nil
	case 2:
		if len(rest) < 8 {
			return 0, data, fmt.Errorf("%w: escaped score needs 8 bytes, have %d", ErrTruncated, len(rest))
		}
		f = math.Float64frombits(binary.BigEndian.Uint64(rest))
		rest = rest[8:]
	default:
		f = math.Float64frombits(bits.ReverseBytes64(u - 3))
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, data, fmt.Errorf("%w: non-finite score", ErrMalformed)
	}
	return f, rest, nil
}

// String decodes a length-prefixed string. The bytes are copied, so the
// result does not alias (possibly pooled) input buffers.
func String(data []byte) (string, []byte, error) {
	n, rest, err := Uint(data)
	if err != nil {
		return "", data, err
	}
	if n > uint64(len(rest)) {
		return "", data, fmt.Errorf("%w: string of %d bytes, %d remain", ErrTruncated, n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}
