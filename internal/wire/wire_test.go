package wire

import (
	"errors"
	"math"
	"testing"
)

func TestUintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64} {
		b := AppendUint(nil, v)
		got, rest, err := Uint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("Uint(%d): got=%d rest=%d err=%v", v, got, len(rest), err)
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -64, 64, math.MinInt64, math.MaxInt64} {
		b := AppendInt(nil, v)
		got, rest, err := Int(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("Int(%d): got=%d rest=%d err=%v", v, got, len(rest), err)
		}
	}
}

func TestScoreRoundTripAndPacking(t *testing.T) {
	// The last two values have reversed-bytes bit patterns at the very top
	// of the uint64 range: one finite float and one denormal whose naive
	// "+shift" encoding would wrap around. They must use the escape form
	// and still round-trip exactly.
	wrapper := math.Float64frombits(0xFEFFFFFFFFFFFFFF)
	nearWrap := math.Float64frombits(0xFDFFFFFFFFFFFFFF)
	for _, f := range []float64{0, 1, 0.5, 0.25, 0.875, -2.5, 1e-300, math.MaxFloat64, wrapper, nearWrap} {
		b := AppendScore(nil, f)
		got, rest, err := Score(b)
		if err != nil || got != f || len(rest) != 0 {
			t.Fatalf("Score(%v): got=%v rest=%d err=%v", f, got, len(rest), err)
		}
	}
	// Binary opinions — the bulk of every user profile — must be one byte.
	if n := len(AppendScore(nil, 0)); n != 1 {
		t.Fatalf("score 0 encodes to %d bytes, want 1", n)
	}
	if n := len(AppendScore(nil, 1)); n != 1 {
		t.Fatalf("score 1 encodes to %d bytes, want 1", n)
	}
	if _, _, err := Score(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Score(nil) err=%v", err)
	}
	// Escape code without its 8 raw bytes.
	if _, _, err := Score([]byte{2, 0xFF}); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated escaped score must error")
	}
	// NaN reaches the escape path on encode and must be rejected on decode.
	if _, _, err := Score(AppendScore(nil, math.NaN())); !errors.Is(err, ErrMalformed) {
		t.Fatal("NaN score must be rejected on decode")
	}
}

func TestScoreRejectsNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := AppendScore(nil, f)
		if _, _, err := Score(b); !errors.Is(err, ErrMalformed) {
			t.Fatalf("Score(%v) err=%v, want ErrMalformed", f, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "127.0.0.1:65535", string(make([]byte, 300))} {
		b := AppendString(nil, s)
		got, rest, err := String(b)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("String(%q): got=%q rest=%d err=%v", s, got, len(rest), err)
		}
	}
}

func TestTruncationErrors(t *testing.T) {
	if _, _, err := Uint(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Uint(nil) err=%v", err)
	}
	if _, _, err := Int([]byte{0x80}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Int(0x80) err=%v", err)
	}
	// Length prefix pointing past the end of the buffer.
	b := AppendUint(nil, 100)
	if _, _, err := String(append(b, 'x')); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short string err not truncated")
	}
	// Overlong varint (11 continuation bytes).
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, _, err := Uint(over); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overlong uvarint err=%v", err)
	}
}
