// Package news defines news items and their identifiers as used by the
// WhatsUp dissemination substrate (paper Section II-A).
//
// A news item consists of a title, a short description and a link. The
// publishing node stamps the item with its creation time and a dislike
// counter initialised to zero. Nodes identify items by an 8-byte hash that
// is never transmitted: every node recomputes it locally from the item
// content when the item is received.
package news

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"whatsup/internal/wire"
)

// ID is the 8-byte identifier of a news item. It is the FNV-1a hash of the
// item content, recomputed by receivers rather than transmitted (II-A).
type ID uint64

// String renders the identifier as fixed-width hex, convenient for logs.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Bytes returns the big-endian 8-byte representation of the identifier.
func (id ID) Bytes() [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b
}

// NodeID identifies a peer. The simulator uses dense indices; the live
// runtimes map NodeIDs to transport addresses.
type NodeID int32

// NoNode is the zero-ish sentinel for "no peer".
const NoNode NodeID = -1

// ValidNodeID reports whether a decoded integer is a representable node id:
// NoNode or any non-negative int32. The wire decoders share this bound so
// envelope, descriptor and item-source validation cannot drift.
func ValidNodeID(v int64) bool {
	return v >= int64(NoNode) && v <= int64(^uint32(0)>>1)
}

// Item is a news item. Topic and Community carry dataset ground truth used
// by workloads and metrics; they are not consulted by the protocols
// themselves (WhatsUp is content-agnostic).
type Item struct {
	ID          ID     // 8-byte content hash, computed via Hash
	Title       string // headline
	Description string // short description
	Link        string // link to further information
	Created     int64  // creation timestamp (gossip cycle in simulation, unix ms live)
	Source      NodeID // publishing node
	Topic       int    // dataset topic/category (ground truth, not gossiped)
	Community   int    // dataset interest community (ground truth, not gossiped)
}

// Hash computes the 8-byte identifier of an item from its content. Receivers
// call this instead of trusting a transmitted identifier, which keeps the
// wire format one hash shorter and prevents identifier spoofing.
func Hash(title, description, link string) ID {
	h := fnv.New64a()
	// Length-prefix each field so ("ab","c") and ("a","bc") differ.
	var lenBuf [4]byte
	for _, s := range []string{title, description, link} {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	return ID(h.Sum64())
}

// New constructs an item, computing its identifier from the content.
func New(title, description, link string, created int64, source NodeID) Item {
	return Item{
		ID:          Hash(title, description, link),
		Title:       title,
		Description: description,
		Link:        link,
		Created:     created,
		Source:      source,
	}
}

// WireSize returns the exact number of bytes the item occupies in a BEEP
// message: the three length-prefixed content strings plus the varint
// timestamp and source, matching byte-for-byte the item fields
// core.ItemMessage.AppendWire encodes. The ID is not counted — it is
// recomputed at the receiver, never transmitted (II-A) — and neither are
// the dataset ground-truth fields Topic and Community, which are never
// gossiped.
func (it Item) WireSize() int {
	return wire.StringLen(it.Title) + wire.StringLen(it.Description) + wire.StringLen(it.Link) +
		wire.IntLen(it.Created) + wire.IntLen(int64(it.Source))
}
