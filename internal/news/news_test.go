package news

import (
	"testing"
	"testing/quick"

	"whatsup/internal/wire"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash("title", "desc", "http://example.org")
	b := Hash("title", "desc", "http://example.org")
	if a != b {
		t.Fatalf("same content hashed to %v and %v", a, b)
	}
}

func TestHashFieldBoundaries(t *testing.T) {
	// Length prefixing must keep field boundaries distinct.
	a := Hash("ab", "c", "")
	b := Hash("a", "bc", "")
	if a == b {
		t.Fatalf("field boundary collision: %v", a)
	}
}

func TestHashDistinctContent(t *testing.T) {
	seen := make(map[ID]string)
	titles := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, title := range titles {
		for _, desc := range titles {
			id := Hash(title, desc, "l")
			key := title + "|" + desc
			if prev, dup := seen[id]; dup {
				t.Fatalf("collision between %q and %q", prev, key)
			}
			seen[id] = key
		}
	}
}

func TestNewComputesID(t *testing.T) {
	it := New("t", "d", "l", 42, 7)
	if it.ID != Hash("t", "d", "l") {
		t.Fatalf("New did not derive ID from content")
	}
	if it.Created != 42 || it.Source != 7 {
		t.Fatalf("New dropped metadata: %+v", it)
	}
}

func TestValidNodeID(t *testing.T) {
	for v, want := range map[int64]bool{
		-2: false, int64(NoNode): true, 0: true, 7: true,
		int64(^uint32(0) >> 1): true, int64(^uint32(0)>>1) + 1: false,
	} {
		if got := ValidNodeID(v); got != want {
			t.Fatalf("ValidNodeID(%d)=%v want %v", v, got, want)
		}
	}
}

func TestIDString(t *testing.T) {
	if got := ID(0xdeadbeef).String(); got != "00000000deadbeef" {
		t.Fatalf("ID.String() = %q", got)
	}
	if len(ID(0).String()) != 16 {
		t.Fatalf("ID string not fixed width: %q", ID(0).String())
	}
}

func TestIDBytesRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := ID(v).Bytes()
		var back uint64
		for _, x := range b {
			back = back<<8 | uint64(x)
		}
		return back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeGrowsWithContent(t *testing.T) {
	small := New("t", "d", "l", 0, 0)
	big := New("a much longer headline than before", "and a description", "http://example.org/x", 0, 0)
	if small.WireSize() >= big.WireSize() {
		t.Fatalf("WireSize small=%d big=%d", small.WireSize(), big.WireSize())
	}
	if small.WireSize() <= 0 {
		t.Fatalf("WireSize must be positive, got %d", small.WireSize())
	}
}

func TestHashPropertyNoEasyCollisions(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return Hash(a, "", "") != Hash(b, "", "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestWireSizeMatchesWireHelpers pins that Item.WireSize is computed with
// the exact internal/wire length helpers: varint-prefixed strings plus
// varint timestamp and source, no fixed-width approximation.
func TestWireSizeMatchesWireHelpers(t *testing.T) {
	it := New("headline", "a short description", "https://example.org/a", 42, 7)
	want := wire.StringLen(it.Title) + wire.StringLen(it.Description) + wire.StringLen(it.Link) +
		wire.IntLen(it.Created) + wire.IntLen(int64(it.Source))
	if got := it.WireSize(); got != want {
		t.Fatalf("WireSize=%d, helpers say %d", got, want)
	}
	// A 300-byte title needs a 2-byte length prefix; the old fixed estimate
	// could not represent that.
	big := New(string(make([]byte, 300)), "", "", 0, 0)
	if got := big.WireSize(); got != 2+300+1+1+1+1 {
		t.Fatalf("big WireSize=%d, want %d", got, 2+300+1+1+1+1)
	}
}
