// Package adversary implements the hostile peer behaviors of the robustness
// suite as core.Behavior values: spam amplifiers, profile poisoners, and
// sybil flash-crowds combining both. Each behavior plugs into the sim
// engine, the live runtime and the baseline peers through the same seam
// (core.Node.SetBehavior and its baseline equivalents), so an attack
// scenario runs unmodified against every protocol under comparison.
//
// A single behavior instance may be shared by a whole attacker cohort (the
// sybil pattern); all state here is read-only after construction, so no
// synchronization is needed.
package adversary

import (
	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// Spammer is the spam-amplification attack: cohort members "like" every item
// published by the cohort regardless of the honest opinion, so BEEP (and any
// baseline that forwards on like) fans the spam out at full fLIKE fanout.
// Reactions to items from outside the cohort stay honest — the attacker
// remains a plausible participant, which is what makes the attack cheap.
type Spammer struct {
	// Cohort is the set of attacker node ids whose publications are amplified.
	Cohort map[news.NodeID]bool
}

// AdvertisedProfile implements core.Behavior: spammers gossip their real
// profile (the attack is in the reactions, not the descriptors).
func (s *Spammer) AdvertisedProfile(user *profile.Profile, now int64) *profile.Profile {
	return user
}

// React implements core.Behavior: amplify cohort items, stay honest on the
// rest.
func (s *Spammer) React(item news.Item, honest bool) bool {
	if s.Cohort[item.Source] {
		return true
	}
	return honest
}

// OutgoingItem implements core.Behavior.
func (s *Spammer) OutgoingItem(msg core.ItemMessage) core.ItemMessage { return msg }

// Poisoner is the profile-poisoning attack: the node advertises a fabricated
// profile claiming fresh likes for a chosen set of items, steering the
// similarity-based overlays (WUP clustering, CF neighbourhoods) towards the
// attacker. Reactions and forwarded items stay honest; the lie lives purely
// in the gossiped descriptors.
type Poisoner struct {
	// ClaimLiked is the set of item ids the fabricated profile claims to like.
	ClaimLiked []news.ID
}

// AdvertisedProfile implements core.Behavior: a fresh profile re-stamped at
// the current time so window purging never ages the lie out. Allocating per
// call is fine — only attacker nodes pay it, never the honest hot path.
func (p *Poisoner) AdvertisedProfile(user *profile.Profile, now int64) *profile.Profile {
	fake := profile.New()
	for _, id := range p.ClaimLiked {
		fake.Set(id, now, 1)
	}
	return fake
}

// React implements core.Behavior.
func (p *Poisoner) React(item news.Item, honest bool) bool { return honest }

// OutgoingItem implements core.Behavior.
func (p *Poisoner) OutgoingItem(msg core.ItemMessage) core.ItemMessage { return msg }

// Sybil combines spam amplification with profile poisoning: the flash-crowd
// cohort amplifies its own publications and simultaneously advertises
// poisoned profiles to pull honest WUP views towards the cohort, maximizing
// the spam's fanout surface. One Sybil instance is shared by the whole
// cohort.
type Sybil struct {
	Spammer
	Poison Poisoner
}

// AdvertisedProfile implements core.Behavior, delegating to the poisoner.
func (s *Sybil) AdvertisedProfile(user *profile.Profile, now int64) *profile.Profile {
	return s.Poison.AdvertisedProfile(user, now)
}

// Cohort returns the first floor(frac*len(ids)) node ids as the attacker
// cohort set — the deterministic cohort picker the experiments and tests
// share. ids is not mutated.
func Cohort(ids []news.NodeID, frac float64) map[news.NodeID]bool {
	n := int(frac * float64(len(ids)))
	if n > len(ids) {
		n = len(ids)
	}
	cohort := make(map[news.NodeID]bool, n)
	for _, id := range ids[:n] {
		cohort[id] = true
	}
	return cohort
}
