package adversary

import (
	"testing"

	"whatsup/internal/news"
)

func TestSpammerReactsOnlyToCohortItems(t *testing.T) {
	s := &Spammer{Cohort: map[news.NodeID]bool{3: true}}
	spam := news.Item{ID: 1, Source: 3}
	ham := news.Item{ID: 2, Source: 7}
	if !s.React(spam, false) {
		t.Fatal("spammer must claim to like a fellow attacker's item")
	}
	if s.React(ham, false) {
		t.Fatal("spammer must not inflate honest items")
	}
	if !s.React(ham, true) {
		t.Fatal("spammer keeps the honest opinion on honest items")
	}
}

func TestPoisonerAdvertisesClaims(t *testing.T) {
	p := &Poisoner{ClaimLiked: []news.ID{10, 11, 12}}
	// The fabricated profile carries every claim; the honest profile the
	// node actually holds is never consulted.
	prof := p.AdvertisedProfile(nil, 5)
	if prof == nil || prof.Len() != 3 {
		t.Fatalf("advertised profile has %v entries, want 3", prof)
	}
	for _, id := range p.ClaimLiked {
		e, ok := prof.Get(id)
		if !ok || e.Score != 1 {
			t.Fatalf("claim %d missing or unliked in advertised profile", id)
		}
	}
}

func TestCohortTakesLeadingFraction(t *testing.T) {
	ids := []news.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	c := Cohort(ids, 0.25)
	if len(c) != 2 {
		t.Fatalf("cohort size %d, want 2", len(c))
	}
	if !c[0] || !c[1] {
		t.Fatalf("cohort must be the leading ids, got %v", c)
	}
	if len(Cohort(ids, 0)) != 0 {
		t.Fatal("zero fraction must yield an empty cohort")
	}
}
