package rps

import (
	"math/rand"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

func mkDesc(node news.NodeID, stamp int64) overlay.Descriptor {
	return overlay.Descriptor{Node: node, Stamp: stamp, Profile: profile.New()}
}

func TestSeedExcludesSelfAndBounds(t *testing.T) {
	p := New(0, "", 3, rand.New(rand.NewSource(1)))
	seed := []overlay.Descriptor{mkDesc(0, 1), mkDesc(1, 1), mkDesc(2, 1), mkDesc(3, 1), mkDesc(4, 1)}
	p.Seed(seed)
	if p.View().Contains(0) {
		t.Fatal("a node must never hold its own descriptor")
	}
	if p.View().Len() != 3 {
		t.Fatalf("view len=%d want capacity 3", p.View().Len())
	}
}

func TestSelectPeerPicksOldest(t *testing.T) {
	p := New(0, "", 5, rand.New(rand.NewSource(2)))
	p.Seed([]overlay.Descriptor{mkDesc(1, 10), mkDesc(2, 4), mkDesc(3, 8)})
	d, ok := p.SelectPeer()
	if !ok || d.Node != 2 {
		t.Fatalf("SelectPeer=%v want node 2", d.Node)
	}
}

func TestMakePushContainsSelfAndHalfView(t *testing.T) {
	p := New(0, "addr0", 8, rand.New(rand.NewSource(3)))
	var seed []overlay.Descriptor
	for i := news.NodeID(1); i <= 8; i++ {
		seed = append(seed, mkDesc(i, int64(i)))
	}
	p.Seed(seed)
	self := p.Descriptor(99, profile.New())
	push := p.MakePush(self)
	if len(push) != 1+4 {
		t.Fatalf("push size=%d want 5 (self + half of 8)", len(push))
	}
	if push[0].Node != 0 || push[0].Stamp != 99 {
		t.Fatalf("push must start with own fresh descriptor, got %+v", push[0])
	}
}

func TestDescriptorSnapshotsProfile(t *testing.T) {
	p := New(0, "", 4, rand.New(rand.NewSource(4)))
	prof := profile.New()
	prof.Set(1, 1, 1)
	d := p.Descriptor(5, prof)
	prof.Set(2, 2, 1) // mutate after snapshot
	if d.Profile.Len() != 1 {
		t.Fatal("descriptor profile must be a snapshot, not a live pointer")
	}
}

func TestExchangeConvergesViews(t *testing.T) {
	// Two partitioned cliques must mix once an exchange bridges them.
	rng := rand.New(rand.NewSource(5))
	a := New(0, "", 4, rand.New(rand.NewSource(6)))
	b := New(1, "", 4, rand.New(rand.NewSource(7)))
	a.Seed([]overlay.Descriptor{mkDesc(1, 1), mkDesc(2, 1), mkDesc(3, 1)})
	b.Seed([]overlay.Descriptor{mkDesc(0, 1), mkDesc(4, 1), mkDesc(5, 1)})
	_ = rng

	selfA := a.Descriptor(10, profile.New())
	selfB := b.Descriptor(10, profile.New())
	push := a.MakePush(selfA)
	reply := b.AcceptPush(push, selfB)
	a.AcceptReply(reply)

	if !b.View().Contains(0) {
		t.Fatal("responder must learn the initiator")
	}
	if !a.View().Contains(1) {
		t.Fatal("initiator must keep or relearn the responder")
	}
}

func TestMergeKeepsFreshestDuplicate(t *testing.T) {
	p := New(0, "", 4, rand.New(rand.NewSource(8)))
	p.Seed([]overlay.Descriptor{mkDesc(1, 5)})
	p.AcceptReply([]overlay.Descriptor{mkDesc(1, 9)})
	d, _ := p.View().Get(1)
	if d.Stamp != 9 {
		t.Fatalf("merge kept stale descriptor stamp=%d", d.Stamp)
	}
	p.AcceptReply([]overlay.Descriptor{mkDesc(1, 2)})
	d, _ = p.View().Get(1)
	if d.Stamp != 9 {
		t.Fatalf("merge regressed to stale descriptor stamp=%d", d.Stamp)
	}
}

func TestGossipRandomizesNetwork(t *testing.T) {
	// Run a ring of 40 nodes for 30 cycles; RPS must take every view far
	// beyond its two ring neighbours (randomness) while staying connected.
	const n, cycles, vs = 40, 30, 8
	nodes := make([]*Protocol, n)
	for i := range nodes {
		nodes[i] = New(news.NodeID(i), "", vs, rand.New(rand.NewSource(int64(100+i))))
	}
	for i := range nodes {
		nodes[i].Seed([]overlay.Descriptor{
			mkDesc(news.NodeID((i+1)%n), 0),
			mkDesc(news.NodeID((i+n-1)%n), 0),
		})
	}
	empty := profile.New()
	for c := 1; c <= cycles; c++ {
		for i, nd := range nodes {
			peer, ok := nd.SelectPeer()
			if !ok {
				t.Fatalf("node %d lost all neighbours at cycle %d", i, c)
			}
			self := nd.Descriptor(int64(c), empty)
			push := nd.MakePush(self)
			responder := nodes[peer.Node]
			reply := responder.AcceptPush(push, responder.Descriptor(int64(c), empty))
			nd.AcceptReply(reply)
		}
	}
	// Count distinct nodes ever reachable in one hop; a random overlay of
	// degree 8 should give most nodes well over 2 distinct neighbours.
	far := 0
	for i, nd := range nodes {
		for _, d := range nd.View().Entries() {
			dist := int(d.Node) - i
			if dist < 0 {
				dist = -dist
			}
			if dist > 1 && dist < n-1 {
				far++
			}
		}
	}
	if far < n { // at least one non-ring neighbour per node on average
		t.Fatalf("overlay did not randomize: only %d far links", far)
	}
}

func TestCrashClearsState(t *testing.T) {
	p := New(0, "", 4, rand.New(rand.NewSource(9)))
	p.Seed([]overlay.Descriptor{mkDesc(1, 1), mkDesc(2, 1)})
	p.Crash()
	if p.View().Len() != 0 {
		t.Fatal("crash must clear the view")
	}
	if _, ok := p.SelectPeer(); ok {
		t.Fatal("crashed node must have no peer to select")
	}
}
