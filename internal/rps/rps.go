// Package rps implements the random-peer-sampling layer of WUP (paper
// Section II), after Jelasity et al., "Gossip-based peer sampling", ACM TOCS
// 2007. It maintains a continuously changing random view of the network that
// (i) keeps the overlay connected, (ii) feeds the clustering layer with
// fresh candidates, and (iii) provides BEEP's dislike orientation with a
// random sample to search for the node closest to an item profile.
//
// The protocol is push-pull: periodically a node selects the entry with the
// oldest timestamp in its view and sends it its own fresh descriptor along
// with half of its view; the receiver replies symmetrically and both sides
// renew their views by keeping a random sample of the union of their own and
// the received entries.
//
// Protocol state is not goroutine-safe; engines serialize access per node
// (the simulator runs nodes sequentially, the live runtime wraps each node
// in a single goroutine).
package rps

import (
	"math/rand"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

// Protocol is the per-node RPS state machine.
type Protocol struct {
	self  news.NodeID
	addr  string
	view  *overlay.View
	rng   *rand.Rand
	grave *overlay.Graveyard // optional departure-notice filter (may be nil)
}

// SetGraveyard attaches the node's departure-tombstone set: merges then skip
// descriptors of gracefully departed peers until their tombstones expire.
func (p *Protocol) SetGraveyard(g *overlay.Graveyard) { p.grave = g }

// New returns an RPS instance for node self with the given view size
// (RPSvs, 30 in the paper).
func New(self news.NodeID, addr string, viewSize int, rng *rand.Rand) *Protocol {
	return &Protocol{self: self, addr: addr, view: overlay.NewView(viewSize), rng: rng}
}

// Self returns the node this protocol instance belongs to.
func (p *Protocol) Self() news.NodeID { return p.self }

// View exposes the underlying view. Callers must treat returned descriptors
// as immutable.
func (p *Protocol) View() *overlay.View { return p.view }

// Seed bootstraps the view with initial descriptors (engine-provided random
// graph, or the inherited view of a cold-starting node, Section II-D).
func (p *Protocol) Seed(descs []overlay.Descriptor) {
	p.view.InsertAllLive(descs, p.self, p.grave)
	p.view.TrimRandom(p.rng)
}

// Descriptor builds this node's own fresh descriptor: current profile
// snapshot stamped now. The snapshot is cloned so later profile mutations do
// not alter descriptors already gossiped away.
func (p *Protocol) Descriptor(now int64, prof *profile.Profile) overlay.Descriptor {
	return overlay.Descriptor{Node: p.self, Addr: p.addr, Stamp: now, Profile: prof.Clone()}
}

// SelectPeer returns the view entry with the oldest timestamp, the exchange
// target for this cycle. ok is false while the view is empty.
func (p *Protocol) SelectPeer() (overlay.Descriptor, bool) {
	return p.view.Oldest()
}

// MakePush assembles the request payload: the node's fresh descriptor plus a
// random half of its view (the typical parameter in such protocols,
// Section II).
func (p *Protocol) MakePush(self overlay.Descriptor) []overlay.Descriptor {
	half := p.view.Len() / 2
	push := make([]overlay.Descriptor, 0, half+1)
	push = append(push, self)
	return p.view.AppendRandomSample(push, p.rng, half)
}

// AcceptPush handles an incoming exchange request at the responder: it
// builds the symmetric reply (own fresh descriptor plus half the view,
// sampled before merging) and then merges the received entries.
func (p *Protocol) AcceptPush(push []overlay.Descriptor, self overlay.Descriptor) (reply []overlay.Descriptor) {
	reply = p.MakePush(self)
	p.merge(push)
	return reply
}

// AcceptReply merges the responder's entries at the initiator.
func (p *Protocol) AcceptReply(reply []overlay.Descriptor) {
	p.merge(reply)
}

// merge renews the view with a random sample of the union of the current
// view and the received descriptors.
func (p *Protocol) merge(received []overlay.Descriptor) {
	p.view.InsertAllLive(received, p.self, p.grave)
	p.view.TrimRandom(p.rng)
}

// EvictOlderThan drops view entries whose descriptors are older than
// minStamp — the age-based self-healing rule that flushes descriptors of
// departed nodes (their stamps stop advancing once they leave). Reports how
// many entries were evicted.
func (p *Protocol) EvictOlderThan(minStamp int64) int {
	return p.view.EvictOlderThan(minStamp)
}

// Crash clears the view, used by failure-injection tests to model a node
// that lost its state.
func (p *Protocol) Crash() {
	p.view = overlay.NewView(p.view.Capacity())
}
