package experiments

import (
	"fmt"
	"strings"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/sim"
)

// Fig7Curve is one metric variant's dynamics: per-cycle averages (over
// trials) of the WUP-view similarity of the reference, joining and changing
// nodes (Figures 7a/7b) and of the number of liked news items they receive
// per cycle (Figure 7c).
type Fig7Curve struct {
	Metric      string
	Cycles      []int64
	RefSim      []float64
	JoinSim     []float64
	ChangeSim   []float64
	RefLiked    []float64
	JoinLiked   []float64
	ChangeLiked []float64
	// JoinConvergence / ChangeConvergence: cycles after the event until the
	// node's view similarity first sustains ≥90% of the reference node's.
	JoinConvergence   int
	ChangeConvergence int
}

// Fig7Result reproduces Figure 7: cold start and interest dynamics, for the
// WUP metric and for cosine. The WUP metric should converge several times
// faster (paper: ~20 vs >100 cycles for joining, ~40 vs >100 for changing).
type Fig7Result struct {
	EventCycle int64
	TotalCycle int64
	Trials     int
	WhatsUp    Fig7Curve
	Cosine     Fig7Curve
}

// Fig7Config tunes the dynamics experiment.
type Fig7Config struct {
	// Trials to average over (the paper used 100; default 5).
	Trials int
	// EventCycle is when the join and the interest swap happen (default 100).
	EventCycle int64
	// TotalCycles is the run length (default 200).
	TotalCycles int
	// Window is the profile window (default 40 cycles, Section V-C).
	Window int64
	// Fanout is fLIKE (default 10).
	Fanout int
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.EventCycle <= 0 {
		c.EventCycle = 100
	}
	if c.TotalCycles <= 0 {
		c.TotalCycles = 200
	}
	if c.Window <= 0 {
		c.Window = 40
	}
	if c.Fanout <= 0 {
		c.Fanout = 10
	}
	return c
}

// remapOpinions routes each node's opinions through a mutable identity
// table, enabling the joining node (same interests as the reference) and
// the interest swap of the changing-node experiment.
type remapOpinions struct {
	ds    *dataset.Dataset
	remap []news.NodeID
}

func (r *remapOpinions) Likes(n news.NodeID, item news.ID) bool {
	return r.ds.Likes(r.remap[n], item)
}

// Fig7 runs the dynamics experiment with the given options and config.
func Fig7(o Options, cfg Fig7Config) Fig7Result {
	o = o.WithDefaults()
	cfg = cfg.withDefaults()
	res := Fig7Result{
		EventCycle: cfg.EventCycle,
		TotalCycle: int64(cfg.TotalCycles),
		Trials:     cfg.Trials,
	}
	curves := parallel(o.Workers, []func() Fig7Curve{
		func() Fig7Curve { return fig7Metric(o, cfg, profile.WUP{}) },
		func() Fig7Curve { return fig7Metric(o, cfg, profile.Cosine{}) },
	})
	res.WhatsUp, res.Cosine = curves[0], curves[1]
	return res
}

// fig7Metric averages Trials runs for one metric.
func fig7Metric(o Options, cfg Fig7Config, metric profile.Metric) Fig7Curve {
	nCycles := cfg.TotalCycles
	acc := Fig7Curve{Metric: metric.Name()}
	acc.Cycles = make([]int64, nCycles)
	for i := range acc.Cycles {
		acc.Cycles[i] = int64(i + 1)
	}
	for _, field := range []*[]float64{&acc.RefSim, &acc.JoinSim, &acc.ChangeSim, &acc.RefLiked, &acc.JoinLiked, &acc.ChangeLiked} {
		*field = make([]float64, nCycles)
	}

	trials := make([]func() Fig7Curve, cfg.Trials)
	for t := 0; t < cfg.Trials; t++ {
		seed := o.Seed + int64(t)*7919
		trials[t] = func() Fig7Curve { return fig7Trial(o, cfg, metric, seed) }
	}
	results := parallel(o.Workers, trials)
	for _, tr := range results {
		for i := 0; i < nCycles; i++ {
			acc.RefSim[i] += tr.RefSim[i] / float64(cfg.Trials)
			acc.JoinSim[i] += tr.JoinSim[i] / float64(cfg.Trials)
			acc.ChangeSim[i] += tr.ChangeSim[i] / float64(cfg.Trials)
			acc.RefLiked[i] += tr.RefLiked[i] / float64(cfg.Trials)
			acc.JoinLiked[i] += tr.JoinLiked[i] / float64(cfg.Trials)
			acc.ChangeLiked[i] += tr.ChangeLiked[i] / float64(cfg.Trials)
		}
	}
	acc.JoinConvergence = convergenceCycles(acc.JoinSim, acc.RefSim, int(cfg.EventCycle), 0.9)
	acc.ChangeConvergence = convergenceCycles(acc.ChangeSim, acc.RefSim, int(cfg.EventCycle), 0.9)
	return acc
}

// convergenceCycles returns how many cycles after the event the candidate
// curve first reaches the threshold fraction of the reference curve.
// Returns -1 if never.
func convergenceCycles(candidate, reference []float64, event int, threshold float64) int {
	for i := event; i < len(candidate); i++ {
		if reference[i] <= 0 {
			continue
		}
		if candidate[i] >= threshold*reference[i] {
			return i - event
		}
	}
	return -1
}

// fig7Trial runs one seeded trial and returns its per-cycle samples.
func fig7Trial(o Options, cfg Fig7Config, metric profile.Metric, seed int64) Fig7Curve {
	ds := dataset.Survey(dataset.SurveyConfig{Seed: o.Seed, Scale: o.Scale, Cycles: cfg.TotalCycles})
	op := &remapOpinions{ds: ds, remap: make([]news.NodeID, ds.Users+1)}
	for i := range op.remap {
		op.remap[i] = news.NodeID(i) // identity; entry ds.Users is the joiner
	}

	nodeCfg := core.Config{
		FLike:         cfg.Fanout,
		Metric:        metric,
		ProfileWindow: cfg.Window,
	}
	peers := make([]sim.Peer, ds.Users)
	nodes := make([]*core.Node, ds.Users)
	for i := 0; i < ds.Users; i++ {
		n := core.NewNode(news.NodeID(i), "", nodeCfg, op, nodeRNG(seed, i))
		nodes[i] = n
		peers[i] = n
	}

	// Trial-specific role assignment.
	roleRNG := nodeRNG(seed, 1<<20)
	ref := nodes[roleRNG.Intn(ds.Users)]
	changing := nodes[roleRNG.Intn(ds.Users)]
	for changing == ref {
		changing = nodes[roleRNG.Intn(ds.Users)]
	}
	swapWith := news.NodeID(roleRNG.Intn(ds.Users))
	joinID := news.NodeID(ds.Users)
	op.remap[joinID] = ref.ID() // the joiner shares the reference's interests

	nCycles := cfg.TotalCycles
	tr := Fig7Curve{Metric: metric.Name()}
	for _, field := range []*[]float64{&tr.RefSim, &tr.JoinSim, &tr.ChangeSim, &tr.RefLiked, &tr.JoinLiked, &tr.ChangeLiked} {
		*field = make([]float64, nCycles)
	}

	var joiner *core.Node
	col := metrics.NewCollector()
	register(ds, col)
	engineWorkers := o.EngineWorkers
	if engineWorkers <= 0 {
		engineWorkers = 1 // trials run on the sweep pool; keep each engine serial
	}
	e := sim.New(sim.Config{
		Seed:         seed,
		Cycles:       nCycles,
		Workers:      engineWorkers,
		Publications: publications(ds),
		OnDelivery: func(d core.Delivery, now int64) {
			if !d.Liked || now < 1 || now > int64(nCycles) {
				return
			}
			switch d.Node {
			case ref.ID():
				tr.RefLiked[now-1]++
			case joinID:
				tr.JoinLiked[now-1]++
			case changing.ID():
				tr.ChangeLiked[now-1]++
			}
		},
		OnCycleEnd: func(e *sim.Engine, now int64) {
			i := now - 1
			tr.RefSim[i] = ref.WUP().AverageSimilarity(ref.UserProfile())
			tr.ChangeSim[i] = changing.WUP().AverageSimilarity(changing.UserProfile())
			if joiner != nil {
				tr.JoinSim[i] = joiner.WUP().AverageSimilarity(joiner.UserProfile())
			}
		},
	}, peers, col)
	e.Bootstrap()

	for c := 0; c < nCycles; c++ {
		if int64(c) == cfg.EventCycle {
			// Interest change: the changing node swaps identities with a
			// random node (Section V-C).
			op.remap[changing.ID()], op.remap[swapWith] = op.remap[swapWith], op.remap[changing.ID()]
			// Join: cold start from a random host's views.
			host := nodes[roleRNG.Intn(ds.Users)]
			joiner = core.NewNode(joinID, "", nodeCfg, op, nodeRNG(seed, 1<<21))
			joiner.ColdStart(host.RPS().View().Entries(), host.WUP().View().Entries(), e.Now())
			e.AddPeer(joiner)
		}
		e.Step()
	}
	return tr
}

// String summarizes the dynamics result.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (survey, event at cycle %d of %d, %d trials)\n", r.EventCycle, r.TotalCycle, r.Trials)
	for _, c := range []Fig7Curve{r.WhatsUp, r.Cosine} {
		fmt.Fprintf(&b, "  metric=%-7s join-convergence=%s change-convergence=%s\n",
			c.Metric, cyclesOrNever(c.JoinConvergence), cyclesOrNever(c.ChangeConvergence))
		last := len(c.Cycles) - 1
		mid := int(r.EventCycle) + 5
		if mid > last {
			mid = last
		}
		fmt.Fprintf(&b, "    refSim(end)=%.2f joinSim(+5)=%.2f joinSim(end)=%.2f changeSim(end)=%.2f joinLiked(+5)=%.1f\n",
			c.RefSim[last], c.JoinSim[mid], c.JoinSim[last], c.ChangeSim[last], c.JoinLiked[mid])
	}
	return b.String()
}

func cyclesOrNever(c int) string {
	if c < 0 {
		return "never"
	}
	return fmt.Sprintf("%d cycles", c)
}
