package experiments

import (
	"fmt"
	"math"
	"strings"

	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// Fig11Result reproduces Figure 11: node-level F1 against sociability (the
// node's average similarity to its 15 most similar peers, computed from the
// full trace) plus the sociability distribution. The more sociable a node,
// the better the system serves it — the incentive property of Section V-H.
type Fig11Result struct {
	Dataset string
	Buckets []metrics.Bucket
	// Correlation is the Pearson correlation between sociability and F1
	// across nodes, summarizing the positive trend.
	Correlation float64
}

// Fig11 runs the sociability analysis (fLIKE = 10, k = 15 neighbours).
func Fig11(o Options) Fig11Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	const buckets = 10

	out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, Workers: o.EngineWorkers})
	soc := metrics.Sociability(ds.FullProfiles(), profile.WUP{}, 15)
	socMap := make(map[news.NodeID]float64, len(soc))
	xs := make([]float64, 0, len(soc))
	ys := make([]float64, 0, len(soc))
	for u, s := range soc {
		id := news.NodeID(u)
		socMap[id] = s
		if ns := out.Col.Node(id); ns != nil {
			xs = append(xs, s)
			ys = append(ys, ns.F1())
		}
	}
	return Fig11Result{
		Dataset:     "survey",
		Buckets:     out.Col.F1BySociability(socMap, buckets),
		Correlation: pearson(xs, ys),
	}
}

// pearson computes the Pearson correlation coefficient of two samples.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// String renders the bucketed curve and distribution.
func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 (%s): F1 vs sociability (correlation %.2f)\n", r.Dataset, r.Correlation)
	b.WriteString("  sociability  F1  fraction-of-nodes\n")
	for _, bk := range r.Buckets {
		if bk.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12.2f %-4.2f %.3f\n", bk.X, bk.Y, bk.Fraction)
	}
	return b.String()
}
