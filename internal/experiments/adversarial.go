package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"whatsup/internal/adversary"
	"whatsup/internal/baselines"
	"whatsup/internal/core"
	"whatsup/internal/faultnet"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/sim"
)

// The adversarial bench measures resilience: the same 4-community world is
// run clean and under attack — a spam cohort amplifying its own
// publications (optionally poisoning its advertised profiles too) while a
// k-way network partition severs the fleet mid-run and heals — for WhatsUp
// and for the homogeneous gossip baseline. The exhibit is the F1 *drop*
// each protocol suffers under the identical attack: BEEP's opinion-driven
// forwarding quarantines spam to single-copy dislike routing, while plain
// gossip re-amplifies every item at full fanout, so its feeds flood.
// `whatsup-bench -run adversarial` appends the measurement to the
// BENCH_adversarial.json trajectory.

// adversarialSpamBase is the item-id floor for spam publications, keeping
// them disjoint from the honest schedule: ids at or above it interest
// nobody per the ground truth.
const adversarialSpamBase news.ID = 1 << 20

// AdversarialConfig sizes the adversarial bench world.
type AdversarialConfig struct {
	// Peers is the population, attackers included (default 600).
	Peers int
	// Cycles is the run length (default 40).
	Cycles int
	// SpamFraction is the attacker share of the population (default 0.10).
	SpamFraction float64
	// SpamPerCycle is the spam publication rate, on top of the 6 honest
	// items per cycle (default 6: a flood matching the honest rate).
	SpamPerCycle int
	// Poison makes the cohort sybils: besides amplifying spam they advertise
	// fabricated profiles claiming every honest item, pulling honest WUP
	// views towards the cohort (measured as PoisoningDrift).
	Poison bool
	// PartitionK, when ≥ 2, splits the fleet into k groups with all
	// cross-group links cut from PartitionStart until PartitionHeal
	// (defaults: cycles/4 and cycles/2), exercising partition-and-heal
	// under attack.
	PartitionK     int
	PartitionStart int64
	PartitionHeal  int64
	// EngineWorkers is the per-engine worker pool (0 = serial). Results are
	// bit-identical for any value.
	EngineWorkers int
	// EngineShards is the engine slab count (0 = single slab). Results are
	// bit-identical for any value.
	EngineShards int
}

func (c AdversarialConfig) withDefaults() AdversarialConfig {
	if c.Peers <= 0 {
		c.Peers = 600
	}
	if c.Cycles <= 0 {
		c.Cycles = 40
	}
	if c.SpamFraction <= 0 {
		c.SpamFraction = 0.10
	}
	if c.SpamPerCycle <= 0 {
		c.SpamPerCycle = 6
	}
	if c.PartitionK >= 2 {
		if c.PartitionStart <= 0 {
			c.PartitionStart = int64(c.Cycles / 4)
		}
		if c.PartitionHeal <= c.PartitionStart {
			c.PartitionHeal = int64(c.Cycles / 2)
		}
	}
	return c
}

// adversarialPoint is one protocol×scenario cell of the comparison.
type adversarialPoint struct {
	col      *metrics.Collector
	adv      metrics.AdversaryStats
	timeline []metrics.ChurnSample
	spam     int     // spam items published
	honest   int     // honest node count
	honestF1 float64 // delivery-weighted F1 over honest feeds
}

// honestMicroF1 is the score the damage comparison uses: precision and
// recall weighted by deliveries into honest (non-attacker) feeds, so every
// spam copy that lands costs precision in proportion to the attention it
// wastes. The per-item macro F1 would weight a spam item that trickled to
// five nodes the same as one that flooded the fleet, flattering the flooded
// protocol.
func honestMicroF1(col *metrics.Collector) float64 {
	var received, liked, interested int
	for _, id := range col.NodeIDs() {
		if col.CohortOf(id) == metrics.CohortAttacker {
			continue
		}
		ns := col.Node(id)
		received += ns.Received
		liked += ns.ReceivedLiked
		interested += ns.Interested
	}
	if received == 0 || interested == 0 {
		return 0
	}
	p := float64(liked) / float64(received)
	r := float64(liked) / float64(interested)
	return metrics.F1Of(p, r)
}

// runAdversarialPoint builds and runs the world once. The honest workload,
// seeds and cohort membership are identical across cells, so the clean and
// attacked runs of each protocol differ only by the attack itself.
func runAdversarialPoint(cfg AdversarialConfig, alg Algorithm, attacked bool) adversarialPoint {
	const itemsPerCycle = 6
	ids := make([]news.NodeID, cfg.Peers)
	for i := range ids {
		ids[i] = news.NodeID(i)
	}
	attackers := adversary.Cohort(ids, cfg.SpamFraction)
	attackerIDs := ids[:len(attackers)]
	honestIDs := ids[len(attackers):]

	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		if item >= adversarialSpamBase {
			return false // ground truth: spam interests nobody
		}
		return int(node)%4 == int(item)%4
	})

	// One shared behavior instance for the whole cohort (the sybil pattern);
	// read-only after construction.
	var hostile core.Behavior
	if attacked {
		spammer := adversary.Spammer{Cohort: attackers}
		if cfg.Poison {
			claim := make([]news.ID, 0, cfg.Cycles*itemsPerCycle)
			for c := 1; c <= cfg.Cycles; c++ {
				for k := 0; k < itemsPerCycle; k++ {
					claim = append(claim, news.ID(c*itemsPerCycle+k))
				}
			}
			hostile = &adversary.Sybil{Spammer: spammer, Poison: adversary.Poisoner{ClaimLiked: claim}}
		} else {
			hostile = &spammer
		}
	}

	nodeCfg := core.Config{FLike: 6, RPSViewSize: 20}
	peers := make([]sim.Peer, cfg.Peers)
	for i := range peers {
		id := ids[i]
		rng := nodeRNG(1, i)
		if alg == PlainGossip {
			g := baselines.NewGossip(id, 6, 20, opinions, rng)
			if hostile != nil && attackers[id] {
				g.SetBehavior(hostile)
			}
			peers[i] = g
		} else {
			n := core.NewNode(id, "", nodeCfg, opinions, rng)
			if hostile != nil && attackers[id] {
				n.SetBehavior(hostile)
			}
			peers[i] = n
		}
	}

	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, cfg.Cycles*(itemsPerCycle+cfg.SpamPerCycle))
	for c := 1; c <= cfg.Cycles; c++ {
		for k := 0; k < itemsPerCycle; k++ {
			src := honestIDs[(c*itemsPerCycle+k)%len(honestIDs)]
			it := news.New(fmt.Sprintf("ham-%d-%d", c, k), "d", "l", int64(c), src)
			it.ID = news.ID(c*itemsPerCycle + k)
			pubs = append(pubs, sim.Publication{Cycle: int64(c), Source: src, Item: it})
			col.RegisterItem(it.ID, cfg.Peers/4)
		}
	}
	spamCount := 0
	if attacked {
		for c := 1; c <= cfg.Cycles; c++ {
			for k := 0; k < cfg.SpamPerCycle; k++ {
				src := attackerIDs[(c*cfg.SpamPerCycle+k)%len(attackerIDs)]
				it := news.New(fmt.Sprintf("spam-%d-%d", c, k), "d", "l", int64(c), src)
				it.ID = adversarialSpamBase + news.ID(spamCount)
				pubs = append(pubs, sim.Publication{Cycle: int64(c), Source: src, Item: it})
				col.RegisterItem(it.ID, 0)
				spamCount++
			}
		}
	}
	for _, id := range ids {
		col.RegisterNode(id, cfg.Cycles*itemsPerCycle/4)
	}
	// Cohort labels are identical in both cells so the per-cohort summaries
	// stay comparable: attacker beats victim beats the churn labels.
	for _, id := range attackerIDs {
		col.SetCohort(id, metrics.CohortAttacker)
	}
	if cfg.PartitionK >= 2 {
		for _, id := range honestIDs {
			if int(id)%cfg.PartitionK != 0 {
				col.SetCohort(id, metrics.CohortVictim)
			}
		}
	}

	var links *faultnet.Policy
	if attacked && cfg.PartitionK >= 2 {
		links = faultnet.KWayPartition(ids, cfg.PartitionK, cfg.PartitionStart, cfg.PartitionHeal)
	}

	pt := adversarialPoint{spam: spamCount, honest: len(honestIDs)}
	e := sim.New(sim.Config{
		Seed: 1, Cycles: cfg.Cycles, Workers: cfg.EngineWorkers, Shards: cfg.EngineShards,
		BootstrapDegree: 5, Publications: pubs, Links: links,
		OnDelivery: func(d core.Delivery, now int64) {
			if attackers[d.Node] {
				return
			}
			if d.Item >= adversarialSpamBase {
				pt.adv.SpamToHonest++
			} else {
				pt.adv.HamToHonest++
			}
		},
		OnCycleEnd: func(e *sim.Engine, now int64) {
			pt.timeline = append(pt.timeline, churnSample(e, now))
		},
	}, peers, col)
	e.Bootstrap()
	e.Run()

	// Poisoning drift: how much of the honest WUP neighbourhood the cohort
	// captured (plain gossip has no clustering layer — always 0).
	for _, p := range e.Peers() {
		if attackers[p.ID()] || p.WUP() == nil {
			continue
		}
		p.WUP().View().ForEach(func(d overlay.Descriptor) {
			if attackers[d.Node] {
				pt.adv.AttackerSlots++
			} else {
				pt.adv.HonestSlots++
			}
		})
	}
	pt.col = col
	pt.honestF1 = honestMicroF1(col)
	return pt
}

// AdversarialSideResult is one protocol's column of the comparison. The
// headline scores are delivery-weighted (honestMicroF1); Damage normalizes
// the drop by the clean score, because the protocols operate at very
// different baselines and an absolute delta would flatter whichever starts
// lower.
type AdversarialSideResult struct {
	Protocol   string  `json:"protocol"`
	CleanF1    float64 `json:"clean_f1"`
	AttackedF1 float64 `json:"attacked_f1"`
	// DeltaF1 is the drop: clean minus attacked honest-feed F1.
	DeltaF1 float64 `json:"delta_f1"`
	// Damage is the fraction of the clean F1 the attack destroyed.
	Damage float64 `json:"damage"`
	// MacroCleanF1/MacroAttackedF1 are the per-item macro population F1
	// (the repo's standard Collector.F1), recorded for reference.
	MacroCleanF1    float64 `json:"macro_clean_f1"`
	MacroAttackedF1 float64 `json:"macro_attacked_f1"`
	// SpamPrecision is the legitimate fraction of items delivered to honest
	// nodes under attack (1 = spam fully contained).
	SpamPrecision float64 `json:"spam_precision"`
	// SpamReach is the mean fraction of the honest population each spam
	// item reached.
	SpamReach float64 `json:"spam_reach"`
	// PoisoningDrift is the attacker share of honest WUP view slots at the
	// end of the attacked run (0 for protocols without a clustering layer).
	PoisoningDrift float64 `json:"poisoning_drift"`
	// VictimF1 is the attacked-run F1 of the honest nodes cut off by the
	// partition (0 when no partition is configured).
	VictimF1 float64 `json:"victim_f1,omitempty"`
}

// AdversarialResult is one BENCH_adversarial.json trajectory entry.
type AdversarialResult struct {
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"go"`
	MaxProcs  int    `json:"maxprocs"`

	Peers          int     `json:"peers"`
	Cycles         int     `json:"cycles"`
	Attackers      int     `json:"attackers"`
	SpamFraction   float64 `json:"spam_fraction"`
	SpamPerCycle   int     `json:"spam_per_cycle"`
	Poison         bool    `json:"poison"`
	PartitionK     int     `json:"partition_k,omitempty"`
	PartitionStart int64   `json:"partition_start,omitempty"`
	PartitionHeal  int64   `json:"partition_heal,omitempty"`
	WallMs         float64 `json:"wall_ms"`

	WUP    AdversarialSideResult `json:"wup"`
	Gossip AdversarialSideResult `json:"gossip"`
	// ResilienceGap is Gossip's normalized damage minus WhatsUp's: positive
	// means WhatsUp weathered the identical attack better.
	ResilienceGap float64 `json:"resilience_gap"`

	// Partition-heal evidence from WhatsUp's attacked timeline: how many
	// cycles links were severed, the WUP view fill floor while cut, and the
	// fill at the end of the run (recovered ≈ pre-partition levels).
	PartitionCycles     int     `json:"partition_cycles,omitempty"`
	WUPFillPartitionMin float64 `json:"wup_fill_partition_min,omitempty"`
	WUPFillEnd          float64 `json:"wup_fill_end,omitempty"`
}

// AdversarialRun executes the four cells (WhatsUp/Gossip × clean/attacked)
// and folds them into one trajectory entry.
func AdversarialRun(cfg AdversarialConfig) AdversarialResult {
	cfg = cfg.withDefaults()
	start := time.Now()
	cells := parallel(4, []func() adversarialPoint{
		func() adversarialPoint { return runAdversarialPoint(cfg, WhatsUp, false) },
		func() adversarialPoint { return runAdversarialPoint(cfg, WhatsUp, true) },
		func() adversarialPoint { return runAdversarialPoint(cfg, PlainGossip, false) },
		func() adversarialPoint { return runAdversarialPoint(cfg, PlainGossip, true) },
	})
	wall := time.Since(start)
	wupClean, wupAtk, gosClean, gosAtk := cells[0], cells[1], cells[2], cells[3]

	side := func(proto string, clean, atk adversarialPoint) AdversarialSideResult {
		s := AdversarialSideResult{
			Protocol:        proto,
			CleanF1:         clean.honestF1,
			AttackedF1:      atk.honestF1,
			MacroCleanF1:    clean.col.F1(),
			MacroAttackedF1: atk.col.F1(),
			SpamPrecision:   atk.adv.SpamPrecision(),
			PoisoningDrift:  atk.adv.PoisoningDrift(),
		}
		s.DeltaF1 = s.CleanF1 - s.AttackedF1
		if s.CleanF1 > 0 {
			s.Damage = s.DeltaF1 / s.CleanF1
		}
		if atk.spam > 0 && atk.honest > 0 {
			s.SpamReach = float64(atk.adv.SpamToHonest) / float64(atk.spam*atk.honest)
		}
		if cfg.PartitionK >= 2 {
			s.VictimF1 = atk.col.CohortSummary(metrics.CohortVictim).F1()
		}
		return s
	}

	r := AdversarialResult{
		GoVersion:      runtime.Version(),
		MaxProcs:       runtime.GOMAXPROCS(0),
		Peers:          cfg.Peers,
		Cycles:         cfg.Cycles,
		Attackers:      int(cfg.SpamFraction * float64(cfg.Peers)),
		SpamFraction:   cfg.SpamFraction,
		SpamPerCycle:   cfg.SpamPerCycle,
		Poison:         cfg.Poison,
		PartitionK:     cfg.PartitionK,
		PartitionStart: cfg.PartitionStart,
		PartitionHeal:  cfg.PartitionHeal,
		WallMs:         float64(wall.Nanoseconds()) / 1e6,
		WUP:            side("whatsup", wupClean, wupAtk),
		Gossip:         side("gossip", gosClean, gosAtk),
	}
	r.ResilienceGap = r.Gossip.Damage - r.WUP.Damage
	for _, s := range wupAtk.timeline {
		if s.PartitionsActive > 0 {
			r.PartitionCycles++
			if r.WUPFillPartitionMin == 0 || s.WUPFill < r.WUPFillPartitionMin {
				r.WUPFillPartitionMin = s.WUPFill
			}
		}
	}
	if n := len(wupAtk.timeline); n > 0 {
		r.WUPFillEnd = wupAtk.timeline[n-1].WUPFill
	}
	return r
}

// String renders the trajectory entry.
func (r AdversarialResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adversarial bench (%s, GOMAXPROCS=%d): %d peers, %d attackers (%.0f%%), %d spam/cycle, poison=%v",
		r.GoVersion, r.MaxProcs, r.Peers, r.Attackers, r.SpamFraction*100, r.SpamPerCycle, r.Poison)
	if r.PartitionK >= 2 {
		fmt.Fprintf(&b, ", %d-way partition cycles %d-%d", r.PartitionK, r.PartitionStart, r.PartitionHeal)
	}
	fmt.Fprintf(&b, "  [wall %.0f ms]\n", r.WallMs)
	row := func(s AdversarialSideResult) {
		fmt.Fprintf(&b, "  %-8s feed-F1 %.3f -> %.3f (damage %.1f%%)  spam-precision %.3f  spam-reach %.3f  drift %.3f",
			s.Protocol, s.CleanF1, s.AttackedF1, s.Damage*100, s.SpamPrecision, s.SpamReach, s.PoisoningDrift)
		if s.VictimF1 > 0 {
			fmt.Fprintf(&b, "  victim-F1 %.3f", s.VictimF1)
		}
		b.WriteString("\n")
	}
	row(r.WUP)
	row(r.Gossip)
	fmt.Fprintf(&b, "  resilience gap (gossip damage - whatsup damage): %+.3f", r.ResilienceGap)
	if r.PartitionCycles > 0 {
		fmt.Fprintf(&b, "\n  partition: %d cycles cut, WUP fill floor %.2f, end %.2f", r.PartitionCycles, r.WUPFillPartitionMin, r.WUPFillEnd)
	}
	return b.String()
}
