package experiments

import (
	"fmt"
	"strings"

	"whatsup/internal/metrics"
)

// Fig10Result reproduces Figure 10: average recall against item popularity
// for WhatsUp and CF-WUP, together with the popularity distribution of the
// survey items. WhatsUp's gain should concentrate on unpopular items
// (popularity 0 to 0.5), courtesy of the dislike path.
type Fig10Result struct {
	Dataset  string
	Buckets  int
	WhatsUp  []metrics.Bucket
	CFWup    []metrics.Bucket
	Populace int
}

// Fig10 runs the popularity analysis (fLIKE = 10, k = 19 as in Table III).
func Fig10(o Options) Fig10Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	const buckets = 10

	outs := parallel(o.Workers, []func() Outcome{
		func() Outcome {
			return Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, Workers: o.EngineWorkers})
		},
		func() Outcome {
			return Run(RunConfig{Dataset: ds, Alg: CFWup, Fanout: 19, Seed: o.Seed, Workers: o.EngineWorkers})
		},
	})
	return Fig10Result{
		Dataset:  "survey",
		Buckets:  buckets,
		WhatsUp:  outs[0].Col.RecallByPopularity(ds.Users, buckets),
		CFWup:    outs[1].Col.RecallByPopularity(ds.Users, buckets),
		Populace: ds.Users,
	}
}

// UnpopularAdvantage returns WhatsUp's average recall advantage over CF-WUP
// on items with popularity below 0.5 (the paper's headline for Figure 10).
func (r Fig10Result) UnpopularAdvantage() float64 {
	var sum float64
	n := 0
	for i := range r.WhatsUp {
		if r.WhatsUp[i].X >= 0.5 || r.WhatsUp[i].Count == 0 || r.CFWup[i].Count == 0 {
			continue
		}
		sum += r.WhatsUp[i].Y - r.CFWup[i].Y
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders recall per popularity bucket plus the distribution.
func (r Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (%s): recall vs popularity (advantage on unpopular items: %+.3f)\n",
		r.Dataset, r.UnpopularAdvantage())
	b.WriteString("  popularity  recall(WhatsUp)  recall(CF-Wup)  fraction-of-news\n")
	for i := range r.WhatsUp {
		w, c := r.WhatsUp[i], r.CFWup[i]
		if w.Count == 0 && c.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-11.2f %-16.2f %-15.2f %.3f\n", w.X, w.Y, c.Y, w.Fraction)
	}
	return b.String()
}
