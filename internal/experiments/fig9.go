package experiments

import (
	"fmt"
	"strings"

	"whatsup/internal/baselines"
	"whatsup/internal/metrics"
)

// Fig9Point is one fanout point of the centralized comparison.
type Fig9Point struct {
	Fanout    int
	Precision float64
	Recall    float64
	F1        float64
}

// Fig9Series is one system's curve.
type Fig9Series struct {
	Name   string
	Points []Fig9Point
}

// Fig9Result reproduces Figure 9: C-WhatsUp (centralized, global knowledge)
// against WhatsUp and WhatsUp-Cos on the survey dataset. Decentralization
// should cost only a few F1 points (paper: ~5%), with the centralized
// variant showing better precision and slightly lower recall (Section V-G).
type Fig9Result struct {
	Dataset string
	Series  []Fig9Series
}

// Fig9Fanouts is the paper's Figure 9 grid.
var Fig9Fanouts = []int{2, 4, 6, 8, 10, 12, 14}

// Fig9 runs the centralized-vs-decentralized comparison.
func Fig9(o Options) Fig9Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)

	type cell struct {
		name string
		pt   Fig9Point
	}
	var jobs []func() cell
	for _, f := range Fig9Fanouts {
		f := f
		jobs = append(jobs, func() cell {
			col := metrics.NewCollector()
			baselines.RunCentral(ds, baselines.CentralConfig{FLike: f}, col)
			return cell{"Centralized", Fig9Point{f, col.Precision(), col.Recall(), col.F1()}}
		})
		for _, alg := range []Algorithm{WhatsUp, WhatsUpCos} {
			alg := alg
			jobs = append(jobs, func() cell {
				out := Run(RunConfig{Dataset: ds, Alg: alg, Fanout: f, Seed: o.Seed, Workers: o.EngineWorkers})
				return cell{string(alg), Fig9Point{f, out.Col.Precision(), out.Col.Recall(), out.Col.F1()}}
			})
		}
	}
	cells := parallel(o.Workers, jobs)

	order := []string{"Centralized", string(WhatsUpCos), string(WhatsUp)}
	res := Fig9Result{Dataset: "survey", Series: make([]Fig9Series, len(order))}
	byName := make(map[string]*Fig9Series)
	for i, n := range order {
		res.Series[i] = Fig9Series{Name: n}
		byName[n] = &res.Series[i]
	}
	for _, c := range cells {
		s := byName[c.name]
		s.Points = append(s.Points, c.pt)
	}
	return res
}

// Best returns a series' best F1 point.
func (s Fig9Series) Best() Fig9Point {
	var best Fig9Point
	for _, p := range s.Points {
		if p.F1 > best.F1 {
			best = p
		}
	}
	return best
}

// String renders the three curves.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 (%s): centralized vs decentralized\n", r.Dataset)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-12s", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " f=%-2d F1=%.2f |", p.Fanout, p.F1)
		}
		best := s.Best()
		fmt.Fprintf(&b, "  best: f=%d P=%.2f R=%.2f F1=%.2f\n", best.Fanout, best.Precision, best.Recall, best.F1)
	}
	return b.String()
}
