package experiments

import (
	"fmt"
	"strings"
)

// Fig4Point is one sweep point of Figure 4: overlay connectivity at one
// fanout.
type Fig4Point struct {
	Fanout int
	// LSCC is the fraction of nodes in the largest strongly connected
	// component of the WUP-view graph at the end of the run.
	LSCC float64
	// WeakComponents is the number of weakly connected components, the
	// fragmentation figure quoted in Section V-A.
	WeakComponents int
	// ClusteringCoefficient of the overlay (≈0.15 for the WUP metric vs
	// ≈0.40 for cosine in the paper).
	ClusteringCoefficient float64
}

// Fig4Series is one algorithm's connectivity curve.
type Fig4Series struct {
	Alg    Algorithm
	Points []Fig4Point
}

// Fig4Result reproduces Figure 4: the size of the largest strongly connected
// component of the implicit social network against fanout, for the four
// algorithms on the survey dataset, plus the clustering-coefficient and
// fragmentation statistics of Section V-A.
type Fig4Result struct {
	Dataset string
	Series  []Fig4Series
}

// Fig4Fanouts is the paper's Figure 4 grid.
var Fig4Fanouts = []int{2, 3, 4, 6, 8, 10, 12}

// Fig4 runs the connectivity sweep on the survey dataset.
func Fig4(o Options) Fig4Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)

	type cell struct {
		alg Algorithm
		pt  Fig4Point
	}
	var jobs []func() cell
	for _, alg := range Fig3Algorithms {
		for _, f := range Fig4Fanouts {
			alg, f := alg, f
			jobs = append(jobs, func() cell {
				out := Run(RunConfig{Dataset: ds, Alg: alg, Fanout: f, Seed: o.Seed, Workers: o.EngineWorkers})
				g := out.Engine.WUPGraph()
				return cell{alg, Fig4Point{
					Fanout:                f,
					LSCC:                  g.LargestSCCFraction(),
					WeakComponents:        g.WeakComponents(),
					ClusteringCoefficient: g.ClusteringCoefficient(),
				}}
			})
		}
	}
	cells := parallel(o.Workers, jobs)

	res := Fig4Result{Dataset: "survey", Series: make([]Fig4Series, len(Fig3Algorithms))}
	byAlg := make(map[Algorithm]*Fig4Series)
	for i, alg := range Fig3Algorithms {
		res.Series[i] = Fig4Series{Alg: alg}
		byAlg[alg] = &res.Series[i]
	}
	for _, c := range cells {
		s := byAlg[c.alg]
		s.Points = append(s.Points, c.pt)
	}
	return res
}

// String renders the LSCC curves plus the Section V-A statistics.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s): fraction of nodes in the largest SCC vs fanout\n", r.Dataset)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-12s", s.Alg)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " f=%-2d lscc=%.2f cc=%.2f comps=%-3d |", p.Fanout, p.LSCC, p.ClusteringCoefficient, p.WeakComponents)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ConnectivityFanout returns the smallest fanout at which the LSCC covers at
// least the given fraction of nodes (0 when never reached) — the paper's
// "WUP reaches a strongly connected topology around fanout 10, cosine above
// 15" comparison.
func (s Fig4Series) ConnectivityFanout(threshold float64) int {
	for _, p := range s.Points {
		if p.LSCC >= threshold {
			return p.Fanout
		}
	}
	return 0
}
