package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/faultnet"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/sim"
)

// The hot-path benchmark family measures the per-event costs the rest of
// the system is built on (PR 3's zero-allocation work): the single-pass
// profile merge, copy-on-write clone+diverge, the versioned similarity
// cache, the full BEEP receive-liked path, and one complete gossip cycle at
// deployment-times-20 scale. The same scenario closures back both
// `go test -bench BenchmarkHotPath` and `whatsup-bench -run hotpath`, which
// serializes the measurements into BENCH_hotpath.json — the recorded perf
// trajectory the CI benchdiff gate compares against.

// HotPathConfig sizes the scenarios.
type HotPathConfig struct {
	// CyclePeers is the population of the full-cycle scenario (default 5000).
	CyclePeers int
	// CycleItems is how many items are published per cycle in the full-cycle
	// scenario (default 6; cycles beyond the pre-generated schedule of 2000
	// gossip without BEEP traffic).
	CycleItems int
	// EngineWorkers is the engine pool for the full-cycle scenario
	// (0 = serial, matching the per-point default of the experiment sweeps).
	EngineWorkers int
	// EngineShards is the slab count the sharded-cycle scenarios run with
	// (0 = 4). The plain cycle scenarios always run single-slab, so the
	// recorded trajectory keeps comparing like with like.
	EngineShards int
	// FlashCrowdPeers, when > 0, enables the large-scale flash-crowd
	// scenario at that total population (the ROADMAP's north star runs it at
	// 1_000_000). Off by default: the world needs ~10 GB of RAM per 1M peers
	// and a cycle takes tens of seconds per core, far beyond CI budgets.
	FlashCrowdPeers int
}

func (c HotPathConfig) withDefaults() HotPathConfig {
	if c.CyclePeers <= 0 {
		c.CyclePeers = 5000
	}
	if c.CycleItems <= 0 {
		c.CycleItems = 6
	}
	if c.EngineShards <= 0 {
		c.EngineShards = 4
	}
	return c
}

// NamedBench is one hot-path scenario.
type NamedBench struct {
	Name  string
	Bench func(b *testing.B)
}

// hotPathReceiver builds a steady-state node for the receive scenarios: a
// windowed user profile, seeded views, and a template item profile.
func hotPathReceiver(fLike int) (*core.Node, *profile.Profile) {
	likeAll := core.OpinionFunc(func(news.NodeID, news.ID) bool { return true })
	n := core.NewNode(1, "", core.Config{FLike: fLike, ProfileWindow: 60},
		likeAll, rand.New(rand.NewSource(7)))
	descs := make([]overlay.Descriptor, 0, 16)
	for i := news.NodeID(2); i < 18; i++ {
		p := profile.New()
		p.Set(news.ID(i), 0, 1)
		p.Set(news.ID(i+1), 0, 1)
		descs = append(descs, overlay.Descriptor{Node: i, Stamp: 0, Profile: p})
	}
	n.SeedViews(descs)
	for i := 0; i < 40; i++ {
		n.UserProfile().Set(news.ID(2000+i), int64(i), float64(i%2))
	}
	tmpl := profile.New()
	for i := 0; i < 25; i++ {
		tmpl.Set(news.ID(1990+i), int64(30+i%10), 1)
	}
	return n, tmpl
}

// hotPathProfiles builds the profile pair of the merge/clone scenarios.
func hotPathProfiles() (item, user *profile.Profile) {
	item = profile.New()
	for i := 0; i < 25; i++ {
		item.Set(news.ID(10+2*i), int64(i), 1)
	}
	user = profile.New()
	for i := 0; i < 40; i++ {
		user.Set(news.ID(3*i), int64(i), float64(i%2))
	}
	return item, user
}

// hotPathView builds the candidate set of the similarity scenarios: a view
// plus twice-capacity candidates of 20-entry profiles.
func hotPathView() (v *overlay.View, descs []overlay.Descriptor, self *profile.Profile) {
	rng := rand.New(rand.NewSource(9))
	self = profile.New()
	for i := 0; i < 20; i++ {
		self.Set(news.ID(rng.Int63n(200)), 0, float64(rng.Intn(2)))
	}
	v = overlay.NewView(10)
	descs = make([]overlay.Descriptor, 0, 20)
	for i := news.NodeID(0); i < 20; i++ {
		p := profile.New()
		for j := 0; j < 20; j++ {
			p.Set(news.ID(rng.Int63n(200)), 0, float64(rng.Intn(2)))
		}
		descs = append(descs, overlay.Descriptor{Node: i, Stamp: int64(i % 4), Profile: p})
	}
	return v, descs, self
}

// hotPathWorld builds the full-cycle scenario world. When churn is true it
// adds a sustained crash-and-rejoin trace (≈1% of the population crashing
// per cycle, back after 5) with descriptor-TTL eviction active, so the
// measured steady-state cycle exercises the whole membership path: event
// application, view wipes, bootstrap-from-online-sample and per-cycle
// eviction scans.
func hotPathWorld(cfg HotPathConfig, churn bool, links *faultnet.Policy) *sim.Engine {
	return hotPathWorldSharded(cfg, churn, links, 0)
}

func hotPathWorldSharded(cfg HotPathConfig, churn bool, links *faultnet.Policy, shards int) *sim.Engine {
	const scheduledCycles = 2000
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%4 == int(item)%4
	})
	nodeCfg := core.Config{FLike: 6, RPSViewSize: 20}.ForPopulation(cfg.CyclePeers)
	var schedule sim.ChurnSchedule
	if churn {
		nodeCfg.DescriptorTTL = 15
		schedule = sim.ChurnTrace(sim.ChurnTraceConfig{
			Seed:      7,
			Nodes:     cfg.CyclePeers,
			From:      1,
			To:        scheduledCycles,
			CrashRate: 0.01, // steady-state churn: crashers rejoin, population holds
			Downtime:  5,
		})
	}
	peers := make([]sim.Peer, cfg.CyclePeers)
	for i := 0; i < cfg.CyclePeers; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", nodeCfg, opinions,
			rand.New(rand.NewSource(1000+int64(i))))
	}
	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, scheduledCycles*cfg.CycleItems)
	for c := 1; c <= scheduledCycles; c++ {
		for k := 0; k < cfg.CycleItems; k++ {
			src := news.NodeID((c*cfg.CycleItems + k) % cfg.CyclePeers)
			it := news.New(fmt.Sprintf("hp-%d-%d", c, k), "d", "l", int64(c), src)
			it.ID = news.ID(c*cfg.CycleItems + k)
			pubs = append(pubs, sim.Publication{Cycle: int64(c), Source: src, Item: it})
			col.RegisterItem(it.ID, cfg.CyclePeers/4)
		}
	}
	for i := 0; i < cfg.CyclePeers; i++ {
		col.RegisterNode(news.NodeID(i), scheduledCycles*cfg.CycleItems/4)
	}
	e := sim.New(sim.Config{
		Seed: 1, Cycles: scheduledCycles, Workers: cfg.EngineWorkers, Shards: shards,
		BootstrapDegree: 5, Publications: pubs, Churn: schedule,
		Links: links,
	}, peers, col)
	e.Bootstrap()
	return e
}

// hotPathFlashWorld builds the large-scale flash-crowd world: a base
// population of ~15/16 of FlashCrowdPeers with the remaining sixteenth
// joining in a burst spread over four cycles from cycle 2 — breaking news
// hitting a million-peer deployment. The world runs on the sharded engine
// (slab membership, pooled cross-shard batches) with the large-scale config
// bounds applied (core.Config.ForPopulation), and publishes only two items
// per cycle so the measured cost is membership and gossip at scale rather
// than an unbounded BEEP flood.
func hotPathFlashWorld(cfg HotPathConfig) *sim.Engine {
	const scheduledCycles = 64
	const cycleItems = 2
	total := cfg.FlashCrowdPeers
	joiners := total / 16
	base := total - joiners
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%4 == int(item)%4
	})
	nodeCfg := core.Config{FLike: 6, RPSViewSize: 20, DescriptorTTL: 15}.ForPopulation(total)
	schedule := sim.FlashCrowd(2, news.NodeID(base), joiners, joiners/4)
	newPeer := func(id news.NodeID) sim.Peer {
		return core.NewNode(id, "", nodeCfg, opinions,
			rand.New(rand.NewSource(1000+int64(id))))
	}
	peers := make([]sim.Peer, base)
	for i := 0; i < base; i++ {
		peers[i] = newPeer(news.NodeID(i))
	}
	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, scheduledCycles*cycleItems)
	for c := 1; c <= scheduledCycles; c++ {
		for k := 0; k < cycleItems; k++ {
			src := news.NodeID((c*cycleItems + k) % base)
			it := news.New(fmt.Sprintf("fc-%d-%d", c, k), "d", "l", int64(c), src)
			it.ID = news.ID(c*cycleItems + k)
			pubs = append(pubs, sim.Publication{Cycle: int64(c), Source: src, Item: it})
			col.RegisterItem(it.ID, total/4)
		}
	}
	for i := 0; i < total; i++ {
		col.RegisterNode(news.NodeID(i), scheduledCycles*cycleItems/4)
	}
	e := sim.New(sim.Config{
		Seed: 1, Cycles: scheduledCycles,
		Workers: cfg.EngineWorkers, Shards: cfg.EngineShards,
		BootstrapDegree: 5, Publications: pubs, Churn: schedule,
		NewPeer: newPeer,
	}, peers, col)
	e.Bootstrap()
	return e
}

// hotPathLinks builds the faultnet-cycle policy: a straggler cohort with
// lossy slow links plus a long-lived 2-way partition, so the measured cycle
// pays the policy lookup and the stateless drop draw on every message leg.
func hotPathLinks(cfg HotPathConfig) *faultnet.Policy {
	ids := make([]news.NodeID, cfg.CyclePeers)
	for i := range ids {
		ids[i] = news.NodeID(i)
	}
	p := faultnet.Stragglers(ids, 0.2, 7, faultnet.Rule{Loss: 0.05})
	groups := make(map[news.NodeID]int, len(ids))
	for i, id := range ids {
		groups[id] = i % 2
	}
	// The window heals early: steady-state cycles still pay the schedule
	// check on every link, which is the cost being measured.
	return p.AddPartition(faultnet.Partition{Groups: groups, Start: 100, Heal: 110})
}

// HotPathBenchmarks returns the scenario list. The full-cycle world is built
// lazily on first use and then stepped, so repeated timer runs measure
// successive steady-state cycles.
func HotPathBenchmarks(cfg HotPathConfig) []NamedBench {
	cfg = cfg.withDefaults()
	var engine, churnEngine, faultEngine *sim.Engine
	var shardEngine, shardChurnEngine, flashEngine *sim.Engine
	benches := []NamedBench{
		{Name: "merge", Bench: func(b *testing.B) {
			item, user := hotPathProfiles()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := item.Clone()
				p.MergeAverage(user)
			}
		}},
		{Name: "clone-diverge", Bench: func(b *testing.B) {
			item, _ := hotPathProfiles()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := item.Clone()
				c.Set(news.ID(i), 1, 1)
			}
		}},
		{Name: "similarity-uncached", Bench: func(b *testing.B) {
			v, descs, self := hotPathView()
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				self.Set(news.ID(500+i%3), int64(i), 1) // version bump: cold cache
				v.InsertAll(descs, 99)
				v.TrimBySimilarity(rng, profile.WUP{}, self)
			}
		}},
		{Name: "similarity-cached", Bench: func(b *testing.B) {
			v, descs, self := hotPathView()
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.InsertAll(descs, 99)
				v.TrimBySimilarity(rng, profile.WUP{}, self)
			}
		}},
		{Name: "receive-liked", Bench: func(b *testing.B) {
			n, tmpl := hotPathReceiver(6)
			now := int64(60)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				now++
				n.BeginCycle(now)
				it := news.Item{ID: news.ID(1<<20 + i), Title: "t", Created: now}
				n.Receive(core.ItemMessage{Item: it, Profile: tmpl.Clone(), Hops: 1}, now)
			}
		}},
		{Name: fmt.Sprintf("cycle-%dpeers", cfg.CyclePeers), Bench: func(b *testing.B) {
			if engine == nil {
				engine = hotPathWorld(cfg, false, nil)
				engine.Step() // warm caches and scratch before measuring
				b.ResetTimer()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Step()
			}
		}},
		{Name: fmt.Sprintf("churn-cycle-%dpeers", cfg.CyclePeers), Bench: func(b *testing.B) {
			if churnEngine == nil {
				churnEngine = hotPathWorld(cfg, true, nil)
				churnEngine.Step()
				b.ResetTimer()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				churnEngine.Step()
			}
		}},
		{Name: "faultnet-cycle", Bench: func(b *testing.B) {
			if faultEngine == nil {
				faultEngine = hotPathWorld(cfg, false, hotPathLinks(cfg))
				faultEngine.Step()
				b.ResetTimer()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				faultEngine.Step()
			}
		}},
		{Name: fmt.Sprintf("sharded-cycle-%dpeers", cfg.CyclePeers), Bench: func(b *testing.B) {
			if shardEngine == nil {
				shardEngine = hotPathWorldSharded(cfg, false, nil, cfg.EngineShards)
				shardEngine.Step()
				b.ResetTimer()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shardEngine.Step()
			}
		}},
		{Name: fmt.Sprintf("sharded-churn-cycle-%dpeers", cfg.CyclePeers), Bench: func(b *testing.B) {
			if shardChurnEngine == nil {
				shardChurnEngine = hotPathWorldSharded(cfg, true, nil, cfg.EngineShards)
				shardChurnEngine.Step()
				b.ResetTimer()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shardChurnEngine.Step()
			}
		}},
	}
	if cfg.FlashCrowdPeers > 0 {
		benches = append(benches, NamedBench{
			Name: fmt.Sprintf("flash-crowd-%dpeers", cfg.FlashCrowdPeers),
			Bench: func(b *testing.B) {
				if flashEngine == nil {
					flashEngine = hotPathFlashWorld(cfg)
					flashEngine.Step() // cycle 1: steady state before the crowd hits
					b.ResetTimer()
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					flashEngine.Step() // cycles 2+: the crowd is arriving
				}
			},
		})
	}
	return benches
}

// HotPathScenario is one measured scenario of the recorded trajectory.
type HotPathScenario struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// HotPathResult is one BENCH_hotpath.json trajectory entry.
type HotPathResult struct {
	Label      string `json:"label,omitempty"`
	GoVersion  string `json:"go"`
	MaxProcs   int    `json:"maxprocs"`
	CyclePeers int    `json:"cycle_peers"`
	// EngineShards is the slab count of the sharded scenarios in this entry.
	EngineShards int `json:"engine_shards,omitempty"`
	// FlashCrowdPeers is the flash-crowd population when that scenario ran.
	FlashCrowdPeers int               `json:"flash_crowd_peers,omitempty"`
	Scenarios       []HotPathScenario `json:"scenarios"`
}

// HotPath measures every scenario with the testing harness and returns the
// trajectory entry. Wall-clock numbers are machine-dependent; allocs/op is
// the portable signal the CI gate pins.
func HotPath(cfg HotPathConfig) HotPathResult {
	cfg = cfg.withDefaults()
	r := HotPathResult{
		GoVersion:       runtime.Version(),
		MaxProcs:        runtime.GOMAXPROCS(0),
		CyclePeers:      cfg.CyclePeers,
		EngineShards:    cfg.EngineShards,
		FlashCrowdPeers: cfg.FlashCrowdPeers,
	}
	for _, nb := range HotPathBenchmarks(cfg) {
		br := testing.Benchmark(nb.Bench)
		r.Scenarios = append(r.Scenarios, HotPathScenario{
			Name:        nb.Name,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Iterations:  br.N,
		})
	}
	return r
}

// String renders the scenarios in `go test -bench` style.
func (r HotPathResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-path microbenchmarks (%s, GOMAXPROCS=%d):\n", r.GoVersion, r.MaxProcs)
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "  %-24s %12.1f ns/op %8d B/op %6d allocs/op  (n=%d)\n",
			s.Name, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.Iterations)
	}
	b.WriteString("  (serialized to the BENCH_hotpath.json trajectory by whatsup-bench -run hotpath)")
	return b.String()
}
