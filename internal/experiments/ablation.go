package experiments

import (
	"fmt"
	"strings"
)

// AblationPoint is one configuration of an ablation sweep.
type AblationPoint struct {
	Label     string
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
}

// AblationResult is a generic ablation sweep outcome.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// String renders the sweep.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation %s (survey, fLIKE=10)\n", r.Name)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-14s P=%.2f R=%.2f F1=%.2f msgs=%dk\n",
			p.Label, p.Precision, p.Recall, p.F1, p.Messages/1000)
	}
	return b.String()
}

// AblationWUPViewSize sweeps WUPvs ∈ {1,2,3}·fLIKE, validating the paper's
// choice of WUPvs = 2·fLIKE as the precision/recall sweet spot
// (Section IV-D).
func AblationWUPViewSize(o Options) AblationResult {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	factors := []int{1, 2, 3}
	jobs := make([]func() AblationPoint, len(factors))
	for i, factor := range factors {
		factor := factor
		jobs[i] = func() AblationPoint {
			out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, WUPViewFactor: factor, Workers: o.EngineWorkers})
			return AblationPoint{
				Label:     fmt.Sprintf("WUPvs=%d·fLIKE", factor),
				Precision: out.Col.Precision(),
				Recall:    out.Col.Recall(),
				F1:        out.Col.F1(),
				Messages:  out.Col.TotalMessages(),
			}
		}
	}
	return AblationResult{Name: "WUP view size", Points: parallel(o.Workers, jobs)}
}

// AblationProfileWindow sweeps the profile window between 1/10 and 1/1 of
// the run, validating the 1/5-to-2/5 sweet spot of Section IV-D.
func AblationProfileWindow(o Options) AblationResult {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	windows := []int64{
		int64(ds.Cycles / 10),
		int64(ds.Cycles / 5),
		int64(2 * ds.Cycles / 5),
		int64(ds.Cycles),
	}
	jobs := make([]func() AblationPoint, len(windows))
	for i, w := range windows {
		w := w
		jobs[i] = func() AblationPoint {
			out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, Window: w, Workers: o.EngineWorkers})
			return AblationPoint{
				Label:     fmt.Sprintf("window=%dcyc", w),
				Precision: out.Col.Precision(),
				Recall:    out.Col.Recall(),
				F1:        out.Col.F1(),
				Messages:  out.Col.TotalMessages(),
			}
		}
	}
	return AblationResult{Name: "profile window", Points: parallel(o.Workers, jobs)}
}

// AblationRPSViewSize sweeps RPSvs ∈ {10..60}; the paper reports good
// behaviour between 20 and 40 (Section IV-D).
func AblationRPSViewSize(o Options) AblationResult {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	sizes := []int{10, 20, 30, 40, 60}
	jobs := make([]func() AblationPoint, len(sizes))
	for i, s := range sizes {
		s := s
		jobs[i] = func() AblationPoint {
			out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, RPSViewSize: s, Workers: o.EngineWorkers})
			return AblationPoint{
				Label:     fmt.Sprintf("RPSvs=%d", s),
				Precision: out.Col.Precision(),
				Recall:    out.Col.Recall(),
				F1:        out.Col.F1(),
				Messages:  out.Col.TotalMessages(),
			}
		}
	}
	return AblationResult{Name: "RPS view size", Points: parallel(o.Workers, jobs)}
}
