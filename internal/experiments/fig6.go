package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Fig6Result reproduces Figure 6: how many nodes forward or become infected
// at each hop distance from the source, split by like/dislike (survey
// dataset, fLIKE = 5). The curve should be bell-shaped with most of the
// dissemination work within a few hops of the source.
type Fig6Result struct {
	Dataset string
	Fanout  int
	// Histograms indexed by hop distance, normalised per item (averages).
	ForwardByLike      map[int]float64
	ForwardByDislike   map[int]float64
	InfectionByLike    map[int]float64
	InfectionByDislike map[int]float64
	Items              int
	// MeanInfectionHops is the average hop distance of deliveries ("an
	// average around 5" in Section V-B).
	MeanInfectionHops float64
}

// Fig6 runs the hop-distance analysis.
func Fig6(o Options) Fig6Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	const fanout = 5
	out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: fanout, Seed: o.Seed, Workers: o.EngineWorkers})
	col := out.Col

	items := len(ds.Items)
	norm := func(h map[int]int) map[int]float64 {
		m := make(map[int]float64, len(h))
		for k, v := range h {
			m[k] = float64(v) / float64(items)
		}
		return m
	}
	var hopSum, hopN float64
	for h, n := range col.InfectionByLike {
		hopSum += float64(h * n)
		hopN += float64(n)
	}
	for h, n := range col.InfectionByDislike {
		hopSum += float64(h * n)
		hopN += float64(n)
	}
	mean := 0.0
	if hopN > 0 {
		mean = hopSum / hopN
	}
	return Fig6Result{
		Dataset:            "survey",
		Fanout:             fanout,
		ForwardByLike:      norm(col.ForwardByLike),
		ForwardByDislike:   norm(col.ForwardByDislike),
		InfectionByLike:    norm(col.InfectionByLike),
		InfectionByDislike: norm(col.InfectionByDislike),
		Items:              items,
		MeanInfectionHops:  mean,
	}
}

// MaxHop returns the largest hop distance observed across all histograms.
func (r Fig6Result) MaxHop() int {
	maxHop := 0
	for _, m := range []map[int]float64{r.ForwardByLike, r.ForwardByDislike, r.InfectionByLike, r.InfectionByDislike} {
		for h := range m {
			if h > maxHop {
				maxHop = h
			}
		}
	}
	return maxHop
}

// String renders the four curves, one row per hop.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (%s, fLIKE=%d): per-item nodes vs hops (mean infection hop %.1f)\n",
		r.Dataset, r.Fanout, r.MeanInfectionHops)
	b.WriteString("  hop  fwd-like  infect-like  fwd-dislike  infect-dislike\n")
	hops := make([]int, 0, r.MaxHop()+1)
	for h := 0; h <= r.MaxHop(); h++ {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	for _, h := range hops {
		fmt.Fprintf(&b, "  %-4d %-9.2f %-12.2f %-12.2f %-14.2f\n",
			h, r.ForwardByLike[h], r.InfectionByLike[h], r.ForwardByDislike[h], r.InfectionByDislike[h])
	}
	return b.String()
}
