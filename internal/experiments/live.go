package experiments

import (
	"fmt"
	"strings"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/metrics"
)

// LiveRunConfig tunes the live-transport scenario of cmd/whatsup-bench: one
// deployment-sized run over a real transport, reporting quality together
// with bandwidth measured from the encoded bytes on the wire.
type LiveRunConfig struct {
	// Transport selects the network: "channel" (ModelNet-style in-memory
	// emulation) or "tcp" (PlanetLab-style loopback sockets).
	Transport string
	// Cycles per run (default 40) and CycleLength (default 15 ms).
	Cycles      int
	CycleLength time.Duration
	// Fanout is the BEEP like-fanout (default core.DefaultFLike).
	Fanout int
	// LossRate is the channel transport's uniform loss (default 2%;
	// negative runs lossless).
	LossRate float64
	// BatchWindow is the TCP transport's write-coalescing window.
	BatchWindow time.Duration
}

func (c LiveRunConfig) withDefaults() LiveRunConfig {
	if c.Transport == "" {
		c.Transport = "channel"
	}
	if c.Cycles <= 0 {
		c.Cycles = 40
	}
	if c.CycleLength <= 0 {
		c.CycleLength = 15 * time.Millisecond
	}
	if c.LossRate == 0 {
		c.LossRate = 0.02
	} else if c.LossRate < 0 {
		c.LossRate = 0
	}
	return c
}

// LiveRunResult is the outcome of one live-transport run.
type LiveRunResult struct {
	Transport string
	Users     int
	Cycles    int
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
	// Wire traffic measured from encoded frame lengths, split as in
	// Figure 8b, plus the per-node bandwidth those bytes would cost at the
	// paper's 30 s deployment gossip period.
	TotalBytes  int64
	GossipBytes int64
	BeepBytes   int64
	TotalKbps   float64
}

// LiveRun executes the live-transport scenario on the deployment-sized
// survey subset (the paper's 245-user PlanetLab/ModelNet workload).
func LiveRun(o Options, cfg LiveRunConfig) (LiveRunResult, error) {
	o = o.WithDefaults()
	cfg = cfg.withDefaults()
	var network live.Network
	switch cfg.Transport {
	case "channel":
		network = live.NewChannelNet(o.Seed, cfg.LossRate, cfg.CycleLength/10)
	case "tcp":
		network = live.NewTCPNet(live.TCPNetConfig{
			SlowEvery: 4, SlowQueueCap: 96, QueueCap: 8192, BatchWindow: cfg.BatchWindow,
		})
	default:
		return LiveRunResult{}, fmt.Errorf("live: unknown transport %q (want channel or tcp)", cfg.Transport)
	}
	ds := dataset.Survey(dataset.SurveyConfig{Seed: o.Seed, Scale: o.Scale * 0.5, Cycles: cfg.Cycles})
	nodeCfg := core.Config{ProfileWindow: core.DefaultProfileWindow}
	if cfg.Fanout > 0 {
		nodeCfg.FLike = cfg.Fanout
	}
	r := live.NewRunner(live.Config{
		Seed: o.Seed, Cycles: cfg.Cycles, CycleLength: cfg.CycleLength, NodeConfig: nodeCfg,
	}, ds, network)
	r.Run()
	col := r.Collector()
	const cycleSeconds = 30 // deployment gossip period (Section V-D)
	return LiveRunResult{
		Transport:   cfg.Transport,
		Users:       ds.Users,
		Cycles:      cfg.Cycles,
		Precision:   col.Precision(),
		Recall:      col.Recall(),
		F1:          col.F1(),
		Messages:    col.TotalMessages(),
		TotalBytes:  col.TotalBytes(),
		GossipBytes: col.GossipBytes(),
		BeepBytes:   col.Bytes(metrics.MsgBeep),
		TotalKbps:   metrics.KbpsPerNode(col.TotalBytes(), cfg.Cycles, cycleSeconds, ds.Users),
	}, nil
}

// String renders the run in the style of the paper's deployment tables.
func (r LiveRunResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live transport run: %s (%d users, %d cycles)\n", r.Transport, r.Users, r.Cycles)
	fmt.Fprintf(&b, "  precision %.3f  recall %.3f  F1 %.3f\n", r.Precision, r.Recall, r.F1)
	fmt.Fprintf(&b, "  messages %d  wire bytes %d (gossip %d, beep %d)\n",
		r.Messages, r.TotalBytes, r.GossipBytes, r.BeepBytes)
	fmt.Fprintf(&b, "  ≈ %.2f kbps per node at the deployment's 30 s cycle (Fig. 8b scale)",
		r.TotalKbps)
	return b.String()
}
