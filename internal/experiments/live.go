package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// LiveRunConfig tunes the live-transport scenario of cmd/whatsup-bench: one
// deployment-sized run over a real transport, reporting quality together
// with bandwidth measured from the encoded bytes on the wire. With ChurnRate
// or FlashCrowd set it becomes the live churn scenario — the same schedule
// shapes as ChurnRun, applied by the runtime's membership controller at
// cycle-tick boundaries — and the result gains per-cohort quality splits and
// the end-of-run ghost-descriptor fraction.
type LiveRunConfig struct {
	// ChurnOptions are the shared churn-protocol knobs (rate, flash crowd,
	// downtime, eviction horizon, departure notices, refill), applied when
	// churn is enabled. The churn window is sized so the last departure
	// sits at least one horizon plus one downtime before the end of the
	// run, so a healthy run ends ghost-free.
	ChurnOptions

	// Transport selects the network: "channel" (ModelNet-style in-memory
	// emulation) or "tcp" (PlanetLab-style loopback sockets).
	Transport string
	// Cycles per run (default 40) and CycleLength (default 15 ms).
	Cycles      int
	CycleLength time.Duration
	// Fanout is the BEEP like-fanout (default core.DefaultFLike).
	Fanout int
	// LossRate is the channel transport's uniform loss (default 2%;
	// negative runs lossless).
	LossRate float64
	// BatchWindow is the TCP transport's write-coalescing window.
	BatchWindow time.Duration
	// SchedulerSlack is the extra margin, in cycles, between the close of
	// the churn window and the point one horizon+downtime before the run
	// end, absorbing wall-clock tick jitter on loaded machines. 0 derives
	// a default from the run length and available parallelism.
	SchedulerSlack int64
}

func (c LiveRunConfig) withDefaults() LiveRunConfig {
	c.ChurnOptions = c.ChurnOptions.withDefaults(5)
	if c.Transport == "" {
		c.Transport = "channel"
	}
	if c.Cycles <= 0 {
		c.Cycles = 40
	}
	if c.CycleLength <= 0 {
		c.CycleLength = 15 * time.Millisecond
	}
	if c.LossRate == 0 {
		c.LossRate = 0.02
	} else if c.LossRate < 0 {
		c.LossRate = 0
	}
	return c
}

// schedulerSlack is the closing margin of the churn window in cycles. Live
// runs tick on a wall clock, so a loaded machine can stretch late cycles;
// the margin grows with run length and widens when the runtime has a single
// scheduler thread (the configuration that showed stretched ticks in CI).
func (c LiveRunConfig) schedulerSlack() int64 {
	if c.SchedulerSlack > 0 {
		return c.SchedulerSlack
	}
	slack := 3 + int64(c.Cycles/16)
	if runtime.GOMAXPROCS(0) == 1 {
		slack += 2
	}
	return slack
}

// churnWindow bounds the trace-churn cycles [from, to): opening a quarter
// into the run and closing at least DescriptorTTL + Downtime +
// schedulerSlack cycles before the end, so every departure has a full
// eviction horizon (plus rejoin downtime and tick jitter) to heal before
// GhostEndFraction is measured.
func (c LiveRunConfig) churnWindow() (from, to int64) {
	from = int64(c.Cycles / 4)
	to = int64(c.Cycles) - c.DescriptorTTL - c.Downtime - c.schedulerSlack()
	if to <= from {
		to = from + 1
	}
	return from, to
}

// churned reports whether the config enables the churn scenario.
func (c LiveRunConfig) churned() bool { return c.ChurnRate > 0 || c.FlashCrowd > 0 }

// LiveRunResult is the outcome of one live-transport run.
type LiveRunResult struct {
	Transport string
	Users     int
	Cycles    int
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
	// Wire traffic measured from encoded frame lengths, split as in
	// Figure 8b, plus the per-node bandwidth those bytes would cost at the
	// paper's 30 s deployment gossip period.
	TotalBytes  int64
	GossipBytes int64
	BeepBytes   int64
	TotalKbps   float64

	// Churn-scenario fields (zero when the fleet was static).
	Joiners     int
	Events      int
	FinalOnline int
	// Per-cohort node-level splits, mirroring ChurnRun.
	Stable, Joiner, Rejoiner, Departed metrics.CohortSummary
	// GhostEndFraction is the fraction of descriptors in online views that
	// point at a non-online member when the run ends; the schedule leaves at
	// least one eviction horizon after the last departure, so a healthy run
	// reports 0.
	GhostEndFraction float64
	// Timeline holds the fleet's per-cycle health samples (online counts,
	// ghost fraction, view fills, cohorts), published by the runtime's
	// control channel while the run was live.
	Timeline []metrics.ChurnSample
	// LastDeparture, HealedAt and TimeToHealed mirror ChurnRun: the cycle
	// of the last leave/crash, the first ghost-free cycle at or after it
	// (-1 if the run never healed), and the gap between the two.
	LastDeparture int64
	HealedAt      int64
	TimeToHealed  int64
}

// liveChurnSchedule builds the churn schedule for a live run: trace churn
// across the middle of the run, closed one TTL horizon plus one downtime
// before the end so the run itself proves self-healing, plus a flash crowd
// one third in.
func liveChurnSchedule(o Options, cfg LiveRunConfig, users int) sim.ChurnSchedule {
	churnFrom, churnTo := cfg.churnWindow()
	var schedule sim.ChurnSchedule
	if cfg.ChurnRate > 0 {
		perCycle := cfg.ChurnRate / float64(churnTo-churnFrom)
		schedule.Merge(sim.ChurnTrace(sim.ChurnTraceConfig{
			Seed:      o.Seed + 7717,
			Nodes:     users,
			From:      churnFrom,
			To:        churnTo,
			CrashRate: perCycle / 2,
			LeaveRate: perCycle / 2,
			Downtime:  cfg.Downtime,
		}))
	}
	if cfg.FlashCrowd > 0 {
		perCycle := (cfg.FlashCrowd + 4) / 5
		schedule.Merge(sim.FlashCrowd(int64(cfg.Cycles/3), news.NodeID(users), cfg.FlashCrowd, perCycle))
	}
	return schedule
}

// LiveRun executes the live-transport scenario on the deployment-sized
// survey subset (the paper's 245-user PlanetLab/ModelNet workload).
func LiveRun(o Options, cfg LiveRunConfig) (LiveRunResult, error) {
	o = o.WithDefaults()
	cfg = cfg.withDefaults()
	var network live.Network
	switch cfg.Transport {
	case "channel":
		network = live.NewChannelNet(o.Seed, cfg.LossRate, cfg.CycleLength/10)
	case "tcp":
		network = live.NewTCPNet(live.TCPNetConfig{
			SlowEvery: 4, SlowQueueCap: 96, QueueCap: 8192, BatchWindow: cfg.BatchWindow,
		})
	default:
		return LiveRunResult{}, fmt.Errorf("live: unknown transport %q (want channel or tcp)", cfg.Transport)
	}
	ds := dataset.Survey(dataset.SurveyConfig{Seed: o.Seed, Scale: o.Scale * 0.5, Cycles: cfg.Cycles})
	nodeCfg := core.Config{ProfileWindow: core.DefaultProfileWindow}
	if cfg.Fanout > 0 {
		nodeCfg.FLike = cfg.Fanout
	}

	liveCfg := live.Config{
		Seed: o.Seed, Cycles: cfg.Cycles, CycleLength: cfg.CycleLength, NodeConfig: nodeCfg,
	}
	var schedule sim.ChurnSchedule
	op := churnOpinions{base: ds.Opinions(), n: ds.Users}
	if cfg.churned() {
		// Churn needs self-healing views: thread the eviction horizon into
		// every node's config, and the schedule + joiner factory into the
		// runtime's membership controller.
		liveCfg.NodeConfig.DescriptorTTL = cfg.DescriptorTTL
		liveCfg.DepartureNotices = cfg.DepartureNotices
		liveCfg.RefillWatermark = cfg.RefillWatermark
		liveCfg.Timeline = true
		schedule = liveChurnSchedule(o, cfg, ds.Users)
		liveCfg.Churn = schedule
		liveCfg.NewNode = func(id news.NodeID, rng *rand.Rand) *core.Node {
			return core.NewNode(id, "", liveCfg.NodeConfig, op, rng)
		}
	}

	r := live.NewRunner(liveCfg, ds, network)
	col := r.Collector()
	// Register the flash-crowd joiners: mapped interests, join-time-aware
	// recall denominators, and churn cohort labels — the same bookkeeping
	// ChurnRun performs for the simulator.
	joinCycles := joinCyclesOf(schedule)
	if len(joinCycles) > 0 {
		// Each item's interested-denominator grows by the joiners that like
		// it, so item recall stays <= 1 with the crowd counted in. Safe to
		// re-register here: the fleet has not started, nothing was delivered.
		for i := range ds.Items {
			it := ds.Items[i]
			interested := it.Interested
			for id := range joinCycles {
				if op.Likes(id, it.News.ID) {
					interested++
				}
			}
			if ds.IsWarmup(i) {
				col.RegisterWarmupItem(it.News.ID, interested)
			} else {
				col.RegisterItem(it.News.ID, interested)
			}
		}
	}
	for id, joined := range joinCycles {
		col.RegisterNode(id, ds.UserInterestCount(mapJoiner(id, ds.Users)))
		col.SetEligibleInterested(id, eligibleInterests(ds, op, id, joined))
	}
	for id, c := range CohortsFromSchedule(schedule) {
		col.SetCohort(id, c)
	}

	r.Run()
	const cycleSeconds = 30 // deployment gossip period (Section V-D)
	res := LiveRunResult{
		Transport:   cfg.Transport,
		Users:       ds.Users,
		Cycles:      cfg.Cycles,
		Precision:   col.Precision(),
		Recall:      col.Recall(),
		F1:          col.F1(),
		Messages:    col.TotalMessages(),
		TotalBytes:  col.TotalBytes(),
		GossipBytes: col.GossipBytes(),
		BeepBytes:   col.Bytes(metrics.MsgBeep),
		TotalKbps:   metrics.KbpsPerNode(col.TotalBytes(), cfg.Cycles, cycleSeconds, ds.Users),
	}
	if cfg.churned() {
		res.Joiners = cfg.FlashCrowd
		res.Events = len(schedule.Events)
		res.FinalOnline = r.OnlineCount()
		res.Stable = col.CohortSummary(metrics.CohortStable)
		res.Joiner = col.CohortSummary(metrics.CohortJoiner)
		res.Rejoiner = col.CohortSummary(metrics.CohortRejoiner)
		res.Departed = col.CohortSummary(metrics.CohortDeparted)
		res.GhostEndFraction = r.GhostFraction()
		res.Timeline = r.Timeline()
		res.LastDeparture, res.HealedAt, res.TimeToHealed = healingFrom(schedule, res.Timeline)
	}
	return res, nil
}

// healingFrom derives the healing summary from a schedule and a per-cycle
// timeline: the last departure cycle, the first ghost-free sample at or
// after it that no later ghosts invalidate, and the gap between the two
// (-1 where undefined).
func healingFrom(schedule sim.ChurnSchedule, timeline []metrics.ChurnSample) (last, healedAt, timeTo int64) {
	last, healedAt, timeTo = -1, -1, -1
	for _, ev := range schedule.Events {
		if (ev.Kind == sim.ChurnLeave || ev.Kind == sim.ChurnCrash) && ev.Cycle > last {
			last = ev.Cycle
		}
	}
	for _, s := range timeline {
		if s.GhostFraction == 0 && s.Cycle >= last && healedAt < 0 && last >= 0 {
			healedAt = s.Cycle
		} else if s.GhostFraction > 0 {
			healedAt = -1
		}
	}
	if healedAt >= 0 && last >= 0 {
		timeTo = healedAt - last
	}
	return last, healedAt, timeTo
}

// String renders the run in the style of the paper's deployment tables.
func (r LiveRunResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live transport run: %s (%d users, %d cycles)\n", r.Transport, r.Users, r.Cycles)
	fmt.Fprintf(&b, "  precision %.3f  recall %.3f  F1 %.3f\n", r.Precision, r.Recall, r.F1)
	fmt.Fprintf(&b, "  messages %d  wire bytes %d (gossip %d, beep %d)\n",
		r.Messages, r.TotalBytes, r.GossipBytes, r.BeepBytes)
	fmt.Fprintf(&b, "  ≈ %.2f kbps per node at the deployment's 30 s cycle (Fig. 8b scale)",
		r.TotalKbps)
	if r.Events > 0 {
		fmt.Fprintf(&b, "\n  churn: %d events, +%d flash-crowd joiners, %d online at end, ghost-fraction(end)=%.4f\n",
			r.Events, r.Joiners, r.FinalOnline, r.GhostEndFraction)
		fmt.Fprintf(&b, "  healing: last-departure=%s healed-at=%s time-to-healed=%s\n",
			cycleOrNone(r.LastDeparture), cycleOrNone(r.HealedAt), cyclesOrNone(r.TimeToHealed))
		b.WriteString("  cohort     nodes  precision  recall  recall*  f1     deliveries/node\n")
		for _, s := range []metrics.CohortSummary{r.Stable, r.Joiner, r.Rejoiner, r.Departed} {
			if s.Nodes == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-9s  %-5d  %-9.3f  %-6.3f  %-7.3f  %-5.3f  %.1f\n",
				s.Cohort, s.Nodes, s.Precision(), s.Recall(), s.EligibleRecall(), s.F1(), s.Dissemination())
		}
		b.WriteString("  (* join-time-aware recall: items published after the node joined)")
	}
	return b.String()
}
