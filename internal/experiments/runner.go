// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section V). Every driver is deterministic given its
// options and returns a printable result whose rows mirror the paper's.
// Sweep points (fanouts, loss rates, dataset×algorithm cells) run on a
// bounded worker pool; each point is an independent deterministic
// simulation.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"whatsup/internal/baselines"
	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/sim"

	"math/rand"
)

// Algorithm names the gossip-driven systems of the evaluation.
type Algorithm string

// The gossip-driven algorithms compared throughout Section V.
const (
	WhatsUp     Algorithm = "WhatsUp"
	WhatsUpCos  Algorithm = "WhatsUp-Cos"
	CFWup       Algorithm = "CF-Wup"
	CFCos       Algorithm = "CF-Cos"
	PlainGossip Algorithm = "Gossip"
)

// Options are shared by all experiment drivers.
type Options struct {
	// Seed drives every random choice of the experiment.
	Seed int64
	// Scale shrinks the datasets (1.0 = paper scale, Table I).
	Scale float64
	// Workers bounds the sweep-point pool (default: NumCPU).
	Workers int
	// EngineWorkers is the per-simulation engine worker pool
	// (sim.Config.Workers), forwarded to every sweep point. 0 keeps each
	// engine serial: the sweep pool already saturates the cores, and results
	// are bit-identical either way. Set it when running few, large points.
	EngineWorkers int
}

// WithDefaults fills unset options.
func (o Options) WithDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// RunConfig describes one simulation point.
type RunConfig struct {
	Dataset *dataset.Dataset
	Alg     Algorithm
	Fanout  int // fLIKE for WhatsUp variants, k for CF, f for gossip
	Seed    int64
	Loss    float64
	// TTL: 0 = paper default (4), negative = explicit 0 (Figure 5 sweep).
	TTL int
	// Window overrides the profile window (0 = default 13 cycles).
	Window int64
	// WUPViewFactor overrides WUPvs = factor·fLIKE (0 = paper's 2). Used by
	// the ablation benches.
	WUPViewFactor int
	// RPSViewSize overrides RPSvs (0 = paper's 30).
	RPSViewSize int
	// Cycles overrides the run length (0 = dataset default).
	Cycles int
	// Workers is the engine worker pool for this point (sim.Config.Workers).
	// 0 runs the engine serially — sweep points usually run many at a time,
	// so parallelism lives at the sweep level unless asked for explicitly.
	Workers int
	// Shards is the engine slab count (sim.Config.Shards, 0 = single slab).
	// Results are bit-identical for any value.
	Shards int
	// OnCycleEnd/OnDelivery are forwarded to the engine.
	OnCycleEnd func(e *sim.Engine, now int64)
	OnDelivery func(d core.Delivery, now int64)
}

// Outcome bundles a finished run.
type Outcome struct {
	Col    *metrics.Collector
	Engine *sim.Engine
	Cycles int
}

// nodeRNG derives a per-node random source from the run seed.
func nodeRNG(seed int64, node int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(node)))
}

// buildPeers constructs the peer population for an algorithm.
func buildPeers(rc RunConfig) []sim.Peer {
	ds := rc.Dataset
	op := ds.Opinions()
	peers := make([]sim.Peer, ds.Users)
	window := rc.Window
	if window == 0 {
		window = core.DefaultProfileWindow
	}
	rpsVS := rc.RPSViewSize
	for i := 0; i < ds.Users; i++ {
		id := news.NodeID(i)
		rng := nodeRNG(rc.Seed, i)
		switch rc.Alg {
		case PlainGossip:
			peers[i] = baselines.NewGossip(id, rc.Fanout, rpsVS, op, rng)
		case CFWup:
			peers[i] = baselines.NewCF(id, rc.Fanout, rpsVS, window, profile.WUP{}, op, rng)
		case CFCos:
			peers[i] = baselines.NewCF(id, rc.Fanout, rpsVS, window, profile.Cosine{}, op, rng)
		case WhatsUpCos, WhatsUp:
			metric := profile.Metric(profile.WUP{})
			if rc.Alg == WhatsUpCos {
				metric = profile.Cosine{}
			}
			cfg := core.Config{
				FLike:         rc.Fanout,
				Metric:        metric,
				DislikeTTL:    rc.TTL,
				ProfileWindow: window,
				RPSViewSize:   rpsVS,
			}
			if rc.WUPViewFactor > 0 {
				cfg.WUPViewSize = rc.WUPViewFactor * rc.Fanout
			}
			peers[i] = core.NewNode(id, "", cfg, op, rng)
		default:
			panic(fmt.Sprintf("experiments: unknown algorithm %q", rc.Alg))
		}
	}
	return peers
}

// publications converts the dataset schedule into engine publications.
func publications(ds *dataset.Dataset) []sim.Publication {
	pubs := make([]sim.Publication, 0, len(ds.Items))
	for i := range ds.Items {
		it := ds.Items[i]
		pubs = append(pubs, sim.Publication{Cycle: it.Cycle, Source: it.News.Source, Item: it.News})
	}
	return pubs
}

// register declares the workload with a collector. Items published during
// the initial transient are registered as warm-up: disseminated but not
// measured.
func register(ds *dataset.Dataset, col *metrics.Collector) {
	for i := range ds.Items {
		if ds.IsWarmup(i) {
			col.RegisterWarmupItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		} else {
			col.RegisterItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		}
	}
	for u := 0; u < ds.Users; u++ {
		col.RegisterNode(news.NodeID(u), ds.UserInterestCount(news.NodeID(u)))
	}
}

// Run executes one simulation point.
func Run(rc RunConfig) Outcome {
	ds := rc.Dataset
	cycles := rc.Cycles
	if cycles == 0 {
		cycles = ds.Cycles
	}
	workers := rc.Workers
	if workers <= 0 {
		workers = 1
	}
	peers := buildPeers(rc)
	col := metrics.NewCollector()
	register(ds, col)
	e := sim.New(sim.Config{
		Seed:         rc.Seed,
		Cycles:       cycles,
		LossRate:     rc.Loss,
		Workers:      workers,
		Shards:       rc.Shards,
		Publications: publications(ds),
		OnCycleEnd:   rc.OnCycleEnd,
		OnDelivery:   rc.OnDelivery,
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return Outcome{Col: col, Engine: e, Cycles: cycles}
}

// parallel runs jobs on a bounded pool, preserving result order. Each job is
// independent and deterministic, so concurrency does not affect results.
func parallel[T any](workers int, jobs []func() T) []T {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]T, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func() T) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = job()
		}(i, job)
	}
	wg.Wait()
	return out
}

// DatasetByName builds one of the three workloads ("synthetic", "digg",
// "survey") at the given options.
func DatasetByName(name string, o Options) *dataset.Dataset {
	return datasetByName(name, o)
}

// datasetByName builds one of the three workloads at the given options.
func datasetByName(name string, o Options) *dataset.Dataset {
	switch name {
	case "synthetic":
		return dataset.Synthetic(dataset.SyntheticConfig{Seed: o.Seed, Scale: o.Scale})
	case "digg":
		return dataset.Digg(dataset.DiggConfig{Seed: o.Seed, Scale: o.Scale})
	case "survey":
		return dataset.Survey(dataset.SurveyConfig{Seed: o.Seed, Scale: o.Scale})
	default:
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
}
