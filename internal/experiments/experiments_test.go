package experiments

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// tiny returns fast options for tests: small scale, fixed seed.
func tiny() Options { return Options{Seed: 3, Scale: 0.08, Workers: 2} }

func TestTable1(t *testing.T) {
	r := Table1(tiny())
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Users == 0 || row.News == 0 {
			t.Fatalf("empty workload row: %+v", row)
		}
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	r := Table3(tiny())
	if len(r.Rows) != 5 {
		t.Fatalf("rows=%d want 5", len(r.Rows))
	}
	gossip := r.Row("Gossip")
	whatsup := r.Row("WhatsUp")
	cfwup := r.Row("CF-Wup")
	if gossip == nil || whatsup == nil || cfwup == nil {
		t.Fatal("missing rows")
	}
	// Homogeneous gossip floods: highest recall, low precision.
	if gossip.Recall < whatsup.Recall-0.05 {
		t.Fatalf("gossip recall %v must be at least WhatsUp's %v", gossip.Recall, whatsup.Recall)
	}
	if gossip.Precision > whatsup.Precision {
		t.Fatalf("gossip precision %v must not beat WhatsUp %v", gossip.Precision, whatsup.Precision)
	}
	// WhatsUp's headline: competitive F1 at the lowest message budget among
	// the similarity-driven competitors (gossip at f=4 can be cheaper at
	// tiny test scales; at paper scale it costs ~2× WhatsUp).
	for _, name := range []string{"CF-Cos", "CF-Wup", "WhatsUp-Cos"} {
		row := r.Row(name)
		if whatsup.MsgsPerUser > row.MsgsPerUser {
			t.Fatalf("WhatsUp (%0.f msgs/user) must be cheapest, %s costs %0.f",
				whatsup.MsgsPerUser, name, row.MsgsPerUser)
		}
	}
}

func TestTable4DislikePathContributes(t *testing.T) {
	r := Table4(tiny())
	if len(r.Fractions) != 5 {
		t.Fatalf("fractions=%d want 5", len(r.Fractions))
	}
	if r.Fractions[0] < 0.3 {
		t.Fatalf("most liked deliveries arrive without dislike forwards, got %v", r.Fractions[0])
	}
	if r.ViaDislikeShare() <= 0 {
		t.Fatal("the dislike path must contribute some deliveries")
	}
}

func TestTable5Shapes(t *testing.T) {
	r := Table5(tiny())
	pubsub := r.Row("survey", "C-Pub/Sub")
	wuSurvey := r.Row("survey", "WhatsUp")
	cascade := r.Row("digg", "Cascade")
	wuDigg := r.Row("digg", "WhatsUp")
	if pubsub == nil || wuSurvey == nil || cascade == nil || wuDigg == nil {
		t.Fatal("missing Table V rows")
	}
	if pubsub.Recall < 0.999 {
		t.Fatalf("C-Pub/Sub recall must be 1, got %v", pubsub.Recall)
	}
	if pubsub.Messages >= wuSurvey.Messages {
		t.Fatal("C-Pub/Sub must be cheaper than WhatsUp")
	}
	if cascade.Recall >= wuDigg.Recall {
		t.Fatalf("cascade recall %v must trail WhatsUp %v", cascade.Recall, wuDigg.Recall)
	}
}

func TestTable6LossShape(t *testing.T) {
	r := Table6(tiny())
	if len(r.Cells) != len(Table6LossRates)*len(Table6Fanouts) {
		t.Fatalf("cells=%d", len(r.Cells))
	}
	clean6 := r.Cell(0, 6)
	mid6 := r.Cell(0.20, 6)
	heavy6 := r.Cell(0.50, 6)
	if clean6 == nil || mid6 == nil || heavy6 == nil {
		t.Fatal("missing cells")
	}
	// Robustness headline: 20% loss barely moves F1 at fanout 6; 50% hurts.
	if mid6.F1 < clean6.F1-0.15 {
		t.Fatalf("20%% loss should be mostly absorbed: clean=%v lossy=%v", clean6.F1, mid6.F1)
	}
	if heavy6.F1 >= clean6.F1 {
		t.Fatalf("50%% loss must hurt: clean=%v heavy=%v", clean6.F1, heavy6.F1)
	}
}

func TestFig3SeriesComplete(t *testing.T) {
	r := Fig3("survey", tiny())
	if len(r.Series) != 4 {
		t.Fatalf("series=%d want 4", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) != len(fig3Fanouts("survey")) {
			t.Fatalf("%s has %d points", s.Alg, len(s.Points))
		}
		if _, best := s.BestF1(); best == 0 {
			t.Fatalf("%s never scores", s.Alg)
		}
	}
}

func TestFig4LSCCGrowsWithFanout(t *testing.T) {
	r := Fig4(tiny())
	for _, s := range r.Series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.LSCC < first.LSCC-0.1 {
			t.Fatalf("%s connectivity should not shrink with fanout: %v -> %v", s.Alg, first.LSCC, last.LSCC)
		}
	}
}

func TestFig5TTLRecallMonotoneish(t *testing.T) {
	r := Fig5(tiny())
	if len(r.Points) != len(Fig5TTLs) {
		t.Fatalf("points=%d", len(r.Points))
	}
	ttl0, ttl4 := r.Points[0], r.Points[3]
	if ttl4.Recall < ttl0.Recall-0.02 {
		t.Fatalf("recall with TTL4 (%v) must not trail TTL0 (%v)", ttl4.Recall, ttl0.Recall)
	}
}

func TestFig6BellShape(t *testing.T) {
	r := Fig6(tiny())
	if r.MeanInfectionHops <= 0 {
		t.Fatal("mean infection hops must be positive")
	}
	if len(r.InfectionByLike) == 0 {
		t.Fatal("no like infections recorded")
	}
	if r.MaxHop() == 0 {
		t.Fatal("dissemination must travel beyond the source")
	}
}

func TestFig7JoinerConverges(t *testing.T) {
	o := tiny()
	r := Fig7(o, Fig7Config{Trials: 1, EventCycle: 15, TotalCycles: 40, Window: 10})
	if r.WhatsUp.JoinConvergence < 0 {
		t.Fatal("joiner must converge under the WUP metric in the test horizon")
	}
	if len(r.WhatsUp.RefSim) != 40 || len(r.Cosine.RefSim) != 40 {
		t.Fatal("per-cycle samples missing")
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestFig8SimulationOnly(t *testing.T) {
	o := tiny()
	r := Fig8(o, Fig8Config{Fanouts: []int{3, 6}, Cycles: 20, SkipLive: true})
	if len(r.Points) != 2 {
		t.Fatalf("points=%d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.TotalKbps <= 0 {
			t.Fatalf("bandwidth must be accounted: %+v", p)
		}
		if p.BEEPKbps+p.WUPKbps != p.TotalKbps {
			t.Fatal("bandwidth decomposition must sum")
		}
	}
	if r.Points[1].TotalKbps <= r.Points[0].TotalKbps {
		t.Fatal("bandwidth must grow with fanout")
	}
}

func TestFig8WithLiveRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs in -short mode")
	}
	o := tiny()
	r := Fig8(o, Fig8Config{Fanouts: []int{4}, Cycles: 15, CycleLength: 3 * time.Millisecond})
	p := r.Points[0]
	if p.ModelNet == 0 && p.PlanetLab == 0 {
		t.Fatal("live runs must deliver something")
	}
}

func TestLiveRunChannelTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs in -short mode")
	}
	r, err := LiveRun(tiny(), LiveRunConfig{
		Transport: "channel", Cycles: 20, CycleLength: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages == 0 || r.TotalBytes == 0 {
		t.Fatalf("traffic must be measured: %+v", r)
	}
	if r.TotalBytes != r.GossipBytes+r.BeepBytes {
		t.Fatal("wire byte decomposition must sum")
	}
	if r.TotalKbps <= 0 {
		t.Fatal("bandwidth must be derived from wire bytes")
	}
	for _, want := range []string{"channel", "kbps", "wire bytes"} {
		if !strings.Contains(r.String(), want) {
			t.Fatalf("rendering missing %q:\n%s", want, r)
		}
	}
}

func TestLiveRunTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs in -short mode")
	}
	r, err := LiveRun(tiny(), LiveRunConfig{
		Transport: "tcp", Cycles: 20, CycleLength: 6 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages == 0 || r.TotalBytes == 0 {
		t.Fatalf("traffic must be measured: %+v", r)
	}
}

func TestLiveRunLosslessChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs in -short mode")
	}
	// A negative LossRate must run lossless instead of falling back to the
	// 2% default.
	r, err := LiveRun(tiny(), LiveRunConfig{
		Transport: "channel", LossRate: -1, Cycles: 15, CycleLength: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages == 0 {
		t.Fatal("lossless run must still gossip")
	}
}

func TestLiveRunRejectsUnknownTransport(t *testing.T) {
	if _, err := LiveRun(tiny(), LiveRunConfig{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport must error")
	}
}

// waitLiveGoroutines polls the goroutine count back to the pre-run baseline;
// the live churn machinery must not leak node, pump or writer goroutines.
func waitLiveGoroutines(t *testing.T, base int) {
	t.Helper()
	for start := time.Now(); time.Since(start) < 5*time.Second; {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked by the live run: %d > base %d", runtime.NumGoroutine(), base)
}

// liveChurnAsserts are the acceptance checks shared by both transports: the
// run completes with per-cohort metrics, membership arithmetic holds, and
// the end-of-run ghost-descriptor fraction is 0 (the schedule leaves one
// eviction horizon plus slack after the last departure).
func liveChurnAsserts(t *testing.T, r LiveRunResult, flash int) {
	t.Helper()
	if r.Events < flash {
		t.Fatalf("schedule produced %d events, want >= %d joins", r.Events, flash)
	}
	if r.Joiner.Nodes != flash {
		t.Fatalf("joiner cohort has %d nodes, want %d", r.Joiner.Nodes, flash)
	}
	if r.FinalOnline <= 0 || r.FinalOnline > r.Users+flash {
		t.Fatalf("implausible online count %d of %d+%d", r.FinalOnline, r.Users, flash)
	}
	if r.Stable.Nodes == 0 || r.Stable.Received == 0 {
		t.Fatalf("stable cohort broken: %+v", r.Stable)
	}
	if r.Joiner.EligibleInterested <= 0 || r.Joiner.EligibleInterested >= r.Joiner.Interested {
		t.Fatalf("join-aware denominator must shrink: eligible %d vs %d",
			r.Joiner.EligibleInterested, r.Joiner.Interested)
	}
	if r.Joiner.EligibleRecall() < r.Joiner.Recall() {
		t.Fatal("join-aware recall cannot be below the conservative figure")
	}
	if r.GhostEndFraction != 0 {
		t.Fatalf("online views not ghost-free at end: %v", r.GhostEndFraction)
	}
}

func TestLiveRunChurnChannelTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs in -short mode")
	}
	base := runtime.NumGoroutine()
	const flash = 6
	r, err := LiveRun(tiny(), LiveRunConfig{
		Transport: "channel", Cycles: 40, CycleLength: 4 * time.Millisecond,
		ChurnOptions: ChurnOptions{ChurnRate: 0.3, FlashCrowd: flash, DescriptorTTL: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	liveChurnAsserts(t, r, flash)
	if r.Joiner.Received == 0 {
		t.Fatal("flash-crowd joiners never received a post-join item")
	}
	for _, want := range []string{"churn:", "joiner", "recall*", "ghost-fraction(end)"} {
		if !strings.Contains(r.String(), want) {
			t.Fatalf("rendering missing %q:\n%s", want, r)
		}
	}
	waitLiveGoroutines(t, base)
}

func TestLiveRunChurnTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs in -short mode")
	}
	base := runtime.NumGoroutine()
	const flash = 4
	r, err := LiveRun(tiny(), LiveRunConfig{
		Transport: "tcp", Cycles: 40, CycleLength: 7 * time.Millisecond,
		ChurnOptions: ChurnOptions{ChurnRate: 0.25, FlashCrowd: flash, DescriptorTTL: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	liveChurnAsserts(t, r, flash)
	if r.Messages == 0 || r.TotalBytes == 0 {
		t.Fatalf("traffic must be measured: %+v", r)
	}
	waitLiveGoroutines(t, base)
}

func TestFig9CentralizedUpperBound(t *testing.T) {
	r := Fig9(tiny())
	if len(r.Series) != 3 {
		t.Fatalf("series=%d", len(r.Series))
	}
	central := r.Series[0]
	if central.Name != "Centralized" {
		t.Fatal("first series must be the centralized variant")
	}
	if central.Best().F1 == 0 {
		t.Fatal("centralized must score")
	}
}

func TestFig10PopularityBuckets(t *testing.T) {
	r := Fig10(tiny())
	nonEmpty := 0
	for _, b := range r.WhatsUp {
		if b.Count > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("popularity buckets all empty")
	}
}

func TestFig11SociabilityTrend(t *testing.T) {
	r := Fig11(tiny())
	if len(r.Buckets) == 0 {
		t.Fatal("no sociability buckets")
	}
	if r.Correlation <= -0.5 {
		t.Fatalf("sociability correlation strongly negative: %v", r.Correlation)
	}
}

func TestAblations(t *testing.T) {
	o := tiny()
	for _, r := range []AblationResult{
		AblationWUPViewSize(o),
		AblationProfileWindow(o),
		AblationRPSViewSize(o),
	} {
		if len(r.Points) < 3 {
			t.Fatalf("%s: too few points", r.Name)
		}
		for _, p := range r.Points {
			if p.F1 == 0 {
				t.Fatalf("%s %s: zero F1", r.Name, p.Label)
			}
		}
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	o := tiny()
	ds := datasetByName("survey", o)
	a := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 6, Seed: 5})
	b := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 6, Seed: 5})
	if a.Col.F1() != b.Col.F1() || a.Col.TotalMessages() != b.Col.TotalMessages() {
		t.Fatal("identical configs must reproduce identical outcomes")
	}
}

func TestChurnRunCohortsAndHealing(t *testing.T) {
	r := ChurnRun(tiny(), ChurnConfig{
		ChurnOptions: ChurnOptions{FlashCrowd: 10, ChurnRate: 0.25},
		Dataset:      "survey",
		Fanout:       6,
	})
	if r.Events == 0 {
		t.Fatal("churn scenario produced no membership events")
	}
	if r.Joiner.Nodes == 0 {
		t.Fatal("flash-crowd joiners missing from the joiner cohort")
	}
	if r.Stable.Nodes == 0 {
		t.Fatal("stable cohort empty")
	}
	if r.Stable.Received == 0 {
		t.Fatal("stable peers received nothing; the run is broken")
	}
	if r.Joiner.Received == 0 {
		t.Fatal("joiners never received an item after cold start")
	}
	if r.FinalOnline <= 0 || r.FinalOnline > r.BaseUsers+r.Joiners {
		t.Fatalf("implausible online count %d", r.FinalOnline)
	}
	if len(r.GhostFraction) != r.Cycles {
		t.Fatalf("ghost fraction sampled %d times, want %d", len(r.GhostFraction), r.Cycles)
	}
	// Self-healing: by the end of the run (eviction horizon past the last
	// departure) the online views must be ghost-free.
	if last := r.GhostFraction[len(r.GhostFraction)-1]; last != 0 {
		t.Fatalf("views never healed: final ghost fraction %v", last)
	}
	if r.LastDeparture >= 0 && r.HealedAt < 0 {
		t.Fatal("healing cycle not detected despite departures")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty render")
	}
}

func TestChurnRunDeterministicAcrossEngineWorkers(t *testing.T) {
	run := func(workers int) ChurnResult {
		return ChurnRun(tiny(), ChurnConfig{
			ChurnOptions: ChurnOptions{FlashCrowd: 8, ChurnRate: 0.2},
			Dataset:      "survey", Fanout: 6, Workers: workers,
		})
	}
	a, b := run(1), run(4)
	if a.F1 != b.F1 || a.Recall != b.Recall || a.Precision != b.Precision {
		t.Fatalf("population metrics diverged across engine workers: %+v vs %+v", a, b)
	}
	if a.Stable != b.Stable || a.Joiner != b.Joiner || a.Rejoiner != b.Rejoiner {
		t.Fatal("cohort summaries diverged across engine workers")
	}
	if a.HealedAt != b.HealedAt {
		t.Fatalf("healing cycle diverged: %d vs %d", a.HealedAt, b.HealedAt)
	}
}

func TestCohortsFromSchedule(t *testing.T) {
	var s sim.ChurnSchedule
	s.Add(5, sim.ChurnJoin, 100)
	s.Add(6, sim.ChurnCrash, 1)
	s.Add(9, sim.ChurnRejoin, 1)
	s.Add(7, sim.ChurnCrash, 2) // never rejoins
	s.Add(8, sim.ChurnLeave, 3)
	s.Add(10, sim.ChurnJoin, 101)
	s.Add(12, sim.ChurnCrash, 101) // joiner that crashes and stays down
	// Out of slice order on purpose: the rejoin (cycle 20) is listed before
	// the crash (cycle 15); the cohort scan must order by cycle like the
	// engine does and label node 6 a rejoiner, not departed.
	s.Add(20, sim.ChurnRejoin, 6)
	s.Add(15, sim.ChurnCrash, 6)
	cohorts := CohortsFromSchedule(s)
	for id, want := range map[int]metrics.Cohort{
		100: metrics.CohortJoiner,
		1:   metrics.CohortRejoiner,
		2:   metrics.CohortDeparted,
		3:   metrics.CohortDeparted,
		101: metrics.CohortDeparted,
		6:   metrics.CohortRejoiner,
		4:   metrics.CohortStable,
	} {
		if got := cohorts[news.NodeID(id)]; got != want {
			t.Fatalf("node %d: cohort %v, want %v", id, got, want)
		}
	}
}
