package experiments

import "testing"

// TestAdversarialSpamResilience is the headline robustness regression: a 10%
// spam-publishing cohort must degrade WhatsUp's honest-cohort feed quality
// strictly less (relative to its own clean baseline) than it degrades the
// gossip baseline's — the paper's implicit-quarantine claim, measured. The
// run is the same four-cell comparison whatsup-bench -run adversarial
// records, at a reduced population.
func TestAdversarialSpamResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("four full simulations; skipped in -short")
	}
	r := AdversarialRun(AdversarialConfig{Peers: 400, Cycles: 30, SpamFraction: 0.10})

	// Sanity: the attack must actually hurt both protocols.
	if r.WUP.AttackedF1 >= r.WUP.CleanF1 {
		t.Fatalf("spam did not degrade WhatsUp: clean %.3f, attacked %.3f", r.WUP.CleanF1, r.WUP.AttackedF1)
	}
	if r.Gossip.AttackedF1 >= r.Gossip.CleanF1 {
		t.Fatalf("spam did not degrade gossip: clean %.3f, attacked %.3f", r.Gossip.CleanF1, r.Gossip.AttackedF1)
	}
	// The regression: relative damage must order strictly WUP < Gossip.
	if r.WUP.Damage >= r.Gossip.Damage {
		t.Fatalf("WhatsUp damage %.3f not strictly below gossip damage %.3f (gap %.3f)",
			r.WUP.Damage, r.Gossip.Damage, r.ResilienceGap)
	}
	if r.ResilienceGap <= 0 {
		t.Fatalf("resilience gap %.3f, want > 0", r.ResilienceGap)
	}
	// The mechanism: interest-clustered dissemination quarantines spam —
	// it reaches a much smaller honest audience than blind gossip gives it.
	if r.WUP.SpamReach >= r.Gossip.SpamReach {
		t.Fatalf("spam reach: WhatsUp %.3f not below gossip %.3f", r.WUP.SpamReach, r.Gossip.SpamReach)
	}
}
