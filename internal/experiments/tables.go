package experiments

import (
	"fmt"
	"strings"

	"whatsup/internal/baselines"
	"whatsup/internal/metrics"
)

// Table1Result reproduces Table I: the workload summary.
type Table1Result struct {
	Rows []struct {
		Name  string
		Users int
		News  int
	}
}

// Table1 builds all three workloads and summarizes them.
func Table1(o Options) Table1Result {
	o = o.WithDefaults()
	var r Table1Result
	for _, name := range []string{"synthetic", "digg", "survey"} {
		ds := datasetByName(name, o)
		r.Rows = append(r.Rows, struct {
			Name  string
			Users int
			News  int
		}{ds.Name, ds.Users, len(ds.Items)})
	}
	return r
}

// String renders the Table I rows.
func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I: workload summary\n  name       users  news\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-6d %d\n", row.Name, row.Users, row.News)
	}
	return b.String()
}

// Table3Row is one "best configuration" row of Table III.
type Table3Row struct {
	Algorithm   string
	Param       string // the tuned parameter, e.g. "fLIKE=10" or "k=19"
	Precision   float64
	Recall      float64
	F1          float64
	MsgsPerUser float64
}

// Table3Result reproduces Table III: the best performance of each approach
// on the survey dataset. WhatsUp should match WhatsUp-Cos's F1 at roughly
// half the message cost, beat both CF variants, and plain gossip should
// show near-perfect recall with the worst precision and the most messages.
type Table3Result struct {
	Dataset string
	Rows    []Table3Row
}

// Table3 runs the five best configurations of the paper.
func Table3(o Options) Table3Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)

	type spec struct {
		alg    Algorithm
		fanout int
		param  string
	}
	specs := []spec{
		{PlainGossip, 4, "f=4"},
		{CFCos, 29, "k=29"},
		{CFWup, 19, "k=19"},
		{WhatsUpCos, 24, "fLIKE=24"},
		{WhatsUp, 10, "fLIKE=10"},
	}
	jobs := make([]func() Table3Row, len(specs))
	for i, sp := range specs {
		sp := sp
		jobs[i] = func() Table3Row {
			out := Run(RunConfig{Dataset: ds, Alg: sp.alg, Fanout: sp.fanout, Seed: o.Seed, Workers: o.EngineWorkers})
			col := out.Col
			return Table3Row{
				Algorithm:   string(sp.alg),
				Param:       sp.param,
				Precision:   col.Precision(),
				Recall:      col.Recall(),
				F1:          col.F1(),
				MsgsPerUser: float64(col.TotalMessages()) / float64(ds.Users),
			}
		}
	}
	return Table3Result{Dataset: "survey", Rows: parallel(o.Workers, jobs)}
}

// Row returns the row for an algorithm name (nil if absent).
func (r Table3Result) Row(alg string) *Table3Row {
	for i := range r.Rows {
		if r.Rows[i].Algorithm == alg {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the Table III rows.
func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III (%s): best performance of each approach\n", r.Dataset)
	b.WriteString("  algorithm    param     precision recall  f1     mess./user\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %-9s %-9.2f %-7.2f %-6.2f %.1fk\n",
			row.Algorithm, row.Param, row.Precision, row.Recall, row.F1, row.MsgsPerUser/1000)
	}
	return b.String()
}

// Table4Result reproduces Table IV: among deliveries the receiver liked, the
// fraction forwarded 0..4 times by dislikers. A meaningful share above zero
// demonstrates the value of the dislike path.
type Table4Result struct {
	Dataset   string
	Fanout    int
	Fractions []float64 // index = number of dislike forwards, last bucket cumulative
}

// Table4 runs WhatsUp at fLIKE=10 and extracts the dislike histogram.
func Table4(o Options) Table4Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, Workers: o.EngineWorkers})
	return Table4Result{
		Dataset:   "survey",
		Fanout:    10,
		Fractions: out.Col.DislikeFractions(4),
	}
}

// ViaDislikeShare is the fraction of liked deliveries that needed at least
// one dislike forward (paper: 46%).
func (r Table4Result) ViaDislikeShare() float64 {
	var s float64
	for d := 1; d < len(r.Fractions); d++ {
		s += r.Fractions[d]
	}
	return s
}

// String renders the Table IV row.
func (r Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV (%s, fLIKE=%d): news received and liked via dislike\n", r.Dataset, r.Fanout)
	b.WriteString("  number of dislikes:")
	for d := range r.Fractions {
		fmt.Fprintf(&b, " %d", d)
	}
	b.WriteString("\n  fraction of news:  ")
	for _, f := range r.Fractions {
		fmt.Fprintf(&b, " %.0f%%", f*100)
	}
	fmt.Fprintf(&b, "\n  share delivered via dislike: %.0f%%\n", r.ViaDislikeShare()*100)
	return b.String()
}

// Table5Row is one system's row in Table V.
type Table5Row struct {
	Dataset   string
	Approach  string
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
}

// Table5Result reproduces Table V: WhatsUp against explicit filtering —
// cascading on Digg and the ideal C-Pub/Sub on the survey. Cascading should
// match WhatsUp's precision but with several-fold lower recall; C-Pub/Sub
// has recall 1 and minimal messages but lower precision.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 runs the four cells of Table V.
func Table5(o Options) Table5Result {
	o = o.WithDefaults()
	digg := datasetByName("digg", o)
	survey := datasetByName("survey", o)

	jobs := []func() Table5Row{
		func() Table5Row {
			col := metrics.NewCollector()
			baselines.RunCascade(digg, col)
			return Table5Row{"digg", "Cascade", col.Precision(), col.Recall(), col.F1(), col.TotalMessages()}
		},
		func() Table5Row {
			out := Run(RunConfig{Dataset: digg, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, Workers: o.EngineWorkers})
			return Table5Row{"digg", "WhatsUp", out.Col.Precision(), out.Col.Recall(), out.Col.F1(), out.Col.TotalMessages()}
		},
		func() Table5Row {
			col := metrics.NewCollector()
			baselines.RunPubSub(survey, col)
			return Table5Row{"survey", "C-Pub/Sub", col.Precision(), col.Recall(), col.F1(), col.TotalMessages()}
		},
		func() Table5Row {
			out := Run(RunConfig{Dataset: survey, Alg: WhatsUp, Fanout: 10, Seed: o.Seed, Workers: o.EngineWorkers})
			return Table5Row{"survey", "WhatsUp", out.Col.Precision(), out.Col.Recall(), out.Col.F1(), out.Col.TotalMessages()}
		},
	}
	return Table5Result{Rows: parallel(o.Workers, jobs)}
}

// Row returns the row for (dataset, approach), or nil.
func (r Table5Result) Row(dataset, approach string) *Table5Row {
	for i := range r.Rows {
		if r.Rows[i].Dataset == dataset && r.Rows[i].Approach == approach {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the Table V rows.
func (r Table5Result) String() string {
	var b strings.Builder
	b.WriteString("Table V: WhatsUp vs C-Pub/Sub and Cascading\n")
	b.WriteString("  dataset  approach    precision recall  f1     messages\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8s %-11s %-9.2f %-7.2f %-6.2f %dk\n",
			row.Dataset, row.Approach, row.Precision, row.Recall, row.F1, row.Messages/1000)
	}
	return b.String()
}

// Table6Cell is the outcome at one (loss, fanout) pair.
type Table6Cell struct {
	LossRate  float64
	Fanout    int
	Recall    float64
	Precision float64
	F1        float64
}

// Table6Result reproduces Table VI: performance against message loss on the
// survey workload. With fanout 6, F1 should be essentially unchanged up to
// 20% loss; with fanout 3 the smaller redundancy shows.
type Table6Result struct {
	Dataset string
	Cells   []Table6Cell
}

// Table6LossRates and Table6Fanouts are the paper's grid.
var (
	Table6LossRates = []float64{0, 0.05, 0.20, 0.50}
	Table6Fanouts   = []int{3, 6}
)

// Table6 runs the loss sweep. Loss affects BEEP and gossip messages alike,
// as in the ModelNet experiment of Section V-E.
func Table6(o Options) Table6Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	var jobs []func() Table6Cell
	for _, loss := range Table6LossRates {
		for _, f := range Table6Fanouts {
			loss, f := loss, f
			jobs = append(jobs, func() Table6Cell {
				out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: f, Seed: o.Seed, Loss: loss, Workers: o.EngineWorkers})
				return Table6Cell{
					LossRate:  loss,
					Fanout:    f,
					Recall:    out.Col.Recall(),
					Precision: out.Col.Precision(),
					F1:        out.Col.F1(),
				}
			})
		}
	}
	return Table6Result{Dataset: "survey", Cells: parallel(o.Workers, jobs)}
}

// Cell returns the cell at (loss, fanout), or nil.
func (r Table6Result) Cell(loss float64, fanout int) *Table6Cell {
	for i := range r.Cells {
		if r.Cells[i].LossRate == loss && r.Cells[i].Fanout == fanout {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the Table VI grid.
func (r Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI (%s): performance vs message-loss rate\n", r.Dataset)
	b.WriteString("  loss   fanout recall  precision f1\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-6.0f%% %-6d %-7.2f %-9.2f %.2f\n", c.LossRate*100, c.Fanout, c.Recall, c.Precision, c.F1)
	}
	return b.String()
}
