package experiments

import (
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/news"
)

// maxReceiveLikedAllocs pins the per-receive allocation budget of the liked
// BEEP path (copy-on-write clone of the incoming item profile, one
// MergeAverage slice, the sends slice, fLIKE−1 COW clone structs, amortized
// map/profile growth). The pre-COW implementation measured ~20 allocs/op on
// this exact workload shape (entry-at-a-time AverageIn, deep clones,
// rng.Perm targets); the acceptance criterion is a ≥2× reduction, so the
// pin leaves headroom above the ~8 measured today without letting the old
// cost back in. The test lives next to hotPathReceiver so the pinned
// workload is the same scenario the BenchmarkHotPath/receive-liked CI gate
// measures — the two cannot drift apart.
const maxReceiveLikedAllocs = 10

func TestReceiveLikedAllocsPinned(t *testing.T) {
	n, tmpl := hotPathReceiver(6)
	next := int64(1 << 20)
	now := int64(60)
	receiveOne := func() {
		next++
		now++
		n.BeginCycle(now)
		it := news.Item{ID: news.ID(next), Title: "t", Created: now}
		n.Receive(core.ItemMessage{Item: it, Profile: tmpl.Clone(), Hops: 1}, now)
	}
	// Warm the scratch buffers (target sample, merge capacity) before
	// measuring, as a long-running node would be.
	for i := 0; i < 50; i++ {
		receiveOne()
	}
	avg := testing.AllocsPerRun(300, receiveOne)
	if avg > maxReceiveLikedAllocs {
		t.Fatalf("receive-liked path allocates %.1f/op, budget %d", avg, maxReceiveLikedAllocs)
	}
}
