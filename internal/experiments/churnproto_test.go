package experiments

import (
	"testing"

	"whatsup/internal/core"
)

// TestDescriptorTTLDefaultUnified is the regression for the TTL-skew bugfix:
// every churn driver must derive the same eviction-horizon default from the
// shared core constant, so quality numbers from the runtimes stay comparable.
// Since the shared ChurnOptions extraction there is only one place that
// default can live, and this pins all three embeddings of it.
func TestDescriptorTTLDefaultUnified(t *testing.T) {
	churn := ChurnConfig{}.withDefaults().DescriptorTTL
	live := LiveRunConfig{}.withDefaults().DescriptorTTL
	bench := ChurnBenchConfig{}.withDefaults().DescriptorTTL
	if churn != core.DefaultDescriptorTTL || live != core.DefaultDescriptorTTL || bench != core.DefaultDescriptorTTL {
		t.Fatalf("TTL defaults diverged: ChurnRun=%d LiveRun=%d ChurnBench=%d, all must be core.DefaultDescriptorTTL=%d",
			churn, live, bench, core.DefaultDescriptorTTL)
	}
	// An explicit TTL must survive untouched in both.
	if got := (ChurnConfig{ChurnOptions: ChurnOptions{DescriptorTTL: 9}}).withDefaults().DescriptorTTL; got != 9 {
		t.Fatalf("explicit sim TTL overridden to %d", got)
	}
	if got := (LiveRunConfig{ChurnOptions: ChurnOptions{DescriptorTTL: 9}}).withDefaults().DescriptorTTL; got != 9 {
		t.Fatalf("explicit live TTL overridden to %d", got)
	}
}

// TestChurnOptionsDriverDefaults pins the behavior each CLI relied on before
// the churn knobs were extracted into the shared ChurnOptions: the per-driver
// downtime defaults (sim 8, live 5, bench 6 — the bench's was a constant
// before), the bench's population-derived flash crowd, and negative churn
// rates clamping to a static fleet. Explicit values always win.
func TestChurnOptionsDriverDefaults(t *testing.T) {
	if got := (ChurnConfig{}).withDefaults().Downtime; got != 8 {
		t.Fatalf("ChurnRun downtime default changed: %d, want 8", got)
	}
	if got := (LiveRunConfig{}).withDefaults().Downtime; got != 5 {
		t.Fatalf("LiveRun downtime default changed: %d, want 5", got)
	}
	bench := ChurnBenchConfig{}.withDefaults()
	if bench.Downtime != 6 {
		t.Fatalf("ChurnBench downtime default changed: %d, want 6", bench.Downtime)
	}
	if bench.FlashCrowd != bench.Peers/20 {
		t.Fatalf("ChurnBench flash crowd default changed: %d, want Peers/20=%d",
			bench.FlashCrowd, bench.Peers/20)
	}
	if got := (ChurnOptions{ChurnRate: -1}).withDefaults(8).ChurnRate; got != 0 {
		t.Fatalf("negative churn rate must clamp to 0, got %v", got)
	}
	explicit := ChurnOptions{ChurnRate: 0.4, FlashCrowd: 3, Downtime: 2, DescriptorTTL: 9,
		DepartureNotices: true, RefillWatermark: 0.5}
	if got := explicit.withDefaults(8); got != explicit {
		t.Fatalf("explicit options rewritten by defaults: %+v -> %+v", explicit, got)
	}
}

// TestLiveChurnWindowClosure is the regression for the hard-coded-slack
// bugfix: for every run length the churn window must close at least one
// eviction horizon plus one downtime plus the scheduler slack before the run
// ends (unless the run is too short for any window at all, where it clamps
// to a single cycle), and the slack must be derived, never the old magic 3
// disguised as a constant for long runs.
func TestLiveChurnWindowClosure(t *testing.T) {
	for _, cycles := range []int{40, 64, 120, 400} {
		cfg := LiveRunConfig{Cycles: cycles}.withDefaults()
		from, to := cfg.churnWindow()
		if from != int64(cycles/4) {
			t.Fatalf("cycles=%d: window opens at %d, want %d", cycles, from, cycles/4)
		}
		latest := int64(cfg.Cycles) - cfg.DescriptorTTL - cfg.Downtime - cfg.schedulerSlack()
		if to > latest {
			t.Fatalf("cycles=%d: window closes at %d, later than TTL+downtime+slack bound %d",
				cycles, to, latest)
		}
		if to <= from {
			t.Fatalf("cycles=%d: window [%d,%d) is empty", cycles, from, to)
		}
		if slack := cfg.schedulerSlack(); slack < 3 {
			t.Fatalf("cycles=%d: derived slack %d below the historical floor of 3", cycles, slack)
		}
	}
	// Longer runs must get proportionally more slack (the old constant 3 did
	// not scale with run length, which is what the fix addresses).
	short := LiveRunConfig{Cycles: 40}.withDefaults()
	long := LiveRunConfig{Cycles: 400}.withDefaults()
	if long.schedulerSlack() <= short.schedulerSlack() {
		t.Fatalf("slack must grow with run length: %d cycles -> %d, %d cycles -> %d",
			short.Cycles, short.schedulerSlack(), long.Cycles, long.schedulerSlack())
	}
	// An explicit override wins over the derived value.
	if got := (LiveRunConfig{Cycles: 40, SchedulerSlack: 9}).withDefaults().schedulerSlack(); got != 9 {
		t.Fatalf("explicit SchedulerSlack overridden to %d", got)
	}
	// A run too short for any window clamps to one cycle rather than
	// producing an inverted range.
	tiny := LiveRunConfig{Cycles: 12}.withDefaults()
	if from, to := tiny.churnWindow(); to != from+1 {
		t.Fatalf("short run must clamp to a single-cycle window, got [%d,%d)", from, to)
	}
}

// TestChurnRunTimelineAndHealing exercises the sim timeline end to end on a
// tiny workload: one sample per cycle, ghost fractions mirrored between the
// legacy slice and the timeline, and the healing summary consistent.
func TestChurnRunTimelineAndHealing(t *testing.T) {
	r := ChurnRun(tiny(), ChurnConfig{
		ChurnOptions: ChurnOptions{ChurnRate: 0.2, FlashCrowd: 6,
			DepartureNotices: true, RefillWatermark: 0.5},
		Dataset: "survey", Workers: 2,
	})
	if len(r.Timeline) != r.Cycles {
		t.Fatalf("timeline has %d samples, want one per cycle (%d)", len(r.Timeline), r.Cycles)
	}
	for i, s := range r.Timeline {
		if s.GhostFraction != r.GhostFraction[i] {
			t.Fatalf("cycle %d: timeline ghost %v != legacy slice %v", s.Cycle, s.GhostFraction, r.GhostFraction[i])
		}
		if s.RPSFill < 0 || s.RPSFill > 1 || s.WUPFill < 0 || s.WUPFill > 1 {
			t.Fatalf("cycle %d: fills out of range: %+v", s.Cycle, s)
		}
		online := 0
		for _, c := range s.OnlineByCohort {
			online += c
		}
		if online != s.Online {
			t.Fatalf("cycle %d: cohort counts sum to %d, online is %d", s.Cycle, online, s.Online)
		}
	}
	if r.HealedAt >= 0 {
		if r.TimeToHealed != r.HealedAt-r.LastDeparture {
			t.Fatalf("TimeToHealed=%d, want HealedAt-LastDeparture=%d", r.TimeToHealed, r.HealedAt-r.LastDeparture)
		}
	} else if r.TimeToHealed != -1 {
		t.Fatalf("unhealed run must report TimeToHealed=-1, got %d", r.TimeToHealed)
	}
	if r.Stable.Nodes == 0 {
		t.Fatal("cohort splits missing")
	}
}

// TestChurnBenchRecordsProtocolColumns runs a miniature churn bench and pins
// the new trajectory columns: the protocol knobs are echoed, the joiner
// eligible-F1 is populated alongside the whole-trace figure, and the healing
// summary is internally consistent.
func TestChurnBenchRecordsProtocolColumns(t *testing.T) {
	r := ChurnBench(ChurnBenchConfig{
		ChurnOptions: ChurnOptions{ChurnRate: 0.2, FlashCrowd: 12,
			DepartureNotices: true, RefillWatermark: 0.5},
		Peers: 150, Cycles: 30, EngineWorkers: 2,
	})
	if !r.DepartureNotices || r.RefillWatermark != 0.5 {
		t.Fatalf("protocol knobs not echoed into the entry: %+v", r)
	}
	if r.JoinerF1 > 0 && r.JoinerEligibleF1 < r.JoinerF1 {
		t.Fatalf("eligible F1 %v below whole-trace F1 %v: the join-time denominator can only shrink",
			r.JoinerEligibleF1, r.JoinerF1)
	}
	if r.LastDeparture < 0 {
		t.Fatal("a churned bench must record a last departure")
	}
	if r.HealedAt >= 0 && r.TimeToHealed != r.HealedAt-r.LastDeparture {
		t.Fatalf("TimeToHealed=%d inconsistent with HealedAt=%d LastDeparture=%d",
			r.TimeToHealed, r.HealedAt, r.LastDeparture)
	}
	if r.GhostEndFrac != 0 {
		t.Fatalf("bench world must self-heal by the end, ghost fraction %v", r.GhostEndFrac)
	}
}
