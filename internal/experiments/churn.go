package experiments

import (
	"fmt"
	"slices"
	"strings"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/sim"
)

// This driver exercises the engine's lifecycle-aware membership layer on a
// paper workload: a flash crowd of cold-starting joiners, trace-style
// crashes with rejoins, and graceful leaves, with descriptor-TTL eviction
// keeping the surviving views free of ghosts. Quality metrics are split per
// churn cohort — the population that stayed up, the late joiners and the
// rejoiners — because a single population average hides exactly the
// dynamics a churning deployment cares about.

// ChurnConfig tunes the churn scenario. The churn-protocol knobs
// (rate, flash crowd, downtime, eviction horizon, departure notices,
// refill) live in the embedded ChurnOptions, shared with the live
// scenario and the churn bench.
type ChurnConfig struct {
	ChurnOptions
	// Dataset is the workload name (default "survey").
	Dataset string
	// Fanout is fLIKE (default 10).
	Fanout int
	// Cycles overrides the run length (0 = dataset default).
	Cycles int
	// FlashPerCycle spreads the flash crowd over several cycles
	// (0 = ceil(FlashCrowd/5), so every crowd arrives within 5 cycles).
	FlashPerCycle int
	// TTL is the dislike TTL, with the RunConfig convention: 0 = paper
	// default (4), negative = explicit 0.
	TTL int
	// Loss is the uniform message-loss rate (Table VI), on top of churn.
	Loss float64
	// Workers is the engine worker pool (0 = serial).
	Workers int
	// Shards is the engine slab count (0 = single slab); results are
	// bit-identical for any value.
	Shards int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	c.ChurnOptions = c.ChurnOptions.withDefaults(8)
	if c.Dataset == "" {
		c.Dataset = "survey"
	}
	if c.Fanout <= 0 {
		c.Fanout = 10
	}
	if c.FlashPerCycle <= 0 {
		c.FlashPerCycle = (c.FlashCrowd + 4) / 5
	}
	return c
}

// ChurnResult summarizes a churn run.
type ChurnResult struct {
	Dataset     string
	BaseUsers   int
	Joiners     int
	Cycles      int
	Events      int // scheduled membership events
	FinalOnline int

	// Whole-population quality (macro item metrics, as elsewhere).
	Precision, Recall, F1 float64

	// Per-cohort node-level splits.
	Stable, Joiner, Rejoiner, Departed metrics.CohortSummary

	// GhostFraction[i] is the fraction of descriptors in online views that
	// point at a non-online member at the end of cycle i+1.
	GhostFraction []float64
	// Timeline holds one fleet-health sample per cycle: online population,
	// ghost fraction, mean view fill and the per-cohort online counts.
	Timeline []metrics.ChurnSample
	// LastDeparture is the cycle of the last leave/crash event; HealedAt is
	// the first cycle >= LastDeparture with a ghost-free view set (-1 if
	// never healed within the run). TimeToHealed is HealedAt-LastDeparture
	// (-1 when the run never healed).
	LastDeparture int64
	HealedAt      int64
	TimeToHealed  int64
}

// churnOpinions maps joiner ids (>= base) onto base users' interests in
// round-robin, so flash-crowd joiners have trace-backed opinions.
type churnOpinions struct {
	base core.Opinions
	n    int
}

func (o churnOpinions) Likes(node news.NodeID, item news.ID) bool {
	if int(node) >= o.n {
		node = news.NodeID(int(node) % o.n)
	}
	return o.base.Likes(node, item)
}

// mapJoiner returns the base identity a joiner inherits.
func mapJoiner(id news.NodeID, base int) news.NodeID {
	if int(id) >= base {
		return news.NodeID(int(id) % base)
	}
	return id
}

// joinCyclesOf extracts each scheduled joiner's arrival cycle (the first
// ChurnJoin event for the id).
func joinCyclesOf(s sim.ChurnSchedule) map[news.NodeID]int64 {
	out := make(map[news.NodeID]int64)
	for _, ev := range s.Events {
		if ev.Kind != sim.ChurnJoin {
			continue
		}
		if c, seen := out[ev.Node]; !seen || ev.Cycle < c {
			out[ev.Node] = ev.Cycle
		}
	}
	return out
}

// eligibleInterests counts the items a joiner likes among those published at
// or after its join cycle — the join-time-aware recall denominator.
func eligibleInterests(ds *dataset.Dataset, op core.Opinions, id news.NodeID, joined int64) int {
	n := 0
	for i := range ds.Items {
		if ds.Items[i].Cycle >= joined && op.Likes(id, ds.Items[i].News.ID) {
			n++
		}
	}
	return n
}

// CohortsFromSchedule derives each node's churn cohort from the schedule:
// nodes that end up departed are CohortDeparted, nodes that rejoined at
// least once (and survived) are CohortRejoiner, scheduled joiners are
// CohortJoiner, everyone else CohortStable.
func CohortsFromSchedule(s sim.ChurnSchedule) map[news.NodeID]metrics.Cohort {
	// The engine applies events in cycle order whatever the slice order, so
	// scan a cycle-sorted copy — otherwise a schedule listing a rejoin
	// before an earlier crash would mislabel the node as departed.
	events := make([]sim.ChurnEvent, len(s.Events))
	copy(events, s.Events)
	slices.SortStableFunc(events, func(a, b sim.ChurnEvent) int {
		switch {
		case a.Cycle < b.Cycle:
			return -1
		case a.Cycle > b.Cycle:
			return 1
		default:
			return 0
		}
	})
	joined := make(map[news.NodeID]bool)
	rejoined := make(map[news.NodeID]bool)
	down := make(map[news.NodeID]bool) // offline or departed at end of trace
	gone := make(map[news.NodeID]bool)
	for _, ev := range events {
		switch ev.Kind {
		case sim.ChurnJoin:
			joined[ev.Node] = true
		case sim.ChurnCrash:
			down[ev.Node] = true
		case sim.ChurnRejoin:
			rejoined[ev.Node] = true
			down[ev.Node] = false
		case sim.ChurnLeave:
			gone[ev.Node] = true
		}
	}
	out := make(map[news.NodeID]metrics.Cohort)
	set := func(id news.NodeID, c metrics.Cohort) {
		if c > out[id] {
			out[id] = c
		}
	}
	for id := range joined {
		set(id, metrics.CohortJoiner)
	}
	for id := range rejoined {
		set(id, metrics.CohortRejoiner)
	}
	for id, d := range down {
		if d {
			set(id, metrics.CohortDeparted)
		}
	}
	for id := range gone {
		set(id, metrics.CohortDeparted)
	}
	return out
}

// ChurnRun executes the churn scenario.
func ChurnRun(o Options, cfg ChurnConfig) ChurnResult {
	o = o.WithDefaults()
	cfg = cfg.withDefaults()
	ds := datasetByName(cfg.Dataset, o)
	cycles := cfg.Cycles
	if cycles == 0 {
		cycles = ds.Cycles
	}

	op := churnOpinions{base: ds.Opinions(), n: ds.Users}
	nodeCfg := core.Config{
		FLike:         cfg.Fanout,
		DislikeTTL:    cfg.TTL,
		ProfileWindow: core.DefaultProfileWindow,
		DescriptorTTL: cfg.DescriptorTTL,
	}

	// Schedule: trace churn over the base population across the middle of
	// the run, plus a flash crowd a third in.
	churnFrom, churnTo := int64(cycles/4), int64(cycles-cycles/4)
	var schedule sim.ChurnSchedule
	if cfg.ChurnRate > 0 && churnTo > churnFrom {
		perCycle := cfg.ChurnRate / float64(churnTo-churnFrom)
		schedule.Merge(sim.ChurnTrace(sim.ChurnTraceConfig{
			Seed:      o.Seed + 7717,
			Nodes:     ds.Users,
			From:      churnFrom,
			To:        churnTo,
			CrashRate: perCycle / 2,
			LeaveRate: perCycle / 2,
			Downtime:  cfg.Downtime,
		}))
	}
	if cfg.FlashCrowd > 0 {
		schedule.Merge(sim.FlashCrowd(int64(cycles/3), news.NodeID(ds.Users), cfg.FlashCrowd, cfg.FlashPerCycle))
	}

	// Registration: base users from the trace; joiners inherit their mapped
	// identity's interest count, and each item's interested-denominator
	// grows by the joiners that like it (so item recall stays <= 1 with the
	// crowd counted in the population).
	col := metrics.NewCollector()
	joinerIDs := make([]news.NodeID, 0, cfg.FlashCrowd)
	for j := 0; j < cfg.FlashCrowd; j++ {
		joinerIDs = append(joinerIDs, news.NodeID(ds.Users+j))
	}
	for i := range ds.Items {
		it := ds.Items[i]
		interested := it.Interested
		for _, id := range joinerIDs {
			if op.Likes(id, it.News.ID) {
				interested++
			}
		}
		if ds.IsWarmup(i) {
			col.RegisterWarmupItem(it.News.ID, interested)
		} else {
			col.RegisterItem(it.News.ID, interested)
		}
	}
	for u := 0; u < ds.Users; u++ {
		col.RegisterNode(news.NodeID(u), ds.UserInterestCount(news.NodeID(u)))
	}
	joinCycles := joinCyclesOf(schedule)
	for _, id := range joinerIDs {
		col.RegisterNode(id, ds.UserInterestCount(mapJoiner(id, ds.Users)))
		// Join-time-aware recall denominator: a flash-crowd joiner can only
		// ever receive items published from its join cycle on, so the fair
		// figure counts those; the whole-trace denominator stays alongside.
		col.SetEligibleInterested(id, eligibleInterests(ds, op, id, joinCycles[id]))
	}
	for id, c := range CohortsFromSchedule(schedule) {
		col.SetCohort(id, c)
	}

	peers := make([]sim.Peer, ds.Users)
	for i := 0; i < ds.Users; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", nodeCfg, op, nodeRNG(o.Seed, i))
	}

	res := ChurnResult{
		Dataset:       cfg.Dataset,
		BaseUsers:     ds.Users,
		Joiners:       cfg.FlashCrowd,
		Cycles:        cycles,
		Events:        len(schedule.Events),
		GhostFraction: make([]float64, 0, cycles),
		LastDeparture: -1,
		HealedAt:      -1,
	}
	for _, ev := range schedule.Events {
		if (ev.Kind == sim.ChurnLeave || ev.Kind == sim.ChurnCrash) && ev.Cycle > res.LastDeparture {
			res.LastDeparture = ev.Cycle
		}
	}

	e := sim.New(sim.Config{
		Seed:             o.Seed,
		Cycles:           cycles,
		LossRate:         cfg.Loss,
		Workers:          cfg.Workers,
		Shards:           cfg.Shards,
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
		Publications:     publications(ds),
		Churn:            schedule,
		NewPeer: func(id news.NodeID) sim.Peer {
			return core.NewNode(id, "", nodeCfg, op, nodeRNG(o.Seed, int(id)))
		},
		OnCycleEnd: func(e *sim.Engine, now int64) {
			s := churnSample(e, now)
			res.GhostFraction = append(res.GhostFraction, s.GhostFraction)
			res.Timeline = append(res.Timeline, s)
			if s.GhostFraction == 0 && now >= res.LastDeparture && res.HealedAt < 0 && res.LastDeparture >= 0 {
				res.HealedAt = now
			} else if s.GhostFraction > 0 {
				res.HealedAt = -1
			}
		},
	}, peers, col)
	e.Bootstrap()
	e.Run()

	res.FinalOnline = e.OnlineCount()
	res.TimeToHealed = -1
	if res.HealedAt >= 0 && res.LastDeparture >= 0 {
		res.TimeToHealed = res.HealedAt - res.LastDeparture
	}
	res.Precision, res.Recall, res.F1 = col.Precision(), col.Recall(), col.F1()
	res.Stable = col.CohortSummary(metrics.CohortStable)
	res.Joiner = col.CohortSummary(metrics.CohortJoiner)
	res.Rejoiner = col.CohortSummary(metrics.CohortRejoiner)
	res.Departed = col.CohortSummary(metrics.CohortDeparted)
	return res
}

// ghostFraction measures the self-healing state of the overlay: the
// fraction of descriptors across online RPS and WUP views that point at a
// member that is not online.
func ghostFraction(e *sim.Engine) float64 {
	total, ghosts := 0, 0
	count := func(id news.NodeID) {
		total++
		if st, ok := e.State(id); !ok || st != sim.Online {
			ghosts++
		}
	}
	for _, p := range e.OnlinePeers() {
		if p.RPS() != nil {
			p.RPS().View().ForEach(func(d overlay.Descriptor) { count(d.Node) })
		}
		if p.WUP() != nil {
			p.WUP().View().ForEach(func(d overlay.Descriptor) { count(d.Node) })
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ghosts) / float64(total)
}

// churnSample takes one fleet-health timeline sample from engine state at
// the end of a cycle: online population, ghost fraction, mean view occupancy
// across the online fleet, and per-cohort online counts.
func churnSample(e *sim.Engine, now int64) metrics.ChurnSample {
	s := metrics.ChurnSample{Cycle: now, Online: e.OnlineCount(), Members: e.MemberCount()}
	if links := e.Links(); links != nil {
		s.PartitionsActive = links.ActivePartitions(now)
	}
	total, ghosts := 0, 0
	var rpsLen, rpsCap, wupLen, wupCap int
	count := func(d overlay.Descriptor) {
		total++
		if st, ok := e.State(d.Node); !ok || st != sim.Online {
			ghosts++
		}
	}
	col := e.Collector()
	for _, p := range e.OnlinePeers() {
		s.OnlineByCohort[col.CohortOf(p.ID())]++
		if rps := p.RPS(); rps != nil {
			v := rps.View()
			rpsLen += v.Len()
			rpsCap += v.Capacity()
			v.ForEach(count)
		}
		if wup := p.WUP(); wup != nil {
			v := wup.View()
			wupLen += v.Len()
			wupCap += v.Capacity()
			v.ForEach(count)
		}
	}
	if total > 0 {
		s.GhostFraction = float64(ghosts) / float64(total)
	}
	if rpsCap > 0 {
		s.RPSFill = float64(rpsLen) / float64(rpsCap)
	}
	if wupCap > 0 {
		s.WUPFill = float64(wupLen) / float64(wupCap)
	}
	return s
}

// String renders the churn scenario summary.
func (r ChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn scenario (%s, %d base users +%d flash-crowd joiners, %d cycles, %d events, %d online at end)\n",
		r.Dataset, r.BaseUsers, r.Joiners, r.Cycles, r.Events, r.FinalOnline)
	fmt.Fprintf(&b, "  population: precision %.3f  recall %.3f  f1 %.3f\n", r.Precision, r.Recall, r.F1)
	b.WriteString("  cohort     nodes  precision  recall  recall*  f1     f1*    deliveries/node\n")
	for _, s := range []metrics.CohortSummary{r.Stable, r.Joiner, r.Rejoiner, r.Departed} {
		if s.Nodes == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-9s  %-5d  %-9.3f  %-6.3f  %-7.3f  %-5.3f  %-5.3f  %.1f\n",
			s.Cohort, s.Nodes, s.Precision(), s.Recall(), s.EligibleRecall(), s.F1(), s.EligibleF1(), s.Dissemination())
	}
	b.WriteString("  (* join-time-aware: denominator counts only items published after the node joined)\n")
	last := 0.0
	if len(r.GhostFraction) > 0 {
		last = r.GhostFraction[len(r.GhostFraction)-1]
	}
	fmt.Fprintf(&b, "  views: ghost-fraction(end)=%.4f last-departure=%s healed-at=%s time-to-healed=%s",
		last, cycleOrNone(r.LastDeparture), cycleOrNone(r.HealedAt), cyclesOrNone(r.TimeToHealed))
	if n := len(r.Timeline); n > 0 {
		end := r.Timeline[n-1]
		fmt.Fprintf(&b, "\n  fill(end): rps=%.2f wup=%.2f", end.RPSFill, end.WUPFill)
	}
	return b.String()
}

func cycleOrNone(c int64) string {
	if c < 0 {
		return "n/a"
	}
	return fmt.Sprintf("cycle %d", c)
}

func cyclesOrNone(c int64) string {
	if c < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d cycles", c)
}
