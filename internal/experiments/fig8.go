package experiments

import (
	"fmt"
	"strings"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/metrics"
)

// Fig8Point is one fanout point of the deployment comparison.
type Fig8Point struct {
	Fanout     int
	Simulation float64 // F1 in the deterministic simulator
	ModelNet   float64 // F1 on the lossy channel emulation
	PlanetLab  float64 // F1 on TCP loopback with congested nodes
	// Figure 8b: average per-node bandwidth (simulation accounting, 30 s
	// cycles as in Section V-D).
	TotalKbps float64
	WUPKbps   float64
	BEEPKbps  float64
}

// Fig8Result reproduces Figure 8: (a) F1 under simulation, ModelNet-style
// emulation and PlanetLab-style deployment; (b) bandwidth decomposition
// against fanout. The emulation should track simulation closely; the
// PlanetLab stand-in should lag at small fanouts where congestion losses
// are not yet covered by BEEP's redundancy.
type Fig8Result struct {
	Users  int
	Points []Fig8Point
}

// Fig8Config tunes the deployment experiment.
type Fig8Config struct {
	// Fanouts to sweep (default {2,3,4,6,8,10,12} as in the paper).
	Fanouts []int
	// Cycles per run (default 40, a shorter trace as in Section V-D).
	Cycles int
	// CycleLength for the live runs (default 10 ms; the deployed prototype
	// used 30 s — only the ratio to delivery latency matters).
	CycleLength time.Duration
	// EmulationLoss is the channel-network loss rate (default 2%).
	EmulationLoss float64
	// SkipLive replaces the live measurements with zeros (used by quick
	// benches that only need the simulation series).
	SkipLive bool
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Fanouts) == 0 {
		c.Fanouts = []int{2, 3, 4, 6, 8, 10, 12}
	}
	if c.Cycles <= 0 {
		c.Cycles = 40
	}
	if c.CycleLength <= 0 {
		c.CycleLength = 15 * time.Millisecond
	}
	if c.EmulationLoss <= 0 {
		c.EmulationLoss = 0.02
	}
	return c
}

// Fig8 runs the deployment comparison on a 245-user survey subset (the
// paper deployed 245 users on 170 PlanetLab machines and a 25-node ModelNet
// cluster).
func Fig8(o Options, cfg Fig8Config) Fig8Result {
	o = o.WithDefaults()
	cfg = cfg.withDefaults()
	// Half-scale survey ≈ 240 users at Scale 1, matching the deployment.
	ds := dataset.Survey(dataset.SurveyConfig{Seed: o.Seed, Scale: o.Scale * 0.5, Cycles: cfg.Cycles})

	jobs := make([]func() Fig8Point, len(cfg.Fanouts))
	for i, f := range cfg.Fanouts {
		f := f
		jobs[i] = func() Fig8Point {
			pt := Fig8Point{Fanout: f}

			out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: f, Seed: o.Seed, Cycles: cfg.Cycles, Workers: o.EngineWorkers})
			pt.Simulation = out.Col.F1()
			const cycleSeconds = 30 // deployment gossip period (Section V-D)
			beep := out.Col.Bytes(metrics.MsgBeep)
			gossip := out.Col.GossipBytes()
			pt.BEEPKbps = metrics.KbpsPerNode(beep, cfg.Cycles, cycleSeconds, ds.Users)
			pt.WUPKbps = metrics.KbpsPerNode(gossip, cfg.Cycles, cycleSeconds, ds.Users)
			pt.TotalKbps = pt.BEEPKbps + pt.WUPKbps

			if cfg.SkipLive {
				return pt
			}
			nodeCfg := core.Config{FLike: f, ProfileWindow: core.DefaultProfileWindow}
			emu := live.NewRunner(live.Config{
				Seed: o.Seed, Cycles: cfg.Cycles, CycleLength: cfg.CycleLength, NodeConfig: nodeCfg,
			}, ds, live.NewChannelNet(o.Seed, cfg.EmulationLoss, cfg.CycleLength/10))
			emu.Run()
			pt.ModelNet = emu.Collector().F1()

			// The TCP fleet shares one machine, so give it a slower clock
			// than the in-memory emulation; congestion then comes from the
			// bounded queues of the overloaded quarter of the fleet rather
			// than from the test host's own CPU.
			plab := live.NewRunner(live.Config{
				Seed: o.Seed, Cycles: cfg.Cycles, CycleLength: 2 * cfg.CycleLength, NodeConfig: nodeCfg,
			}, ds, live.NewTCPNet(live.TCPNetConfig{SlowEvery: 4, SlowQueueCap: 96, QueueCap: 8192}))
			plab.Run()
			pt.PlanetLab = plab.Collector().F1()
			return pt
		}
	}
	// Live runs are wall-clock bound; run sweep points sequentially to keep
	// the goroutine fleets from distorting each other's timing.
	workers := 1
	if cfg.SkipLive {
		workers = o.Workers
	}
	return Fig8Result{Users: ds.Users, Points: parallel(workers, jobs)}
}

// String renders both panels of Figure 8.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (%d users): simulation vs emulation vs deployment; bandwidth\n", r.Users)
	b.WriteString("  fanout  F1(sim)  F1(modelnet)  F1(planetlab)  total-kbps  wup-kbps  beep-kbps\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-7d %-8.2f %-13.2f %-14.2f %-11.2f %-9.2f %.2f\n",
			p.Fanout, p.Simulation, p.ModelNet, p.PlanetLab, p.TotalKbps, p.WUPKbps, p.BEEPKbps)
	}
	return b.String()
}
