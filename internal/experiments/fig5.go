package experiments

import (
	"fmt"
	"strings"
)

// Fig5Point is one TTL sweep point.
type Fig5Point struct {
	TTL       int
	Precision float64
	Recall    float64
	F1        float64
}

// Fig5Result reproduces Figure 5: the impact of the dislike TTL on
// precision, recall and F1 (survey dataset, fLIKE = 10). Low TTLs should
// mostly depress recall; TTLs beyond 4 should bring no further improvement.
type Fig5Result struct {
	Dataset string
	Fanout  int
	Points  []Fig5Point
}

// Fig5TTLs is the paper's sweep grid (0 through 8).
var Fig5TTLs = []int{0, 1, 2, 4, 6, 8}

// Fig5 runs the TTL sweep.
func Fig5(o Options) Fig5Result {
	o = o.WithDefaults()
	ds := datasetByName("survey", o)
	const fanout = 10

	jobs := make([]func() Fig5Point, 0, len(Fig5TTLs))
	for _, ttl := range Fig5TTLs {
		ttl := ttl
		jobs = append(jobs, func() Fig5Point {
			cfgTTL := ttl
			if cfgTTL == 0 {
				cfgTTL = -1 // explicit zero (RunConfig convention)
			}
			out := Run(RunConfig{Dataset: ds, Alg: WhatsUp, Fanout: fanout, Seed: o.Seed, TTL: cfgTTL, Workers: o.EngineWorkers})
			return Fig5Point{
				TTL:       ttl,
				Precision: out.Col.Precision(),
				Recall:    out.Col.Recall(),
				F1:        out.Col.F1(),
			}
		})
	}
	return Fig5Result{Dataset: "survey", Fanout: fanout, Points: parallel(o.Workers, jobs)}
}

// String renders the three curves.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (%s, fLIKE=%d): impact of the dislike TTL\n", r.Dataset, r.Fanout)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  ttl=%d precision=%.3f recall=%.3f f1=%.3f\n", p.TTL, p.Precision, p.Recall, p.F1)
	}
	return b.String()
}
