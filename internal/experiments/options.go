package experiments

import "whatsup/internal/core"

// ChurnOptions are the churn-protocol knobs shared by every driver that
// exercises the lifecycle-aware membership layer — the sim churn scenario
// (ChurnConfig), the live-transport scenario (LiveRunConfig) and the churn
// bench (ChurnBenchConfig) embed it, so each knob is declared, documented
// and defaulted exactly once. Only Downtime keeps a per-driver default
// (the drivers' historical values differ), threaded through withDefaults.
type ChurnOptions struct {
	// ChurnRate is the expected fraction of the base population hit by a
	// churn event over the run (half crashes-with-rejoin, half graceful
	// leaves; the bench draws only from its own trace shape). 0 = static
	// fleet.
	ChurnRate float64
	// FlashCrowd is the number of brand-new nodes joining as a flash crowd
	// one third into the run (0 = none, except the bench, which defaults it
	// from its population). Joiners cold-start from a live host's views
	// (Section II-D).
	FlashCrowd int
	// Downtime is how many cycles a crashed node stays offline before its
	// rejoin. Zero takes the driver's historical default: 8 for the sim
	// scenario, 5 for the live scenario, 6 for the bench.
	Downtime int64
	// DescriptorTTL is the view eviction horizon in cycles (default
	// core.DefaultDescriptorTTL, shared by all drivers so quality numbers
	// from the different runtimes stay comparable).
	DescriptorTTL int64
	// DepartureNotices enables the churn protocol's graceful-departure
	// notices (sim.Config.DepartureNotices / live.Config.DepartureNotices).
	DepartureNotices bool
	// RefillWatermark enables adaptive view refill below this occupancy
	// fraction (0 = off).
	RefillWatermark float64
}

// withDefaults fills the shared churn defaults. defaultDowntime is the
// embedding driver's historical downtime, preserved so extracting the shared
// struct changed no CLI behavior.
func (c ChurnOptions) withDefaults(defaultDowntime int64) ChurnOptions {
	if c.ChurnRate < 0 {
		c.ChurnRate = 0
	}
	if c.Downtime <= 0 {
		c.Downtime = defaultDowntime
	}
	if c.DescriptorTTL <= 0 {
		c.DescriptorTTL = core.DefaultDescriptorTTL
	}
	return c
}
