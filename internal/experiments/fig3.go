package experiments

import (
	"fmt"
	"strings"
)

// Fig3Point is one sweep point of Figure 3: quality and cost at one fanout.
type Fig3Point struct {
	Fanout           int
	Precision        float64
	Recall           float64
	F1               float64
	MsgsPerCycleNode float64 // x-axis of Figures 3d-3f
	MsgsPerUser      float64 // Table III "Mess./User"
}

// Fig3Series is one algorithm's curve on one dataset.
type Fig3Series struct {
	Alg    Algorithm
	Points []Fig3Point
}

// Fig3Result reproduces Figures 3a-3f: F1-Score against fanout and against
// message cost for the four algorithms on one dataset.
type Fig3Result struct {
	Dataset string
	Users   int
	Series  []Fig3Series
}

// fig3Fanouts mirrors the paper's per-dataset fanout grids.
func fig3Fanouts(dataset string) []int {
	switch dataset {
	case "synthetic":
		return []int{5, 10, 15, 20, 25, 30, 35, 40, 45}
	case "digg":
		return []int{5, 10, 15, 20, 25}
	default: // survey
		return []int{5, 10, 15, 20, 25, 30}
	}
}

// Fig3Algorithms is the fixed algorithm set of Figure 3.
var Fig3Algorithms = []Algorithm{CFWup, CFCos, WhatsUp, WhatsUpCos}

// Fig3 runs the Figure 3 sweep on one dataset ("synthetic", "digg",
// "survey").
func Fig3(datasetName string, o Options) Fig3Result {
	o = o.WithDefaults()
	ds := datasetByName(datasetName, o)
	fanouts := fig3Fanouts(datasetName)

	type cell struct {
		alg Algorithm
		pt  Fig3Point
	}
	var jobs []func() cell
	for _, alg := range Fig3Algorithms {
		for _, f := range fanouts {
			alg, f := alg, f
			jobs = append(jobs, func() cell {
				out := Run(RunConfig{Dataset: ds, Alg: alg, Fanout: f, Seed: o.Seed, Workers: o.EngineWorkers})
				col := out.Col
				return cell{alg, Fig3Point{
					Fanout:           f,
					Precision:        col.Precision(),
					Recall:           col.Recall(),
					F1:               col.F1(),
					MsgsPerCycleNode: float64(col.TotalMessages()) / float64(out.Cycles) / float64(ds.Users),
					MsgsPerUser:      float64(col.TotalMessages()) / float64(ds.Users),
				}}
			})
		}
	}
	cells := parallel(o.Workers, jobs)

	res := Fig3Result{Dataset: datasetName, Users: ds.Users, Series: make([]Fig3Series, len(Fig3Algorithms))}
	byAlg := make(map[Algorithm]*Fig3Series)
	for i, alg := range Fig3Algorithms {
		res.Series[i] = Fig3Series{Alg: alg}
		byAlg[alg] = &res.Series[i]
	}
	for _, c := range cells {
		s := byAlg[c.alg]
		s.Points = append(s.Points, c.pt)
	}
	return res
}

// String renders the curves as the rows the paper plots.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (%s, %d users): F1 vs fanout and vs messages/cycle/node\n", r.Dataset, r.Users)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-12s", s.Alg)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " f=%-2d F1=%.2f m=%.1f |", p.Fanout, p.F1, p.MsgsPerCycleNode)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BestF1 returns the best F1 across a series' points, with its fanout.
func (s Fig3Series) BestF1() (fanout int, f1 float64) {
	for _, p := range s.Points {
		if p.F1 > f1 {
			f1, fanout = p.F1, p.Fanout
		}
	}
	return fanout, f1
}
