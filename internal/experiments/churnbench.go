package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// The churn bench measures the membership subsystem at scale: a 5k-peer
// 4-community world where 20% of the population churns (half crashes with
// rejoin, half graceful leaves) plus a flash crowd, with descriptor-TTL
// eviction active. `whatsup-bench -run churn` serializes the measurement
// into the BENCH_churn.json trajectory; the same world backs the
// `churn-cycle-*` scenario of the BenchmarkHotPath family, which the CI
// benchdiff gate pins by allocs/op.

// ChurnBenchConfig sizes the churn bench world. The churn-protocol knobs
// live in the embedded ChurnOptions, shared with ChurnRun and LiveRun;
// here ChurnRate zero means no trace churn (the flash crowd still
// arrives), so a churn-free baseline entry can be recorded — the CLI flag
// supplies the canonical 0.20 default — and FlashCrowd defaults to
// Peers/20 instead of none.
type ChurnBenchConfig struct {
	ChurnOptions
	// Peers is the base population (default 5000).
	Peers int
	// Cycles is the measured run length (default 45).
	Cycles int
	// EngineWorkers is the engine pool (0 = serial).
	EngineWorkers int
	// EngineShards is the engine slab count (0 = single slab).
	EngineShards int
}

func (c ChurnBenchConfig) withDefaults() ChurnBenchConfig {
	c.ChurnOptions = c.ChurnOptions.withDefaults(6)
	if c.Peers <= 0 {
		c.Peers = 5000
	}
	if c.Cycles <= 0 {
		c.Cycles = 45
	}
	if c.FlashCrowd <= 0 {
		c.FlashCrowd = c.Peers / 20
	}
	return c
}

// churnBenchWorld builds the bench world: peers in 4 interest communities,
// a steady publication schedule, a churn trace across the middle of the run
// and a flash crowd a third in. Returns the engine and the schedule it was
// built with.
func churnBenchWorld(cfg ChurnBenchConfig) (*sim.Engine, sim.ChurnSchedule, *metrics.Collector, *[]metrics.ChurnSample) {
	const itemsPerCycle = 6
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%4 == int(item)%4
	})
	ttl, downtime := cfg.DescriptorTTL, cfg.Downtime
	nodeCfg := core.Config{FLike: 6, RPSViewSize: 20, DescriptorTTL: ttl}
	peers := make([]sim.Peer, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", nodeCfg, opinions, nodeRNG(1, i))
	}

	// The churn window closes one eviction horizon plus one downtime before
	// the end, so the run itself proves self-healing: every crasher has
	// rejoined and every departed descriptor has aged out by the last cycle
	// (GhostEndFrac must come back 0).
	churnFrom := int64(cfg.Cycles / 5)
	churnTo := int64(cfg.Cycles) - ttl - downtime
	if churnTo <= churnFrom {
		churnTo = churnFrom + 1
	}
	perCycle := cfg.ChurnRate / float64(churnTo-churnFrom)
	schedule := sim.ChurnTrace(sim.ChurnTraceConfig{
		Seed:      99,
		Nodes:     cfg.Peers,
		From:      churnFrom,
		To:        churnTo,
		CrashRate: perCycle / 2,
		LeaveRate: perCycle / 2,
		Downtime:  downtime,
	})
	schedule.Merge(sim.FlashCrowd(int64(cfg.Cycles/3), news.NodeID(cfg.Peers), cfg.FlashCrowd, cfg.FlashCrowd/5+1))

	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, cfg.Cycles*itemsPerCycle)
	for c := 1; c <= cfg.Cycles; c++ {
		for k := 0; k < itemsPerCycle; k++ {
			src := news.NodeID((c*itemsPerCycle + k) % cfg.Peers)
			it := news.New(fmt.Sprintf("churn-%d-%d", c, k), "d", "l", int64(c), src)
			it.ID = news.ID(c*itemsPerCycle + k)
			pubs = append(pubs, sim.Publication{Cycle: int64(c), Source: src, Item: it})
			col.RegisterItem(it.ID, (cfg.Peers+cfg.FlashCrowd)/4)
		}
	}
	interests := cfg.Cycles * itemsPerCycle / 4
	for i := 0; i < cfg.Peers+cfg.FlashCrowd; i++ {
		col.RegisterNode(news.NodeID(i), interests)
	}
	// Join-time-aware recall denominators for the flash crowd: a joiner can
	// only receive items published from its arrival cycle on, so its fair F1
	// counts those (CohortSummary.EligibleF1).
	for id, joined := range joinCyclesOf(schedule) {
		eligible := 0
		for i := range pubs {
			if pubs[i].Cycle >= joined && opinions.Likes(id, pubs[i].Item.ID) {
				eligible++
			}
		}
		col.SetEligibleInterested(id, eligible)
	}
	for id, c := range CohortsFromSchedule(schedule) {
		col.SetCohort(id, c)
	}

	timeline := &[]metrics.ChurnSample{}
	e := sim.New(sim.Config{
		Seed: 1, Cycles: cfg.Cycles, Workers: cfg.EngineWorkers, Shards: cfg.EngineShards,
		BootstrapDegree: 5, Publications: pubs, Churn: schedule,
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
		NewPeer: func(id news.NodeID) sim.Peer {
			return core.NewNode(id, "", nodeCfg, opinions, nodeRNG(1, int(id)))
		},
		OnCycleEnd: func(e *sim.Engine, now int64) {
			*timeline = append(*timeline, metrics.ChurnSample{Cycle: now, GhostFraction: ghostFraction(e)})
		},
	}, peers, col)
	e.Bootstrap()
	return e, schedule, col, timeline
}

// ChurnBenchResult is one BENCH_churn.json trajectory entry.
type ChurnBenchResult struct {
	Label      string  `json:"label,omitempty"`
	GoVersion  string  `json:"go"`
	MaxProcs   int     `json:"maxprocs"`
	Peers      int     `json:"peers"`
	FlashCrowd int     `json:"flash_crowd"`
	Cycles     int     `json:"cycles"`
	ChurnRate  float64 `json:"churn_rate"`
	Events     int     `json:"events"`
	// Churn protocol v2 knobs, recorded so trajectory entries with and
	// without departure notices / refill stay comparable.
	DepartureNotices bool    `json:"departure_notices,omitempty"`
	RefillWatermark  float64 `json:"refill_watermark,omitempty"`

	WallMs      float64 `json:"wall_ms"`      // full run wall-clock
	NsPerCycle  float64 `json:"ns_per_cycle"` // average cycle cost under churn
	FinalOnline int     `json:"final_online"`
	F1          float64 `json:"f1"`
	StableF1    float64 `json:"stable_f1"`
	JoinerF1    float64 `json:"joiner_f1"`
	// JoinerEligibleF1 is the flash crowd's join-time-aware F1: recall
	// counts only items published after the joiner arrived.
	JoinerEligibleF1 float64 `json:"joiner_eligible_f1"`
	RejoinerF1       float64 `json:"rejoiner_f1"`
	GhostEndFrac     float64 `json:"ghost_end_fraction"` // must be 0: views healed
	// Healing summary: the cycle of the last departure, the first
	// ghost-free cycle at or after it, and the gap between the two (-1
	// where undefined, e.g. a run that never healed).
	LastDeparture int64 `json:"last_departure"`
	HealedAt      int64 `json:"healed_at"`
	TimeToHealed  int64 `json:"time_to_healed"`
}

// ChurnBench runs the churn scenario once and returns the trajectory entry.
func ChurnBench(cfg ChurnBenchConfig) ChurnBenchResult {
	cfg = cfg.withDefaults()
	e, schedule, col, timeline := churnBenchWorld(cfg)
	start := time.Now()
	e.Run()
	wall := time.Since(start)

	last, healedAt, timeToHealed := healingFrom(schedule, *timeline)
	return ChurnBenchResult{
		GoVersion:        runtime.Version(),
		MaxProcs:         runtime.GOMAXPROCS(0),
		Peers:            cfg.Peers,
		FlashCrowd:       cfg.FlashCrowd,
		Cycles:           cfg.Cycles,
		ChurnRate:        cfg.ChurnRate,
		Events:           len(schedule.Events),
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
		WallMs:           float64(wall.Nanoseconds()) / 1e6,
		NsPerCycle:       float64(wall.Nanoseconds()) / float64(cfg.Cycles),
		FinalOnline:      e.OnlineCount(),
		F1:               col.F1(),
		StableF1:         col.CohortSummary(metrics.CohortStable).F1(),
		JoinerF1:         col.CohortSummary(metrics.CohortJoiner).F1(),
		JoinerEligibleF1: col.CohortSummary(metrics.CohortJoiner).EligibleF1(),
		RejoinerF1:       col.CohortSummary(metrics.CohortRejoiner).F1(),
		GhostEndFrac:     ghostFraction(e),
		LastDeparture:    last,
		HealedAt:         healedAt,
		TimeToHealed:     timeToHealed,
	}
}

// String renders the bench entry.
func (r ChurnBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn bench (%s, GOMAXPROCS=%d): %d peers +%d flash crowd, %d cycles, %.0f%% churn (%d events)\n",
		r.GoVersion, r.MaxProcs, r.Peers, r.FlashCrowd, r.Cycles, r.ChurnRate*100, r.Events)
	if r.DepartureNotices || r.RefillWatermark > 0 {
		fmt.Fprintf(&b, "  protocol: departure-notices=%v refill-watermark=%.2f\n", r.DepartureNotices, r.RefillWatermark)
	}
	fmt.Fprintf(&b, "  wall %.0f ms (%.1f ms/cycle)  online(end)=%d  ghost-fraction(end)=%.4f  time-to-healed=%s\n",
		r.WallMs, r.NsPerCycle/1e6, r.FinalOnline, r.GhostEndFrac, cyclesOrNone(r.TimeToHealed))
	fmt.Fprintf(&b, "  F1: population %.3f  stable %.3f  joiner %.3f (eligible %.3f)  rejoiner %.3f",
		r.F1, r.StableF1, r.JoinerF1, r.JoinerEligibleF1, r.RejoinerF1)
	return b.String()
}
