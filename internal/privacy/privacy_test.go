package privacy

import (
	"math/rand"
	"testing"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func realProfile(n int) *profile.Profile {
	p := profile.New()
	for i := 0; i < n; i++ {
		p.Set(news.ID(i), int64(i), float64(i%2))
	}
	return p
}

func TestNoObfuscationIsIdentity(t *testing.T) {
	p := realProfile(10)
	o := &Obfuscator{Rng: rand.New(rand.NewSource(1))}
	q := o.Obfuscate(p)
	if !p.Equal(q) {
		t.Fatal("zero-config obfuscation must be the identity")
	}
	if Disclosure(p, q) != 1 {
		t.Fatal("identity snapshot must fully disclose")
	}
}

func TestObfuscateNeverMutatesOriginal(t *testing.T) {
	p := realProfile(20)
	before := p.Clone()
	o := &Obfuscator{Dropout: 0.5, NoiseEntries: 10, DecoyPool: []news.ID{100, 101, 102}, Rng: rand.New(rand.NewSource(2))}
	o.Obfuscate(p)
	if !p.Equal(before) {
		t.Fatal("obfuscation must not touch the private profile")
	}
}

func TestDropoutReducesDisclosure(t *testing.T) {
	p := realProfile(200)
	o := &Obfuscator{Dropout: 0.5, Rng: rand.New(rand.NewSource(3))}
	q := o.Obfuscate(p)
	d := Disclosure(p, q)
	if d > 0.7 || d < 0.3 {
		t.Fatalf("dropout 0.5 should disclose ≈half, got %v", d)
	}
}

func TestNoiseAddsDecoysWithoutOverwriting(t *testing.T) {
	p := realProfile(10)
	pool := []news.ID{5, 6, 100, 101, 102, 103}
	o := &Obfuscator{NoiseEntries: 50, DecoyPool: pool, Rng: rand.New(rand.NewSource(4))}
	q := o.Obfuscate(p)
	// Real entries intact.
	p.ForEach(func(e profile.Entry) {
		qe, ok := q.Get(e.Item)
		if !ok || qe.Score != e.Score {
			t.Fatalf("real entry %v corrupted", e.Item)
		}
	})
	// Some decoys present, only from the pool's non-real ids.
	decoys := 0
	q.ForEach(func(e profile.Entry) {
		if !p.Has(e.Item) {
			decoys++
			if e.Item < 100 {
				t.Fatalf("decoy %v not from the pool", e.Item)
			}
		}
	})
	if decoys == 0 {
		t.Fatal("no decoys injected")
	}
}

func TestDisclosureEdgeCases(t *testing.T) {
	if Disclosure(profile.New(), profile.New()) != 0 {
		t.Fatal("empty real profile must disclose 0")
	}
	p := realProfile(4)
	if Disclosure(p, profile.New()) != 0 {
		t.Fatal("empty snapshot must disclose 0")
	}
}

func TestObfuscationPreservesSimilaritySignal(t *testing.T) {
	// The trade-off of Section VII: with moderate obfuscation, similar users
	// must still look more alike than dissimilar ones.
	rng := rand.New(rand.NewSource(5))
	a := realProfile(60)
	b := realProfile(60) // identical tastes
	c := profile.New()   // disjoint tastes
	for i := 0; i < 60; i++ {
		c.Set(news.ID(1000+i), int64(i), 1)
	}
	o := &Obfuscator{Dropout: 0.3, NoiseEntries: 10, DecoyPool: []news.ID{2000, 2001, 2002}, Rng: rng}
	m := profile.WUP{}
	oa, ob, oc := o.Obfuscate(a), o.Obfuscate(b), o.Obfuscate(c)
	if m.Similarity(oa, ob) <= m.Similarity(oa, oc) {
		t.Fatal("moderate obfuscation must preserve the similarity ordering")
	}
}
