// Package privacy implements the obfuscation mechanism sketched in the
// paper's concluding remarks: WhatsUp gossips user profiles in the clear,
// so Section VII proposes hiding exact tastes by perturbing the profiles
// that leave a node, trading recommendation quality for disclosure. This
// package provides that trade-off knob: an Obfuscator rewrites the profile
// snapshots embedded in outgoing gossip descriptors, while the node's
// private profile (used to rate and to rank incoming candidates) stays
// exact.
//
// Two complementary mechanisms are provided, both score-preserving in
// expectation so the WUP metric keeps working on the blurred vectors:
//
//   - dropout: each real entry is omitted with probability Dropout,
//     hiding which items the user actually rated;
//   - noise: fake entries with random scores are added for items drawn
//     from a decoy pool (e.g. recently seen ids), hiding which of the
//     remaining entries are real.
package privacy

import (
	"math/rand"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// Obfuscator perturbs outgoing profile snapshots.
type Obfuscator struct {
	// Dropout is the probability of omitting each real entry (0 = keep all).
	Dropout float64
	// NoiseEntries is the number of decoy entries added per snapshot.
	NoiseEntries int
	// DecoyPool supplies plausible item ids for decoys; typically the ids
	// the node has seen recently. Empty pool disables noise.
	DecoyPool []news.ID
	// Rng drives the perturbation; it must be owned by the node.
	Rng *rand.Rand
}

// Obfuscate returns a perturbed copy of p. The original is never modified.
func (o *Obfuscator) Obfuscate(p *profile.Profile) *profile.Profile {
	out := profile.WithCapacity(p.Len() + o.NoiseEntries)
	p.ForEach(func(e profile.Entry) {
		if o.Dropout > 0 && o.Rng.Float64() < o.Dropout {
			return
		}
		out.Set(e.Item, e.Stamp, e.Score)
	})
	for i := 0; i < o.NoiseEntries && len(o.DecoyPool) > 0; i++ {
		id := o.DecoyPool[o.Rng.Intn(len(o.DecoyPool))]
		if out.Has(id) || p.Has(id) {
			continue // never overwrite a real opinion with a decoy
		}
		stamp := int64(0)
		if e, ok := p.Get(id); ok {
			stamp = e.Stamp
		}
		out.Set(id, maxStamp(stamp, latestStamp(p)), float64(o.Rng.Intn(2)))
	}
	return out
}

func latestStamp(p *profile.Profile) int64 {
	var latest int64
	p.ForEach(func(e profile.Entry) {
		if e.Stamp > latest {
			latest = e.Stamp
		}
	})
	return latest
}

func maxStamp(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Disclosure measures how much of the true profile an observer of the
// obfuscated snapshot learns: the fraction of real entries present in the
// snapshot with their true score. 1 means full disclosure, 0 means nothing
// reliable leaks.
func Disclosure(real, snapshot *profile.Profile) float64 {
	if real.Len() == 0 {
		return 0
	}
	matched := 0
	real.ForEach(func(e profile.Entry) {
		if se, ok := snapshot.Get(e.Item); ok && se.Score == e.Score {
			matched++
		}
	})
	return float64(matched) / float64(real.Len())
}
