package source

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"whatsup/internal/news"
)

// Publisher is the slice of the live runtime the gateway needs: injecting
// one item into the mesh through one fleet node. *live.Runner implements it.
type Publisher interface {
	Publish(id news.NodeID, item news.Item) error
}

// GatewayConfig parameterizes a Gateway.
type GatewayConfig struct {
	// Node is the fleet node the gateway publishes through — an ordinary
	// WhatsUp publisher; the mesh cannot tell a gateway from a user.
	Node news.NodeID
	// Sources are polled in order every Interval.
	Sources []Source
	// Interval is the poll period (default 30 s, the paper's gossip period).
	Interval time.Duration
	// Catalog is the ingestion ledger to dedupe against and record into.
	// Nil means a fresh private one.
	Catalog *Catalog
	// OnError, if set, observes per-source fetch errors and per-item publish
	// errors as the poll loop encounters them (Run keeps going either way).
	OnError func(err error)
}

// Gateway bridges sources into the mesh: each poll fetches every source,
// drops items already cataloged (content-hash deduplication — a feed
// re-serving yesterday's articles publishes nothing), publishes the fresh
// remainder through the configured fleet node, and catalogs what was
// accepted. Items whose publish failed (the node was mid-churn, say) stay
// un-cataloged and retry on the next poll.
type Gateway struct {
	cfg       GatewayConfig
	pub       Publisher
	catalog   *Catalog
	published atomic.Int64
}

// NewGateway builds a gateway over the given publisher.
func NewGateway(cfg GatewayConfig, pub Publisher) *Gateway {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Catalog == nil {
		cfg.Catalog = NewCatalog()
	}
	return &Gateway{cfg: cfg, pub: pub, catalog: cfg.Catalog}
}

// Catalog returns the gateway's ingestion ledger.
func (g *Gateway) Catalog() *Catalog { return g.catalog }

// Published returns how many items the gateway has injected into the mesh.
func (g *Gateway) Published() int64 { return g.published.Load() }

// PollOnce runs one ingestion round: fetch every source, publish and catalog
// the items not seen before. It returns how many items were published; the
// error joins every per-source and per-item failure of the round (a partial
// round still publishes what it can).
func (g *Gateway) PollOnce(ctx context.Context) (int, error) {
	var errs []error
	fail := func(err error) {
		errs = append(errs, err)
		// A cancelled run makes every in-flight fetch fail with ctx's error;
		// those are shutdown, not ingestion trouble, so spare the observer.
		if g.cfg.OnError != nil && ctx.Err() == nil {
			g.cfg.OnError(err)
		}
	}
	n := 0
	for _, src := range g.cfg.Sources {
		if err := ctx.Err(); err != nil {
			fail(err)
			break
		}
		items, err := src.Fetch(ctx)
		if err != nil {
			fail(err)
			continue
		}
		now := time.Now()
		for _, it := range items {
			if g.catalog.Has(it.ID) {
				continue
			}
			it.Source = g.cfg.Node
			if err := g.pub.Publish(g.cfg.Node, it); err != nil {
				fail(fmt.Errorf("source: publishing %s (%q): %w", it.ID, it.Title, err))
				continue
			}
			g.catalog.Add(CatalogEntry{Item: it, SourceName: src.Name(), FetchedAt: now})
			g.published.Add(1)
			n++
		}
	}
	return n, errors.Join(errs...)
}

// Run polls immediately and then every Interval until ctx is cancelled.
// Poll errors are reported through OnError and do not stop the loop; Run
// returns ctx.Err() once cancelled.
func (g *Gateway) Run(ctx context.Context) error {
	ticker := time.NewTicker(g.cfg.Interval)
	defer ticker.Stop()
	for {
		g.PollOnce(ctx) // errors already routed through OnError
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
