package source

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"whatsup/internal/news"
)

// Publisher is the slice of the live runtime the gateway needs: injecting
// one item into the mesh through one fleet node. *live.Runner implements it.
type Publisher interface {
	Publish(id news.NodeID, item news.Item) error
}

// GatewayConfig parameterizes a Gateway.
type GatewayConfig struct {
	// Node is the fleet node the gateway publishes through — an ordinary
	// WhatsUp publisher; the mesh cannot tell a gateway from a user.
	Node news.NodeID
	// Sources are polled in order every Interval.
	Sources []Source
	// Interval is the poll period (default 30 s, the paper's gossip period).
	Interval time.Duration
	// Catalog is the ingestion ledger to dedupe against and record into.
	// Nil means a fresh private one.
	Catalog *Catalog
	// OnError, if set, observes per-source fetch errors and per-item publish
	// errors as the poll loop encounters them (Run keeps going either way).
	OnError func(err error)
	// RetryBase is the backoff after a source's first consecutive failure;
	// it doubles per failure up to RetryMax, each delay stretched by up to
	// +50% jitter so a fleet of gateways does not re-hit a recovering feed
	// in lockstep. Default: Interval.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff. Default: 16×RetryBase.
	RetryMax time.Duration
	// BreakerThreshold is the consecutive-failure streak that trips a
	// source's circuit breaker. Default: 5.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped source is held out before the
	// breaker half-opens and allows one probe fetch. Default: 4×RetryMax.
	BreakerCooldown time.Duration
}

// Gateway bridges sources into the mesh: each poll fetches every source,
// drops items already cataloged (content-hash deduplication — a feed
// re-serving yesterday's articles publishes nothing), publishes the fresh
// remainder through the configured fleet node, and catalogs what was
// accepted. Items whose publish failed (the node was mid-churn, say) stay
// un-cataloged and retry on the next poll.
//
// Failing sources are backed off individually: each consecutive fetch
// failure doubles a per-source hold-off (with jitter), and a failure streak
// of BreakerThreshold trips that source's circuit breaker — it is skipped
// for BreakerCooldown, then the breaker half-opens for a single probe fetch
// whose outcome either closes it or re-trips it. One dead feed never slows
// the rest of the round.
type Gateway struct {
	cfg       GatewayConfig
	pub       Publisher
	catalog   *Catalog
	published atomic.Int64

	// Per-source retry state, indexed like cfg.Sources. PollOnce is never
	// run concurrently with itself (Run is a single loop), so plain fields
	// suffice.
	states []sourceState
	rng    *rand.Rand
	now    func() time.Time // test seam; time.Now in production
}

// sourceState is one source's retry ledger.
type sourceState struct {
	failures int       // consecutive fetch failures
	tripped  bool      // breaker open (or half-open once next has passed)
	next     time.Time // earliest next fetch attempt; zero = whenever
}

// ErrBreakerOpen marks the OnError report emitted when a source's failure
// streak trips its circuit breaker.
var ErrBreakerOpen = errors.New("source: circuit breaker open")

// NewGateway builds a gateway over the given publisher.
func NewGateway(cfg GatewayConfig, pub Publisher) *Gateway {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Catalog == nil {
		cfg.Catalog = NewCatalog()
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = cfg.Interval
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 16 * cfg.RetryBase
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 4 * cfg.RetryMax
	}
	return &Gateway{
		cfg: cfg, pub: pub, catalog: cfg.Catalog,
		states: make([]sourceState, len(cfg.Sources)),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		now:    time.Now,
	}
}

// Catalog returns the gateway's ingestion ledger.
func (g *Gateway) Catalog() *Catalog { return g.catalog }

// Published returns how many items the gateway has injected into the mesh.
func (g *Gateway) Published() int64 { return g.published.Load() }

// PollOnce runs one ingestion round: fetch every source, publish and catalog
// the items not seen before. It returns how many items were published; the
// error joins every per-source and per-item failure of the round (a partial
// round still publishes what it can).
func (g *Gateway) PollOnce(ctx context.Context) (int, error) {
	var errs []error
	fail := func(err error) {
		errs = append(errs, err)
		// A cancelled run makes every in-flight fetch fail with ctx's error;
		// those are shutdown, not ingestion trouble, so spare the observer.
		if g.cfg.OnError != nil && ctx.Err() == nil {
			g.cfg.OnError(err)
		}
	}
	n := 0
	for i, src := range g.cfg.Sources {
		if err := ctx.Err(); err != nil {
			fail(err)
			break
		}
		st := &g.states[i]
		if !st.next.IsZero() && g.now().Before(st.next) {
			continue // backing off or breaker open; not this round
		}
		items, err := src.Fetch(ctx)
		if err != nil {
			fail(g.recordFailure(st, src, err))
			continue
		}
		st.failures, st.tripped, st.next = 0, false, time.Time{}
		now := time.Now()
		for _, it := range items {
			if g.catalog.Has(it.ID) {
				continue
			}
			it.Source = g.cfg.Node
			if err := g.pub.Publish(g.cfg.Node, it); err != nil {
				fail(fmt.Errorf("source: publishing %s (%q): %w", it.ID, it.Title, err))
				continue
			}
			g.catalog.Add(CatalogEntry{Item: it, SourceName: src.Name(), FetchedAt: now})
			g.published.Add(1)
			n++
		}
	}
	return n, errors.Join(errs...)
}

// recordFailure advances a source's retry state after a failed fetch and
// returns the error to report: the fetch error itself while backing off, or
// a wrapped ErrBreakerOpen the moment the failure streak trips the breaker.
func (g *Gateway) recordFailure(st *sourceState, src Source, err error) error {
	st.failures++
	now := g.now()
	if st.failures >= g.cfg.BreakerThreshold {
		st.next = now.Add(g.cfg.BreakerCooldown)
		if st.tripped {
			// A half-open probe failed: re-trip quietly, the observer
			// already heard about this source.
			return err
		}
		st.tripped = true
		return fmt.Errorf("%w: %s after %d consecutive failures (cooling %v): %v",
			ErrBreakerOpen, src.Name(), st.failures, g.cfg.BreakerCooldown, err)
	}
	backoff := g.cfg.RetryBase << (st.failures - 1)
	if backoff > g.cfg.RetryMax || backoff <= 0 {
		backoff = g.cfg.RetryMax
	}
	backoff += time.Duration(g.rng.Float64() * float64(backoff) / 2)
	st.next = now.Add(backoff)
	return err
}

// Run polls immediately and then every Interval until ctx is cancelled.
// Poll errors are reported through OnError and do not stop the loop; Run
// returns ctx.Err() once cancelled.
func (g *Gateway) Run(ctx context.Context) error {
	ticker := time.NewTicker(g.cfg.Interval)
	defer ticker.Stop()
	for {
		g.PollOnce(ctx) // errors already routed through OnError
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
