package source

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"whatsup/internal/news"
)

// Parsing limits. Feeds are fetched from the open internet, so the parser
// bounds everything a hostile document controls: the decoder only ever sees
// maxFeedBytes, at most maxFeedItems items survive, and each text field is
// truncated to maxFieldBytes before hashing.
const (
	maxFeedBytes  = 8 << 20
	maxFeedItems  = 512
	maxFieldBytes = 4096
)

func init() {
	Register("rss", func(arg string) (Source, error) { return NewFeed(arg), nil })
	Register("file", func(arg string) (Source, error) { return NewFile(arg), nil })
}

// feedDoc is the union of the feed shapes ParseFeed accepts: RSS 2.0
// (<rss><channel><item>), RSS 1.0/RDF (<rdf:RDF><item>) and Atom
// (<feed><entry>). The root element name is deliberately unconstrained.
type feedDoc struct {
	Channel struct {
		Items []feedItem `xml:"item"`
	} `xml:"channel"`
	Items   []feedItem  `xml:"item"` // RSS 1.0 puts items at the root
	Entries []atomEntry `xml:"entry"`
}

type feedItem struct {
	Title       string `xml:"title"`
	Description string `xml:"description"`
	Link        string `xml:"link"`
	PubDate     string `xml:"pubDate"`
	Date        string `xml:"date"` // RSS 1.0 dc:date
}

type atomEntry struct {
	Title     string     `xml:"title"`
	Summary   string     `xml:"summary"`
	Content   string     `xml:"content"`
	Links     []atomLink `xml:"link"`
	Published string     `xml:"published"`
	Updated   string     `xml:"updated"`
}

type atomLink struct {
	Rel  string `xml:"rel,attr"`
	Href string `xml:"href,attr"`
}

// ParseFeed parses an RSS 2.0, RSS 1.0 or Atom document into news items.
// Identity is the content hash of (title, description, link), exactly as the
// mesh computes it, so refetching an unchanged article yields the same
// news.ID and deduplicates naturally. Created carries the article's
// publication time in unix milliseconds when the feed provides one (zero
// otherwise) — publishing into the mesh restamps it with gossip time anyway.
// Source is news.NoNode until a publisher adopts the item. Entries with
// neither title nor link are dropped; at most maxFeedItems survive.
func ParseFeed(data []byte) ([]news.Item, error) {
	if len(data) > maxFeedBytes {
		data = data[:maxFeedBytes]
	}
	var doc feedDoc
	dec := xml.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("source: parsing feed: %w", err)
	}
	items := doc.Channel.Items
	items = append(items, doc.Items...)
	out := make([]news.Item, 0, len(items)+len(doc.Entries))
	add := func(title, desc, link string, created int64) {
		title, desc, link = cleanField(title), cleanField(desc), cleanField(link)
		if title == "" && link == "" {
			return
		}
		it := news.New(title, desc, link, created, news.NoNode)
		out = append(out, it)
	}
	for _, ri := range items {
		if len(out) == maxFeedItems {
			break
		}
		when := ri.PubDate
		if when == "" {
			when = ri.Date
		}
		add(ri.Title, ri.Description, ri.Link, parseFeedTime(when))
	}
	for _, e := range doc.Entries {
		if len(out) == maxFeedItems {
			break
		}
		desc := e.Summary
		if desc == "" {
			desc = e.Content
		}
		when := e.Published
		if when == "" {
			when = e.Updated
		}
		add(e.Title, desc, atomHref(e.Links), parseFeedTime(when))
	}
	return out, nil
}

// cleanField trims whitespace and truncates to maxFieldBytes on a rune
// boundary, so hostile megabyte-sized fields cannot bloat the mesh.
func cleanField(s string) string {
	s = strings.TrimSpace(s)
	if len(s) <= maxFieldBytes {
		return s
	}
	s = s[:maxFieldBytes]
	// The cut may have split a multi-byte rune; repair only the boundary.
	// Invalid bytes deeper in the field pass through untouched, consistent
	// with fields under the cap, which are never re-validated. Back up to
	// the last rune start within one rune's width of the end; keep the tail
	// only if it decodes as one complete rune.
	start := len(s)
	for start > 0 && len(s)-start < utf8.UTFMax && !utf8.RuneStart(s[start-1]) {
		start--
	}
	if start > 0 {
		start--
		r, size := utf8.DecodeRuneInString(s[start:])
		if size == len(s)-start && (r != utf8.RuneError || size > 1) {
			return s
		}
	}
	return s[:start]
}

// atomHref picks the entry's alternate link (or the first link at all).
func atomHref(links []atomLink) string {
	for _, l := range links {
		if l.Rel == "" || l.Rel == "alternate" {
			return l.Href
		}
	}
	if len(links) > 0 {
		return links[0].Href
	}
	return ""
}

// feedTimeFormats are the publication-time layouts seen in the wild, RSS's
// RFC 822 family first, then Atom's RFC 3339.
var feedTimeFormats = []string{
	time.RFC1123Z,
	time.RFC1123,
	time.RFC822Z,
	time.RFC822,
	time.RFC3339,
	"2006-01-02T15:04:05Z0700",
	"2006-01-02",
}

// parseFeedTime parses a feed timestamp to unix milliseconds, zero when
// absent or unparseable (feeds get timing wrong constantly; a missing stamp
// must not drop the article).
func parseFeedTime(s string) int64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	for _, layout := range feedTimeFormats {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMilli()
		}
	}
	return 0
}

// Feed is the RSS/Atom Source: it fetches a URL over HTTP and parses the
// response with ParseFeed. Spec form: "rss:https://example.org/feed.xml".
// Successive fetches are conditional: the feed remembers the last ETag and
// Last-Modified validators and a 304 Not Modified answer yields no items and
// no error, so an idle feed costs one round-trip and no body.
type Feed struct {
	url    string
	client *http.Client

	mu           sync.Mutex
	etag         string
	lastModified string
}

// NewFeed builds an HTTP feed source. The default client enforces a 30 s
// end-to-end timeout; override it with SetClient (tests point it at an
// httptest server's client).
func NewFeed(url string) *Feed {
	return &Feed{url: url, client: &http.Client{Timeout: 30 * time.Second}}
}

// SetClient replaces the HTTP client. Call before the gateway starts.
func (f *Feed) SetClient(c *http.Client) { f.client = c }

// Name implements Source.
func (f *Feed) Name() string { return "rss:" + f.url }

// Fetch implements Source: one conditional GET of the feed URL, body capped
// at maxFeedBytes, non-2xx statuses are errors. A 304 against the cached
// validators returns (nil, nil) — nothing new, nothing wrong.
func (f *Feed) Fetch(ctx context.Context) ([]news.Item, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url, nil)
	if err != nil {
		return nil, fmt.Errorf("source: %s: %w", f.Name(), err)
	}
	req.Header.Set("User-Agent", "whatsup-gateway/1.0")
	f.mu.Lock()
	if f.etag != "" {
		req.Header.Set("If-None-Match", f.etag)
	}
	if f.lastModified != "" {
		req.Header.Set("If-Modified-Since", f.lastModified)
	}
	f.mu.Unlock()
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("source: %s: %w", f.Name(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return nil, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("source: %s: unexpected status %s", f.Name(), resp.Status)
	}
	// Adopt the response's validators wholesale: a 200 without them clears
	// the cache, so we never send validators the server no longer honors.
	f.mu.Lock()
	f.etag = resp.Header.Get("ETag")
	f.lastModified = resp.Header.Get("Last-Modified")
	f.mu.Unlock()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFeedBytes))
	if err != nil {
		return nil, fmt.Errorf("source: %s: reading body: %w", f.Name(), err)
	}
	return ParseFeed(data)
}

// File is the fixture Source: a feed document on disk, for deterministic
// tests and network-free soak runs. Spec form: "file:testdata/feed.xml".
type File struct {
	path string
}

// NewFile builds a fixture source over the given path.
func NewFile(path string) *File { return &File{path: path} }

// Name implements Source.
func (f *File) Name() string { return "file:" + f.path }

// Fetch implements Source by parsing the file's current content, so a test
// (or an operator) can append articles to the fixture mid-run and see them
// ingested on the next poll.
func (f *File) Fetch(ctx context.Context) ([]news.Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(f.path)
	if err != nil {
		return nil, fmt.Errorf("source: %s: %w", f.Name(), err)
	}
	return ParseFeed(data)
}
