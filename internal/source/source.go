// Package source is the ingestion layer that connects the WhatsUp gossip
// mesh to the outside world, reproducing the paper's prototype deployment
// where live RSS feeds were injected into the PlanetLab fleet (Section V).
//
// The package has three parts:
//
//   - Source: a provider of news items (an RSS/Atom feed over HTTP, a fixture
//     file for deterministic tests), constructed from "kind:argument" specs
//     through a provider registry;
//   - Catalog: the ingestion ledger — every item published into the mesh,
//     keyed by its 8-byte content hash, serving both deduplication and item
//     lookups (GET /v1/items/{id});
//   - Gateway: the polling bridge that fetches from every configured source,
//     deduplicates by content hash, and publishes fresh items into the fleet
//     through an ordinary WhatsUp publisher node.
package source

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"whatsup/internal/news"
)

// Source provides news items from somewhere outside the mesh. Fetch returns
// the currently available items — implementations return whatever the
// provider exposes right now, and leave deduplication against previous
// fetches to the Gateway's catalog. Items carry a zero Source node; the
// gateway stamps its own publisher id before injecting them.
type Source interface {
	// Name identifies the source in logs and catalog attribution, e.g.
	// "rss:https://example.org/feed".
	Name() string
	// Fetch retrieves the source's current items. It must honor ctx
	// cancellation and is never called concurrently with itself by the
	// Gateway.
	Fetch(ctx context.Context) ([]news.Item, error)
}

// Factory builds a Source from the argument part of a "kind:argument" spec.
type Factory func(arg string) (Source, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a factory for a source kind ("rss", "file", ...),
// replacing any previous registration. Safe for concurrent use.
func Register(kind string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[kind] = f
}

// Kinds returns the registered source kinds, sorted.
func Kinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// New builds a source from a "kind:argument" spec — e.g.
// "rss:https://example.org/feed.xml" or "file:testdata/feed.xml" — through
// the provider registry.
func New(spec string) (Source, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok || kind == "" {
		return nil, fmt.Errorf("source: spec %q is not kind:argument", spec)
	}
	registryMu.RLock()
	f := registry[kind]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("source: unknown source kind %q (have %s)", kind, strings.Join(Kinds(), ", "))
	}
	return f(arg)
}

// CatalogEntry is one ingested item with its provenance.
type CatalogEntry struct {
	Item news.Item
	// SourceName is the Name of the source the item was fetched from.
	SourceName string
	// FetchedAt is the wall-clock ingestion time. Item.Created is gossip
	// time (the publish cycle), so this is where real-world timing lives.
	FetchedAt time.Time
}

// Catalog is the ingestion ledger: every item published into the mesh, in
// ingestion order, keyed by content hash. Safe for concurrent use — the
// gateway writes while API handlers read.
type Catalog struct {
	mu    sync.RWMutex
	items map[news.ID]CatalogEntry
	order []news.ID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{items: make(map[news.ID]CatalogEntry)}
}

// Has reports whether the item is already cataloged.
func (c *Catalog) Has(id news.ID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.items[id]
	return ok
}

// Add records an ingested item. It returns false without overwriting when
// the id is already present.
func (c *Catalog) Add(e CatalogEntry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.items[e.Item.ID]; dup {
		return false
	}
	c.items[e.Item.ID] = e
	c.order = append(c.order, e.Item.ID)
	return true
}

// Get looks an item up by content hash.
func (c *Catalog) Get(id news.ID) (CatalogEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.items[id]
	return e, ok
}

// Len returns the number of cataloged items.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.items)
}

// Entries returns the cataloged items in ingestion order.
func (c *Catalog) Entries() []CatalogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]CatalogEntry, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.items[id])
	}
	return out
}
