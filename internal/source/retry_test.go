package source

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"whatsup/internal/news"
)

// flakySource fails until its fuse runs out, then serves one item per fetch.
type flakySource struct {
	name     string
	failures int // remaining fetches that fail
	calls    int
}

func (f *flakySource) Name() string { return f.name }

func (f *flakySource) Fetch(ctx context.Context) ([]news.Item, error) {
	f.calls++
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("boom")
	}
	it := news.New(f.name, "d", "l", int64(f.calls), news.NoNode)
	return []news.Item{it}, nil
}

// nullPublisher accepts every publish.
type nullPublisher struct{}

func (nullPublisher) Publish(id news.NodeID, item news.Item) error { return nil }

// retryGateway builds a gateway over the given sources with a controllable
// clock, second-scale backoff and a threshold-3 breaker.
func retryGateway(srcs []Source, clock *time.Time) *Gateway {
	g := NewGateway(GatewayConfig{
		Node:             0,
		Sources:          srcs,
		Interval:         time.Second,
		RetryBase:        time.Second,
		RetryMax:         8 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	}, nullPublisher{})
	g.now = func() time.Time { return *clock }
	return g
}

// TestGatewayBackoffSkipsFailingSource pins the per-source exponential
// backoff: after a failure the source is skipped until its hold-off expires
// (≥ RetryBase, ≤ 1.5×RetryBase with jitter), while healthy sources keep
// being polled every round.
func TestGatewayBackoffSkipsFailingSource(t *testing.T) {
	bad := &flakySource{name: "bad", failures: 1}
	good := &flakySource{name: "good"}
	clock := time.Unix(1000, 0)
	g := retryGateway([]Source{bad, good}, &clock)

	if _, err := g.PollOnce(context.Background()); err == nil {
		t.Fatal("first poll must surface the fetch failure")
	}
	// Within the base hold-off: the bad source must not be re-fetched.
	clock = clock.Add(500 * time.Millisecond)
	g.PollOnce(context.Background())
	if bad.calls != 1 {
		t.Fatalf("bad source fetched %d times during backoff, want 1", bad.calls)
	}
	if good.calls != 2 {
		t.Fatalf("good source fetched %d times, want 2 (never held back)", good.calls)
	}
	// Past the jittered hold-off (≤ 1.5×base): the retry goes through and,
	// now healthy, the source recovers.
	clock = clock.Add(2 * time.Second)
	if _, err := g.PollOnce(context.Background()); err != nil {
		t.Fatalf("recovered poll failed: %v", err)
	}
	if bad.calls != 2 {
		t.Fatalf("bad source fetched %d times after backoff expiry, want 2", bad.calls)
	}
}

// TestGatewayBreakerTripsAndHalfOpens pins the circuit breaker: a failure
// streak of BreakerThreshold trips it (reported once as ErrBreakerOpen), the
// source is held out for the cooldown, and the half-open probe after the
// cooldown closes the breaker again once the source recovers.
func TestGatewayBreakerTripsAndHalfOpens(t *testing.T) {
	bad := &flakySource{name: "bad", failures: 4}
	clock := time.Unix(2000, 0)
	g := retryGateway([]Source{bad}, &clock)
	var reported []error
	g.cfg.OnError = func(err error) { reported = append(reported, err) }

	// Drive three fetch failures, stepping past each backoff.
	for i := 0; i < 3; i++ {
		g.PollOnce(context.Background())
		clock = clock.Add(20 * time.Second)
	}
	if bad.calls != 3 {
		t.Fatalf("streak drove %d fetches, want 3", bad.calls)
	}
	trips := 0
	for _, err := range reported {
		if errors.Is(err, ErrBreakerOpen) {
			trips++
		}
	}
	if trips != 1 {
		t.Fatalf("breaker reported open %d times, want exactly 1", trips)
	}
	// Inside the cooldown the source stays untouched even far past any
	// backoff horizon.
	g.PollOnce(context.Background())
	if bad.calls != 3 {
		t.Fatalf("tripped source fetched %d times inside cooldown, want 3", bad.calls)
	}
	// After the cooldown: half-open probe — it fails once more (the fuse
	// has one failure left), re-trips quietly, then the next probe succeeds.
	clock = clock.Add(2 * time.Minute)
	g.PollOnce(context.Background())
	if bad.calls != 4 {
		t.Fatalf("half-open probe count %d, want 4", bad.calls)
	}
	clock = clock.Add(2 * time.Minute)
	n, err := g.PollOnce(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("recovered probe published %d items (err %v), want 1", n, err)
	}
	if trips := countBreakerErrors(reported); trips != 1 {
		t.Fatalf("re-trip must not re-report: %d open reports, want 1", trips)
	}
	// Closed again: fetches resume every round.
	clock = clock.Add(time.Second)
	g.PollOnce(context.Background())
	if bad.calls != 6 {
		t.Fatalf("post-recovery fetch count %d, want 6", bad.calls)
	}
}

func countBreakerErrors(errs []error) int {
	n := 0
	for _, err := range errs {
		if errors.Is(err, ErrBreakerOpen) {
			n++
		}
	}
	return n
}

// TestFeedConditionalGet pins the conditional-GET behavior: the second fetch
// sends the validators the first response carried, and a 304 answer yields
// no items and no error.
func TestFeedConditionalGet(t *testing.T) {
	const body = `<rss><channel><item><title>A</title><link>https://e.org/a</link></item></channel></rss>`
	var sawINM, sawIMS string
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		sawINM = r.Header.Get("If-None-Match")
		sawIMS = r.Header.Get("If-Modified-Since")
		if sawINM == `"v1"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", `"v1"`)
		w.Header().Set("Last-Modified", "Mon, 02 Jan 2006 15:04:05 GMT")
		w.Write([]byte(body))
	}))
	defer srv.Close()

	f := NewFeed(srv.URL)
	f.SetClient(srv.Client())
	items, err := f.Fetch(context.Background())
	if err != nil || len(items) != 1 {
		t.Fatalf("first fetch: %d items, err %v", len(items), err)
	}
	if sawINM != "" || sawIMS != "" {
		t.Fatal("first fetch must not send validators")
	}
	items, err = f.Fetch(context.Background())
	if err != nil {
		t.Fatalf("304 fetch returned error: %v", err)
	}
	if items != nil {
		t.Fatalf("304 fetch returned %d items, want none", len(items))
	}
	if sawINM != `"v1"` || sawIMS != "Mon, 02 Jan 2006 15:04:05 GMT" {
		t.Fatalf("second fetch validators: INM=%q IMS=%q", sawINM, sawIMS)
	}
	if hits != 2 {
		t.Fatalf("server saw %d requests, want 2", hits)
	}
}
