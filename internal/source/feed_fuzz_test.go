package source

import (
	"os"
	"testing"

	"whatsup/internal/news"
)

// FuzzParseFeed hammers the feed parser with truncated, malformed and
// hostile documents: whatever happens, it must not panic, must respect the
// item and field bounds, and every item it does return must carry its
// content hash as identity.
func FuzzParseFeed(f *testing.F) {
	if data, err := os.ReadFile("testdata/feed.xml"); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte(`<rss version="2.0"><channel><item><title>t</title></item></channel></rss>`))
	f.Add([]byte(`<feed xmlns="http://www.w3.org/2005/Atom"><entry><title>t</title><link href="u"/></entry></feed>`))
	f.Add([]byte(`<rdf:RDF xmlns:rdf="x"><item><title>t</title></item></rdf:RDF>`))
	f.Add([]byte(`<?xml version="1.0" encoding="ISO-8859-1"?><rss/>`))
	f.Add([]byte("<rss><channel><item><title>\xff\xfe</title></item></channel></rss>"))
	f.Add([]byte(`<rss><channel><item><pubDate>Mon, 99 Foo 9999</pubDate></item></channel></rss>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := ParseFeed(data)
		if err != nil {
			return
		}
		if len(items) > maxFeedItems {
			t.Fatalf("%d items exceed the cap", len(items))
		}
		for _, it := range items {
			if it.Title == "" && it.Link == "" {
				t.Fatal("empty entry not dropped")
			}
			if len(it.Title) > maxFieldBytes || len(it.Description) > maxFieldBytes || len(it.Link) > maxFieldBytes {
				t.Fatal("field bound violated")
			}
			if it.ID != news.Hash(it.Title, it.Description, it.Link) {
				t.Fatal("item ID is not its content hash")
			}
		}
	})
}
