package source

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"whatsup/internal/news"
)

func TestParseFeedRSS(t *testing.T) {
	data, err := os.ReadFile("testdata/feed.xml")
	if err != nil {
		t.Fatal(err)
	}
	items, err := ParseFeed(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("parsed %d items, want 6", len(items))
	}
	first := items[0]
	if first.Title != "Gossip protocols reach the newsroom" {
		t.Fatalf("unexpected first title %q", first.Title)
	}
	if first.Link != "https://fixture.example/wire/gossip-newsroom" {
		t.Fatalf("unexpected first link %q", first.Link)
	}
	if want := news.Hash(first.Title, first.Description, first.Link); first.ID != want {
		t.Fatalf("item ID %s is not the content hash %s", first.ID, want)
	}
	want := time.Date(2013, 2, 4, 9, 0, 0, 0, time.UTC).UnixMilli()
	if first.Created != want {
		t.Fatalf("Created = %d, want %d", first.Created, want)
	}
	if first.Source != news.NoNode {
		t.Fatalf("Source = %d, want NoNode", first.Source)
	}
	// Parsing the same bytes twice yields the same identities: the dedupe
	// invariant the gateway relies on.
	again, err := ParseFeed(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i].ID != again[i].ID {
			t.Fatalf("item %d ID unstable across parses", i)
		}
	}
}

func TestParseFeedAtom(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<feed xmlns="http://www.w3.org/2005/Atom">
  <title>Atom Fixture</title>
  <entry>
    <title>First entry</title>
    <summary>A summary.</summary>
    <link rel="alternate" href="https://example.org/1"/>
    <published>2013-02-04T09:00:00Z</published>
  </entry>
  <entry>
    <title>Second entry</title>
    <content>Full content, no summary.</content>
    <link href="https://example.org/2"/>
    <updated>2013-02-05T10:00:00Z</updated>
  </entry>
</feed>`
	items, err := ParseFeed([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("parsed %d items, want 2", len(items))
	}
	if items[0].Link != "https://example.org/1" {
		t.Fatalf("unexpected link %q", items[0].Link)
	}
	if items[1].Description != "Full content, no summary." {
		t.Fatalf("content fallback not used: %q", items[1].Description)
	}
	if items[0].Created == 0 || items[1].Created == 0 {
		t.Fatal("atom timestamps not parsed")
	}
}

func TestParseFeedHostile(t *testing.T) {
	// Truncated or malformed XML must error, never panic.
	for _, bad := range []string{
		"",
		"<rss><channel><item><title>cut off",
		"<rss version=\"2.0\"><channel><item></rss>",
		string([]byte{0xff, 0xfe, 0x00}),
	} {
		if _, err := ParseFeed([]byte(bad)); err == nil {
			t.Fatalf("ParseFeed(%q) succeeded, want error", bad)
		}
	}
	// Empty-but-valid documents parse to zero items.
	items, err := ParseFeed([]byte(`<rss version="2.0"><channel></channel></rss>`))
	if err != nil || len(items) != 0 {
		t.Fatalf("empty channel: items=%d err=%v", len(items), err)
	}
	// Oversized fields are truncated before hashing; entries with no title
	// and no link are dropped.
	huge := strings.Repeat("x", 3*maxFieldBytes)
	doc := `<rss version="2.0"><channel>` +
		`<item><title>` + huge + `</title></item>` +
		`<item><description>no title or link</description></item>` +
		`</channel></rss>`
	items, err = ParseFeed([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("parsed %d items, want 1 (empty entry dropped)", len(items))
	}
	if len(items[0].Title) > maxFieldBytes {
		t.Fatalf("title not truncated: %d bytes", len(items[0].Title))
	}
}

func TestRegistryAndSpecs(t *testing.T) {
	src, err := New("file:testdata/feed.xml")
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "file:testdata/feed.xml" {
		t.Fatalf("unexpected name %q", src.Name())
	}
	items, err := src.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("file source fetched %d items, want 6", len(items))
	}
	if _, err := New("bogus:whatever"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New("no-colon"); err == nil {
		t.Fatal("spec without colon accepted")
	}
	if _, err := New("file:/does/not/exist"); err != nil {
		t.Fatalf("file factory should defer missing-file errors to Fetch: %v", err)
	}
}

func TestFeedSourceHTTP(t *testing.T) {
	data, err := os.ReadFile("testdata/feed.xml")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(data)
	}))
	defer srv.Close()
	f := NewFeed(srv.URL)
	f.SetClient(srv.Client())
	items, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("fetched %d items, want 6", len(items))
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	fb := NewFeed(bad.URL)
	fb.SetClient(bad.Client())
	if _, err := fb.Fetch(context.Background()); err == nil {
		t.Fatal("non-2xx status accepted")
	}
}

// stubPublisher records publishes and can fail selectively.
type stubPublisher struct {
	items []news.Item
	fail  func(item news.Item) error
}

func (s *stubPublisher) Publish(id news.NodeID, item news.Item) error {
	if s.fail != nil {
		if err := s.fail(item); err != nil {
			return err
		}
	}
	s.items = append(s.items, item)
	return nil
}

func TestGatewayDedupes(t *testing.T) {
	pub := &stubPublisher{}
	g := NewGateway(GatewayConfig{
		Node:    7,
		Sources: []Source{NewFile("testdata/feed.xml")},
	}, pub)
	n, err := g.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || len(pub.items) != 6 {
		t.Fatalf("first poll published %d (%d recorded), want 6", n, len(pub.items))
	}
	for _, it := range pub.items {
		if it.Source != 7 {
			t.Fatalf("published item carries source %d, want gateway node 7", it.Source)
		}
	}
	n, err = g.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || len(pub.items) != 6 {
		t.Fatalf("second poll published %d, want 0 (dedupe)", n)
	}
	if g.Catalog().Len() != 6 || g.Published() != 6 {
		t.Fatalf("catalog=%d published=%d, want 6/6", g.Catalog().Len(), g.Published())
	}
	if _, ok := g.Catalog().Get(pub.items[0].ID); !ok {
		t.Fatal("published item missing from catalog")
	}
}

func TestGatewayRetriesFailedPublishes(t *testing.T) {
	bounce := errors.New("node mid-churn")
	calls := 0
	pub := &stubPublisher{fail: func(item news.Item) error {
		calls++
		if calls <= 2 {
			return bounce
		}
		return nil
	}}
	g := NewGateway(GatewayConfig{
		Node:    0,
		Sources: []Source{NewFile("testdata/feed.xml")},
	}, pub)
	n, err := g.PollOnce(context.Background())
	if !errors.Is(err, bounce) {
		t.Fatalf("poll error %v does not wrap the publish failure", err)
	}
	if n != 4 {
		t.Fatalf("first poll published %d, want 4 (2 bounced)", n)
	}
	// The bounced items were not cataloged, so the next poll retries exactly
	// those two.
	n, err = g.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || g.Catalog().Len() != 6 {
		t.Fatalf("retry poll published %d (catalog %d), want 2 (6)", n, g.Catalog().Len())
	}
}

// TestCleanFieldTruncationBoundary pins cleanField's repair to the cut
// point: a rune the cap splits is dropped, a rune ending exactly at the cap
// survives, and invalid bytes elsewhere pass through on capped and
// under-cap fields alike (a stray byte must not erase the whole field).
func TestCleanFieldTruncationBoundary(t *testing.T) {
	ascii := strings.Repeat("a", 2*maxFieldBytes)
	if got := cleanField(ascii); len(got) != maxFieldBytes {
		t.Fatalf("ascii truncated to %d bytes, want %d", len(got), maxFieldBytes)
	}
	// Invalid byte far from the cut: the field is truncated, not erased.
	dirty := "\xff" + ascii
	if got := cleanField(dirty); len(got) != maxFieldBytes || got[0] != 0xff {
		t.Fatalf("dirty field mangled: len=%d first=%#x", len(got), got[0])
	}
	if got := cleanField("\xffabc"); got != "\xffabc" {
		t.Fatalf("under-cap field rewritten to %q", got)
	}
	// A 2-byte rune split by the cap loses its dangling lead byte...
	split2 := strings.Repeat("a", maxFieldBytes-1) + "é" + "tail"
	if got := cleanField(split2); len(got) != maxFieldBytes-1 || !utf8.ValidString(got) {
		t.Fatalf("split 2-byte rune: len=%d valid=%v", len(got), utf8.ValidString(got))
	}
	// ...as does a 3-byte rune cut after two of its bytes...
	split3 := strings.Repeat("a", maxFieldBytes-2) + "€" + "tail"
	if got := cleanField(split3); len(got) != maxFieldBytes-2 || !utf8.ValidString(got) {
		t.Fatalf("split 3-byte rune: len=%d valid=%v", len(got), utf8.ValidString(got))
	}
	// ...but a rune ending exactly at the cap is kept whole.
	exact := strings.Repeat("a", maxFieldBytes-2) + "é" + "tail"
	if got := cleanField(exact); len(got) != maxFieldBytes || !strings.HasSuffix(got, "é") {
		t.Fatalf("exact-fit rune dropped: len=%d", len(got))
	}
}

// TestGatewayCancelledPollSkipsOnError pins the shutdown path: once the run
// context is cancelled, poll failures still surface through PollOnce's error
// but are not routed to OnError — cancelling whatsup-serve must not spray
// spurious gateway errors.
func TestGatewayCancelledPollSkipsOnError(t *testing.T) {
	var observed []error
	onErr := func(err error) { observed = append(observed, err) }
	g := NewGateway(GatewayConfig{
		Node:    0,
		Sources: []Source{NewFile("testdata/feed.xml")},
		OnError: onErr,
	}, &stubPublisher{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := g.PollOnce(ctx)
	if n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled poll: n=%d err=%v", n, err)
	}
	if len(observed) != 0 {
		t.Fatalf("OnError observed %v during shutdown", observed)
	}
	// A live context still reports real trouble.
	g = NewGateway(GatewayConfig{
		Node:    0,
		Sources: []Source{NewFile("testdata/does-not-exist.xml")},
		OnError: onErr,
	}, &stubPublisher{})
	if _, err := g.PollOnce(context.Background()); err == nil {
		t.Fatal("missing fixture must error")
	}
	if len(observed) != 1 {
		t.Fatalf("OnError calls = %d, want 1", len(observed))
	}
}

func TestGatewayRunStopsOnCancel(t *testing.T) {
	pub := &stubPublisher{}
	g := NewGateway(GatewayConfig{
		Node:     0,
		Sources:  []Source{NewFile("testdata/feed.xml")},
		Interval: time.Millisecond,
	}, pub)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for g.Published() < 6 {
		select {
		case <-deadline:
			t.Fatal("gateway never published the fixture")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
