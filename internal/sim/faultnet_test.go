package sim

import (
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/faultnet"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// faultWorldPolicy builds the fault scenario the determinism tests pin: a
// straggler cohort behind lossy links plus a 2-way partition over the middle
// of the run.
func faultWorldPolicy(n int, start, heal int64) *faultnet.Policy {
	ids := make([]news.NodeID, n)
	for i := range ids {
		ids[i] = news.NodeID(i)
	}
	p := faultnet.Stragglers(ids, 0.25, 11, faultnet.Rule{Loss: 0.3})
	groups := make(map[news.NodeID]int, n)
	for i, id := range ids {
		groups[id] = i % 2
	}
	return p.AddPartition(faultnet.Partition{Groups: groups, Start: start, Heal: heal})
}

// runFaultWorld is runWorldWorkers with a link policy overlaid on the
// uniform loss model.
func runFaultWorld(n, items, cycles int, seed int64, workers int, links *faultnet.Policy) *metrics.Collector {
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
	e := New(Config{
		Seed: seed, Cycles: cycles, LossRate: 0.1, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, Links: links,
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return col
}

// TestFaultnetDeterminismAcrossWorkerCounts extends the engine's core
// determinism contract to fault injection: with per-link loss draws and a
// scheduled partition active, a given seed still produces bit-identical
// collector output on one worker or many. The policy's draws are stateless
// hashes keyed by (link, cycle), so no worker interleaving can reorder them.
func TestFaultnetDeterminismAcrossWorkerCounts(t *testing.T) {
	const n, items, cycles, seed = 120, 40, 25, 7
	links := faultWorldPolicy(n, 8, 16)
	ref := fingerprint(runFaultWorld(n, items, cycles, seed, 1, links))
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			got := fingerprint(runFaultWorld(n, items, cycles, seed, workers, faultWorldPolicy(n, 8, 16)))
			if got != ref {
				t.Fatalf("workers=%d rep=%d diverged from the 1-worker run under faults:\n--- want\n%s--- got\n%s",
					workers, rep, ref, got)
			}
		}
	}
}

// TestFaultnetEmptyPolicyMatchesNil pins the zero-cost contract: attaching
// an empty policy must not consume a single RNG draw anywhere, so the run is
// bit-identical with the nil-policy history the seed corpus was recorded
// under.
func TestFaultnetEmptyPolicyMatchesNil(t *testing.T) {
	const n, items, cycles, seed = 100, 30, 20, 5
	ref := fingerprint(runFaultWorld(n, items, cycles, seed, 2, nil))
	got := fingerprint(runFaultWorld(n, items, cycles, seed, 2, faultnet.New()))
	if got != ref {
		t.Fatalf("empty policy diverged from nil policy:\n--- want\n%s--- got\n%s", ref, got)
	}
}

// TestPartitionHealsViewsReconverge runs a mid-run 2-way partition (halves,
// orthogonal to the interest communities) and pins the robustness story:
// while the cut is up no item crosses it (dissemination is SIR — copies
// dropped at the cut are gone, not queued); after the heal the overlays
// re-knit through the stale descriptors each side retained, so items
// published after the heal flow across the former cut again.
func TestPartitionHealsViewsReconverge(t *testing.T) {
	const (
		n      = 80
		items  = 24
		cycles = 44
		start  = 10
		heal   = 24
	)
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: cycles}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, 3)
	// One extra item published mid-cut from node 0 (group 0): its copies
	// toward group 1 die at the cut.
	late := news.New("cut-item", "d", "l", heal-2, 0)
	late.ID = news.ID(1000)
	pubs = append(pubs, Publication{Cycle: heal - 2, Source: 0, Item: late})
	col.RegisterItem(late.ID, n/2)

	group := func(id news.NodeID) int {
		if int(id) < n/2 {
			return 0
		}
		return 1
	}
	ids := make([]news.NodeID, n)
	for i := range ids {
		ids[i] = news.NodeID(i)
	}
	groups := make(map[news.NodeID]int, n)
	for _, id := range ids {
		groups[id] = group(id)
	}
	links := faultnet.New()
	links.AddPartition(faultnet.Partition{Groups: groups, Start: start, Heal: heal})

	crossEdges := func(e *Engine) int {
		cross := 0
		for _, p := range e.Peers() {
			for _, d := range p.RPS().View().Entries() {
				if group(p.ID()) != group(d.Node) {
					cross++
				}
			}
		}
		return cross
	}
	// itemGroup maps every item to its source's partition side, so the
	// delivery stream can be audited for cut crossings.
	itemGroup := make(map[news.ID]int, len(pubs))
	itemCycle := make(map[news.ID]int64, len(pubs))
	for _, pub := range pubs {
		itemGroup[pub.Item.ID] = group(pub.Source)
		itemCycle[pub.Item.ID] = pub.Cycle
	}
	var crossAtHealEve, crossAtEnd int
	crossedDuringCut := 0
	crossedAfterHeal := 0
	e := New(Config{
		Seed: 3, Cycles: cycles, Publications: pubs, BootstrapDegree: 4,
		Links: links,
		OnDelivery: func(d core.Delivery, now int64) {
			if group(d.Node) == itemGroup[d.Item] {
				return
			}
			switch {
			case now >= start && now < heal:
				crossedDuringCut++
			case now >= heal && itemCycle[d.Item] >= heal:
				// An item born after the heal reached the other side: the
				// overlay re-knit end to end.
				crossedAfterHeal++
			}
		},
		OnCycleEnd: func(e *Engine, now int64) {
			switch now {
			case heal - 1:
				crossAtHealEve = crossEdges(e)
			case cycles:
				crossAtEnd = crossEdges(e)
			}
		},
	}, peers, col)
	e.Bootstrap()
	e.Run()

	if crossedDuringCut != 0 {
		t.Fatalf("%d deliveries crossed the partition while the cut was up, want 0", crossedDuringCut)
	}
	// The retained (stale) cross-group descriptors are the heal's seed: the
	// cut must not have scrubbed every one, and by the end of the run gossip
	// must have re-knit the views across the former cut.
	if crossAtHealEve == 0 {
		t.Fatal("no cross-group descriptors survived the cut; the overlay cannot re-knit")
	}
	if crossAtEnd == 0 {
		t.Fatal("views never re-knit across the healed partition")
	}
	if crossedAfterHeal == 0 {
		t.Fatal("no post-heal item ever reached the far side; dissemination never recovered")
	}
}
