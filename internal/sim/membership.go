// Membership: the lifecycle-aware member table and the declarative churn
// schedule of the engine.
//
// The engine no longer assumes a frozen population. Every peer is a member
// with a lifecycle state (Online, Offline, Departed) and a stable dense
// index assigned at registration. Indices are never reused or compacted —
// a departed member keeps its slot — so the worker sharding of the phase
// loop and the per-peer RNG streams are independent of how much churn a run
// has seen, which is what keeps results bit-identical for any worker count
// even under heavy join/leave/crash schedules.
//
// Churn is declarative: a ChurnSchedule lists membership events by cycle and
// the engine applies them serially at the start of the cycle, before any
// peer acts. Event application consumes randomness only from the engine
// stream of the affected peer (bootstrap sampling for joins and rejoins), so
// schedules compose with the determinism contract.
package sim

import (
	"math/rand"
	"slices"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
)

// MemberState is the lifecycle state of one engine member.
type MemberState uint8

// The three lifecycle states. Transitions: a join registers a member as
// Online; Crash moves Online → Offline (volatile state lost, may return);
// Rejoin moves Offline → Online; Leave moves Online or Offline → Departed,
// which is final.
const (
	// Online members gossip, publish and receive.
	Online MemberState = iota
	// Offline members are crashed: they hold their durable state (profile)
	// but do not participate; messages addressed to them are dropped.
	Offline
	// Departed members left for good; their slot (and dense index) remains
	// so sharding and RNG streams stay stable.
	Departed
)

// String implements fmt.Stringer.
func (s MemberState) String() string {
	switch s {
	case Online:
		return "online"
	case Offline:
		return "offline"
	case Departed:
		return "departed"
	default:
		return "unknown"
	}
}

// ChurnEventKind names one membership transition.
type ChurnEventKind uint8

// The scheduled membership transitions.
const (
	// ChurnJoin registers a brand-new peer (built by Config.NewPeer) and
	// bootstraps its views from the online population: it cold-starts from a
	// random online host's views when the peer supports ColdStarter,
	// otherwise from a random online descriptor sample.
	ChurnJoin ChurnEventKind = iota
	// ChurnLeave is a graceful, final departure.
	ChurnLeave
	// ChurnCrash abruptly takes a member offline, wiping its volatile state.
	ChurnCrash
	// ChurnRejoin brings a crashed member back online with its profile
	// retained but views wiped and re-seeded from an online sample.
	ChurnRejoin
)

// String implements fmt.Stringer.
func (k ChurnEventKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnLeave:
		return "leave"
	case ChurnCrash:
		return "crash"
	case ChurnRejoin:
		return "rejoin"
	default:
		return "unknown"
	}
}

// ChurnEvent schedules one membership transition for one node at one cycle.
type ChurnEvent struct {
	Cycle int64
	Kind  ChurnEventKind
	Node  news.NodeID
}

// ChurnSchedule is a declarative membership trace: the engine applies the
// events of cycle c at the start of cycle c, in slice order for events
// sharing a cycle. An empty schedule reproduces the historical fixed-peer
// behaviour bit-identically. Invalid events (joins for existing ids, leaves
// for unknown ids, rejoins for members that are not offline) are skipped,
// mirroring how a real system tolerates stale membership commands.
type ChurnSchedule struct {
	Events []ChurnEvent
}

// Empty reports whether the schedule contains no events.
func (s ChurnSchedule) Empty() bool { return len(s.Events) == 0 }

// Add appends one event and returns the schedule for chaining.
func (s *ChurnSchedule) Add(cycle int64, kind ChurnEventKind, node news.NodeID) *ChurnSchedule {
	s.Events = append(s.Events, ChurnEvent{Cycle: cycle, Kind: kind, Node: node})
	return s
}

// Merge appends another schedule's events and re-sorts by cycle (stable, so
// relative order within a cycle follows the concatenation order).
func (s *ChurnSchedule) Merge(other ChurnSchedule) *ChurnSchedule {
	s.Events = append(s.Events, other.Events...)
	slices.SortStableFunc(s.Events, func(a, b ChurnEvent) int {
		switch {
		case a.Cycle < b.Cycle:
			return -1
		case a.Cycle > b.Cycle:
			return 1
		default:
			return 0
		}
	})
	return s
}

// FlashCrowd generates the flash-crowd arrival scenario: joiners new peers
// with consecutive ids starting at firstID, arriving perCycle at a time from
// the given start cycle — the breaking-news audience spike a production news
// system must absorb. perCycle <= 0 means all joiners arrive in one cycle.
func FlashCrowd(start int64, firstID news.NodeID, joiners, perCycle int) ChurnSchedule {
	if perCycle <= 0 {
		perCycle = joiners
	}
	var s ChurnSchedule
	for i := 0; i < joiners; i++ {
		s.Add(start+int64(i/perCycle), ChurnJoin, firstID+news.NodeID(i))
	}
	return s
}

// ChurnTraceConfig parameterizes ChurnTrace.
type ChurnTraceConfig struct {
	// Seed drives the trace generation (independent of the engine seed).
	Seed int64
	// Nodes subjects ids [0, Nodes) to churn.
	Nodes int
	// From and To bound the cycles in which departures are drawn
	// (rejoins may land after To).
	From, To int64
	// CrashRate is the per-node per-cycle probability of an abrupt crash.
	CrashRate float64
	// LeaveRate is the per-node per-cycle probability of a graceful,
	// permanent leave.
	LeaveRate float64
	// Downtime is how many cycles a crashed node stays offline before its
	// rejoin is scheduled; 0 means crashed nodes never return.
	Downtime int64
	// DowntimeJitter adds uniform extra downtime in [0, DowntimeJitter].
	DowntimeJitter int64
}

// ChurnTrace generates a trace-style schedule: every cycle in [From, To),
// each currently-up node crashes or leaves with the configured
// probabilities, and crashed nodes rejoin after Downtime (+ jitter) cycles.
// The generator tracks the up/down state it induces, so it never emits
// contradictory events (e.g. crashing a node that is already down). The
// trace depends only on the config, never on the simulation it is later
// applied to.
func ChurnTrace(cfg ChurnTraceConfig) ChurnSchedule {
	rng := rand.New(rand.NewSource(cfg.Seed))
	type status uint8
	const (
		up, down, gone status = 0, 1, 2
	)
	state := make([]status, cfg.Nodes)
	rejoinAt := make(map[int64][]news.NodeID)
	var s ChurnSchedule
	for c := cfg.From; c < cfg.To; c++ {
		for _, id := range rejoinAt[c] {
			s.Add(c, ChurnRejoin, id)
			state[int(id)] = up
		}
		delete(rejoinAt, c)
		for n := 0; n < cfg.Nodes; n++ {
			if state[n] != up {
				continue
			}
			switch f := rng.Float64(); {
			case f < cfg.CrashRate:
				s.Add(c, ChurnCrash, news.NodeID(n))
				state[n] = down
				if cfg.Downtime > 0 {
					back := c + cfg.Downtime
					if cfg.DowntimeJitter > 0 {
						back += rng.Int63n(cfg.DowntimeJitter + 1)
					}
					rejoinAt[back] = append(rejoinAt[back], news.NodeID(n))
				}
			case f < cfg.CrashRate+cfg.LeaveRate:
				s.Add(c, ChurnLeave, news.NodeID(n))
				state[n] = gone
			}
		}
	}
	// Flush rejoins scheduled past To, in cycle order for determinism.
	cycles := make([]int64, 0, len(rejoinAt))
	//whatsup:commutative keys collected then sorted below
	for c := range rejoinAt {
		cycles = append(cycles, c)
	}
	slices.Sort(cycles)
	for _, c := range cycles {
		for _, id := range rejoinAt[c] {
			s.Add(c, ChurnRejoin, id)
		}
	}
	return s
}

// Crasher is implemented by peers whose volatile state can be wiped on a
// crash (core.Node and any baseline holding views). The engine calls it when
// applying ChurnCrash.
type Crasher interface {
	Crash()
}

// Leaver is implemented by peers that want a hook on graceful departure.
type Leaver interface {
	Leave()
}

// Rejoiner is implemented by peers that handle their own resume-from-crash:
// the engine hands them a bootstrap sample of online descriptors. Peers
// without it are re-seeded through their RPS/WUP layers directly.
type Rejoiner interface {
	Rejoin(bootstrap []overlay.Descriptor, now int64)
}

// ColdStarter is implemented by peers that support the paper's joining
// procedure (Section II-D): inheriting the views of a live contact. The
// engine uses it for scheduled joins; peers without it are seeded with a
// random online descriptor sample instead.
type ColdStarter interface {
	ColdStart(inheritedRPS, inheritedWUP []overlay.Descriptor, now int64)
}

// DepartureNoticer is implemented by peers that take part in the departure
// notice protocol (Config.DepartureNotices): they accept tombstones of
// gracefully departed peers — evicting those peers from their views and
// filtering their stale descriptors out of merges for one horizon — and
// expose their active tombstones for piggybacking on outgoing gossip.
// core.Node implements it; baselines without it simply never see notices.
type DepartureNoticer interface {
	NoteDeparture(t overlay.Tombstone, now int64)
	AppendTombstones(dst []overlay.Tombstone) []overlay.Tombstone
}
