package sim

import (
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// protoWorld builds a small community world with the churn protocol knobs
// set, returning the engine ready to step manually.
func protoWorld(n, cycles int, schedule ChurnSchedule, cfg core.Config, simCfg func(*Config)) (*Engine, *metrics.Collector) {
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions, rand.New(rand.NewSource(60+int64(i))))
	}
	col := metrics.NewCollector()
	c := Config{Seed: 6, Cycles: cycles, BootstrapDegree: 5, Churn: schedule}
	if simCfg != nil {
		simCfg(&c)
	}
	e := New(c, peers, col)
	e.Bootstrap()
	return e, col
}

// holders counts the online views that still contain the given node.
func holders(e *Engine, id news.NodeID) int {
	n := 0
	for _, p := range e.OnlinePeers() {
		if p.RPS().View().Contains(id) || p.WUP().View().Contains(id) {
			n++
		}
	}
	return n
}

// TestDepartureNoticesEvictLeaverFast is the tentpole property at the sim
// level: with notices on, a graceful leaver vanishes from every online view
// within a couple of cycles — far inside the 30-cycle TTL that is the only
// other eviction path — while the same world with notices off still holds
// ghost descriptors then.
func TestDepartureNoticesEvictLeaverFast(t *testing.T) {
	const n, cycles, leaveCycle = 60, 20, 8
	const leaver = news.NodeID(11)
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: cycles, DescriptorTTL: 30}
	var schedule ChurnSchedule
	schedule.Add(leaveCycle, ChurnLeave, leaver)

	run := func(notices bool) (atLeave, after int) {
		e, _ := protoWorld(n, cycles, schedule, cfg, func(c *Config) { c.DepartureNotices = notices })
		for e.Now() < leaveCycle-1 {
			e.Step()
		}
		atLeave = holders(e, leaver)
		e.Step() // the leave applies at the start of this cycle
		e.Step() // one more cycle for forwarded tombstones to flood
		return atLeave, holders(e, leaver)
	}

	atLeave, withNotices := run(true)
	if atLeave == 0 {
		t.Fatal("setup: nobody held the leaver's descriptor before it left")
	}
	if withNotices != 0 {
		t.Fatalf("with departure notices %d views still hold the leaver one cycle after the flood began", withNotices)
	}
	if _, without := run(false); without == 0 {
		t.Fatal("without notices the leaver should still haunt views (TTL=30 cannot have evicted it)")
	}
}

// TestRefillRecoversDrainedViews: after a mass crash drains the survivors'
// views via TTL eviction, the anti-entropy refill pulls them back above the
// watermark, and its request/reply traffic is visible in the collector.
func TestRefillRecoversDrainedViews(t *testing.T) {
	const n, cycles, crashCycle = 60, 30, 8
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: cycles, DescriptorTTL: 4}
	var schedule ChurnSchedule
	for i := 0; i < n/2; i++ { // crash half the world, never to return
		schedule.Add(crashCycle, ChurnCrash, news.NodeID(i*2))
	}

	minFill := func(e *Engine) float64 {
		min := 1.0
		for _, p := range e.OnlinePeers() {
			v := p.RPS().View()
			if f := float64(v.Len()) / float64(v.Capacity()); f < min {
				min = f
			}
		}
		return min
	}

	const wm = 0.5
	e, col := protoWorld(n, cycles, schedule, cfg, func(c *Config) { c.RefillWatermark = wm })
	e.Run()
	if got := minFill(e); got < wm {
		t.Fatalf("with refill the worst online RPS fill is %.2f, want >= watermark %.1f", got, wm)
	}
	if col.Messages(metrics.MsgRefillRequest) == 0 || col.Messages(metrics.MsgRefillReply) == 0 {
		t.Fatalf("refill traffic not recorded: %d requests, %d replies",
			col.Messages(metrics.MsgRefillRequest), col.Messages(metrics.MsgRefillReply))
	}
	if col.Bytes(metrics.MsgRefillRequest) == 0 {
		t.Fatal("refill requests must account their wire bytes")
	}

	plain, plainCol := protoWorld(n, cycles, schedule, cfg, nil)
	plain.Run()
	if plainCol.Messages(metrics.MsgRefillRequest) != 0 {
		t.Fatal("refill disabled by default must send no refill traffic")
	}
	if minFill(plain) >= minFill(e) && col.Messages(metrics.MsgRefillRequest) > 0 {
		t.Logf("note: TTL alone already restored fill (%.2f vs %.2f)", minFill(plain), minFill(e))
	}
}

// TestChurnProtocolV2Determinism extends the worker-count determinism
// contract to the full v2 feature set: departure notices and refill enabled
// under a heavy churn schedule must stay bit-identical for Workers 1, 2, 8.
func TestChurnProtocolV2Determinism(t *testing.T) {
	const n, items, cycles, loss, seed = 120, 40, 40, 0.15, 7
	schedule := heavySchedule(n, cycles)
	run := func(workers int) (*metrics.Collector, *Engine) {
		return runChurnWorldCfg(n, items, cycles, loss, seed, workers, schedule, func(c *Config) {
			c.DepartureNotices = true
			c.RefillWatermark = 0.5
		})
	}
	refCol, refEngine := run(1)
	ref := fingerprint(refCol)
	if refCol.Messages(metrics.MsgDeparture) == 0 {
		t.Fatal("the heavy schedule must generate departure notices")
	}
	for _, workers := range []int{2, 8} {
		col, e := run(workers)
		if got := fingerprint(col); got != ref {
			t.Fatalf("workers=%d diverged with churn protocol v2 on:\n--- want\n%s--- got\n%s", workers, ref, got)
		}
		if e.OnlineCount() != refEngine.OnlineCount() || e.MemberCount() != refEngine.MemberCount() {
			t.Fatalf("membership diverged: %d/%d online vs %d/%d",
				e.OnlineCount(), e.MemberCount(), refEngine.OnlineCount(), refEngine.MemberCount())
		}
	}
}

// runChurnWorldCfg mirrors runChurnWorld but lets the test mutate the engine
// config (protocol v2 knobs) before the run.
func runChurnWorldCfg(n, items, cycles int, loss float64, seed int64, workers int,
	schedule ChurnSchedule, mut func(*Config)) (*metrics.Collector, *Engine) {
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles), DescriptorTTL: 10}
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions, rand.New(rand.NewSource(seed+int64(i))))
	}
	col := metrics.NewCollector()
	var pubs []Publication
	for k := 0; k < items; k++ {
		source := news.NodeID((2*k + k%2) % n)
		if int(source)%2 != k%2 {
			source = news.NodeID((int(source) + 1) % n)
		}
		it := news.New("v2-item", "d", "l", int64(1+k*cycles/items), source)
		it.ID = news.ID(k)
		pubs = append(pubs, Publication{Cycle: int64(1 + k*cycles/items), Source: source, Item: it})
		col.RegisterItem(it.ID, n/2)
	}
	for i := 0; i < n; i++ {
		col.RegisterNode(news.NodeID(i), items/2)
	}
	c := Config{
		Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, Churn: schedule,
		NewPeer: func(id news.NodeID) Peer {
			return core.NewNode(id, "", cfg, opinions, rand.New(rand.NewSource(seed+int64(id))))
		},
	}
	if mut != nil {
		mut(&c)
	}
	e := New(c, peers, col)
	e.Bootstrap()
	e.Run()
	return col, e
}
