package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// runWorldWorkers is runWorld with an explicit engine worker-pool size and an
// optional per-delivery observer.
func runWorldWorkers(n, items, cycles int, loss float64, seed int64, workers int,
	onDelivery func(core.Delivery, int64)) *metrics.Collector {
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
	e := New(Config{
		Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, OnDelivery: onDelivery,
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return col
}

// fingerprint renders every observable collector quantity into one string so
// two runs can be compared bit-for-bit: quality metrics, per-kind message
// counts and bytes, per-node statistics and the hop histograms.
func fingerprint(c *metrics.Collector) string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%v R=%v F1=%v\n", c.Precision(), c.Recall(), c.F1())
	for k := metrics.MsgBeep; k <= metrics.MsgWUPReply; k++ {
		fmt.Fprintf(&b, "%v:%d/%d\n", k, c.Messages(k), c.Bytes(k))
	}
	for _, id := range c.NodeIDs() {
		ns := c.Node(id)
		fmt.Fprintf(&b, "node%d:%d,%d,%d,%d\n", id, ns.Interested, ns.Received, ns.ReceivedLiked, ns.DislikeDeliveries)
	}
	hists := []struct {
		name string
		h    map[int]int
	}{
		{"fwdLike", c.ForwardByLike}, {"fwdDislike", c.ForwardByDislike},
		{"infLike", c.InfectionByLike}, {"infDislike", c.InfectionByDislike},
		{"dislikesAtLiked", c.DislikesAtLikedArrival},
	}
	for _, hist := range hists {
		name, h := hist.name, hist.h
		keys := make([]int, 0, len(h))
		//whatsup:commutative keys collected then sorted below
		for k := range h {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(&b, "%s:", name)
		for _, k := range keys {
			fmt.Fprintf(&b, " %d=%d", k, h[k])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// TestDeterminismAcrossWorkerCounts is the engine's core contract: a given
// seed produces bit-identical collector output whether the phases run on
// one worker or many, and repeated runs reproduce each other exactly.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const n, items, cycles, loss, seed = 120, 40, 25, 0.15, 7
	ref := fingerprint(runWorldWorkers(n, items, cycles, loss, seed, 1, nil))
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			got := fingerprint(runWorldWorkers(n, items, cycles, loss, seed, workers, nil))
			if got != ref {
				t.Fatalf("workers=%d rep=%d diverged from the 1-worker run:\n--- want\n%s--- got\n%s",
					workers, rep, ref, got)
			}
		}
	}
}

// TestDeterminismOfDeliveryOrder pins the stronger contract that the
// OnDelivery callback sequence itself — not just the aggregated counters —
// is identical for any worker count.
func TestDeterminismOfDeliveryOrder(t *testing.T) {
	trace := func(workers int) string {
		var b strings.Builder
		runWorldWorkers(80, 30, 20, 0.1, 3, workers, func(d core.Delivery, now int64) {
			fmt.Fprintf(&b, "%d:%d->%d@%d\n", now, d.Item, d.Node, d.Hops)
		})
		return b.String()
	}
	ref := trace(1)
	if ref == "" {
		t.Fatal("no deliveries observed")
	}
	for _, workers := range []int{2, 8} {
		if got := trace(workers); got != ref {
			t.Fatalf("delivery order with %d workers diverged from serial run", workers)
		}
	}
}

// TestParallelDrainNoDuplicateDeliveries exercises the parallel BEEP drain
// under message loss (run with -race in CI): the SIR model must hold — no
// (node, item) pair is ever delivered twice — and the collector's totals
// must agree with the observed delivery stream.
func TestParallelDrainNoDuplicateDeliveries(t *testing.T) {
	const n, items, cycles, loss, seed, workers = 120, 40, 25, 0.3, 9, 4
	type key struct {
		node news.NodeID
		item news.ID
	}
	seen := make(map[key]int)
	observed := 0
	col := runWorldWorkers(n, items, cycles, loss, seed, workers, func(d core.Delivery, now int64) {
		if d.Duplicate {
			t.Fatalf("duplicate delivery surfaced to OnDelivery: %+v", d)
		}
		seen[key{d.Node, d.Item}]++
		observed++
	})
	for k, count := range seen {
		if count > 1 {
			t.Fatalf("node %d received item %d %d times", k.node, k.item, count)
		}
	}
	recorded := 0
	for _, id := range col.NodeIDs() {
		recorded += col.Node(id).Received
	}
	if recorded != observed {
		t.Fatalf("collector recorded %d deliveries, OnDelivery observed %d", recorded, observed)
	}
	if observed == 0 {
		t.Fatal("lossy run still must deliver something")
	}
}

// TestSimilarityCacheDeterministicAcrossWorkers pins that the versioned
// similarity cache (and the copy-on-write profile plumbing beneath it) is
// invisible to simulation results: a workload heavy in dislike routing —
// the path that scores transient item profiles against RPS views — yields
// bit-identical precision/recall/F1 and full collector fingerprints at any
// worker count. Cache hit patterns differ between runs (views churn
// differently per worker count is false — state is deterministic — but
// warm-up differs across cycles); only the floats must not.
func TestSimilarityCacheDeterministicAcrossWorkers(t *testing.T) {
	// items mostly disliked: 4 communities, sources publish cross-community
	// so most receivers dislike and BEEP leans on MostSimilar orientation.
	build := func(workers int) *metrics.Collector {
		const n, items, cycles = 100, 36, 22
		opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
			return int(node)%4 == int(item)%4
		})
		cfg := core.Config{FLike: 3, RPSViewSize: 10, DislikeTTL: 4, ProfileWindow: int64(cycles)}
		peers := make([]Peer, n)
		for i := 0; i < n; i++ {
			peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions,
				rand.New(rand.NewSource(100+int64(i))))
		}
		col := metrics.NewCollector()
		var pubs []Publication
		for k := 0; k < items; k++ {
			src := news.NodeID((k + 1) % n) // usually outside the item's community
			it := news.New(fmt.Sprintf("d-%d", k), "d", "l", int64(1+k*cycles/items), src)
			it.ID = news.ID(k)
			pubs = append(pubs, Publication{Cycle: int64(1 + k*cycles/items), Source: src, Item: it})
			col.RegisterItem(it.ID, n/4)
		}
		for i := 0; i < n; i++ {
			col.RegisterNode(news.NodeID(i), items/4)
		}
		e := New(Config{Seed: 5, Cycles: cycles, LossRate: 0.1, Workers: workers,
			BootstrapDegree: 4, Publications: pubs}, peers, col)
		e.Bootstrap()
		e.Run()
		return col
	}
	ref := build(1)
	if ref.Node(1).DislikeDeliveries == 0 && ref.Node(2).DislikeDeliveries == 0 {
		t.Log("warning: workload exercised little dislike routing")
	}
	refFP := fingerprint(ref)
	for _, workers := range []int{2, 8} {
		if got := fingerprint(build(workers)); got != refFP {
			t.Fatalf("workers=%d diverged with the similarity cache active:\n--- want\n%s--- got\n%s",
				workers, refFP, got)
		}
	}
}

// TestWorkersDefaultAndOverride checks the Workers knob surface.
func TestWorkersDefaultAndOverride(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, _, col := communityWorld(10, 0, 10, cfg, 4)
	if e := New(Config{Seed: 4, Cycles: 10}, peers, col); e.Workers() < 1 {
		t.Fatalf("default workers=%d, want >= 1", e.Workers())
	}
	peers2, _, col2 := communityWorld(10, 0, 10, cfg, 4)
	if e := New(Config{Seed: 4, Cycles: 10, Workers: 3}, peers2, col2); e.Workers() != 3 {
		t.Fatalf("workers=%d, want 3", e.Workers())
	}
}
