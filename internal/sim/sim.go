// Package sim is the deterministic cycle-based simulator used for the bulk
// of the evaluation (paper Section V: "simulations use the duration of a
// gossip cycle as a time unit"). Each cycle every peer purges its profile
// window, performs one RPS and one WUP exchange, and scheduled publications
// are disseminated to quiescence through a FIFO message queue. A configurable
// loss model drops BEEP and gossip messages (Table VI).
//
// The engine is strictly deterministic: given the same peers, schedule and
// seed, two runs produce identical results. Engines are single-threaded;
// parallelism lives one level up, across independent sweep points.
package sim

import (
	"math/rand"

	"whatsup/internal/cluster"
	"whatsup/internal/core"
	"whatsup/internal/graph"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/rps"
)

// Peer is the engine-facing contract of a protocol node. core.Node satisfies
// it; baselines provide their own implementations. A peer without an RPS or
// clustering layer returns nil from the corresponding accessor and the
// engine skips that gossip phase for it.
type Peer interface {
	ID() news.NodeID
	RPS() *rps.Protocol
	WUP() *cluster.Protocol
	UserProfile() *profile.Profile
	BeginCycle(now int64)
	InjectRPSCandidates()
	Publish(item news.Item, now int64) []core.Send
	Receive(msg core.ItemMessage, now int64) (core.Delivery, []core.Send)
}

// Publication schedules the creation of an item at a source node.
type Publication struct {
	Cycle  int64
	Source news.NodeID
	Item   news.Item
}

// Config parameterizes an engine run.
type Config struct {
	// Seed drives the engine's own randomness (loss decisions, bootstrap).
	Seed int64
	// Cycles is the number of gossip cycles Run executes.
	Cycles int
	// LossRate drops each message (BEEP, RPS and WUP legs independently)
	// with this probability (Table VI).
	LossRate float64
	// BootstrapDegree is the number of random descriptors each peer's views
	// are seeded with before the run (defaults to 5).
	BootstrapDegree int
	// Publications is the item schedule; entries outside [1, Cycles] never
	// fire under Run (Step honours whatever cycle it reaches).
	Publications []Publication
	// OnCycleEnd, if set, is invoked after each cycle with the engine; used
	// by the dynamics experiments (Figure 7) to sample view similarity.
	OnCycleEnd func(e *Engine, now int64)
	// OnDelivery, if set, observes every non-duplicate delivery.
	OnDelivery func(d core.Delivery, now int64)
}

type envelope struct {
	to  news.NodeID
	msg core.ItemMessage
}

// Engine drives a set of peers through gossip cycles.
type Engine struct {
	cfg   Config
	rng   *rand.Rand
	peers []Peer
	byID  map[news.NodeID]Peer
	col   *metrics.Collector
	now   int64
	pubs  map[int64][]Publication
	queue []envelope
}

// New builds an engine over the given peers, recording into col.
func New(cfg Config, peers []Peer, col *metrics.Collector) *Engine {
	if cfg.BootstrapDegree <= 0 {
		cfg.BootstrapDegree = 5
	}
	e := &Engine{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		byID: make(map[news.NodeID]Peer, len(peers)),
		col:  col,
		pubs: make(map[int64][]Publication),
	}
	for _, p := range peers {
		e.addPeer(p)
	}
	for _, pub := range cfg.Publications {
		e.pubs[pub.Cycle] = append(e.pubs[pub.Cycle], pub)
	}
	return e
}

func (e *Engine) addPeer(p Peer) {
	e.peers = append(e.peers, p)
	e.byID[p.ID()] = p
}

// AddPeer registers a peer between cycles (the joining-node experiment of
// Figure 7). The caller is responsible for cold-starting its views.
func (e *Engine) AddPeer(p Peer) { e.addPeer(p) }

// Peers returns the engine's peers in registration order.
func (e *Engine) Peers() []Peer { return e.peers }

// Peer returns the peer with the given id, or nil.
func (e *Engine) Peer(id news.NodeID) Peer { return e.byID[id] }

// Collector returns the metrics collector.
func (e *Engine) Collector() *metrics.Collector { return e.col }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// descriptorOf builds a fresh descriptor for a peer at the given time.
func descriptorOf(p Peer, now int64) overlay.Descriptor {
	return overlay.Descriptor{Node: p.ID(), Stamp: now, Profile: p.UserProfile().Clone()}
}

// Bootstrap seeds every peer's views with BootstrapDegree random
// descriptors, forming the initial random graph.
func (e *Engine) Bootstrap() {
	n := len(e.peers)
	if n < 2 {
		return
	}
	for _, p := range e.peers {
		descs := make([]overlay.Descriptor, 0, e.cfg.BootstrapDegree)
		for _, j := range e.rng.Perm(n) {
			q := e.peers[j]
			if q.ID() == p.ID() {
				continue
			}
			descs = append(descs, descriptorOf(q, 0))
			if len(descs) == e.cfg.BootstrapDegree {
				break
			}
		}
		if p.RPS() != nil {
			p.RPS().Seed(descs)
		}
		if p.WUP() != nil {
			p.WUP().Seed(descs, p.UserProfile())
		}
	}
}

// lost draws one loss decision.
func (e *Engine) lost() bool {
	return e.cfg.LossRate > 0 && e.rng.Float64() < e.cfg.LossRate
}

// descriptorsWireSize sums the wire sizes of a descriptor batch.
func descriptorsWireSize(batch []overlay.Descriptor) int {
	total := 0
	for _, d := range batch {
		total += d.WireSize()
	}
	return total
}

// Step advances the simulation by one cycle.
func (e *Engine) Step() {
	e.now++
	now := e.now

	for _, p := range e.peers {
		p.BeginCycle(now)
	}
	e.gossipRPS(now)
	e.gossipWUP(now)

	for _, pub := range e.pubs[now] {
		src := e.byID[pub.Source]
		if src == nil {
			continue
		}
		sends := src.Publish(pub.Item, now)
		if len(sends) > 0 {
			e.col.RecordForward(true, 0)
		}
		e.enqueue(sends)
	}
	e.drain(now)

	if e.cfg.OnCycleEnd != nil {
		e.cfg.OnCycleEnd(e, now)
	}
}

// Run executes cfg.Cycles cycles (continuing from the current time if
// called after Step).
func (e *Engine) Run() {
	for int(e.now) < e.cfg.Cycles {
		e.Step()
	}
}

func (e *Engine) gossipRPS(now int64) {
	for _, p := range e.peers {
		proto := p.RPS()
		if proto == nil {
			continue
		}
		target, ok := proto.SelectPeer()
		if !ok {
			continue
		}
		push := proto.MakePush(proto.Descriptor(now, p.UserProfile()))
		e.col.RecordMessage(metrics.MsgRPSRequest, descriptorsWireSize(push))
		if e.lost() {
			continue
		}
		responder := e.byID[target.Node]
		if responder == nil || responder.RPS() == nil {
			continue
		}
		rproto := responder.RPS()
		reply := rproto.AcceptPush(push, rproto.Descriptor(now, responder.UserProfile()))
		e.col.RecordMessage(metrics.MsgRPSReply, descriptorsWireSize(reply))
		if e.lost() {
			continue
		}
		proto.AcceptReply(reply)
	}
}

func (e *Engine) gossipWUP(now int64) {
	for _, p := range e.peers {
		proto := p.WUP()
		if proto == nil {
			continue
		}
		p.InjectRPSCandidates()
		target, ok := proto.SelectPeer()
		if !ok {
			continue
		}
		push := proto.MakePush(proto.Descriptor(now, p.UserProfile()))
		e.col.RecordMessage(metrics.MsgWUPRequest, descriptorsWireSize(push))
		if e.lost() {
			continue
		}
		responder := e.byID[target.Node]
		if responder == nil || responder.WUP() == nil {
			continue
		}
		rproto := responder.WUP()
		reply := rproto.AcceptPush(push, rproto.Descriptor(now, responder.UserProfile()), responder.UserProfile())
		e.col.RecordMessage(metrics.MsgWUPReply, descriptorsWireSize(reply))
		if e.lost() {
			continue
		}
		proto.AcceptReply(reply, p.UserProfile())
	}
}

func (e *Engine) enqueue(sends []core.Send) {
	for _, s := range sends {
		e.queue = append(e.queue, envelope{to: s.To, msg: s.Msg})
	}
}

// drain delivers queued BEEP messages to quiescence. Dissemination is
// instantaneous relative to gossip cycles, as in the paper's simulations.
// The queue is drained FIFO with an explicit head index so the backing
// array is reused across cycles instead of leaking its prefix.
func (e *Engine) drain(now int64) {
	head := 0
	for head < len(e.queue) {
		env := e.queue[head]
		e.queue[head] = envelope{} // release the profile for GC
		head++
		if head == len(e.queue) {
			e.queue = e.queue[:0]
			head = 0
		}
		e.col.RecordMessage(metrics.MsgBeep, env.msg.WireSize())
		if e.lost() {
			continue
		}
		p := e.byID[env.to]
		if p == nil {
			continue
		}
		d, sends := p.Receive(env.msg, now)
		if d.Duplicate {
			continue
		}
		e.col.RecordDelivery(d)
		if e.cfg.OnDelivery != nil {
			e.cfg.OnDelivery(d, now)
		}
		if len(sends) > 0 {
			e.col.RecordForward(d.Liked, d.Hops)
		}
		e.enqueue(sends)
	}
}

// WUPGraph snapshots the directed graph formed by the peers' WUP views,
// for the connectivity and clustering analyses (Figure 4, Section V-A).
// Peers without a clustering layer contribute no edges. Node ids must be
// dense in [0, len(peers)) for the returned graph indices to be meaningful;
// engines built by the experiment harness guarantee this.
func (e *Engine) WUPGraph() *graph.Directed {
	g := graph.NewDirected(len(e.peers))
	for _, p := range e.peers {
		if p.WUP() == nil {
			continue
		}
		for _, d := range p.WUP().View().Entries() {
			g.AddEdge(int(p.ID()), int(d.Node))
		}
	}
	return g
}
