// Package sim is the deterministic cycle-based simulator used for the bulk
// of the evaluation (paper Section V: "simulations use the duration of a
// gossip cycle as a time unit"). Each cycle every peer purges its profile
// window, performs one RPS and one WUP exchange, and scheduled publications
// are disseminated to quiescence. A configurable loss model drops BEEP and
// gossip messages (Table VI).
//
// The engine is parallel *and* strictly deterministic: peer state lives in
// shard-owned struct-of-arrays slabs (Config.Shards), per-cycle phases run
// on each shard's own worker slice (Config.Workers), and yet a given seed
// produces bit-identical results for any Workers×Shards combination. Four
// mechanisms guarantee this:
//
//   - Randomness is never drawn from a shared source. The engine derives one
//     RNG stream per peer from Config.Seed and the peer ID; loss decisions
//     and bootstrap sampling consume only the stream of the peer they
//     concern, in a per-peer order that is fixed by the phase structure.
//   - Every phase partitions state mutation by owner, and owners never
//     migrate between shards. Gossip rounds split into a parallel "compute
//     pushes" phase (each initiator touches only its own state), an "absorb
//     pushes" phase grouped per responder (each responder applies its
//     incoming pushes in initiator order), and a parallel "absorb replies"
//     phase. BEEP dissemination proceeds in hop rounds: all sends of a hop
//     are ordered by (to, from, item) and then delivered grouped per
//     receiver, with receiver-order delivery callbacks.
//   - Gossip exchanges that cross a shard boundary are routed as batches
//     encoded through the binary wire codec (see routeCrossShard): the
//     decoded descriptors carry the sender's exact profile norm-accumulator
//     bits, so a responder in another shard scores them bit-identically to
//     the in-memory originals. Shards=1 skips the codec entirely and is
//     structurally the pre-shard engine.
//   - Metrics are recorded into per-worker metrics.Collector scratch and
//     merged into the main collector at the end of every cycle; all merged
//     quantities are integers, so the merge is order-independent.
//
// Membership is dynamic (see membership.go): peers are members with
// lifecycle states (Online, Offline, Departed) held at stable dense global
// indices, and a declarative ChurnSchedule drives joins, graceful leaves,
// crashes and rejoins. A member's global index g fixes its shard (g mod
// Shards) and its slot in that shard's slab (g div Shards) for the lifetime
// of the engine, so sharding never shifts under churn. The determinism
// contract extends to churn: a given seed and schedule produce bit-identical
// results for any worker and shard count, because events are applied
// serially at the cycle boundary and consume randomness only from the
// affected peer's stream. An empty schedule at Shards=1 reproduces the
// historical fixed-population behaviour bit-identically.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"whatsup/internal/cluster"
	"whatsup/internal/core"
	"whatsup/internal/faultnet"
	"whatsup/internal/graph"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/rps"
	"whatsup/internal/wire"
)

// Peer is the engine-facing contract of a protocol node. core.Node satisfies
// it; baselines provide their own implementations. A peer without an RPS or
// clustering layer returns nil from the corresponding accessor and the
// engine skips that gossip phase for it. Peer methods are only ever invoked
// for one peer from one goroutine at a time; they may freely read immutable
// shared data (descriptors, profiles snapshots, the opinion trace).
type Peer interface {
	ID() news.NodeID
	RPS() *rps.Protocol
	WUP() *cluster.Protocol
	UserProfile() *profile.Profile
	BeginCycle(now int64)
	InjectRPSCandidates()
	Publish(item news.Item, now int64) []core.Send
	Receive(msg core.ItemMessage, now int64) (core.Delivery, []core.Send)
}

// Publication schedules the creation of an item at a source node.
type Publication struct {
	Cycle  int64
	Source news.NodeID
	Item   news.Item
}

// Config parameterizes an engine run.
type Config struct {
	// Seed drives the engine's own randomness (loss decisions, bootstrap).
	Seed int64
	// Cycles is the number of gossip cycles Run executes.
	Cycles int
	// LossRate drops each message (BEEP, RPS and WUP legs independently)
	// with this probability (Table VI).
	LossRate float64
	// Links, when set, overlays per-link network conditions on top of the
	// uniform loss model: a faultnet.Policy assigning loss rates and
	// scheduled partitions to individual directed links (latency and
	// bandwidth rules only apply under the live transports — the sim
	// delivers within the cycle either way). Link decisions are stateless
	// hashes keyed off Seed, the link and the event, so they never perturb
	// the per-peer streams: a run with a nil (or empty) policy is
	// bit-identical with history, and any policy preserves the worker-count
	// determinism contract. The policy must not be mutated during the run.
	Links *faultnet.Policy
	// BootstrapDegree is the number of random descriptors each peer's views
	// are seeded with before the run (defaults to 5).
	BootstrapDegree int
	// Workers is the total worker budget the per-cycle phases are sharded
	// across (0 = GOMAXPROCS). Each shard runs max(1, Workers/Shards)
	// workers over its own slab. Results are bit-identical for any value;
	// see the package documentation for the determinism contract.
	Workers int
	// Shards is the number of peer-state slabs the membership table is
	// split into (0 or 1 = a single slab, the pre-shard engine). A member
	// at global dense index g is owned by shard g mod Shards. Gossip
	// exchanges crossing a shard boundary are routed as wire-codec batches
	// (the inter-shard ABI); results are bit-identical for any shard count.
	Shards int
	// Publications is the item schedule; entries outside [1, Cycles] never
	// fire under Run (Step honours whatever cycle it reaches).
	Publications []Publication
	// Churn is the declarative membership schedule: the events of cycle c
	// are applied serially at the start of cycle c, before any peer acts.
	// An empty schedule reproduces the historical fixed-peer behaviour
	// bit-identically.
	Churn ChurnSchedule
	// NewPeer constructs the peer object for a scheduled ChurnJoin event.
	// Required when the schedule contains joins (join events are skipped
	// otherwise); the engine bootstraps the new peer's views from the
	// online population.
	NewPeer func(id news.NodeID) Peer
	// DepartureNotices enables the churn protocol's graceful-departure path:
	// a scheduled ChurnLeave sends a departure notice to the leaver's view
	// neighbours (subject to the loss model), which evict it immediately and
	// piggyback the tombstone on their own gossip for one horizon instead of
	// waiting out the descriptor TTL. Off by default — disabled runs are
	// bit-identical with the historical engine.
	DepartureNotices bool
	// RefillWatermark enables adaptive view refill: at the start of each
	// cycle, every online peer whose RPS or WUP view occupancy has fallen
	// under this fraction of capacity pulls an anti-entropy descriptor
	// sample from its freshest surviving neighbour. Refill loss decisions
	// consume only the pulling peer's engine stream and the phase runs
	// serially in dense-index order, preserving the worker-count determinism
	// contract. Zero disables refill (the historical behaviour).
	RefillWatermark float64
	// OnCycleEnd, if set, is invoked after each cycle with the engine; used
	// by the dynamics experiments (Figure 7) to sample view similarity.
	OnCycleEnd func(e *Engine, now int64)
	// OnDelivery, if set, observes every non-duplicate delivery. Deliveries
	// are reported in a deterministic order regardless of worker or shard
	// count.
	OnDelivery func(d core.Delivery, now int64)
}

// largeScaleMembers is the population above which the engine switches its
// bootstrap and join sampling from O(n) permutation draws to O(k) rejection
// sampling: at million-peer scale a per-peer rand.Perm over the membership
// table is quadratic in both time and allocation. Below the threshold the
// historical draw sequence is reproduced exactly (the determinism pins all
// run far below it); above it the rejection draws still consume only the
// sampled peer's own stream, so the Workers×Shards contract is unaffected.
const largeScaleMembers = 100_000

// envelope is one in-flight BEEP message.
type envelope struct {
	from news.NodeID
	to   news.NodeID
	msg  core.ItemMessage
}

// segment is one per-receiver span of a sorted BEEP hop.
type segment struct {
	lo, hi int
}

// slab is the struct-of-arrays peer state owned by one shard: parallel
// arrays indexed by slot (global dense index div Shards). Dense storage
// keeps a shard's lifecycle scans cache-friendly at million-peer scale and
// gives each shard a self-contained state block — the unit a future
// multi-process engine would pin to one process.
type slab struct {
	peers   []Peer
	states  []MemberState
	streams []*rand.Rand // engine-side per-peer randomness
}

// delivSpan locates one BEEP segment's deliveries inside a worker's buffer,
// so OnDelivery callbacks can replay them in global receiver order no matter
// which shard's worker produced them.
type delivSpan struct {
	w, lo, hi int
}

// pendingLeg is one decoded cross-shard exchange leg awaiting fix-up: arena
// offsets are recorded during decode and resolved to subslices only after
// the arena stops growing (appends may relocate the backing array).
type pendingLeg struct {
	g        int // global dense index of the exchange's initiator
	dlo, dhi int // descriptor arena span
	tlo, thi int // tombstone arena span
}

// shardDecode is one destination shard's pooled decode state for inter-shard
// batches: descriptor and tombstone arenas plus the pending fix-up list, all
// reused across rounds so steady-state routing allocates only the decoded
// profiles themselves (which outlive the round inside receiver views).
type shardDecode struct {
	descs   []overlay.Descriptor
	tombs   []overlay.Tombstone
	pending []pendingLeg
}

// ShardStats counts the gossip traffic routed between shards through the
// wire codec. It is engine-side observability, deliberately separate from
// the metrics.Collector: collector fingerprints must stay bit-identical
// across shard counts, while these numbers exist precisely to differ.
type ShardStats struct {
	// Crossings is the number of exchange legs (pushes and replies) that
	// crossed a shard boundary and were codec-routed.
	Crossings int64
	// Batches is the number of non-empty (source, destination) batch
	// buffers flushed.
	Batches int64
	// BatchBytes is the total encoded size of those batches — the
	// inter-shard ABI traffic a multi-process split would put on a pipe.
	BatchBytes int64
}

// emptyDescriptors preserves non-nil-but-empty reply semantics across the
// codec boundary: an exchange whose reply slice is non-nil is absorbed (and
// its piggybacked tombstones noted) even when it carries no descriptors.
var emptyDescriptors = make([]overlay.Descriptor, 0)

// Engine drives a set of peers through gossip cycles.
//
// The scratch fields at the bottom are reused across hops and cycles so the
// steady-state per-cycle loop performs no engine-side allocation beyond
// decoded cross-shard profiles: the BEEP hop batches, the per-receiver
// segments, the per-worker send/delivery buffers, the gossip exchange table
// and the inter-shard batch buffers and decode arenas all keep their
// capacity between cycles.
type Engine struct {
	cfg     Config
	workers int // total worker budget
	nshards int // shard count (>= 1)
	wper    int // workers per shard = max(1, workers/nshards)
	slabs   []slab
	count   int                 // total registered members across all slabs
	idx     map[news.NodeID]int // node id -> global dense index
	online  int                 // count of members in state Online
	col     *metrics.Collector
	cols    []*metrics.Collector // per-worker scratch collectors, nshards*wper
	now     int64
	pubs    map[int64][]Publication
	churn   map[int64][]ChurnEvent
	stats   ShardStats

	batch       []envelope // sends of the current BEEP hop
	next        []envelope // assembly buffer for the following hop
	segs        []segment  // per-receiver spans of the sorted hop
	exs         []exchange // gossip exchange table, one slot per peer
	order       []news.NodeID
	bucketIdx   map[news.NodeID]int
	bucketLists [][]int
	sendBufs    [][]envelope      // per-worker BEEP sends
	delivBufs   [][]core.Delivery // per-worker deliveries for OnDelivery
	delivSegs   []delivSpan       // per-segment delivery spans, receiver order
	shardItems  [][]int           // per-shard item bins for irregular phases
	xbufs       [][]byte          // pooled (src*S+dst) inter-shard batch buffers
	xdec        []shardDecode     // per destination shard decode arenas
}

// New builds an engine over the given peers, recording into col.
func New(cfg Config, peers []Peer, col *metrics.Collector) *Engine {
	if cfg.BootstrapDegree <= 0 {
		cfg.BootstrapDegree = 5
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = 1
	}
	wper := workers / nshards
	if wper < 1 {
		wper = 1
	}
	pool := nshards * wper
	e := &Engine{
		cfg:        cfg,
		workers:    workers,
		nshards:    nshards,
		wper:       wper,
		slabs:      make([]slab, nshards),
		idx:        make(map[news.NodeID]int, len(peers)),
		col:        col,
		cols:       make([]*metrics.Collector, pool),
		pubs:       make(map[int64][]Publication),
		churn:      make(map[int64][]ChurnEvent),
		bucketIdx:  make(map[news.NodeID]int, len(peers)),
		sendBufs:   make([][]envelope, pool),
		delivBufs:  make([][]core.Delivery, pool),
		shardItems: make([][]int, nshards),
		xbufs:      make([][]byte, nshards*nshards),
		xdec:       make([]shardDecode, nshards),
	}
	for w := range e.cols {
		e.cols[w] = metrics.NewCollector()
	}
	for s := range e.slabs {
		n := len(peers) / nshards
		e.slabs[s].peers = make([]Peer, 0, n)
		e.slabs[s].states = make([]MemberState, 0, n)
		e.slabs[s].streams = make([]*rand.Rand, 0, n)
	}
	for _, p := range peers {
		e.addPeer(p)
	}
	for _, pub := range cfg.Publications {
		e.pubs[pub.Cycle] = append(e.pubs[pub.Cycle], pub)
	}
	for _, ev := range cfg.Churn.Events {
		e.churn[ev.Cycle] = append(e.churn[ev.Cycle], ev)
	}
	return e
}

// streamSeed derives the engine-side randomness seed of one peer from the
// run seed with a splitmix64 finalizer, decorrelating the per-peer streams
// from each other and from the affine node-level seeds used by callers.
func streamSeed(seed int64, id news.NodeID) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + (uint64(id)+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	return int64(z)
}

// shardOf returns the owner shard of a global dense index.
func (e *Engine) shardOf(g int) int { return g % e.nshards }

// slotOf returns the slab slot of a global dense index.
func (e *Engine) slotOf(g int) int { return g / e.nshards }

// peerAt returns the peer at a global dense index.
func (e *Engine) peerAt(g int) Peer { return e.slabs[g%e.nshards].peers[g/e.nshards] }

// stateAt returns the lifecycle state at a global dense index.
func (e *Engine) stateAt(g int) MemberState { return e.slabs[g%e.nshards].states[g/e.nshards] }

// streamAt returns the engine RNG stream at a global dense index.
func (e *Engine) streamAt(g int) *rand.Rand { return e.slabs[g%e.nshards].streams[g/e.nshards] }

// streamOf returns a member's engine stream by node id, nil for unknown ids.
func (e *Engine) streamOf(id news.NodeID) *rand.Rand {
	if g, ok := e.idx[id]; ok {
		return e.streamAt(g)
	}
	return nil
}

// addPeer appends a member in state Online at the next global dense index;
// the index fixes the owner shard (g mod Shards) and slab slot (g div
// Shards) forever. Indices are stable for the lifetime of the engine:
// departures never compact the slabs, so shard ownership, worker-span
// sharding and per-peer RNG streams are unaffected by how much churn
// preceded the current cycle.
func (e *Engine) addPeer(p Peer) {
	g := e.count
	e.idx[p.ID()] = g
	sl := &e.slabs[e.shardOf(g)]
	sl.peers = append(sl.peers, p)
	sl.states = append(sl.states, Online)
	sl.streams = append(sl.streams, rand.New(rand.NewSource(streamSeed(e.cfg.Seed, p.ID()))))
	e.count++
	e.online++
}

// AddPeer registers a peer between cycles (the joining-node experiment of
// Figure 7). The caller is responsible for cold-starting its views; joins
// scheduled through Config.Churn are bootstrapped by the engine instead.
// Registering an id that already exists is a no-op.
func (e *Engine) AddPeer(p Peer) {
	if _, exists := e.idx[p.ID()]; exists {
		return
	}
	e.addPeer(p)
}

// Peers returns a copy of the engine's peers in registration order,
// regardless of lifecycle state. The returned slice is the caller's to keep:
// mutating it cannot corrupt the engine's slabs or their sharding
// invariants.
func (e *Engine) Peers() []Peer {
	out := make([]Peer, e.count)
	for g := 0; g < e.count; g++ {
		out[g] = e.peerAt(g)
	}
	return out
}

// OnlinePeers returns a copy of the currently online peers in registration
// order.
func (e *Engine) OnlinePeers() []Peer {
	out := make([]Peer, 0, e.online)
	for g := 0; g < e.count; g++ {
		if e.stateAt(g) == Online {
			out = append(out, e.peerAt(g))
		}
	}
	return out
}

// Peer returns the peer with the given id in any lifecycle state, or nil.
func (e *Engine) Peer(id news.NodeID) Peer {
	if g, ok := e.idx[id]; ok {
		return e.peerAt(g)
	}
	return nil
}

// State returns the lifecycle state of a member; ok is false for ids the
// engine has never seen.
func (e *Engine) State(id news.NodeID) (MemberState, bool) {
	if g, ok := e.idx[id]; ok {
		return e.stateAt(g), true
	}
	return Departed, false
}

// OnlineCount returns the number of members currently online.
func (e *Engine) OnlineCount() int { return e.online }

// MemberCount returns the total number of members ever registered,
// including offline and departed ones.
func (e *Engine) MemberCount() int { return e.count }

// onlinePeer returns the peer for an id only when it is online.
func (e *Engine) onlinePeer(id news.NodeID) Peer {
	if g, ok := e.idx[id]; ok && e.stateAt(g) == Online {
		return e.peerAt(g)
	}
	return nil
}

// setState transitions one member, maintaining the online count.
func (e *Engine) setState(g int, s MemberState) {
	sl := &e.slabs[e.shardOf(g)]
	slot := e.slotOf(g)
	if sl.states[slot] == Online {
		e.online--
	}
	sl.states[slot] = s
	if s == Online {
		e.online++
	}
}

// Leave gracefully departs a member (final). Reports whether the member
// existed and was not already departed. With Config.DepartureNotices the
// leaver notifies its view neighbours before its state is wiped.
func (e *Engine) Leave(id news.NodeID) bool {
	g, ok := e.idx[id]
	if !ok || e.stateAt(g) == Departed {
		return false
	}
	wasOnline := e.stateAt(g) == Online
	e.setState(g, Departed)
	p := e.peerAt(g)
	if e.cfg.DepartureNotices && wasOnline {
		e.sendDepartureNotices(p)
	}
	if l, isLeaver := p.(Leaver); isLeaver {
		l.Leave()
	}
	return true
}

// sendDepartureNotices delivers the leaver's departure tombstone to its view
// neighbours — the final courtesy message of a graceful leave, sent while the
// leaver's views still exist. It runs inside the serial churn phase:
// recipients are the leaver's RPS then WUP entries in insertion order
// (deduplicated), and the per-recipient loss draws consume only the leaver's
// engine stream, so the operation is deterministic for any worker count.
func (e *Engine) sendDepartureNotices(p Peer) {
	t := overlay.Tombstone{Node: p.ID(), Stamp: e.now}
	var recipients []news.NodeID
	seen := map[news.NodeID]struct{}{}
	collect := func(v *overlay.View) {
		if v == nil {
			return
		}
		v.ForEach(func(d overlay.Descriptor) {
			if _, dup := seen[d.Node]; dup {
				return
			}
			seen[d.Node] = struct{}{}
			recipients = append(recipients, d.Node)
		})
	}
	if p.RPS() != nil {
		collect(p.RPS().View())
	}
	if p.WUP() != nil {
		collect(p.WUP().View())
	}
	for _, id := range recipients {
		nb := e.onlinePeer(id)
		if nb == nil {
			continue
		}
		dn, isNoticer := nb.(DepartureNoticer)
		if !isNoticer {
			continue
		}
		e.col.RecordMessage(metrics.MsgDeparture, t.WireSize())
		if e.lost(p.ID()) || e.linkDropped(p.ID(), id, e.now, metrics.MsgDeparture, 0) {
			continue
		}
		dn.NoteDeparture(t, e.now)
	}
}

// Crash abruptly takes an online member offline, wiping its volatile state
// (views) when the peer supports it. Reports whether the member was online.
func (e *Engine) Crash(id news.NodeID) bool {
	g, ok := e.idx[id]
	if !ok || e.stateAt(g) != Online {
		return false
	}
	e.setState(g, Offline)
	if c, isCrasher := e.peerAt(g).(Crasher); isCrasher {
		c.Crash()
	}
	return true
}

// Rejoin brings a crashed (offline) member back online: views are wiped and
// re-seeded from a random sample of the online population drawn from the
// member's own engine stream, the profile is whatever the peer retained.
// Reports whether the member was offline.
func (e *Engine) Rejoin(id news.NodeID) bool {
	g, ok := e.idx[id]
	if !ok || e.stateAt(g) != Offline {
		return false
	}
	e.setState(g, Online)
	p := e.peerAt(g)
	if c, isCrasher := p.(Crasher); isCrasher {
		c.Crash() // ensure stale views are gone even if the crash hook was absent
	}
	e.seedFromOnline(p, e.now)
	return true
}

// Join registers a brand-new peer and bootstraps its views from the online
// population (ColdStarter peers inherit a random online host's views, the
// paper's Section II-D procedure; others get a random descriptor sample).
// Reports whether the id was new.
func (e *Engine) Join(p Peer) bool {
	if _, exists := e.idx[p.ID()]; exists {
		return false
	}
	e.addPeer(p)
	stream := e.streamOf(p.ID())
	if cs, isCold := p.(ColdStarter); isCold {
		if host := e.randomOnlineHost(p.ID(), stream); host != nil && host.RPS() != nil && host.WUP() != nil {
			cs.ColdStart(host.RPS().View().Entries(), host.WUP().View().Entries(), e.now)
			return true
		}
	}
	e.seedFromOnline(p, e.now)
	return true
}

// randomOnlineHost picks a uniformly random online member other than self,
// drawing from the given stream; nil when none exists. Below the large-scale
// threshold candidates are enumerated in dense-index order (the historical
// draw); above it a bounded rejection loop draws slots directly, keeping a
// million-peer flash crowd's joins O(1) instead of O(members) each. Either
// path consumes only the given stream, so the draw is independent of the
// worker and shard counts.
func (e *Engine) randomOnlineHost(self news.NodeID, stream *rand.Rand) Peer {
	if e.count >= largeScaleMembers {
		for attempt := 0; attempt < 64; attempt++ {
			g := stream.Intn(e.count)
			if e.stateAt(g) != Online {
				continue
			}
			if p := e.peerAt(g); p.ID() != self {
				return p
			}
		}
		// Pathologically low online fraction: fall through to the exact scan.
	}
	candidates := 0
	for g := 0; g < e.count; g++ {
		if e.stateAt(g) == Online && e.peerAt(g).ID() != self {
			candidates++
		}
	}
	if candidates == 0 {
		return nil
	}
	pick := stream.Intn(candidates)
	for g := 0; g < e.count; g++ {
		if e.stateAt(g) == Online && e.peerAt(g).ID() != self {
			if pick == 0 {
				return e.peerAt(g)
			}
			pick--
		}
	}
	return nil
}

// appendOnlineSample appends up to k fresh descriptors of online members
// other than self, sampled from the given stream. Below the large-scale
// threshold it reproduces the historical rand.Perm draw sequence exactly;
// above it, it rejection-samples O(k) slots (a per-peer Perm over a
// million-member table would be quadratic in time and allocation across a
// bootstrap). Both paths consume only the given stream.
func (e *Engine) appendOnlineSample(descs []overlay.Descriptor, self news.NodeID, stream *rand.Rand, now int64, k int) []overlay.Descriptor {
	n := e.count
	if n < largeScaleMembers {
		for _, g := range stream.Perm(n) {
			if e.stateAt(g) != Online {
				continue
			}
			p := e.peerAt(g)
			if p.ID() == self {
				continue
			}
			descs = append(descs, descriptorOf(p, now))
			if len(descs) == k {
				break
			}
		}
		return descs
	}
	picked := make([]int, 0, k)
	for attempt := 0; attempt < 8*k+32 && len(picked) < k; attempt++ {
		g := stream.Intn(n)
		if e.stateAt(g) != Online {
			continue
		}
		p := e.peerAt(g)
		if p.ID() == self || slices.Contains(picked, g) {
			continue
		}
		picked = append(picked, g)
		descs = append(descs, descriptorOf(p, now))
	}
	return descs
}

// seedFromOnline seeds a joining or rejoining peer's views with up to
// BootstrapDegree fresh descriptors of online members, sampled from the
// peer's own engine stream (the only randomness the operation consumes).
func (e *Engine) seedFromOnline(p Peer, now int64) {
	descs := make([]overlay.Descriptor, 0, e.cfg.BootstrapDegree)
	descs = e.appendOnlineSample(descs, p.ID(), e.streamOf(p.ID()), now, e.cfg.BootstrapDegree)
	if r, isRejoiner := p.(Rejoiner); isRejoiner {
		r.Rejoin(descs, now)
		return
	}
	if p.RPS() != nil {
		p.RPS().Seed(descs)
	}
	if p.WUP() != nil {
		p.WUP().Seed(descs, p.UserProfile())
	}
}

// applyChurn applies the scheduled membership events of one cycle, serially
// and in schedule order. Randomness is only ever drawn from the stream of
// the event's own node, so schedules preserve the worker-count determinism
// contract.
func (e *Engine) applyChurn(now int64) {
	for _, ev := range e.churn[now] {
		switch ev.Kind {
		case ChurnJoin:
			if e.cfg.NewPeer == nil {
				continue
			}
			if _, exists := e.idx[ev.Node]; exists {
				continue
			}
			if p := e.cfg.NewPeer(ev.Node); p != nil && p.ID() == ev.Node {
				e.Join(p)
			}
		case ChurnLeave:
			e.Leave(ev.Node)
		case ChurnCrash:
			e.Crash(ev.Node)
		case ChurnRejoin:
			e.Rejoin(ev.Node)
		}
	}
}

// Collector returns the metrics collector.
func (e *Engine) Collector() *metrics.Collector { return e.col }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// Workers returns the effective total worker budget.
func (e *Engine) Workers() int { return e.workers }

// Shards returns the effective shard count.
func (e *Engine) Shards() int { return e.nshards }

// ShardStats returns the cumulative cross-shard routing counters. All zeros
// at Shards=1, where no exchange ever crosses a boundary.
func (e *Engine) ShardStats() ShardStats { return e.stats }

// parallelSpans is the single-shard work partitioner: fn(worker, i) for
// every i in [0, n), one contiguous span per worker. With a single worker
// (or a single item) it runs inline. fn must touch only state owned by item
// i plus the worker'th metrics scratch; the span split then only decides
// which collector a record lands in, and collectors merge commutatively.
func (e *Engine) parallelSpans(n int, fn func(worker, i int)) {
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k * n / w; i < (k+1)*n/w; i++ {
				fn(k, i)
			}
		}(k)
	}
	wg.Wait()
}

// forEachMember runs fn(worker, g) for every global dense index, each shard
// processing its own slots on its own worker slice (worker ids s*wper+k, so
// records land in shard-owned collector scratch). Any assignment of items
// to workers yields identical results: items touch only their own state and
// collector merges commute.
func (e *Engine) forEachMember(fn func(worker, g int)) {
	n := e.count
	if e.nshards == 1 {
		e.parallelSpans(n, fn)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < e.nshards; s++ {
		ns := (n - s + e.nshards - 1) / e.nshards // members owned by shard s
		if ns == 0 {
			continue
		}
		w := e.wper
		if w > ns {
			w = ns
		}
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func(s, k, w, ns int) {
				defer wg.Done()
				worker := s*e.wper + k
				for slot := k * ns / w; slot < (k+1)*ns/w; slot++ {
					fn(worker, s+slot*e.nshards)
				}
			}(s, k, w, ns)
		}
	}
	wg.Wait()
}

// forEachSharded runs fn(worker, i) for every i in [0, n), binning items by
// owner shard (shardOf) and splitting each shard's bin across its worker
// slice. Used for the irregular phases — gossip absorb buckets and BEEP
// segments — whose items are keyed by responder/receiver rather than dense
// index. The bins are engine scratch reused across rounds.
func (e *Engine) forEachSharded(n int, shardOf func(i int) int, fn func(worker, i int)) {
	if e.nshards == 1 {
		e.parallelSpans(n, fn)
		return
	}
	for s := range e.shardItems {
		e.shardItems[s] = e.shardItems[s][:0]
	}
	for i := 0; i < n; i++ {
		s := shardOf(i)
		e.shardItems[s] = append(e.shardItems[s], i)
	}
	var wg sync.WaitGroup
	for s := 0; s < e.nshards; s++ {
		items := e.shardItems[s]
		if len(items) == 0 {
			continue
		}
		w := e.wper
		if w > len(items) {
			w = len(items)
		}
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func(s, k, w int, items []int) {
				defer wg.Done()
				worker := s*e.wper + k
				for j := k * len(items) / w; j < (k+1)*len(items)/w; j++ {
					fn(worker, items[j])
				}
			}(s, k, w, items)
		}
	}
	wg.Wait()
}

// forEachShard runs fn(s) once per shard, concurrently when there are
// several. Used by the inter-shard decode, where shard s writes only
// exchange slots addressed to it.
func (e *Engine) forEachShard(fn func(s int)) {
	if e.nshards == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.nshards)
	for s := 0; s < e.nshards; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// mergeCols folds the per-worker collector scratch into the main collector.
// Called at the end of every cycle (a barrier), so user-visible reads —
// OnCycleEnd hooks, post-run analysis — always see merged totals.
func (e *Engine) mergeCols() {
	for _, s := range e.cols {
		e.col.Merge(s)
		s.Reset()
	}
}

// descriptorOf builds a fresh descriptor for a peer at the given time. The
// profile is the peer's advertised one, so a poisoning behavior reaches
// bootstrap and refill descriptors too.
func descriptorOf(p Peer, now int64) overlay.Descriptor {
	return overlay.Descriptor{Node: p.ID(), Stamp: now, Profile: gossipProfile(p, now).Clone()}
}

// Bootstrap seeds every online peer's views with BootstrapDegree random
// descriptors of other online peers, forming the initial random graph. Each
// peer samples its neighbours from its own engine stream, so the graph is
// independent of the worker and shard counts.
func (e *Engine) Bootstrap() {
	if e.count < 2 {
		return
	}
	e.forEachMember(func(_, g int) {
		if e.stateAt(g) != Online {
			return
		}
		p := e.peerAt(g)
		descs := make([]overlay.Descriptor, 0, e.cfg.BootstrapDegree)
		descs = e.appendOnlineSample(descs, p.ID(), e.streamAt(g), 0, e.cfg.BootstrapDegree)
		if p.RPS() != nil {
			p.RPS().Seed(descs)
		}
		if p.WUP() != nil {
			p.WUP().Seed(descs, p.UserProfile())
		}
	})
}

// Links returns the per-link fault policy the engine was configured with
// (nil when none), for timeline samplers that report partition schedules.
func (e *Engine) Links() *faultnet.Policy { return e.cfg.Links }

// linkDropped reports whether the per-link fault policy (Config.Links)
// drops a message on the directed link this cycle: partition cuts always
// drop, lossy links drop by a stateless faultnet draw keyed off the engine
// seed and the event identity (salt = the message kind, extra = the item for
// BEEP). No peer stream is touched, so fault injection composes with the
// uniform loss model without disturbing its draws, and any worker can
// evaluate the check in any order. Nil policy: one comparison, no work.
func (e *Engine) linkDropped(from, to news.NodeID, now int64, kind metrics.MessageKind, extra uint64) bool {
	if e.cfg.Links == nil {
		return false
	}
	return e.cfg.Links.Drop(e.cfg.Seed, from, to, now, uint64(kind)+1, extra)
}

// ProfileAdvertiser is the adversarial profile seam: a peer implementing it
// substitutes the profile carried by its outgoing gossip descriptors.
// core.Node routes this through its Behavior (honest nodes return the user
// profile itself); peers without the interface always gossip honestly.
type ProfileAdvertiser interface {
	AdvertisedProfile(now int64) *profile.Profile
}

// gossipProfile returns the profile a peer advertises in descriptors.
func gossipProfile(p Peer, now int64) *profile.Profile {
	if a, ok := p.(ProfileAdvertiser); ok {
		return a.AdvertisedProfile(now)
	}
	return p.UserProfile()
}

// lost draws one loss decision from the given peer's engine stream. Every
// phase consumes each peer's stream in a deterministic per-peer order, so
// loss outcomes are independent of the worker count.
func (e *Engine) lost(id news.NodeID) bool {
	if e.cfg.LossRate <= 0 {
		return false
	}
	s := e.streamOf(id)
	if s == nil {
		return false
	}
	return s.Float64() < e.cfg.LossRate
}

// descriptorsWireSize sums the wire sizes of a descriptor batch.
func descriptorsWireSize(batch []overlay.Descriptor) int {
	total := 0
	for _, d := range batch {
		total += d.WireSize()
	}
	return total
}

// Step advances the simulation by one cycle: membership events first, then
// per-peer maintenance, the two gossip rounds, scheduled publications and
// the BEEP drain. Offline and departed members take part in nothing;
// messages addressed to them are dropped exactly where an unknown
// destination's would be.
func (e *Engine) Step() {
	e.now++
	now := e.now

	e.applyChurn(now)
	e.forEachMember(func(_, g int) {
		if e.stateAt(g) == Online {
			e.peerAt(g).BeginCycle(now)
		}
	})
	if e.cfg.RefillWatermark > 0 {
		e.refillViews(now)
	}
	e.gossipRPS(now)
	e.gossipWUP(now)

	for _, pub := range e.pubs[now] {
		src := e.onlinePeer(pub.Source)
		if src == nil {
			continue
		}
		sends := src.Publish(pub.Item, now)
		if len(sends) > 0 {
			e.col.RecordForward(true, 0)
		}
		e.enqueue(pub.Source, sends)
	}
	e.drain(now)
	e.mergeCols()

	if e.cfg.OnCycleEnd != nil {
		e.cfg.OnCycleEnd(e, now)
	}
}

// Run executes cfg.Cycles cycles (continuing from the current time if
// called after Step).
func (e *Engine) Run() {
	for int(e.now) < e.cfg.Cycles {
		e.Step()
	}
}

// refillViews is the adaptive anti-entropy phase of the churn protocol: any
// online peer whose view occupancy fell under the refill watermark (churn
// evicted more neighbours than gossip replaced) pulls a descriptor sample
// from the freshest neighbour it still knows. The phase runs serially in
// dense-index order right after cycle maintenance, before the gossip rounds;
// loss decisions for both legs of a pull consume only the pulling peer's
// engine stream, so results are bit-identical for any worker count.
func (e *Engine) refillViews(now int64) {
	wm := e.cfg.RefillWatermark
	for g := 0; g < e.count; g++ {
		if e.stateAt(g) != Online {
			continue
		}
		p := e.peerAt(g)
		if p.RPS() == nil || p.WUP() == nil {
			continue
		}
		rpsView, wupView := p.RPS().View(), p.WUP().View()
		rpsLow := float64(rpsView.Len()) < wm*float64(rpsView.Capacity())
		wupLow := float64(wupView.Len()) < wm*float64(wupView.Capacity())
		if !rpsLow && !wupLow {
			continue
		}
		// Pull from the freshest surviving neighbour across both views: the
		// most recently stamped descriptor is the one most likely to belong
		// to a node that is still alive.
		var best overlay.Descriptor
		found := false
		scan := func(d overlay.Descriptor) {
			if !found || d.Fresher(best) {
				best, found = d, true
			}
		}
		rpsView.ForEach(scan)
		wupView.ForEach(scan)
		if !found {
			continue // fully isolated; nothing to pull from
		}
		target := e.onlinePeer(best.Node)
		if target == nil || target.RPS() == nil {
			continue // the freshest neighbour is itself gone; TTL will flush it
		}
		req := descriptorOf(p, now)
		e.col.RecordMessage(metrics.MsgRefillRequest, req.WireSize())
		if e.lost(p.ID()) || e.linkDropped(p.ID(), best.Node, now, metrics.MsgRefillRequest, 0) {
			continue
		}
		reply := target.RPS().AcceptPush([]overlay.Descriptor{req}, descriptorOf(target, now))
		e.col.RecordMessage(metrics.MsgRefillReply, descriptorsWireSize(reply))
		if e.lost(p.ID()) || e.linkDropped(best.Node, p.ID(), now, metrics.MsgRefillReply, 0) {
			continue
		}
		p.RPS().AcceptReply(reply)
		if wupLow {
			p.WUP().Merge(reply, p.UserProfile())
		}
	}
}

// exchange tracks one gossip push-pull through the three round phases.
type exchange struct {
	ok     bool // initiator selected a target this round
	lost   bool // the push leg was dropped by the loss model
	target news.NodeID
	push   []overlay.Descriptor
	reply  []overlay.Descriptor // nil if lost or undeliverable
	// Departure tombstones piggybacked on the two legs (Config.
	// DepartureNotices; nil when the feature is off or the graveyards are
	// empty, in which case they add nothing to the wire accounting).
	pushTombs  []overlay.Tombstone
	replyTombs []overlay.Tombstone
}

// encodeCrossShard walks the exchange table in global initiator order and
// appends every leg that crosses a shard boundary to the pooled
// (source, destination) batch buffer. One batch entry is
//
//	uvarint  initiator global dense index
//	descriptor list          (overlay.AppendDescriptors)
//	norm-accumulator sidecar (overlay.AppendNormAccumulators)
//	tombstone list           (overlay.AppendTombstones)
//
// — the inter-shard ABI: a multi-process engine would write exactly these
// bytes to a pipe. The sidecar is what keeps the contract bit-exact: the
// packed profile codec recomputes Σ score² from entries, which differs in
// float bits from the sender's incrementally maintained accumulator, and
// similarity metrics read the cached value.
//
// For the push leg (reply=false) src is the initiator's shard and dst the
// responder's, and legs the absorb phase would never read (lost pushes,
// unknown/offline responders, responders without the layer) are skipped.
// For the reply leg (reply=true) the direction reverses and every non-nil
// reply crosses back to its initiator.
func (e *Engine) encodeCrossShard(exs []exchange, reply bool, has func(Peer) bool) {
	S := e.nshards
	for i := range e.xbufs {
		e.xbufs[i] = e.xbufs[i][:0]
	}
	for g := range exs {
		ex := &exs[g]
		var descs []overlay.Descriptor
		var tombs []overlay.Tombstone
		if reply {
			if ex.reply == nil {
				continue
			}
			descs, tombs = ex.reply, ex.replyTombs
		} else {
			if !ex.ok || ex.lost {
				continue
			}
			descs, tombs = ex.push, ex.pushTombs
		}
		ti, known := e.idx[ex.target]
		if !known {
			continue
		}
		src, dst := e.shardOf(g), e.shardOf(ti)
		if reply {
			src, dst = dst, src
		}
		if src == dst {
			continue
		}
		if !reply {
			if r := e.onlinePeer(ex.target); r == nil || !has(r) {
				continue // bucketing would drop it; don't ship dead traffic
			}
		}
		buf := e.xbufs[src*S+dst]
		buf = wire.AppendUint(buf, uint64(g))
		buf = overlay.AppendDescriptors(buf, descs)
		buf = overlay.AppendNormAccumulators(buf, descs)
		buf = overlay.AppendTombstones(buf, tombs)
		e.xbufs[src*S+dst] = buf
		e.stats.Crossings++
	}
	for _, buf := range e.xbufs {
		if len(buf) > 0 {
			e.stats.Batches++
			e.stats.BatchBytes += int64(len(buf))
		}
	}
}

// decodeCrossShard drains every destination shard's incoming batches on that
// shard's own goroutine, replacing the crossing exchanges' in-memory slices
// with decoded copies before the absorbing phase reads them. Each crossing
// exchange appears in exactly one batch, so the per-shard writes are
// disjoint. Decoded descriptors and tombstones land in pooled per-shard
// arenas; subslices are fixed up only after the arenas stop growing. The
// batches are engine-produced, so a malformed byte is an invariant
// violation, not input — it panics.
func (e *Engine) decodeCrossShard(exs []exchange, reply bool) {
	S := e.nshards
	e.forEachShard(func(d int) {
		sc := &e.xdec[d]
		sc.descs, sc.tombs, sc.pending = sc.descs[:0], sc.tombs[:0], sc.pending[:0]
		for src := 0; src < S; src++ {
			if src == d {
				continue
			}
			data := e.xbufs[src*S+d]
			for len(data) > 0 {
				g64, rest, err := wire.Uint(data)
				if err != nil {
					panic(fmt.Sprintf("sim: inter-shard batch corrupt (initiator index): %v", err))
				}
				pl := pendingLeg{g: int(g64), dlo: len(sc.descs), tlo: len(sc.tombs)}
				sc.descs, rest, err = overlay.AppendDecodeDescriptors(sc.descs, rest)
				if err != nil {
					panic(fmt.Sprintf("sim: inter-shard batch corrupt (descriptors): %v", err))
				}
				pl.dhi = len(sc.descs)
				rest, err = overlay.DecodeNormAccumulators(rest, sc.descs[pl.dlo:pl.dhi])
				if err != nil {
					panic(fmt.Sprintf("sim: inter-shard batch corrupt (norm sidecar): %v", err))
				}
				sc.tombs, rest, err = overlay.AppendDecodeTombstones(sc.tombs, rest)
				if err != nil {
					panic(fmt.Sprintf("sim: inter-shard batch corrupt (tombstones): %v", err))
				}
				pl.thi = len(sc.tombs)
				sc.pending = append(sc.pending, pl)
				data = rest
			}
		}
		for _, pl := range sc.pending {
			descs := sc.descs[pl.dlo:pl.dhi:pl.dhi]
			if pl.dhi == pl.dlo {
				descs = emptyDescriptors // preserve non-nil reply semantics
			}
			tombs := sc.tombs[pl.tlo:pl.thi:pl.thi]
			if pl.thi == pl.tlo {
				tombs = nil
			}
			if reply {
				exs[pl.g].reply, exs[pl.g].replyTombs = descs, tombs
			} else {
				exs[pl.g].push, exs[pl.g].pushTombs = descs, tombs
			}
		}
	})
}

// routeCrossShard ships one leg of the round between shards through the
// wire codec. At Shards=1 it is never called: every exchange stays an
// in-memory pointer hand-off, structurally identical to the pre-shard
// engine.
func (e *Engine) routeCrossShard(exs []exchange, reply bool, has func(Peer) bool) {
	e.encodeCrossShard(exs, reply, has)
	e.decodeCrossShard(exs, reply)
}

// bucketByResponder groups successful pushes by responder, preserving
// initiator order inside each bucket and first-contact order across buckets.
// Exchanges whose push was lost or whose responder lacks the layer are
// dropped here, exactly as a lost or undeliverable datagram would be. The
// bucket storage (order, index map, per-bucket lists) is engine scratch
// reused across rounds.
func (e *Engine) bucketByResponder(exs []exchange, hasLayer func(Peer) bool) []news.NodeID {
	e.order = e.order[:0]
	clear(e.bucketIdx)
	for i := range exs {
		ex := &exs[i]
		if !ex.ok || ex.lost {
			continue
		}
		r := e.onlinePeer(ex.target)
		if r == nil || !hasLayer(r) {
			continue
		}
		bi, seen := e.bucketIdx[ex.target]
		if !seen {
			bi = len(e.order)
			e.bucketIdx[ex.target] = bi
			e.order = append(e.order, ex.target)
			if len(e.bucketLists) <= bi {
				e.bucketLists = append(e.bucketLists, nil)
			}
			e.bucketLists[bi] = e.bucketLists[bi][:0]
		}
		e.bucketLists[bi] = append(e.bucketLists[bi], i)
	}
	return e.order
}

// gossipRound drives one push-pull round for a gossip layer in three
// deterministic phases: all initiators compute their pushes from the
// pre-round state in parallel (makePush touches only the initiator's own
// state), responders absorb their incoming pushes grouped per responder in
// initiator order (absorbPush touches only the responder), and initiators
// absorb the replies in parallel (absorbReply touches only the initiator).
// Both gossip layers share this skeleton so the determinism-critical
// ordering — including the loss-draw points — lives in exactly one place.
//
// With Shards > 1 a routing step runs between the phases: exchange legs
// whose initiator and responder live in different shards are encoded into
// per-shard-pair batches through the wire codec and decoded on the owning
// shard (routeCrossShard), so the absorbing side only ever reads state its
// own shard produced or decoded. The wire-byte accounting is recorded from
// the original descriptors before routing and is therefore bit-identical
// across shard counts.
//
// With Config.DepartureNotices, both legs piggyback the sender's active
// departure tombstones: the receiver absorbs them *before* merging the
// descriptors (so a reply is sampled from the post-eviction view and a push
// cannot re-insert a tombstoned descriptor it carries), which is how a
// departure notice floods one neighbourhood horizon beyond the leaver's
// direct neighbours.
func (e *Engine) gossipRound(now int64, reqKind, repKind metrics.MessageKind,
	has func(Peer) bool,
	makePush func(p Peer) (target news.NodeID, push []overlay.Descriptor, ok bool),
	absorbPush func(responder Peer, push []overlay.Descriptor) (reply []overlay.Descriptor),
	absorbReply func(initiator Peer, reply []overlay.Descriptor),
) {
	n := e.count
	if cap(e.exs) < n {
		e.exs = make([]exchange, n)
	}
	exs := e.exs[:n]
	clear(exs) // also drops the previous round's push/reply refs
	e.forEachMember(func(w, g int) {
		if e.stateAt(g) != Online {
			return
		}
		p := e.peerAt(g)
		if !has(p) {
			return
		}
		target, push, ok := makePush(p)
		if !ok {
			return
		}
		ex := exchange{ok: true, target: target, push: push}
		if e.cfg.DepartureNotices {
			if dn, noticer := p.(DepartureNoticer); noticer {
				ex.pushTombs = dn.AppendTombstones(nil)
			}
		}
		e.cols[w].RecordMessage(reqKind, descriptorsWireSize(push)+overlay.TombstonesWireSize(ex.pushTombs))
		ex.lost = e.lost(p.ID()) || e.linkDropped(p.ID(), target, now, reqKind, 0)
		exs[g] = ex
	})

	if e.nshards > 1 {
		e.routeCrossShard(exs, false, has)
	}

	order := e.bucketByResponder(exs, has)
	respShard := func(bi int) int { return e.shardOf(e.idx[order[bi]]) }
	e.forEachSharded(len(order), respShard, func(w, bi int) {
		respID := order[bi]
		responder := e.onlinePeer(respID)
		noticer, isNoticer := responder.(DepartureNoticer)
		for _, i := range e.bucketLists[bi] {
			if isNoticer {
				for _, t := range exs[i].pushTombs {
					noticer.NoteDeparture(t, now)
				}
			}
			reply := absorbPush(responder, exs[i].push)
			var replyTombs []overlay.Tombstone
			if e.cfg.DepartureNotices && isNoticer {
				replyTombs = noticer.AppendTombstones(nil)
			}
			e.cols[w].RecordMessage(repKind, descriptorsWireSize(reply)+overlay.TombstonesWireSize(replyTombs))
			if !e.lost(respID) && !e.linkDropped(respID, e.peerAt(i).ID(), now, repKind, 0) {
				exs[i].reply = reply
				exs[i].replyTombs = replyTombs
			}
		}
	})

	if e.nshards > 1 {
		e.routeCrossShard(exs, true, has)
	}

	e.forEachMember(func(_, g int) {
		if exs[g].reply == nil {
			return
		}
		p := e.peerAt(g)
		if dn, noticer := p.(DepartureNoticer); noticer {
			for _, t := range exs[g].replyTombs {
				dn.NoteDeparture(t, now)
			}
		}
		absorbReply(p, exs[g].reply)
	})
}

// gossipRPS runs one RPS round.
func (e *Engine) gossipRPS(now int64) {
	e.gossipRound(now, metrics.MsgRPSRequest, metrics.MsgRPSReply,
		func(p Peer) bool { return p.RPS() != nil },
		func(p Peer) (news.NodeID, []overlay.Descriptor, bool) {
			proto := p.RPS()
			target, ok := proto.SelectPeer()
			if !ok {
				return 0, nil, false
			}
			return target.Node, proto.MakePush(proto.Descriptor(now, gossipProfile(p, now))), true
		},
		func(r Peer, push []overlay.Descriptor) []overlay.Descriptor {
			proto := r.RPS()
			return proto.AcceptPush(push, proto.Descriptor(now, gossipProfile(r, now)))
		},
		func(p Peer, reply []overlay.Descriptor) { p.RPS().AcceptReply(reply) },
	)
}

// gossipWUP runs one clustering round. RPS candidates are injected in the
// compute phase, before peer selection, as each peer only touches its own
// two views there.
func (e *Engine) gossipWUP(now int64) {
	e.gossipRound(now, metrics.MsgWUPRequest, metrics.MsgWUPReply,
		func(p Peer) bool { return p.WUP() != nil },
		func(p Peer) (news.NodeID, []overlay.Descriptor, bool) {
			proto := p.WUP()
			p.InjectRPSCandidates()
			target, ok := proto.SelectPeer()
			if !ok {
				return 0, nil, false
			}
			return target.Node, proto.MakePush(proto.Descriptor(now, gossipProfile(p, now))), true
		},
		func(r Peer, push []overlay.Descriptor) []overlay.Descriptor {
			proto := r.WUP()
			// The pushed-back descriptor carries the advertised profile; the
			// similarity ranking of the merge still uses the real one (it is
			// the responder's private state, not wire payload).
			return proto.AcceptPush(push, proto.Descriptor(now, gossipProfile(r, now)), r.UserProfile())
		},
		func(p Peer, reply []overlay.Descriptor) { p.WUP().AcceptReply(reply, p.UserProfile()) },
	)
}

// enqueue adds sends from one peer to the current BEEP hop.
func (e *Engine) enqueue(from news.NodeID, sends []core.Send) {
	for _, s := range sends {
		e.batch = append(e.batch, envelope{from: from, to: s.To, msg: s.Msg})
	}
}

// drain delivers queued BEEP messages to quiescence. Dissemination is
// instantaneous relative to gossip cycles, as in the paper's simulations.
// Messages are delivered in hop rounds: all sends of one hop are collected,
// put in a deterministic total order, and the round is delivered grouped
// per receiver; the sends it produces form the next round.
//
// BEEP envelopes cross shard boundaries as in-memory references rather than
// codec batches: item messages are engine-internal values whose identity the
// scenarios control (experiment worlds override item ids), so the hop batch
// stays a shared value even at Shards > 1. A multi-process split would route
// the hop through core.ItemMessage's codec the same way gossip legs use
// routeCrossShard.
func (e *Engine) drain(now int64) {
	for len(e.batch) > 0 {
		e.deliverRound(now)
	}
}

// deliverRound delivers one hop of BEEP traffic, consuming e.batch and
// leaving the next hop in it.
//
//whatsup:hotpath
func (e *Engine) deliverRound(now int64) {
	batch := e.batch
	// Total order: by receiver, then sender, then item. A node forwards a
	// given item at most once (SIR), so the triple is unique within a round
	// — which also makes the sorted order independent of how the previous
	// round's workers assembled the batch.
	//whatsup:allow:hotalloc non-escaping comparator closure
	slices.SortFunc(batch, func(a, b envelope) int {
		switch {
		case a.to != b.to:
			if a.to < b.to {
				return -1
			}
			return 1
		case a.from != b.from:
			if a.from < b.from {
				return -1
			}
			return 1
		case a.msg.Item.ID < b.msg.Item.ID:
			return -1
		case a.msg.Item.ID > b.msg.Item.ID:
			return 1
		default:
			return 0
		}
	})
	// Partition into per-receiver segments; each segment is applied by one
	// worker of the receiver's shard, so a receiver's state and RNG are
	// touched by one goroutine and always in the same (from, item) order.
	e.segs = e.segs[:0]
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		for hi < len(batch) && batch[hi].to == batch[lo].to {
			hi++
		}
		e.segs = append(e.segs, segment{lo: lo, hi: hi}) //whatsup:alloc amortized growth of the cross-cycle segment scratch
		lo = hi
	}
	for w := range e.sendBufs {
		e.sendBufs[w] = e.sendBufs[w][:0]
		e.delivBufs[w] = e.delivBufs[w][:0]
	}
	observe := e.cfg.OnDelivery != nil
	if observe {
		if cap(e.delivSegs) < len(e.segs) {
			e.delivSegs = make([]delivSpan, len(e.segs)) //whatsup:alloc observer spans, doubles then reused across rounds
		}
		e.delivSegs = e.delivSegs[:len(e.segs)]
	}
	//whatsup:alloc segShard closure, one per round
	segShard := func(si int) int {
		g, ok := e.idx[batch[e.segs[si].lo].to]
		if !ok {
			return 0 // unknown receiver: the messages drop; any shard may do it
		}
		return e.shardOf(g)
	}
	//whatsup:alloc per-round worker closure handed to forEachSharded
	e.forEachSharded(len(e.segs), segShard, func(w, si int) {
		seg := e.segs[si]
		recv := e.onlinePeer(batch[seg.lo].to)
		col := e.cols[w]
		lo := len(e.delivBufs[w])
		for k := seg.lo; k < seg.hi; k++ {
			env := &batch[k]
			col.RecordMessage(metrics.MsgBeep, env.msg.WireSize())
			if e.lost(env.to) || e.linkDropped(env.from, env.to, now, metrics.MsgBeep, uint64(env.msg.Item.ID)) {
				continue
			}
			if recv == nil {
				continue
			}
			d, sends := recv.Receive(env.msg, now)
			if d.Duplicate {
				continue
			}
			col.RecordDelivery(d)
			if observe {
				e.delivBufs[w] = append(e.delivBufs[w], d) //whatsup:alloc amortized growth of the per-worker delivery buffer
			}
			if len(sends) > 0 {
				col.RecordForward(d.Liked, d.Hops)
			}
			for _, s := range sends {
				e.sendBufs[w] = append(e.sendBufs[w], envelope{from: env.to, to: s.To, msg: s.Msg}) //whatsup:alloc amortized growth of the per-worker send buffer
			}
		}
		if observe {
			e.delivSegs[si] = delivSpan{w: w, lo: lo, hi: len(e.delivBufs[w])}
		}
	})
	// Fire callbacks in segment (receiver) order via the per-segment spans —
	// the user-visible delivery sequence is identical for any worker or
	// shard partition — then assemble the next hop (whose order the sort
	// above normalizes).
	if observe {
		for _, span := range e.delivSegs {
			for _, d := range e.delivBufs[span.w][span.lo:span.hi] {
				e.cfg.OnDelivery(d, now)
			}
		}
	}
	e.next = e.next[:0]
	for w := range e.sendBufs {
		e.next = append(e.next, e.sendBufs[w]...) //whatsup:alloc amortized growth of the next-hop batch
	}
	e.batch, e.next = e.next, e.batch
}

// WUPGraph snapshots the directed graph formed by the online peers' WUP
// views, for the connectivity and clustering analyses (Figure 4,
// Section V-A). Offline and departed members contribute no edges (their
// views are wiped or frozen); peers without a clustering layer likewise.
// Node ids must be dense in [0, MemberCount) for the returned graph indices
// to be meaningful; engines built by the experiment harness guarantee this.
func (e *Engine) WUPGraph() *graph.Directed {
	g := graph.NewDirected(e.count)
	for gi := 0; gi < e.count; gi++ {
		if e.stateAt(gi) != Online {
			continue
		}
		p := e.peerAt(gi)
		if p.WUP() == nil {
			continue
		}
		id := int(p.ID())
		p.WUP().View().ForEach(func(d overlay.Descriptor) {
			g.AddEdge(id, int(d.Node))
		})
	}
	return g
}
