package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/faultnet"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// Golden collector fingerprints of the pre-shard engine (captured at commit
// 1a0bbbe, before the slab refactor landed). The Shards=1 path must stay
// bit-identical with that engine forever: these hashes pin it.
const (
	// sha256 of fingerprint(runShardedWorld(workers, 1)) for any workers.
	goldenStaticWorld = "dc49020cf55a4c943f90273eaa71e6ab9886f75a8badede0a8737b5c7f7825a1"
	// sha256 of fingerprint(heavyChurnWorld(workers, 1)) for any workers.
	goldenHeavyWorld = "77aefb125d7b3c84ee349af3b1af096bf1ccb2d45e2013c2b8468729607dae92"
)

func fingerprintHash(c *metrics.Collector) string {
	h := sha256.Sum256([]byte(fingerprint(c)))
	return hex.EncodeToString(h[:])
}

// runShardedWorld is runWorldWorkers' static community world with a shard
// count: 120 peers, 40 items, 25 cycles at 15% loss.
func runShardedWorld(workers, shards int) *metrics.Collector {
	const n, items, cycles, loss, seed = 120, 40, 25, 0.15, 7
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
	e := New(Config{
		Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, Shards: shards,
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return col
}

// heavyChurnWorld runs the kitchen-sink world the golden hashes were
// captured on: crash/leave/rejoin trace plus a flash crowd, departure
// notices, watermark refill, straggler links and a scheduled partition — so
// the pin covers every churn and faultnet seam crossing the shard boundary.
func heavyChurnWorld(workers, shards int) *metrics.Collector {
	const n, items, cycles, seed = 120, 40, 25, 7
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles), DescriptorTTL: 10}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	schedule := ChurnTrace(ChurnTraceConfig{
		Seed: 11, Nodes: n, From: 2, To: cycles - 2,
		CrashRate: 0.15, LeaveRate: 0.05, Downtime: 3,
	})
	schedule.Merge(FlashCrowd(8, news.NodeID(n), 20, 5))
	ids := make([]news.NodeID, n)
	for i := range ids {
		ids[i] = news.NodeID(i)
	}
	links := faultnet.Stragglers(ids, 0.2, 3, faultnet.Rule{Loss: 0.1})
	groups := make(map[news.NodeID]int, n)
	for i, id := range ids {
		groups[id] = i % 2
	}
	links = links.AddPartition(faultnet.Partition{Groups: groups, Start: 12, Heal: 16})
	e := New(Config{
		Seed: seed, Cycles: cycles, LossRate: 0.15, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, Shards: shards, Churn: schedule,
		DepartureNotices: true, RefillWatermark: 0.5, Links: links,
		NewPeer: func(id news.NodeID) Peer {
			return core.NewNode(id, "", cfg, opinions, rand.New(rand.NewSource(seed+int64(id))))
		},
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return col
}

// TestShardsIdentityPin asserts the Shards=1 engine is bit-identical with
// the pre-shard engine, on both a static world and the heavy churn+faultnet
// world, for serial and parallel worker counts. If this fails, the refactor
// changed observable behaviour — not just an internal representation.
func TestShardsIdentityPin(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if got := fingerprintHash(runShardedWorld(workers, 1)); got != goldenStaticWorld {
			t.Errorf("static world, workers=%d: fingerprint hash %s, pre-shard golden %s", workers, got, goldenStaticWorld)
		}
		if got := fingerprintHash(heavyChurnWorld(workers, 1)); got != goldenHeavyWorld {
			t.Errorf("heavy churn world, workers=%d: fingerprint hash %s, pre-shard golden %s", workers, got, goldenHeavyWorld)
		}
	}
}

// TestShardMatrixDeterminism asserts collector fingerprints are
// bit-identical across the Shards × Workers matrix on the heavy
// churn+faultnet world — the core contract of the sharded engine: sharding
// (and its codec-routed inter-shard gossip) is a pure execution strategy.
func TestShardMatrixDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			shards, workers := shards, workers
			t.Run(fmt.Sprintf("heavy/shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				t.Parallel()
				if got := fingerprintHash(heavyChurnWorld(workers, shards)); got != goldenHeavyWorld {
					t.Errorf("fingerprint hash %s, golden %s", got, goldenHeavyWorld)
				}
			})
			t.Run(fmt.Sprintf("static/shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				t.Parallel()
				if got := fingerprintHash(runShardedWorld(workers, shards)); got != goldenStaticWorld {
					t.Errorf("fingerprint hash %s, golden %s", got, goldenStaticWorld)
				}
			})
		}
	}
}

// TestShardedDeliveryOrder asserts OnDelivery observes the same delivery
// sequence for any shard count: the per-segment delivery spans must replay
// in global receiver order no matter which shard's worker buffered them.
func TestShardedDeliveryOrder(t *testing.T) {
	trace := func(shards int) []core.Delivery {
		const n, items, cycles, loss, seed = 80, 24, 15, 0.1, 3
		cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
		peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
		var ds []core.Delivery
		e := New(Config{
			Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
			BootstrapDegree: 4, Workers: 4, Shards: shards,
			OnDelivery: func(d core.Delivery, now int64) { ds = append(ds, d) },
		}, peers, col)
		e.Bootstrap()
		e.Run()
		return ds
	}
	want := trace(1)
	if len(want) == 0 {
		t.Fatal("no deliveries in reference run")
	}
	for _, shards := range []int{3, 8} {
		got := trace(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d deliveries, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: delivery %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardStats asserts cross-shard routing is observable (and only at
// Shards>1): the engine must actually be exercising the codec path that the
// determinism matrix relies on, not silently running in-memory hand-offs.
func TestShardStats(t *testing.T) {
	const n, items, cycles, loss, seed = 80, 24, 10, 0.1, 3
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
	build := func(shards int) *Engine {
		peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
		e := New(Config{
			Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
			BootstrapDegree: 4, Workers: 2, Shards: shards,
		}, peers, col)
		e.Bootstrap()
		e.Run()
		return e
	}
	if st := build(1).ShardStats(); st != (ShardStats{}) {
		t.Errorf("Shards=1 routed traffic: %+v", st)
	}
	st := build(4).ShardStats()
	if st.Crossings == 0 || st.Batches == 0 || st.BatchBytes == 0 {
		t.Errorf("Shards=4 routed no traffic: %+v", st)
	}
	if e := build(4); e.Shards() != 4 {
		t.Errorf("Shards() = %d, want 4", e.Shards())
	}
}
