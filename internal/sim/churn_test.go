package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// heavySchedule builds a join/leave/crash/rejoin mix over a 2-community
// world: trace churn on the base population plus a flash crowd of joiners.
func heavySchedule(n, cycles int) ChurnSchedule {
	s := ChurnTrace(ChurnTraceConfig{
		Seed:           42,
		Nodes:          n,
		From:           int64(cycles / 4),
		To:             int64(cycles - cycles/4),
		CrashRate:      0.01,
		LeaveRate:      0.008,
		Downtime:       4,
		DowntimeJitter: 3,
	})
	s.Merge(FlashCrowd(int64(cycles/3), news.NodeID(n), n/4, 3))
	return s
}

// runChurnWorld runs the community world under a churn schedule with the
// given worker count. Joining peers share the opinions of their id mod n.
func runChurnWorld(n, items, cycles int, loss float64, seed int64, workers int,
	schedule ChurnSchedule) (*metrics.Collector, *Engine) {
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles), DescriptorTTL: 10}
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions, rand.New(rand.NewSource(seed+int64(i))))
	}
	col := metrics.NewCollector()
	var pubs []Publication
	for k := 0; k < items; k++ {
		source := news.NodeID((2*k + k%2) % n)
		if int(source)%2 != k%2 {
			source = news.NodeID((int(source) + 1) % n)
		}
		it := news.New(fmt.Sprintf("churn-item-%d", k), "d", "l", int64(1+k*cycles/items), source)
		it.ID = news.ID(k)
		pubs = append(pubs, Publication{Cycle: int64(1 + k*cycles/items), Source: source, Item: it})
		col.RegisterItem(it.ID, n/2)
	}
	for i := 0; i < n; i++ {
		col.RegisterNode(news.NodeID(i), items/2)
	}
	e := New(Config{
		Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, Churn: schedule,
		NewPeer: func(id news.NodeID) Peer {
			return core.NewNode(id, "", cfg, opinions, rand.New(rand.NewSource(seed+int64(id))))
		},
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return col, e
}

// TestChurnDeterminismAcrossWorkerCounts extends the engine's core contract
// to dynamic membership: under a heavy join/leave/crash/rejoin schedule,
// collector fingerprints are bit-identical for Workers = 1, 2, 8.
func TestChurnDeterminismAcrossWorkerCounts(t *testing.T) {
	const n, items, cycles, loss, seed = 120, 40, 40, 0.15, 7
	schedule := heavySchedule(n, cycles)
	if len(schedule.Events) < 20 {
		t.Fatalf("schedule too light to exercise churn: %d events", len(schedule.Events))
	}
	refCol, refEngine := runChurnWorld(n, items, cycles, loss, seed, 1, schedule)
	if refEngine.OnlineCount() == refEngine.MemberCount() {
		t.Fatal("schedule must leave some members offline or departed")
	}
	if refEngine.MemberCount() <= n {
		t.Fatal("flash-crowd joins must have registered new members")
	}
	ref := fingerprint(refCol)
	for _, workers := range []int{2, 8} {
		col, e := runChurnWorld(n, items, cycles, loss, seed, workers, schedule)
		if got := fingerprint(col); got != ref {
			t.Fatalf("workers=%d diverged under churn:\n--- want\n%s--- got\n%s", workers, ref, got)
		}
		if e.OnlineCount() != refEngine.OnlineCount() || e.MemberCount() != refEngine.MemberCount() {
			t.Fatalf("membership diverged: %d/%d online vs %d/%d",
				e.OnlineCount(), e.MemberCount(), refEngine.OnlineCount(), refEngine.MemberCount())
		}
	}
}

// TestEmptyChurnScheduleIsIdentity pins the acceptance criterion that a
// churn-free schedule reproduces the static-population results
// bit-identically: same fingerprint as a config without any churn fields.
func TestEmptyChurnScheduleIsIdentity(t *testing.T) {
	const n, items, cycles, loss, seed = 80, 30, 20, 0.1, 3
	plain := fingerprint(runWorldWorkers(n, items, cycles, loss, seed, 2, nil))
	col, _ := runChurnWorld2(n, items, cycles, loss, seed, 2, ChurnSchedule{})
	if got := fingerprint(col); got != plain {
		t.Fatalf("empty churn schedule changed results:\n--- want\n%s--- got\n%s", plain, got)
	}
}

// runChurnWorld2 mirrors runWorldWorkers exactly (same node config, no
// DescriptorTTL) but threads a churn schedule, for the identity test.
func runChurnWorld2(n, items, cycles int, loss float64, seed int64, workers int,
	schedule ChurnSchedule) (*metrics.Collector, *Engine) {
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
	e := New(Config{
		Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs,
		BootstrapDegree: 4, Workers: workers, Churn: schedule,
	}, peers, col)
	e.Bootstrap()
	e.Run()
	return col, e
}

// TestViewsSelfHealAfterDepartures is the eviction property test: after 20%
// of the population leaves gracefully, no online view may still hold a
// departed node's descriptor once the eviction horizon has passed.
func TestViewsSelfHealAfterDepartures(t *testing.T) {
	const n, cycles, ttl = 100, 40, 10
	const leaveCycle = 15
	var schedule ChurnSchedule
	for i := 0; i < n/5; i++ { // 20% graceful leaves at one cycle
		schedule.Add(leaveCycle, ChurnLeave, news.NodeID(i*5))
	}
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: cycles, DescriptorTTL: ttl}
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions, rand.New(rand.NewSource(50+int64(i))))
	}
	col := metrics.NewCollector()
	e := New(Config{Seed: 5, Cycles: cycles, BootstrapDegree: 5, Churn: schedule}, peers, col)
	e.Bootstrap()

	ghostCount := func() (ghosts, total int) {
		for _, p := range e.OnlinePeers() {
			count := func(id news.NodeID) {
				total++
				if st, ok := e.State(id); !ok || st != Online {
					ghosts++
				}
			}
			for _, d := range p.RPS().View().Entries() {
				count(d.Node)
			}
			for _, d := range p.WUP().View().Entries() {
				count(d.Node)
			}
		}
		return ghosts, total
	}

	sawGhosts := false
	for c := 0; c < cycles; c++ {
		e.Step()
		ghosts, total := ghostCount()
		if e.Now() > leaveCycle && e.Now() <= leaveCycle+3 && ghosts > 0 {
			sawGhosts = true // departures must actually leave ghosts behind at first
		}
		// The bound: one horizon after the departures (plus the cycle the
		// eviction runs in), every ghost descriptor has aged out.
		if e.Now() > leaveCycle+ttl+1 && ghosts > 0 {
			t.Fatalf("cycle %d: %d/%d descriptors still point at departed nodes (horizon %d, departures at %d)",
				e.Now(), ghosts, total, ttl, leaveCycle)
		}
		if total == 0 && e.Now() > 1 {
			t.Fatalf("cycle %d: online views are empty — eviction is too aggressive", e.Now())
		}
	}
	if !sawGhosts {
		t.Fatal("departures left no ghosts at all; the test exercised nothing")
	}
	if e.OnlineCount() != n-n/5 {
		t.Fatalf("online count %d, want %d", e.OnlineCount(), n-n/5)
	}
}

// TestLifecycleTransitions pins the membership state machine: the manual
// Join/Leave/Crash/Rejoin API and its invalid-transition handling.
func TestLifecycleTransitions(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, _, col := communityWorld(20, 0, 10, cfg, 4)
	e := New(Config{Seed: 4, Cycles: 10, BootstrapDegree: 3}, peers, col)
	e.Bootstrap()
	e.Step()

	if st, ok := e.State(0); !ok || st != Online {
		t.Fatalf("initial state = %v, %v", st, ok)
	}
	if !e.Crash(0) {
		t.Fatal("crash of an online member must succeed")
	}
	if e.Crash(0) {
		t.Fatal("crashing an offline member must be a no-op")
	}
	if st, _ := e.State(0); st != Offline {
		t.Fatalf("state after crash = %v", st)
	}
	if n := e.Peer(0).(*core.Node); n.RPS().View().Len() != 0 {
		t.Fatal("crash must wipe views")
	}
	if e.OnlineCount() != 19 {
		t.Fatalf("online count %d, want 19", e.OnlineCount())
	}
	if !e.Rejoin(0) {
		t.Fatal("rejoin of an offline member must succeed")
	}
	if e.Rejoin(0) {
		t.Fatal("rejoining an online member must be a no-op")
	}
	if n := e.Peer(0).(*core.Node); n.RPS().View().Len() == 0 {
		t.Fatal("rejoin must re-seed views from the online population")
	}
	if !e.Leave(5) {
		t.Fatal("leave of an online member must succeed")
	}
	if e.Leave(5) {
		t.Fatal("leaving a departed member must be a no-op")
	}
	if e.Rejoin(5) {
		t.Fatal("a departed member must not rejoin")
	}
	if e.Leave(999) || e.Crash(999) || e.Rejoin(999) {
		t.Fatal("unknown ids must be rejected")
	}

	// A scheduled join through the public API cold-starts from a live host.
	joiner := core.NewNode(500, "", cfg, core.OpinionFunc(func(news.NodeID, news.ID) bool { return true }),
		rand.New(rand.NewSource(500)))
	if !e.Join(joiner) {
		t.Fatal("join of a fresh id must succeed")
	}
	if e.Join(joiner) {
		t.Fatal("joining an existing id must be a no-op")
	}
	if joiner.RPS().View().Len() == 0 || joiner.WUP().View().Len() == 0 {
		t.Fatal("join must bootstrap both views from the online population")
	}
	// (This world publishes no items, so the inherited views hold empty
	// profiles and the cold-start rating step has nothing popular to rate;
	// the profile side of ColdStart is covered by the core package tests.)
	e.Run()
}

// TestPeersReturnsACopy pins the satellite fix: mutating the slice returned
// by Peers must not affect the engine.
func TestPeersReturnsACopy(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, _, col := communityWorld(10, 0, 5, cfg, 4)
	e := New(Config{Seed: 4, Cycles: 5}, peers, col)
	got := e.Peers()
	got[0] = nil
	got[1] = got[2]
	if e.Peer(0) == nil || e.Peers()[0] == nil {
		t.Fatal("mutating the returned slice corrupted the engine")
	}
	if e.Peers()[1].ID() != 1 {
		t.Fatal("engine slice aliased by caller mutation")
	}
}

// TestOfflinePublicationsAreDropped: a publication whose source is offline
// at its cycle never fires, like a post from a crashed client.
func TestOfflinePublicationsAreDropped(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool { return true })
	const n = 20
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions, rand.New(rand.NewSource(int64(i))))
	}
	col := metrics.NewCollector()
	it := news.New("solo", "d", "l", 5, 3)
	it.ID = 1
	col.RegisterItem(it.ID, n)
	var schedule ChurnSchedule
	schedule.Add(2, ChurnCrash, 3)
	e := New(Config{
		Seed: 9, Cycles: 10, BootstrapDegree: 4, Churn: schedule,
		Publications: []Publication{{Cycle: 5, Source: 3, Item: it}},
	}, peers, col)
	e.Bootstrap()
	e.Run()
	if col.Messages(metrics.MsgBeep) != 0 {
		t.Fatalf("crashed source must not publish; saw %d BEEP messages", col.Messages(metrics.MsgBeep))
	}
	if st := col.Item(it.ID); st.Reached != 0 {
		t.Fatalf("item reached %d nodes despite its source being offline", st.Reached)
	}
}
