package sim

import (
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// TestCrashRecovery injects view wipes into half the fleet mid-run: the
// overlay must re-form through gossip and dissemination must keep working —
// the robustness property the paper claims for gossip protocols.
func TestCrashRecovery(t *testing.T) {
	const n, items, cycles = 40, 40, 40
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: cycles}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, 11)
	crashed := false
	e := New(Config{
		Seed:         11,
		Cycles:       cycles,
		Publications: pubs,
		OnCycleEnd: func(e *Engine, now int64) {
			if now == cycles/2 && !crashed {
				crashed = true
				for i, p := range e.Peers() {
					if i%2 == 0 {
						p.(*core.Node).Crash()
					}
				}
			}
		},
	}, peers, col)
	e.Bootstrap()
	e.Run()

	// Views must have re-formed after the crash through gossip exchanges
	// with the surviving half.
	empty := 0
	for _, p := range e.Peers() {
		if p.RPS().View().Len() == 0 {
			empty++
		}
	}
	if empty > n/4 {
		t.Fatalf("%d of %d nodes still isolated after recovery window", empty, n)
	}
	if col.Recall() < 0.3 {
		t.Fatalf("recall after mass crash too low: %v", col.Recall())
	}
}

// TestColdStartReintegration: a node that has been inactive for a full
// profile window decays to an empty profile (treated as new) and must
// reintegrate once it resumes, as Section II-E describes.
func TestColdStartReintegration(t *testing.T) {
	const n, items, cycles = 30, 30, 30
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: 8}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, 12)
	e := New(Config{Seed: 12, Cycles: cycles, Publications: pubs}, peers, col)
	e.Bootstrap()
	for i := 0; i < cycles; i++ {
		e.Step()
	}
	// Profiles hold only in-window entries: nothing older than the window.
	minStamp := e.Now() - cfg.ProfileWindow
	for _, p := range e.Peers() {
		node := p.(*core.Node)
		node.UserProfile().ForEach(func(entry profile.Entry) {
			if entry.Stamp < minStamp {
				t.Fatalf("node %d kept entry older than the window: %+v", node.ID(), entry)
			}
		})
	}
	// Build a fresh joiner from a live host and verify it acquires
	// neighbours within a few cycles.
	host := e.Peers()[0].(*core.Node)
	joiner := core.NewNode(99, "", cfg, core.OpinionFunc(func(news.NodeID, news.ID) bool { return true }),
		rand.New(rand.NewSource(99)))
	joiner.ColdStart(host.RPS().View().Entries(), host.WUP().View().Entries(), e.Now())
	if joiner.UserProfile().Len() == 0 {
		t.Fatal("cold start must seed the profile from popular items")
	}
	e.AddPeer(joiner)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if joiner.WUP().View().Len() == 0 {
		t.Fatal("joiner must acquire WUP neighbours after resuming")
	}
}

// TestLossAppliesToGossipToo: under heavy loss the gossip layers themselves
// degrade (fewer successful exchanges → staler views), visible as fewer
// gossip reply messages than requests.
func TestLossAppliesToGossipToo(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, pubs, col := communityWorld(20, 10, 15, cfg, 13)
	e := New(Config{Seed: 13, Cycles: 15, LossRate: 0.5, Publications: pubs}, peers, col)
	e.Bootstrap()
	e.Run()
	req := col.Messages(metrics.MsgRPSRequest)
	rep := col.Messages(metrics.MsgRPSReply)
	if rep >= req {
		t.Fatalf("half the requests should be lost before generating replies: req=%d rep=%d", req, rep)
	}
}
