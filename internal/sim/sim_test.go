package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// communityWorld builds a small 2-community workload: even nodes like even
// items, odd nodes like odd items. It returns peers, the schedule and a
// registered collector.
func communityWorld(n, items, cycles int, cfg core.Config, seed int64) ([]Peer, []Publication, *metrics.Collector) {
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions, rand.New(rand.NewSource(seed+int64(i))))
	}
	col := metrics.NewCollector()
	var pubs []Publication
	for k := 0; k < items; k++ {
		source := news.NodeID((2*k + k%2) % n) // a node of the item's community
		if int(source)%2 != k%2 {
			source = news.NodeID((int(source) + 1) % n)
		}
		it := news.New(fmt.Sprintf("item-%d", k), "d", "l", int64(1+k*cycles/items), source)
		it.ID = news.ID(k)
		pubs = append(pubs, Publication{Cycle: int64(1 + k*cycles/items), Source: source, Item: it})
		col.RegisterItem(it.ID, n/2) // half the population is interested
	}
	for i := 0; i < n; i++ {
		col.RegisterNode(news.NodeID(i), items/2)
	}
	return peers, pubs, col
}

func runWorld(n, items, cycles int, loss float64, seed int64) *metrics.Collector {
	cfg := core.Config{FLike: 4, RPSViewSize: 8, ProfileWindow: int64(cycles)}
	peers, pubs, col := communityWorld(n, items, cycles, cfg, seed)
	e := New(Config{Seed: seed, Cycles: cycles, LossRate: loss, Publications: pubs, BootstrapDegree: 4}, peers, col)
	e.Bootstrap()
	e.Run()
	return col
}

func TestDeterminism(t *testing.T) {
	a := runWorld(40, 30, 20, 0.1, 7)
	b := runWorld(40, 30, 20, 0.1, 7)
	if a.F1() != b.F1() {
		t.Fatalf("same seed must give identical F1: %v vs %v", a.F1(), b.F1())
	}
	if a.TotalMessages() != b.TotalMessages() {
		t.Fatalf("same seed must give identical traffic: %d vs %d", a.TotalMessages(), b.TotalMessages())
	}
	if a.Precision() != b.Precision() || a.Recall() != b.Recall() {
		t.Fatal("same seed must give identical precision/recall")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := runWorld(40, 30, 20, 0.1, 7)
	b := runWorld(40, 30, 20, 0.1, 8)
	if a.TotalMessages() == b.TotalMessages() && a.F1() == b.F1() {
		t.Fatal("different seeds should not produce byte-identical runs")
	}
}

func TestDisseminationReachesInterestedUsers(t *testing.T) {
	col := runWorld(40, 30, 25, 0, 1)
	if r := col.Recall(); r < 0.5 {
		t.Fatalf("recall too low in a 2-community world: %v", r)
	}
	if p := col.Precision(); p < 0.5 {
		t.Fatalf("precision too low: %v", p)
	}
	if col.Messages(metrics.MsgBeep) == 0 || col.GossipMessages() == 0 {
		t.Fatal("both BEEP and gossip traffic must be accounted")
	}
}

func TestLossDegradesRecall(t *testing.T) {
	clean := runWorld(40, 30, 25, 0, 2)
	lossy := runWorld(40, 30, 25, 0.6, 2)
	if lossy.Recall() >= clean.Recall() {
		t.Fatalf("60%% loss must hurt recall: clean=%v lossy=%v", clean.Recall(), lossy.Recall())
	}
}

func TestModerateLossToleratedByGossip(t *testing.T) {
	// The robustness headline: moderate loss should cost little recall
	// thanks to gossip redundancy (Table VI shape).
	clean := runWorld(60, 30, 25, 0, 3)
	lossy := runWorld(60, 30, 25, 0.1, 3)
	if lossy.Recall() < clean.Recall()-0.25 {
		t.Fatalf("10%% loss should be largely absorbed: clean=%v lossy=%v", clean.Recall(), lossy.Recall())
	}
}

func TestBootstrapSeedsViews(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, _, col := communityWorld(10, 0, 10, cfg, 4)
	e := New(Config{Seed: 4, Cycles: 10, BootstrapDegree: 3}, peers, col)
	e.Bootstrap()
	for _, p := range peers {
		if p.RPS().View().Len() != 3 {
			t.Fatalf("RPS view len=%d want 3", p.RPS().View().Len())
		}
		if p.WUP().View().Len() == 0 {
			t.Fatal("WUP view must be seeded")
		}
	}
}

func TestWUPGraphSnapshot(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, pubs, col := communityWorld(20, 10, 15, cfg, 5)
	e := New(Config{Seed: 5, Cycles: 15, Publications: pubs}, peers, col)
	e.Bootstrap()
	e.Run()
	g := e.WUPGraph()
	if g.N() != 20 {
		t.Fatalf("graph nodes=%d want 20", g.N())
	}
	if g.Edges() == 0 {
		t.Fatal("WUP graph must have edges after a run")
	}
}

func TestOnDeliveryAndOnCycleEndHooks(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, pubs, col := communityWorld(20, 10, 15, cfg, 6)
	deliveries, cycleEnds := 0, 0
	e := New(Config{
		Seed:         6,
		Cycles:       15,
		Publications: pubs,
		OnDelivery:   func(core.Delivery, int64) { deliveries++ },
		OnCycleEnd:   func(*Engine, int64) { cycleEnds++ },
	}, peers, col)
	e.Bootstrap()
	e.Run()
	if cycleEnds != 15 {
		t.Fatalf("OnCycleEnd fired %d times, want 15", cycleEnds)
	}
	if deliveries == 0 {
		t.Fatal("OnDelivery must observe deliveries")
	}
}

func TestStepAndAddPeer(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 6}
	peers, pubs, col := communityWorld(20, 10, 20, cfg, 7)
	e := New(Config{Seed: 7, Cycles: 20, Publications: pubs}, peers, col)
	e.Bootstrap()
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if e.Now() != 10 {
		t.Fatalf("Now=%d want 10", e.Now())
	}
	// Join a new node mid-run via cold start from peer 0's views.
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool { return int(item)%2 == 0 })
	join := core.NewNode(99, "", cfg, opinions, rand.New(rand.NewSource(99)))
	host := peers[0].(*core.Node)
	join.ColdStart(host.RPS().View().Entries(), host.WUP().View().Entries(), e.Now())
	e.AddPeer(join)
	e.Run()
	if e.Now() != 20 {
		t.Fatalf("Now=%d want 20", e.Now())
	}
	if join.UserProfile().Len() == 0 {
		t.Fatal("joining node must have cold-start ratings")
	}
	if e.Peer(99) == nil {
		t.Fatal("joined peer must be registered")
	}
}

func TestFullLossMeansOnlySources(t *testing.T) {
	col := runWorld(30, 20, 20, 1.0, 8)
	// With 100% loss nothing is ever delivered beyond the publishing node.
	if col.Recall() > 0.15 {
		t.Fatalf("recall should collapse under total loss, got %v", col.Recall())
	}
	if col.Messages(metrics.MsgBeep) == 0 {
		t.Fatal("sent-but-lost messages must still be counted")
	}
}

func TestHopHistogramsRecorded(t *testing.T) {
	cfg := core.Config{FLike: 3, RPSViewSize: 8, DislikeTTL: 4, ProfileWindow: 25}
	peers, pubs, col := communityWorld(40, 20, 25, cfg, 9)
	e := New(Config{Seed: 9, Cycles: 25, Publications: pubs}, peers, col)
	e.Bootstrap()
	e.Run()
	if len(col.InfectionByLike) == 0 {
		t.Fatal("like infections must be recorded")
	}
	if len(col.ForwardByLike) == 0 {
		t.Fatal("like forwards must be recorded")
	}
	// In a half/half world dislike forwards are common.
	if len(col.ForwardByDislike) == 0 {
		t.Fatal("dislike forwards must be recorded")
	}
}
