// Package baselines implements the competitors of the evaluation
// (paper Section IV-B): standard homogeneous gossip, decentralized
// collaborative filtering with either metric (CF-WUP / CF-Cos), explicit
// cascading over a social graph, the ideal centralized topic-based
// publish/subscribe system (C-Pub/Sub), and the centralized variant of
// WhatsUp with global knowledge (C-WhatsUp).
//
// Gossip and CF are sim.Peer implementations driven by the same engine as
// WhatsUp; cascading, C-Pub/Sub and C-WhatsUp are centralized computations
// that feed the same metrics collector.
package baselines

import (
	"math/rand"

	"whatsup/internal/cluster"
	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/rps"
)

// Gossip is a standard homogeneous SIR gossip peer (Table III, row
// "Gossip"): on first receipt of an item it forwards it to Fanout random
// members of its RPS view, regardless of the user's opinion. It maintains no
// clustering layer and no item profiles. Opinions are still recorded so
// precision can be measured.
type Gossip struct {
	id       news.NodeID
	fanout   int
	user     *profile.Profile
	rps      *rps.Protocol
	opinions core.Opinions
	rng      *rand.Rand
	seen     map[news.ID]struct{}
	behavior core.Behavior // adversarial seam; nil = honest
}

// NewGossip builds a homogeneous gossip peer with the given fanout and RPS
// view size.
func NewGossip(id news.NodeID, fanout, rpsViewSize int, opinions core.Opinions, rng *rand.Rand) *Gossip {
	if rpsViewSize <= 0 {
		rpsViewSize = core.DefaultRPSViewSize
	}
	return &Gossip{
		id:       id,
		fanout:   fanout,
		user:     profile.New(),
		rps:      rps.New(id, "", rpsViewSize, rng),
		opinions: opinions,
		rng:      rng,
		seen:     make(map[news.ID]struct{}),
	}
}

// SetBehavior attaches (or, with nil, detaches) an adversarial behavior, so
// attack scenarios run against the same baseline peers as against WhatsUp.
func (g *Gossip) SetBehavior(b core.Behavior) { g.behavior = b }

// AdvertisedProfile implements sim.ProfileAdvertiser: the profile gossiped
// in this peer's overlay descriptors (poisoned when a behavior says so).
func (g *Gossip) AdvertisedProfile(now int64) *profile.Profile {
	if g.behavior != nil {
		return g.behavior.AdvertisedProfile(g.user, now)
	}
	return g.user
}

// ID implements sim.Peer.
func (g *Gossip) ID() news.NodeID { return g.id }

// RPS implements sim.Peer.
func (g *Gossip) RPS() *rps.Protocol { return g.rps }

// WUP implements sim.Peer; homogeneous gossip has no clustering layer.
func (g *Gossip) WUP() *cluster.Protocol { return nil }

// UserProfile implements sim.Peer.
func (g *Gossip) UserProfile() *profile.Profile { return g.user }

// BeginCycle implements sim.Peer; plain gossip keeps no windowed state.
func (g *Gossip) BeginCycle(int64) {}

// InjectRPSCandidates implements sim.Peer; there is no clustering layer to
// feed.
func (g *Gossip) InjectRPSCandidates() {}

// Publish implements sim.Peer: infect-and-forward like any other receipt.
func (g *Gossip) Publish(item news.Item, now int64) []core.Send {
	if _, dup := g.seen[item.ID]; dup {
		return nil
	}
	g.seen[item.ID] = struct{}{}
	g.user.Set(item.ID, item.Created, 1)
	return g.spread(item, 1)
}

// Receive implements sim.Peer: SIR with homogeneous fanout and uniform
// random targets; the user's opinion influences nothing but the records.
func (g *Gossip) Receive(msg core.ItemMessage, now int64) (core.Delivery, []core.Send) {
	d := core.Delivery{Node: g.id, Item: msg.Item.ID, Hops: msg.Hops}
	if _, dup := g.seen[msg.Item.ID]; dup {
		d.Duplicate = true
		return d, nil
	}
	g.seen[msg.Item.ID] = struct{}{}
	liked := g.opinions.Likes(g.id, msg.Item.ID)
	if g.behavior != nil {
		liked = g.behavior.React(msg.Item, liked)
	}
	d.Liked = liked
	score := 0.0
	if liked {
		score = 1
	}
	g.user.Set(msg.Item.ID, msg.Item.Created, score)
	return d, g.spread(msg.Item, msg.Hops+1)
}

// Crash implements sim.Crasher: an abrupt failure wipes the volatile view
// state, exactly like core.Node.Crash. Without this hook a scheduled crash
// would flip the member's state but leave its pre-crash view intact, making
// churn comparisons against WhatsUp apples-to-oranges. The engine re-seeds
// the view from an online sample on rejoin.
func (g *Gossip) Crash() {
	g.rps.Crash()
}

// Leave implements sim.Leaver: a graceful departure drops the view like a
// crash (the state is volatile either way; departure is final).
func (g *Gossip) Leave() {
	g.Crash()
}

func (g *Gossip) spread(item news.Item, hops int) []core.Send {
	targets := g.rps.View().RandomSample(g.rng, g.fanout)
	if len(targets) == 0 {
		return nil
	}
	sends := make([]core.Send, 0, len(targets))
	for _, t := range targets {
		sends = append(sends, core.Send{
			To:  t.Node,
			Msg: core.ItemMessage{Item: item, Hops: hops},
		})
	}
	return sends
}
