package baselines

import (
	"sort"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// CentralConfig parameterizes C-WhatsUp, the centralized variant of WhatsUp
// with global knowledge (Section IV-B, Figure 9).
type CentralConfig struct {
	// FLike: on a like, the server delivers the item to the FLike users
	// closest to the liker (cosine over user profiles) and to the FLike
	// users whose profiles correlate best with the item profile.
	FLike int
	// FDislike: on a dislike, the server presents the item to the FDislike
	// users most similar to the item profile (default 1).
	FDislike int
	// TTL bounds dislike propagation as in BEEP (default 4).
	TTL int
	// Window is the profile window in cycles (default 13).
	Window int64
}

func (c CentralConfig) withDefaults() CentralConfig {
	if c.FLike <= 0 {
		c.FLike = core.DefaultFLike
	}
	if c.FDislike <= 0 {
		c.FDislike = 1
	}
	if c.TTL <= 0 {
		c.TTL = core.DefaultDislikeTTL
	}
	if c.Window <= 0 {
		c.Window = core.DefaultProfileWindow
	}
	return c
}

// RunCentral evaluates C-WhatsUp: a single server "gathering the global
// knowledge of all the profiles of its users and news items" (Section IV-B).
// Global knowledge is modelled as the strongest reading of the paper: at any
// cycle the server knows every user's opinion on every item published within
// the profile window, whether or not the user received it, and it updates
// item profiles instantly along the dissemination. Complete search over the
// population selects delivery targets. This upper-bounds what WhatsUp can
// achieve with partial, gossip-propagated knowledge (Figure 9).
func RunCentral(ds *dataset.Dataset, cfg CentralConfig, col *metrics.Collector) {
	cfg = cfg.withDefaults()
	registerWorkload(ds, col)

	users := ds.Users
	profiles := make([]*profile.Profile, users)
	for u := range profiles {
		profiles[u] = profile.New()
	}
	cosine := profile.Cosine{}

	// Items in publication order; the server maintains the window-restricted
	// trace profiles as the clock advances.
	order := make([]int, len(ds.Items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ds.Items[order[a]].Cycle < ds.Items[order[b]].Cycle })

	clock := int64(0)
	next := 0 // next item index (in order) whose ratings enter the profiles
	for _, idx := range order {
		it := ds.Items[idx]
		if it.Cycle > clock {
			clock = it.Cycle
			// Admit ratings of all items published up to the new clock.
			for ; next < len(order) && ds.Items[order[next]].Cycle <= clock; next++ {
				admitted := ds.Items[order[next]]
				for u := 0; u < users; u++ {
					score := 0.0
					if ds.LikesIndex(u, admitted.Index) {
						score = 1
					}
					profiles[u].Set(admitted.News.ID, admitted.Cycle, score)
				}
			}
			for _, p := range profiles {
				p.PurgeOlderThan(clock - cfg.Window)
			}
		}
		disseminate(ds, cfg, col, profiles, cosine, it)
	}
}

type centralTask struct {
	user       news.NodeID
	hops       int
	dislikes   int
	viaDislike bool
}

func disseminate(ds *dataset.Dataset, cfg CentralConfig, col *metrics.Collector,
	profiles []*profile.Profile, cosine profile.Cosine, it dataset.Item) {

	itemProfile := profile.New()
	seen := make(map[news.NodeID]bool, ds.Users)
	queue := []centralTask{{user: it.News.Source}}

	// closest returns the k unseen users maximizing similarity to target.
	closest := func(target *profile.Profile, k int) []news.NodeID {
		type cand struct {
			u news.NodeID
			s float64
		}
		var best []cand
		for u := 0; u < ds.Users; u++ {
			id := news.NodeID(u)
			if seen[id] {
				continue
			}
			s := cosine.Similarity(target, profiles[u])
			if s <= 0 {
				continue
			}
			best = append(best, cand{id, s})
		}
		sort.Slice(best, func(i, j int) bool {
			if best[i].s != best[j].s {
				return best[i].s > best[j].s
			}
			return best[i].u < best[j].u
		})
		if len(best) > k {
			best = best[:k]
		}
		out := make([]news.NodeID, len(best))
		for i, c := range best {
			out[i] = c.u
		}
		return out
	}

	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		if seen[task.user] {
			continue
		}
		seen[task.user] = true
		u := task.user
		liked := ds.Likes(u, it.News.ID)
		if task.hops > 0 {
			// One server→user message per delivery beyond the source.
			col.RecordMessage(metrics.MsgBeep, it.News.WireSize())
		}
		col.RecordDelivery(core.Delivery{
			Node: u, Item: it.News.ID, Liked: liked,
			Hops: task.hops, Dislikes: task.dislikes, ViaDislike: task.viaDislike,
		})
		up := profiles[u]
		if liked {
			// Instant global update: aggregate the liker's prior profile
			// into the item profile, then record the like.
			up.ForEach(func(e profile.Entry) {
				itemProfile.AverageIn(e.Item, e.Stamp, e.Score)
			})
			up.Set(it.News.ID, it.Cycle, 1)
			targets := closest(up, cfg.FLike)
			targets = append(targets, closest(itemProfile, cfg.FLike)...)
			if len(targets) > 0 {
				col.RecordForward(true, task.hops)
			}
			for _, t := range targets {
				queue = append(queue, centralTask{user: t, hops: task.hops + 1, dislikes: task.dislikes})
			}
		} else {
			up.Set(it.News.ID, it.Cycle, 0)
			if task.dislikes < cfg.TTL {
				targets := closest(itemProfile, cfg.FDislike)
				if len(targets) > 0 {
					col.RecordForward(false, task.hops)
				}
				for _, t := range targets {
					queue = append(queue, centralTask{
						user: t, hops: task.hops + 1,
						dislikes: task.dislikes + 1, viaDislike: true,
					})
				}
			}
		}
	}
}
