package baselines

import (
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/sim"
)

// The gossip and CF peers must satisfy the engine contract, including the
// lifecycle hooks so scheduled crashes wipe their views like WhatsUp's.
var (
	_ sim.Peer    = (*Gossip)(nil)
	_ sim.Peer    = (*CF)(nil)
	_ sim.Crasher = (*Gossip)(nil)
	_ sim.Crasher = (*CF)(nil)
	_ sim.Leaver  = (*Gossip)(nil)
	_ sim.Leaver  = (*CF)(nil)
)

func likeEven() core.Opinions {
	return core.OpinionFunc(func(_ news.NodeID, item news.ID) bool { return item%2 == 0 })
}

func descLiking(node news.NodeID, liked ...news.ID) overlay.Descriptor {
	p := profile.New()
	for _, id := range liked {
		p.Set(id, 0, 1)
	}
	return overlay.Descriptor{Node: node, Stamp: 0, Profile: p}
}

func fixedItem(id int) news.Item {
	it := news.New("t", "d", "l", 1, 0)
	it.ID = news.ID(id)
	return it
}

func TestGossipForwardsRegardlessOfOpinion(t *testing.T) {
	g := NewGossip(0, 3, 8, likeEven(), rand.New(rand.NewSource(1)))
	g.RPS().Seed([]overlay.Descriptor{
		descLiking(1), descLiking(2), descLiking(3), descLiking(4),
	})
	// Disliked item (odd id) still forwarded with full fanout.
	d, sends := g.Receive(core.ItemMessage{Item: fixedItem(3), Hops: 1}, 1)
	if d.Liked {
		t.Fatal("odd items are disliked")
	}
	if len(sends) != 3 {
		t.Fatalf("homogeneous gossip must forward %d copies, got %d", 3, len(sends))
	}
	// Liked item: same fanout.
	_, sends = g.Receive(core.ItemMessage{Item: fixedItem(4), Hops: 1}, 1)
	if len(sends) != 3 {
		t.Fatalf("fanout must not depend on opinion, got %d", len(sends))
	}
	// Duplicate dropped.
	if d, sends := g.Receive(core.ItemMessage{Item: fixedItem(3), Hops: 2}, 1); !d.Duplicate || sends != nil {
		t.Fatal("duplicates must be dropped")
	}
}

func TestGossipPublish(t *testing.T) {
	g := NewGossip(0, 2, 8, likeEven(), rand.New(rand.NewSource(2)))
	g.RPS().Seed([]overlay.Descriptor{descLiking(1), descLiking(2)})
	sends := g.Publish(fixedItem(10), 1)
	if len(sends) != 2 {
		t.Fatalf("publish fanout=%d want 2", len(sends))
	}
	if e, ok := g.UserProfile().Get(10); !ok || e.Score != 1 {
		t.Fatal("source must record a like for its own item")
	}
	if g.WUP() != nil {
		t.Fatal("plain gossip must have no clustering layer")
	}
}

func TestCFForwardsOnlyWhenLiked(t *testing.T) {
	c := NewCF(0, 2, 8, 100, profile.WUP{}, likeEven(), rand.New(rand.NewSource(3)))
	c.WUP().Seed([]overlay.Descriptor{descLiking(1), descLiking(2)}, c.UserProfile())
	// Liked item: forwarded to all k neighbours.
	d, sends := c.Receive(core.ItemMessage{Item: fixedItem(4), Hops: 1}, 1)
	if !d.Liked || len(sends) != 2 {
		t.Fatalf("CF must forward liked items to all k: %d sends", len(sends))
	}
	// Disliked item: recorded but not forwarded.
	d, sends = c.Receive(core.ItemMessage{Item: fixedItem(5), Hops: 1}, 1)
	if d.Liked || sends != nil {
		t.Fatal("CF must take no action on dislike")
	}
	if e, ok := c.UserProfile().Get(5); !ok || e.Score != 0 {
		t.Fatal("dislike must still be recorded in the profile")
	}
}

func TestCFWindowPurge(t *testing.T) {
	c := NewCF(0, 2, 8, 10, profile.Cosine{}, likeEven(), rand.New(rand.NewSource(4)))
	c.UserProfile().Set(2, 1, 1)
	c.BeginCycle(50)
	if c.UserProfile().Len() != 0 {
		t.Fatal("window purge must drop stale entries")
	}
}

func TestCFRunsUnderEngine(t *testing.T) {
	// A small end-to-end run of CF peers under the simulation engine.
	const n = 30
	op := likeEven()
	peers := make([]sim.Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = NewCF(news.NodeID(i), 4, 8, 100, profile.WUP{}, op, rand.New(rand.NewSource(int64(i))))
	}
	col := metrics.NewCollector()
	var pubs []sim.Publication
	for k := 0; k < 20; k++ {
		it := fixedItem(k)
		it.Created = int64(1 + k)
		pubs = append(pubs, sim.Publication{Cycle: int64(1 + k), Source: news.NodeID(k % n), Item: it})
		interested := 0
		if k%2 == 0 {
			interested = n
		}
		col.RegisterItem(it.ID, interested)
	}
	e := sim.New(sim.Config{Seed: 9, Cycles: 25, Publications: pubs}, peers, col)
	e.Bootstrap()
	e.Run()
	if col.Recall() == 0 {
		t.Fatal("CF must deliver some liked items")
	}
	if col.Messages(metrics.MsgBeep) == 0 || col.GossipMessages() == 0 {
		t.Fatal("traffic must be accounted")
	}
}

// TestBaselineCrashWipesViews pins the lifecycle bugfix: a scheduled crash
// of a Gossip or CF peer must leave no pre-crash descriptors behind — the
// stale view made churn comparisons against WhatsUp apples-to-oranges — and
// a rejoin must re-seed from the online population.
func TestBaselineCrashWipesViews(t *testing.T) {
	const n = 24
	op := likeEven()
	build := map[string]func(i int) sim.Peer{
		"gossip": func(i int) sim.Peer {
			return NewGossip(news.NodeID(i), 3, 8, op, rand.New(rand.NewSource(int64(i))))
		},
		"cf": func(i int) sim.Peer {
			return NewCF(news.NodeID(i), 3, 8, 100, profile.WUP{}, op, rand.New(rand.NewSource(int64(i))))
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			peers := make([]sim.Peer, n)
			for i := 0; i < n; i++ {
				peers[i] = mk(i)
			}
			e := sim.New(sim.Config{Seed: 11, Cycles: 10, BootstrapDegree: 4}, peers, metrics.NewCollector())
			e.Bootstrap()
			e.Step()
			e.Step()
			p := e.Peer(0)
			if p.RPS().View().Len() == 0 {
				t.Fatal("pre-crash RPS view empty; nothing to exercise")
			}
			pre := p.RPS().View().Nodes()
			if !e.Crash(0) {
				t.Fatal("crash must succeed")
			}
			if got := p.RPS().View().Len(); got != 0 {
				t.Fatalf("crashed peer still holds %d RPS descriptors (pre-crash: %v)", got, pre)
			}
			if p.WUP() != nil && p.WUP().View().Len() != 0 {
				t.Fatalf("crashed CF peer still holds %d kNN descriptors", p.WUP().View().Len())
			}
			if !e.Rejoin(0) {
				t.Fatal("rejoin must succeed")
			}
			if p.RPS().View().Len() == 0 {
				t.Fatal("rejoin must re-seed the RPS view from the online population")
			}
			if p.WUP() != nil && p.WUP().View().Len() == 0 {
				t.Fatal("rejoin must re-seed the kNN view")
			}
		})
	}
}

// tinyDataset builds a minimal survey-style dataset for the centralized
// baselines.
func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Survey(dataset.SurveyConfig{Seed: 42, Scale: 0.05})
}

func TestPubSubPerfectRecall(t *testing.T) {
	// Large enough that background likes create off-topic subscribers, which
	// is what bounds C-Pub/Sub's precision below 1.
	ds := dataset.Survey(dataset.SurveyConfig{Seed: 42, Scale: 0.25})
	col := metrics.NewCollector()
	RunPubSub(ds, col)
	if r := col.Recall(); r < 0.999 {
		t.Fatalf("C-Pub/Sub recall must be 1, got %v", r)
	}
	p := col.Precision()
	if p <= 0 || p > 1 {
		t.Fatalf("precision out of range: %v", p)
	}
	if p > 0.95 {
		t.Fatalf("topic granularity should limit precision, got %v", p)
	}
	if col.Messages(metrics.MsgBeep) == 0 {
		t.Fatal("pub/sub messages must be counted")
	}
}

func TestCascadeLowRecall(t *testing.T) {
	ds := dataset.Digg(dataset.DiggConfig{Seed: 7, Scale: 0.08})
	col := metrics.NewCollector()
	RunCascade(ds, col)
	r := col.Recall()
	if r <= 0 {
		t.Fatal("cascade must reach someone")
	}
	if r > 0.7 {
		t.Fatalf("cascading over an interest-agnostic graph should miss many interested users, recall=%v", r)
	}
	if col.Messages(metrics.MsgBeep) == 0 {
		t.Fatal("cascade messages must be counted")
	}
}

func TestCascadeRequiresLikeToForward(t *testing.T) {
	// Hand-built 4-user line: 0→1→2→3. User 2 dislikes everything, so 3 can
	// never be reached.
	ds := dataset.Digg(dataset.DiggConfig{Seed: 1, Scale: 0.02})
	_ = ds // structure test is covered by the Digg generator; here we check the mechanism:
	col := metrics.NewCollector()
	RunCascade(ds, col)
	// Every delivery beyond hop 0 must have been forwarded by a liker: no
	// infection can be at hops > 0 unless some forward happened at hops-1.
	for h := range col.InfectionByLike {
		if h == 0 {
			continue
		}
		if col.ForwardByLike[h-1] == 0 {
			t.Fatalf("infection at hop %d without any forward at hop %d", h, h-1)
		}
	}
	if len(col.ForwardByDislike) != 0 {
		t.Fatal("cascade must never dislike-forward")
	}
}

func TestCentralBeatsNothingButBehaves(t *testing.T) {
	ds := tinyDataset(t)
	col := metrics.NewCollector()
	RunCentral(ds, CentralConfig{FLike: 5}, col)
	p, r := col.Precision(), col.Recall()
	if p <= 0 || r <= 0 {
		t.Fatalf("central must deliver: P=%v R=%v", p, r)
	}
	if col.Messages(metrics.MsgBeep) == 0 {
		t.Fatal("central messages must be counted")
	}
}

func TestCentralConfigDefaults(t *testing.T) {
	c := CentralConfig{}.withDefaults()
	if c.FLike != core.DefaultFLike || c.FDislike != 1 || c.TTL != 4 || c.Window != 13 {
		t.Fatalf("central defaults wrong: %+v", c)
	}
}

func TestCentralOutperformsCascadeOnQuality(t *testing.T) {
	// Global knowledge should dominate interest-agnostic cascading on F1.
	ds := dataset.Digg(dataset.DiggConfig{Seed: 11, Scale: 0.05})
	colCentral, colCascade := metrics.NewCollector(), metrics.NewCollector()
	RunCentral(ds, CentralConfig{FLike: 5}, colCentral)
	RunCascade(ds, colCascade)
	if colCentral.F1() <= colCascade.F1() {
		t.Fatalf("central F1=%v must beat cascade F1=%v", colCentral.F1(), colCascade.F1())
	}
}
