package baselines

import (
	"math/rand"

	"whatsup/internal/cluster"
	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/rps"
)

// CF is a decentralized collaborative-filtering peer based on the
// nearest-neighbour technique (Section IV-B): it maintains its k closest
// neighbours with the same two-layer gossip substrate as WhatsUp, and when
// it *likes* an item it forwards it to all k of them. It takes no action on
// disliked items and does not use item profiles — that is precisely the
// orientation and amplification machinery of BEEP it lacks.
//
// With metric profile.WUP it is the paper's CF-WUP; with profile.Cosine it
// is CF-Cos.
type CF struct {
	id       news.NodeID
	k        int
	user     *profile.Profile
	rps      *rps.Protocol
	knn      *cluster.Protocol
	opinions core.Opinions
	seen     map[news.ID]struct{}
	window   int64
	behavior core.Behavior // adversarial seam; nil = honest
}

// NewCF builds a decentralized CF peer keeping the k most similar
// neighbours under the given metric.
func NewCF(id news.NodeID, k, rpsViewSize int, window int64, metric profile.Metric, opinions core.Opinions, rng *rand.Rand) *CF {
	if rpsViewSize <= 0 {
		rpsViewSize = core.DefaultRPSViewSize
	}
	if window <= 0 {
		window = core.DefaultProfileWindow
	}
	if metric == nil {
		metric = profile.WUP{}
	}
	return &CF{
		id:       id,
		k:        k,
		user:     profile.New(),
		rps:      rps.New(id, "", rpsViewSize, rng),
		knn:      cluster.New(id, "", k, metric, rng),
		opinions: opinions,
		seen:     make(map[news.ID]struct{}),
		window:   window,
	}
}

// SetBehavior attaches (or, with nil, detaches) an adversarial behavior, so
// attack scenarios run against the same baseline peers as against WhatsUp.
func (c *CF) SetBehavior(b core.Behavior) { c.behavior = b }

// AdvertisedProfile implements sim.ProfileAdvertiser: the profile gossiped
// in this peer's overlay descriptors (poisoned when a behavior says so).
func (c *CF) AdvertisedProfile(now int64) *profile.Profile {
	if c.behavior != nil {
		return c.behavior.AdvertisedProfile(c.user, now)
	}
	return c.user
}

// ID implements sim.Peer.
func (c *CF) ID() news.NodeID { return c.id }

// RPS implements sim.Peer.
func (c *CF) RPS() *rps.Protocol { return c.rps }

// WUP implements sim.Peer: the kNN view is maintained by the standard
// clustering protocol, so the engine gossips it like WhatsUp's.
func (c *CF) WUP() *cluster.Protocol { return c.knn }

// UserProfile implements sim.Peer.
func (c *CF) UserProfile() *profile.Profile { return c.user }

// BeginCycle implements sim.Peer: CF profiles use the same sliding window.
func (c *CF) BeginCycle(now int64) {
	c.user.PurgeOlderThan(now - c.window)
}

// InjectRPSCandidates implements sim.Peer.
func (c *CF) InjectRPSCandidates() {
	c.knn.MergeFrom(c.rps.View(), c.user)
}

// Publish implements sim.Peer: the source likes its item and forwards it to
// all k neighbours.
func (c *CF) Publish(item news.Item, now int64) []core.Send {
	if _, dup := c.seen[item.ID]; dup {
		return nil
	}
	c.seen[item.ID] = struct{}{}
	c.user.Set(item.ID, item.Created, 1)
	return c.spread(item, 1)
}

// Receive implements sim.Peer: forward to the k closest neighbours when
// liked, drop silently when disliked.
func (c *CF) Receive(msg core.ItemMessage, now int64) (core.Delivery, []core.Send) {
	d := core.Delivery{Node: c.id, Item: msg.Item.ID, Hops: msg.Hops}
	if _, dup := c.seen[msg.Item.ID]; dup {
		d.Duplicate = true
		return d, nil
	}
	c.seen[msg.Item.ID] = struct{}{}
	liked := c.opinions.Likes(c.id, msg.Item.ID)
	if c.behavior != nil {
		liked = c.behavior.React(msg.Item, liked)
	}
	d.Liked = liked
	if !liked {
		c.user.Set(msg.Item.ID, msg.Item.Created, 0)
		return d, nil // no dislike mechanism in plain CF
	}
	c.user.Set(msg.Item.ID, msg.Item.Created, 1)
	return d, c.spread(msg.Item, msg.Hops+1)
}

// Crash implements sim.Crasher: both overlay layers — the RPS sample and
// the kNN neighbourhood — are volatile and wiped by an abrupt failure, like
// core.Node.Crash; the profile survives as durable local state. Without
// this hook a scheduled crash left the pre-crash neighbourhood intact. The
// engine re-seeds both layers from an online sample on rejoin.
func (c *CF) Crash() {
	c.rps.Crash()
	c.knn.Crash()
}

// Leave implements sim.Leaver: graceful departures drop the view state too.
func (c *CF) Leave() {
	c.Crash()
}

func (c *CF) spread(item news.Item, hops int) []core.Send {
	view := c.knn.View()
	if view.Len() == 0 {
		return nil
	}
	sends := make([]core.Send, 0, view.Len())
	view.ForEach(func(t overlay.Descriptor) {
		sends = append(sends, core.Send{
			To:  t.Node,
			Msg: core.ItemMessage{Item: item, Hops: hops},
		})
	})
	return sends
}
