package baselines

import (
	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// RunPubSub evaluates C-Pub/Sub, the ideal centralized topic-based
// publish/subscribe system (Section IV-B, Table V): users explicitly
// subscribe to the topics of the items they like (at least one liked item of
// a topic ⇒ subscribed), and every published item is delivered to all
// subscribers of its topic along a spanning tree touching all and only the
// subscribers. Recall is 1 by construction; precision is limited by topic
// granularity; the message count is minimal (one tree edge per subscriber).
func RunPubSub(ds *dataset.Dataset, col *metrics.Collector) {
	registerWorkload(ds, col)
	// Precompute subscriber sets per topic.
	subscribers := make(map[int][]news.NodeID, ds.Topics)
	for t := 0; t < ds.Topics; t++ {
		subscribers[t] = ds.Subscribers(t)
	}
	for i := range ds.Items {
		it := ds.Items[i]
		subs := subscribers[ds.Topic(i)]
		for _, u := range subs {
			// One spanning-tree edge per subscriber beyond the root.
			if u != it.News.Source {
				col.RecordMessage(metrics.MsgBeep, it.News.WireSize())
			}
			col.RecordDelivery(core.Delivery{
				Node:  u,
				Item:  it.News.ID,
				Liked: ds.Likes(u, it.News.ID),
				Hops:  1, // tree depth is not modelled; pub/sub is one logical hop
			})
		}
	}
}
