package baselines

import (
	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
)

// RunCascade evaluates explicit social cascading (Section IV-B, Table V):
// whenever a node likes an item, it forwards it to all of its explicit
// social out-neighbours, as in Digg or Twitter; dislikers take no action.
// The dissemination is a breadth-first traversal of the follower graph
// gated by opinions. Each forwarded copy is one message.
//
// The dataset must carry a social graph (the Digg workload).
func RunCascade(ds *dataset.Dataset, col *metrics.Collector) {
	registerWorkload(ds, col)
	for i := range ds.Items {
		it := ds.Items[i]
		src := it.News.Source
		if src == news.NoNode {
			continue
		}
		type wave struct {
			node news.NodeID
			hops int
		}
		seen := map[news.NodeID]bool{src: true}
		// The source likes its own item and cascades it.
		col.RecordDelivery(core.Delivery{Node: src, Item: it.News.ID, Liked: true, Hops: 0})
		frontier := []wave{}
		forwardFrom := func(u news.NodeID, hops int) {
			neighbours := ds.Social[u]
			if len(neighbours) == 0 {
				return
			}
			col.RecordForward(true, hops)
			for _, v := range neighbours {
				col.RecordMessage(metrics.MsgBeep, it.News.WireSize())
				frontier = append(frontier, wave{node: v, hops: hops + 1})
			}
		}
		forwardFrom(src, 0)
		for len(frontier) > 0 {
			w := frontier[0]
			frontier = frontier[1:]
			if seen[w.node] {
				continue
			}
			seen[w.node] = true
			liked := ds.Likes(w.node, it.News.ID)
			col.RecordDelivery(core.Delivery{
				Node: w.node, Item: it.News.ID, Liked: liked, Hops: w.hops,
			})
			if liked {
				forwardFrom(w.node, w.hops)
			}
		}
	}
}

// registerWorkload registers every item's audience size and every node's
// interest count with the collector. Warm-up items are excluded from the
// quality metrics exactly as in the gossip runs, keeping comparisons fair.
func registerWorkload(ds *dataset.Dataset, col *metrics.Collector) {
	for i := range ds.Items {
		if ds.IsWarmup(i) {
			col.RegisterWarmupItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		} else {
			col.RegisterItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		}
	}
	for u := 0; u < ds.Users; u++ {
		col.RegisterNode(news.NodeID(u), ds.UserInterestCount(news.NodeID(u)))
	}
}
