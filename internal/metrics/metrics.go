// Package metrics implements the evaluation metrics of the paper
// (Section IV-C): the user metrics precision, recall and F1-Score, and the
// system metrics (message counts, bandwidth, hop distributions), plus the
// popularity and sociability analyses of Figures 10 and 11.
package metrics

import (
	"fmt"
	"sort"

	"whatsup/internal/core"
	"whatsup/internal/news"
)

// MessageKind classifies protocol traffic for the system metrics.
type MessageKind int

// Message kinds: BEEP item dissemination and the request/reply legs of the
// two gossip layers.
const (
	MsgBeep MessageKind = iota
	MsgRPSRequest
	MsgRPSReply
	MsgWUPRequest
	MsgWUPReply
	// Churn-protocol traffic (v2): departure notices sent by graceful
	// leavers and the request/reply legs of the anti-entropy view refill.
	MsgDeparture
	MsgRefillRequest
	MsgRefillReply
	numMessageKinds
)

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	switch k {
	case MsgBeep:
		return "beep"
	case MsgRPSRequest:
		return "rps-request"
	case MsgRPSReply:
		return "rps-reply"
	case MsgWUPRequest:
		return "wup-request"
	case MsgWUPReply:
		return "wup-reply"
	case MsgDeparture:
		return "departure"
	case MsgRefillRequest:
		return "refill-request"
	case MsgRefillReply:
		return "refill-reply"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Cohort labels a node sub-population for churn-aware analysis: under a
// dynamic membership schedule, recall and precision are reported separately
// for the peers that stayed up, the late joiners, and the crash-and-return
// rejoiners (plus the departed, whose truncated participation would
// otherwise drag the population averages).
type Cohort uint8

// The churn cohorts. Ordered by precedence: when merging collectors the
// higher label wins, so a joiner that later crashes and rejoins ends up a
// rejoiner in every merge order.
const (
	CohortStable Cohort = iota
	CohortJoiner
	CohortRejoiner
	CohortDeparted
	// CohortVictim labels honest nodes singled out by an adversarial
	// scenario (e.g. the targets of a poisoning attack), so their outcomes
	// are reported separately from the untargeted honest population.
	CohortVictim
	// CohortAttacker labels hostile nodes (spammers, poisoners, sybils).
	// Highest precedence: a node that is both churned and hostile reports
	// as an attacker in every merge order.
	CohortAttacker
	NumCohorts
)

// String implements fmt.Stringer.
func (c Cohort) String() string {
	switch c {
	case CohortStable:
		return "stable"
	case CohortJoiner:
		return "joiner"
	case CohortRejoiner:
		return "rejoiner"
	case CohortDeparted:
		return "departed"
	case CohortVictim:
		return "victim"
	case CohortAttacker:
		return "attacker"
	default:
		return fmt.Sprintf("cohort(%d)", int(c))
	}
}

// ItemStats accumulates per-item dissemination outcomes.
type ItemStats struct {
	Interested        int  // users who like the item per the trace
	Reached           int  // users who received the item (including the source)
	ReachedInterested int  // reached ∩ interested
	Excluded          bool // warm-up item: disseminated but not measured
}

// NodeStats accumulates per-node outcomes for the sociability analysis.
type NodeStats struct {
	Interested        int // items this node likes per the trace
	Received          int // items delivered to this node
	ReceivedLiked     int // delivered items the node liked
	DislikeDeliveries int // deliveries that arrived via a dislike-forward
	// EligibleInterested is the join-time-aware recall denominator: the
	// node's liked items that were published after it joined. For nodes
	// present from the start it equals Interested (RegisterNode's default);
	// churn drivers lower it for late joiners via SetEligibleInterested, so
	// a flash-crowd member is not penalized for items that disseminated
	// before it existed. The trace-wide Interested stays alongside as the
	// conservative figure.
	EligibleInterested int
}

// F1 returns the node-level F1-Score: precision over received items and
// recall over the node's interests (Figure 11).
func (ns *NodeStats) F1() float64 {
	if ns.Received == 0 || ns.Interested == 0 {
		return 0
	}
	p := float64(ns.ReceivedLiked) / float64(ns.Received)
	r := float64(ns.ReceivedLiked) / float64(ns.Interested)
	return F1Of(p, r)
}

// Collector accumulates deliveries, forwards and message traffic for one
// experiment run. It is not safe for concurrent use; concurrent engines
// aggregate into per-worker collectors and Merge them.
type Collector struct {
	items   map[news.ID]*ItemStats
	nodes   map[news.NodeID]*NodeStats
	cohorts map[news.NodeID]Cohort // unlabelled nodes are CohortStable

	msgCount [numMessageKinds]int64
	msgBytes [numMessageKinds]int64

	// Hop histograms for Figure 6, indexed by hop distance.
	ForwardByLike      map[int]int
	ForwardByDislike   map[int]int
	InfectionByLike    map[int]int
	InfectionByDislike map[int]int

	// DislikesAtLikedArrival[d] counts deliveries liked by the receiver that
	// had been forwarded d times by dislikers (Table IV).
	DislikesAtLikedArrival map[int]int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		items:                  make(map[news.ID]*ItemStats),
		nodes:                  make(map[news.NodeID]*NodeStats),
		cohorts:                make(map[news.NodeID]Cohort),
		ForwardByLike:          make(map[int]int),
		ForwardByDislike:       make(map[int]int),
		InfectionByLike:        make(map[int]int),
		InfectionByDislike:     make(map[int]int),
		DislikesAtLikedArrival: make(map[int]int),
	}
}

// RegisterItem declares an item and the number of users interested in it
// (the recall denominator).
func (c *Collector) RegisterItem(id news.ID, interested int) {
	c.items[id] = &ItemStats{Interested: interested}
}

// RegisterWarmupItem declares an item published during the initial
// transient: its dissemination feeds profiles and traffic counters but it is
// excluded from the quality metrics, which measure the steady state.
func (c *Collector) RegisterWarmupItem(id news.ID, interested int) {
	c.items[id] = &ItemStats{Interested: interested, Excluded: true}
}

// RegisterNode declares a node and the number of items it likes in the
// trace (the per-node recall denominator of the sociability analysis). The
// join-aware denominator defaults to the same count; late joiners get a
// smaller one via SetEligibleInterested — in either call order: an eligible
// override already in place survives a later registration.
func (c *Collector) RegisterNode(id news.NodeID, interested int) {
	if ns := c.nodes[id]; ns != nil {
		ns.Interested = interested
		if ns.EligibleInterested == 0 {
			ns.EligibleInterested = interested
		}
		return
	}
	c.nodes[id] = &NodeStats{Interested: interested, EligibleInterested: interested}
}

// SetEligibleInterested overrides a node's join-time-aware recall
// denominator: the number of its liked items published after it joined.
// Registration-side, like RegisterNode — churn drivers call it once per
// scheduled joiner; engine shards never do.
func (c *Collector) SetEligibleInterested(id news.NodeID, eligible int) {
	ns := c.nodes[id]
	if ns == nil {
		ns = &NodeStats{}
		c.nodes[id] = ns
	}
	ns.EligibleInterested = eligible
}

// SetCohort labels a node's churn cohort (registration-side, like
// RegisterNode: experiment drivers call it once from the schedule; engine
// shards never do).
func (c *Collector) SetCohort(id news.NodeID, co Cohort) {
	if co == CohortStable {
		delete(c.cohorts, id)
		return
	}
	c.cohorts[id] = co
}

// CohortOf returns a node's cohort label (CohortStable when unlabelled).
func (c *Collector) CohortOf(id news.NodeID) Cohort { return c.cohorts[id] }

// CohortSummary aggregates the per-node outcomes of one cohort. Precision
// and recall here are micro-averages over the cohort's nodes — the
// per-cohort split of the sociability analysis's node-level quantities.
type CohortSummary struct {
	Cohort     Cohort
	Nodes      int
	Interested int // sum of per-node interest counts (recall denominator)
	// EligibleInterested sums the join-time-aware denominators: liked items
	// published after each node joined. Equals Interested for cohorts
	// present from the start.
	EligibleInterested int
	Received           int // deliveries to the cohort (precision denominator)
	ReceivedLiked      int // deliveries the receiving node liked
}

// Precision is the fraction of the cohort's deliveries that were liked.
func (s CohortSummary) Precision() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.ReceivedLiked) / float64(s.Received)
}

// Recall is the fraction of the cohort's interests that were satisfied.
func (s CohortSummary) Recall() float64 {
	if s.Interested == 0 {
		return 0
	}
	return float64(s.ReceivedLiked) / float64(s.Interested)
}

// EligibleRecall is the join-time-aware recall: the fraction of the
// cohort's *eligible* interests — liked items published after each node
// joined — that were satisfied. For a cohort of late joiners this is the
// fair figure; Recall, whose denominator spans the whole trace, stays
// alongside as the conservative one.
func (s CohortSummary) EligibleRecall() float64 {
	if s.EligibleInterested == 0 {
		return 0
	}
	return float64(s.ReceivedLiked) / float64(s.EligibleInterested)
}

// F1 is the harmonic mean of the cohort's precision and recall.
func (s CohortSummary) F1() float64 { return F1Of(s.Precision(), s.Recall()) }

// EligibleF1 pairs precision with the join-time-aware recall.
func (s CohortSummary) EligibleF1() float64 { return F1Of(s.Precision(), s.EligibleRecall()) }

// Dissemination is the average number of deliveries per cohort node.
func (s CohortSummary) Dissemination() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.Received) / float64(s.Nodes)
}

// CohortSummary folds the per-node statistics of every node labelled with
// the given cohort.
func (c *Collector) CohortSummary(co Cohort) CohortSummary {
	s := CohortSummary{Cohort: co}
	for _, id := range c.NodeIDs() {
		if c.CohortOf(id) != co {
			continue
		}
		ns := c.nodes[id]
		s.Nodes++
		s.Interested += ns.Interested
		s.EligibleInterested += ns.EligibleInterested
		s.Received += ns.Received
		s.ReceivedLiked += ns.ReceivedLiked
	}
	return s
}

// RecordDelivery folds a non-duplicate delivery into the per-item and
// per-node statistics and the Figure 6 / Table IV histograms.
func (c *Collector) RecordDelivery(d core.Delivery) {
	if d.Duplicate {
		return
	}
	st := c.items[d.Item]
	if st == nil {
		st = &ItemStats{}
		c.items[d.Item] = st
	}
	st.Reached++
	ns := c.nodes[d.Node]
	if ns == nil {
		ns = &NodeStats{}
		c.nodes[d.Node] = ns
	}
	ns.Received++
	if d.ViaDislike {
		ns.DislikeDeliveries++
		c.InfectionByDislike[d.Hops]++
	} else {
		c.InfectionByLike[d.Hops]++
	}
	if d.Liked {
		st.ReachedInterested++
		ns.ReceivedLiked++
		c.DislikesAtLikedArrival[d.Dislikes]++
	}
}

// RecordForward notes a forwarding action by a node at the given hop
// distance from the source (Figure 6). liked tells whether the forwarding
// node liked the item.
func (c *Collector) RecordForward(liked bool, hops int) {
	if liked {
		c.ForwardByLike[hops]++
	} else {
		c.ForwardByDislike[hops]++
	}
}

// RecordMessage accounts one protocol message of the given kind and size.
func (c *Collector) RecordMessage(kind MessageKind, bytes int) {
	c.msgCount[kind]++
	c.msgBytes[kind] += int64(bytes)
}

// Reset returns the collector to its empty state, ready for reuse as a
// per-worker shard.
func (c *Collector) Reset() {
	*c = *NewCollector()
}

// Messages returns the number of messages of one kind.
func (c *Collector) Messages(kind MessageKind) int64 { return c.msgCount[kind] }

// Bytes returns the traffic volume of one kind in bytes.
func (c *Collector) Bytes(kind MessageKind) int64 { return c.msgBytes[kind] }

// TotalMessages sums message counts across all kinds.
func (c *Collector) TotalMessages() int64 {
	var total int64
	for _, n := range c.msgCount {
		total += n
	}
	return total
}

// TotalBytes sums traffic volume across all kinds. In live runs each
// message is accounted at its exact encoded frame length (not an estimate),
// recorded sender-side: frames later dropped by loss or congestion still
// count, as in the paper's sender bandwidth figures.
func (c *Collector) TotalBytes() int64 {
	var total int64
	for _, n := range c.msgBytes {
		total += n
	}
	return total
}

// GossipMessages sums the RPS and WUP exchange legs plus the churn-protocol
// maintenance traffic (departure notices and refill exchanges) — everything
// that is overlay upkeep rather than BEEP dissemination.
func (c *Collector) GossipMessages() int64 {
	return c.msgCount[MsgRPSRequest] + c.msgCount[MsgRPSReply] +
		c.msgCount[MsgWUPRequest] + c.msgCount[MsgWUPReply] +
		c.msgCount[MsgDeparture] + c.msgCount[MsgRefillRequest] + c.msgCount[MsgRefillReply]
}

// GossipBytes sums the traffic volume of the same kinds as GossipMessages.
func (c *Collector) GossipBytes() int64 {
	return c.msgBytes[MsgRPSRequest] + c.msgBytes[MsgRPSReply] +
		c.msgBytes[MsgWUPRequest] + c.msgBytes[MsgWUPReply] +
		c.msgBytes[MsgDeparture] + c.msgBytes[MsgRefillRequest] + c.msgBytes[MsgRefillReply]
}

// ChurnSample is one per-cycle snapshot of churn-protocol health: how full
// the fleet's views are, how many departed ghosts they still hold and who is
// online, broken down by cohort. Sim and live churn drivers both report
// timelines of these samples instead of end-of-run aggregates.
type ChurnSample struct {
	// Cycle is the cycle the sample was taken at (start of cycle, after the
	// membership controller applied that cycle's churn events).
	Cycle int64
	// Online and Members count the online population and the total
	// registered membership (including offline and departed slots).
	Online, Members int
	// GhostFraction is the fraction of view entries across the online
	// population that reference nodes no longer online.
	GhostFraction float64
	// RPSFill and WUPFill are the mean view occupancy of the online
	// population, as a fraction of view capacity.
	RPSFill, WUPFill float64
	// OnlineByCohort counts the online population per churn cohort.
	OnlineByCohort [NumCohorts]int
	// PartitionsActive counts the faultnet partitions severing links at this
	// cycle (0 when no policy is installed), so a timeline shows the view
	// metrics dip while a partition holds and recover after it heals.
	PartitionsActive int
}

// sortedItems returns item ids in ascending order so floating-point
// aggregation is deterministic across runs (map iteration order is not).
func (c *Collector) sortedItems() []news.ID {
	ids := make([]news.ID, 0, len(c.items))
	//whatsup:commutative keys collected then sorted below
	for id := range c.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Precision is the macro-averaged precision over items that reached at
// least one user: the fraction of reached users that were interested.
func (c *Collector) Precision() float64 {
	var sum float64
	n := 0
	for _, id := range c.sortedItems() {
		st := c.items[id]
		if st.Reached == 0 || st.Excluded {
			continue
		}
		sum += float64(st.ReachedInterested) / float64(st.Reached)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Recall is the macro-averaged recall over items with at least one
// interested user: the fraction of interested users that were reached.
func (c *Collector) Recall() float64 {
	var sum float64
	n := 0
	for _, id := range c.sortedItems() {
		st := c.items[id]
		if st.Interested == 0 || st.Excluded {
			continue
		}
		sum += float64(st.ReachedInterested) / float64(st.Interested)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// F1 is the harmonic mean of Precision and Recall (van Rijsbergen).
func (c *Collector) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// F1Of combines an externally obtained precision/recall pair.
func F1Of(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ItemCount returns the number of registered or observed items.
func (c *Collector) ItemCount() int { return len(c.items) }

// Item returns the statistics of one item (nil if unknown).
func (c *Collector) Item(id news.ID) *ItemStats { return c.items[id] }

// Node returns the statistics of one node (nil if unknown).
func (c *Collector) Node(id news.NodeID) *NodeStats { return c.nodes[id] }

// NodeIDs returns the registered node ids, sorted.
func (c *Collector) NodeIDs() []news.NodeID {
	out := make([]news.NodeID, 0, len(c.nodes))
	//whatsup:commutative keys collected then sorted below
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DislikeFractions returns the Table IV row: for deliveries that the
// receiver liked, the fraction that had been forwarded 0,1,…,maxD times by
// dislikers.
func (c *Collector) DislikeFractions(maxD int) []float64 {
	total := 0
	for _, n := range c.DislikesAtLikedArrival {
		total += n
	}
	out := make([]float64, maxD+1)
	if total == 0 {
		return out
	}
	// Accumulate in ascending dislike-count order: several d values clamp
	// into the out[maxD] bucket, and float addition is order-sensitive in
	// the low bits, so raw map order would leak into the Table IV row.
	ds := make([]int, 0, len(c.DislikesAtLikedArrival))
	//whatsup:commutative keys collected then sorted below
	for d := range c.DislikesAtLikedArrival {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		i := d
		if i > maxD {
			i = maxD
		}
		out[i] += float64(c.DislikesAtLikedArrival[d]) / float64(total)
	}
	return out
}
