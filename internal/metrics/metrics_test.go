package metrics

import (
	"math"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func deliver(c *Collector, node news.NodeID, item news.ID, liked bool, hops, dislikes int, via bool) {
	c.RecordDelivery(core.Delivery{
		Node: node, Item: item, Liked: liked, Hops: hops, Dislikes: dislikes, ViaDislike: via,
	})
}

func TestPrecisionRecallF1(t *testing.T) {
	c := NewCollector()
	c.RegisterItem(1, 4) // 4 interested users
	deliver(c, 0, 1, true, 1, 0, false)
	deliver(c, 1, 1, true, 2, 0, false)
	deliver(c, 2, 1, false, 2, 0, false)
	// precision = 2/3, recall = 2/4.
	if p := c.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision=%v want 2/3", p)
	}
	if r := c.Recall(); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall=%v want 0.5", r)
	}
	want := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if f := c.F1(); math.Abs(f-want) > 1e-12 {
		t.Fatalf("f1=%v want %v", f, want)
	}
}

func TestMacroAveragingAcrossItems(t *testing.T) {
	c := NewCollector()
	c.RegisterItem(1, 1)
	c.RegisterItem(2, 2)
	deliver(c, 0, 1, true, 1, 0, false) // item 1: P=1, R=1
	deliver(c, 0, 2, false, 1, 0, false)
	deliver(c, 1, 2, true, 1, 0, false) // item 2: P=1/2, R=1/2
	if p := c.Precision(); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("macro precision=%v want 0.75", p)
	}
	if r := c.Recall(); math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("macro recall=%v want 0.75", r)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	c := NewCollector()
	c.RegisterItem(1, 1)
	c.RecordDelivery(core.Delivery{Node: 0, Item: 1, Liked: true, Duplicate: true})
	if c.Recall() != 0 {
		t.Fatal("duplicate deliveries must not count")
	}
}

func TestUnregisteredItemStillTracked(t *testing.T) {
	c := NewCollector()
	deliver(c, 0, 9, true, 1, 0, false)
	if st := c.Item(9); st == nil || st.Reached != 1 {
		t.Fatalf("unregistered item must be tracked on the fly: %+v", st)
	}
	// But with Interested unset it contributes nothing to recall.
	if r := c.Recall(); r != 0 {
		t.Fatalf("recall=%v want 0", r)
	}
}

func TestMessageAccounting(t *testing.T) {
	c := NewCollector()
	c.RecordMessage(MsgBeep, 100)
	c.RecordMessage(MsgBeep, 50)
	c.RecordMessage(MsgRPSRequest, 10)
	c.RecordMessage(MsgWUPReply, 20)
	if c.Messages(MsgBeep) != 2 || c.Bytes(MsgBeep) != 150 {
		t.Fatal("beep accounting wrong")
	}
	if c.TotalMessages() != 4 {
		t.Fatalf("total=%d want 4", c.TotalMessages())
	}
	if c.GossipMessages() != 2 || c.GossipBytes() != 30 {
		t.Fatal("gossip accounting wrong")
	}
	if c.TotalBytes() != 180 {
		t.Fatalf("total bytes=%d want 180", c.TotalBytes())
	}
	if c.TotalBytes() != c.GossipBytes()+c.Bytes(MsgBeep) {
		t.Fatal("byte decomposition must sum")
	}
}

func TestDislikeFractions(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 6; i++ {
		deliver(c, news.NodeID(i), 1, true, 1, 0, false)
	}
	for i := 6; i < 9; i++ {
		deliver(c, news.NodeID(i), 1, true, 1, 1, true)
	}
	deliver(c, 9, 1, true, 1, 7, true) // beyond maxD: folded into last bucket
	fr := c.DislikeFractions(4)
	if math.Abs(fr[0]-0.6) > 1e-12 || math.Abs(fr[1]-0.3) > 1e-12 || math.Abs(fr[4]-0.1) > 1e-12 {
		t.Fatalf("fractions=%v", fr)
	}
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions must sum to 1, got %v", sum)
	}
}

func TestNodeStatsAndF1(t *testing.T) {
	c := NewCollector()
	c.RegisterNode(5, 4)
	deliver(c, 5, 1, true, 1, 0, false)
	deliver(c, 5, 2, false, 1, 0, true)
	ns := c.Node(5)
	if ns.Received != 2 || ns.ReceivedLiked != 1 || ns.DislikeDeliveries != 1 {
		t.Fatalf("node stats wrong: %+v", ns)
	}
	// precision 1/2, recall 1/4 → F1 = 1/3.
	if f := ns.F1(); math.Abs(f-1.0/3) > 1e-12 {
		t.Fatalf("node F1=%v want 1/3", f)
	}
	if (&NodeStats{}).F1() != 0 {
		t.Fatal("empty node stats must have F1 0")
	}
}

func TestRecallByPopularity(t *testing.T) {
	c := NewCollector()
	c.RegisterItem(1, 2)                // popularity 0.2 of 10
	c.RegisterItem(2, 8)                // popularity 0.8
	deliver(c, 0, 1, true, 1, 0, false) // recall 0.5
	for i := 0; i < 8; i++ {
		deliver(c, news.NodeID(i), 2, true, 1, 0, false) // recall 1
	}
	bks := c.RecallByPopularity(10, 5)
	if len(bks) != 5 {
		t.Fatalf("buckets=%d want 5", len(bks))
	}
	// popularity 0.2 → bucket index int(0.2·5)=1; popularity 0.8 → bucket 4.
	if bks[1].Count != 1 || math.Abs(bks[1].Y-0.5) > 1e-12 {
		t.Fatalf("low-popularity bucket wrong: %+v", bks[1])
	}
	if bks[0].Count != 0 || bks[2].Count != 0 {
		t.Fatalf("empty buckets must report zero count: %+v %+v", bks[0], bks[2])
	}
	if bks[4].Count != 1 || bks[4].Y != 1 {
		t.Fatalf("high-popularity bucket wrong: %+v", bks[4])
	}
}

func TestSociability(t *testing.T) {
	mk := func(ids ...news.ID) *profile.Profile {
		p := profile.New()
		for _, id := range ids {
			p.Set(id, 0, 1)
		}
		return p
	}
	profiles := []*profile.Profile{
		mk(1, 2, 3), mk(1, 2, 3), mk(1, 2), mk(42),
	}
	soc := Sociability(profiles, profile.WUP{}, 2)
	if len(soc) != 4 {
		t.Fatalf("len=%d", len(soc))
	}
	if soc[0] <= soc[3] {
		t.Fatalf("sociable node must beat loner: %v vs %v", soc[0], soc[3])
	}
	if soc[3] != 0 {
		t.Fatalf("disjoint node sociability=%v want 0", soc[3])
	}
	if got := Sociability(nil, profile.WUP{}, 2); len(got) != 0 {
		t.Fatal("empty input must yield empty output")
	}
}

func TestF1BySociability(t *testing.T) {
	c := NewCollector()
	c.RegisterNode(0, 2)
	c.RegisterNode(1, 2)
	deliver(c, 0, 1, true, 1, 0, false)
	deliver(c, 0, 2, true, 1, 0, false) // node 0: P=1,R=1 → F1=1
	deliver(c, 1, 3, false, 1, 0, false)
	soc := map[news.NodeID]float64{0: 0.9, 1: 0.1}
	bks := c.F1BySociability(soc, 2)
	if bks[1].Count != 1 || bks[1].Y != 1 {
		t.Fatalf("high-sociability bucket wrong: %+v", bks[1])
	}
	if bks[0].Count != 1 || bks[0].Y != 0 {
		t.Fatalf("low-sociability bucket wrong: %+v", bks[0])
	}
}

func TestMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.RegisterItem(1, 2)
	deliver(a, 0, 1, true, 1, 0, false)
	deliver(b, 1, 1, true, 2, 1, true)
	b.RecordMessage(MsgBeep, 10)
	b.RecordForward(false, 2)
	a.Merge(b)
	st := a.Item(1)
	if st.Reached != 2 || st.ReachedInterested != 2 || st.Interested != 2 {
		t.Fatalf("merged item stats wrong: %+v", st)
	}
	if a.Messages(MsgBeep) != 1 {
		t.Fatal("merged message counts wrong")
	}
	if a.ForwardByDislike[2] != 1 {
		t.Fatal("merged histograms wrong")
	}
	if a.DislikesAtLikedArrival[1] != 1 {
		t.Fatal("merged dislike histogram wrong")
	}
}

func TestKbpsPerNode(t *testing.T) {
	// 1000 bytes over 10 cycles of 30 s across 2 nodes:
	// 8000 bits / 300 s / 2 = 13.33 bps = 0.0133 Kbps.
	got := KbpsPerNode(1000, 10, 30, 2)
	if math.Abs(got-8.0/300/2) > 1e-9 {
		t.Fatalf("KbpsPerNode=%v", got)
	}
	if KbpsPerNode(1000, 0, 30, 2) != 0 {
		t.Fatal("zero cycles must yield 0")
	}
}

func TestMessageKindString(t *testing.T) {
	names := map[MessageKind]string{
		MsgBeep: "beep", MsgRPSRequest: "rps-request", MsgRPSReply: "rps-reply",
		MsgWUPRequest: "wup-request", MsgWUPReply: "wup-reply",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("String(%d)=%q want %q", k, k.String(), want)
		}
	}
	if MessageKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestF1Of(t *testing.T) {
	if F1Of(0, 0) != 0 {
		t.Fatal("F1Of(0,0)")
	}
	if math.Abs(F1Of(1, 1)-1) > 1e-12 {
		t.Fatal("F1Of(1,1)")
	}
}

func TestCohortSummaryAndMerge(t *testing.T) {
	c := NewCollector()
	for id := news.NodeID(0); id < 4; id++ {
		c.RegisterNode(id, 10)
	}
	c.SetCohort(2, CohortJoiner)
	c.SetCohort(3, CohortRejoiner)
	c.RegisterItem(1, 4)
	// Node 0 (stable): 2 liked of 3 received; node 2 (joiner): 1 liked of 2.
	deliver := func(node news.NodeID, liked bool) {
		c.RecordDelivery(core.Delivery{Node: node, Item: 1, Liked: liked})
	}
	// Distinct items per delivery are irrelevant to node stats; reuse item 1.
	deliver(0, true)
	deliver(0, true)
	deliver(0, false)
	deliver(2, true)
	deliver(2, false)

	st := c.CohortSummary(CohortStable)
	if st.Nodes != 2 || st.Received != 3 || st.ReceivedLiked != 2 || st.Interested != 20 {
		t.Fatalf("stable summary %+v", st)
	}
	if got := st.Precision(); got != 2.0/3.0 {
		t.Fatalf("stable precision %v", got)
	}
	jo := c.CohortSummary(CohortJoiner)
	if jo.Nodes != 1 || jo.Received != 2 || jo.ReceivedLiked != 1 {
		t.Fatalf("joiner summary %+v", jo)
	}
	if got := jo.Recall(); got != 0.1 {
		t.Fatalf("joiner recall %v", got)
	}
	if d := c.CohortSummary(CohortRejoiner).Dissemination(); d != 0 {
		t.Fatalf("rejoiner dissemination %v", d)
	}

	// Merge: cohort labels union commutatively with highest-label-wins.
	a, b := NewCollector(), NewCollector()
	a.SetCohort(7, CohortJoiner)
	b.SetCohort(7, CohortRejoiner)
	b.SetCohort(8, CohortDeparted)
	a.Merge(b)
	if a.CohortOf(7) != CohortRejoiner || a.CohortOf(8) != CohortDeparted {
		t.Fatalf("merge labels: %v, %v", a.CohortOf(7), a.CohortOf(8))
	}
	b2, a2 := NewCollector(), NewCollector()
	b2.SetCohort(7, CohortRejoiner)
	a2.SetCohort(7, CohortJoiner)
	b2.Merge(a2)
	if b2.CohortOf(7) != a.CohortOf(7) {
		t.Fatal("cohort merge is not commutative")
	}
	if a.CohortOf(99) != CohortStable {
		t.Fatal("unlabelled nodes default to the stable cohort")
	}
}

// TestEligibleRecall pins the join-time-aware recall denominator: a late
// joiner's eligible interest count shrinks its recall denominator while the
// conservative whole-trace figure stays.
func TestEligibleRecall(t *testing.T) {
	c := NewCollector()
	c.RegisterNode(1, 10) // joined late: only 4 of its 10 liked items post-join
	c.SetEligibleInterested(1, 4)
	c.SetCohort(1, CohortJoiner)
	c.RegisterNode(2, 10) // stable: eligible defaults to the full count
	for i := 0; i < 2; i++ {
		c.RecordDelivery(core.Delivery{Node: 1, Item: news.ID(i), Liked: true})
	}
	jo := c.CohortSummary(CohortJoiner)
	if jo.Interested != 10 || jo.EligibleInterested != 4 {
		t.Fatalf("joiner denominators %+v", jo)
	}
	if got := jo.Recall(); got != 0.2 {
		t.Fatalf("conservative recall %v, want 0.2", got)
	}
	if got := jo.EligibleRecall(); got != 0.5 {
		t.Fatalf("join-aware recall %v, want 0.5", got)
	}
	if jo.EligibleF1() <= jo.F1() {
		t.Fatal("join-aware F1 must exceed the conservative one here")
	}
	st := c.CohortSummary(CohortStable)
	if st.EligibleInterested != st.Interested {
		t.Fatalf("stable eligible denominator must default to the full count: %+v", st)
	}

	// The denominator survives a merge (registration-side, like Interested).
	m := NewCollector()
	m.Merge(c)
	if got := m.CohortSummary(CohortJoiner).EligibleInterested; got != 4 {
		t.Fatalf("merge lost the eligible denominator: %d", got)
	}
	// SetEligibleInterested before registration must not be lost — a later
	// RegisterNode updates Interested but keeps the eligible override.
	pre := NewCollector()
	pre.SetEligibleInterested(5, 3)
	if pre.Node(5).EligibleInterested != 3 {
		t.Fatal("pre-registration eligible count dropped")
	}
	pre.RegisterNode(5, 10)
	if ns := pre.Node(5); ns.Interested != 10 || ns.EligibleInterested != 3 {
		t.Fatalf("RegisterNode wiped the eligible override: %+v", ns)
	}
}
