package metrics

// AdversaryStats aggregates the outcomes an adversarial scenario is judged
// by, from the honest population's point of view. The experiment driver
// fills it from delivery callbacks and view snapshots (the per-worker
// collector shards never learn who is hostile); Merge folds shards or
// repeated runs together.
type AdversaryStats struct {
	// SpamToHonest counts deliveries of attacker-published items to honest
	// nodes — the attack's reach.
	SpamToHonest int
	// HamToHonest counts deliveries of legitimate items to honest nodes over
	// the same window — the baseline the spam reach is judged against.
	HamToHonest int
	// AttackerSlots counts WUP view entries at honest nodes that point at
	// attacker nodes — the poisoning attack's grip on the overlay.
	AttackerSlots int
	// HonestSlots counts the remaining WUP view entries at honest nodes.
	HonestSlots int
}

// SpamPrecision is the fraction of items reaching honest nodes that are
// legitimate: 1 means the spam was fully contained, lower values mean the
// attack polluted the honest population's feeds. NaN-free: an empty window
// reports 1.
func (a AdversaryStats) SpamPrecision() float64 {
	total := a.SpamToHonest + a.HamToHonest
	if total == 0 {
		return 1
	}
	return float64(a.HamToHonest) / float64(total)
}

// PoisoningDrift is the fraction of honest nodes' WUP view slots occupied by
// attackers — how far the clustering overlay has drifted towards the hostile
// cohort. 0 with no slots observed.
func (a AdversaryStats) PoisoningDrift() float64 {
	total := a.AttackerSlots + a.HonestSlots
	if total == 0 {
		return 0
	}
	return float64(a.AttackerSlots) / float64(total)
}

// Merge folds another shard or run into a.
func (a *AdversaryStats) Merge(b AdversaryStats) {
	a.SpamToHonest += b.SpamToHonest
	a.HamToHonest += b.HamToHonest
	a.AttackerSlots += b.AttackerSlots
	a.HonestSlots += b.HonestSlots
}
