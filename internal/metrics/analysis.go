package metrics

import (
	"sort"

	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// Bucket is one point of a bucketed curve: the bucket's midpoint on the x
// axis, the average y value of its members, and the fraction of the
// population that falls into it.
type Bucket struct {
	X        float64
	Y        float64
	Fraction float64
	Count    int
}

// bucketize averages (x,y) samples into nb equal-width buckets over [0,1].
func bucketize(xs, ys []float64, nb int) []Bucket {
	sums := make([]float64, nb)
	counts := make([]int, nb)
	for i, x := range xs {
		b := int(x * float64(nb))
		if b >= nb {
			b = nb - 1
		}
		if b < 0 {
			b = 0
		}
		sums[b] += ys[i]
		counts[b]++
	}
	total := len(xs)
	out := make([]Bucket, 0, nb)
	for b := 0; b < nb; b++ {
		bk := Bucket{X: (float64(b) + 0.5) / float64(nb), Count: counts[b]}
		if counts[b] > 0 {
			bk.Y = sums[b] / float64(counts[b])
		}
		if total > 0 {
			bk.Fraction = float64(counts[b]) / float64(total)
		}
		out = append(out, bk)
	}
	return out
}

// RecallByPopularity buckets items by popularity (fraction of the population
// interested in them) and reports average recall per bucket together with
// the popularity distribution — the two curves of Figure 10.
func (c *Collector) RecallByPopularity(population int, buckets int) []Bucket {
	var xs, ys []float64
	for _, id := range c.sortedItems() {
		st := c.items[id]
		if st.Interested == 0 || population == 0 || st.Excluded {
			continue
		}
		xs = append(xs, float64(st.Interested)/float64(population))
		ys = append(ys, float64(st.ReachedInterested)/float64(st.Interested))
	}
	return bucketize(xs, ys, buckets)
}

// Sociability computes, for every node, its average similarity to the k
// nodes most similar to it, from the full-trace profiles (Section V-H
// defines sociability with k = 15).
func Sociability(profiles []*profile.Profile, metric profile.Metric, k int) []float64 {
	n := len(profiles)
	out := make([]float64, n)
	if n == 0 || k <= 0 {
		return out
	}
	sims := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		sims = sims[:0]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sims = append(sims, metric.Similarity(profiles[i], profiles[j]))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(sims)))
		top := k
		if top > len(sims) {
			top = len(sims)
		}
		var sum float64
		for _, s := range sims[:top] {
			sum += s
		}
		if top > 0 {
			out[i] = sum / float64(top)
		}
	}
	return out
}

// F1BySociability buckets nodes by the given sociability scores and reports
// average node-level F1 per bucket plus the sociability distribution — the
// two curves of Figure 11.
func (c *Collector) F1BySociability(soc map[news.NodeID]float64, buckets int) []Bucket {
	ids := make([]news.NodeID, 0, len(soc))
	//whatsup:commutative keys collected then sorted below
	for id := range soc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var xs, ys []float64
	for _, id := range ids {
		ns := c.nodes[id]
		if ns == nil {
			continue
		}
		xs = append(xs, soc[id])
		ys = append(ys, ns.F1())
	}
	return bucketize(xs, ys, buckets)
}

// Merge folds another collector into c. Two users: sweep workers aggregating
// repeated runs of the same configuration, and the parallel simulation engine
// folding its per-worker shards into the main collector at each cycle
// barrier. Every merged quantity is an integer sum (registration counters add
// too; engine shards never register, so they contribute zero there), which
// makes merging commutative — the result is independent of the order shards
// are merged in, the property the engine's worker-count-independence relies
// on.
func (c *Collector) Merge(other *Collector) {
	for id, st := range other.items {
		dst := c.items[id]
		if dst == nil {
			dst = &ItemStats{}
			c.items[id] = dst
		}
		dst.Interested += st.Interested
		dst.Reached += st.Reached
		dst.ReachedInterested += st.ReachedInterested
		dst.Excluded = dst.Excluded || st.Excluded
	}
	for id, ns := range other.nodes {
		dst := c.nodes[id]
		if dst == nil {
			dst = &NodeStats{}
			c.nodes[id] = dst
		}
		dst.Interested += ns.Interested
		dst.EligibleInterested += ns.EligibleInterested
		dst.Received += ns.Received
		dst.ReceivedLiked += ns.ReceivedLiked
		dst.DislikeDeliveries += ns.DislikeDeliveries
	}
	for id, co := range other.cohorts {
		// Highest label wins: commutative, and the precedence order of the
		// Cohort constants makes the outcome the semantically right one
		// (rejoiner > joiner > stable) whatever the merge order.
		if co > c.cohorts[id] {
			c.cohorts[id] = co
		}
	}
	for k := MessageKind(0); k < numMessageKinds; k++ {
		c.msgCount[k] += other.msgCount[k]
		c.msgBytes[k] += other.msgBytes[k]
	}
	mergeHist := func(dst, src map[int]int) {
		for k, v := range src {
			dst[k] += v
		}
	}
	mergeHist(c.ForwardByLike, other.ForwardByLike)
	mergeHist(c.ForwardByDislike, other.ForwardByDislike)
	mergeHist(c.InfectionByLike, other.InfectionByLike)
	mergeHist(c.InfectionByDislike, other.InfectionByDislike)
	mergeHist(c.DislikesAtLikedArrival, other.DislikesAtLikedArrival)
}

// KbpsPerNode converts a byte volume into the average per-node bandwidth in
// kilobits per second, given the experiment length in cycles, the real-time
// duration of one cycle in seconds (30 s in Section V-D) and the number of
// nodes.
func KbpsPerNode(bytes int64, cycles int, cycleSeconds float64, nodes int) float64 {
	if cycles == 0 || nodes == 0 || cycleSeconds == 0 {
		return 0
	}
	seconds := float64(cycles) * cycleSeconds
	return float64(bytes) * 8 / 1000 / seconds / float64(nodes)
}
