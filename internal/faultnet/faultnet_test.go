package faultnet

import (
	"testing"
	"time"

	"whatsup/internal/news"
)

func TestLinkRulesAndDefault(t *testing.T) {
	p := New().SetDefault(Rule{Loss: 0.1})
	p.AssignClass(1, ClassStraggler)
	slow := Rule{Loss: 0.5, Base: 50 * time.Millisecond}
	p.SetRule(ClassStraggler, ClassDefault, slow)

	if got := p.Link(1, 2, 0).Rule; got != slow {
		t.Fatalf("straggler outbound rule = %+v, want %+v", got, slow)
	}
	// No rule for (default, straggler): the default applies.
	if got := p.Link(2, 1, 0).Rule; got != (Rule{Loss: 0.1}) {
		t.Fatalf("unmatched pair rule = %+v, want default", got)
	}
	if p.Empty() {
		t.Fatal("non-trivial policy reported Empty")
	}
	if !New().Empty() {
		t.Fatal("fresh policy not Empty")
	}
}

func TestPartitionWindowAndHeal(t *testing.T) {
	ids := []news.NodeID{0, 1, 2, 3}
	p := KWayPartition(ids, 2, 5, 10)
	// Groups are round-robin: 0,2 vs 1,3.
	cases := []struct {
		cycle int64
		cut   bool
	}{{4, false}, {5, true}, {9, true}, {10, false}}
	for _, c := range cases {
		if got := p.Link(0, 1, c.cycle).Cut; got != c.cut {
			t.Errorf("cycle %d: cross-group cut = %v, want %v", c.cycle, got, c.cut)
		}
		if p.Link(0, 2, c.cycle).Cut {
			t.Errorf("cycle %d: same-group link cut", c.cycle)
		}
	}
	// A node outside the partition map is unaffected.
	if p.Link(0, 99, 7).Cut || p.Link(99, 1, 7).Cut {
		t.Fatal("unassigned node was partitioned")
	}
	if got := p.ActivePartitions(7); got != 1 {
		t.Fatalf("ActivePartitions(7) = %d, want 1", got)
	}
	if got := p.ActivePartitions(10); got != 0 {
		t.Fatalf("ActivePartitions(10) = %d, want 0", got)
	}
	if got := p.LastHeal(); got != 10 {
		t.Fatalf("LastHeal = %d, want 10", got)
	}
}

func TestDrawDeterministicAndUniform(t *testing.T) {
	// Same inputs, same draw — the property the sim's determinism pin relies on.
	a := Draw(7, 3, 4, 12, 2, 99)
	b := Draw(7, 3, 4, 12, 2, 99)
	if a != b {
		t.Fatalf("Draw not deterministic: %v vs %v", a, b)
	}
	// Distinct events decorrelate, and the empirical mean of a modest sample
	// is near 0.5 (loose bound; this is a hash, not a statistics suite).
	var sum float64
	n := 0
	for from := news.NodeID(0); from < 40; from++ {
		for cycle := int64(0); cycle < 50; cycle++ {
			v := Draw(7, from, from+1, cycle, 1, 0)
			if v < 0 || v >= 1 {
				t.Fatalf("Draw out of range: %v", v)
			}
			sum += v
			n++
		}
	}
	if mean := sum / float64(n); mean < 0.45 || mean > 0.55 {
		t.Fatalf("Draw mean %v outside [0.45, 0.55]", mean)
	}
}

func TestStragglersCohortStable(t *testing.T) {
	ids := make([]news.NodeID, 200)
	for i := range ids {
		ids[i] = news.NodeID(i)
	}
	slow := Rule{Base: 20 * time.Millisecond, Loss: 0.2}
	p1 := Stragglers(ids, 0.25, 42, slow)
	p2 := Stragglers(ids, 0.25, 42, slow)
	n := 0
	for _, id := range ids {
		s1 := p1.Link(id, 999, 0).Rule == slow
		s2 := p2.Link(id, 999, 0).Rule == slow
		if s1 != s2 {
			t.Fatalf("straggler selection for %d not stable across builds", id)
		}
		if s1 {
			n++
		}
	}
	if n < 20 || n > 90 {
		t.Fatalf("straggler cohort size %d wildly off 25%% of 200", n)
	}
}

func TestWANLANRegions(t *testing.T) {
	ids := []news.NodeID{0, 1, 2, 3, 4, 5}
	lan := Rule{Base: time.Millisecond}
	wan := Rule{Base: 80 * time.Millisecond, Loss: 0.05}
	p := WANLAN(ids, 3, lan, wan)
	// 0 and 3 share region 0; 0 and 1 do not.
	if got := p.Link(0, 3, 0).Rule; got != lan {
		t.Fatalf("intra-region rule = %+v, want lan", got)
	}
	if got := p.Link(0, 1, 0).Rule; got != wan {
		t.Fatalf("cross-region rule = %+v, want wan", got)
	}
}

func TestRuleDelay(t *testing.T) {
	r := Rule{Base: 10 * time.Millisecond, Jitter: 10 * time.Millisecond, BandwidthBPS: 1000}
	// u=0.5 → 5ms jitter; 100 bytes at 1000 B/s → 100ms serialization.
	got := r.Delay(100, 0.5)
	want := 115 * time.Millisecond
	if got != want {
		t.Fatalf("Delay = %v, want %v", got, want)
	}
	if d := (Rule{}).Delay(1<<20, 0.9); d != 0 {
		t.Fatalf("zero rule Delay = %v, want 0", d)
	}
}
