// Package faultnet is the declarative per-link fault-injection layer shared
// by both runtimes: a Policy assigns every directed link a latency
// distribution, a loss rate, a bandwidth cap and (optionally) a partition
// membership with a scheduled heal time. The deterministic simulator
// (internal/sim) consults the policy with stateless per-link draws keyed off
// the engine seed, so fault injection preserves the worker-count determinism
// contract; the live transports (internal/live ChannelNet and TCPNet) apply
// the same policy with per-link RNG streams and wall-clock delays.
//
// Policies are built once, before a run, and are read-only afterwards: every
// accessor is safe for concurrent use as long as no Set/Add method runs
// concurrently with it.
package faultnet

import (
	"time"

	"whatsup/internal/news"
)

// Rule is the fault profile of a class of links: a latency distribution
// (Base plus a uniform jitter in [0, Jitter)), an independent per-message
// loss probability, and a bandwidth cap modelled as serialization delay
// (a frame of b bytes adds b/BandwidthBPS seconds to its latency).
// The zero Rule is a perfect link.
type Rule struct {
	// Loss is the probability each message on the link is dropped.
	Loss float64
	// Base is the fixed one-way latency of the link.
	Base time.Duration
	// Jitter widens the latency uniformly: effective latency is
	// Base + U[0, Jitter).
	Jitter time.Duration
	// BandwidthBPS caps the link's throughput in bytes per second; each
	// frame's serialization delay (frameLen / BandwidthBPS) is added to its
	// latency. 0 = unlimited.
	BandwidthBPS int64
}

// Delay returns the rule's wall-clock delay for a frame of the given length,
// with the jitter fraction u drawn in [0, 1) by the caller.
func (r Rule) Delay(frameLen int, u float64) time.Duration {
	d := r.Base
	if r.Jitter > 0 {
		d += time.Duration(u * float64(r.Jitter))
	}
	if r.BandwidthBPS > 0 && frameLen > 0 {
		d += time.Duration(float64(frameLen) / float64(r.BandwidthBPS) * float64(time.Second))
	}
	return d
}

// LinkState is the merged condition of one directed link at one cycle: the
// rule that governs it plus whether an active partition cuts it outright.
type LinkState struct {
	Rule
	// Cut reports that an active partition separates the two endpoints;
	// every message on the link is dropped until the partition heals.
	Cut bool
}

// Partition cuts the links between its groups for a window of cycles.
// Nodes absent from Groups are unaffected (they can reach everyone) — a
// late joiner is not retroactively walled in.
type Partition struct {
	// Groups maps each affected node to its side of the partition; links
	// between different sides are cut.
	Groups map[news.NodeID]int
	// Start is the first cycle the partition is active.
	Start int64
	// Heal is the first cycle the partition is healed again; 0 (or any value
	// ≤ Start) means it never heals.
	Heal int64
}

// cuts reports whether this partition severs the directed link at the cycle.
func (pt *Partition) cuts(from, to news.NodeID, cycle int64) bool {
	if cycle < pt.Start || (pt.Heal > pt.Start && cycle >= pt.Heal) {
		return false
	}
	gf, okF := pt.Groups[from]
	if !okF {
		return false
	}
	gt, okT := pt.Groups[to]
	return okT && gf != gt
}

// Policy is the per-link condition matrix. Links are classified by their
// endpoints' node classes (AssignClass, default class 0); each ordered class
// pair can carry its own Rule (SetRule), with Default covering the rest.
// Partitions (AddPartition) overlay scheduled cuts on top of the rules.
type Policy struct {
	def        Rule
	classes    map[news.NodeID]int
	rules      map[[2]int]Rule
	partitions []Partition
}

// New returns an empty policy: every link perfect, no partitions.
func New() *Policy {
	return &Policy{
		classes: make(map[news.NodeID]int),
		rules:   make(map[[2]int]Rule),
	}
}

// SetDefault sets the rule for links with no class-pair rule.
func (p *Policy) SetDefault(r Rule) *Policy {
	p.def = r
	return p
}

// AssignClass puts a node into a link class (class 0 is the default for
// unassigned nodes).
func (p *Policy) AssignClass(id news.NodeID, class int) *Policy {
	if class == 0 {
		delete(p.classes, id)
		return p
	}
	p.classes[id] = class
	return p
}

// SetRule sets the rule for links from one class to another.
func (p *Policy) SetRule(fromClass, toClass int, r Rule) *Policy {
	p.rules[[2]int{fromClass, toClass}] = r
	return p
}

// AddPartition overlays a scheduled partition.
func (p *Policy) AddPartition(pt Partition) *Policy {
	p.partitions = append(p.partitions, pt)
	return p
}

// Empty reports whether the policy can never affect a message: no default
// rule, no class rules and no partitions.
func (p *Policy) Empty() bool {
	return p == nil || (p.def == Rule{} && len(p.rules) == 0 && len(p.partitions) == 0)
}

// Link returns the merged condition of the directed link at the cycle.
func (p *Policy) Link(from, to news.NodeID, cycle int64) LinkState {
	ls := LinkState{Rule: p.def}
	if len(p.rules) > 0 {
		if r, ok := p.rules[[2]int{p.classes[from], p.classes[to]}]; ok {
			ls.Rule = r
		}
	}
	for i := range p.partitions {
		if p.partitions[i].cuts(from, to, cycle) {
			ls.Cut = true
			break
		}
	}
	return ls
}

// Drop reports whether the policy drops a message on the directed link at
// the cycle: cut links always drop; lossy links drop by a stateless draw
// (see Draw) keyed off the run seed and the event identity, never a shared
// RNG, so any worker can evaluate it without perturbing per-peer streams.
func (p *Policy) Drop(seed int64, from, to news.NodeID, cycle int64, salt, extra uint64) bool {
	ls := p.Link(from, to, cycle)
	if ls.Cut {
		return true
	}
	if ls.Loss <= 0 {
		return false
	}
	return Draw(seed, from, to, cycle, salt, extra) < ls.Loss
}

// ActivePartitions counts the partitions active at the cycle — the
// partition-heal timeline that extends metrics.ChurnSample.
func (p *Policy) ActivePartitions(cycle int64) int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.partitions {
		pt := &p.partitions[i]
		if cycle >= pt.Start && (pt.Heal <= pt.Start || cycle < pt.Heal) {
			n++
		}
	}
	return n
}

// LastHeal returns the latest scheduled heal cycle across all partitions
// (0 when there are none); -1 when some partition never heals.
func (p *Policy) LastHeal() int64 {
	if p == nil {
		return 0
	}
	var last int64
	for i := range p.partitions {
		pt := &p.partitions[i]
		if pt.Heal <= pt.Start {
			return -1
		}
		if pt.Heal > last {
			last = pt.Heal
		}
	}
	return last
}

// mix is the splitmix64 finalizer, the same mixer the sim engine uses to
// derive per-peer streams, so link draws are decorrelated from peer streams.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Draw returns a deterministic uniform [0, 1) draw for one link event,
// hashing the run seed, the directed link, the cycle and the event identity
// (salt distinguishes the protocol leg, extra the message — e.g. the item
// id of a BEEP forward). Stateless by construction: the sim's workers can
// evaluate it in any order without shared state, which is what lets per-link
// fault injection keep the worker-count determinism contract.
func Draw(seed int64, from, to news.NodeID, cycle int64, salt, extra uint64) float64 {
	z := uint64(seed) * 0x9E3779B97F4A7C15
	z = mix(z + (uint64(from)+1)*0xBF58476D1CE4E5B9)
	z = mix(z + (uint64(to)+1)*0x94D049BB133111EB)
	z = mix(z + uint64(cycle)*0x9E3779B97F4A7C15)
	z = mix(z + salt*0xD6E8FEB86659FD93 + extra)
	return float64(z>>11) / (1 << 53)
}

// LinkSeed derives a stable RNG-stream seed for one directed link from the
// run seed, for transports that keep per-link RNG streams (ChannelNet).
func LinkSeed(seed int64, from, to news.NodeID) int64 {
	z := mix(uint64(seed)*0x9E3779B97F4A7C15 + (uint64(from)+1)*0xBF58476D1CE4E5B9)
	z = mix(z + (uint64(to)+1)*0x94D049BB133111EB)
	return int64(z)
}

// Link classes used by the scenario generators.
const (
	// ClassDefault is the unassigned node class.
	ClassDefault = 0
	// ClassStraggler marks the straggler cohort of Stragglers.
	ClassStraggler = 1
)

// Stragglers builds the straggler-cohort scenario: a deterministic ~frac of
// ids (selected by a seed-keyed hash, so the cohort is stable across runs
// and worker counts) becomes stragglers, and every link touching a
// straggler is governed by slow.
func Stragglers(ids []news.NodeID, frac float64, seed int64, slow Rule) *Policy {
	p := New()
	for _, id := range ids {
		if Draw(seed, id, id, 0, 'S', 0) < frac {
			p.AssignClass(id, ClassStraggler)
		}
	}
	p.SetRule(ClassStraggler, ClassDefault, slow)
	p.SetRule(ClassDefault, ClassStraggler, slow)
	p.SetRule(ClassStraggler, ClassStraggler, slow)
	return p
}

// WANLAN builds the WAN-vs-LAN mix: ids are spread round-robin over the
// given number of regions (classes 0..regions-1); links inside a region use
// lan, links between regions use wan.
func WANLAN(ids []news.NodeID, regions int, lan, wan Rule) *Policy {
	if regions < 1 {
		regions = 1
	}
	p := New()
	for i, id := range ids {
		p.AssignClass(id, i%regions)
	}
	for a := 0; a < regions; a++ {
		for b := 0; b < regions; b++ {
			if a == b {
				p.SetRule(a, b, lan)
			} else {
				p.SetRule(a, b, wan)
			}
		}
	}
	return p
}

// KWayPartition builds a k-way partition that heals mid-run: ids are split
// round-robin into k groups whose mutual links are cut from start until
// heal. Round-robin assignment intersects every interest community, so the
// scenario measures re-convergence rather than community isolation.
func KWayPartition(ids []news.NodeID, k int, start, heal int64) *Policy {
	if k < 2 {
		k = 2
	}
	groups := make(map[news.NodeID]int, len(ids))
	for i, id := range ids {
		groups[id] = i % k
	}
	return New().AddPartition(Partition{Groups: groups, Start: start, Heal: heal})
}
