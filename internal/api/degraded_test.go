package api

import (
	"net/http"
	"testing"

	"whatsup/internal/live"
)

// TestFeedDegradedFleetIs503WithRetryAfter pins the degraded-mode contract:
// when the fleet has lost its online majority, the feed route answers 503
// with a Retry-After hint so clients back off for a gossip period instead of
// hammering a mesh that cannot refresh their feeds.
func TestFeedDegradedFleetIs503WithRetryAfter(t *testing.T) {
	srv, fleet, _ := newTestServer(t)
	fleet.feedErr = live.ErrDegraded
	resp, err := http.Get(srv.URL + "/v1/nodes/1/feed")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded feed: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != degradedRetryAfter {
		t.Fatalf("degraded feed: Retry-After %q, want %q", got, degradedRetryAfter)
	}
}
