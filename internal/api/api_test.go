package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whatsup/internal/live"
	"whatsup/internal/news"
	"whatsup/internal/source"
)

// stubFleet implements Fleet over fixed data, recording feedback calls.
type stubFleet struct {
	feeds    map[news.NodeID][]live.FeedEntry
	members  []live.Member
	stats    live.FleetStats
	feedback []struct {
		node  news.NodeID
		item  news.ID
		liked bool
	}
	feedbackErr error
	feedErr     error
}

func (s *stubFleet) known(id news.NodeID) bool {
	for _, m := range s.members {
		if m.ID == id {
			return true
		}
	}
	return false
}

func (s *stubFleet) Feed(id news.NodeID) ([]live.FeedEntry, error) {
	if !s.known(id) {
		return nil, live.ErrUnknownNode
	}
	if s.feedErr != nil {
		return nil, s.feedErr
	}
	return s.feeds[id], nil
}

func (s *stubFleet) Feedback(id news.NodeID, item news.ID, liked bool) error {
	if !s.known(id) {
		return live.ErrUnknownNode
	}
	if s.feedbackErr != nil {
		return s.feedbackErr
	}
	s.feedback = append(s.feedback, struct {
		node  news.NodeID
		item  news.ID
		liked bool
	}{id, item, liked})
	return nil
}

func (s *stubFleet) Snapshot(id news.NodeID) (live.NodeSnapshot, error) {
	if !s.known(id) {
		return live.NodeSnapshot{}, live.ErrUnknownNode
	}
	return live.NodeSnapshot{ID: id, Cycle: 42, ProfileSize: 3}, nil
}

func (s *stubFleet) Members() []live.Member { return s.members }

func (s *stubFleet) Stats() live.FleetStats { return s.stats }

func newTestServer(t *testing.T) (*httptest.Server, *stubFleet, *source.Catalog) {
	t.Helper()
	item := news.New("Hello", "World", "https://example.org/hello", 5, 2)
	fleet := &stubFleet{
		feeds: map[news.NodeID][]live.FeedEntry{
			1: {{Item: item, Score: 1.5, Rated: true, Liked: true, Cycle: 7, Hops: 2}},
		},
		members: []live.Member{{ID: 0}, {ID: 1}, {ID: 2}},
		stats:   live.FleetStats{Cycle: 9, Members: 3, Online: 3, Precision: 0.5, Messages: 100, Bytes: 4096},
	}
	cat := source.NewCatalog()
	cat.Add(source.CatalogEntry{Item: item, SourceName: "file:testdata/feed.xml", FetchedAt: time.Unix(0, 0)})
	srv := httptest.NewServer(NewServer(fleet, cat))
	t.Cleanup(srv.Close)
	return srv, fleet, cat
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return out
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding body: %v", url, err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz body %v", out)
	}
}

func TestNodesList(t *testing.T) {
	srv, _, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/v1/nodes", http.StatusOK)
	members, ok := out["members"].([]any)
	if !ok || len(members) != 3 {
		t.Fatalf("members %v", out)
	}
	first := members[0].(map[string]any)
	if first["state"] != "online" {
		t.Fatalf("member state %v", first)
	}
}

func TestNodeSnapshot(t *testing.T) {
	srv, _, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/v1/nodes/1", http.StatusOK)
	if out["cycle"] != float64(42) || out["profile_size"] != float64(3) {
		t.Fatalf("snapshot %v", out)
	}
	getJSON(t, srv.URL+"/v1/nodes/99", http.StatusNotFound)
	getJSON(t, srv.URL+"/v1/nodes/not-a-number", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/nodes/-3", http.StatusBadRequest)
}

func TestFeedRoute(t *testing.T) {
	srv, _, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/v1/nodes/1/feed", http.StatusOK)
	entries := out["entries"].([]any)
	if len(entries) != 1 {
		t.Fatalf("feed %v", out)
	}
	e := entries[0].(map[string]any)
	if e["score"] != 1.5 || e["liked"] != true {
		t.Fatalf("entry %v", e)
	}
	item := e["item"].(map[string]any)
	if item["title"] != "Hello" || len(item["id"].(string)) != 16 {
		t.Fatalf("item %v", item)
	}
	// Empty feed for a known node is 200 with an empty list, not an error.
	out = getJSON(t, srv.URL+"/v1/nodes/0/feed", http.StatusOK)
	if entries, ok := out["entries"].([]any); !ok || len(entries) != 0 {
		t.Fatalf("empty feed %v", out)
	}
	getJSON(t, srv.URL+"/v1/nodes/99/feed", http.StatusNotFound)
}

func TestFeedbackRoute(t *testing.T) {
	srv, fleet, _ := newTestServer(t)
	itemID := news.Hash("Hello", "World", "https://example.org/hello")
	url := srv.URL + "/v1/nodes/1/feedback"

	out := postJSON(t, url, `{"item":"`+itemID.String()+`","liked":false}`, http.StatusOK)
	if out["liked"] != false {
		t.Fatalf("ack %v", out)
	}
	if len(fleet.feedback) != 1 || fleet.feedback[0].item != itemID || fleet.feedback[0].liked {
		t.Fatalf("feedback not applied: %+v", fleet.feedback)
	}

	// Malformed inputs are 4xx, never panics.
	postJSON(t, url, `{not json`, http.StatusBadRequest)
	postJSON(t, url, `{"liked":true}`, http.StatusBadRequest)                               // missing item
	postJSON(t, url, `{"item":"`+itemID.String()+`"}`, http.StatusBadRequest)               // missing liked
	postJSON(t, url, `{"item":"zzzz","liked":true}`, http.StatusBadRequest)                 // bad hex
	postJSON(t, url, `{"item":"00112233445566778899","liked":true}`, http.StatusBadRequest) // too long
	postJSON(t, srv.URL+"/v1/nodes/99/feedback", `{"item":"`+itemID.String()+`","liked":true}`, http.StatusNotFound)

	// Wrong method on every route.
	resp, err := http.Post(srv.URL+"/v1/nodes/1/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST feed: %d", resp.StatusCode)
	}
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET feedback: %d", resp.StatusCode)
	}
}

func TestFeedbackOfflineNodeIs503(t *testing.T) {
	srv, fleet, _ := newTestServer(t)
	fleet.feedbackErr = live.ErrNodeOffline
	itemID := news.Hash("Hello", "World", "https://example.org/hello")
	postJSON(t, srv.URL+"/v1/nodes/1/feedback", `{"item":"`+itemID.String()+`","liked":true}`, http.StatusServiceUnavailable)
}

func TestItemRoute(t *testing.T) {
	srv, _, _ := newTestServer(t)
	itemID := news.Hash("Hello", "World", "https://example.org/hello")
	out := getJSON(t, srv.URL+"/v1/items/"+itemID.String(), http.StatusOK)
	if out["source"] != "file:testdata/feed.xml" {
		t.Fatalf("catalog entry %v", out)
	}
	item := out["item"].(map[string]any)
	if item["title"] != "Hello" {
		t.Fatalf("item %v", item)
	}
	getJSON(t, srv.URL+"/v1/items/ffffffffffffffff", http.StatusNotFound)
	getJSON(t, srv.URL+"/v1/items/nothex", http.StatusBadRequest)
}

func TestStatsRoute(t *testing.T) {
	srv, _, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/v1/stats", http.StatusOK)
	if out["members"] != float64(3) || out["precision"] != 0.5 || out["catalog"] != float64(1) {
		t.Fatalf("stats %v", out)
	}
}

func TestUnknownPaths(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, p := range []string{"/", "/v2/nodes", "/v1/bogus", "/v1/nodes/1/bogus", "/v1/items", "/v1"} {
		getJSON(t, srv.URL+p, http.StatusNotFound)
	}
}
