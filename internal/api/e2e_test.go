package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/news"
	"whatsup/internal/source"
)

// TestServeEndToEnd is the full serving pipeline on one machine: a 20-node
// ChannelNet fleet with no trace workload, a gateway ingesting the fixture
// feed and publishing through node 0, and the HTTP API over the runner.
// It proves that ingested items flow gateway → BEEP → per-node feed, and
// that a posted dislike measurably demotes the item: its score drops (the
// similarity to the profile it arrived with from its source falls, plus the
// rating bias), it loses its liked mark, and the feed reranks it below the
// still-liked items.
func TestServeEndToEnd(t *testing.T) {
	const (
		users       = 20
		reader      = news.NodeID(5)
		cycleLength = 5 * time.Millisecond
	)
	ds := dataset.Blank(users, 0)
	cfg := live.Config{
		Seed:        42,
		Cycles:      -1, // run until cancelled: serving mode
		CycleLength: cycleLength,
		NodeConfig: core.Config{
			// A very wide window: the test reasons about profile entries and
			// must not race the purge (5 ms cycles make the default window
			// 65 ms of wall clock).
			ProfileWindow: 1 << 20,
		},
		FeedCapacity: 32,
		// Everyone likes everything: BEEP amplifies every item across the
		// whole fleet, and the posted dislike below is the only dissent.
		Opinions: core.OpinionFunc(func(news.NodeID, news.ID) bool { return true }),
	}
	runner := live.NewRunner(cfg, ds, live.NewChannelNet(42, 0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		runner.RunContext(ctx)
	}()
	defer func() {
		cancel()
		<-runDone
	}()

	gw := source.NewGateway(source.GatewayConfig{
		Node:    0,
		Sources: []source.Source{source.NewFile("../source/testdata/feed.xml")},
	}, runner)
	srv := httptest.NewServer(NewServer(runner, gw.Catalog()))
	defer srv.Close()

	// Ingest: the runner may still be spinning up (Publish needs the fleet
	// clock running), so poll until all 6 fixture items are in.
	deadline := time.Now().Add(30 * time.Second)
	for gw.Published() < 6 {
		if time.Now().After(deadline) {
			t.Fatal("gateway could not publish the fixture feed")
		}
		if _, err := gw.PollOnce(ctx); err != nil {
			t.Logf("poll: %v (will retry)", err)
		}
		time.Sleep(cycleLength)
	}

	feedURL := fmt.Sprintf("%s/v1/nodes/%d/feed", srv.URL, reader)
	readFeed := func() feedJSON {
		t.Helper()
		resp, err := http.Get(feedURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET feed: status %d", resp.StatusCode)
		}
		var out feedJSON
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Dissemination: BEEP must deliver most of the fixture to the reader.
	var feed feedJSON
	for {
		feed = readFeed()
		if len(feed.Entries) >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reader got %d feed entries, want >= 4", len(feed.Entries))
		}
		time.Sleep(cycleLength)
	}
	catalog := gw.Catalog()
	for _, e := range feed.Entries {
		if !e.Liked || !e.Rated {
			t.Fatalf("entry %q not liked before feedback: %+v", e.Item.Title, e)
		}
		id, ok := parseItemID(e.Item.ID)
		if !ok {
			t.Fatalf("feed item id %q not parseable", e.Item.ID)
		}
		if !catalog.Has(id) {
			t.Fatalf("feed item %q did not come through the gateway", e.Item.Title)
		}
	}

	// Feedback: dislike the top-ranked item over HTTP.
	target := feed.Entries[0]
	before := target.Score
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/nodes/%d/feedback", srv.URL, reader),
		"application/json",
		strings.NewReader(`{"item":"`+target.Item.ID+`","liked":false}`),
	)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST feedback: status %d", resp.StatusCode)
	}

	// Rerank: the dislike lands synchronously (the feedback ran on the node
	// goroutine before the POST returned), so the very next read reflects it.
	after := readFeed()
	var demoted *feedEntryJSON
	for i := range after.Entries {
		if after.Entries[i].Item.ID == target.Item.ID {
			demoted = &after.Entries[i]
		}
	}
	if demoted == nil {
		t.Fatalf("disliked item %q vanished from the feed", target.Item.Title)
	}
	if demoted.Liked || !demoted.Rated {
		t.Fatalf("disliked item still marked liked: %+v", demoted)
	}
	if demoted.Score >= before {
		t.Fatalf("dislike did not demote: score %v -> %v", before, demoted.Score)
	}
	// Beyond the ±1 rating bias, the similarity to the item's source profile
	// itself must not have grown: unbiased, before was sim+1, after is sim'-1.
	if simBefore, simAfter := before-1, demoted.Score+1; simAfter > simBefore+1e-9 {
		t.Fatalf("source-profile similarity grew after dislike: %v -> %v", simBefore, simAfter)
	}
	// The one disliked item ranks below every still-liked entry.
	last := after.Entries[len(after.Entries)-1]
	if last.Item.ID != target.Item.ID {
		t.Fatalf("disliked item not reranked to the bottom: last is %q", last.Item.Title)
	}

	// The item is resolvable through the catalog route, and stats see the
	// ingestion.
	var stats statsJSON
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Catalog == nil || *stats.Catalog != 6 {
		t.Fatalf("stats catalog %v, want 6", stats.Catalog)
	}
	if stats.Online != users {
		t.Fatalf("stats online %d, want %d", stats.Online, users)
	}
	if stats.Messages == 0 {
		t.Fatal("stats recorded no traffic")
	}
}
