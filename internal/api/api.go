// Package api exposes a running live fleet as a JSON HTTP service — the
// "client interface" of the paper's prototype, where real users read their
// feed and rated what they read. It is a thin translation layer: every
// request maps onto the live runtime's serving surface (which serializes
// node access through control channels) or the ingestion catalog, so the
// package holds no state and no locks of its own.
//
// Routes (all JSON):
//
//	GET  /healthz                  liveness probe
//	GET  /v1/nodes                 fleet members and lifecycle states
//	GET  /v1/nodes/{id}            one node's protocol snapshot
//	GET  /v1/nodes/{id}/feed       the node's ranked recommendations
//	POST /v1/nodes/{id}/feedback   {"item":"<16-hex id>","liked":bool}
//	GET  /v1/items/{id}            an ingested item's catalog record
//	GET  /v1/stats                 fleet metrics roll-up
package api

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"whatsup/internal/live"
	"whatsup/internal/news"
	"whatsup/internal/source"
)

// Fleet is the slice of the live runtime the API serves from; *live.Runner
// implements it. Tests substitute stubs.
type Fleet interface {
	Feed(id news.NodeID) ([]live.FeedEntry, error)
	Feedback(id news.NodeID, item news.ID, liked bool) error
	Snapshot(id news.NodeID) (live.NodeSnapshot, error)
	Members() []live.Member
	Stats() live.FleetStats
}

// Items resolves item ids to their ingestion records; *source.Catalog
// implements it. A nil Items serves 404 for every /v1/items lookup.
type Items interface {
	Get(id news.ID) (source.CatalogEntry, bool)
	Len() int
}

// Server is the HTTP handler. Construct with NewServer and mount anywhere
// (it implements http.Handler at its root).
type Server struct {
	fleet Fleet
	items Items
}

// NewServer builds the API over a fleet and an optional item catalog.
func NewServer(fleet Fleet, items Items) *Server {
	return &Server{fleet: fleet, items: items}
}

// maxBodyBytes bounds request bodies; feedback payloads are tiny.
const maxBodyBytes = 1 << 16

// Wire shapes. Item ids travel as the canonical 16-hex-digit string
// (news.ID.String()): they are 64-bit hashes, and JSON numbers lose
// precision past 2^53.

type errorJSON struct {
	Error string `json:"error"`
}

type itemJSON struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	Link        string `json:"link,omitempty"`
	Created     int64  `json:"created"`
	Source      int32  `json:"source"`
}

func toItemJSON(it news.Item) itemJSON {
	return itemJSON{
		ID:          it.ID.String(),
		Title:       it.Title,
		Description: it.Description,
		Link:        it.Link,
		Created:     it.Created,
		Source:      int32(it.Source),
	}
}

type feedEntryJSON struct {
	Item       itemJSON `json:"item"`
	Score      float64  `json:"score"`
	Rated      bool     `json:"rated"`
	Liked      bool     `json:"liked"`
	Cycle      int64    `json:"cycle"`
	Hops       int      `json:"hops"`
	ViaDislike bool     `json:"via_dislike"`
}

type feedJSON struct {
	Node    int32           `json:"node"`
	Entries []feedEntryJSON `json:"entries"`
}

type memberJSON struct {
	ID    int32  `json:"id"`
	State string `json:"state"`
}

type membersJSON struct {
	Members []memberJSON `json:"members"`
}

type snapshotJSON struct {
	ID          int32   `json:"id"`
	State       string  `json:"state"`
	Cycle       int64   `json:"cycle"`
	ProfileSize int     `json:"profile_size"`
	RPSView     []int32 `json:"rps_view"`
	WUPView     []int32 `json:"wup_view"`
	FeedSize    int     `json:"feed_size"`
}

type feedbackJSON struct {
	Item  string `json:"item"`
	Liked *bool  `json:"liked"`
}

type feedbackAckJSON struct {
	Node  int32  `json:"node"`
	Item  string `json:"item"`
	Liked bool   `json:"liked"`
}

type catalogItemJSON struct {
	Item      itemJSON `json:"item"`
	Source    string   `json:"source"`
	FetchedAt string   `json:"fetched_at"`
}

type statsJSON struct {
	Cycle     int64   `json:"cycle"`
	Members   int     `json:"members"`
	Online    int     `json:"online"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Messages  int64   `json:"messages"`
	Bytes     int64   `json:"bytes"`
	Catalog   *int    `json:"catalog,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorJSON{Error: msg})
}

// degradedRetryAfter is the Retry-After hint sent with 503s for a degraded
// fleet: one gossip period of the paper's prototype — the soonest the mesh
// could plausibly look different.
const degradedRetryAfter = "30"

// fleetError maps serving-surface sentinels onto HTTP statuses.
func fleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, live.ErrUnknownNode):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, live.ErrDegraded):
		w.Header().Set("Retry-After", degradedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, live.ErrNodeOffline), errors.Is(err, live.ErrNotRunning):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func parseNodeID(s string) (news.NodeID, bool) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, false
	}
	return news.NodeID(v), true
}

func parseItemID(s string) (news.ID, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return news.ID(v), true
}

// ServeHTTP routes by hand: go.mod targets Go 1.21, before ServeMux learned
// methods and wildcards, and the tree is small enough that explicit segment
// matching is clearer than a third-party router would be.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	seg := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if seg[0] != "v1" {
		writeError(w, http.StatusNotFound, "unknown path")
		return
	}
	seg = seg[1:]
	switch {
	case len(seg) == 1 && seg[0] == "nodes":
		s.requireGet(w, r, s.handleNodes)
	case len(seg) == 2 && seg[0] == "nodes":
		s.nodeRoute(w, r, seg[1], "")
	case len(seg) == 3 && seg[0] == "nodes":
		s.nodeRoute(w, r, seg[1], seg[2])
	case len(seg) == 2 && seg[0] == "items":
		s.requireGet(w, r, func(w http.ResponseWriter, r *http.Request) { s.handleItem(w, seg[1]) })
	case len(seg) == 1 && seg[0] == "stats":
		s.requireGet(w, r, s.handleStats)
	default:
		writeError(w, http.StatusNotFound, "unknown path")
	}
}

func (s *Server) requireGet(w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	h(w, r)
}

func (s *Server) nodeRoute(w http.ResponseWriter, r *http.Request, idSeg, action string) {
	id, ok := parseNodeID(idSeg)
	if !ok {
		writeError(w, http.StatusBadRequest, "node id must be a non-negative integer")
		return
	}
	switch action {
	case "":
		s.requireGet(w, r, func(w http.ResponseWriter, r *http.Request) { s.handleSnapshot(w, id) })
	case "feed":
		s.requireGet(w, r, func(w http.ResponseWriter, r *http.Request) { s.handleFeed(w, id) })
	case "feedback":
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		s.handleFeedback(w, r, id)
	default:
		writeError(w, http.StatusNotFound, "unknown path")
	}
}

func (s *Server) handleNodes(w http.ResponseWriter, _ *http.Request) {
	members := s.fleet.Members()
	out := membersJSON{Members: make([]memberJSON, 0, len(members))}
	for _, m := range members {
		out.Members = append(out.Members, memberJSON{ID: int32(m.ID), State: m.State.String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, id news.NodeID) {
	snap, err := s.fleet.Snapshot(id)
	if err != nil {
		fleetError(w, err)
		return
	}
	out := snapshotJSON{
		ID:          int32(snap.ID),
		State:       snap.State.String(),
		Cycle:       snap.Cycle,
		ProfileSize: snap.ProfileSize,
		RPSView:     make([]int32, 0, len(snap.RPSView)),
		WUPView:     make([]int32, 0, len(snap.WUPView)),
		FeedSize:    snap.FeedSize,
	}
	for _, d := range snap.RPSView {
		out.RPSView = append(out.RPSView, int32(d.Node))
	}
	for _, d := range snap.WUPView {
		out.WUPView = append(out.WUPView, int32(d.Node))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFeed(w http.ResponseWriter, id news.NodeID) {
	entries, err := s.fleet.Feed(id)
	if err != nil {
		fleetError(w, err)
		return
	}
	out := feedJSON{Node: int32(id), Entries: make([]feedEntryJSON, 0, len(entries))}
	for _, e := range entries {
		out.Entries = append(out.Entries, feedEntryJSON{
			Item:       toItemJSON(e.Item),
			Score:      e.Score,
			Rated:      e.Rated,
			Liked:      e.Liked,
			Cycle:      e.Cycle,
			Hops:       e.Hops,
			ViaDislike: e.ViaDislike,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, id news.NodeID) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req feedbackJSON
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	itemID, ok := parseItemID(req.Item)
	if !ok {
		writeError(w, http.StatusBadRequest, `"item" must be the 16-hex-digit item id`)
		return
	}
	if req.Liked == nil {
		writeError(w, http.StatusBadRequest, `"liked" must be true or false`)
		return
	}
	if err := s.fleet.Feedback(id, itemID, *req.Liked); err != nil {
		fleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, feedbackAckJSON{Node: int32(id), Item: itemID.String(), Liked: *req.Liked})
}

func (s *Server) handleItem(w http.ResponseWriter, idSeg string) {
	id, ok := parseItemID(idSeg)
	if !ok {
		writeError(w, http.StatusBadRequest, "item id must be 16 hex digits")
		return
	}
	if s.items == nil {
		writeError(w, http.StatusNotFound, "no item catalog configured")
		return
	}
	e, ok := s.items.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown item")
		return
	}
	writeJSON(w, http.StatusOK, catalogItemJSON{
		Item:      toItemJSON(e.Item),
		Source:    e.SourceName,
		FetchedAt: e.FetchedAt.UTC().Format("2006-01-02T15:04:05.000Z"),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.fleet.Stats()
	out := statsJSON{
		Cycle:     st.Cycle,
		Members:   st.Members,
		Online:    st.Online,
		Precision: st.Precision,
		Recall:    st.Recall,
		F1:        st.F1,
		Messages:  st.Messages,
		Bytes:     st.Bytes,
	}
	if s.items != nil {
		n := s.items.Len()
		out.Catalog = &n
	}
	writeJSON(w, http.StatusOK, out)
}
