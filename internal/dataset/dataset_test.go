package dataset

import (
	"testing"

	"whatsup/internal/news"
)

func TestSyntheticStructure(t *testing.T) {
	d := Synthetic(SyntheticConfig{Seed: 1, Scale: 0.05})
	if d.Users < 50 {
		t.Fatalf("too few users: %d", d.Users)
	}
	if len(d.Items) == 0 {
		t.Fatal("no items")
	}
	// Disjoint communities: every item is liked by exactly its community and
	// interested counts are consistent.
	for _, it := range d.Items {
		if it.Interested == 0 {
			t.Fatalf("item %d has no audience", it.Index)
		}
		if it.News.Source == news.NoNode {
			t.Fatalf("item %d has no source", it.Index)
		}
		if !d.Likes(it.News.Source, it.News.ID) {
			t.Fatalf("source must like its own item (item %d)", it.Index)
		}
	}
	// Users of different communities never share interests.
	likesOf := func(u news.NodeID) map[int]bool {
		out := map[int]bool{}
		for i := range d.Items {
			if d.LikesIndex(int(u), i) {
				out[d.Topic(i)] = true
			}
		}
		return out
	}
	for u := news.NodeID(0); u < 20; u++ {
		if len(likesOf(u)) > 1 {
			t.Fatalf("user %d likes items of multiple communities: %v", u, likesOf(u))
		}
	}
}

func TestSyntheticWithDetection(t *testing.T) {
	// The faithful path: planted graph → CNM → communities. Small scale so
	// the O(n·m) detection stays fast in tests.
	d := Synthetic(SyntheticConfig{Seed: 2, Scale: 0.03, Communities: 4})
	if d.Topics < 2 {
		t.Fatalf("detection found too few communities: %d", d.Topics)
	}
	total := 0
	for _, it := range d.Items {
		total += it.Interested
	}
	if total == 0 {
		t.Fatal("no interests at all")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := Synthetic(SyntheticConfig{Seed: 3, Scale: 0.05, SkipDetection: true})
	b := Synthetic(SyntheticConfig{Seed: 3, Scale: 0.05, SkipDetection: true})
	if a.Users != b.Users || len(a.Items) != len(b.Items) {
		t.Fatal("same seed must give identical datasets")
	}
	for i := range a.Items {
		if a.Items[i].News.ID != b.Items[i].News.ID ||
			a.Items[i].Interested != b.Items[i].Interested ||
			a.Items[i].News.Source != b.Items[i].News.Source {
			t.Fatalf("item %d differs across same-seed generations", i)
		}
	}
}

func TestDiggStructure(t *testing.T) {
	d := Digg(DiggConfig{Seed: 4, Scale: 0.1})
	if d.Users != 75 || len(d.Items) != 250 {
		t.Fatalf("scaled digg dims wrong: users=%d items=%d", d.Users, len(d.Items))
	}
	if d.Social == nil || len(d.Social) != d.Users {
		t.Fatal("digg must carry a social graph")
	}
	edges := 0
	for u, out := range d.Social {
		edges += len(out)
		for _, v := range out {
			if int(v) == u {
				t.Fatal("self-follow")
			}
		}
	}
	if edges == 0 {
		t.Fatal("social graph is empty")
	}
	// Category model: a user likes either all or none of a category's items.
	for u := 0; u < 10; u++ {
		perCat := map[int]map[bool]bool{}
		for i := range d.Items {
			c := d.Topic(i)
			if perCat[c] == nil {
				perCat[c] = map[bool]bool{}
			}
			perCat[c][d.LikesIndex(u, i)] = true
		}
		for c, vals := range perCat {
			if vals[true] && vals[false] {
				t.Fatalf("user %d splits category %d", u, c)
			}
		}
	}
}

func TestSurveyStructure(t *testing.T) {
	d := Survey(SurveyConfig{Seed: 5, Scale: 0.1})
	if d.Users != 48 || len(d.Items) != 100 {
		t.Fatalf("scaled survey dims wrong: users=%d items=%d", d.Users, len(d.Items))
	}
	// Replication: user u and u+baseUsers rate identically.
	base := d.Users / 4
	baseItems := len(d.Items) / 4
	for u := 0; u < base; u++ {
		for i := 0; i < baseItems; i++ {
			if d.LikesIndex(u, i) != d.LikesIndex(u+base, i) {
				t.Fatalf("replica rating mismatch at user %d item %d", u, i)
			}
		}
	}
}

func TestOpinionsAdapter(t *testing.T) {
	d := Survey(SurveyConfig{Seed: 6, Scale: 0.05})
	op := d.Opinions()
	found := false
	for _, it := range d.Items {
		if it.Interested > 0 {
			u := d.InterestedUsers(it.Index)[0]
			if !op.Likes(u, it.News.ID) {
				t.Fatal("Opinions disagrees with Likes")
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no item with interest")
	}
	if op.Likes(0, news.ID(0xdead)) {
		t.Fatal("unknown items must be disliked")
	}
}

func TestUserInterestCount(t *testing.T) {
	d := Survey(SurveyConfig{Seed: 7, Scale: 0.05})
	for u := news.NodeID(0); int(u) < d.Users; u++ {
		count := 0
		for i := range d.Items {
			if d.LikesIndex(int(u), i) {
				count++
			}
		}
		if got := d.UserInterestCount(u); got != count {
			t.Fatalf("popcount mismatch for user %d: %d vs %d", u, got, count)
		}
	}
}

func TestSubscribers(t *testing.T) {
	d := Survey(SurveyConfig{Seed: 8, Scale: 0.05})
	for topic := 0; topic < d.Topics; topic++ {
		subs := map[news.NodeID]bool{}
		for _, u := range d.Subscribers(topic) {
			subs[u] = true
		}
		// Every user interested in an item of this topic must be subscribed
		// (that is what makes C-Pub/Sub recall 1).
		for i := range d.Items {
			if d.Topic(i) != topic {
				continue
			}
			for _, u := range d.InterestedUsers(i) {
				if !subs[u] {
					t.Fatalf("interested user %d not subscribed to topic %d", u, topic)
				}
			}
		}
	}
}

func TestFullProfiles(t *testing.T) {
	d := Survey(SurveyConfig{Seed: 9, Scale: 0.05})
	profiles := d.FullProfiles()
	if len(profiles) != d.Users {
		t.Fatalf("profiles=%d users=%d", len(profiles), d.Users)
	}
	for u, p := range profiles {
		if p.Len() != len(d.Items) {
			t.Fatalf("user %d profile covers %d of %d items", u, p.Len(), len(d.Items))
		}
		if p.Likes() != d.UserInterestCount(news.NodeID(u)) {
			t.Fatalf("user %d likes mismatch", u)
		}
	}
}

func TestItemByIDAndSummary(t *testing.T) {
	d := Digg(DiggConfig{Seed: 10, Scale: 0.05})
	it := d.Items[3]
	got, ok := d.ItemByID(it.News.ID)
	if !ok || got.Index != 3 {
		t.Fatal("ItemByID lookup failed")
	}
	if _, ok := d.ItemByID(news.ID(0x1234)); ok {
		t.Fatal("unknown id must miss")
	}
	if d.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestPublicationCyclesWithinRange(t *testing.T) {
	for _, d := range []*Dataset{
		Synthetic(SyntheticConfig{Seed: 11, Scale: 0.05, SkipDetection: true}),
		Digg(DiggConfig{Seed: 11, Scale: 0.05}),
		Survey(SurveyConfig{Seed: 11, Scale: 0.05}),
	} {
		for _, it := range d.Items {
			if it.Cycle < 1 || it.Cycle > int64(d.Cycles) {
				t.Fatalf("%s item %d published at cycle %d outside [1,%d]",
					d.Name, it.Index, it.Cycle, d.Cycles)
			}
		}
	}
}
