package dataset

import (
	"fmt"
	"math/rand"

	"whatsup/internal/graph"
	"whatsup/internal/news"
)

// SyntheticConfig parameterizes the Arxiv-style synthetic workload
// (Section IV-A). At Scale 1 it matches Table I: ≈3180 users in 21 interest
// communities (sizes between ~31 and ~1036, as in the paper's detected
// communities) and ≈2000 news items, 120 per large community.
type SyntheticConfig struct {
	Seed  int64
	Scale float64 // 1.0 = paper scale; smaller values shrink users and items
	// Communities overrides the number of planted communities (default 21).
	Communities int
	// ItemsPerCommunity overrides the per-community item count (default 120,
	// scaled).
	ItemsPerCommunity int
	// Cycles overrides the experiment length (default 65 = 5 profile windows).
	Cycles int
	// SkipDetection wires communities directly from the planted partition
	// instead of running CNM community detection on the collaboration graph.
	// Detection is the faithful path; tests use SkipDetection for speed.
	SkipDetection bool
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Communities <= 0 {
		// 21 communities at paper scale; fewer when shrunk, so each
		// community keeps enough items per profile window for the
		// similarity signal to exist.
		c.Communities = max(3, int(21*c.Scale+0.5))
	}
	if c.ItemsPerCommunity <= 0 {
		c.ItemsPerCommunity = max(2, int(120*c.Scale))
	}
	if c.Cycles <= 0 {
		c.Cycles = 65
	}
	return c
}

// communitySizes draws c.Communities sizes with the paper's skew (min ~31,
// max ~1036 at scale 1) summing to roughly 3180·scale users.
func communitySizes(cfg SyntheticConfig, rng *rand.Rand) []int {
	minSize := max(2, int(31*cfg.Scale))
	sizes := make([]int, cfg.Communities)
	// Geometric progression of weights gives a few large and many small
	// communities, mimicking detected collaboration communities.
	weights := make([]float64, cfg.Communities)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / float64(i+1) // Zipf-ish
		wsum += weights[i]
	}
	totalUsers := int(3180 * cfg.Scale)
	remaining := totalUsers - minSize*cfg.Communities
	if remaining < 0 {
		remaining = 0
	}
	for i := range sizes {
		sizes[i] = minSize + int(float64(remaining)*weights[i]/wsum)
	}
	// Shuffle so community id does not correlate with size.
	rng.Shuffle(len(sizes), func(i, j int) { sizes[i], sizes[j] = sizes[j], sizes[i] })
	return sizes
}

// Synthetic generates the synthetic community workload. It builds a planted-
// partition collaboration graph (dense intra-community, sparse inter-
// community co-authorship), detects communities with greedy modularity
// (Newman 2004) as the paper did on the Arxiv graph, and derives strictly
// disjoint interests: a user likes exactly the items of her community.
func Synthetic(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	sizes := communitySizes(cfg, rng)
	var planted [][]int // community -> member users
	n := 0
	for _, s := range sizes {
		members := make([]int, s)
		for i := range members {
			members[i] = n + i
		}
		planted = append(planted, members)
		n += s
	}

	communities := planted
	if !cfg.SkipDetection {
		communities = detectCommunities(planted, n, rng)
	}

	// Keep communities of at least the planted minimum size; smaller
	// fragments (detection noise) are merged into the nearest community by
	// appending to the smallest kept one, so every user gets interests.
	minKeep := max(2, int(31*cfg.Scale)/2)
	var kept [][]int
	var leftovers []int
	for _, c := range communities {
		if len(c) >= minKeep {
			kept = append(kept, c)
		} else {
			leftovers = append(leftovers, c...)
		}
	}
	if len(kept) == 0 {
		kept = communities
		leftovers = nil
	}
	for i, u := range leftovers {
		kept[i%len(kept)] = append(kept[i%len(kept)], u)
	}

	totalItems := cfg.ItemsPerCommunity * len(kept)
	d := newDataset("synthetic", n, totalItems, cfg.Cycles, len(kept))
	k := 0
	for ci, members := range kept {
		for j := 0; j < cfg.ItemsPerCommunity; j++ {
			title := fmt.Sprintf("synthetic-%d-%d", ci, j)
			it := news.New(title, "community item", "arxiv://"+title, 0, 0)
			it.Community = ci
			cycle := spreadCycle(k, totalItems, cfg.Cycles)
			it.Created = cycle
			idx := d.addItem(it, cycle, ci)
			for _, u := range members {
				d.setLike(u, idx)
			}
			d.setSource(idx, news.NodeID(members[rng.Intn(len(members))]))
			k++
		}
	}
	d.finalize()
	return d
}

// detectCommunities builds the collaboration graph from the planted
// partition (intra-community co-authorship is dense, inter sparse) and runs
// greedy-modularity detection on it, returning the detected communities.
func detectCommunities(planted [][]int, n int, rng *rand.Rand) [][]int {
	g := graph.NewUndirected(n)
	for _, members := range planted {
		// ~4 intra edges per member keeps components connected and dense
		// enough for detection.
		for _, u := range members {
			for t := 0; t < 4; t++ {
				v := members[rng.Intn(len(members))]
				g.AddEdge(u, v)
			}
		}
	}
	// Sparse inter-community noise: ~5% of users get one random edge.
	for u := 0; u < n; u++ {
		if rng.Float64() < 0.05 {
			g.AddEdge(u, rng.Intn(n))
		}
	}
	return g.Communities()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
