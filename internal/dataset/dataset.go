// Package dataset provides the three workloads of the evaluation
// (paper Section IV-A, Table I): a synthetic trace with clearly separated
// interest communities derived from an Arxiv-style collaboration graph, a
// Digg-like trace with category interests and an explicit social network,
// and a survey-like trace with a dense complete rating matrix.
//
// The paper's original datasets are not redistributable; the generators
// reproduce their published statistics and the structural properties the
// evaluation depends on (see DESIGN.md, "Substitutions").
package dataset

import (
	"fmt"
	"math/bits"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

// Item is one news item of a workload with its publication schedule and
// ground-truth audience.
type Item struct {
	News       news.Item
	Index      int   // dense item index in the dataset
	Cycle      int64 // publication cycle
	Interested int   // number of users who like the item
}

// Dataset is a workload: a population of users, a schedule of items, and the
// like/dislike reaction of every user to every item.
type Dataset struct {
	Name   string
	Users  int
	Cycles int // experiment duration in gossip cycles
	Topics int // number of topics/categories (0 if not applicable)

	Items []Item

	// Social is the explicit follower graph (out-neighbours per user), only
	// present in the Digg workload; nil elsewhere.
	Social [][]news.NodeID

	likeBits []uint64 // Users × width bit matrix
	width    int      // uint64 words per user row
	index    map[news.ID]int
	topicOf  []int // item index -> topic (parallel to Items; -1 when topicless)
}

// newDataset allocates the bit matrix and index for users × items.
func newDataset(name string, users, items, cycles, topics int) *Dataset {
	width := (items + 63) / 64
	return &Dataset{
		Name:     name,
		Users:    users,
		Cycles:   cycles,
		Topics:   topics,
		likeBits: make([]uint64, users*width),
		width:    width,
		index:    make(map[news.ID]int, items),
		topicOf:  make([]int, 0, items),
	}
}

// addItem registers an item and returns its index. The caller sets likes
// afterwards and finally calls finalize.
func (d *Dataset) addItem(it news.Item, cycle int64, topic int) int {
	idx := len(d.Items)
	if _, dup := d.index[it.ID]; dup {
		panic(fmt.Sprintf("dataset %s: duplicate item id %s", d.Name, it.ID))
	}
	it.Topic = topic
	it.Source = news.NoNode // set by setSource or defaulted in finalize
	d.index[it.ID] = idx
	d.Items = append(d.Items, Item{News: it, Index: idx, Cycle: cycle})
	d.topicOf = append(d.topicOf, topic)
	return idx
}

// setSource assigns the publishing user of item idx.
func (d *Dataset) setSource(idx int, u news.NodeID) {
	d.Items[idx].News.Source = u
}

// setLike marks that user u likes item idx.
func (d *Dataset) setLike(u, idx int) {
	d.likeBits[u*d.width+idx/64] |= 1 << (idx % 64)
}

// finalize computes per-item interested counts and assigns sources: every
// item is published by one of its interested users (chosen by the caller
// beforehand via News.Source or defaulted here to the first liker).
func (d *Dataset) finalize() {
	for i := range d.Items {
		count := 0
		for u := 0; u < d.Users; u++ {
			if d.LikesIndex(u, i) {
				count++
				if d.Items[i].News.Source == news.NoNode {
					d.Items[i].News.Source = news.NodeID(u)
				}
			}
		}
		d.Items[i].Interested = count
		if d.Items[i].News.Source == news.NoNode && d.Users > 0 {
			d.Items[i].News.Source = 0 // orphan item: publish from node 0
		}
	}
}

// Blank returns a dataset of users with no trace items at all: the workload
// of a serving fleet, whose items arrive from ingestion sources while it
// runs instead of from a schedule. Pair it with live.Config.Opinions to give
// the population an interest model for those runtime items (the blank like
// matrix would dislike everything).
func Blank(users, cycles int) *Dataset {
	d := newDataset("blank", users, 0, cycles, 0)
	d.finalize()
	return d
}

// LikesIndex reports whether user u likes the item with dense index idx.
func (d *Dataset) LikesIndex(u, idx int) bool {
	if u < 0 || u >= d.Users || idx < 0 || idx >= len(d.Items) {
		return false
	}
	return d.likeBits[u*d.width+idx/64]&(1<<(idx%64)) != 0
}

// Likes reports whether user u likes the item with the given identifier.
// Unknown items are disliked.
func (d *Dataset) Likes(u news.NodeID, id news.ID) bool {
	idx, ok := d.index[id]
	if !ok {
		return false
	}
	return d.LikesIndex(int(u), idx)
}

// Opinions adapts the dataset to the protocol-facing interface.
func (d *Dataset) Opinions() core.Opinions {
	return core.OpinionFunc(d.Likes)
}

// ItemByID returns the dataset item with the given identifier.
func (d *Dataset) ItemByID(id news.ID) (Item, bool) {
	if idx, ok := d.index[id]; ok {
		return d.Items[idx], true
	}
	return Item{}, false
}

// InterestedUsers returns the users who like item idx.
func (d *Dataset) InterestedUsers(idx int) []news.NodeID {
	var out []news.NodeID
	for u := 0; u < d.Users; u++ {
		if d.LikesIndex(u, idx) {
			out = append(out, news.NodeID(u))
		}
	}
	return out
}

// UserInterestCount returns the number of items user u likes — the per-node
// recall denominator.
func (d *Dataset) UserInterestCount(u news.NodeID) int {
	row := d.likeBits[int(u)*d.width : (int(u)+1)*d.width]
	total := 0
	for _, w := range row {
		total += bits.OnesCount64(w)
	}
	return total
}

// Topic returns the topic of item idx (-1 when the workload has no topics).
func (d *Dataset) Topic(idx int) int {
	if idx < 0 || idx >= len(d.topicOf) {
		return -1
	}
	return d.topicOf[idx]
}

// Subscribers returns the users subscribed to a topic under the C-Pub/Sub
// model of Section IV-B: a user subscribes to a topic if she likes at least
// one item associated with it.
func (d *Dataset) Subscribers(topic int) []news.NodeID {
	var out []news.NodeID
	for u := 0; u < d.Users; u++ {
		for i := range d.Items {
			if d.topicOf[i] == topic && d.LikesIndex(u, i) {
				out = append(out, news.NodeID(u))
				break
			}
		}
	}
	return out
}

// FullProfiles builds, for every user, the complete-trace profile (opinion
// on every item, timestamps at the item's publication cycle). Used by the
// sociability analysis (Figure 11) and the centralized baseline.
func (d *Dataset) FullProfiles() []*profile.Profile {
	out := make([]*profile.Profile, d.Users)
	for u := 0; u < d.Users; u++ {
		p := profile.WithCapacity(len(d.Items))
		for i := range d.Items {
			score := 0.0
			if d.LikesIndex(u, i) {
				score = 1
			}
			p.Set(d.Items[i].News.ID, d.Items[i].Cycle, score)
		}
		out[u] = p
	}
	return out
}

// Summary renders the Table I row for this workload.
func (d *Dataset) Summary() string {
	return fmt.Sprintf("%-10s users=%-5d news=%-5d cycles=%d topics=%d",
		d.Name, d.Users, len(d.Items), d.Cycles, d.Topics)
}

// spreadCycle maps item k of total to a publication cycle in [1, cycles].
func spreadCycle(k, total, cycles int) int64 {
	if total <= 0 {
		return 1
	}
	c := 1 + k*cycles/total
	if c > cycles {
		c = cycles
	}
	return int64(c)
}

// WarmupCycles returns the length of the initial transient: one profile
// window (1/5 of the run). Items published during the transient are still
// disseminated and still feed profiles, but the quality metrics exclude
// them, measuring the steady state as the paper's long traces do.
func (d *Dataset) WarmupCycles() int64 {
	return int64(d.Cycles / 5)
}

// IsWarmup reports whether item idx is published during the transient.
func (d *Dataset) IsWarmup(idx int) bool {
	return d.Items[idx].Cycle <= d.WarmupCycles()
}
