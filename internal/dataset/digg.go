package dataset

import (
	"fmt"
	"math/rand"

	"whatsup/internal/news"
)

// DiggConfig parameterizes the Digg-like workload (Section IV-A). At Scale 1
// it matches Table I: 750 users, 2500 news items, 40 categories, plus an
// explicit directed follower graph for the cascading baseline.
type DiggConfig struct {
	Seed  int64
	Scale float64
	// Categories overrides the number of categories (default 40).
	Categories int
	// Cycles overrides the experiment length (default 65).
	Cycles int
	// FollowDegree is the average out-degree of the follower graph
	// (default 10).
	FollowDegree int
}

func (c DiggConfig) withDefaults() DiggConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Categories <= 0 {
		c.Categories = 40
	}
	if c.Cycles <= 0 {
		c.Cycles = 65
	}
	if c.FollowDegree <= 0 {
		c.FollowDegree = 5
	}
	return c
}

// Digg generates the Digg-like workload. Interests follow the paper's
// de-biasing procedure: each user is characterized by the categories of the
// items she generates, and likes all items of those categories. Category
// popularity is Zipf-distributed, so a few categories are mainstream and
// most are niche. The explicit follower graph is built by preferential
// attachment and is deliberately uncorrelated with categories, which is the
// property behind cascading's low recall (Table V).
func Digg(cfg DiggConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	users := max(10, int(750*cfg.Scale))
	items := max(20, int(2500*cfg.Scale))

	// Zipf over categories: s=1.2 gives a popular head and a long tail.
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Categories-1))

	// Each user "generates" items in 1..3 categories; those define her
	// interests. Keeping interest sets narrow relative to the 40 categories
	// is what makes the follower graph interest-agnostic: most followers of
	// a liker do not share the item's category, so cascades die out — the
	// effect behind cascading's low recall in Table V.
	userCats := make([]map[int]bool, users)
	for u := range userCats {
		userCats[u] = make(map[int]bool)
		k := 1 + rng.Intn(3)
		for len(userCats[u]) < k {
			userCats[u][int(zipf.Uint64())] = true
		}
	}

	d := newDataset("digg", users, items, cfg.Cycles, cfg.Categories)
	for k := 0; k < items; k++ {
		cat := int(zipf.Uint64())
		title := fmt.Sprintf("digg-%d", k)
		it := news.New(title, fmt.Sprintf("category %d", cat), "digg://"+title, 0, 0)
		it.Community = cat
		cycle := spreadCycle(k, items, cfg.Cycles)
		it.Created = cycle
		idx := d.addItem(it, cycle, cat)
		var interested []int
		for u := 0; u < users; u++ {
			if userCats[u][cat] {
				d.setLike(u, idx)
				interested = append(interested, u)
			}
		}
		if len(interested) > 0 {
			// The item is "generated" by one of the users of its category.
			d.setSource(idx, news.NodeID(interested[rng.Intn(len(interested))]))
		}
	}

	// Preferential-attachment follower graph (directed out-edges).
	d.Social = make([][]news.NodeID, users)
	degreeSum := 0
	inDegree := make([]int, users)
	pickTarget := func(u int) int {
		// Preferential attachment with uniform fallback.
		if degreeSum > 0 && rng.Float64() < 0.7 {
			r := rng.Intn(degreeSum)
			for v := 0; v < users; v++ {
				r -= inDegree[v]
				if r < 0 {
					return v
				}
			}
		}
		return rng.Intn(users)
	}
	for u := 0; u < users; u++ {
		want := 1 + rng.Intn(2*cfg.FollowDegree)
		seen := map[int]bool{u: true}
		for len(d.Social[u]) < want && len(seen) < users {
			v := pickTarget(u)
			if seen[v] {
				continue
			}
			seen[v] = true
			d.Social[u] = append(d.Social[u], news.NodeID(v))
			inDegree[v]++
			degreeSum++
		}
	}

	d.finalize()
	return d
}
