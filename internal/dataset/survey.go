package dataset

import (
	"fmt"
	"math/rand"

	"whatsup/internal/news"
)

// SurveyConfig parameterizes the survey-like workload (Section IV-A). At
// Scale 1 it matches Table I: 120 base users × 250 base items over a handful
// of RSS topics, replicated ×4 into 480 users and 1000 items. Every user
// rates every item, as in the paper's survey where all participants saw the
// same news list.
type SurveyConfig struct {
	Seed  int64
	Scale float64
	// Topics overrides the number of RSS topics (default 8: culture,
	// politics, people, sports, ...).
	Topics int
	// Replicas overrides the ×4 instance replication (default 4).
	Replicas int
	// Cycles overrides the experiment length (default 65).
	Cycles int
}

func (c SurveyConfig) withDefaults() SurveyConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Topics <= 0 {
		c.Topics = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 4
	}
	if c.Cycles <= 0 {
		c.Cycles = 65
	}
	return c
}

// Survey generates the survey-like workload: items carry one of a few
// topics; each base user has a per-topic affinity (a mixture of a couple of
// strong interests and background curiosity) and rates every item by a
// Bernoulli draw on the affinity. Base users and items are then replicated,
// reproducing the paper's ×4 scaling including its acknowledged bias (the
// replicas rate identically).
func Survey(cfg SurveyConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	baseUsers := max(5, int(120*cfg.Scale))
	baseItems := max(10, int(250*cfg.Scale))
	users := baseUsers * cfg.Replicas
	items := baseItems * cfg.Replicas

	// Per-user topic affinities: 2-3 favourite topics liked with high
	// probability, the rest with low background curiosity. The bimodal
	// shape mirrors the paper's survey, where participants reacted strongly
	// along topic lines (precision ≈0.5 at recall ≈0.8 is only achievable
	// with well-defined audiences).
	affinity := make([][]float64, baseUsers)
	for u := range affinity {
		affinity[u] = make([]float64, cfg.Topics)
		for t := range affinity[u] {
			affinity[u][t] = 0.02 + 0.05*rng.Float64() // background curiosity
		}
		favs := 2 + rng.Intn(2)
		for f := 0; f < favs; f++ {
			affinity[u][rng.Intn(cfg.Topics)] = 0.75 + 0.2*rng.Float64()
		}
	}

	// Base rating matrix: every base user rates every base item.
	itemTopic := make([]int, baseItems)
	baseLikes := make([][]bool, baseUsers)
	for u := range baseLikes {
		baseLikes[u] = make([]bool, baseItems)
	}
	for i := range itemTopic {
		itemTopic[i] = rng.Intn(cfg.Topics)
		for u := 0; u < baseUsers; u++ {
			baseLikes[u][i] = rng.Float64() < affinity[u][itemTopic[i]]
		}
	}

	d := newDataset("survey", users, items, cfg.Cycles, cfg.Topics)
	k := 0
	for rep := 0; rep < cfg.Replicas; rep++ {
		for i := 0; i < baseItems; i++ {
			title := fmt.Sprintf("survey-%d-%d", rep, i)
			it := news.New(title, fmt.Sprintf("topic %d", itemTopic[i]), "rss://"+title, 0, 0)
			it.Community = itemTopic[i]
			cycle := spreadCycle(k, items, cfg.Cycles)
			it.Created = cycle
			idx := d.addItem(it, cycle, itemTopic[i])
			var interested []int
			for ur := 0; ur < cfg.Replicas; ur++ {
				for u := 0; u < baseUsers; u++ {
					if baseLikes[u][i] {
						user := ur*baseUsers + u
						d.setLike(user, idx)
						interested = append(interested, user)
					}
				}
			}
			if len(interested) > 0 {
				d.setSource(idx, news.NodeID(interested[rng.Intn(len(interested))]))
			}
			k++
		}
	}
	d.finalize()
	return d
}
