package live

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"time"

	"whatsup/internal/faultnet"
	"whatsup/internal/news"
)

// TCPNet is the PlanetLab stand-in: nodes listen on real TCP loopback
// sockets and exchange length-prefixed binary frames (see codec.go). Each
// node has a bounded inbound queue; when the queue is full, incoming
// messages are dropped — the congestion behaviour of overloaded PlanetLab
// nodes, which the paper measured as up to 30% inbound loss at small fanouts
// (Section V-D). A configurable fraction of nodes is "overloaded" with much
// smaller queues.
//
// Connections are persistent and multiplexed: the first send to a
// destination dials it, and every later envelope for that destination is
// appended to the connection's pending buffer. A per-connection writer
// goroutine drains the buffer in batches — all envelopes queued for the same
// destination since the previous flush (typically a cycle tick's worth under
// load) leave in a single framed Write. Encode and batch buffers are
// recycled through a sync.Pool.
type TCPNet struct {
	mu         sync.Mutex
	addrs      map[news.NodeID]string
	boxes      map[news.NodeID]chan envelope
	listeners  map[news.NodeID]net.Listener
	conns      map[string]*outConn
	inbound    map[news.NodeID]map[net.Conn]struct{} // accepted conns per node, for teardown
	queueCap   int
	slowCap    int
	slowEvery  int // every n-th registered node is overloaded (0 = none)
	batch      time.Duration
	maxPending int
	registered int
	seed       int64
	policy     *faultnet.Policy
	clock      func() int64 // fleet cycle, for partition schedules
	links      map[uint64]*rand.Rand
	closed     bool
	wg         sync.WaitGroup
}

// outConn is one persistent outbound connection. Senders append encoded
// frames to pending and kick the writer; the writer swaps the buffer out
// under the lock and issues one Write per batch.
type outConn struct {
	c       net.Conn
	mu      sync.Mutex
	pending []byte        // encoded frames awaiting the next flush
	dead    bool          // a write failed; subsequent sends are dropped
	kick    chan struct{} // capacity 1: wake the writer
	quit    chan struct{} // closed on teardown: drain pending, then close
}

// take swaps the pending batch out, handing spare in as the new accumulation
// buffer, so writer and senders never copy frame bytes twice.
func (sc *outConn) take(spare []byte) []byte {
	sc.mu.Lock()
	p := sc.pending
	sc.pending = spare[:0]
	sc.mu.Unlock()
	return p
}

// TCPNetConfig tunes the PlanetLab model.
type TCPNetConfig struct {
	// QueueCap is the healthy node inbound queue capacity (default 1024).
	QueueCap int
	// SlowQueueCap is the overloaded node capacity (default 8).
	SlowQueueCap int
	// SlowEvery marks every n-th node as overloaded (default 4, ≈25% of the
	// fleet, reproducing the loss level the paper observed; 0 disables).
	SlowEvery int
	// BatchWindow is how long a connection's writer lingers after the first
	// queued envelope before flushing, so that all sends of one cycle tick
	// coalesce into a single framed write. 0 (the default) flushes
	// opportunistically: no added latency, while everything queued during an
	// in-flight write still departs as one batch.
	BatchWindow time.Duration
	// MaxPendingBytes bounds each connection's pending batch (default
	// 1 MiB). When a destination drains slower than senders enqueue, frames
	// beyond the bound are dropped — outbound congestion becomes loss, like
	// the inbound queue overflow, instead of unbounded sender memory. A
	// single frame larger than the bound is still accepted on an empty
	// buffer so oversized envelopes cannot wedge a connection.
	MaxPendingBytes int
	// Seed keys the per-link RNG streams a SetPolicy overlay draws loss and
	// jitter from (faultnet.LinkSeed), so two runs with the same seed inject
	// the same per-link fault decisions even over real sockets.
	Seed int64
}

// NewTCPNet builds a loopback TCP network.
func NewTCPNet(cfg TCPNetConfig) *TCPNet {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.SlowQueueCap <= 0 {
		cfg.SlowQueueCap = 8
	}
	if cfg.SlowEvery < 0 {
		cfg.SlowEvery = 0
	}
	if cfg.MaxPendingBytes <= 0 {
		cfg.MaxPendingBytes = 1 << 20
	}
	return &TCPNet{
		addrs:      make(map[news.NodeID]string),
		boxes:      make(map[news.NodeID]chan envelope),
		listeners:  make(map[news.NodeID]net.Listener),
		conns:      make(map[string]*outConn),
		inbound:    make(map[news.NodeID]map[net.Conn]struct{}),
		queueCap:   cfg.QueueCap,
		slowCap:    cfg.SlowQueueCap,
		slowEvery:  cfg.SlowEvery,
		batch:      cfg.BatchWindow,
		maxPending: cfg.MaxPendingBytes,
		seed:       cfg.Seed,
	}
}

// SetPolicy overlays per-link network conditions on the real-socket
// transport: cuts and losses drop at the sender boundary, base latency,
// jitter and bandwidth-cap serialization delay are injected as a wall-clock
// sleep before the frame joins the destination's write batch. clock supplies
// the fleet cycle for partition schedules (wire it to Runner.Cycle; it runs
// under the net's lock, so it must not call back into the net — an atomic
// load is fine). Call before the first Send; the policy must not be mutated
// afterwards.
func (t *TCPNet) SetPolicy(p *faultnet.Policy, clock func() int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.policy = p
	t.clock = clock
	t.links = make(map[uint64]*rand.Rand)
}

// linkRNG returns the per-link RNG stream, creating it on first use. Caller
// holds t.mu.
func (t *TCPNet) linkRNG(from, to news.NodeID) *rand.Rand {
	k := linkKey(from, to)
	r := t.links[k]
	if r == nil {
		r = rand.New(rand.NewSource(faultnet.LinkSeed(t.seed, from, to)))
		t.links[k] = r
	}
	return r
}

// Register implements Network: open a loopback listener for the node and
// start its accept/decode pump. Re-registering an id that was disconnected
// opens a fresh listener on a new address (a rejoining node).
func (t *TCPNet) Register(id news.NodeID) <-chan envelope {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic("live: cannot listen on loopback: " + err.Error())
	}
	// inConns tracks this registration's accepted connections so Disconnect
	// can kill the reader pumps; each registration generation has its own
	// set (readers of a torn-down generation remove themselves from the
	// detached set harmlessly).
	inConns := make(map[net.Conn]struct{})
	t.mu.Lock()
	t.registered++
	capacity := t.queueCap
	if t.slowEvery > 0 && t.registered%t.slowEvery == 0 {
		capacity = t.slowCap // an overloaded PlanetLab node
	}
	box := make(chan envelope, capacity)
	t.addrs[id] = ln.Addr().String()
	t.boxes[id] = box
	t.listeners[id] = ln
	t.inbound[id] = inConns
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			if t.closed || t.listeners[id] != ln {
				// Torn down between Accept and registration.
				t.mu.Unlock()
				conn.Close()
				continue
			}
			inConns[conn] = struct{}{}
			t.wg.Add(1)
			t.mu.Unlock()
			go func(conn net.Conn) {
				defer t.wg.Done()
				defer func() {
					t.mu.Lock()
					delete(inConns, conn)
					t.mu.Unlock()
					conn.Close()
				}()
				br := bufio.NewReaderSize(conn, 32<<10)
				for {
					env, err := readFrame(br)
					if err != nil {
						// Clean close, peer teardown, or a poisoned
						// stream (malformed frame): drop the connection;
						// the sender re-dials if it still cares.
						return
					}
					select {
					case box <- env:
					default:
						// Inbound queue full: the node is congested and the
						// message is lost, as on an overloaded testbed node.
					}
				}
			}(conn)
		}
	}()
	return box
}

// Disconnect implements Network: tear down one node's endpoints. A crash
// (graceful=false) discards pending outbound batches to the node and closes
// its connections immediately — in-flight frames drop as congestion, and the
// per-destination writer goroutine exits instead of blocking on a dead peer.
// A graceful leave flushes pending batches before closing, and leaves the
// node's reader pumps to exit with the flushing connection. Either way the
// id vanishes from the address table, so later sends drop without blocking,
// and the node's inbox channel is left open (never again written) for the
// departed node's goroutine to abandon.
func (t *TCPNet) Disconnect(id news.NodeID, graceful bool) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	addr, ok := t.addrs[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	delete(t.addrs, id)
	delete(t.boxes, id)
	ln := t.listeners[id]
	delete(t.listeners, id)
	sc := t.conns[addr]
	delete(t.conns, addr)
	inConns := t.inbound[id]
	delete(t.inbound, id)
	conns := make([]net.Conn, 0, len(inConns))
	for c := range inConns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	if ln != nil {
		ln.Close() // no new inbound connections
	}
	if sc != nil {
		if graceful {
			// The writer drains whatever senders queued, then closes; the
			// node's reader pump exits when the drained connection closes.
			close(sc.quit)
		} else {
			// Abrupt: discard pending, close the socket out from under any
			// in-flight Write so the writer unblocks with an error, and wake
			// the writer to observe quit.
			sc.mu.Lock()
			sc.dead = true
			sc.pending = nil
			sc.mu.Unlock()
			sc.c.Close()
			close(sc.quit)
		}
	}
	if !graceful {
		// Kill the reader pumps: frames already in flight are lost with the
		// crashed process.
		for _, c := range conns {
			c.Close()
		}
	}
}

// Send implements Network: append the encoded frame to the destination's
// persistent connection and wake its writer. Send never blocks on the
// network; a dead or unknown destination drops the envelope. A SetPolicy
// overlay is applied here, at the writer boundary: cut or lost links drop
// the envelope outright, and link latency (base + jitter + bandwidth-cap
// serialization) defers the enqueue by a real sleep on a tracked goroutine,
// so Close never abandons a delayed frame mid-flight.
func (t *TCPNet) Send(env envelope) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	var delay time.Duration
	if t.policy != nil {
		var cycle int64
		if t.clock != nil {
			cycle = t.clock()
		}
		ls := t.policy.Link(env.From, env.To, cycle)
		if ls.Cut {
			t.mu.Unlock()
			return
		}
		if ls.Loss > 0 || ls.Jitter > 0 {
			lr := t.linkRNG(env.From, env.To)
			if ls.Loss > 0 && lr.Float64() < ls.Loss {
				t.mu.Unlock()
				return
			}
			delay = ls.Delay(len(env.frame), lr.Float64())
		} else {
			delay = ls.Delay(len(env.frame), 0)
		}
	}
	addr, ok := t.addrs[env.To]
	sc := t.conns[addr] // steady state: one global lock hold per send
	delayed := ok && delay > 0
	if delayed {
		// Registered under the lock, next to the closed check: Close sets
		// closed before it waits, so wg.Add can never race wg.Wait.
		t.wg.Add(1)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if !delayed {
		t.enqueue(addr, sc, env)
		return
	}
	if env.frame != nil {
		// The caller reuses its frame buffer once Send returns; a delayed
		// envelope needs its own copy.
		frame := make([]byte, len(env.frame))
		copy(frame, env.frame)
		env.frame = frame
	}
	go func() {
		defer t.wg.Done()
		time.Sleep(delay)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		// Re-resolve: the destination may have departed or rejoined on a new
		// address while the frame was in flight.
		addr, ok := t.addrs[env.To]
		sc := t.conns[addr]
		t.mu.Unlock()
		if ok {
			t.enqueue(addr, sc, env)
		}
	}()
}

// enqueue appends the envelope to the destination connection's pending batch
// and wakes its writer, dialing on first use. sc may be nil (not yet dialed).
func (t *TCPNet) enqueue(addr string, sc *outConn, env envelope) {
	if sc == nil {
		if sc = t.conn(addr); sc == nil {
			return
		}
	}
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		return
	}
	before := len(sc.pending)
	if env.frame != nil {
		sc.pending = append(sc.pending, env.frame...)
	} else {
		sc.pending = appendFrame(sc.pending, env)
	}
	if len(sc.pending) > t.maxPending && before > 0 {
		// The destination drains slower than senders enqueue: outbound
		// congestion becomes loss, bounding sender-side memory the way the
		// old blocking writes bounded it with backpressure.
		sc.pending = sc.pending[:before]
	}
	sc.mu.Unlock()
	select {
	case sc.kick <- struct{}{}:
	default: // writer already signalled
	}
}

// conn returns the persistent connection for addr, dialing it on first use.
func (t *TCPNet) conn(addr string) *outConn {
	t.mu.Lock()
	if sc, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return sc
	}
	t.mu.Unlock()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil
	}
	sc := &outConn{c: c, kick: make(chan struct{}, 1), quit: make(chan struct{})}
	t.mu.Lock()
	if existing, ok := t.conns[addr]; ok { // lost a dial race
		t.mu.Unlock()
		c.Close()
		return existing
	}
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil
	}
	t.conns[addr] = sc
	t.wg.Add(1)
	t.mu.Unlock()
	go t.writeLoop(addr, sc)
	return sc
}

// writeLoop drains one connection's pending buffer, one Write per batch.
func (t *TCPNet) writeLoop(addr string, sc *outConn) {
	defer t.wg.Done()
	spare := getBuf()
	defer putBuf(spare)
	var timer *time.Timer
	if t.batch > 0 {
		timer = time.NewTimer(t.batch)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for {
		select {
		case <-sc.quit:
			t.drain(sc)
			return
		case <-sc.kick:
		}
		if timer != nil {
			// Linger for the batch window so the rest of the tick's sends
			// join this flush.
			timer.Reset(t.batch)
			select {
			case <-sc.quit:
				timer.Stop()
				t.drain(sc)
				return
			case <-timer.C:
			}
		}
		batch := sc.take(*spare)
		if len(batch) == 0 {
			*spare = batch
			continue
		}
		_, err := sc.c.Write(batch)
		*spare = batch[:0]
		if err != nil {
			t.dropConn(addr, sc)
			return
		}
	}
}

// drain performs the graceful-close flush: whatever senders queued before
// the teardown still leaves, bounded by a write deadline so Close cannot
// hang on a stalled peer, then the connection closes.
func (t *TCPNet) drain(sc *outConn) {
	sc.mu.Lock()
	pending := sc.pending
	sc.pending = nil
	sc.dead = true
	sc.mu.Unlock()
	if len(pending) > 0 {
		sc.c.SetWriteDeadline(time.Now().Add(time.Second))
		sc.c.Write(pending)
	}
	sc.c.Close()
}

// dropConn discards a connection whose write failed. Envelopes queued behind
// the failure are lost — message loss, exactly what the testbed model wants.
func (t *TCPNet) dropConn(addr string, sc *outConn) {
	t.mu.Lock()
	if t.conns[addr] == sc {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	sc.mu.Lock()
	sc.dead = true
	sc.pending = nil
	sc.mu.Unlock()
	sc.c.Close()
}

// Close implements Network: stop accepting sends, flush every connection's
// pending batch, tear down sockets and release the inbound queues.
func (t *TCPNet) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	boxes := t.boxes
	t.listeners = map[news.NodeID]net.Listener{}
	t.conns = map[string]*outConn{}
	t.boxes = map[news.NodeID]chan envelope{}
	t.mu.Unlock()
	for _, sc := range conns {
		close(sc.quit) // writer drains pending, then closes the socket
	}
	for _, ln := range listeners {
		ln.Close()
	}
	t.wg.Wait()
	for _, box := range boxes {
		close(box)
	}
}
