package live

import (
	"encoding/gob"
	"net"
	"sync"

	"whatsup/internal/news"
)

// TCPNet is the PlanetLab stand-in: nodes listen on real TCP loopback
// sockets and exchange gob-encoded envelopes. Each node has a bounded
// inbound queue; when the queue is full, incoming messages are dropped —
// the congestion behaviour of overloaded PlanetLab nodes, which the paper
// measured as up to 30% inbound loss at small fanouts (Section V-D). A
// configurable fraction of nodes is "overloaded" with much smaller queues.
type TCPNet struct {
	mu         sync.Mutex
	addrs      map[news.NodeID]string
	boxes      map[news.NodeID]chan envelope
	listeners  map[news.NodeID]net.Listener
	conns      map[string]*sendConn
	queueCap   int
	slowCap    int
	slowEvery  int // every n-th registered node is overloaded (0 = none)
	registered int
	closed     bool
	wg         sync.WaitGroup
}

type sendConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

// TCPNetConfig tunes the PlanetLab model.
type TCPNetConfig struct {
	// QueueCap is the healthy node inbound queue capacity (default 1024).
	QueueCap int
	// SlowQueueCap is the overloaded node capacity (default 8).
	SlowQueueCap int
	// SlowEvery marks every n-th node as overloaded (default 4, ≈25% of the
	// fleet, reproducing the loss level the paper observed; 0 disables).
	SlowEvery int
}

// NewTCPNet builds a loopback TCP network.
func NewTCPNet(cfg TCPNetConfig) *TCPNet {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.SlowQueueCap <= 0 {
		cfg.SlowQueueCap = 8
	}
	if cfg.SlowEvery < 0 {
		cfg.SlowEvery = 0
	}
	return &TCPNet{
		addrs:     make(map[news.NodeID]string),
		boxes:     make(map[news.NodeID]chan envelope),
		listeners: make(map[news.NodeID]net.Listener),
		conns:     make(map[string]*sendConn),
		queueCap:  cfg.QueueCap,
		slowCap:   cfg.SlowQueueCap,
		slowEvery: cfg.SlowEvery,
	}
}

// Register implements Network: open a loopback listener for the node and
// start its accept/decode pump.
func (t *TCPNet) Register(id news.NodeID) <-chan envelope {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic("live: cannot listen on loopback: " + err.Error())
	}
	t.mu.Lock()
	t.registered++
	capacity := t.queueCap
	if t.slowEvery > 0 && t.registered%t.slowEvery == 0 {
		capacity = t.slowCap // an overloaded PlanetLab node
	}
	box := make(chan envelope, capacity)
	t.addrs[id] = ln.Addr().String()
	t.boxes[id] = box
	t.listeners[id] = ln
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.wg.Add(1)
			go func(conn net.Conn) {
				defer t.wg.Done()
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				for {
					var env envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					select {
					case box <- env:
					default:
						// Inbound queue full: the node is congested and the
						// message is lost, as on an overloaded testbed node.
					}
				}
			}(conn)
		}
	}()
	return box
}

// Send implements Network: lazily dial a persistent connection to the
// destination and stream gob envelopes over it.
func (t *TCPNet) Send(env envelope) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	addr, ok := t.addrs[env.To]
	t.mu.Unlock()
	if !ok {
		return
	}
	sc := t.conn(addr)
	if sc == nil {
		return
	}
	sc.mu.Lock()
	err := sc.enc.Encode(env)
	sc.mu.Unlock()
	if err != nil {
		t.dropConn(addr, sc)
	}
}

func (t *TCPNet) conn(addr string) *sendConn {
	t.mu.Lock()
	if sc, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return sc
	}
	t.mu.Unlock()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil
	}
	sc := &sendConn{enc: gob.NewEncoder(c), c: c}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.conns[addr]; ok {
		c.Close()
		return existing
	}
	if t.closed {
		c.Close()
		return nil
	}
	t.conns[addr] = sc
	return sc
}

func (t *TCPNet) dropConn(addr string, sc *sendConn) {
	t.mu.Lock()
	if t.conns[addr] == sc {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	sc.c.Close()
}

// Close implements Network.
func (t *TCPNet) Close() {
	t.mu.Lock()
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	boxes := t.boxes
	t.listeners = map[news.NodeID]net.Listener{}
	t.conns = map[string]*sendConn{}
	t.boxes = map[news.NodeID]chan envelope{}
	t.mu.Unlock()
	for _, sc := range conns {
		sc.c.Close()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	t.wg.Wait()
	for _, box := range boxes {
		close(box)
	}
}
