package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/wire"
)

// Envelope wire layout, shared by ChannelNet and TCPNet:
//
//	byte    kind (wireRPSRequest … wireRefillReply)
//	varint  from node, to node (zigzag)
//	payload wireItem:    BEEP message (core.ItemMessage.AppendWire)
//	        other kinds: descriptor list (overlay.AppendDescriptors) then
//	                     tombstone list (overlay.AppendTombstones) — the
//	                     departure notices piggybacked on gossip
//
// On a stream transport each envelope travels as one *frame*: a uvarint
// payload length followed by the payload. Frames are self-delimiting, so a
// batched write — several frames coalesced into one Write call — needs no
// extra structure on the read side.

// maxFramePayload bounds a declared frame length. The largest legitimate
// envelope is a gossip push of tens of descriptors, far below this; anything
// bigger means a corrupt or hostile stream and poisons the connection.
const maxFramePayload = 1 << 22 // 4 MiB

// bufPool recycles codec scratch buffers across sends, receives and size
// accounting. Buffers are kept pointer-wrapped so Put does not allocate.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// appendEnvelope appends the wire encoding of e to buf.
func appendEnvelope(buf []byte, e envelope) []byte {
	buf = append(buf, byte(e.Kind))
	buf = wire.AppendInt(buf, int64(e.From))
	buf = wire.AppendInt(buf, int64(e.To))
	if e.Kind == wireItem {
		return e.Item.AppendWire(buf)
	}
	buf = overlay.AppendDescriptors(buf, e.Descs)
	return overlay.AppendTombstones(buf, e.Tombs)
}

// decodeEnvelope decodes one envelope from the front of data.
func decodeEnvelope(data []byte) (envelope, []byte, error) {
	var e envelope
	if len(data) == 0 {
		return e, data, fmt.Errorf("envelope kind: %w", wire.ErrTruncated)
	}
	if data[0] > byte(wireRefillReply) {
		return e, data, fmt.Errorf("%w: unknown envelope kind %d", wire.ErrMalformed, data[0])
	}
	e.Kind = wireKind(data[0])
	rest := data[1:]
	from, rest, err := wire.Int(rest)
	if err != nil {
		return e, data, fmt.Errorf("envelope from: %w", err)
	}
	to, rest, err := wire.Int(rest)
	if err != nil {
		return e, data, fmt.Errorf("envelope to: %w", err)
	}
	if !news.ValidNodeID(from) || !news.ValidNodeID(to) {
		return e, data, fmt.Errorf("%w: envelope node ids (%d→%d) out of range", wire.ErrMalformed, from, to)
	}
	e.From, e.To = news.NodeID(from), news.NodeID(to)
	if e.Kind == wireItem {
		e.Item, rest, err = core.DecodeItemMessage(rest)
	} else {
		if e.Descs, rest, err = overlay.DecodeDescriptors(rest); err == nil {
			e.Tombs, rest, err = overlay.DecodeTombstones(rest)
		}
	}
	if err != nil {
		return e, data, err
	}
	return e, rest, nil
}

// appendFrame appends the framed encoding of e — uvarint payload length then
// payload — to buf. This is the exact byte sequence a stream transport
// writes, and its length is what bandwidth accounting reports.
func appendFrame(buf []byte, e envelope) []byte {
	scratch := getBuf()
	payload := appendEnvelope(*scratch, e)
	buf = wire.AppendUint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	*scratch = payload[:0]
	putBuf(scratch)
	return buf
}

// decodeFrame decodes one complete framed envelope from a byte slice,
// rejecting length mismatches and trailing bytes.
func decodeFrame(frame []byte) (envelope, error) {
	n, payload, err := wire.Uint(frame)
	if err != nil {
		return envelope{}, fmt.Errorf("frame length: %w", err)
	}
	if n != uint64(len(payload)) {
		return envelope{}, fmt.Errorf("%w: frame declares %d bytes, holds %d", wire.ErrMalformed, n, len(payload))
	}
	env, rest, err := decodeEnvelope(payload)
	if err != nil {
		return envelope{}, err
	}
	if len(rest) != 0 {
		return envelope{}, fmt.Errorf("%w: %d trailing bytes in frame", wire.ErrMalformed, len(rest))
	}
	return env, nil
}

// readFrame reads one framed envelope from a buffered stream. io.EOF is
// returned verbatim on a clean boundary so pumps can distinguish an orderly
// close from a mid-frame cut.
func readFrame(br *bufio.Reader) (envelope, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return envelope{}, err
	}
	if n > maxFramePayload {
		return envelope{}, fmt.Errorf("%w: frame of %d bytes exceeds limit", wire.ErrMalformed, n)
	}
	scratch := getBuf()
	defer putBuf(scratch)
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return envelope{}, err
	}
	env, rest, err := decodeEnvelope(payload)
	if err != nil {
		return envelope{}, err
	}
	if len(rest) != 0 {
		return envelope{}, fmt.Errorf("%w: %d trailing bytes in frame", wire.ErrMalformed, len(rest))
	}
	return env, nil
}
