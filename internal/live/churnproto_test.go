package live

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// churnProtoRunner builds a live fleet with the churn protocol knobs set.
// DescriptorTTL stays 0 unless the caller sets it, so in the notice tests
// the departure frames are the only mechanism that can evict a leaver.
func churnProtoRunner(seed int64, cycles int, nodeCfg core.Config, cfg func(*Config),
	schedule sim.ChurnSchedule, network Network) *Runner {
	ds := tinySurvey(seed)
	op := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return ds.Likes(news.NodeID(int(node)%ds.Users), item)
	})
	c := Config{
		Seed:        seed,
		Cycles:      cycles,
		CycleLength: 5 * time.Millisecond,
		NodeConfig:  nodeCfg,
		Churn:       schedule,
		NewNode: func(id news.NodeID, rng *rand.Rand) *core.Node {
			return core.NewNode(id, "", nodeCfg, op, rng)
		},
	}
	if cfg != nil {
		cfg(&c)
	}
	return NewRunner(c, ds, network)
}

// TestLiveDepartureNoticesChannelNet is the live half of the tentpole
// property: with DescriptorTTL disabled — so TTL eviction cannot explain
// anything — a graceful leaver's departure frames must scrub it from every
// online view, while the same world without notices keeps ghost descriptors
// to the end of the run.
func TestLiveDepartureNoticesChannelNet(t *testing.T) {
	base := runtime.NumGoroutine()
	const cycles, leaveAt = 22, 10
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 60}
	var schedule sim.ChurnSchedule
	schedule.Add(leaveAt, sim.ChurnLeave, 3)

	run := func(notices bool, seed int64) *Runner {
		r := churnProtoRunner(seed, cycles, nodeCfg, func(c *Config) {
			c.DepartureNotices = notices
		}, schedule, NewChannelNet(seed, 0, 0))
		r.Run()
		return r
	}

	r := run(true, 21)
	if st, _ := r.State(3); st != sim.Departed {
		t.Fatalf("leaver state %v, want departed", st)
	}
	if r.Collector().Messages(metrics.MsgDeparture) == 0 {
		t.Fatal("graceful leave must emit departure frames")
	}
	if gf := r.GhostFraction(); gf != 0 {
		t.Fatalf("departure notices left ghost fraction %v with TTL eviction disabled", gf)
	}

	ghost := run(false, 21)
	if gf := ghost.GhostFraction(); gf == 0 {
		t.Fatal("without notices and without a TTL the leaver should still haunt online views")
	}
	if ghost.Collector().Messages(metrics.MsgDeparture) != 0 {
		t.Fatal("departure frames must be off by default")
	}
	waitGoroutinesBelow(t, base+2)
}

// TestLiveDepartureNoticesTCPNet repeats the graceful-leave scrub over real
// loopback sockets: the final flush must deliver the departure frames sent
// just before the leaver's endpoints close.
func TestLiveDepartureNoticesTCPNet(t *testing.T) {
	base := runtime.NumGoroutine()
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 60}
	var schedule sim.ChurnSchedule
	schedule.Add(8, sim.ChurnLeave, 2)

	r := churnProtoRunner(22, 20, nodeCfg, func(c *Config) {
		c.DepartureNotices = true
		c.CycleLength = 8 * time.Millisecond
	}, schedule, NewTCPNet(TCPNetConfig{SlowEvery: 0}))
	r.Run()

	if st, _ := r.State(2); st != sim.Departed {
		t.Fatalf("leaver state %v, want departed", st)
	}
	if r.Collector().Messages(metrics.MsgDeparture) == 0 {
		t.Fatal("departure frames must survive the graceful transport flush")
	}
	if gf := r.GhostFraction(); gf != 0 {
		t.Fatalf("ghost fraction %v after a noticed leave with TTL disabled", gf)
	}
	waitGoroutinesBelow(t, base+2)
}

// TestLiveCrashStillHealsViaTTL: a crash is not graceful, so even with the
// v2 protocol fully enabled no departure frame fires, and the stale
// descriptors age out through the DescriptorTTL path exactly as before.
func TestLiveCrashStillHealsViaTTL(t *testing.T) {
	const ttl = 5
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 60, DescriptorTTL: ttl}
	var schedule sim.ChurnSchedule
	schedule.Add(6, sim.ChurnCrash, 4) // never rejoins

	r := churnProtoRunner(23, 25, nodeCfg, func(c *Config) {
		c.DepartureNotices = true
		c.RefillWatermark = 0.5
	}, schedule, NewChannelNet(23, 0, 0))
	r.Run()

	if st, _ := r.State(4); st != sim.Offline {
		t.Fatalf("crashed node state %v, want offline", st)
	}
	if got := r.Collector().Messages(metrics.MsgDeparture); got != 0 {
		t.Fatalf("a crash must not emit departure frames, saw %d", got)
	}
	if gf := r.GhostFraction(); gf != 0 {
		t.Fatalf("TTL eviction did not heal the views after a crash: ghost fraction %v", gf)
	}
}

// TestLiveRefillAndTimeline drains the fleet's views with a burst of crashes
// under a short TTL, and asserts that (a) the watermark triggers refill
// request/reply traffic, and (b) the per-cycle timeline the controller
// samples is well-formed: cycles strictly increasing, fills in [0,1], and
// the online counts tracking the crashes.
func TestLiveRefillAndTimeline(t *testing.T) {
	const cycles, crashAt, crashes = 28, 8, 10
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 60, DescriptorTTL: 4}
	var schedule sim.ChurnSchedule
	for i := 0; i < crashes; i++ {
		schedule.Add(crashAt, sim.ChurnCrash, news.NodeID(i*2))
	}

	r := churnProtoRunner(24, cycles, nodeCfg, func(c *Config) {
		c.RefillWatermark = 0.7
		c.Timeline = true
	}, schedule, NewChannelNet(24, 0, 0))
	r.Run()

	col := r.Collector()
	if col.Messages(metrics.MsgRefillRequest) == 0 || col.Messages(metrics.MsgRefillReply) == 0 {
		t.Fatalf("refill traffic not recorded: %d requests, %d replies",
			col.Messages(metrics.MsgRefillRequest), col.Messages(metrics.MsgRefillReply))
	}

	tl := r.Timeline()
	if len(tl) == 0 {
		t.Fatal("Timeline enabled but no samples recorded")
	}
	sawCrashDip := false
	for i, s := range tl {
		if i > 0 && s.Cycle <= tl[i-1].Cycle {
			t.Fatalf("timeline cycles not increasing: %d then %d", tl[i-1].Cycle, s.Cycle)
		}
		if s.RPSFill < 0 || s.RPSFill > 1 || s.WUPFill < 0 || s.WUPFill > 1 {
			t.Fatalf("cycle %d: view fills out of range: rps=%v wup=%v", s.Cycle, s.RPSFill, s.WUPFill)
		}
		if s.GhostFraction < 0 || s.GhostFraction > 1 {
			t.Fatalf("cycle %d: ghost fraction out of range: %v", s.Cycle, s.GhostFraction)
		}
		if s.Online > s.Members {
			t.Fatalf("cycle %d: online %d exceeds members %d", s.Cycle, s.Online, s.Members)
		}
		if s.Cycle > crashAt && s.Online == s.Members-crashes {
			sawCrashDip = true
		}
	}
	if !sawCrashDip {
		t.Fatalf("timeline never showed the crash dip; last sample %+v", tl[len(tl)-1])
	}
	end := tl[len(tl)-1]
	if end.Online != r.OnlineCount() {
		t.Fatalf("final timeline sample online=%d, runner reports %d", end.Online, r.OnlineCount())
	}
}
