package live

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"strings"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

// repProfile builds a profile with n entries whose ids are realistic 8-byte
// content hashes (not small integers), the worst case for delta packing.
func repProfile(n int, salt int) *profile.Profile {
	p := profile.New()
	for i := 0; i < n; i++ {
		id := news.Hash(fmt.Sprintf("item-%d-%d", salt, i), "d", "l")
		p.Set(id, int64(1+i%25), float64(i%2))
	}
	return p
}

// repGossip is the representative gossip envelope of the paper's setting: an
// RPS-view-sized push (10 descriptors) whose profiles hold a full 25-cycle
// window of opinions.
func repGossip() envelope {
	var descs []overlay.Descriptor
	for i := 0; i < 10; i++ {
		descs = append(descs, overlay.Descriptor{
			Node:    news.NodeID(i + 1),
			Addr:    "127.0.0.1:40000",
			Stamp:   int64(20 + i),
			Profile: repProfile(25, i),
		})
	}
	return envelope{Kind: wireWUPRequest, From: 42, To: 7, Descs: descs}
}

// repItem is a representative BEEP envelope: a headline-sized item carrying
// an item profile accumulated along a few hops.
func repItem() envelope {
	return envelope{Kind: wireItem, From: 42, To: 7, Item: core.ItemMessage{
		Item:     news.New("An example headline of usual length", "one line of description text", "https://news.example.org/story/12345", 21, 42),
		Profile:  repProfile(12, 99),
		Dislikes: 1,
		Hops:     3,
	}}
}

func envelopesEqual(a, b envelope) bool {
	if a.Kind != b.Kind || a.From != b.From || a.To != b.To {
		return false
	}
	if len(a.Tombs) != len(b.Tombs) {
		return false
	}
	for i := range a.Tombs {
		if a.Tombs[i] != b.Tombs[i] {
			return false
		}
	}
	if len(a.Descs) != len(b.Descs) {
		return false
	}
	for i := range a.Descs {
		x, y := a.Descs[i], b.Descs[i]
		if x.Node != y.Node || x.Addr != y.Addr || x.Stamp != y.Stamp {
			return false
		}
		if (x.Profile == nil) != (y.Profile == nil) {
			return false
		}
		if x.Profile != nil && !x.Profile.Equal(y.Profile) {
			return false
		}
	}
	if a.Item.Item != b.Item.Item || a.Item.Dislikes != b.Item.Dislikes ||
		a.Item.Hops != b.Item.Hops || a.Item.ViaDislike != b.Item.ViaDislike {
		return false
	}
	if (a.Item.Profile == nil) != (b.Item.Profile == nil) {
		return false
	}
	if a.Item.Profile != nil && !a.Item.Profile.Equal(b.Item.Profile) {
		return false
	}
	return true
}

func roundTripCases() map[string]envelope {
	longAddr := strings.Repeat("node.example.planetlab.org:", 9) + "65535"
	maxDescs := make([]overlay.Descriptor, 64)
	for i := range maxDescs {
		maxDescs[i] = overlay.Descriptor{Node: news.NodeID(i), Addr: longAddr, Stamp: int64(i), Profile: repProfile(100, i)}
	}
	return map[string]envelope{
		"gossip":               repGossip(),
		"item":                 repItem(),
		"rps-request":          {Kind: wireRPSRequest, From: 1, To: 2, Descs: []overlay.Descriptor{{Node: 3, Stamp: 4, Profile: profile.New()}}},
		"rps-reply-empty":      {Kind: wireRPSReply, From: 2, To: 1},
		"wup-reply-nil-prof":   {Kind: wireWUPReply, From: 5, To: 6, Descs: []overlay.Descriptor{{Node: 9, Stamp: -1}}},
		"empty-profiles":       {Kind: wireWUPRequest, From: 0, To: 1, Descs: []overlay.Descriptor{{Node: 2, Profile: profile.New()}, {Node: 3, Profile: profile.New()}}},
		"max-length-descs":     {Kind: wireWUPRequest, From: 1, To: 2, Descs: maxDescs},
		"item-without-profile": {Kind: wireItem, From: news.NoNode, To: 0, Item: core.ItemMessage{Item: news.New("t", "", "", 0, news.NoNode)}},
		"departure":            {Kind: wireDeparture, From: 4, To: 5, Tombs: []overlay.Tombstone{{Node: 4, Stamp: 17}}},
		"gossip-with-tombs":    {Kind: wireRPSRequest, From: 1, To: 2, Descs: []overlay.Descriptor{{Node: 3, Stamp: 4}}, Tombs: []overlay.Tombstone{{Node: 6, Stamp: 15}, {Node: 7, Stamp: 16}}},
		"refill-request":       {Kind: wireRefillRequest, From: 8, To: 9, Descs: []overlay.Descriptor{{Node: 8, Stamp: 21, Profile: repProfile(5, 3)}}},
		"refill-reply":         {Kind: wireRefillReply, From: 9, To: 8, Descs: []overlay.Descriptor{{Node: 9, Stamp: 21}, {Node: 11, Stamp: 19}}},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for name, env := range roundTripCases() {
		enc := appendEnvelope(nil, env)
		got, rest, err := decodeEnvelope(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%s: decode err=%v rest=%d", name, err, len(rest))
		}
		if !envelopesEqual(got, env) {
			t.Fatalf("%s: round trip mismatch\n got %+v\nwant %+v", name, got, env)
		}
	}
}

func TestEnvelopeTruncatedPrefixes(t *testing.T) {
	for name, env := range map[string]envelope{"gossip": repGossip(), "item": repItem()} {
		enc := appendEnvelope(nil, env)
		for i := 0; i < len(enc); i++ {
			if _, _, err := decodeEnvelope(enc[:i]); err == nil {
				t.Fatalf("%s: prefix %d/%d must not decode", name, i, len(enc))
			}
		}
	}
}

func TestDecodeEnvelopeRejectsUnknownKind(t *testing.T) {
	if _, _, err := decodeEnvelope([]byte{99, 0, 0, 0}); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
}

// TestEnvelopeSizeIsEncodedLength pins the accounting contract: size() is
// the exact framed byte count, not an estimate.
func TestEnvelopeSizeIsEncodedLength(t *testing.T) {
	for name, env := range roundTripCases() {
		if got, want := env.size(), len(appendFrame(nil, env)); got != want {
			t.Fatalf("%s: size()=%d, frame=%dB", name, got, want)
		}
	}
}

// TestEncodedSizeRegression pins the encoded sizes of the representative
// envelopes. A change here is a wire-format change: it invalidates recorded
// bandwidth baselines, so it must be deliberate.
func TestEncodedSizeRegression(t *testing.T) {
	for _, tc := range []struct {
		name string
		env  envelope
		want int
	}{
		// Gossip frames grew one byte in the churn-protocol-v2 format: every
		// non-item envelope now ends with a tombstone list (uvarint count, 0
		// when no departures are in flight). Item frames are unchanged.
		{"gossip-10x25", repGossip(), 2931},
		{"item-12", repItem(), 246},
		{"empty-rps-reply", envelope{Kind: wireRPSReply, From: 2, To: 1}, 6},
		{"departure-1", envelope{Kind: wireDeparture, From: 2, To: 1, Tombs: []overlay.Tombstone{{Node: 2, Stamp: 17}}}, 8},
	} {
		got := len(appendFrame(nil, tc.env))
		if got != tc.want {
			t.Fatalf("%s: frame=%dB, pinned %dB", tc.name, got, tc.want)
		}
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream bytes.Buffer
	envs := []envelope{repGossip(), repItem(), {Kind: wireRPSReply, From: 1, To: 2}}
	var batch []byte
	for _, env := range envs {
		batch = appendFrame(batch, env) // coalesced, as a batched write would
	}
	stream.Write(batch)
	br := bufio.NewReader(&stream)
	for i, want := range envs {
		got, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !envelopesEqual(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("clean end must be io.EOF, got %v", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Truncated mid-payload.
	enc := appendFrame(nil, repItem())
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(enc[:len(enc)/2]))); err == nil {
		t.Fatal("truncated frame must error")
	}
	// Oversized declared length.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame must error")
	}
	// Trailing garbage inside a frame.
	payload := appendEnvelope(nil, envelope{Kind: wireRPSReply, From: 1, To: 2})
	payload = append(payload, 0xAB)
	var framed []byte
	framed = append(framed, byte(len(payload)))
	framed = append(framed, payload...)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(framed))); err == nil {
		t.Fatal("trailing bytes in frame must error")
	}
}

// FuzzEnvelopeRoundTrip feeds arbitrary bytes to the decoder (it must never
// panic) and checks that whatever decodes re-encodes to the same envelope —
// the codec is stable even for non-canonical varint inputs.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	for _, env := range roundTripCases() {
		f.Add(appendEnvelope(nil, env))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, rest, err := decodeEnvelope(data)
		if err != nil {
			return
		}
		_ = rest
		enc := appendEnvelope(nil, env)
		again, rest2, err := decodeEnvelope(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded envelope failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded envelope left %d trailing bytes", len(rest2))
		}
		if !envelopesEqual(env, again) {
			t.Fatalf("unstable round trip:\n first %+v\nsecond %+v", env, again)
		}
	})
}

// countingWriter measures steady-state gob output without buffering it.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// gobBytesSteadyState reports the average per-envelope gob size on a
// long-lived stream (type descriptors amortized), which is exactly what the
// previous gob transport put on the wire per message.
func gobBytesSteadyState(env envelope, n int) float64 {
	var w countingWriter
	enc := gob.NewEncoder(&w)
	if err := enc.Encode(env); err != nil { // first message carries type info
		panic(err)
	}
	base := w.n
	for i := 0; i < n; i++ {
		if err := enc.Encode(env); err != nil {
			panic(err)
		}
	}
	return float64(w.n-base) / float64(n)
}

// TestBinaryCodecBeatsGob enforces the headline claim: the binary frame of
// the representative gossip envelope is at least 2× smaller than its gob
// encoding, even granting gob its amortized steady state. BEEP item frames
// are dominated by incompressible headline text, so they get a weaker (but
// still strict) 1.5× bound.
func TestBinaryCodecBeatsGob(t *testing.T) {
	for _, tc := range []struct {
		name   string
		env    envelope
		factor float64
	}{
		{"gossip", repGossip(), 2},
		{"item", repItem(), 1.5},
	} {
		bin := len(appendFrame(nil, tc.env))
		gobAvg := gobBytesSteadyState(tc.env, 16)
		t.Logf("%s: binary=%dB gob=%.0fB (%.2fx)", tc.name, bin, gobAvg, gobAvg/float64(bin))
		if float64(bin)*tc.factor > gobAvg {
			t.Fatalf("%s: binary frame %dB not %.1fx smaller than gob %.0fB", tc.name, bin, tc.factor, gobAvg)
		}
	}
}

// BenchmarkWireCodec tracks the codec's cost and size: bytes/op ("wire-B")
// for the binary frame vs the gob steady state, plus encode and decode
// throughput for the representative gossip envelope.
func BenchmarkWireCodec(b *testing.B) {
	env := repGossip()
	b.Run("binary-encode", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = appendFrame(buf[:0], env)
		}
		b.ReportMetric(float64(len(buf)), "wire-B")
		b.SetBytes(int64(len(buf)))
	})
	b.Run("binary-decode", func(b *testing.B) {
		enc := appendEnvelope(nil, env)
		b.SetBytes(int64(len(enc)))
		for i := 0; i < b.N; i++ {
			if _, _, err := decodeEnvelope(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob-encode", func(b *testing.B) {
		var w countingWriter
		enc := gob.NewEncoder(&w)
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
		base := w.n
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(env); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(w.n-base)/float64(b.N), "wire-B")
	})
}
