package live

import (
	"net"
	"runtime"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/profile"
)

func testItemEnvelope(i int, to news.NodeID) envelope {
	it := news.New("t", "d", "l", int64(i), 0)
	p := profile.New()
	p.Set(news.ID(i), int64(i), 1)
	return envelope{Kind: wireItem, From: 0, To: to, Item: core.ItemMessage{Item: it, Profile: p}}
}

// drainBox empties a (possibly closed) inbox and counts the envelopes.
func drainBox(box <-chan envelope) int {
	got := 0
	for {
		select {
		case _, ok := <-box:
			if !ok {
				return got
			}
			got++
		default:
			return got
		}
	}
}

// TestTCPNetCloseDrainsPending pins the graceful-close contract: envelopes
// queued before Close still reach the destination — the teardown flushes
// every connection's pending batch instead of discarding it.
func TestTCPNetCloseDrainsPending(t *testing.T) {
	const n = 50
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0})
	box := tn.Register(1)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(i, 1))
	}
	tn.Close() // waits for writers to drain and pumps to exit
	if got := drainBox(box); got != n {
		t.Fatalf("drain delivered %d/%d envelopes", got, n)
	}
}

// TestTCPNetBatchWindowDelivers exercises the explicit batching mode: with a
// lingering batch window, a burst still arrives completely (in coalesced
// writes) once the window elapses.
func TestTCPNetBatchWindowDelivers(t *testing.T) {
	const n = 20
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0, BatchWindow: 5 * time.Millisecond})
	box := tn.Register(1)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(i, 1))
	}
	tn.Close()
	if got := drainBox(box); got != n {
		t.Fatalf("batched burst delivered %d/%d envelopes", got, n)
	}
}

// TestTCPNetPendingCapDropsOverflow pins the sender-side congestion model:
// while the writer lingers in a long batch window, a burst beyond the
// pending-buffer bound is dropped instead of growing memory without limit.
func TestTCPNetPendingCapDropsOverflow(t *testing.T) {
	const n = 50
	frameLen := len(appendFrame(nil, testItemEnvelope(0, 1)))
	tn := NewTCPNet(TCPNetConfig{
		SlowEvery:       0,
		BatchWindow:     200 * time.Millisecond, // hold the writer so pending accumulates
		MaxPendingBytes: 3 * frameLen,
	})
	box := tn.Register(1)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(0, 1)) // identical envelopes: equal frame sizes
	}
	tn.Close()
	got := drainBox(box)
	if got == 0 {
		t.Fatal("some envelopes must survive the cap")
	}
	if got > 3 {
		t.Fatalf("pending cap of 3 frames delivered %d/%d envelopes", got, n)
	}
}

// pollDrain drains the box until it has seen want envelopes or the deadline
// passes, returning the count.
func pollDrain(box <-chan envelope, want int, deadline time.Duration) int {
	got := 0
	timeout := time.After(deadline)
	for got < want {
		select {
		case _, ok := <-box:
			if !ok {
				return got
			}
			got++
		case <-timeout:
			return got
		}
	}
	return got
}

// TestTCPNetDisconnectGracefulFlushesPending pins the leave semantics:
// envelopes queued behind a lingering batch window still reach the
// destination when it disconnects gracefully — the teardown flushes the
// pending batch instead of discarding it.
func TestTCPNetDisconnectGracefulFlushesPending(t *testing.T) {
	const n = 30
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0, BatchWindow: 30 * time.Second})
	defer tn.Close()
	box := tn.Register(1)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(i, 1))
	}
	tn.Disconnect(1, true) // the writer abandons its window and drains
	if got := pollDrain(box, n, 5*time.Second); got != n {
		t.Fatalf("graceful disconnect delivered %d/%d envelopes", got, n)
	}
	tn.Send(testItemEnvelope(99, 1)) // disconnected id: dropped, not blocked
}

// TestTCPNetDisconnectCrashDropsPendingWithoutLeaks pins the crash-teardown
// audit: a peer crashing mid-batch loses the pending frames (congestion, not
// delivery), later sends to it drop without blocking, and neither the
// per-destination writer goroutine nor the reader pumps leak.
func TestTCPNetDisconnectCrashDropsPendingWithoutLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	const n = 40
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0, BatchWindow: 30 * time.Second})
	box := tn.Register(1)
	tn.Register(2)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(i, 1)) // held by the writer's batch window
	}
	tn.Disconnect(1, false) // crash mid-batch

	// Sends to the crashed peer must drop immediately, not block on a dead
	// connection.
	sent := make(chan struct{})
	go func() {
		for i := 0; i < 2*n; i++ {
			tn.Send(testItemEnvelope(i, 1))
		}
		close(sent)
	}()
	select {
	case <-sent:
	case <-time.After(5 * time.Second):
		t.Fatal("send to a crashed peer blocked")
	}
	if got := pollDrain(box, 1, 100*time.Millisecond); got != 0 {
		t.Fatalf("crash teardown delivered %d pending envelopes, want 0", got)
	}
	tn.Close()
	// The writer goroutine of the crashed destination, its reader pumps and
	// every transport goroutine must be gone.
	for start := time.Now(); time.Since(start) < 5*time.Second; {
		if runtime.NumGoroutine() <= base+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	m := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after crash teardown: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:m])
}

// TestTCPNetReRegisterAfterDisconnect pins the rejoin path: a disconnected
// id that registers again gets a fresh endpoint and receives new traffic.
func TestTCPNetReRegisterAfterDisconnect(t *testing.T) {
	const n = 10
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0})
	defer tn.Close()
	tn.Register(1)
	tn.Disconnect(1, false)
	box := tn.Register(1)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(i, 1))
	}
	if got := pollDrain(box, n, 5*time.Second); got != n {
		t.Fatalf("re-registered endpoint received %d/%d envelopes", got, n)
	}
}

func TestTCPNetSendAfterCloseIsDropped(t *testing.T) {
	tn := NewTCPNet(TCPNetConfig{})
	tn.Register(1)
	tn.Close()
	tn.Send(testItemEnvelope(0, 1)) // must not panic or block
	tn.Close()                      // double Close must be safe
}

// TestTCPNetPoisonedStreamDropsConnection checks that a malformed frame
// kills the inbound connection instead of panicking the pump.
func TestTCPNetPoisonedStreamDropsConnection(t *testing.T) {
	tn := NewTCPNet(TCPNetConfig{})
	defer tn.Close()
	box := tn.Register(1)
	tn.mu.Lock()
	addr := tn.addrs[1]
	tn.mu.Unlock()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A frame declaring a payload far beyond the limit.
	if _, err := c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("poisoned connection must be closed by the receiver")
	}
	c.Close()
	if got := drainBox(box); got != 0 {
		t.Fatalf("poisoned stream delivered %d envelopes", got)
	}
}

// BenchmarkTCPThroughput measures the live transport end to end: framed
// batched writes through real loopback sockets into the receiver's queue,
// reported as msgs/sec alongside ns/op.
func BenchmarkTCPThroughput(b *testing.B) {
	for _, bw := range []time.Duration{0, time.Millisecond} {
		name := "opportunistic"
		if bw > 0 {
			name = "window=1ms"
		}
		b.Run(name, func(b *testing.B) {
			tn := NewTCPNet(TCPNetConfig{QueueCap: 1 << 17, SlowEvery: 0, BatchWindow: bw})
			box := tn.Register(1)
			received := make(chan int, 1)
			go func() {
				got := 0
				for range box {
					got++
				}
				received <- got
			}()
			env := testItemEnvelope(1, 1)
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tn.Send(env)
			}
			tn.Close() // drains pending batches and closes the box
			b.StopTimer()
			elapsed := time.Since(start)
			got := <-received
			b.ReportMetric(float64(got)/elapsed.Seconds(), "msgs/s")
			b.ReportMetric(float64(got)/float64(b.N)*100, "delivered%")
		})
	}
}
