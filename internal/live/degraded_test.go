package live

import (
	"errors"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// TestDegradedFleetRefusesFeeds pins degraded-mode serving: once a majority
// of the non-departed members are offline, Degraded reports true and Feed
// refuses with ErrDegraded; a healthy fleet keeps serving.
func TestDegradedFleetRefusesFeeds(t *testing.T) {
	ds := tinySurvey(15)
	crashed := ds.Users/2 + 1 // majority offline, nobody departed
	var schedule sim.ChurnSchedule
	for i := 0; i < crashed; i++ {
		schedule.Add(3, sim.ChurnCrash, news.NodeID(i))
	}
	r := NewRunner(Config{
		Seed:        5,
		Cycles:      8,
		CycleLength: 3 * time.Millisecond,
		NodeConfig:  core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 25},
		Churn:       schedule,
	}, ds, NewChannelNet(9, 0, 0))
	r.Run()

	if !r.Degraded() {
		t.Fatalf("fleet with %d/%d online not degraded", r.OnlineCount(), r.MemberCount())
	}
	survivor := news.NodeID(ds.Users - 1)
	if _, err := r.Feed(survivor); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded feed error %v, want ErrDegraded", err)
	}

	healthy := NewRunner(Config{
		Seed:        6,
		Cycles:      5,
		CycleLength: 3 * time.Millisecond,
		NodeConfig:  core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 25},
	}, tinySurvey(16), NewChannelNet(9, 0, 0))
	healthy.Run()
	if healthy.Degraded() {
		t.Fatal("fully online fleet reported degraded")
	}
	if _, err := healthy.Feed(0); err != nil {
		t.Fatalf("healthy feed refused: %v", err)
	}
}
