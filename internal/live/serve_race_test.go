package live

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// TestServeOfflineConcurrency hammers the serving surface of a node that
// flaps between online and offline while the fleet runs: concurrent
// goroutines post feedback and read the feed and snapshot throughout every
// lifecycle transition, then again after Run returns. Under -race this pins
// withNode's controller-owned path — direct mutations must hold the write
// lock (two concurrent Feedbacks on an offline node share its opinion map
// and profile), and the rejoin TOCTOU re-check must route fn back through
// the control channel once the node's goroutine owns the state again.
func TestServeOfflineConcurrency(t *testing.T) {
	const target = news.NodeID(2)
	var schedule sim.ChurnSchedule
	for c := int64(3); c < 33; c += 6 {
		schedule.Add(c, sim.ChurnCrash, target)
		schedule.Add(c+3, sim.ChurnRejoin, target)
	}
	r := NewRunner(Config{
		Seed:         1,
		Cycles:       36,
		CycleLength:  3 * time.Millisecond,
		NodeConfig:   core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 25},
		Churn:        schedule,
		FeedCapacity: 8,
	}, dataset.Blank(8, 36), NewChannelNet(7, 0, 0))

	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Run()
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := r.Feedback(target, news.ID(i), g%2 == 0); err != nil {
					t.Errorf("feedback: %v", err)
					return
				}
				if _, err := r.Feed(target); err != nil {
					t.Errorf("feed: %v", err)
					return
				}
				if _, err := r.Snapshot(target); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				runtime.Gosched()
			}
		}(g)
	}
	wg.Wait()
	// Post-Run the controller owns every node; the direct path still serves.
	if err := r.Feedback(target, news.ID(1), true); err != nil {
		t.Fatalf("post-run feedback: %v", err)
	}
	if _, err := r.Feed(target); err != nil {
		t.Fatalf("post-run feed: %v", err)
	}
}
