package live

import (
	"math/rand"
	"sync"
	"time"

	"whatsup/internal/news"
)

// ChannelNet is the ModelNet stand-in: an in-memory network of buffered Go
// channels with configurable uniform message loss and delivery latency. Loss
// applies to every message kind — BEEP and gossip alike — matching the
// Section V-E experiment.
//
// Every delivered envelope round-trips through the shared binary codec
// (codec.go): the receiver observes exactly what the encoded bytes carry —
// fresh profile copies, recomputed item ids, no ground-truth leakage — so
// the emulation exercises the same serialization path and costs as TCPNet.
type ChannelNet struct {
	mu      sync.Mutex
	boxes   map[news.NodeID]chan envelope
	rng     *rand.Rand
	loss    float64
	latency time.Duration
	closed  bool
	wg      sync.WaitGroup
}

// NewChannelNet builds a lossy in-memory network.
func NewChannelNet(seed int64, loss float64, latency time.Duration) *ChannelNet {
	return &ChannelNet{
		boxes:   make(map[news.NodeID]chan envelope),
		rng:     rand.New(rand.NewSource(seed)),
		loss:    loss,
		latency: latency,
	}
}

// Register implements Network. Re-registering a disconnected id opens a
// fresh inbox (a rejoining node).
func (c *ChannelNet) Register(id news.NodeID) <-chan envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	box := make(chan envelope, 4096)
	c.boxes[id] = box
	return box
}

// Disconnect implements Network: the node's inbox leaves the delivery table,
// so frames addressed to it — including latency-delayed ones already in
// flight, which captured the orphaned box — are lost. In-memory channels
// hold no pending batches, so graceful and abrupt teardown coincide.
func (c *ChannelNet) Disconnect(id news.NodeID, graceful bool) {
	c.mu.Lock()
	delete(c.boxes, id)
	c.mu.Unlock()
}

// Send implements Network: drops with the configured probability, otherwise
// delivers after the configured latency. Full inboxes drop (backpressure as
// loss, like a saturated emulated link).
func (c *ChannelNet) Send(env envelope) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	drop := c.loss > 0 && c.rng.Float64() < c.loss
	box := c.boxes[env.To]
	delayed := box != nil && !drop && c.latency > 0
	if delayed {
		// Registered under the lock, next to the closed check: Close sets
		// closed before it waits, so wg.Add can never race wg.Wait.
		c.wg.Add(1)
	}
	c.mu.Unlock()
	if drop || box == nil {
		return
	}
	// Serialize through the wire codec so the receiver gets what the bytes
	// say, not what the sender's structs held. The frame handed down by
	// Runner.send is reused; envelopes injected directly (tests) encode here.
	var decoded envelope
	var err error
	if env.frame != nil {
		decoded, err = decodeFrame(env.frame)
	} else {
		buf := getBuf()
		*buf = appendFrame(*buf, env)
		decoded, err = decodeFrame(*buf)
		putBuf(buf)
	}
	if err != nil {
		if delayed {
			c.wg.Done()
		}
		return // unencodable envelope cannot exist; treat as loss
	}
	env = decoded
	deliver := func() {
		defer func() { recover() }() // lost race with Close: treat as loss
		select {
		case box <- env:
		default: // inbox overflow: dropped
		}
	}
	if !delayed {
		deliver()
		return
	}
	go func() {
		defer c.wg.Done()
		time.Sleep(c.latency)
		deliver()
	}()
}

// Close implements Network.
func (c *ChannelNet) Close() {
	c.mu.Lock()
	c.closed = true
	boxes := c.boxes
	c.boxes = map[news.NodeID]chan envelope{}
	c.mu.Unlock()
	c.wg.Wait()
	for _, box := range boxes {
		close(box)
	}
}
