package live

import (
	"math/rand"
	"sync"
	"time"

	"whatsup/internal/faultnet"
	"whatsup/internal/news"
)

// ChannelNet is the ModelNet stand-in: an in-memory network of buffered Go
// channels with configurable message loss and delivery latency. Loss
// applies to every message kind — BEEP and gossip alike — matching the
// Section V-E experiment.
//
// Conditions are either uniform (the loss/latency pair of NewChannelNet) or
// per-link: SetPolicy overlays a faultnet.Policy whose rules and scheduled
// partitions are evaluated per directed link, with loss and jitter drawn
// from deterministic per-link RNG streams keyed off the engine seed
// (faultnet.LinkSeed), so two runs over the same seed see the same per-link
// streams regardless of fleet size.
//
// Every delivered envelope round-trips through the shared binary codec
// (codec.go): the receiver observes exactly what the encoded bytes carry —
// fresh profile copies, recomputed item ids, no ground-truth leakage — so
// the emulation exercises the same serialization path and costs as TCPNet.
type ChannelNet struct {
	mu      sync.Mutex
	boxes   map[news.NodeID]chan envelope
	rng     *rand.Rand
	seed    int64
	loss    float64
	latency time.Duration
	policy  *faultnet.Policy
	clock   func() int64 // fleet cycle, for partition schedules
	links   map[uint64]*rand.Rand
	closed  bool
	wg      sync.WaitGroup
}

// NewChannelNet builds a lossy in-memory network with uniform conditions.
func NewChannelNet(seed int64, loss float64, latency time.Duration) *ChannelNet {
	return &ChannelNet{
		boxes:   make(map[news.NodeID]chan envelope),
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		loss:    loss,
		latency: latency,
	}
}

// SetPolicy overlays per-link network conditions: rules and partitions are
// evaluated per directed link on every send, on top of the uniform
// loss/latency the net was built with. clock supplies the fleet cycle for
// partition schedules (wire it to Runner.Cycle; nil pins the clock at 0, so
// a partition starting at cycle 0 with no heal is permanent). Call before
// the first Send; the policy must not be mutated afterwards.
func (c *ChannelNet) SetPolicy(p *faultnet.Policy, clock func() int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
	c.clock = clock
	c.links = make(map[uint64]*rand.Rand)
}

// linkKey packs a directed link into a map key.
func linkKey(from, to news.NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// linkRNG returns the per-link RNG stream, creating it on first use. Caller
// holds c.mu.
func (c *ChannelNet) linkRNG(from, to news.NodeID) *rand.Rand {
	k := linkKey(from, to)
	r := c.links[k]
	if r == nil {
		r = rand.New(rand.NewSource(faultnet.LinkSeed(c.seed, from, to)))
		c.links[k] = r
	}
	return r
}

// Register implements Network. Re-registering a disconnected id opens a
// fresh inbox (a rejoining node).
func (c *ChannelNet) Register(id news.NodeID) <-chan envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	box := make(chan envelope, 4096)
	c.boxes[id] = box
	return box
}

// Disconnect implements Network: the node's inbox leaves the delivery table,
// so frames addressed to it — including latency-delayed ones already in
// flight, which captured the orphaned box — are lost. In-memory channels
// hold no pending batches, so graceful and abrupt teardown coincide.
func (c *ChannelNet) Disconnect(id news.NodeID, graceful bool) {
	c.mu.Lock()
	delete(c.boxes, id)
	c.mu.Unlock()
}

// Send implements Network: drops with the configured probability (uniform
// and per-link), otherwise delivers after the configured latency (uniform
// plus the link rule's base, jitter and serialization delay). Full inboxes
// drop (backpressure as loss, like a saturated emulated link).
func (c *ChannelNet) Send(env envelope) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	drop := c.loss > 0 && c.rng.Float64() < c.loss
	latency := c.latency
	if c.policy != nil {
		var cycle int64
		if c.clock != nil {
			cycle = c.clock()
		}
		ls := c.policy.Link(env.From, env.To, cycle)
		if ls.Cut {
			drop = true
		} else if ls.Loss > 0 || ls.Jitter > 0 {
			lr := c.linkRNG(env.From, env.To)
			if ls.Loss > 0 && lr.Float64() < ls.Loss {
				drop = true
			}
			if !drop {
				latency += ls.Delay(len(env.frame), lr.Float64())
			}
		} else if !drop {
			latency += ls.Delay(len(env.frame), 0)
		}
	}
	box := c.boxes[env.To]
	delayed := box != nil && !drop && latency > 0
	if delayed {
		// Registered under the lock, next to the closed check: Close sets
		// closed before it waits, so wg.Add can never race wg.Wait.
		c.wg.Add(1)
	}
	c.mu.Unlock()
	if drop || box == nil {
		return
	}
	// Serialize through the wire codec so the receiver gets what the bytes
	// say, not what the sender's structs held. The frame handed down by
	// Runner.send is reused; envelopes injected directly (tests) encode here.
	var decoded envelope
	var err error
	if env.frame != nil {
		decoded, err = decodeFrame(env.frame)
	} else {
		buf := getBuf()
		*buf = appendFrame(*buf, env)
		decoded, err = decodeFrame(*buf)
		putBuf(buf)
	}
	if err != nil {
		if delayed {
			c.wg.Done()
		}
		return // unencodable envelope cannot exist; treat as loss
	}
	env = decoded
	deliver := func() {
		defer func() { recover() }() // lost race with Close: treat as loss
		select {
		case box <- env:
		default: // inbox overflow: dropped
		}
	}
	if !delayed {
		deliver()
		return
	}
	go func() {
		defer c.wg.Done()
		time.Sleep(latency)
		deliver()
	}()
}

// Close implements Network.
func (c *ChannelNet) Close() {
	c.mu.Lock()
	c.closed = true
	boxes := c.boxes
	c.boxes = map[news.NodeID]chan envelope{}
	c.mu.Unlock()
	c.wg.Wait()
	for _, box := range boxes {
		close(box)
	}
}
