package live

import (
	"math/rand"
	"sync"
	"time"

	"whatsup/internal/news"
)

// ChannelNet is the ModelNet stand-in: an in-memory network of buffered Go
// channels with configurable uniform message loss and delivery latency. Loss
// applies to every message kind — BEEP and gossip alike — matching the
// Section V-E experiment.
type ChannelNet struct {
	mu      sync.Mutex
	boxes   map[news.NodeID]chan envelope
	rng     *rand.Rand
	loss    float64
	latency time.Duration
	closed  bool
	wg      sync.WaitGroup
}

// NewChannelNet builds a lossy in-memory network.
func NewChannelNet(seed int64, loss float64, latency time.Duration) *ChannelNet {
	return &ChannelNet{
		boxes:   make(map[news.NodeID]chan envelope),
		rng:     rand.New(rand.NewSource(seed)),
		loss:    loss,
		latency: latency,
	}
}

// Register implements Network.
func (c *ChannelNet) Register(id news.NodeID) <-chan envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	box := make(chan envelope, 4096)
	c.boxes[id] = box
	return box
}

// Send implements Network: drops with the configured probability, otherwise
// delivers after the configured latency. Full inboxes drop (backpressure as
// loss, like a saturated emulated link).
func (c *ChannelNet) Send(env envelope) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	drop := c.loss > 0 && c.rng.Float64() < c.loss
	box := c.boxes[env.To]
	c.mu.Unlock()
	if drop || box == nil {
		return
	}
	deliver := func() {
		defer func() { recover() }() // lost race with Close: treat as loss
		select {
		case box <- env:
		default: // inbox overflow: dropped
		}
	}
	if c.latency <= 0 {
		deliver()
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		time.Sleep(c.latency)
		deliver()
	}()
}

// Close implements Network.
func (c *ChannelNet) Close() {
	c.mu.Lock()
	c.closed = true
	boxes := c.boxes
	c.boxes = map[news.NodeID]chan envelope{}
	c.mu.Unlock()
	c.wg.Wait()
	for _, box := range boxes {
		close(box)
	}
}
