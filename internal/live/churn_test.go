package live

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// waitGoroutinesBelow polls until the process goroutine count drops to the
// limit, failing with a full stack dump if it never does — the live churn
// paths must not leak node, pump or writer goroutines.
func waitGoroutinesBelow(t *testing.T, limit int) {
	t.Helper()
	for start := time.Now(); time.Since(start) < 5*time.Second; {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<18)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > limit %d\n%s", runtime.NumGoroutine(), limit, buf[:n])
}

// TestLiveChurnChannelNet is the live churn scenario on the in-memory
// transport: a crash+rejoin, a graceful leave late enough to pin the
// one-horizon healing bound, and a flash crowd of joiners. It asserts the
// lifecycle bookkeeping, that joiners receive post-join items (every item a
// joiner receives is post-join by construction — it did not exist before),
// that departed descriptors have left every online view within one
// DescriptorTTL horizon of the last departure, and that no goroutines leak.
func TestLiveChurnChannelNet(t *testing.T) {
	base := runtime.NumGoroutine()
	ds := tinySurvey(11) // 24 users, items spread over 25 cycles
	const (
		ttl       = 6
		cycles    = 35
		crashNode = news.NodeID(2)
		leaveNode = news.NodeID(3)
		joiners   = 3
		// The healing bound is per node clock: every view is ghost-free one
		// TTL horizon after the last departure, provided the node ticked
		// since. The schedule leaves the horizon plus generous scheduler
		// slack (a starved goroutine may skip ticks under -race on 1 CPU)
		// before the run ends.
		leaveAt = 12
	)
	var schedule sim.ChurnSchedule
	schedule.Add(4, sim.ChurnCrash, crashNode)
	schedule.Add(9, sim.ChurnRejoin, crashNode)
	schedule.Add(leaveAt, sim.ChurnLeave, leaveNode)
	for j := 0; j < joiners; j++ {
		schedule.Add(7, sim.ChurnJoin, news.NodeID(ds.Users+j))
	}

	op := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return ds.Likes(news.NodeID(int(node)%ds.Users), item)
	})
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 40, DescriptorTTL: ttl}
	r := NewRunner(Config{
		Seed:        1,
		Cycles:      cycles,
		CycleLength: 5 * time.Millisecond,
		NodeConfig:  nodeCfg,
		Churn:       schedule,
		NewNode: func(id news.NodeID, rng *rand.Rand) *core.Node {
			return core.NewNode(id, "", nodeCfg, op, rng)
		},
	}, ds, NewChannelNet(7, 0, 0))
	r.Run()

	if got := r.MemberCount(); got != ds.Users+joiners {
		t.Fatalf("member count %d, want %d", got, ds.Users+joiners)
	}
	if st, ok := r.State(leaveNode); !ok || st != sim.Departed {
		t.Fatalf("leaver state %v, want departed", st)
	}
	if st, ok := r.State(crashNode); !ok || st != sim.Online {
		t.Fatalf("crash+rejoin node state %v, want online", st)
	}
	if r.Node(crashNode).RPS().View().Len() == 0 {
		t.Fatal("rejoined node must have re-seeded views")
	}
	if got, want := r.OnlineCount(), ds.Users+joiners-1; got != want {
		t.Fatalf("online count %d, want %d", got, want)
	}
	received := 0
	for j := 0; j < joiners; j++ {
		id := news.NodeID(ds.Users + j)
		if st, ok := r.State(id); !ok || st != sim.Online {
			t.Fatalf("joiner %d state %v, want online", id, st)
		}
		if ns := r.Collector().Node(id); ns != nil {
			received += ns.Received
		}
	}
	if received == 0 {
		t.Fatal("flash-crowd joiners never received a post-join item")
	}
	// Self-healing: the last departure sits one TTL horizon (plus slack)
	// before the end of the run, so no online view may still hold a
	// descriptor of a non-online member.
	if gf := r.GhostFraction(); gf != 0 {
		t.Fatalf("online views not ghost-free at end: fraction %v", gf)
	}
	waitGoroutinesBelow(t, base+2)
}

// TestLiveChurnTCPNet runs a reduced crash+rejoin+leave schedule over real
// loopback sockets: the run must complete, tear down the churned endpoints
// without leaking connection or pump goroutines, and still deliver.
func TestLiveChurnTCPNet(t *testing.T) {
	base := runtime.NumGoroutine()
	ds := tinySurvey(12)
	var schedule sim.ChurnSchedule
	schedule.Add(3, sim.ChurnCrash, 1)
	schedule.Add(8, sim.ChurnRejoin, 1)
	schedule.Add(6, sim.ChurnLeave, 2)
	schedule.Add(7, sim.ChurnJoin, news.NodeID(ds.Users))

	op := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return ds.Likes(news.NodeID(int(node)%ds.Users), item)
	})
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 40, DescriptorTTL: 8}
	r := NewRunner(Config{
		Seed:        2,
		Cycles:      25,
		CycleLength: 8 * time.Millisecond,
		NodeConfig:  nodeCfg,
		Churn:       schedule,
		NewNode: func(id news.NodeID, rng *rand.Rand) *core.Node {
			return core.NewNode(id, "", nodeCfg, op, rng)
		},
	}, ds, NewTCPNet(TCPNetConfig{SlowEvery: 0}))
	r.Run()

	if st, _ := r.State(2); st != sim.Departed {
		t.Fatalf("leaver state %v, want departed", st)
	}
	if st, _ := r.State(1); st != sim.Online {
		t.Fatalf("rejoiner state %v, want online", st)
	}
	if st, _ := r.State(news.NodeID(ds.Users)); st != sim.Online {
		t.Fatalf("joiner state %v, want online", st)
	}
	if r.Collector().TotalMessages() == 0 {
		t.Fatal("no traffic despite a live TCP fleet")
	}
	waitGoroutinesBelow(t, base+2)
}

// TestLiveChurnInvalidEventsSkipped mirrors the simulator's tolerance of
// stale membership commands: rejoining an online node, crashing an offline
// one, leaving twice and joining an existing id are all no-ops.
func TestLiveChurnInvalidEventsSkipped(t *testing.T) {
	ds := tinySurvey(13)
	var schedule sim.ChurnSchedule
	schedule.Add(2, sim.ChurnRejoin, 0) // rejoin while online: no-op
	schedule.Add(3, sim.ChurnCrash, 4)
	schedule.Add(4, sim.ChurnCrash, 4) // crash while offline: no-op
	schedule.Add(5, sim.ChurnLeave, 5)
	schedule.Add(6, sim.ChurnLeave, 5)           // leave while departed: no-op
	schedule.Add(7, sim.ChurnJoin, 0)            // join of an existing id: no-op
	schedule.Add(8, sim.ChurnRejoin, 5)          // departed members never rejoin
	schedule.Add(9, sim.ChurnCrash, 9999)        // unknown id
	schedule.Add(9, sim.ChurnRejoin, 9998)       // unknown id
	schedule.Add(9, sim.ChurnLeave, news.NoNode) // unknown id

	r := NewRunner(Config{
		Seed:        3,
		Cycles:      12,
		CycleLength: 3 * time.Millisecond,
		NodeConfig:  core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 25},
		Churn:       schedule,
	}, ds, NewChannelNet(7, 0, 0))
	r.Run()

	if got := r.MemberCount(); got != ds.Users {
		t.Fatalf("member count %d changed by invalid events, want %d", got, ds.Users)
	}
	if st, _ := r.State(0); st != sim.Online {
		t.Fatalf("node 0 state %v, want online", st)
	}
	if st, _ := r.State(4); st != sim.Offline {
		t.Fatalf("node 4 state %v, want offline", st)
	}
	if st, _ := r.State(5); st != sim.Departed {
		t.Fatalf("node 5 state %v, want departed", st)
	}
	if _, ok := r.State(9999); ok {
		t.Fatal("unknown id must stay unknown")
	}
}
