// Package live runs WhatsUp nodes as concurrent goroutines exchanging real
// messages, reproducing the paper's two deployment settings (Section V-D):
//
//   - ModelNet cluster emulation → ChannelNet: an in-memory network of Go
//     channels with configurable loss and latency injection;
//   - PlanetLab deployment → TCPNet: real TCP loopback sockets with bounded
//     per-node inbound queues whose overflow drops model the congestion of
//     overloaded PlanetLab nodes.
//
// Each peer runs in its own goroutine, driven by a cycle ticker; gossip
// exchanges are asynchronous request/reply messages rather than the
// simulator's synchronous calls, so the runtime exercises genuine
// concurrency, reordering and loss. Results are therefore not
// bit-deterministic — exactly like the testbeds they stand in for.
package live

import (
	"math/rand"
	"sync"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
)

// wireKind tags the message types exchanged by live nodes.
type wireKind uint8

const (
	wireRPSRequest wireKind = iota
	wireRPSReply
	wireWUPRequest
	wireWUPReply
	wireItem
)

// envelope is one message on a live network.
type envelope struct {
	Kind  wireKind
	From  news.NodeID
	To    news.NodeID
	Descs []overlay.Descriptor // gossip payload
	Item  core.ItemMessage     // BEEP payload

	// frame, when non-nil, is the encoded frame of this envelope, set by
	// Runner.send so transports reuse the bytes already produced for
	// bandwidth accounting instead of re-encoding. It is only valid for the
	// duration of the Send call (the backing buffer is pooled) and is never
	// itself part of the wire format.
	frame []byte
}

// size is the exact framed wire size of the envelope: the number of bytes a
// stream transport writes for it, and therefore what bandwidth metrics
// report. Unlike the simulator's fixed-width WireSize estimates, this is
// measured on the actual encoding.
func (e envelope) size() int {
	buf := getBuf()
	*buf = appendFrame(*buf, e)
	n := len(*buf)
	putBuf(buf)
	return n
}

func (e envelope) kind() metrics.MessageKind {
	switch e.Kind {
	case wireRPSRequest:
		return metrics.MsgRPSRequest
	case wireRPSReply:
		return metrics.MsgRPSReply
	case wireWUPRequest:
		return metrics.MsgWUPRequest
	case wireWUPReply:
		return metrics.MsgWUPReply
	default:
		return metrics.MsgBeep
	}
}

// Network is a transport for live runs.
type Network interface {
	// Register allocates the inbound queue of a node and returns it.
	Register(id news.NodeID) <-chan envelope
	// Send delivers (or drops) an envelope asynchronously.
	Send(env envelope)
	// Close tears the transport down.
	Close()
}

// Config parameterizes a live run.
type Config struct {
	// Seed drives workload scheduling and per-node randomness.
	Seed int64
	// Cycles to run; CycleLength is the real-time gossip period (the paper
	// used 30 s on PlanetLab; tests use milliseconds).
	Cycles      int
	CycleLength time.Duration
	// NodeConfig is the WhatsUp parameter set for every node.
	NodeConfig core.Config
	// Bootstrap degree for the initial random views.
	BootstrapDegree int
	// OnDelivery, if set, observes every non-duplicate delivery. It is
	// invoked from node goroutines under the collector lock; keep it short.
	OnDelivery func(d core.Delivery)
}

func (c Config) withDefaults() Config {
	if c.Cycles <= 0 {
		c.Cycles = 30
	}
	if c.CycleLength <= 0 {
		c.CycleLength = 10 * time.Millisecond
	}
	if c.BootstrapDegree <= 0 {
		c.BootstrapDegree = 5
	}
	return c
}

// Runner owns a fleet of live nodes over a Network.
type Runner struct {
	cfg   Config
	ds    *dataset.Dataset
	net   Network
	nodes []*liveNode
	col   *metrics.Collector
	colMu sync.Mutex
}

// liveNode wraps a core.Node with its goroutine state. The node's protocol
// state is only touched by its own goroutine; the collector is shared and
// locked.
type liveNode struct {
	node   *core.Node
	inbox  <-chan envelope
	quit   chan struct{}
	done   chan struct{}
	runner *Runner
	rng    *rand.Rand
	pubs   []dataset.Item // items this node publishes, by cycle
}

// NewRunner builds a live fleet over the given network.
func NewRunner(cfg Config, ds *dataset.Dataset, net Network) *Runner {
	cfg = cfg.withDefaults()
	r := &Runner{cfg: cfg, ds: ds, net: net, col: metrics.NewCollector()}
	for i := range ds.Items {
		if ds.IsWarmup(i) {
			r.col.RegisterWarmupItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		} else {
			r.col.RegisterItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		}
	}
	op := ds.Opinions()
	for u := 0; u < ds.Users; u++ {
		id := news.NodeID(u)
		r.col.RegisterNode(id, ds.UserInterestCount(id))
		rng := rand.New(rand.NewSource(cfg.Seed*999983 + int64(u)))
		ln := &liveNode{
			node:   core.NewNode(id, "", cfg.NodeConfig, op, rng),
			inbox:  net.Register(id),
			quit:   make(chan struct{}),
			done:   make(chan struct{}),
			runner: r,
			rng:    rng,
		}
		r.nodes = append(r.nodes, ln)
	}
	// Assign publications to their source nodes.
	for i := range ds.Items {
		src := ds.Items[i].News.Source
		if src >= 0 && int(src) < len(r.nodes) {
			r.nodes[src].pubs = append(r.nodes[src].pubs, ds.Items[i])
		}
	}
	// Bootstrap: random initial views.
	boot := rand.New(rand.NewSource(cfg.Seed))
	for _, ln := range r.nodes {
		var descs []overlay.Descriptor
		for _, j := range boot.Perm(len(r.nodes)) {
			if news.NodeID(j) == ln.node.ID() {
				continue
			}
			descs = append(descs, overlay.Descriptor{
				Node:    news.NodeID(j),
				Stamp:   0,
				Profile: r.nodes[j].node.UserProfile().Clone(),
			})
			if len(descs) == cfg.BootstrapDegree {
				break
			}
		}
		ln.node.SeedViews(descs)
	}
	return r
}

// Collector returns the shared metrics collector. Safe to read after Run
// returns.
func (r *Runner) Collector() *metrics.Collector { return r.col }

// Run starts every node goroutine, lets them gossip for the configured
// number of cycles, then stops the fleet and returns.
func (r *Runner) Run() {
	var wg sync.WaitGroup
	for _, ln := range r.nodes {
		wg.Add(1)
		go func(ln *liveNode) {
			defer wg.Done()
			ln.loop()
		}(ln)
	}
	total := time.Duration(r.cfg.Cycles) * r.cfg.CycleLength
	time.Sleep(total)
	for _, ln := range r.nodes {
		close(ln.quit)
	}
	wg.Wait()
	r.net.Close()
}

// record safely updates the shared collector.
func (r *Runner) record(fn func(col *metrics.Collector)) {
	r.colMu.Lock()
	defer r.colMu.Unlock()
	fn(r.col)
}

// send encodes the envelope once, accounts its exact framed length, and
// hands both the envelope and the frame bytes to the transport.
func (r *Runner) send(env envelope) {
	buf := getBuf()
	*buf = appendFrame(*buf, env)
	env.frame = *buf
	r.record(func(col *metrics.Collector) { col.RecordMessage(env.kind(), len(env.frame)) })
	r.net.Send(env)
	putBuf(buf)
}

// loop is the node goroutine: a cycle ticker interleaved with inbound
// message processing.
func (ln *liveNode) loop() {
	defer close(ln.done)
	ticker := time.NewTicker(ln.runner.cfg.CycleLength)
	defer ticker.Stop()
	cycle := int64(0)
	for {
		select {
		case <-ln.quit:
			return
		case <-ticker.C:
			cycle++
			ln.onCycle(cycle)
		case env, ok := <-ln.inbox:
			if !ok {
				return
			}
			ln.onMessage(env, cycle)
		}
	}
}

// onCycle runs the periodic protocol actions: window purge, RPS and WUP
// exchange initiation, and this node's scheduled publications.
func (ln *liveNode) onCycle(cycle int64) {
	n := ln.node
	n.BeginCycle(cycle)

	if target, ok := n.RPS().SelectPeer(); ok {
		push := n.RPS().MakePush(n.RPS().Descriptor(cycle, n.UserProfile()))
		ln.runner.send(envelope{Kind: wireRPSRequest, From: n.ID(), To: target.Node, Descs: push})
	}
	n.InjectRPSCandidates()
	if target, ok := n.WUP().SelectPeer(); ok {
		push := n.WUP().MakePush(n.WUP().Descriptor(cycle, n.UserProfile()))
		ln.runner.send(envelope{Kind: wireWUPRequest, From: n.ID(), To: target.Node, Descs: push})
	}

	for _, it := range ln.pubs {
		if it.Cycle == cycle {
			for _, s := range n.Publish(it.News, cycle) {
				ln.runner.send(envelope{Kind: wireItem, From: n.ID(), To: s.To, Item: s.Msg})
			}
		}
	}
}

// onMessage dispatches one inbound envelope.
func (ln *liveNode) onMessage(env envelope, cycle int64) {
	n := ln.node
	switch env.Kind {
	case wireRPSRequest:
		reply := n.RPS().AcceptPush(env.Descs, n.RPS().Descriptor(cycle, n.UserProfile()))
		ln.runner.send(envelope{Kind: wireRPSReply, From: n.ID(), To: env.From, Descs: reply})
	case wireRPSReply:
		n.RPS().AcceptReply(env.Descs)
	case wireWUPRequest:
		reply := n.WUP().AcceptPush(env.Descs, n.WUP().Descriptor(cycle, n.UserProfile()), n.UserProfile())
		ln.runner.send(envelope{Kind: wireWUPReply, From: n.ID(), To: env.From, Descs: reply})
	case wireWUPReply:
		n.WUP().AcceptReply(env.Descs, n.UserProfile())
	case wireItem:
		d, sends := n.Receive(env.Item, cycle)
		if d.Duplicate {
			return
		}
		ln.runner.record(func(col *metrics.Collector) {
			col.RecordDelivery(d)
			if len(sends) > 0 {
				col.RecordForward(d.Liked, d.Hops)
			}
			if ln.runner.cfg.OnDelivery != nil {
				ln.runner.cfg.OnDelivery(d)
			}
		})
		for _, s := range sends {
			ln.runner.send(envelope{Kind: wireItem, From: n.ID(), To: s.To, Item: s.Msg})
		}
	}
}
