// Package live runs WhatsUp nodes as concurrent goroutines exchanging real
// messages, reproducing the paper's two deployment settings (Section V-D):
//
//   - ModelNet cluster emulation → ChannelNet: an in-memory network of Go
//     channels with configurable loss and latency injection;
//   - PlanetLab deployment → TCPNet: real TCP loopback sockets with bounded
//     per-node inbound queues whose overflow drops model the congestion of
//     overloaded PlanetLab nodes.
//
// Each peer runs in its own goroutine, driven by a cycle ticker; gossip
// exchanges are asynchronous request/reply messages rather than the
// simulator's synchronous calls, so the runtime exercises genuine
// concurrency, reordering and loss. Results are therefore not
// bit-deterministic — exactly like the testbeds they stand in for.
//
// Membership is dynamic: Config.Churn accepts the same declarative
// sim.ChurnSchedule the simulator runs, and a controller goroutine applies
// its events at cycle-tick boundaries. Joins spawn a fresh node goroutine
// that cold-starts from a live host's views (paper Section II-D), crashes
// tear the node's transport endpoints down abruptly — in-flight frames to
// the dead peer drop as congestion — graceful leaves flush pending batches
// first, and rejoins re-register with the transport and re-seed their wiped
// views from a sample of the online population. Event *timing* is wall-clock
// (whichever tick the controller reaches next), so unlike the simulator the
// exact interleaving of churn with in-flight traffic is not reproducible;
// the schedule itself — which node churns at which cycle — is.
package live

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/faultnet"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
	"whatsup/internal/sim"
)

// wireKind tags the message types exchanged by live nodes.
type wireKind uint8

const (
	wireRPSRequest wireKind = iota
	wireRPSReply
	wireWUPRequest
	wireWUPReply
	wireItem
	// Churn protocol v2: the graceful leaver's departure notice and the two
	// legs of the anti-entropy view refill.
	wireDeparture
	wireRefillRequest
	wireRefillReply
)

// envelope is one message on a live network.
type envelope struct {
	Kind  wireKind
	From  news.NodeID
	To    news.NodeID
	Descs []overlay.Descriptor // gossip payload
	Tombs []overlay.Tombstone  // piggybacked departure notices (non-item kinds)
	Item  core.ItemMessage     // BEEP payload

	// frame, when non-nil, is the encoded frame of this envelope, set by
	// Runner.send so transports reuse the bytes already produced for
	// bandwidth accounting instead of re-encoding. It is only valid for the
	// duration of the Send call (the backing buffer is pooled) and is never
	// itself part of the wire format.
	frame []byte
}

// size is the exact framed wire size of the envelope: the number of bytes a
// stream transport writes for it, and therefore what bandwidth metrics
// report. Unlike the simulator's fixed-width WireSize estimates, this is
// measured on the actual encoding.
func (e envelope) size() int {
	buf := getBuf()
	*buf = appendFrame(*buf, e)
	n := len(*buf)
	putBuf(buf)
	return n
}

func (e envelope) kind() metrics.MessageKind {
	switch e.Kind {
	case wireRPSRequest:
		return metrics.MsgRPSRequest
	case wireRPSReply:
		return metrics.MsgRPSReply
	case wireWUPRequest:
		return metrics.MsgWUPRequest
	case wireWUPReply:
		return metrics.MsgWUPReply
	case wireDeparture:
		return metrics.MsgDeparture
	case wireRefillRequest:
		return metrics.MsgRefillRequest
	case wireRefillReply:
		return metrics.MsgRefillReply
	default:
		return metrics.MsgBeep
	}
}

// Network is a transport for live runs.
type Network interface {
	// Register allocates the inbound queue of a node and returns it.
	// Registering an id again after Disconnect opens a fresh endpoint (a
	// rejoining node gets a new inbox and, on TCP, a new listener address).
	Register(id news.NodeID) <-chan envelope
	// Send delivers (or drops) an envelope asynchronously.
	Send(env envelope)
	// Disconnect tears down one node's endpoints. With graceful=false
	// (a crash) pending outbound batches to the node are discarded and its
	// connections close immediately, so in-flight frames drop as congestion;
	// with graceful=true (a leave) pending batches are flushed first.
	// Sends to a disconnected id drop without blocking.
	Disconnect(id news.NodeID, graceful bool)
	// Close tears the transport down.
	Close()
}

// Config parameterizes a live run.
type Config struct {
	// Seed drives workload scheduling and per-node randomness.
	Seed int64
	// Cycles to run; zero means the default of 30 and a negative value means
	// unbounded — the fleet runs until the context given to RunContext is
	// cancelled, the serving mode of cmd/whatsup-serve. CycleLength is the
	// real-time gossip period (the paper used 30 s on PlanetLab; tests use
	// milliseconds).
	Cycles      int
	CycleLength time.Duration
	// NodeConfig is the WhatsUp parameter set for every node.
	NodeConfig core.Config
	// Bootstrap degree for the initial random views.
	BootstrapDegree int
	// OnDelivery, if set, observes every non-duplicate delivery. It is
	// invoked from node goroutines under the collector lock; keep it short.
	OnDelivery func(d core.Delivery)
	// Churn is the declarative membership schedule (shared with the
	// simulator): the events of cycle c are applied by the controller at the
	// c-th cycle tick, before the fleet's node tickers fire again. An empty
	// schedule reproduces the historical fixed-fleet behaviour.
	Churn sim.ChurnSchedule
	// NewNode builds the node for a scheduled join. When nil, joins use a
	// default factory over the run's dataset opinions (ids beyond the
	// dataset population then like nothing; experiment drivers supply a
	// factory with mapped opinions instead).
	NewNode func(id news.NodeID, rng *rand.Rand) *core.Node
	// DepartureNotices enables the churn protocol's graceful-departure path:
	// a node stopped by a ChurnLeave sends departure frames to its view
	// neighbours before its transport flushes, and every node piggybacks its
	// active tombstones on outgoing gossip for one horizon. Off by default.
	DepartureNotices bool
	// RefillWatermark enables adaptive view refill: a node whose RPS or WUP
	// view occupancy falls under this fraction of capacity at a cycle tick
	// pulls an anti-entropy descriptor sample from its freshest surviving
	// neighbour. Zero disables refill.
	RefillWatermark float64
	// Timeline makes the controller sample a per-cycle metrics.ChurnSample
	// of the fleet (ghost fraction, view fill, online population by cohort)
	// through the nodes' control channels; read it with Runner.Timeline
	// after the run. Off by default — sampling costs one snapshot round-trip
	// per online node per cycle.
	Timeline bool
	// Opinions overrides the dataset's like/dislike trace for the whole
	// fleet (nil keeps the dataset's). Serving fleets use this to supply an
	// interest model for items that are not part of any trace — e.g. articles
	// ingested from a real feed. Whatever the base, every node layers its own
	// feedback overrides (Runner.Feedback) on top.
	Opinions core.Opinions
	// FeedCapacity bounds the per-node feed: how many of the most recent
	// BEEP deliveries each node retains (item plus the item-profile snapshot
	// it arrived with) for Runner.Feed / Runner.Snapshot to serve. Zero
	// disables retention — the historical behaviour, and the right setting
	// for measurement runs that never read feeds.
	FeedCapacity int
	// Links is the per-link fault policy installed on the transport (via its
	// SetPolicy, keyed to Runner.Cycle). The runner itself only reads it to
	// annotate Timeline samples with the active partition count; injection
	// happens inside the transport.
	Links *faultnet.Policy
}

func (c Config) withDefaults() Config {
	if c.Cycles == 0 {
		c.Cycles = 30
	}
	if c.CycleLength <= 0 {
		c.CycleLength = 10 * time.Millisecond
	}
	if c.BootstrapDegree <= 0 {
		c.BootstrapDegree = 5
	}
	return c
}

// Runner owns a fleet of live nodes over a Network. The fleet is dynamic:
// Run doubles as the membership controller, applying Config.Churn events at
// cycle-tick boundaries. The controller goroutine is the sole writer of the
// membership bookkeeping (fleet, order, states) and of the protocol state of
// stopped nodes; it publishes those writes under mu, so the read accessors
// (State, Members, OnlineCount, Timeline, Stats) and the serving surface
// (Snapshot, Feed, Feedback, Publish — see serve.go) are safe from any
// goroutine while the fleet is running. Running nodes are only ever touched
// through their control channel, which serializes every request with the
// node's own message handling.
type Runner struct {
	cfg   Config
	ds    *dataset.Dataset
	net   Network
	col   *metrics.Collector
	colMu sync.Mutex

	// mu guards the membership bookkeeping below (and the protocol state of
	// nodes whose goroutine is not running). Writers: the controller only.
	// Readers: the concurrent accessors of serve.go. Node goroutines never
	// take it, so the gossip hot path is lock-free apart from the collector.
	mu      sync.RWMutex
	running bool
	fleet   map[news.NodeID]*liveNode
	order   []news.NodeID // registration order, joins appended
	states  map[news.NodeID]sim.MemberState
	churn   map[int64][]sim.ChurnEvent
	// ctrlRNG drives the controller's own sampling (cold-start hosts,
	// rejoin bootstrap); node randomness stays per-node.
	ctrlRNG *rand.Rand
	wg      sync.WaitGroup
	// cycle is the fleet clock, advanced by the controller at every tick.
	// Node loops resync their local counter to it, so a node whose ticker
	// dropped ticks under scheduler pressure does not fall behind: its
	// descriptor stamps and DescriptorTTL eviction horizon stay aligned
	// with the fleet, as a wall-clock deployment's would.
	cycle atomic.Int64
	// timeline is the per-cycle fleet health trace (Config.Timeline), owned
	// by the controller; read through Timeline after Run returns.
	timeline []metrics.ChurnSample
}

// liveNode wraps a core.Node with its goroutine state. The node's protocol
// state is only touched by its own goroutine — except between a lifecycle
// stop and restart, when the controller owns it (the goroutine has exited).
// The collector is shared and locked.
type liveNode struct {
	node   *core.Node
	inbox  <-chan envelope
	quit   chan struct{}
	done   chan struct{}
	ctl    chan ctlRequest
	runner *Runner
	rng    *rand.Rand
	// ops is the node's opinion layer when the runner built the node itself:
	// the base trace plus this user's feedback overrides. Nil for nodes built
	// by a Config.NewNode factory (their opinions are opaque to the runner, so
	// Runner.Feedback can only update their profile).
	ops *nodeOpinions
	// feed is the ring of the node's most recent BEEP deliveries
	// (Config.FeedCapacity), owned by the node goroutine like the rest of the
	// protocol state and read through the control channel. Once full,
	// feedNext is the ring slot of the oldest record (the next overwritten).
	feed     []feedRecord
	feedNext int
	pubs     []dataset.Item // items this node publishes, sorted by cycle
	// pubIdx is the next unpublished entry of pubs: publications catch up
	// to the node's clock instead of requiring an exact tick match, so a
	// dropped ticker tick delays a publication rather than losing it.
	pubIdx int
	// startCycle aligns a joiner or rejoiner with the fleet's clock: its
	// local cycle counter starts here instead of 0, so its descriptor stamps
	// are not instantly older than every DescriptorTTL horizon.
	startCycle int64
}

// ctlRequest asks a node goroutine to run fn inline, serialized with the
// node's protocol handling so callers never race its state. cycle is the
// node's current local cycle. done is closed once fn has run.
type ctlRequest struct {
	fn   func(ln *liveNode, cycle int64)
	done chan struct{}
}

// ctlSnapshot is a node state snapshot: a fresh descriptor of itself plus
// copies of both views (descriptors are immutable, profiles copy-on-write).
type ctlSnapshot struct {
	desc overlay.Descriptor
	rps  []overlay.Descriptor
	wup  []overlay.Descriptor
}

// nodeOpinions layers a user's live feedback (Runner.Feedback) on top of a
// base like/dislike trace. It is part of its node's protocol state: Likes is
// only called by core.Node.Receive on the node goroutine, and overrides are
// written through the control channel.
type nodeOpinions struct {
	self news.NodeID
	base core.Opinions
	over map[news.ID]bool
}

func (o *nodeOpinions) Likes(node news.NodeID, item news.ID) bool {
	if node == o.self {
		if liked, ok := o.over[item]; ok {
			return liked
		}
	}
	if o.base == nil {
		return false
	}
	return o.base.Likes(node, item)
}

// feedRecord is one retained BEEP delivery: the item, the item-profile
// snapshot it arrived with, and its receipt coordinates.
type feedRecord struct {
	item       news.Item
	profile    *profile.Profile
	cycle      int64
	hops       int
	viaDislike bool
}

// feedPush appends a delivery to the node's feed ring, evicting the oldest
// record once Config.FeedCapacity is reached. Node goroutine only.
func (ln *liveNode) feedPush(rec feedRecord) {
	capacity := ln.runner.cfg.FeedCapacity
	if len(ln.feed) < capacity {
		ln.feed = append(ln.feed, rec)
		return
	}
	ln.feed[ln.feedNext] = rec
	ln.feedNext = (ln.feedNext + 1) % capacity
}

// feedInOrder returns the ring's records oldest-first. The returned slice
// aliases ring records (not the ring's backing array order) and must be
// consumed before the node processes further deliveries.
func (ln *liveNode) feedInOrder() []feedRecord {
	if len(ln.feed) < ln.runner.cfg.FeedCapacity {
		return ln.feed
	}
	out := make([]feedRecord, 0, len(ln.feed))
	out = append(out, ln.feed[ln.feedNext:]...)
	out = append(out, ln.feed[:ln.feedNext]...)
	return out
}

// nodeRNG derives the per-node randomness stream, shared by the initial
// fleet and scheduled joiners.
func nodeRNG(seed int64, id news.NodeID) *rand.Rand {
	return rand.New(rand.NewSource(seed*999983 + int64(id)))
}

// NewRunner builds a live fleet over the given network.
func NewRunner(cfg Config, ds *dataset.Dataset, net Network) *Runner {
	cfg = cfg.withDefaults()
	r := &Runner{
		cfg:     cfg,
		ds:      ds,
		net:     net,
		col:     metrics.NewCollector(),
		fleet:   make(map[news.NodeID]*liveNode, ds.Users),
		states:  make(map[news.NodeID]sim.MemberState, ds.Users),
		churn:   make(map[int64][]sim.ChurnEvent),
		ctrlRNG: rand.New(rand.NewSource(cfg.Seed*7919 + 17)),
	}
	for _, ev := range cfg.Churn.Events {
		r.churn[ev.Cycle] = append(r.churn[ev.Cycle], ev)
	}
	for i := range ds.Items {
		if ds.IsWarmup(i) {
			r.col.RegisterWarmupItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		} else {
			r.col.RegisterItem(ds.Items[i].News.ID, ds.Items[i].Interested)
		}
	}
	base := cfg.Opinions
	if base == nil {
		base = ds.Opinions()
	}
	initial := make([]*liveNode, 0, ds.Users)
	for u := 0; u < ds.Users; u++ {
		id := news.NodeID(u)
		r.col.RegisterNode(id, ds.UserInterestCount(id))
		rng := nodeRNG(cfg.Seed, id)
		ops := &nodeOpinions{self: id, base: base, over: make(map[news.ID]bool)}
		ln := &liveNode{
			node:   core.NewNode(id, "", cfg.NodeConfig, ops, rng),
			inbox:  net.Register(id),
			quit:   make(chan struct{}),
			done:   make(chan struct{}),
			ctl:    make(chan ctlRequest),
			runner: r,
			rng:    rng,
			ops:    ops,
		}
		initial = append(initial, ln)
		r.fleet[id] = ln
		r.order = append(r.order, id)
		r.states[id] = sim.Online
	}
	// Assign publications to their source nodes, in cycle order.
	for i := range ds.Items {
		src := ds.Items[i].News.Source
		if ln := r.fleet[src]; ln != nil {
			ln.pubs = append(ln.pubs, ds.Items[i])
		}
	}
	for _, ln := range initial {
		sort.SliceStable(ln.pubs, func(i, j int) bool { return ln.pubs[i].Cycle < ln.pubs[j].Cycle })
	}
	// Bootstrap: random initial views.
	boot := rand.New(rand.NewSource(cfg.Seed))
	for _, ln := range initial {
		var descs []overlay.Descriptor
		for _, j := range boot.Perm(len(initial)) {
			if news.NodeID(j) == ln.node.ID() {
				continue
			}
			descs = append(descs, overlay.Descriptor{
				Node:    news.NodeID(j),
				Stamp:   0,
				Profile: initial[j].node.AdvertisedProfile(0).Clone(),
			})
			if len(descs) == cfg.BootstrapDegree {
				break
			}
		}
		ln.node.SeedViews(descs)
	}
	return r
}

// Collector returns the shared metrics collector. Safe to read after Run
// returns.
func (r *Runner) Collector() *metrics.Collector { return r.col }

// State returns the lifecycle state of a member; ok is false for ids the
// runner has never seen. Safe to call at any time, including while the
// fleet is running.
func (r *Runner) State(id news.NodeID) (sim.MemberState, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.states[id]
	return st, ok
}

// OnlineCount returns the number of members currently online. Safe to call
// at any time.
func (r *Runner) OnlineCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, st := range r.states {
		if st == sim.Online {
			n++
		}
	}
	return n
}

// MemberCount returns the number of members ever registered, including
// offline and departed ones. Safe to call at any time.
func (r *Runner) MemberCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fleet)
}

// Node returns the node with the given id in any lifecycle state, or nil.
//
// Deprecated: Node hands out unsynchronized protocol state and is only safe
// once Run has returned (node goroutines own their state while running).
// Use Snapshot, Feed, Feedback and Publish, which are serialized with the
// node's own message handling and safe mid-run.
func (r *Runner) Node(id news.NodeID) *core.Node {
	if ln := r.fleet[id]; ln != nil {
		return ln.node
	}
	return nil
}

// viewSample is one online node's view snapshot.
type viewSample struct {
	id       news.NodeID
	rps, wup []overlay.Descriptor
}

// onlineViews snapshots both views of every online member. While the fleet
// is running each snapshot is pulled through the node's own control channel
// (so it is consistent with the node's message handling); after Run returns
// the views are read directly under the membership lock. A node stopped
// mid-collection is skipped.
func (r *Runner) onlineViews() []viewSample {
	r.mu.RLock()
	running := r.running
	lns := make([]*liveNode, 0, len(r.order))
	for _, id := range r.order {
		if r.states[id] == sim.Online {
			lns = append(lns, r.fleet[id])
		}
	}
	r.mu.RUnlock()
	out := make([]viewSample, 0, len(lns))
	for _, ln := range lns {
		if running {
			if snap, ok := ln.snapshot(); ok {
				out = append(out, viewSample{id: ln.node.ID(), rps: snap.rps, wup: snap.wup})
			}
			continue
		}
		r.mu.RLock()
		out = append(out, viewSample{
			id:  ln.node.ID(),
			rps: ln.node.RPS().View().Entries(),
			wup: ln.node.WUP().View().Entries(),
		})
		r.mu.RUnlock()
	}
	return out
}

// GhostFraction measures the self-healing state of the overlay: the fraction
// of descriptors across online nodes' RPS and WUP views that point at a
// member that is not online. Safe to call at any time; while the fleet is
// running the views are snapshotted through each node's control channel.
func (r *Runner) GhostFraction() float64 {
	views := r.onlineViews()
	r.mu.RLock()
	defer r.mu.RUnlock()
	total, ghosts := 0, 0
	count := func(descs []overlay.Descriptor) {
		for _, d := range descs {
			total++
			if st, ok := r.states[d.Node]; !ok || st != sim.Online {
				ghosts++
			}
		}
	}
	for _, v := range views {
		count(v.rps)
		count(v.wup)
	}
	if total == 0 {
		return 0
	}
	return float64(ghosts) / float64(total)
}

// start launches a node goroutine.
func (r *Runner) start(ln *liveNode) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ln.loop()
	}()
}

// Run starts every node goroutine, drives the membership schedule at cycle
// boundaries for the configured number of cycles, then stops the fleet and
// returns. Equivalent to RunContext with a background context.
func (r *Runner) Run() { r.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the fleet shuts down at
// the first cycle boundary after ctx is cancelled. With a negative
// Config.Cycles the run is unbounded and cancellation is the only way it
// ends — the serving mode. While RunContext is executing, the concurrent
// accessors (State, Members, Stats, GhostFraction) and the serving surface
// (Snapshot, Feed, Feedback, Publish) are safe from any goroutine.
func (r *Runner) RunContext(ctx context.Context) {
	r.mu.Lock()
	r.running = true
	r.mu.Unlock()
	for _, id := range r.order {
		r.start(r.fleet[id])
	}
	ticker := time.NewTicker(r.cfg.CycleLength)
	defer ticker.Stop()
loop:
	for c := int64(1); r.cfg.Cycles < 0 || c <= int64(r.cfg.Cycles); c++ {
		select {
		case <-ctx.Done():
			break loop
		case <-ticker.C:
		}
		r.cycle.Store(c)
		r.applyChurn(c)
		if r.cfg.Timeline {
			r.sampleTimeline(c)
		}
	}
	for _, id := range r.order {
		if r.states[id] == sim.Online {
			close(r.fleet[id].quit)
		}
	}
	r.wg.Wait()
	r.net.Close()
	// Publish the node goroutines' final state to post-Run readers: their
	// writes happened-before wg.Wait returned, and the lock hand-off makes
	// them visible to any accessor that acquires mu afterwards.
	r.mu.Lock()
	r.running = false
	r.mu.Unlock()
}

// applyChurn applies the scheduled membership events of one cycle tick, in
// schedule order.
func (r *Runner) applyChurn(now int64) {
	for _, ev := range r.churn[now] {
		switch ev.Kind {
		case sim.ChurnJoin:
			r.join(ev.Node, now)
		case sim.ChurnLeave:
			r.stop(ev.Node, true, now)
		case sim.ChurnCrash:
			r.stop(ev.Node, false, now)
		case sim.ChurnRejoin:
			r.rejoin(ev.Node, now)
		}
	}
}

// Cycle returns the fleet's current gossip cycle (an atomic load). It is the
// clock to hand a transport's SetPolicy so scheduled partitions start and
// heal on fleet cycles rather than wall-clock time.
func (r *Runner) Cycle() int64 { return r.cycle.Load() }

// Timeline returns the per-cycle fleet health samples recorded so far when
// Config.Timeline is set. Safe to call at any time; the returned slice must
// not be appended to by the caller.
func (r *Runner) Timeline() []metrics.ChurnSample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.timeline
}

// sampleTimeline records one fleet health sample: view snapshots are pulled
// through each online node's control channel first (never while holding the
// collector lock — a node may be blocked on that very lock, and its goroutine
// must stay free to answer), then cohort labels are read under one lock.
func (r *Runner) sampleTimeline(now int64) {
	nodeCfg := r.cfg.NodeConfig.WithDefaults()
	views := r.onlineViews()
	s := metrics.ChurnSample{Cycle: now, Members: len(r.fleet), Online: len(views)}
	if r.cfg.Links != nil {
		s.PartitionsActive = r.cfg.Links.ActivePartitions(now)
	}
	total, ghosts := 0, 0
	count := func(descs []overlay.Descriptor) {
		for _, d := range descs {
			total++
			if st, ok := r.states[d.Node]; !ok || st != sim.Online {
				ghosts++
			}
		}
	}
	var rpsFill, wupFill float64
	for _, v := range views {
		rpsFill += float64(len(v.rps)) / float64(nodeCfg.RPSViewSize)
		wupFill += float64(len(v.wup)) / float64(nodeCfg.WUPViewSize)
		count(v.rps)
		count(v.wup)
	}
	if len(views) > 0 {
		s.RPSFill = rpsFill / float64(len(views))
		s.WUPFill = wupFill / float64(len(views))
	}
	if total > 0 {
		s.GhostFraction = float64(ghosts) / float64(total)
	}
	r.colMu.Lock()
	for _, v := range views {
		s.OnlineByCohort[r.col.CohortOf(v.id)]++
	}
	r.colMu.Unlock()
	r.mu.Lock()
	r.timeline = append(r.timeline, s)
	r.mu.Unlock()
}

// exec runs fn on the node's goroutine through the control channel,
// serialized with the node's protocol handling, and blocks until fn has run.
// It returns false without running fn when the node goroutine has exited (a
// concurrent lifecycle stop); the caller then falls back to the
// controller-owned path or reports the node offline.
func (ln *liveNode) exec(fn func(ln *liveNode, cycle int64)) bool {
	req := ctlRequest{fn: fn, done: make(chan struct{})}
	select {
	case ln.ctl <- req:
		<-req.done
		return true
	case <-ln.done:
		return false
	}
}

// snapshot asks a running node goroutine for a state snapshot. ok is false
// when the goroutine exited before answering.
func (ln *liveNode) snapshot() (ctlSnapshot, bool) {
	var snap ctlSnapshot
	ok := ln.exec(func(ln *liveNode, cycle int64) {
		n := ln.node
		snap = ctlSnapshot{
			desc: overlay.Descriptor{Node: n.ID(), Stamp: cycle, Profile: n.AdvertisedProfile(cycle).Clone()},
			rps:  n.RPS().View().Entries(),
			wup:  n.WUP().View().Entries(),
		}
	})
	return snap, ok
}

// randomOnline picks a uniformly random online member other than self, nil
// when none exists.
func (r *Runner) randomOnline(self news.NodeID) *liveNode {
	candidates := make([]news.NodeID, 0, len(r.order))
	for _, id := range r.order {
		if id != self && r.states[id] == sim.Online {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return r.fleet[candidates[r.ctrlRNG.Intn(len(candidates))]]
}

// onlineDescriptors samples up to BootstrapDegree fresh descriptors of
// online members (excluding self), each obtained from the member's own
// goroutine so profiles are consistent snapshots stamped with the host's
// current cycle.
func (r *Runner) onlineDescriptors(self news.NodeID) []overlay.Descriptor {
	descs := make([]overlay.Descriptor, 0, r.cfg.BootstrapDegree)
	for _, j := range r.ctrlRNG.Perm(len(r.order)) {
		id := r.order[j]
		if id == self || r.states[id] != sim.Online {
			continue
		}
		snap, ok := r.fleet[id].snapshot()
		if !ok {
			continue
		}
		descs = append(descs, snap.desc)
		if len(descs) == r.cfg.BootstrapDegree {
			break
		}
	}
	return descs
}

// join registers a brand-new node and cold-starts it from a live host's
// views (paper Section II-D) before its goroutine spawns.
func (r *Runner) join(id news.NodeID, now int64) {
	if _, exists := r.fleet[id]; exists {
		return
	}
	rng := nodeRNG(r.cfg.Seed, id)
	var node *core.Node
	var ops *nodeOpinions
	if r.cfg.NewNode != nil {
		node = r.cfg.NewNode(id, rng)
	} else {
		base := r.cfg.Opinions
		if base == nil {
			base = r.ds.Opinions()
		}
		ops = &nodeOpinions{self: id, base: base, over: make(map[news.ID]bool)}
		node = core.NewNode(id, "", r.cfg.NodeConfig, ops, rng)
	}
	if node == nil || node.ID() != id {
		return
	}
	ln := &liveNode{
		node:       node,
		inbox:      r.net.Register(id),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		ctl:        make(chan ctlRequest),
		runner:     r,
		rng:        rng,
		ops:        ops,
		startCycle: now,
	}
	if host := r.randomOnline(id); host != nil {
		if snap, ok := host.snapshot(); ok {
			node.ColdStart(snap.rps, snap.wup, now)
		}
	}
	r.mu.Lock()
	r.fleet[id] = ln
	r.order = append(r.order, id)
	r.states[id] = sim.Online
	r.mu.Unlock()
	r.start(ln)
}

// stop takes an online node down: its goroutine exits, its views are wiped,
// and its transport endpoints are torn down — abruptly on a crash (pending
// frames drop), flushing pending batches first on a graceful leave. With
// Config.DepartureNotices a graceful leaver first sends departure frames to
// its view neighbours (while the controller owns the node and before the
// graceful disconnect, so the transport flushes them).
func (r *Runner) stop(id news.NodeID, graceful bool, now int64) {
	ln := r.fleet[id]
	if ln == nil || r.states[id] != sim.Online {
		return
	}
	close(ln.quit)
	<-ln.done // the goroutine has exited; the controller owns the node now
	if graceful && r.cfg.DepartureNotices {
		r.sendDepartureNotices(ln, now)
	}
	// The state wipe and the lifecycle transition publish under mu, so a
	// concurrent serving read sees either the pre-stop or the post-stop
	// node, never a half-wiped one.
	r.mu.Lock()
	if graceful {
		ln.node.Leave()
		r.states[id] = sim.Departed
	} else {
		ln.node.Crash()
		r.states[id] = sim.Offline
	}
	r.mu.Unlock()
	r.net.Disconnect(id, graceful)
}

// sendDepartureNotices emits the leaver's departure frame to every distinct
// online neighbour in its RPS and WUP views — its final courtesy messages,
// sent before Leave wipes the views.
func (r *Runner) sendDepartureNotices(ln *liveNode, now int64) {
	id := ln.node.ID()
	tombs := []overlay.Tombstone{{Node: id, Stamp: now}}
	seen := map[news.NodeID]struct{}{}
	notify := func(d overlay.Descriptor) {
		if _, dup := seen[d.Node]; dup {
			return
		}
		seen[d.Node] = struct{}{}
		if r.states[d.Node] != sim.Online {
			return
		}
		r.send(envelope{Kind: wireDeparture, From: id, To: d.Node, Tombs: tombs})
	}
	ln.node.RPS().View().ForEach(notify)
	ln.node.WUP().View().ForEach(notify)
}

// rejoin brings a crashed node back: a fresh transport endpoint, views
// re-seeded from an online sample (profile retained across the downtime),
// and a new goroutine continuing at the fleet's current cycle.
func (r *Runner) rejoin(id news.NodeID, now int64) {
	old := r.fleet[id]
	if old == nil || r.states[id] != sim.Offline {
		return
	}
	ln := &liveNode{
		node:       old.node,
		inbox:      r.net.Register(id),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		ctl:        make(chan ctlRequest),
		runner:     r,
		rng:        old.rng,
		ops:        old.ops,
		feed:       old.feed, // the feed is durable client state, like the profile
		feedNext:   old.feedNext,
		pubs:       old.pubs,
		startCycle: now,
	}
	// Publications scheduled during the downtime never fire, like a post
	// from a crashed client (the simulator drops offline publications too).
	ln.pubIdx = sort.Search(len(ln.pubs), func(i int) bool { return ln.pubs[i].Cycle >= now })
	boot := r.onlineDescriptors(id)
	// Rejoin mutates the offline node's retained state (profile purge, view
	// re-seed), which concurrent serving reads may be inspecting: publish
	// both the mutation and the membership swap under mu.
	r.mu.Lock()
	ln.node.Rejoin(boot, now)
	r.fleet[id] = ln
	r.states[id] = sim.Online
	r.mu.Unlock()
	r.start(ln)
}

// record safely updates the shared collector.
func (r *Runner) record(fn func(col *metrics.Collector)) {
	r.colMu.Lock()
	defer r.colMu.Unlock()
	fn(r.col)
}

// send encodes the envelope once, accounts its exact framed length, and
// hands both the envelope and the frame bytes to the transport.
func (r *Runner) send(env envelope) {
	buf := getBuf()
	*buf = appendFrame(*buf, env)
	env.frame = *buf
	r.record(func(col *metrics.Collector) { col.RecordMessage(env.kind(), len(env.frame)) })
	r.net.Send(env)
	putBuf(buf)
}

// loop is the node goroutine: a fleet-clock poll interleaved with inbound
// message processing and controller snapshot requests.
//
// Nodes do not count their own ticks. The controller's fleet clock is the
// only cycle authority: the node polls it at twice the cycle rate and runs
// its periodic actions when the clock has advanced. A free-running per-node
// ticker would drift against the controller under scheduler pressure — in
// either direction — leaving descriptor stamps and DescriptorTTL horizons
// meaningless across the fleet (a departed node could end up stamped
// "fresher" than every survivor's eviction threshold). With the shared
// clock a node performs at most one RPS and one WUP exchange per fleet
// cycle, exactly like the simulator's peers; a starved node skips cycles
// instead of lagging (publications catch up through pubIdx).
func (ln *liveNode) loop() {
	defer close(ln.done)
	poll := ln.runner.cfg.CycleLength / 2
	if poll <= 0 {
		poll = ln.runner.cfg.CycleLength
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	cycle := ln.startCycle
	for {
		select {
		case <-ln.quit:
			return
		case <-ticker.C:
			g := ln.runner.cycle.Load()
			if g <= cycle {
				continue // the fleet clock has not advanced yet
			}
			cycle = g
			ln.onCycle(cycle)
		case env, ok := <-ln.inbox:
			if !ok {
				return
			}
			ln.onMessage(env, cycle)
		case req := <-ln.ctl:
			req.fn(ln, cycle)
			close(req.done)
		}
	}
}

// onCycle runs the periodic protocol actions: window purge, adaptive view
// refill, RPS and WUP exchange initiation, and this node's scheduled
// publications.
func (ln *liveNode) onCycle(cycle int64) {
	n := ln.node
	n.BeginCycle(cycle)
	ln.maybeRefill(cycle)

	tombs := n.AppendTombstones(nil)
	if target, ok := n.RPS().SelectPeer(); ok {
		push := n.RPS().MakePush(n.RPS().Descriptor(cycle, n.AdvertisedProfile(cycle)))
		ln.runner.send(envelope{Kind: wireRPSRequest, From: n.ID(), To: target.Node, Descs: push, Tombs: tombs})
	}
	n.InjectRPSCandidates()
	if target, ok := n.WUP().SelectPeer(); ok {
		push := n.WUP().MakePush(n.WUP().Descriptor(cycle, n.AdvertisedProfile(cycle)))
		ln.runner.send(envelope{Kind: wireWUPRequest, From: n.ID(), To: target.Node, Descs: push, Tombs: tombs})
	}

	for ln.pubIdx < len(ln.pubs) && ln.pubs[ln.pubIdx].Cycle <= cycle {
		it := ln.pubs[ln.pubIdx]
		ln.pubIdx++
		for _, s := range n.Publish(it.News, cycle) {
			ln.runner.send(envelope{Kind: wireItem, From: n.ID(), To: s.To, Item: s.Msg})
		}
	}
}

// maybeRefill implements the adaptive view refill (Config.RefillWatermark):
// when churn eviction has left either view under the watermark, the node
// pulls an anti-entropy descriptor sample from the freshest surviving
// neighbour it still knows — the peer most likely to be alive.
func (ln *liveNode) maybeRefill(cycle int64) {
	wm := ln.runner.cfg.RefillWatermark
	if wm <= 0 {
		return
	}
	n := ln.node
	rpsView, wupView := n.RPS().View(), n.WUP().View()
	rpsLow := float64(rpsView.Len()) < wm*float64(rpsView.Capacity())
	wupLow := float64(wupView.Len()) < wm*float64(wupView.Capacity())
	if !rpsLow && !wupLow {
		return
	}
	var best overlay.Descriptor
	found := false
	scan := func(d overlay.Descriptor) {
		if !found || d.Fresher(best) {
			best, found = d, true
		}
	}
	rpsView.ForEach(scan)
	wupView.ForEach(scan)
	if !found {
		return // fully isolated; nothing to pull from
	}
	req := []overlay.Descriptor{n.RPS().Descriptor(cycle, n.AdvertisedProfile(cycle))}
	ln.runner.send(envelope{Kind: wireRefillRequest, From: n.ID(), To: best.Node, Descs: req, Tombs: n.AppendTombstones(nil)})
}

// absorbTombs applies piggybacked departure notices before the descriptors
// they arrived with are merged, so a tombstoned peer's stale descriptors in
// the same envelope cannot re-enter the views.
func (ln *liveNode) absorbTombs(tombs []overlay.Tombstone, cycle int64) {
	for _, t := range tombs {
		ln.node.NoteDeparture(t, cycle)
	}
}

// evictStale re-applies the descriptor-TTL horizon after a gossip merge.
// Unlike the simulator's barrier-aligned cycles, a live node absorbs pushes
// and replies between its ticks, so one tick-starved peer gossiping a view
// it has not purged yet would re-seed descriptors of departed members into
// views that had already healed; evicting at ingestion keeps a healed view
// healed.
func (ln *liveNode) evictStale(cycle int64) {
	ttl := ln.node.Config().DescriptorTTL
	if ttl <= 0 {
		return
	}
	ln.node.RPS().EvictOlderThan(cycle - ttl)
	ln.node.WUP().EvictOlderThan(cycle - ttl)
}

// onMessage dispatches one inbound envelope. Piggybacked departure notices
// are absorbed first, so the descriptor merge that follows cannot re-insert
// a tombstoned peer; replies carry this node's own active tombstones back.
func (ln *liveNode) onMessage(env envelope, cycle int64) {
	n := ln.node
	if len(env.Tombs) > 0 {
		ln.absorbTombs(env.Tombs, cycle)
	}
	switch env.Kind {
	case wireRPSRequest:
		reply := n.RPS().AcceptPush(env.Descs, n.RPS().Descriptor(cycle, n.AdvertisedProfile(cycle)))
		ln.evictStale(cycle)
		ln.runner.send(envelope{Kind: wireRPSReply, From: n.ID(), To: env.From, Descs: reply, Tombs: n.AppendTombstones(nil)})
	case wireRPSReply:
		n.RPS().AcceptReply(env.Descs)
		ln.evictStale(cycle)
	case wireWUPRequest:
		// The wire descriptor carries the advertised profile; similarity
		// ranking keeps the real one (private state, not a wire payload).
		reply := n.WUP().AcceptPush(env.Descs, n.WUP().Descriptor(cycle, n.AdvertisedProfile(cycle)), n.UserProfile())
		ln.evictStale(cycle)
		ln.runner.send(envelope{Kind: wireWUPReply, From: n.ID(), To: env.From, Descs: reply, Tombs: n.AppendTombstones(nil)})
	case wireWUPReply:
		n.WUP().AcceptReply(env.Descs, n.UserProfile())
		ln.evictStale(cycle)
	case wireDeparture:
		// The notices rode in env.Tombs and were absorbed above.
	case wireRefillRequest:
		// Anti-entropy pull: answer with an RPS-style exchange (own fresh
		// descriptor plus half the view), merging the puller's descriptor.
		reply := n.RPS().AcceptPush(env.Descs, n.RPS().Descriptor(cycle, n.AdvertisedProfile(cycle)))
		ln.evictStale(cycle)
		ln.runner.send(envelope{Kind: wireRefillReply, From: n.ID(), To: env.From, Descs: reply, Tombs: n.AppendTombstones(nil)})
	case wireRefillReply:
		n.RPS().AcceptReply(env.Descs)
		n.WUP().Merge(env.Descs, n.UserProfile())
		ln.evictStale(cycle)
	case wireItem:
		// Snapshot the item profile before Receive folds this user's own
		// profile into it, so the feed scores the item as it arrived
		// (copy-on-write: the clone is a header, not an entry copy).
		var arrived *profile.Profile
		if ln.runner.cfg.FeedCapacity > 0 && !n.Seen(env.Item.Item.ID) {
			arrived = env.Item.Profile.Clone()
		}
		d, sends := n.Receive(env.Item, cycle)
		if d.Duplicate {
			return
		}
		if arrived != nil {
			ln.feedPush(feedRecord{
				item:       env.Item.Item,
				profile:    arrived,
				cycle:      cycle,
				hops:       d.Hops,
				viaDislike: d.ViaDislike,
			})
		}
		ln.runner.record(func(col *metrics.Collector) {
			col.RecordDelivery(d)
			if len(sends) > 0 {
				col.RecordForward(d.Liked, d.Hops)
			}
			if ln.runner.cfg.OnDelivery != nil {
				ln.runner.cfg.OnDelivery(d)
			}
		})
		for _, s := range sends {
			ln.runner.send(envelope{Kind: wireItem, From: n.ID(), To: s.To, Item: s.Msg})
		}
	}
}
