package live

import (
	"runtime"
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/faultnet"
	"whatsup/internal/news"
)

// halvesPartition cuts the fleet into two halves for the [start, heal)
// cycle window.
func halvesPartition(n int, start, heal int64) *faultnet.Policy {
	groups := make(map[news.NodeID]int, n)
	for i := 0; i < n; i++ {
		if i < n/2 {
			groups[news.NodeID(i)] = 0
		} else {
			groups[news.NodeID(i)] = 1
		}
	}
	p := faultnet.New()
	p.AddPartition(faultnet.Partition{Groups: groups, Start: start, Heal: heal})
	return p
}

// crossHalfEdges counts RPS view entries spanning the two halves.
func crossHalfEdges(r *Runner, n int) int {
	cross := 0
	for i := 0; i < n; i++ {
		node := r.Node(news.NodeID(i))
		if node == nil {
			continue
		}
		for _, d := range node.RPS().View().Entries() {
			if (i < n/2) != (int(d.Node) < n/2) {
				cross++
			}
		}
	}
	return cross
}

// runLivePartition drives a live fleet through a mid-run 2-way partition on
// the given transport and asserts the shared robustness contract: the
// timeline records the cut opening and healing, the overlays span the former
// cut again by the end, traffic flowed, and no goroutines leak.
func runLivePartition(t *testing.T, makeNet func() Network) {
	t.Helper()
	base := runtime.NumGoroutine()
	const (
		start  = 5
		heal   = 14
		cycles = 30
	)
	ds := tinySurvey(14)
	links := halvesPartition(ds.Users, start, heal)
	nw := makeNet()
	nodeCfg := core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 40}
	r := NewRunner(Config{
		Seed:        4,
		Cycles:      cycles,
		CycleLength: 5 * time.Millisecond,
		NodeConfig:  nodeCfg,
		Timeline:    true,
		Links:       links,
	}, ds, nw)
	type policied interface {
		SetPolicy(p *faultnet.Policy, clock func() int64)
	}
	nw.(policied).SetPolicy(links, r.Cycle)
	r.Run()

	sawCut, sawHealed := false, false
	for _, s := range r.Timeline() {
		switch {
		case s.Cycle >= start && s.Cycle < heal:
			if s.PartitionsActive == 1 {
				sawCut = true
			}
		case s.Cycle >= heal:
			if s.PartitionsActive != 0 {
				t.Fatalf("cycle %d still reports %d active partitions after the heal", s.Cycle, s.PartitionsActive)
			}
			sawHealed = true
		}
	}
	if !sawCut {
		t.Fatal("timeline never recorded the partition as active")
	}
	if !sawHealed {
		t.Fatal("timeline has no post-heal samples")
	}
	if cross := crossHalfEdges(r, ds.Users); cross == 0 {
		t.Fatal("views never re-knit across the healed partition")
	}
	if r.Collector().TotalMessages() == 0 {
		t.Fatal("no traffic despite a live fleet")
	}
	waitGoroutinesBelow(t, base+2)
}

// TestLivePartitionHealChannelNet is the partition-heal scenario on the
// in-memory transport.
func TestLivePartitionHealChannelNet(t *testing.T) {
	runLivePartition(t, func() Network { return NewChannelNet(7, 0, 0) })
}

// TestLivePartitionHealTCPNet is the partition-heal scenario over real
// loopback sockets, with a small default latency rule active so the delayed
// writer path runs throughout — the goroutine pin at the end proves delayed
// sends are tracked and drained, not leaked.
func TestLivePartitionHealTCPNet(t *testing.T) {
	runLivePartition(t, func() Network {
		return NewTCPNet(TCPNetConfig{SlowEvery: 0, Seed: 7})
	})
}

// TestTCPNetDelayedSendDelivers pins the writer-boundary delay path of the
// TCP transport: a policy with per-link latency must deliver every envelope
// (late, not lost), and Close must wait out the in-flight delay goroutines.
func TestTCPNetDelayedSendDelivers(t *testing.T) {
	base := runtime.NumGoroutine()
	const n = 20
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0, Seed: 3})
	p := faultnet.New().SetDefault(faultnet.Rule{Base: 3 * time.Millisecond, Jitter: 2 * time.Millisecond})
	tn.SetPolicy(p, nil)
	box := tn.Register(1)
	for i := 0; i < n; i++ {
		tn.Send(testItemEnvelope(i, 1))
	}
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < n && time.Now().Before(deadline) {
		got += drainBox(box)
		time.Sleep(2 * time.Millisecond)
	}
	if got != n {
		t.Fatalf("delayed sends delivered %d/%d envelopes", got, n)
	}
	tn.Close()
	waitGoroutinesBelow(t, base+2)
}

// TestTCPNetPolicyLossDrops pins the drop path: a link rule with Loss=1
// suppresses every envelope without queueing or leaking anything.
func TestTCPNetPolicyLossDrops(t *testing.T) {
	base := runtime.NumGoroutine()
	tn := NewTCPNet(TCPNetConfig{SlowEvery: 0, Seed: 5})
	p := faultnet.New().SetDefault(faultnet.Rule{Loss: 1})
	tn.SetPolicy(p, nil)
	box := tn.Register(1)
	for i := 0; i < 10; i++ {
		tn.Send(testItemEnvelope(i, 1))
	}
	time.Sleep(20 * time.Millisecond)
	if got := drainBox(box); got != 0 {
		t.Fatalf("lossy policy delivered %d envelopes, want 0", got)
	}
	tn.Close()
	waitGoroutinesBelow(t, base+2)
}
