package live

import (
	"errors"
	"runtime"
	"sort"

	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/sim"
)

// This file is the runner's serving surface: the concurrent read/feedback
// API that internal/api exposes over HTTP. Every method is safe from any
// goroutine at any time. While a node is online its state is reached through
// the control channel — the request runs on the node's own goroutine,
// serialized with its protocol handling, so no locks touch the gossip hot
// path. Offline (and post-Run) nodes are owned by the controller, which
// publishes every mutation under the membership lock; serving reads then go
// direct under its read side, and serving mutations (Feedback) under its
// write side.

var (
	// ErrUnknownNode reports an id the runner has never registered.
	ErrUnknownNode = errors.New("live: unknown node")
	// ErrNodeOffline reports an operation that needs the node's goroutine
	// (publishing) while the node is crashed or departed.
	ErrNodeOffline = errors.New("live: node offline")
	// ErrNotRunning reports an operation that needs the fleet's controller
	// (publishing) outside a Run.
	ErrNotRunning = errors.New("live: fleet not running")
	// ErrDegraded reports a fleet serving in degraded mode: a majority of
	// its non-departed members are offline, so feeds are going stale and
	// clients should back off and retry rather than trust the answer.
	ErrDegraded = errors.New("live: fleet degraded")
)

// FeedEntry is one ranked recommendation in a node's feed: a BEEP-delivered
// item together with how the node's current profile scores it.
type FeedEntry struct {
	Item news.Item
	// Score ranks the entry: the node metric's similarity between the user
	// profile and the item profile the item arrived with, biased by the
	// user's own rating (+1 liked, −1 disliked) so feedback visibly
	// reorders the feed.
	Score float64
	// Rated and Liked reflect the user profile's current entry for the item
	// (the initial opinion or the latest Feedback).
	Rated bool
	Liked bool
	// Cycle is the fleet cycle the item arrived at this node; Hops and
	// ViaDislike describe its dissemination path.
	Cycle      int64
	Hops       int
	ViaDislike bool
}

// NodeSnapshot is a consistent point-in-time view of one node's protocol
// state, taken while the node was between message handlers.
type NodeSnapshot struct {
	ID    news.NodeID
	State sim.MemberState
	// Cycle is the node's local cycle at snapshot time (offline nodes report
	// the fleet clock).
	Cycle int64
	// ProfileSize is the number of entries in the user profile P̃.
	ProfileSize int
	// RPSView and WUPView are copies of the two overlay views.
	RPSView []overlay.Descriptor
	WUPView []overlay.Descriptor
	// FeedSize is the number of deliveries the node's feed retains.
	FeedSize int
}

// Member summarizes one fleet member's lifecycle state.
type Member struct {
	ID    news.NodeID
	State sim.MemberState
}

// FleetStats is a point-in-time roll-up of the fleet and its metrics.
type FleetStats struct {
	Cycle     int64
	Members   int
	Online    int
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
	Bytes     int64
}

// withNode runs fn against the node's protocol state with the appropriate
// serialization: on the node's own goroutine through the control channel
// while it is live, directly under the membership lock once the controller
// owns the node (offline, departed, or after Run) — the read side for pure
// reads, the write side when mutate is set, so two direct mutations (two
// Feedback calls on an offline node, say) serialize against each other as
// well as against the controller. fn must not call back into the runner's
// locked accessors.
func (r *Runner) withNode(id news.NodeID, mutate bool, fn func(ln *liveNode, cycle int64)) error {
	for {
		r.mu.RLock()
		ln := r.fleet[id]
		st := r.states[id]
		running := r.running
		r.mu.RUnlock()
		if ln == nil {
			return ErrUnknownNode
		}
		if running && st == sim.Online {
			if ln.exec(fn) {
				return nil
			}
			// The goroutine exited between the state read and the send: the
			// controller is mid-teardown and still owns the node lock-free
			// (departure notices run before the state wipe publishes under
			// mu), so touching the node now would race it. Yield until the
			// lifecycle transition lands — the state stops reading Online —
			// or a rejoin revives the goroutine and exec succeeds.
			runtime.Gosched()
			continue
		}
		// Controller-owned path: the node's goroutine is not running, and the
		// membership lock serializes fn against the controller's lifecycle
		// writes (Leave/Crash wipe, Rejoin re-seed) and, on the write side,
		// against other direct mutations.
		if mutate {
			r.mu.Lock()
		} else {
			r.mu.RLock()
		}
		// Re-check under the lock: a rejoin may have brought the node online
		// between the two acquisitions, in which case its goroutine owns the
		// protocol state again and fn must go through the control channel.
		if r.running && r.states[id] == sim.Online {
			if mutate {
				r.mu.Unlock()
			} else {
				r.mu.RUnlock()
			}
			continue
		}
		// Re-fetch: a past rejoin may have swapped the liveNode.
		fn(r.fleet[id], r.cycle.Load())
		if mutate {
			r.mu.Unlock()
		} else {
			r.mu.RUnlock()
		}
		return nil
	}
}

// Feed returns the node's current feed, ranked best-first: descending
// score, then most recent arrival, then item id. The slice is the caller's.
// Works in every lifecycle state (an offline node serves the feed it
// retained, like a disconnected client rendering its cache) — unless the
// fleet as a whole is Degraded, in which case Feed refuses with ErrDegraded
// so clients back off instead of reading feeds the mesh can no longer keep
// fresh.
func (r *Runner) Feed(id news.NodeID) ([]FeedEntry, error) {
	if r.Degraded() {
		return nil, ErrDegraded
	}
	var out []FeedEntry
	err := r.withNode(id, false, func(ln *liveNode, cycle int64) {
		out = ln.feedEntries()
	})
	return out, err
}

// Degraded reports whether a majority of the fleet's non-departed members
// are offline — the mesh has lost quorum for dissemination, so feeds stop
// improving until nodes come back. Safe to call at any time.
func (r *Runner) Degraded() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	online, members := 0, 0
	for _, st := range r.states {
		if st == sim.Departed {
			continue
		}
		members++
		if st == sim.Online {
			online++
		}
	}
	return members > 0 && online*2 < members
}

// feedEntries builds the ranked feed from the node's ring. Runs serialized
// with the node's protocol handling (via withNode).
func (ln *liveNode) feedEntries() []FeedEntry {
	n := ln.node
	metric := n.Config().Metric
	user := n.UserProfile()
	recs := ln.feedInOrder()
	out := make([]FeedEntry, 0, len(recs))
	for _, rec := range recs {
		e := FeedEntry{
			Item:       rec.item,
			Score:      metric.Similarity(user, rec.profile),
			Cycle:      rec.cycle,
			Hops:       rec.hops,
			ViaDislike: rec.viaDislike,
		}
		if ent, ok := user.Get(rec.item.ID); ok {
			e.Rated = true
			e.Liked = ent.Score >= 0.5
			if e.Liked {
				e.Score++
			} else {
				e.Score--
			}
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle > out[j].Cycle
		}
		return out[i].Item.ID < out[j].Item.ID
	})
	return out
}

// Feedback records the user's like (liked=true) or dislike of an item on
// the node: the user profile entry is set to 1 or 0 at the node's current
// cycle — re-rating an already-delivered item exactly as the prototype's
// interface did — and, for runner-built nodes, the opinion override makes
// any future first delivery of the item agree with the expressed opinion.
// Works in every lifecycle state; an offline node's feedback lands in its
// retained profile, surviving into a rejoin.
func (r *Runner) Feedback(id news.NodeID, item news.ID, liked bool) error {
	return r.withNode(id, true, func(ln *liveNode, cycle int64) {
		score := 0.0
		if liked {
			score = 1
		}
		ln.node.UserProfile().Set(item, cycle, score)
		if ln.ops != nil {
			ln.ops.over[item] = liked
		}
	})
}

// Publish injects an item into the gossip mesh through the given node as an
// ordinary WhatsUp publisher (Algorithm 1): the node likes its own item,
// seeds the item profile from its user profile and hands the copies to
// BEEP. Created is restamped to the node's current cycle — gossip time is
// cycle time; the item's identity (content hash) is unaffected. The node
// must be online and the fleet running.
func (r *Runner) Publish(id news.NodeID, item news.Item) error {
	r.mu.RLock()
	ln := r.fleet[id]
	st := r.states[id]
	running := r.running
	r.mu.RUnlock()
	if ln == nil {
		return ErrUnknownNode
	}
	if !running {
		return ErrNotRunning
	}
	if st != sim.Online {
		return ErrNodeOffline
	}
	ok := ln.exec(func(ln *liveNode, cycle int64) {
		item.Created = cycle
		n := ln.node
		for _, s := range n.Publish(item, cycle) {
			ln.runner.send(envelope{Kind: wireItem, From: n.ID(), To: s.To, Item: s.Msg})
		}
	})
	if !ok {
		return ErrNodeOffline
	}
	return nil
}

// Snapshot returns a consistent snapshot of the node's protocol state. This
// is the one synchronized state accessor: while the node is online the
// snapshot is taken on its own goroutine between message handlers (the
// churn-timeline path of Config.Timeline uses the same mechanism), and for
// controller-owned nodes it is read under the membership lock.
func (r *Runner) Snapshot(id news.NodeID) (NodeSnapshot, error) {
	var snap NodeSnapshot
	err := r.withNode(id, false, func(ln *liveNode, cycle int64) {
		n := ln.node
		snap = NodeSnapshot{
			ID:          n.ID(),
			Cycle:       cycle,
			ProfileSize: n.UserProfile().Len(),
			RPSView:     n.RPS().View().Entries(),
			WUPView:     n.WUP().View().Entries(),
			FeedSize:    len(ln.feed),
		}
	})
	if err != nil {
		return NodeSnapshot{}, err
	}
	snap.State, _ = r.State(id)
	return snap, nil
}

// Members lists every registered member with its lifecycle state, in
// registration order. Safe to call at any time.
func (r *Runner) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, Member{ID: id, State: r.states[id]})
	}
	return out
}

// Stats rolls up the fleet's current size and the collector's quality and
// traffic aggregates. Safe to call at any time.
func (r *Runner) Stats() FleetStats {
	r.mu.RLock()
	s := FleetStats{Cycle: r.cycle.Load(), Members: len(r.fleet)}
	for _, st := range r.states {
		if st == sim.Online {
			s.Online++
		}
	}
	r.mu.RUnlock()
	r.colMu.Lock()
	s.Precision = r.col.Precision()
	s.Recall = r.col.Recall()
	s.F1 = r.col.F1()
	s.Messages = r.col.TotalMessages()
	s.Bytes = r.col.TotalBytes()
	r.colMu.Unlock()
	return s
}
