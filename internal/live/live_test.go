package live

import (
	"testing"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/news"
	"whatsup/internal/overlay"
	"whatsup/internal/profile"
)

func tinySurvey(seed int64) *dataset.Dataset {
	return dataset.Survey(dataset.SurveyConfig{Seed: seed, Scale: 0.05, Cycles: 25})
}

func liveConfig(cycles int) Config {
	return Config{
		Seed:        1,
		Cycles:      cycles,
		CycleLength: 3 * time.Millisecond,
		NodeConfig:  core.Config{FLike: 4, RPSViewSize: 10, ProfileWindow: 25},
	}
}

func TestChannelNetDelivers(t *testing.T) {
	ds := tinySurvey(1)
	net := NewChannelNet(7, 0, 0)
	r := NewRunner(liveConfig(25), ds, net)
	r.Run()
	col := r.Collector()
	if col.Recall() == 0 {
		t.Fatal("live channel run must deliver liked items")
	}
	if col.Messages(0) == 0 && col.TotalMessages() == 0 {
		t.Fatal("traffic must be accounted")
	}
	if col.GossipMessages() == 0 {
		t.Fatal("gossip traffic must be accounted")
	}
}

func TestChannelNetLossReducesTraffic(t *testing.T) {
	ds := tinySurvey(2)
	clean := NewRunner(liveConfig(20), ds, NewChannelNet(7, 0, 0))
	clean.Run()
	lossy := NewRunner(liveConfig(20), ds, NewChannelNet(7, 0.9, 0))
	lossy.Run()
	// With 90% loss recall should collapse relative to the clean run.
	if lossy.Collector().Recall() >= clean.Collector().Recall() {
		t.Fatalf("loss must hurt recall: clean=%v lossy=%v",
			clean.Collector().Recall(), lossy.Collector().Recall())
	}
}

func TestChannelNetLatencyStillDelivers(t *testing.T) {
	ds := tinySurvey(3)
	net := NewChannelNet(7, 0, time.Millisecond)
	r := NewRunner(liveConfig(25), ds, net)
	r.Run()
	if r.Collector().Recall() == 0 {
		t.Fatal("latency must delay, not destroy, delivery")
	}
}

func TestTCPNetDelivers(t *testing.T) {
	// Wall-clock-bound: allow a couple of attempts on loaded machines where
	// TCP dial latency can eat the first cycles.
	for attempt := 0; attempt < 3; attempt++ {
		ds := tinySurvey(4 + int64(attempt))
		net := NewTCPNet(TCPNetConfig{SlowEvery: 0})
		cfg := liveConfig(40)
		cfg.CycleLength = 8 * time.Millisecond
		r := NewRunner(cfg, ds, net)
		r.Run()
		delivered := 0
		for _, id := range r.Collector().NodeIDs() {
			delivered += r.Collector().Node(id).ReceivedLiked
		}
		if delivered > 0 {
			return
		}
	}
	t.Fatal("TCP runs must deliver liked items")
}

func TestTCPNetCongestionDropsOverflow(t *testing.T) {
	// Transport-level check of the PlanetLab congestion model: an
	// overloaded node with queue capacity 2 must drop the overflow of a
	// burst instead of backpressuring the sender.
	net := NewTCPNet(TCPNetConfig{SlowEvery: 1, SlowQueueCap: 2})
	defer net.Close()
	box := net.Register(1)
	it := news.New("t", "d", "l", 1, 0)
	for i := 0; i < 50; i++ {
		net.Send(envelope{Kind: wireItem, From: 0, To: 1, Item: core.ItemMessage{Item: it, Profile: profile.New()}})
	}
	// Allow the accept/decode pump to fill the queue.
	time.Sleep(200 * time.Millisecond)
	got := 0
drain:
	for {
		select {
		case <-box:
			got++
		default:
			break drain
		}
	}
	if got == 0 {
		t.Fatal("some messages must arrive")
	}
	if got > 2 {
		t.Fatalf("overflow must be dropped: queue cap 2 but %d delivered", got)
	}
}

func TestTCPNetUnknownDestinationIgnored(t *testing.T) {
	net := NewTCPNet(TCPNetConfig{})
	defer net.Close()
	net.Send(envelope{Kind: wireItem, To: 99}) // must not panic
}

func TestEnvelopeSizeAndKinds(t *testing.T) {
	p := profile.New()
	p.Set(1, 1, 1)
	descs := []overlay.Descriptor{{Node: 1, Stamp: 1, Profile: p}}
	gossip := envelope{Kind: wireWUPRequest, Descs: descs}
	if gossip.size() == 0 {
		t.Fatal("gossip envelope size must count descriptors")
	}
	it := news.New("t", "d", "l", 1, 0)
	item := envelope{Kind: wireItem, Item: core.ItemMessage{Item: it, Profile: p}}
	if item.size() <= 0 {
		t.Fatal("item envelope size must be positive")
	}
	kinds := map[wireKind]string{
		wireRPSRequest: "rps-request", wireRPSReply: "rps-reply",
		wireWUPRequest: "wup-request", wireWUPReply: "wup-reply", wireItem: "beep",
	}
	for k, want := range kinds {
		env := envelope{Kind: k}
		if env.kind().String() != want {
			t.Fatalf("kind mapping wrong for %d", k)
		}
	}
}
