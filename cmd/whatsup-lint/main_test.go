package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestUsageListsAnalyzers checks the no-args path prints the registry, so
// `whatsup-lint` is self-documenting.
func TestUsageListsAnalyzers(t *testing.T) {
	// run writes usage to our stderr; capture via a pipe would be overkill —
	// exercise the exit code and rely on the e2e test for output.
	if got := run(nil); got != 2 {
		t.Fatalf("run with no args = %d, want 2", got)
	}
}

// TestEndToEnd builds the real binary and lints two throwaway modules: one
// seeding a nondeterm violation in a package named sim (nonzero exit, the
// finding on stderr) and one clean (exit 0). This covers the standalone
// re-exec face (`whatsup-lint ./...`) and the unitchecker face `go vet`
// drives underneath it.
func TestEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "whatsup-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/whatsup-lint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building whatsup-lint: %v\n%s", err, out)
	}

	lint := func(t *testing.T, src string) (int, string) {
		t.Helper()
		mod := t.TempDir()
		writeFile(t, filepath.Join(mod, "go.mod"), "module viol\n\ngo 1.22\n")
		writeFile(t, filepath.Join(mod, "sim", "sim.go"), src)
		cmd := exec.Command(bin, "./...")
		cmd.Dir = mod
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running whatsup-lint: %v\n%s", err, buf.String())
		}
		return code, buf.String()
	}

	t.Run("violation", func(t *testing.T) {
		code, out := lint(t, "package sim\n\nimport \"time\"\n\nfunc Now() int64 { return time.Now().UnixNano() }\n")
		if code == 0 {
			t.Fatalf("expected nonzero exit on a nondeterm violation\noutput:\n%s", out)
		}
		if !strings.Contains(out, "nondeterm") || !strings.Contains(out, "time.Now") {
			t.Fatalf("missing nondeterm finding in output:\n%s", out)
		}
	})
	t.Run("clean", func(t *testing.T) {
		code, out := lint(t, "package sim\n\nfunc Pure(a, b int) int { return a + b }\n")
		if code != 0 {
			t.Fatalf("expected exit 0 on a clean module, got %d\noutput:\n%s", code, out)
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
