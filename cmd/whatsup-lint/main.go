// Command whatsup-lint statically enforces the determinism contract and the
// hot-path allocation budget (see internal/analysis for the analyzer suite).
//
// It is a single binary with two faces:
//
//   - Standalone: `whatsup-lint ./...` re-executes itself under
//     `go vet -vettool=<self>`, so the go command handles package loading,
//     export data and caching. This is how CI and developers invoke it.
//   - Vet tool: when the go command invokes it with a unitchecker config
//     (`whatsup-lint -V=full`, `whatsup-lint <file>.cfg`), it runs the
//     analyzer suite over the one package described by the config.
//
// Exit status follows go vet: nonzero when any analyzer reports a finding.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"whatsup/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && (strings.HasPrefix(args[0], "-") || strings.HasSuffix(args[0], ".cfg")) {
		// Invoked by `go vet -vettool` (or with unitchecker flags like
		// -flags / -V=full): hand over to the unitchecker protocol.
		unitchecker.Main(analysis.Analyzers()...) // does not return
	}
	os.Exit(run(args))
}

func run(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: whatsup-lint <packages>  (e.g. whatsup-lint ./...)")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analysis.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
		}
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "whatsup-lint: cannot locate own binary: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "whatsup-lint: running go vet: %v\n", err)
		return 2
	}
	return 0
}
