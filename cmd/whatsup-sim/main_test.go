package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-dataset", "survey", "-alg", "whatsup", "-scale", "0.05", "-workers", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	if got == "" {
		t.Fatal("no output")
	}
	for _, want := range []string{"precision", "recall", "messages:", "overlay:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown algorithm") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
}

func TestRunChurnScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-dataset", "survey", "-scale", "0.08", "-churn", "0.2",
		"-flash-crowd", "10", "-workers", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"Churn scenario", "stable", "joiner", "ghost-fraction(end)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunLiveChurnScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-live", "-live-transport", "channel", "-scale", "0.12",
		"-churn", "0.25", "-flash-crowd", "6"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"Live transport run", "churn:", "joiner", "ghost-fraction(end)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunLiveRejectsBaselines(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-live", "-alg", "gossip"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "only -alg whatsup") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}

func TestRunLiveRejectsUnknownTransport(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-live", "-live-transport", "smoke-signal"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
}

func TestRunChurnRejectsBaselines(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "gossip", "-churn", "0.2"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "only -alg whatsup") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}
