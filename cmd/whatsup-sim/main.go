// Command whatsup-sim runs a single deterministic simulation point: one
// algorithm on one workload at one fanout, and prints the user and system
// metrics.
//
// Usage:
//
//	whatsup-sim -dataset survey -alg whatsup -fanout 10 -scale 0.5
//	whatsup-sim -dataset digg -alg cf-cos -fanout 25 -loss 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"whatsup/internal/experiments"
	"whatsup/internal/metrics"
)

func main() {
	var (
		dsName = flag.String("dataset", "survey", "workload: synthetic, digg, survey")
		alg    = flag.String("alg", "whatsup", "algorithm: whatsup, whatsup-cos, cf-wup, cf-cos, gossip")
		fanout = flag.Int("fanout", 10, "fLIKE / k / f depending on the algorithm")
		scale  = flag.Float64("scale", 0.5, "dataset scale (1.0 = paper sizes)")
		seed   = flag.Int64("seed", 1, "seed")
		loss   = flag.Float64("loss", 0, "uniform message-loss rate")
		ttl    = flag.Int("ttl", 0, "dislike TTL (0 = default 4, negative = 0)")
	)
	flag.Parse()

	algorithms := map[string]experiments.Algorithm{
		"whatsup":     experiments.WhatsUp,
		"whatsup-cos": experiments.WhatsUpCos,
		"cf-wup":      experiments.CFWup,
		"cf-cos":      experiments.CFCos,
		"gossip":      experiments.PlainGossip,
	}
	a, ok := algorithms[*alg]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	o := experiments.Options{Seed: *seed, Scale: *scale}.WithDefaults()
	ds := experiments.DatasetByName(*dsName, o)
	out := experiments.Run(experiments.RunConfig{
		Dataset: ds, Alg: a, Fanout: *fanout, Seed: *seed, Loss: *loss, TTL: *ttl,
	})
	col := out.Col
	g := out.Engine.WUPGraph()

	fmt.Printf("%s on %s (users=%d items=%d cycles=%d fanout=%d loss=%.0f%%)\n",
		a, ds.Name, ds.Users, len(ds.Items), out.Cycles, *fanout, *loss*100)
	fmt.Printf("  precision %.3f  recall %.3f  f1 %.3f\n", col.Precision(), col.Recall(), col.F1())
	fmt.Printf("  messages: beep=%d gossip=%d total=%d (%.1f/user)\n",
		col.Messages(metrics.MsgBeep), col.GossipMessages(), col.TotalMessages(),
		float64(col.TotalMessages())/float64(ds.Users))
	fmt.Printf("  overlay: lscc=%.2f clustering-coefficient=%.2f weak-components=%d\n",
		g.LargestSCCFraction(), g.ClusteringCoefficient(), g.WeakComponents())
}
