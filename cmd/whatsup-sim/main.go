// Command whatsup-sim runs a single deterministic simulation point: one
// algorithm on one workload at one fanout, and prints the user and system
// metrics. With -churn or -flash-crowd it runs the dynamic-membership
// scenario instead: a churning population with per-cohort quality metrics
// and view self-healing statistics. With -live the same churn flags drive
// the concurrent live runtime (goroutine-per-node over a real transport)
// instead of the deterministic simulator.
//
// Usage:
//
//	whatsup-sim -dataset survey -alg whatsup -fanout 10 -scale 0.5
//	whatsup-sim -dataset digg -alg cf-cos -fanout 25 -loss 0.2
//	whatsup-sim -dataset synthetic -workers 8 -scale 1
//	whatsup-sim -dataset survey -churn 0.2 -flash-crowd 50 -descriptor-ttl 15
//	whatsup-sim -live -live-transport channel -churn 0.2 -flash-crowd 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"whatsup/internal/experiments"
	"whatsup/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit arguments and streams so tests can
// drive the full main path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatsup-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dsName  = fs.String("dataset", "survey", "workload: synthetic, digg, survey")
		alg     = fs.String("alg", "whatsup", "algorithm: whatsup, whatsup-cos, cf-wup, cf-cos, gossip")
		fanout  = fs.Int("fanout", 10, "fLIKE / k / f depending on the algorithm")
		scale   = fs.Float64("scale", 0.5, "dataset scale (1.0 = paper sizes)")
		seed    = fs.Int64("seed", 1, "seed")
		loss    = fs.Float64("loss", 0, "uniform message-loss rate")
		ttl     = fs.Int("ttl", 0, "dislike TTL (0 = default 4, negative = 0)")
		workers = fs.Int("workers", 0, "engine worker pool (0 = GOMAXPROCS); results are identical for any value")
		shards  = fs.Int("shards", 0, "engine membership slabs with codec-routed inter-shard gossip (0 = single slab); results are identical for any value")

		churnRate   = fs.Float64("churn", 0, "expected fraction of the population hit by a churn event over the run (enables the churn scenario)")
		flashCrowd  = fs.Int("flash-crowd", 0, "extra nodes joining as a flash crowd a third into the run (enables the churn scenario)")
		descTTL     = fs.Int64("descriptor-ttl", 0, "view eviction horizon in cycles for the churn scenario (0 = scenario default)")
		churnDepart = fs.Bool("churn-departures", false, "enable graceful-departure notices in the churn scenario")
		churnRefill = fs.Float64("churn-refill", 0, "anti-entropy view-refill watermark for the churn scenario (0 = off)")

		liveRun       = fs.Bool("live", false, "run on the concurrent live runtime (goroutine-per-node, real transports) instead of the deterministic simulator; combines with -churn/-flash-crowd")
		liveTransport = fs.String("live-transport", "channel", "live transport: channel (in-memory emulation) or tcp (loopback sockets)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	algorithms := map[string]experiments.Algorithm{
		"whatsup":     experiments.WhatsUp,
		"whatsup-cos": experiments.WhatsUpCos,
		"cf-wup":      experiments.CFWup,
		"cf-cos":      experiments.CFCos,
		"gossip":      experiments.PlainGossip,
	}
	a, ok := algorithms[*alg]
	if !ok {
		fmt.Fprintf(stderr, "unknown algorithm %q\n", *alg)
		return 2
	}
	engineWorkers := *workers
	if engineWorkers <= 0 {
		engineWorkers = runtime.GOMAXPROCS(0) // a single point gets the machine
	}

	if *liveRun {
		// The live runtime is WhatsUp-only, like the paper's deployments, and
		// runs the survey workload; churn flags feed its membership
		// controller instead of the simulator's schedule.
		if a != experiments.WhatsUp {
			fmt.Fprintf(stderr, "-live supports only -alg whatsup (got %q)\n", *alg)
			return 2
		}
		r, err := experiments.LiveRun(experiments.Options{Seed: *seed, Scale: *scale}, experiments.LiveRunConfig{
			ChurnOptions: experiments.ChurnOptions{
				ChurnRate:        *churnRate,
				FlashCrowd:       *flashCrowd,
				DescriptorTTL:    *descTTL,
				DepartureNotices: *churnDepart,
				RefillWatermark:  *churnRefill,
			},
			Transport: *liveTransport,
			Fanout:    *fanout,
			LossRate:  *loss,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintln(stdout, r)
		return 0
	}

	if *churnRate > 0 || *flashCrowd > 0 {
		// The churn scenario is WhatsUp-only: lifecycle cold starts need the
		// full node (Section II-D); baselines keep the static path.
		if a != experiments.WhatsUp {
			fmt.Fprintf(stderr, "-churn/-flash-crowd support only -alg whatsup (got %q)\n", *alg)
			return 2
		}
		r := experiments.ChurnRun(experiments.Options{Seed: *seed, Scale: *scale}, experiments.ChurnConfig{
			ChurnOptions: experiments.ChurnOptions{
				ChurnRate:        *churnRate,
				FlashCrowd:       *flashCrowd,
				DescriptorTTL:    *descTTL,
				DepartureNotices: *churnDepart,
				RefillWatermark:  *churnRefill,
			},
			Dataset: *dsName,
			Fanout:  *fanout,
			TTL:     *ttl,
			Loss:    *loss,
			Workers: engineWorkers,
			Shards:  *shards,
		})
		fmt.Fprintln(stdout, r)
		return 0
	}

	o := experiments.Options{Seed: *seed, Scale: *scale}.WithDefaults()
	ds := experiments.DatasetByName(*dsName, o)
	out := experiments.Run(experiments.RunConfig{
		Dataset: ds, Alg: a, Fanout: *fanout, Seed: *seed, Loss: *loss, TTL: *ttl,
		Workers: engineWorkers, Shards: *shards,
	})
	col := out.Col
	g := out.Engine.WUPGraph()

	fmt.Fprintf(stdout, "%s on %s (users=%d items=%d cycles=%d fanout=%d loss=%.0f%% workers=%d shards=%d)\n",
		a, ds.Name, ds.Users, len(ds.Items), out.Cycles, *fanout, *loss*100, out.Engine.Workers(), out.Engine.Shards())
	fmt.Fprintf(stdout, "  precision %.3f  recall %.3f  f1 %.3f\n", col.Precision(), col.Recall(), col.F1())
	fmt.Fprintf(stdout, "  messages: beep=%d gossip=%d total=%d (%.1f/user)\n",
		col.Messages(metrics.MsgBeep), col.GossipMessages(), col.TotalMessages(),
		float64(col.TotalMessages())/float64(ds.Users))
	fmt.Fprintf(stdout, "  overlay: lscc=%.2f clustering-coefficient=%.2f weak-components=%d\n",
		g.LargestSCCFraction(), g.ClusteringCoefficient(), g.WeakComponents())
	return 0
}
