// Command whatsup-benchdiff compares two `go test -bench` outputs and fails
// when a benchmark regresses beyond a threshold. It is the CI perf gate for
// the gossip hot path: allocs/op is machine-independent and compared
// strictly; ns/op is only meaningful between runs on comparable hardware,
// so its threshold is separately tunable (or disabled with a negative
// value) for the committed-baseline fallback.
//
// Usage:
//
//	whatsup-benchdiff -old bench_baseline.txt -new bench.txt \
//	    -filter '^BenchmarkHotPath/' -allocs-threshold 0.10 -ns-threshold -1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// result is one parsed benchmark line, averaged over repetitions.
type result struct {
	ns     float64
	bytes  float64
	allocs float64
	runs   int
}

// procSuffix strips the trailing "-<GOMAXPROCS>" so baselines recorded on
// hosts with different core counts still match.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. Repeated entries for one name are averaged.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		res := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.ns += v
			case "B/op":
				res.bytes += v
			case "allocs/op":
				res.allocs += v
			}
		}
		res.runs++
		out[name] = res
	}
	return out, sc.Err()
}

func (r result) avg() result {
	if r.runs <= 1 {
		return r
	}
	n := float64(r.runs)
	return result{ns: r.ns / n, bytes: r.bytes / n, allocs: r.allocs / n, runs: 1}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatsup-benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		oldPath     = fs.String("old", "", "baseline bench output")
		newPath     = fs.String("new", "", "candidate bench output")
		filter      = fs.String("filter", "^BenchmarkHotPath/", "regexp selecting benchmarks to compare")
		nsThresh    = fs.Float64("ns-threshold", 0.10, "max allowed relative ns/op growth (negative = skip ns comparison)")
		allocThresh = fs.Float64("allocs-threshold", 0.10, "max allowed relative allocs/op growth (negative = skip)")
		superset    = fs.Bool("require-superset", false, "fail when a filter-matching baseline scenario is missing from the candidate (CI uses this so renamed or dropped scenarios cannot vanish silently)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "both -old and -new are required")
		return 2
	}
	sel, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintf(stderr, "bad -filter: %v\n", err)
		return 2
	}
	parse := func(path string) (map[string]result, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	oldRes, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "reading baseline: %v\n", err)
		return 2
	}
	newRes, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "reading candidate: %v\n", err)
		return 2
	}

	// Partition filter-matching scenarios: compared (in both), baseline-only
	// (dropped or renamed in the candidate) and candidate-only (new, with no
	// baseline to gate against). The one-sided sets used to be silently
	// ignored, which let new scenarios "stay green" unseen and dropped ones
	// vanish without a trace; they are always reported, and baseline-only
	// scenarios fail the run under -require-superset.
	var names, onlyOld, onlyNew []string
	for name := range newRes {
		if !sel.MatchString(name) {
			continue
		}
		if _, ok := oldRes[name]; ok {
			names = append(names, name)
		} else {
			onlyNew = append(onlyNew, name)
		}
	}
	for name := range oldRes {
		if sel.MatchString(name) {
			if _, ok := newRes[name]; !ok {
				onlyOld = append(onlyOld, name)
			}
		}
	}
	sort.Strings(names)
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	for _, name := range onlyNew {
		fmt.Fprintf(stdout, "+ %-44s new scenario, no baseline to compare against\n", name)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(stdout, "! %-44s baseline scenario missing from candidate\n", name)
	}
	if len(names) == 0 && len(onlyOld) == 0 && len(onlyNew) == 0 {
		fmt.Fprintf(stderr, "no benchmarks matched %q in either file\n", *filter)
		return 2
	}

	regressions := 0
	check := func(name, metric string, old, new, thresh float64) {
		marker := " "
		if thresh >= 0 && old > 0 && new > old*(1+thresh) {
			marker = "✗"
			regressions++
		} else if thresh < 0 {
			marker = "·" // informational only
		}
		delta := 0.0
		if old > 0 {
			delta = (new - old) / old * 100
		}
		fmt.Fprintf(stdout, "%s %-44s %-10s %14.1f -> %12.1f  (%+.1f%%)\n",
			marker, name, metric, old, new, delta)
	}
	for _, name := range names {
		o, n := oldRes[name].avg(), newRes[name].avg()
		check(name, "allocs/op", o.allocs, n.allocs, *allocThresh)
		check(name, "ns/op", o.ns, n.ns, *nsThresh)
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "%d hot-path regression(s) beyond threshold\n", regressions)
		return 1
	}
	if *superset && len(onlyOld) > 0 {
		fmt.Fprintf(stderr, "%d baseline scenario(s) missing from candidate (-require-superset)\n", len(onlyOld))
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d benchmarks within thresholds\n", len(names))
	return 0
}
