package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldBench = `goos: linux
BenchmarkHotPath/merge-1         	  500000	      1200 ns/op	    1800 B/op	       1 allocs/op
BenchmarkHotPath/receive-liked-1 	  100000	      2300 ns/op	    3400 B/op	       9 allocs/op
BenchmarkOther/x-1               	  100000	       100 ns/op	       0 B/op	       0 allocs/op
PASS
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	newBench := strings.ReplaceAll(oldBench, "2300 ns/op", "2400 ns/op") // +4%
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP}, &out, &errOut); code != 0 {
		t.Fatalf("exit=%d stderr=%q stdout=%q", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "ok: 2 benchmarks") {
		t.Fatalf("expected 2 compared benchmarks (filter must exclude BenchmarkOther):\n%s", out.String())
	}
}

func TestBenchdiffFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	newBench := strings.ReplaceAll(oldBench, "9 allocs/op", "20 allocs/op")
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP}, &out, &errOut); code != 1 {
		t.Fatalf("alloc regression must fail: exit=%d\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "regression") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}

func TestBenchdiffNsComparisonCanBeDisabled(t *testing.T) {
	dir := t.TempDir()
	newBench := strings.ReplaceAll(oldBench, "2300 ns/op", "9900 ns/op") // 4.3×
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP, "-ns-threshold", "-1"}, &out, &errOut); code != 0 {
		t.Fatalf("disabled ns comparison must pass: exit=%d stderr=%q", code, errOut.String())
	}
	var out2, errOut2 strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP}, &out2, &errOut2); code != 1 {
		t.Fatal("enabled ns comparison must fail on a 4× slowdown")
	}
}

func TestBenchdiffStripsProcSuffix(t *testing.T) {
	dir := t.TempDir()
	newBench := strings.ReplaceAll(oldBench, "-1 ", "-8 ") // other host core count
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP}, &out, &errOut); code != 0 {
		t.Fatalf("GOMAXPROCS suffix must not break matching: exit=%d stderr=%q", code, errOut.String())
	}
}

func TestBenchdiffRejectsMissingInputs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{}, &out, &errOut); code != 2 {
		t.Fatalf("missing inputs must exit 2, got %d", code)
	}
}

func TestBenchdiffReportsOneSidedScenarios(t *testing.T) {
	// The candidate drops receive-liked and adds a sharded scenario: both
	// one-sided sets must be printed instead of silently intersected away.
	dir := t.TempDir()
	newBench := strings.ReplaceAll(oldBench,
		"BenchmarkHotPath/receive-liked-1 	  100000	      2300 ns/op	    3400 B/op	       9 allocs/op",
		"BenchmarkHotPath/sharded-cycle-1 	  100000	      2300 ns/op	    3400 B/op	       9 allocs/op")
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP}, &out, &errOut); code != 0 {
		t.Fatalf("one-sided scenarios alone must not fail without -require-superset: exit=%d stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "+ BenchmarkHotPath/sharded-cycle") ||
		!strings.Contains(out.String(), "new scenario") {
		t.Fatalf("candidate-only scenario not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "! BenchmarkHotPath/receive-liked") ||
		!strings.Contains(out.String(), "missing from candidate") {
		t.Fatalf("baseline-only scenario not reported:\n%s", out.String())
	}
}

func TestBenchdiffRequireSupersetFailsOnDroppedScenario(t *testing.T) {
	dir := t.TempDir()
	newBench := strings.ReplaceAll(oldBench,
		"BenchmarkHotPath/receive-liked", "BenchmarkHotPath/receive-renamed")
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP, "-require-superset"}, &out, &errOut); code != 1 {
		t.Fatalf("dropped baseline scenario must fail under -require-superset: exit=%d\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "missing from candidate") {
		t.Fatalf("stderr=%q", errOut.String())
	}
	// The same pair passes when the superset requirement is off.
	var out2, errOut2 strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP}, &out2, &errOut2); code != 0 {
		t.Fatalf("without -require-superset the run must pass: exit=%d stderr=%q", code, errOut2.String())
	}
}

func TestBenchdiffRequireSupersetPassesOnSuperset(t *testing.T) {
	dir := t.TempDir()
	newBench := strings.Replace(oldBench, "PASS",
		"BenchmarkHotPath/extra-1 	  100000	      10 ns/op	       0 B/op	       0 allocs/op\nPASS", 1)
	oldP := write(t, dir, "old.txt", oldBench)
	newP := write(t, dir, "new.txt", newBench)
	var out, errOut strings.Builder
	if code := run([]string{"-old", oldP, "-new", newP, "-require-superset"}, &out, &errOut); code != 0 {
		t.Fatalf("a strict superset must pass: exit=%d stderr=%q stdout=%s", code, errOut.String(), out.String())
	}
}
