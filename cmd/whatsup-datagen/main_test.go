package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmokeStdout(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-dataset", "survey", "-scale", "0.05"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	var dto datasetDTO
	if err := json.Unmarshal([]byte(out.String()), &dto); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if dto.Users == 0 || len(dto.Items) == 0 {
		t.Fatalf("empty dataset: %+v", dto)
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "digg.json")
	var out, errOut strings.Builder
	code := run([]string{"-dataset", "digg", "-scale", "0.05", "-out", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dto datasetDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		t.Fatalf("file is not valid JSON: %v", err)
	}
	if dto.Social == nil {
		t.Fatal("digg dataset must carry a social graph")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
}
