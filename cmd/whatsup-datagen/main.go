// Command whatsup-datagen generates one of the evaluation workloads and
// writes it to stdout (or a file) as JSON: items with publication schedule
// and audience, per-user interest counts, and the social graph when present.
//
// Usage:
//
//	whatsup-datagen -dataset digg -scale 0.5 -out digg.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"whatsup/internal/dataset"
	"whatsup/internal/experiments"
)

// itemDTO is the JSON form of one workload item.
type itemDTO struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	Topic      int    `json:"topic"`
	Cycle      int64  `json:"cycle"`
	Source     int32  `json:"source"`
	Interested int    `json:"interested"`
	Audience   []int  `json:"audience"`
}

// datasetDTO is the JSON form of a workload.
type datasetDTO struct {
	Name   string    `json:"name"`
	Users  int       `json:"users"`
	Cycles int       `json:"cycles"`
	Topics int       `json:"topics"`
	Items  []itemDTO `json:"items"`
	Social [][]int32 `json:"social,omitempty"`
}

func toDTO(ds *dataset.Dataset) datasetDTO {
	dto := datasetDTO{Name: ds.Name, Users: ds.Users, Cycles: ds.Cycles, Topics: ds.Topics}
	for i := range ds.Items {
		it := ds.Items[i]
		audience := make([]int, 0, it.Interested)
		for _, u := range ds.InterestedUsers(i) {
			audience = append(audience, int(u))
		}
		dto.Items = append(dto.Items, itemDTO{
			ID:         it.News.ID.String(),
			Title:      it.News.Title,
			Topic:      it.News.Topic,
			Cycle:      it.Cycle,
			Source:     int32(it.News.Source),
			Interested: it.Interested,
			Audience:   audience,
		})
	}
	if ds.Social != nil {
		dto.Social = make([][]int32, len(ds.Social))
		for u, out := range ds.Social {
			for _, v := range out {
				dto.Social[u] = append(dto.Social[u], int32(v))
			}
		}
	}
	return dto
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit arguments and streams so tests can
// drive the full main path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatsup-datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dsName = fs.String("dataset", "survey", "workload: synthetic, digg, survey")
		scale  = fs.Float64("scale", 0.5, "dataset scale (1.0 = paper sizes)")
		seed   = fs.Int64("seed", 1, "seed")
		out    = fs.String("out", "-", "output file ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	ds := experiments.DatasetByName(*dsName, experiments.Options{Seed: *seed, Scale: *scale}.WithDefaults())
	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(toDTO(ds)); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
