// Command whatsup-node runs a fleet of WhatsUp nodes over real TCP loopback
// sockets — the deployment configuration of the paper's PlanetLab experiment
// on a single machine. Every node is a goroutine with its own listener;
// gossip and news travel as length-prefixed binary frames (see the README's
// "Wire protocol & live transports" section), and a configurable fraction
// of nodes is "overloaded" with tiny inbound queues.
//
// Usage:
//
//	whatsup-node -nodes 120 -cycles 60 -cycle-length 100ms -fanout 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit arguments and streams so tests can
// drive the full main path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatsup-node", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes       = fs.Int("nodes", 120, "fleet size (scales the survey workload)")
		cycles      = fs.Int("cycles", 60, "gossip cycles to run")
		cycleLength = fs.Duration("cycle-length", 100*time.Millisecond, "gossip period (the prototype used 30s)")
		fanout      = fs.Int("fanout", 8, "fLIKE")
		seed        = fs.Int64("seed", 1, "seed")
		slowEvery   = fs.Int("slow-every", 4, "every n-th node is overloaded (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	// Size the survey workload to the requested fleet (480 users at scale 1).
	scale := float64(*nodes) / 480
	ds := dataset.Survey(dataset.SurveyConfig{Seed: *seed, Scale: scale, Cycles: *cycles})
	fmt.Fprintf(stdout, "whatsup-node: %d TCP nodes, %d cycles of %v, fLIKE=%d\n",
		ds.Users, *cycles, *cycleLength, *fanout)

	start := time.Now()
	runner := live.NewRunner(live.Config{
		Seed:        *seed,
		Cycles:      *cycles,
		CycleLength: *cycleLength,
		NodeConfig:  core.Config{FLike: *fanout},
	}, ds, live.NewTCPNet(live.TCPNetConfig{SlowEvery: *slowEvery}))
	runner.Run()

	col := runner.Collector()
	fmt.Fprintf(stdout, "finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "  precision %.3f  recall %.3f  f1 %.3f\n", col.Precision(), col.Recall(), col.F1())
	fmt.Fprintf(stdout, "  messages: beep=%d gossip=%d total=%d\n",
		col.Messages(metrics.MsgBeep), col.GossipMessages(), col.TotalMessages())
	fmt.Fprintf(stdout, "  bytes: beep=%d gossip=%d\n", col.Bytes(metrics.MsgBeep), col.GossipBytes())
	return 0
}
