package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP fleet in -short mode")
	}
	var out, errOut strings.Builder
	code := run([]string{"-nodes", "16", "-cycles", "4", "-cycle-length", "3ms"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"whatsup-node:", "finished in", "messages:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
}
