// Command whatsup-serve runs WhatsUp as a deployable news service: a live
// gossip fleet fed by real (RSS/Atom) or fixture news sources through the
// ingestion gateway, with the JSON HTTP API serving per-node feeds, feedback
// and fleet stats — the shape of the paper's PlanetLab prototype, on one
// machine.
//
// A soak run against a real feed:
//
//	whatsup-serve -nodes 50 -source rss:https://example.org/feed.xml \
//	    -cycle-length 1s -poll 30s -listen :8080
//
// A network-free smoke run from the test fixture, ten cycles and out:
//
//	whatsup-serve -nodes 20 -source file:internal/source/testdata/feed.xml \
//	    -cycles 10 -cycle-length 100ms -poll 200ms
//
// With a negative -cycles (the default) the fleet runs until SIGINT/SIGTERM;
// shutdown drains the HTTP server, stops the gateway and stops the fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whatsup/internal/api"
	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/news"
	"whatsup/internal/sim"
	"whatsup/internal/source"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// sourceSpecs collects repeated -source flags.
type sourceSpecs []string

func (s *sourceSpecs) String() string { return strings.Join(*s, ",") }

func (s *sourceSpecs) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// onReady, when set (by tests), observes the API base URL once the listener
// is accepting connections.
var onReady func(baseURL string)

// run executes the command with explicit context, arguments and streams so
// tests can drive the full main path — including shutdown — in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatsup-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var specs sourceSpecs
	fs.Var(&specs, "source", "news source as kind:argument (rss:URL, file:PATH); repeatable")
	var (
		listen      = fs.String("listen", ":8080", "HTTP listen address")
		nodes       = fs.Int("nodes", 20, "fleet size")
		cycles      = fs.Int("cycles", -1, "gossip cycles to run; negative = serve until interrupted")
		cycleLength = fs.Duration("cycle-length", time.Second, "gossip period (the prototype used 30s)")
		fanout      = fs.Int("fanout", 0, "fLIKE (0 = paper default)")
		seed        = fs.Int64("seed", 1, "seed")
		poll        = fs.Duration("poll", 30*time.Second, "source poll interval")
		gatewayNode = fs.Int("gateway-node", 0, "fleet node the gateway publishes through")
		feedCap     = fs.Int("feed-capacity", 64, "per-node feed retention (deliveries)")
		likePct     = fs.Int("like-percent", 60, "per-node probability (0-100) of liking an ingested item")
		churnRate   = fs.Float64("churn-rate", 0, "per-node per-cycle crash probability (0 = stable fleet)")
		churnWindow = fs.Int64("churn-window", 200, "cycles over which the churn trace is drawn")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *nodes <= 0 || *gatewayNode < 0 || *gatewayNode >= *nodes {
		fmt.Fprintln(stderr, "whatsup-serve: -gateway-node must name a node in [0, -nodes)")
		return 2
	}

	sources := make([]source.Source, 0, len(specs))
	for _, spec := range specs {
		src, err := source.New(spec)
		if err != nil {
			fmt.Fprintf(stderr, "whatsup-serve: %v\n", err)
			return 2
		}
		sources = append(sources, src)
	}

	// The fleet has no trace workload — its items arrive from the sources.
	// Interests over those unknown-in-advance items come from a deterministic
	// hash: each (node, item) pair likes with probability -like-percent,
	// giving BEEP's amplification a population of interested nodes while
	// still exercising the dislike path. Live feedback overrides this
	// per user, per item.
	pct := uint64(*likePct)
	opinions := core.OpinionFunc(func(n news.NodeID, id news.ID) bool {
		h := uint64(id)*0x9E3779B97F4A7C15 ^ uint64(uint32(n))*0xBF58476D1CE4E5B9
		h ^= h >> 33
		return h%100 < pct
	})

	var churn sim.ChurnSchedule
	if *churnRate > 0 {
		churn = sim.ChurnTrace(sim.ChurnTraceConfig{
			Seed:      *seed + 1,
			Nodes:     *nodes,
			From:      5,
			To:        5 + *churnWindow,
			CrashRate: *churnRate,
			Downtime:  10,
		})
	}

	nodeCfg := core.Config{FLike: *fanout}
	if !churn.Empty() {
		nodeCfg.DescriptorTTL = core.DefaultDescriptorTTL
	}
	runner := live.NewRunner(live.Config{
		Seed:         *seed,
		Cycles:       *cycles,
		CycleLength:  *cycleLength,
		NodeConfig:   nodeCfg,
		Opinions:     opinions,
		FeedCapacity: *feedCap,
		Churn:        churn,
	}, dataset.Blank(*nodes, 0), live.NewChannelNet(*seed, 0, 0))

	gw := source.NewGateway(source.GatewayConfig{
		Node:     news.NodeID(*gatewayNode),
		Sources:  sources,
		Interval: *poll,
		OnError:  func(err error) { fmt.Fprintf(stderr, "whatsup-serve: gateway: %v\n", err) },
	}, runner)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "whatsup-serve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler: api.NewServer(runner, gw.Catalog()),
		// The API faces the open network in a soak run: bound how long a
		// client may dribble headers (slowloris) and how long one response
		// may occupy a connection. Every payload is a small JSON document,
		// so generous caps only cut off pathological peers.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      30 * time.Second,
	}

	fmt.Fprintf(stdout, "whatsup-serve: %d nodes, gossip every %v, %d source(s), API on http://%s\n",
		*nodes, *cycleLength, len(sources), ln.Addr())

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	gwDone := make(chan struct{})
	go func() {
		defer close(gwDone)
		if len(sources) > 0 {
			gw.Run(runCtx)
		}
	}()
	if onReady != nil {
		onReady("http://" + ln.Addr().String())
	}

	// The fleet runs in the foreground: a bounded -cycles run ends on its
	// own, an unbounded one ends when the context is cancelled (SIGINT).
	start := time.Now()
	runner.RunContext(runCtx)
	cancel()
	<-gwDone
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "whatsup-serve: http shutdown: %v\n", err)
	}
	<-serveErr

	st := runner.Stats()
	fmt.Fprintf(stdout, "stopped after %v at cycle %d\n", time.Since(start).Round(time.Millisecond), st.Cycle)
	fmt.Fprintf(stdout, "  ingested %d items, %d/%d nodes online\n", gw.Published(), st.Online, st.Members)
	fmt.Fprintf(stdout, "  messages %d, bytes %d\n", st.Messages, st.Bytes)
	return 0
}
